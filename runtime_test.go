package repro

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func testRuntimeKeys(n int, seed uint64) []uint64 {
	keys := make([]uint64, n)
	s := seed
	for i := range keys {
		// SplitMix64-style stream; nonzero keys for IBLT compatibility.
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		keys[i] = z ^ (z >> 31)
		if keys[i] == 0 {
			keys[i] = 1
		}
	}
	return keys
}

// TestRuntimeServesAllWorkloads drives every typed Runtime method plus
// Go end to end on one shared runtime, then checks stats and shutdown
// semantics.
func TestRuntimeServesAllWorkloads(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 4, MaxJobs: 8})
	ctx := context.Background()

	// Peel + subtable peel.
	g := NewUniformHypergraph(60000, 42000, 3, 1)
	res, err := rt.Peel(ctx, g, 2, PeelOptions{})
	if err != nil || !res.Empty() {
		t.Fatalf("Peel: err=%v empty=%v", err, err == nil && res.Empty())
	}
	if want := PeelParallel(g, 2); res.Rounds != want.Rounds || res.CoreVertices != want.CoreVertices {
		t.Fatalf("Runtime.Peel diverges from PeelParallel: %d/%d vs %d/%d",
			res.Rounds, res.CoreVertices, want.Rounds, want.CoreVertices)
	}
	pg := NewPartitionedHypergraph(3*20000, 40000, 3, 2)
	if sres, err := rt.PeelSubtables(ctx, pg, 2, PeelOptions{}); err != nil || !sres.Empty() {
		t.Fatalf("PeelSubtables: err=%v", err)
	}

	// IBLT decode.
	keys := testRuntimeKeys(20000, 3)
	table := NewIBLT(30000, 3, 99)
	table.InsertAll(keys)
	dres, err := rt.Decode(ctx, table.Clone())
	if err != nil || !dres.Complete || len(dres.Added) != len(keys) {
		t.Fatalf("Decode: err=%v complete=%v added=%d", err, dres != nil && dres.Complete, len(dres.Added))
	}

	// MPHF build: perfect and minimal.
	f, err := rt.BuildMPHF(ctx, keys, 7)
	if err != nil {
		t.Fatalf("BuildMPHF: %v", err)
	}
	seen := make([]bool, len(keys))
	for _, k := range keys {
		i := f.Lookup(k)
		if i < 0 || i >= len(keys) || seen[i] {
			t.Fatalf("BuildMPHF: lookup collision or out of range at %d", i)
		}
		seen[i] = true
	}

	// Static map build.
	values := testRuntimeKeys(len(keys), 4)
	sm, err := rt.BuildStaticMap(ctx, keys, values, 8)
	if err != nil {
		t.Fatalf("BuildStaticMap: %v", err)
	}
	for i, k := range keys {
		if sm.Lookup(k) != values[i] {
			t.Fatalf("BuildStaticMap: wrong value for key %d", i)
		}
	}

	// Set reconciliation.
	local := append(append([]uint64(nil), keys...), testRuntimeKeys(50, 5)...)
	remote := append(append([]uint64(nil), keys...), testRuntimeKeys(60, 6)...)
	onlyL, onlyR, _, err := rt.Reconcile(ctx, local, remote, 10, 1.5)
	if err != nil || len(onlyL) != 50 || len(onlyR) != 60 {
		t.Fatalf("Reconcile: err=%v |L|=%d |R|=%d", err, len(onlyL), len(onlyR))
	}

	// Erasure encode + decode.
	code := NewErasureCode(4000, 3, 11)
	data := testRuntimeKeys(10000, 7)
	checks, err := rt.EncodeErasure(ctx, code, data)
	if err != nil {
		t.Fatalf("EncodeErasure: %v", err)
	}
	got := append([]uint64(nil), data...)
	present := make([]bool, len(data))
	for i := range present {
		present[i] = true
	}
	for i := 0; i < 2000; i++ {
		got[i*3%len(got)], present[i*3%len(got)] = 0, false
	}
	if err := rt.DecodeErasure(ctx, code, got, present, checks); err != nil {
		t.Fatalf("DecodeErasure: %v", err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("DecodeErasure: symbol %d not restored", i)
		}
	}

	// Custom job through Go.
	wait, err := rt.Go(ctx, func(ctx context.Context, p *WorkerPool) error {
		c := p.NewCounter()
		p.For(10000, 128, func(w, lo, hi int) { c.Add(w, int64(hi-lo)) })
		if c.Sum() != 10000 {
			return errors.New("undercounted")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Go: %v", err)
	}
	if err := wait(); err != nil {
		t.Fatalf("Go job: %v", err)
	}

	st := rt.Stats()
	if st.JobsAdmitted < 9 {
		t.Fatalf("JobsAdmitted = %d, want >= 9", st.JobsAdmitted)
	}
	if st.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", st.Workers)
	}

	// Shutdown: drains clean, then rejects everything.
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := rt.Shutdown(ctx); !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("second Shutdown: err = %v, want ErrRuntimeClosed", err)
	}
	if _, err := rt.Decode(ctx, table.Clone()); !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("post-shutdown Decode: err = %v, want ErrRuntimeClosed", err)
	}
	if _, err := rt.Go(ctx, func(context.Context, *WorkerPool) error { return nil }); !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("post-shutdown Go: err = %v, want ErrRuntimeClosed", err)
	}
	if rej := rt.Stats().JobsRejected; rej == 0 {
		t.Fatal("JobsRejected stayed zero after post-shutdown submissions")
	}
}

// TestRuntimeCancellation checks that a canceled context aborts every
// typed method with ctx.Err() and bumps the canceled counter.
func TestRuntimeCancellation(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 4})
	defer rt.Shutdown(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	g := NewUniformHypergraph(10000, 7000, 3, 1)
	if _, err := rt.Peel(ctx, g, 2, PeelOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Peel(canceled): %v", err)
	}
	keys := testRuntimeKeys(5000, 1)
	table := NewIBLT(8000, 3, 5)
	table.InsertAll(keys)
	if _, err := rt.Decode(ctx, table.Clone()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Decode(canceled): %v", err)
	}
	if _, err := rt.BuildMPHF(ctx, keys, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildMPHF(canceled): %v", err)
	}
	if _, err := rt.BuildStaticMap(ctx, keys, keys, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildStaticMap(canceled): %v", err)
	}
	if _, _, _, err := rt.Reconcile(ctx, keys, keys, 3, 1.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("Reconcile(canceled): %v", err)
	}
	code := NewErasureCode(1000, 3, 2)
	if _, err := rt.EncodeErasure(ctx, code, keys); !errors.Is(err, context.Canceled) {
		t.Fatalf("EncodeErasure(canceled): %v", err)
	}

	// A pre-canceled ctx is refused at admission (not counted as a
	// canceled job); a job canceled mid-run is.
	ctx2, cancel2 := context.WithCancel(context.Background())
	wait, err := rt.Go(ctx2, func(ctx context.Context, p *WorkerPool) error {
		cancel2()
		<-ctx.Done()
		return ctx.Err()
	})
	if err != nil {
		t.Fatalf("Go: %v", err)
	}
	if err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled job: %v", err)
	}
	if c := rt.Stats().JobsCanceled; c == 0 {
		t.Fatal("JobsCanceled stayed zero after a mid-run cancellation")
	}
}

// TestRuntimeShutdownDrainsUnderLoad submits blocking jobs, calls
// Shutdown concurrently, and checks it waits for in-flight jobs while
// rejecting new ones — the graceful-drain contract, race-enabled.
func TestRuntimeShutdownDrainsUnderLoad(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 4})
	const jobs = 6
	release := make(chan struct{})
	var finished atomic.Int64
	waits := make([]func() error, jobs)
	for j := 0; j < jobs; j++ {
		w, err := rt.Go(context.Background(), func(ctx context.Context, p *WorkerPool) error {
			<-release
			sum := p.NewCounter()
			p.For(20000, 256, func(w, lo, hi int) { sum.Add(w, int64(hi-lo)) })
			if sum.Sum() != 20000 {
				return errors.New("draining-phase For lost chunks")
			}
			finished.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("Go %d: %v", j, err)
		}
		waits[j] = w
	}

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- rt.Shutdown(context.Background()) }()
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v with jobs in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	// New work is rejected while draining.
	if _, err := rt.Go(context.Background(), func(context.Context, *WorkerPool) error { return nil }); !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("Go during drain: err = %v, want ErrRuntimeClosed", err)
	}
	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if finished.Load() != jobs {
		t.Fatalf("Shutdown returned with %d of %d jobs finished", finished.Load(), jobs)
	}
	for j, w := range waits {
		if err := w(); err != nil {
			t.Fatalf("job %d: %v", j, err)
		}
	}

	// An expired shutdown context on a busy runtime returns promptly.
	rt2 := NewRuntime(RuntimeOptions{Workers: 2})
	hold := make(chan struct{})
	w2, err := rt2.Go(context.Background(), func(context.Context, *WorkerPool) error {
		<-hold
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := rt2.Shutdown(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown(expired): err = %v, want DeadlineExceeded", err)
	}
	close(hold)
	if err := w2(); err != nil {
		t.Fatalf("held job after expired shutdown: %v", err)
	}
}

// TestRuntimeMaxJobsAdmission checks the MaxJobs bound: admission blocks
// and respects the waiter's context.
func TestRuntimeMaxJobsAdmission(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 2, MaxJobs: 1})
	defer rt.Shutdown(context.Background())
	hold := make(chan struct{})
	wait, err := rt.Go(context.Background(), func(context.Context, *WorkerPool) error {
		<-hold
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := rt.Go(ctx, func(context.Context, *WorkerPool) error { return nil }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("admission over MaxJobs: err = %v, want DeadlineExceeded", err)
	}
	close(hold)
	if err := wait(); err != nil {
		t.Fatal(err)
	}
}
