// Command experiments regenerates every table and figure in the
// evaluation of "Parallel Peeling Algorithms" in one run, writing the
// results to stdout (and optionally to a file for EXPERIMENTS.md). It is
// the one-stop harness; the per-table binaries (peelsim, subtablesim,
// ibltbench, figure1, thresholds) offer finer control.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "use the paper's full sizes (much slower)")
	out := flag.String("out", "", "also write results to this file")
	nu := flag.Bool("nu", true, "include the Theorem 5 gap sweep")
	seed := flag.Uint64("seed", 2014, "base RNG seed")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "Parallel Peeling Algorithms (SPAA 2014) — full experiment run\n")
	fmt.Fprintf(w, "GOMAXPROCS=%d, full=%v, seed=%d, date=%s\n\n",
		runtime.GOMAXPROCS(0), *full, *seed, time.Now().Format("2006-01-02"))

	section := func(title string) func() {
		fmt.Fprintf(w, "== %s ==\n", title)
		start := time.Now()
		return func() { fmt.Fprintf(w, "(elapsed %v)\n\n", time.Since(start).Round(time.Millisecond)) }
	}

	done := section("Section 2: thresholds c*(k,r)")
	experiments.RenderThresholdTable(w, experiments.ThresholdTable([]int{2, 3, 4}, []int{2, 3, 4, 5}))
	done()

	done = section("Table 1: rounds vs n (r=4, k=2)")
	t1 := experiments.DefaultTable1()
	t1.Seed = *seed
	if !*full {
		t1.Ns = []int{10000, 20000, 40000, 80000, 160000, 320000, 640000}
		t1.Trials = 25
	}
	res1 := experiments.RunTable1(t1)
	res1.Render(w)
	fmt.Fprintf(w, "# below-threshold (c=0.70) log log n slope: %.3f\n", res1.GrowthFit(0, false))
	fmt.Fprintf(w, "# above-threshold (c=0.85) log n slope: %.3f\n", res1.GrowthFit(len(t1.Cs)-1, true))
	done()

	done = section("Table 2: recurrence vs simulation (r=4, k=2, n=1e6)")
	t2 := experiments.DefaultTable2()
	t2.Seed = *seed
	if !*full {
		t2.Trials = 5
	}
	res2 := experiments.RunTable2(t2)
	res2.Render(w)
	done()

	done = section("Table 3: IBLT serial vs parallel (r=3)")
	t3 := experiments.DefaultIBLT(3)
	t3.Seed = *seed
	if *full {
		t3.Cells = 1 << 24
	}
	experiments.RunIBLT(t3).Render(w)
	done()

	done = section("Table 4: IBLT serial vs parallel (r=4)")
	t4 := experiments.DefaultIBLT(4)
	t4.Seed = *seed
	if *full {
		t4.Cells = 1 << 24
	}
	experiments.RunIBLT(t4).Render(w)
	done()

	done = section("Table 5: subtable peeling subrounds (r=4, k=2)")
	t5 := experiments.DefaultTable5()
	t5.Seed = *seed
	if !*full {
		t5.Ns = []int{10000, 20000, 40000, 80000, 160000, 320000, 640000}
		t5.Trials = 25
	}
	experiments.RunTable5(t5).Render(w)
	done()

	done = section("Table 6: subtable recurrence vs simulation (r=4, k=2, n=1e6, c=0.7)")
	t6 := experiments.DefaultTable6()
	t6.Seed = *seed
	if !*full {
		t6.Trials = 5
	}
	experiments.RunTable6(t6).Render(w)
	done()

	done = section("Figure 1: beta trace near the threshold (k=2, r=4)")
	experiments.RunFigure1(experiments.DefaultFigure1()).Render(w)
	done()

	if *nu {
		done = section("Theorem 5: rounds vs gap nu = c* - c (idealized recurrence)")
		experiments.RunNuSweep(experiments.DefaultNuSweep()).Render(w)
		done()

		done = section("Theorem 5: rounds vs gap (measured on graphs)")
		empCfg := experiments.DefaultEmpiricalNu()
		if !*full {
			empCfg.N = 1 << 19
			empCfg.Trials = 3
		}
		experiments.RunEmpiricalNu(empCfg).Render(w)
		done()
	}

	done = section("Model validation: tree MC vs recurrence vs graph (Section 3.1 chain)")
	valCfg := experiments.DefaultModelValidation()
	if !*full {
		valCfg.N = 1 << 19
		valCfg.TreeTrials = 20000
	}
	experiments.RenderModelValidation(w, experiments.RunModelValidation(valCfg))
	done()
}
