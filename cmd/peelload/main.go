// Command peelload drives many concurrent peeling jobs against the
// Runtime serving API — the multi-tenant scenario the ROADMAP's "heavy
// traffic from millions of users" north star implies. It runs J
// identical jobs (IBLT decodes by default; MPHF builds, set
// reconciliations, and erasure decodes via -op) under two topologies at
// fixed total cores:
//
//   - shared:   one repro.Runtime of -workers workers, tenants admitted
//     through Runtime.Go (concurrent For batches spread across helpers
//     via the rotating dispatch offset);
//   - isolated: J private Runtimes of max(1, workers/J) workers each,
//     the pool-per-tenant layout a server would otherwise be forced
//     into.
//
// It reports wall time, aggregate throughput, and the Runtime's
// backpressure stats for each topology. With -cancel-after the shared
// run's context is canceled mid-load, demonstrating (and asserting)
// prompt cooperative cancellation: the run fails unless at least one
// job was aborted with the context error and the runtime counted it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/erasure"
	"repro/internal/iblt"
	"repro/internal/mphf"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/server/client"
)

func randomKeys(n int, seed uint64) []uint64 {
	gen := rng.New(seed)
	keys := make([]uint64, n)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = gen.Uint64()
		}
	}
	return keys
}

// job is one tenant's workload: run runs one repetition on the given
// pool, honoring ctx; units is the number of "items" (keys/symbols) a
// repetition processes, for throughput reporting.
type job struct {
	run   func(ctx context.Context, p *repro.WorkerPool) error
	units int
}

func makeJob(op string, nkeys, r int, load float64, seed uint64) job {
	switch op {
	case "decode":
		cells := int(float64(nkeys) / load)
		keys := randomKeys(nkeys, seed)
		master := iblt.New(cells, r, seed^0xdec0de)
		master.InsertAll(keys)
		return job{units: nkeys, run: func(ctx context.Context, p *repro.WorkerPool) error {
			res, err := master.Clone().DecodeParallelFrontierCtx(ctx, p)
			if err != nil {
				return err
			}
			if !res.Complete {
				return fmt.Errorf("decode incomplete at load %.2f", load)
			}
			return nil
		}}
	case "build":
		keys := randomKeys(nkeys, seed)
		return job{units: nkeys, run: func(ctx context.Context, p *repro.WorkerPool) error {
			_, err := mphf.BuildCtx(ctx, keys, mphf.DefaultGamma, seed, 10, p)
			return err
		}}
	case "reconcile":
		diff := nkeys/100 + 8
		common := randomKeys(nkeys, seed)
		local := append(append([]uint64(nil), common...), randomKeys(diff, seed^1)...)
		remote := append(append([]uint64(nil), common...), randomKeys(diff, seed^2)...)
		return job{units: nkeys, run: func(ctx context.Context, p *repro.WorkerPool) error {
			_, _, _, err := iblt.ReconcileCtx(ctx, local, remote, seed, 1.5, p)
			return err
		}}
	case "erasure":
		cells := int(float64(nkeys)/load/4) + 64
		code := erasure.NewCode(cells, max(3, r), seed)
		data := randomKeys(nkeys, seed)
		checks := code.Encode(data)
		losses := cells / 2
		return job{units: nkeys, run: func(ctx context.Context, p *repro.WorkerPool) error {
			got := append([]uint64(nil), data...)
			present := make([]bool, len(data))
			gen := rng.New(seed ^ 3)
			for i := range present {
				present[i] = true
			}
			for _, i := range gen.Perm(len(data))[:losses] {
				got[i], present[i] = 0, false
			}
			return code.DecodeCtx(ctx, got, present, checks, p)
		}}
	default:
		fmt.Fprintf(os.Stderr, "peelload: unknown -op %q (decode|build|reconcile|erasure)\n", op)
		os.Exit(2)
		return job{}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// makeNetJob is makeJob with the work shipped to a peelserved instance
// instead of the in-process pool: the tenant goroutines still run
// through the local Runtime (admission, stats, cancellation), but each
// repetition is a client round-trip, so the load lands on the server's
// shedding and deadline machinery. The client retries OVERLOADED
// replies with the server's hint, so a saturated server degrades to
// latency, not failures.
func makeNetJob(cl *client.Client, op string, nkeys, r int, load float64, seed uint64) job {
	switch op {
	case "decode":
		cells := int(float64(nkeys) / load)
		keys := randomKeys(nkeys, seed)
		master := iblt.New(cells, r, seed^0xdec0de)
		master.InsertAll(keys)
		wire, err := master.MarshalBinary()
		if err != nil {
			fmt.Fprintf(os.Stderr, "peelload: marshal sketch: %v\n", err)
			os.Exit(1)
		}
		return job{units: nkeys, run: func(ctx context.Context, _ *repro.WorkerPool) error {
			res, err := cl.Decode(ctx, wire)
			if err != nil {
				return err
			}
			if !res.Complete || len(res.Added) != nkeys {
				return fmt.Errorf("remote decode recovered %d/%d keys (complete=%v)", len(res.Added), nkeys, res.Complete)
			}
			return nil
		}}
	case "build":
		keys := randomKeys(nkeys, seed)
		return job{units: nkeys, run: func(ctx context.Context, _ *repro.WorkerPool) error {
			img, err := cl.BuildMPHF(ctx, keys, seed)
			if err != nil {
				return err
			}
			if _, err := repro.OpenMPHF(img); err != nil {
				return fmt.Errorf("remote build returned bad image: %w", err)
			}
			return nil
		}}
	case "reconcile":
		diff := nkeys/100 + 8
		common := randomKeys(nkeys, seed)
		local := append(append([]uint64(nil), common...), randomKeys(diff, seed^1)...)
		remote := append(append([]uint64(nil), common...), randomKeys(diff, seed^2)...)
		return job{units: nkeys, run: func(ctx context.Context, _ *repro.WorkerPool) error {
			res, err := cl.Reconcile(ctx, local, remote, seed, 1.5)
			if err != nil {
				return err
			}
			if len(res.OnlyLocal) != diff || len(res.OnlyRemote) != diff {
				return fmt.Errorf("remote reconcile found %d/%d differences, want %d/%d",
					len(res.OnlyLocal), len(res.OnlyRemote), diff, diff)
			}
			return nil
		}}
	default:
		fmt.Fprintf(os.Stderr, "peelload: -op %q not supported with -addr (decode|build|reconcile)\n", op)
		os.Exit(2)
		return job{}
	}
}

// runTenants admits every tenant to rt via Runtime.Go under ctx and
// waits; it returns the elapsed time, how many jobs were canceled by
// ctx, and the first non-context error.
func runTenants(ctx context.Context, rt *repro.Runtime, tenants []job, reps int) (time.Duration, int, error) {
	start := time.Now()
	waits := make([]func() error, 0, len(tenants))
	var admissionErr error
	for j := range tenants {
		t := tenants[j]
		wait, err := rt.Go(ctx, func(ctx context.Context, p *repro.WorkerPool) error {
			for i := 0; i < reps; i++ {
				if err := t.run(ctx, p); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			admissionErr = err
			break
		}
		waits = append(waits, wait)
	}
	canceled := 0
	var firstErr error
	for _, wait := range waits {
		err := wait()
		switch {
		case err == nil:
		case parallel.IsCancellation(err):
			canceled++
		case firstErr == nil:
			firstErr = err
		}
	}
	if firstErr == nil && admissionErr != nil && !parallel.IsCancellation(admissionErr) {
		firstErr = admissionErr
	}
	return time.Since(start), canceled, firstErr
}

func main() {
	jobs := flag.Int("jobs", 4, "number of concurrent jobs (tenants)")
	mode := flag.String("mode", "both", "shared | isolated | both")
	op := flag.String("op", "decode", "workload per job: decode | build | reconcile | erasure")
	nkeys := flag.Int("keys", 20000, "keys (or symbols) per job")
	r := flag.Int("r", 3, "subtables / hashes per key")
	load := flag.Float64("load", 0.75, "IBLT / erasure load factor")
	reps := flag.Int("reps", 4, "repetitions per job")
	workers := flag.Int("workers", 0, "total worker budget (0 = GOMAXPROCS)")
	maxJobs := flag.Int("maxjobs", 0, "Runtime admission bound (0 = unbounded)")
	seed := flag.Uint64("seed", 2014, "base RNG seed")
	cancelAfter := flag.Duration("cancel-after", 0, "cancel the shared run's context after this delay and require ≥1 job canceled (0 = off)")
	addr := flag.String("addr", "", "drive the workload against a peelserved instance at this address instead of in-process (forces -mode=shared; ops: decode|build|reconcile)")
	flag.Parse()

	w := *workers
	if w <= 0 {
		w = parallel.Workers()
	}
	var cl *client.Client
	if *addr != "" {
		cl = client.Dial(*addr, client.Options{})
		defer cl.Close()
		*mode = "shared" // the isolated topology is meaningless against one remote server
	}
	tenants := make([]job, *jobs)
	for j := range tenants {
		tseed := *seed + uint64(j)*0x9e3779b97f4a7c15
		if cl != nil {
			tenants[j] = makeNetJob(cl, *op, *nkeys, *r, *load, tseed)
		} else {
			tenants[j] = makeJob(*op, *nkeys, *r, *load, tseed)
		}
	}
	totalUnits := 0
	for _, t := range tenants {
		totalUnits += t.units * *reps
	}
	if *addr != "" {
		fmt.Printf("peelload: op=%s jobs=%d keys/job=%d reps=%d addr=%s\n",
			*op, *jobs, *nkeys, *reps, *addr)
	} else {
		fmt.Printf("peelload: op=%s jobs=%d keys/job=%d reps=%d workers=%d\n",
			*op, *jobs, *nkeys, *reps, w)
	}

	report := func(name string, d time.Duration, st repro.RuntimeStats, err error) float64 {
		if err != nil {
			fmt.Fprintf(os.Stderr, "peelload: %s: %v\n", name, err)
			os.Exit(1)
		}
		rate := float64(totalUnits) / d.Seconds()
		fmt.Printf("  %-9s %10v  %12.0f keys/s aggregate\n", name, d.Round(time.Microsecond), rate)
		fmt.Printf("            stats: admitted=%d rejected=%d canceled=%d queue=%d busy=%d\n",
			st.JobsAdmitted, st.JobsRejected, st.JobsCanceled, st.QueueDepth, st.BusyHelpers)
		if st.JobsAdmitted == 0 {
			fmt.Fprintf(os.Stderr, "peelload: %s: JobsAdmitted stayed zero\n", name)
			os.Exit(1)
		}
		return rate
	}

	// Cancellation demonstration: cancel the shared run mid-load and
	// require the runtime to have aborted and counted jobs.
	if *cancelAfter > 0 {
		rt := repro.NewRuntime(repro.RuntimeOptions{Workers: w, MaxJobs: *maxJobs})
		ctx, cancel := context.WithTimeout(context.Background(), *cancelAfter)
		d, canceled, err := runTenants(ctx, rt, tenants, *reps)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "peelload: cancel run: %v\n", err)
			os.Exit(1)
		}
		st := rt.Stats()
		if err := rt.Shutdown(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "peelload: shutdown after cancel run: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  cancel    %10v  %d of %d jobs canceled (runtime counted %d)\n",
			d.Round(time.Microsecond), canceled, *jobs, st.JobsCanceled)
		if canceled == 0 || st.JobsCanceled == 0 {
			fmt.Fprintf(os.Stderr, "peelload: -cancel-after=%v expired but no job was canceled (work too small?)\n", *cancelAfter)
			os.Exit(1)
		}
		return
	}

	var sharedRate, isolatedRate float64
	if *mode == "shared" || *mode == "both" {
		rt := repro.NewRuntime(repro.RuntimeOptions{Workers: w, MaxJobs: *maxJobs})
		d, _, err := runTenants(context.Background(), rt, tenants, *reps)
		st := rt.Stats()
		if serr := rt.Shutdown(context.Background()); serr != nil && err == nil {
			err = serr
		}
		sharedRate = report("shared", d, st, err)
	}
	if *mode == "isolated" || *mode == "both" {
		per := w / *jobs
		if per < 1 {
			per = 1
		}
		rts := make([]*repro.Runtime, *jobs)
		for j := range rts {
			rts[j] = repro.NewRuntime(repro.RuntimeOptions{Workers: per})
		}
		start := time.Now()
		waits := make([]func() error, *jobs)
		for j := range tenants {
			t := tenants[j]
			wait, err := rts[j].Go(context.Background(), func(ctx context.Context, p *repro.WorkerPool) error {
				for i := 0; i < *reps; i++ {
					if err := t.run(ctx, p); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "peelload: isolated admission: %v\n", err)
				os.Exit(1)
			}
			waits[j] = wait
		}
		var firstErr error
		admitted := int64(0)
		for j, wait := range waits {
			if err := wait(); err != nil && firstErr == nil {
				firstErr = err
			}
			admitted += rts[j].Stats().JobsAdmitted
			if err := rts[j].Shutdown(context.Background()); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		d := time.Since(start)
		var agg repro.RuntimeStats
		agg.JobsAdmitted = admitted
		isolatedRate = report("isolated", d, agg, firstErr)
	}
	if *mode == "both" && isolatedRate > 0 {
		fmt.Printf("  shared/isolated throughput ratio: %.2f\n", sharedRate/isolatedRate)
	}
}
