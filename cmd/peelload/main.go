// Command peelload drives many concurrent peeling jobs against the
// shared worker-pool runtime — the multi-tenant serving scenario the
// ROADMAP's "heavy traffic from millions of users" north star implies.
// It runs J identical jobs (IBLT decodes by default; MPHF builds, set
// reconciliations, and erasure decodes via -op) under two topologies at
// fixed total cores:
//
//   - shared:   one pool of -workers workers, jobs submitted through
//     parallel.Group (concurrent For batches spread across helpers via
//     the rotating dispatch offset);
//   - isolated: J private pools of max(1, workers/J) workers each, the
//     pool-per-tenant layout a server would otherwise be forced into.
//
// It reports wall time and aggregate throughput for each topology and
// their ratio. On a single-CPU machine the two are expected to be close
// (everything timeshares one core); the interesting regime is many jobs
// of tail-heavy work on many cores.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/erasure"
	"repro/internal/iblt"
	"repro/internal/mphf"
	"repro/internal/parallel"
	"repro/internal/rng"
)

func randomKeys(n int, seed uint64) []uint64 {
	gen := rng.New(seed)
	keys := make([]uint64, n)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = gen.Uint64()
		}
	}
	return keys
}

// job is one tenant's workload: run runs one repetition on the given
// pool; units is the number of "items" (keys/symbols) a repetition
// processes, for throughput reporting.
type job struct {
	run   func(p *parallel.Pool) error
	units int
}

func makeJob(op string, nkeys, r int, load float64, seed uint64) job {
	switch op {
	case "decode":
		cells := int(float64(nkeys) / load)
		keys := randomKeys(nkeys, seed)
		master := iblt.New(cells, r, seed^0xdec0de)
		master.InsertAll(keys)
		return job{units: nkeys, run: func(p *parallel.Pool) error {
			if res := master.Clone().DecodeParallelFrontierWithPool(p); !res.Complete {
				return fmt.Errorf("decode incomplete at load %.2f", load)
			}
			return nil
		}}
	case "build":
		keys := randomKeys(nkeys, seed)
		return job{units: nkeys, run: func(p *parallel.Pool) error {
			_, err := mphf.BuildWithPool(keys, mphf.DefaultGamma, seed, 10, p)
			return err
		}}
	case "reconcile":
		diff := nkeys/100 + 8
		common := randomKeys(nkeys, seed)
		local := append(append([]uint64(nil), common...), randomKeys(diff, seed^1)...)
		remote := append(append([]uint64(nil), common...), randomKeys(diff, seed^2)...)
		return job{units: nkeys, run: func(p *parallel.Pool) error {
			_, _, _, err := iblt.ReconcileWithPool(local, remote, seed, 1.5, p)
			return err
		}}
	case "erasure":
		cells := int(float64(nkeys)/load/4) + 64
		code := erasure.NewCode(cells, max(3, r), seed)
		data := randomKeys(nkeys, seed)
		checks := code.Encode(data)
		losses := cells / 2
		return job{units: nkeys, run: func(p *parallel.Pool) error {
			got := append([]uint64(nil), data...)
			present := make([]bool, len(data))
			gen := rng.New(seed ^ 3)
			for i := range present {
				present[i] = true
			}
			for _, i := range gen.Perm(len(data))[:losses] {
				got[i], present[i] = 0, false
			}
			return code.DecodeWithPool(got, present, checks, p)
		}}
	default:
		fmt.Fprintf(os.Stderr, "peelload: unknown -op %q (decode|build|reconcile|erasure)\n", op)
		os.Exit(2)
		return job{}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func main() {
	jobs := flag.Int("jobs", 4, "number of concurrent jobs (tenants)")
	mode := flag.String("mode", "both", "shared | isolated | both")
	op := flag.String("op", "decode", "workload per job: decode | build | reconcile | erasure")
	nkeys := flag.Int("keys", 20000, "keys (or symbols) per job")
	r := flag.Int("r", 3, "subtables / hashes per key")
	load := flag.Float64("load", 0.75, "IBLT / erasure load factor")
	reps := flag.Int("reps", 4, "repetitions per job")
	workers := flag.Int("workers", 0, "total worker budget (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 2014, "base RNG seed")
	flag.Parse()

	w := *workers
	if w <= 0 {
		w = parallel.Workers()
	}
	tenants := make([]job, *jobs)
	for j := range tenants {
		tenants[j] = makeJob(*op, *nkeys, *r, *load, *seed+uint64(j)*0x9e3779b97f4a7c15)
	}
	totalUnits := 0
	for _, t := range tenants {
		totalUnits += t.units * *reps
	}
	fmt.Printf("peelload: op=%s jobs=%d keys/job=%d reps=%d workers=%d\n",
		*op, *jobs, *nkeys, *reps, w)

	runShared := func() (time.Duration, error) {
		pool := parallel.NewPool(w)
		defer pool.Close()
		group := pool.NewGroup(0)
		start := time.Now()
		for j := range tenants {
			t := tenants[j]
			group.Go(func(p *parallel.Pool) error {
				for i := 0; i < *reps; i++ {
					if err := t.run(p); err != nil {
						return err
					}
				}
				return nil
			})
		}
		err := group.Wait()
		return time.Since(start), err
	}
	runIsolated := func() (time.Duration, error) {
		per := w / *jobs
		if per < 1 {
			per = 1
		}
		pools := make([]*parallel.Pool, *jobs)
		for j := range pools {
			pools[j] = parallel.NewPool(per)
			defer pools[j].Close()
		}
		start := time.Now()
		done := make(chan error, *jobs)
		for j := range tenants {
			go func() {
				var err error
				for i := 0; i < *reps && err == nil; i++ {
					err = tenants[j].run(pools[j])
				}
				done <- err
			}()
		}
		var firstErr error
		for range tenants {
			if err := <-done; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return time.Since(start), firstErr
	}

	report := func(name string, d time.Duration, err error) float64 {
		if err != nil {
			fmt.Fprintf(os.Stderr, "peelload: %s: %v\n", name, err)
			os.Exit(1)
		}
		rate := float64(totalUnits) / d.Seconds()
		fmt.Printf("  %-9s %10v  %12.0f keys/s aggregate\n", name, d.Round(time.Microsecond), rate)
		return rate
	}

	var sharedRate, isolatedRate float64
	if *mode == "shared" || *mode == "both" {
		d, err := runShared()
		sharedRate = report("shared", d, err)
	}
	if *mode == "isolated" || *mode == "both" {
		d, err := runIsolated()
		isolatedRate = report("isolated", d, err)
	}
	if *mode == "both" && isolatedRate > 0 {
		fmt.Printf("  shared/isolated throughput ratio: %.2f\n", sharedRate/isolatedRate)
	}
}
