//go:build unix

package main

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps size bytes of f read-only. Page-aligned mappings are
// always 8-byte aligned, so the zero-copy loader accepts them directly.
// The returned closer munmaps; the image must not be used after it.
func mmapFile(f *os.File, size int) ([]byte, func(), error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { syscall.Munmap(data) }, nil
}
