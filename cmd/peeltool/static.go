// Static-function subcommands: offline build of the flat image, and the
// online dump/query side that loads it zero-copy (mmap when the platform
// supports it, os.ReadFile otherwise).
//
//	peeltool build -kind map -n 1000000 -seed 7 -o table.sfn
//	peeltool dump  -i table.sfn
//	peeltool query -i table.sfn -key 42 -mmap
//	peeltool query -i table.sfn -verify
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/layout"
	"repro/internal/rng"
)

// syntheticKey derives the i-th build key from keyseed. Keys (and the
// values stored for them, see syntheticValue) are pure functions of
// (keyseed, i), so `query -verify` can regenerate the exact build input
// from nothing but the image geometry and the keyseed.
func syntheticKey(keyseed uint64, i int) uint64 {
	return rng.Mix64(keyseed + uint64(i)*0x9e3779b97f4a7c15)
}

// syntheticValue is the value stored for a key in `build -kind map`:
// derived from the key alone, so a verifier needs no side file.
func syntheticValue(key uint64) uint64 { return rng.Mix64(key ^ 0xa0761d6478bd642f) }

func runBuild(args []string) {
	fs := flag.NewFlagSet("peeltool build", flag.ExitOnError)
	kind := fs.String("kind", "map", "what to build: map (static key→value map) or mphf")
	n := fs.Int("n", 1000000, "number of keys")
	seed := fs.Uint64("seed", 7, "build seed (attempt ladder)")
	keyseed := fs.Uint64("keyseed", 1, "seed for the synthetic key set")
	out := fs.String("o", "", "output image file (required)")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("build: -o is required"))
	}

	keys := make([]uint64, *n)
	for i := range keys {
		keys[i] = syntheticKey(*keyseed, i)
	}

	var img []byte
	switch *kind {
	case "map":
		values := make([]uint64, *n)
		for i, k := range keys {
			values[i] = syntheticValue(k)
		}
		sm, err := repro.BuildStaticMap(keys, values, *seed)
		if err != nil {
			fatal(err)
		}
		img = sm.Bytes()
	case "mphf":
		f, err := repro.BuildMPHF(keys, *seed)
		if err != nil {
			fatal(err)
		}
		img = f.Bytes()
	default:
		fatal(fmt.Errorf("build: unknown -kind %q (want map or mphf)", *kind))
	}

	// Crash-safe write: temp file + fsync + atomic rename, so an
	// interrupted build never leaves a torn image at -o (a reader sees
	// the old file or the new one, nothing in between).
	if err := layout.WriteFile(*out, img); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: kind=%s keys=%d bytes=%d\n", *out, *kind, *n, len(img))
}

// loadImage maps or reads the image file and validates it. The returned
// closer unmaps/releases the bytes; call it only after the last lookup.
func loadImage(path string, useMmap bool) (*layout.Image, func(), error) {
	if useMmap {
		if !mmapSupported {
			return nil, nil, fmt.Errorf("-mmap is not supported on this platform")
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return nil, nil, err
		}
		data, closer, err := mmapFile(f, int(st.Size()))
		if err != nil {
			return nil, nil, err
		}
		im, err := layout.Open(data)
		if err != nil {
			closer()
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		return im, closer, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	im, err := layout.Open(layout.Aligned(data))
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return im, func() {}, nil
}

func kindName(k layout.Kind) string {
	switch k {
	case layout.KindMPHF:
		return "mphf"
	case layout.KindBloomier:
		return "map"
	}
	return fmt.Sprintf("kind(%d)", k)
}

func runDump(args []string) {
	fs := flag.NewFlagSet("peeltool dump", flag.ExitOnError)
	in := fs.String("i", "", "input image file (required)")
	useMmap := fs.Bool("mmap", false, "map the file instead of reading it")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("dump: -i is required"))
	}
	im, closer, err := loadImage(*in, *useMmap)
	if err != nil {
		fatal(err)
	}
	defer closer()
	fmt.Printf("image: kind=%s version=%d keys=%d subSize=%d vertices=%d bytes=%d seed=%#x\n",
		kindName(im.Kind), layout.Version, im.Keys, im.SubSize, im.Vertices(), im.Len(), im.Seed)
	fmt.Printf("hash seeds: %#x %#x %#x\n", im.HSeed[0], im.HSeed[1], im.HSeed[2])
	fmt.Printf("overhead: %.4f vertices/key (γ)\n", float64(im.Vertices())/float64(im.Keys))
}

func runQuery(args []string) {
	fs := flag.NewFlagSet("peeltool query", flag.ExitOnError)
	in := fs.String("i", "", "input image file (required)")
	useMmap := fs.Bool("mmap", false, "map the file instead of reading it")
	key := fs.Uint64("key", 0, "single key to look up")
	verify := fs.Bool("verify", false, "regenerate the synthetic key set and check every answer")
	keyseed := fs.Uint64("keyseed", 1, "key-set seed used at build time (with -verify)")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("query: -i is required"))
	}
	im, closer, err := loadImage(*in, *useMmap)
	if err != nil {
		fatal(err)
	}
	defer closer()

	var fn repro.StaticFunc
	switch im.Kind {
	case layout.KindMPHF:
		f, err := repro.OpenMPHF(im.Bytes())
		if err != nil {
			fatal(err)
		}
		fn = f
	case layout.KindBloomier:
		sm, err := repro.OpenStaticMap(im.Bytes())
		if err != nil {
			fatal(err)
		}
		fn = sm
	default:
		fatal(fmt.Errorf("query: unknown image kind %d", im.Kind))
	}

	if !*verify {
		fmt.Printf("%d -> %d\n", *key, fn.LookupValue(*key))
		return
	}

	bad := 0
	switch im.Kind {
	case layout.KindBloomier:
		for i := 0; i < im.Keys; i++ {
			k := syntheticKey(*keyseed, i)
			if fn.LookupValue(k) != syntheticValue(k) {
				bad++
			}
		}
	case layout.KindMPHF:
		seen := make([]bool, im.Keys)
		for i := 0; i < im.Keys; i++ {
			v := fn.LookupValue(syntheticKey(*keyseed, i))
			if v >= uint64(im.Keys) || seen[v] {
				bad++
				continue
			}
			seen[v] = true
		}
	}
	if bad != 0 {
		fatal(fmt.Errorf("verify: %d of %d keys answered wrong (wrong -keyseed, or corrupt image?)", bad, im.Keys))
	}
	fmt.Printf("verify: all %d keys answer correctly\n", im.Keys)
}
