//go:build !unix

package main

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int) ([]byte, func(), error) {
	return nil, nil, errors.New("mmap not supported on this platform")
}
