// Command peeltool generates, stores, loads, and peels hypergraphs in
// the repository's binary format — the glue for experimenting with
// external or hand-built instances — and builds/serves static-function
// images in the flat layout (see the build, dump, and query
// subcommands in static.go).
//
//	peeltool -gen -n 100000 -c 0.7 -r 4 -o graph.hgr   # generate & save
//	peeltool -i graph.hgr -k 2                          # load & peel
//	peeltool -gen -n 100000 -c 0.7 -r 4 -k 2            # generate & peel
//
//	peeltool build -kind map -n 1000000 -o table.sfn    # offline build
//	peeltool dump -i table.sfn                          # image geometry
//	peeltool query -i table.sfn -key 42 -mmap           # zero-copy serve
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/layout"
	"repro/internal/rng"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "build":
			runBuild(os.Args[2:])
			return
		case "dump":
			runDump(os.Args[2:])
			return
		case "query":
			runQuery(os.Args[2:])
			return
		}
	}

	gen := flag.Bool("gen", false, "generate a random hypergraph")
	n := flag.Int("n", 100000, "vertices (generation)")
	c := flag.Float64("c", 0.7, "edge density (generation)")
	r := flag.Int("r", 4, "edge arity (generation)")
	part := flag.Bool("partitioned", false, "generate the partitioned (subtable) model")
	seed := flag.Uint64("seed", 2014, "generation seed")
	in := flag.String("i", "", "input hypergraph file")
	out := flag.String("o", "", "output hypergraph file (with -gen)")
	k := flag.Int("k", 2, "core parameter for peeling")
	subtables := flag.Bool("subtables", false, "peel with subrounds (needs a partitioned graph)")
	depths := flag.Bool("depths", false, "also print the peel-depth histogram")
	flag.Parse()

	var g *hypergraph.Hypergraph
	switch {
	case *gen:
		m := int(*c * float64(*n))
		if *part {
			nn := *n - *n%*r
			g = hypergraph.Partitioned(nn, m, *r, rng.New(*seed))
		} else {
			g = hypergraph.Uniform(*n, m, *r, rng.New(*seed))
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		g, err = hypergraph.ReadFrom(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -gen or -i; see -help")
		os.Exit(2)
	}

	fmt.Printf("hypergraph: n=%d m=%d r=%d density=%.4f partitioned=%v\n",
		g.N, g.M, g.R, g.EdgeDensity(), g.SubtableSize != 0)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if _, err := g.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *k > 0 {
		var res *core.Result
		if *subtables {
			res = core.Subtables(g, *k, core.Options{})
			fmt.Printf("subtable peel: %d rounds (%d subrounds)\n", res.Rounds, res.Subrounds)
		} else {
			res = core.Parallel(g, *k, core.Options{})
			fmt.Printf("parallel peel: %d rounds\n", res.Rounds)
		}
		fmt.Printf("%d-core: %d vertices, %d edges (empty=%v)\n",
			*k, res.CoreVertices, res.CoreEdges, res.Empty())
		if *depths {
			d := core.Depths(g, *k)
			hist := map[int32]int{}
			for _, dv := range d {
				hist[dv]++
			}
			fmt.Println("depth histogram (round removed -> vertices; -1 = core):")
			for round := int32(-1); ; round++ {
				if cnt, ok := hist[round]; ok {
					fmt.Printf("  %3d: %d\n", round, cnt)
				}
				if int(round) > res.Rounds {
					break
				}
			}
		}
	}
}

// Exit codes: 1 generic failure, 2 usage, 3 image rejected by
// validation (bad magic/version/bounds/alignment or checksum mismatch —
// a corrupt, truncated, or torn file). The distinct code lets scripts
// and orchestrators tell "this image is damaged, rebuild or refetch it"
// from transient operational errors.
const exitBadImage = 3

func fatal(err error) {
	if errors.Is(err, layout.ErrBadImage) || errors.Is(err, layout.ErrUnaligned) {
		fmt.Fprintf(os.Stderr, "peeltool: image rejected: %v\n", err)
		fmt.Fprintln(os.Stderr, "peeltool: the file is corrupt, truncated, or torn; rebuild or refetch it")
		os.Exit(exitBadImage)
	}
	fmt.Fprintln(os.Stderr, "peeltool:", err)
	os.Exit(1)
}
