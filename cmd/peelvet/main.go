// Command peelvet runs the repository's invariant analyzers (see
// internal/analysis): nospawn, ctxbarrier, nounsafe, nopanic,
// atomicshard, detflow, hotalloc, and nodeprecated, plus the always-on
// suppression-hygiene check reported as "peelvet".
//
// It speaks two protocols:
//
//   - Standalone: `peelvet [-tags=...] [-json] [packages]` loads the
//     packages (default ./..., test files included) itself, analyzes
//     them in dependency order so analyzer facts flow from each package
//     to its importers, and prints findings sorted by position. CI runs
//     it this way.
//   - Vet tool: `go vet -vettool=$(which peelvet) ./...` — cmd/go drives
//     the tool one package at a time through the @cfg unit-checker
//     protocol, reusing the build cache for type information and for
//     the .vetx fact files inter-procedural analyzers exchange.
//
// With -json, each diagnostic is one JSON object on its own line —
// file, line, column, analyzer, message, suppressed — including
// findings a //peelvet:allow directive covers (suppressed=true), so CI
// can audit the live exception list; text output and the exit status
// skip suppressed findings.
//
// Exit status is 0 when clean, 2 when there are findings, and 1 when
// loading or type-checking fails (a broken tree is never reported as
// clean).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json wire form of one finding, one object per
// line.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run(args []string, stdout, stderr *os.File) int {
	checkers := analysis.Analyzers()

	// cmd/go handshakes: version for the vet cache key, flags before
	// forwarding any, then one @cfg invocation per package.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			analysis.PrintVersion(stdout, "peelvet", checkers)
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			analysis.PrintFlags(stdout)
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			// cmd/go invokes the tool once per package with the bare path
			// of its vet config file as the sole argument.
			return analysis.RunUnitchecker(args[0], checkers, stderr)
		}
	}

	fs := flag.NewFlagSet("peelvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tags := fs.String("tags", "", "comma-separated build tags, as for go build")
	noTests := fs.Bool("notests", false, "skip _test.go files")
	asJSON := fs.Bool("json", false, "emit one JSON object per diagnostic (suppressed findings included)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: peelvet [-tags=list] [-notests] [-json] [packages]\n")
		fmt.Fprintf(fs.Output(), "   or: go vet -vettool=$(which peelvet) [packages]\n\nAnalyzers:\n")
		for _, a := range checkers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := analysis.LoadConfig{Tests: !*noTests}
	if *tags != "" {
		cfg.BuildFlags = []string{"-tags=" + *tags}
	}
	pkgs, err := analysis.Load(cfg, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "peelvet: %v\n", err)
		return analysis.ExitError
	}

	// Analyze in the order Load returns — "go list -deps" order, every
	// dependency before its importers — threading one fact store through
	// the run so detflow/hotalloc/nodeprecated verdicts cross package
	// boundaries. Diagnostics are collected globally and sorted so output
	// is deterministic across runs and package orderings.
	store := analysis.NewFactStore()
	status := analysis.ExitClean
	type located struct {
		d   analysis.Diagnostic
		out jsonDiagnostic
	}
	var all []located
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "peelvet: %s: %v\n", pkg.ImportPath, terr)
			status = analysis.ExitError
		}
		if len(pkg.TypeErrors) > 0 {
			continue
		}
		diags, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, checkers, store)
		if err != nil {
			fmt.Fprintf(stderr, "peelvet: %v\n", err)
			return analysis.ExitError
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			all = append(all, located{d: d, out: jsonDiagnostic{
				File:       pos.Filename,
				Line:       pos.Line,
				Column:     pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			}})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].out, all[j].out
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})

	enc := json.NewEncoder(stdout)
	for _, l := range all {
		if *asJSON {
			if err := enc.Encode(l.out); err != nil {
				fmt.Fprintf(stderr, "peelvet: encoding diagnostic: %v\n", err)
				return analysis.ExitError
			}
		}
		if l.d.Suppressed {
			continue
		}
		if !*asJSON {
			fmt.Fprintf(stderr, "%s:%d:%d: %s: %s\n", l.out.File, l.out.Line, l.out.Column, l.out.Analyzer, l.out.Message)
		}
		if status == analysis.ExitClean {
			status = analysis.ExitFindings
		}
	}
	return status
}
