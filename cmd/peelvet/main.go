// Command peelvet runs the repository's invariant analyzers (see
// internal/analysis): nospawn, ctxbarrier, nounsafe, nopanic, and
// atomicshard.
//
// It speaks two protocols:
//
//   - Standalone: `peelvet [-tags=...] [packages]` loads the packages
//     (default ./..., test files included) itself and prints findings.
//     CI runs it this way.
//   - Vet tool: `go vet -vettool=$(which peelvet) ./...` — cmd/go drives
//     the tool one package at a time through the @cfg unit-checker
//     protocol, reusing the build cache for type information.
//
// Exit status is 0 when clean, 2 when there are findings, and 1 when
// loading or type-checking fails (a broken tree is never reported as
// clean).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	checkers := analysis.Analyzers()

	// cmd/go handshakes: version for the vet cache key, flags before
	// forwarding any, then one @cfg invocation per package.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			analysis.PrintVersion(os.Stdout, "peelvet", checkers)
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			analysis.PrintFlags(os.Stdout)
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			// cmd/go invokes the tool once per package with the bare path
			// of its vet config file as the sole argument.
			return analysis.RunUnitchecker(args[0], checkers, os.Stderr)
		}
	}

	fs := flag.NewFlagSet("peelvet", flag.ContinueOnError)
	tags := fs.String("tags", "", "comma-separated build tags, as for go build")
	noTests := fs.Bool("notests", false, "skip _test.go files")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: peelvet [-tags=list] [-notests] [packages]\n")
		fmt.Fprintf(fs.Output(), "   or: go vet -vettool=$(which peelvet) [packages]\n\nAnalyzers:\n")
		for _, a := range checkers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := analysis.LoadConfig{Tests: !*noTests}
	if *tags != "" {
		cfg.BuildFlags = []string{"-tags=" + *tags}
	}
	pkgs, err := analysis.Load(cfg, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "peelvet: %v\n", err)
		return analysis.ExitError
	}

	status := analysis.ExitClean
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "peelvet: %s: %v\n", pkg.ImportPath, terr)
			status = analysis.ExitError
		}
		if len(pkg.TypeErrors) > 0 {
			continue
		}
		diags, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, checkers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peelvet: %v\n", err)
			return analysis.ExitError
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			if status == analysis.ExitClean {
				status = analysis.ExitFindings
			}
		}
	}
	return status
}
