// Command peelserved serves the peeling runtime over TCP: the wire
// protocol of repro/internal/server (length-prefixed frames, per-request
// deadlines, load shedding, graceful drain) in front of one
// repro.Runtime. It is the deployable shape of the ROADMAP's "networked
// reconciliation service" north star: start it, point peelload -addr (or
// the internal/server/client package) at it, and SIGTERM it for a clean
// drain — in-flight requests finish, idle connections get GOAWAY, and
// the process exits 0 only if the drain completed inside -drain-timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7414", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	maxJobs := flag.Int("maxjobs", 0, "concurrent request bound; excess requests are shed (0 = 2x workers)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-request deadline when the request carries none (0 = none)")
	buildRetries := flag.Int("build-retries", 2, "seed-escalating retries for failed MPHF builds")
	reconcileRetries := flag.Int("reconcile-retries", 2, "headroom-escalating retries for incomplete reconcile decodes")
	maxFrame := flag.Int("max-frame", 0, "largest frame accepted, bytes (0 = 64 MiB)")
	retryAfter := flag.Duration("retry-after", 0, "retry hint carried in OVERLOADED replies (0 = 25ms)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may take before exiting dirty")
	flag.Parse()

	srv := server.New(server.Options{
		Workers:  *workers,
		MaxJobs:  *maxJobs,
		MaxFrame: *maxFrame,
		Policy: repro.Policy{
			JobTimeout:       *jobTimeout,
			BuildRetries:     *buildRetries,
			ReconcileRetries: *reconcileRetries,
		},
		RetryAfter: *retryAfter,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "peelserved: listen: %v\n", err)
		os.Exit(1)
	}
	// The smoke harness waits for this line before dialing.
	fmt.Printf("peelserved: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	//peelvet:allow nospawn -- the accept loop runs for the process lifetime; its exit (always after Shutdown or a listener error) is joined via serveErr below
	go func() { serveErr <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)

	select {
	case err := <-serveErr:
		// The listener failed out from under us.
		fmt.Fprintf(os.Stderr, "peelserved: serve: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Printf("peelserved: %v, draining (timeout %v)\n", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	<-serveErr // Serve returns nil once Shutdown closes the listener

	st := srv.Stats()
	fmt.Printf("peelserved: drained: conns=%d requests=%d replies=%d shed=%d conn_panics=%d frames_rejected=%d goaways=%d jobs_panicked=%d\n",
		st.ConnsAccepted, st.RequestsAccepted, st.RepliesSent, st.RequestsShed,
		st.ConnPanics, st.FramesRejected, st.GoAwaysSent, st.Runtime.JobsPanicked)
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "peelserved: drain: %v\n", drainErr)
		os.Exit(1)
	}
	if st.RequestsAccepted != st.RepliesSent {
		fmt.Fprintf(os.Stderr, "peelserved: reply invariant violated: accepted %d != replies %d\n",
			st.RequestsAccepted, st.RepliesSent)
		os.Exit(1)
	}
}
