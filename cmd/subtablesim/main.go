// Command subtablesim reproduces Tables 5 and 6 of "Parallel Peeling
// Algorithms": subround counts for the Appendix B subtable peeling
// process (Table 5) and the subtable recurrence λ′_{i,j} against
// simulation (Table 6).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/fib"
)

func main() {
	table5 := flag.Bool("table5", true, "run the Table 5 sweep (subrounds vs n)")
	table6 := flag.Bool("table6", true, "run the Table 6 comparison (subtable recurrence vs simulation)")
	full := flag.Bool("full", false, "use the paper's full sizes")
	trials := flag.Int("trials", 0, "override trial count (0 = preset)")
	seed := flag.Uint64("seed", 2014, "base RNG seed")
	flag.Parse()

	if *table5 {
		cfg := experiments.DefaultTable5()
		cfg.Seed = *seed
		if !*full {
			cfg.Ns = []int{10000, 20000, 40000, 80000, 160000, 320000}
			cfg.Trials = 50
		}
		if *trials > 0 {
			cfg.Trials = *trials
		}
		fmt.Printf("Table 5: subtable peeling subrounds, r=%d k=%d, %d trials\n", cfg.R, cfg.K, cfg.Trials)
		start := time.Now()
		res := experiments.RunTable5(cfg)
		res.Render(os.Stdout)
		fmt.Printf("# Theorem 4 subround constant r/(r log phi_{r-1} + log(k-1)) = %.3f; plain-round constant = 0.910\n",
			fib.SubroundLeadConstant(cfg.K, cfg.R))
		fmt.Printf("# elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *table6 {
		cfg := experiments.DefaultTable6()
		cfg.Seed = *seed
		if !*full {
			cfg.Trials = 10
		}
		if *trials > 0 {
			cfg.Trials = *trials
		}
		fmt.Printf("Table 6: subtable recurrence vs simulation, r=%d k=%d n=%d c=%.2f, %d trials\n",
			cfg.R, cfg.K, cfg.N, cfg.C, cfg.Trials)
		start := time.Now()
		res := experiments.RunTable6(cfg)
		res.Render(os.Stdout)
		fmt.Printf("# elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	}
}
