// Command thresholds prints the k-core appearance thresholds c*(k,r) of
// Equation (2.1) over a (k, r) grid, reproducing the Section 2 reference
// values (c*_{2,3} ≈ 0.818, c*_{2,4} ≈ 0.772, c*_{3,3} ≈ 1.553) along
// with the Theorem 1 round constants and the Theorem 4/7 subtable
// constants.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/fib"
	"repro/internal/threshold"
)

func main() {
	maxK := flag.Int("maxk", 5, "largest k to tabulate")
	maxR := flag.Int("maxr", 6, "largest r to tabulate")
	flag.Parse()

	var ks, rs []int
	for k := 2; k <= *maxK; k++ {
		ks = append(ks, k)
	}
	for r := 2; r <= *maxR; r++ {
		rs = append(rs, r)
	}
	fmt.Println("k-core emptiness thresholds c*(k,r)  [Equation (2.1)]")
	experiments.RenderThresholdTable(os.Stdout, experiments.ThresholdTable(ks, rs))

	fmt.Println()
	fmt.Println("Theorem 1 round constants 1/log((k-1)(r-1)) and Theorem 4 subround constants")
	fmt.Printf("%-4s %-4s %-12s %-12s %-10s\n", "k", "r", "1/log((k-1)(r-1))", "subround const", "overhead")
	for _, k := range ks {
		for _, r := range rs {
			if r < 3 || (k == 2 && r == 2) {
				continue
			}
			if (k-1)*(r-1) <= 1 {
				continue
			}
			fmt.Printf("%-4d %-4d %-17.4f %-14.4f %-10.4f\n",
				k, r,
				threshold.RoundLeadConstant(k, r),
				fib.SubroundLeadConstant(k, r),
				fib.SubroundOverheadFactor(r))
		}
	}
}
