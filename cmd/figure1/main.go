// Command figure1 reproduces Figure 1 of "Parallel Peeling Algorithms":
// the idealized β_i trajectory (Equation (C.1)) for densities just below
// the threshold c*_{2,4} ≈ 0.77228, whose long plateau near x* is the
// Θ(√(1/ν)) middle phase of Theorem 5. Output is a plottable table, one β
// column per density.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chart"
	"repro/internal/experiments"
)

func main() {
	c1 := flag.Float64("c1", 0.77, "first density")
	c2 := flag.Float64("c2", 0.772, "second density")
	k := flag.Int("k", 2, "core parameter")
	r := flag.Int("r", 4, "edge arity")
	maxRounds := flag.Int("rounds", 400, "maximum rounds to trace")
	table := flag.Bool("table", false, "print the raw table instead of the chart")
	flag.Parse()

	cfg := experiments.Figure1Config{
		K: *k, R: *r, Cs: []float64{*c1, *c2}, MaxRounds: *maxRounds, StopBelow: 1e-6,
	}
	res := experiments.RunFigure1(cfg)
	if *table {
		res.Render(os.Stdout)
	} else {
		series := make([]chart.Series, len(res.Series))
		for i, s := range res.Series {
			series[i] = chart.Series{Name: fmt.Sprintf("c=%.4g", s.C), Values: s.Betas}
		}
		fmt.Printf("Figure 1: beta_i near c* = %.5f (x* = %.4f)\n\n", res.CStar, res.XStar)
		chart.Render(os.Stdout, chart.Config{Width: 76, Height: 22, YLabel: "beta_i", XLabel: "round i"}, series...)
	}
	fmt.Printf("# plateau lengths (|beta - x*| < 0.1): %d rounds at c=%.4g, %d rounds at c=%.4g\n",
		res.PlateauLength(0, 0.1), *c1, res.PlateauLength(1, 0.1), *c2)
}
