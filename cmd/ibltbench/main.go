// Command ibltbench reproduces Tables 3 and 4 of "Parallel Peeling
// Algorithms": serial vs parallel IBLT insertion and recovery times at
// loads straddling the recovery threshold, for r = 3 and r = 4 hash
// functions. The paper ran a CUDA implementation on a Tesla C2070 against
// a serial C++ baseline; here both sides are Go (goroutines + atomics vs
// a single-threaded queue peel), so the comparison is the *relative*
// speedup and the recovery-percentage shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	r := flag.Int("r", 0, "hash-function count; 0 runs both r=3 (Table 3) and r=4 (Table 4)")
	logCells := flag.Int("logcells", 21, "log2 of the total cell count (paper: 24)")
	trials := flag.Int("trials", 10, "timing repetitions per row (paper: 10)")
	seed := flag.Uint64("seed", 2014, "base RNG seed")
	flag.Parse()

	rs := []int{3, 4}
	if *r != 0 {
		rs = []int{*r}
	}
	fmt.Printf("IBLT benchmark: %d cells, %d trials, GOMAXPROCS=%d\n",
		1<<*logCells, *trials, runtime.GOMAXPROCS(0))
	for _, rr := range rs {
		cfg := experiments.DefaultIBLT(rr)
		cfg.Cells = 1 << *logCells
		cfg.Trials = *trials
		cfg.Seed = *seed
		label := fmt.Sprintf("r = %d", rr)
		if rr == 3 {
			label = "Table 3 (r = 3)"
		} else if rr == 4 {
			label = "Table 4 (r = 4)"
		}
		fmt.Printf("\n%s:\n", label)
		start := time.Now()
		res := experiments.RunIBLT(cfg)
		res.Render(os.Stdout)
		fmt.Printf("# elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	}
}
