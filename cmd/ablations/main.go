// Command ablations runs the design-choice ablations called out in
// DESIGN.md: frontier vs full-scan round implementation, IBLT decode
// strategies (serial / GPU-style full-scan / frontier extension),
// peeling vs random-walk cuckoo placement thresholds, and XORSAT solver
// regimes around the two thresholds of random 3-XORSAT.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	scan := flag.Bool("scan", true, "frontier vs full-scan peeling ablation")
	decode := flag.Bool("decode", true, "IBLT decoder ablation")
	cuckoo := flag.Bool("cuckoo", true, "peeling vs random-walk placement sweep")
	xs := flag.Bool("xorsat", true, "XORSAT regime sweep")
	ensembles := flag.Bool("ensembles", true, "degree-ensemble comparison")
	construct := flag.Bool("construct", false, "sequential vs pooled instance-construction timing")
	build := flag.Bool("build", false, "builder path: sequential vs ordered parallel peel + end-to-end MPHF build")
	workers := flag.Int("workers", 0, "worker pool size for parallel peeling (0 = GOMAXPROCS)")
	flag.Parse()

	if *workers > 0 {
		parallel.SetDefaultWorkers(*workers)
	}
	fmt.Printf("ablations (GOMAXPROCS=%d, workers=%d)\n\n",
		runtime.GOMAXPROCS(0), parallel.Default().Workers())

	if *construct {
		fmt.Println("== instance construction: sequential vs pooled generation + CSR build ==")
		cfg := experiments.DefaultConstructBench()
		cfg.Workers = *workers
		experiments.RenderConstructBench(os.Stdout, cfg.Workers, experiments.RunConstructBench(cfg))
		fmt.Println()
	}

	if *build {
		fmt.Println("== build path: sequential vs ordered parallel peel (MPHF graph, γ=1.23) ==")
		cfg := experiments.DefaultBuildPath()
		cfg.Workers = *workers
		experiments.RenderBuildPath(os.Stdout, cfg.Workers, experiments.RunBuildPath(cfg))
		fmt.Println()
	}

	if *scan {
		fmt.Println("== parallel peeling: frontier vs full-scan (c=0.7, k=2, r=4) ==")
		experiments.RenderScanAblation(os.Stdout, experiments.RunScanAblation(experiments.DefaultScanAblation()))
		fmt.Println()
	}
	if *decode {
		fmt.Println("== IBLT decode: serial vs GPU-style full scan vs frontier extension ==")
		experiments.RunDecoderAblation(experiments.DefaultDecoderAblation()).Render(os.Stdout)
		fmt.Println()
	}
	if *cuckoo {
		fmt.Println("== cuckoo placement: peeling (threshold 0.818) vs random walk (threshold ~0.917), r=3 ==")
		experiments.RenderCuckooSweep(os.Stdout, experiments.RunCuckooSweep(experiments.DefaultCuckooSweep()))
		fmt.Println()
	}
	if *xs {
		fmt.Println("== random 3-XORSAT: peel-only vs peel+Gauss solve rates ==")
		experiments.RenderXORSATSweep(os.Stdout, experiments.RunXORSATSweep(experiments.DefaultXORSATSweep()))
		fmt.Println()
	}
	if *ensembles {
		fmt.Println("== degree ensembles at equal density 1.0 (r=3, k=2) ==")
		experiments.RenderEnsembleComparison(os.Stdout, experiments.RunEnsembleComparison(100000, 2014))
	}
}
