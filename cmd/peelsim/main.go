// Command peelsim reproduces Tables 1 and 2 of "Parallel Peeling
// Algorithms": the average number of parallel peeling rounds as a
// function of n at densities around c*_{2,4} ≈ 0.772 (Table 1), and the
// round-by-round survivor counts against the idealized recurrence
// prediction (Table 2).
//
// The defaults are laptop-scaled; pass -full for the paper's exact sweep
// (n up to 2.56M, 1000 trials), which takes considerably longer.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	table1 := flag.Bool("table1", true, "run the Table 1 sweep (rounds vs n)")
	table2 := flag.Bool("table2", true, "run the Table 2 comparison (recurrence vs simulation)")
	construct := flag.Bool("construct", false, "time sequential vs pooled instance construction")
	full := flag.Bool("full", false, "use the paper's full sizes (n to 2.56M, 1000 trials)")
	trials := flag.Int("trials", 0, "override trial count (0 = preset)")
	seed := flag.Uint64("seed", 2014, "base RNG seed")
	workers := flag.Int("workers", 0, "worker pool size for parallel peeling (0 = GOMAXPROCS)")
	flag.Parse()

	if *workers > 0 {
		parallel.SetDefaultWorkers(*workers)
	}

	if *construct {
		cfg := experiments.DefaultConstructBench()
		cfg.Seed = *seed
		cfg.Workers = *workers
		fmt.Printf("Construction: sequential vs pooled generation + CSR build, r=%d c=%.2f\n", cfg.R, cfg.C)
		start := time.Now()
		experiments.RenderConstructBench(os.Stdout, cfg.Workers, experiments.RunConstructBench(cfg))
		fmt.Printf("# elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *table1 {
		cfg := experiments.DefaultTable1()
		cfg.Seed = *seed
		if !*full {
			cfg.Ns = []int{10000, 20000, 40000, 80000, 160000, 320000}
			cfg.Trials = 50
		}
		if *trials > 0 {
			cfg.Trials = *trials
		}
		fmt.Printf("Table 1: parallel peeling rounds, r=%d k=%d, %d trials\n", cfg.R, cfg.K, cfg.Trials)
		start := time.Now()
		res := experiments.RunTable1(cfg)
		res.Render(os.Stdout)
		fmt.Printf("# below-threshold log log n slope (c=%.2f): %.3f (Theorem 1 constant 1/log 3 = 0.910)\n",
			cfg.Cs[0], res.GrowthFit(0, false))
		fmt.Printf("# above-threshold log n slope (c=%.2f): %.3f (Theorem 3: positive)\n",
			cfg.Cs[len(cfg.Cs)-1], res.GrowthFit(len(cfg.Cs)-1, true))
		fmt.Printf("# elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
	}

	if *table2 {
		cfg := experiments.DefaultTable2()
		cfg.Seed = *seed
		if !*full {
			cfg.N = 1000000
			cfg.Trials = 10
		}
		if *trials > 0 {
			cfg.Trials = *trials
		}
		fmt.Printf("Table 2: recurrence prediction vs simulation, r=%d k=%d n=%d, %d trials\n",
			cfg.R, cfg.K, cfg.N, cfg.Trials)
		start := time.Now()
		res := experiments.RunTable2(cfg)
		res.Render(os.Stdout)
		fmt.Printf("# elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	}
}
