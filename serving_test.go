package repro

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeFn is a StaticFunc that knows its generation and whether its
// backing "image" has been released: every lookup asserts the epoch
// contract (a pinned generation is never reclaimed under a reader) by
// bumping torn when it observes its own release flag set mid-lookup.
type fakeFn struct {
	gen      uint64
	released *atomic.Bool
	torn     *atomic.Int64
}

func (f fakeFn) LookupValue(key uint64) uint64 {
	if f.released.Load() {
		f.torn.Add(1)
	}
	return f.gen
}

func TestStaticTableEmpty(t *testing.T) {
	tbl := NewStaticTable()
	if _, ok := tbl.Lookup(1); ok {
		t.Fatal("empty table served a lookup")
	}
	if _, ok := tbl.LookupBatch([]uint64{1}, make([]uint64, 1)); ok {
		t.Fatal("empty table served a batch")
	}
	if g := tbl.Generation(); g != 0 {
		t.Fatalf("empty table generation %d", g)
	}
}

// TestStaticTableSwapWhileLookup is the serving acceptance test: one
// goroutine swaps rebuilt generations while many others run lookups
// continuously. Under -race this exercises the pin/recheck/drain
// protocol; the assertions pin its semantics — no lookup ever runs
// against a reclaimed generation, observed generations are monotone
// per reader, and releases fire in generation order only after each
// epoch drains.
func TestStaticTableSwapWhileLookup(t *testing.T) {
	const swaps = 300
	tbl := NewStaticTable()
	var torn atomic.Int64
	var releasedUpTo atomic.Uint64 // highest generation released so far

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			keys := []uint64{1, 2, 3}
			out := make([]uint64, len(keys))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				gen, ok := tbl.Lookup(uint64(i))
				if !ok {
					continue // before the first install
				}
				if gen < last {
					t.Errorf("generation went backwards: %d after %d", gen, last)
					return
				}
				last = gen
				if bg, ok := tbl.LookupBatch(keys, out); ok {
					for _, v := range out {
						if v != bg {
							t.Errorf("batch mixed generations: value %d under gen %d", v, bg)
							return
						}
					}
					if bg < last {
						t.Errorf("batch generation went backwards: %d after %d", bg, last)
						return
					}
					last = bg
				}
			}
		}()
	}

	for i := 1; i <= swaps; i++ {
		released := &atomic.Bool{}
		fn := fakeFn{gen: uint64(i), released: released, torn: &torn}
		gen := tbl.Swap(fn, func() {
			// Swap(i+1) reclaims generation i: releases must arrive in
			// generation order, strictly behind the swap counter.
			if prev := releasedUpTo.Swap(uint64(i)); prev != uint64(i-1) {
				t.Errorf("release order: got gen %d after %d", i, prev)
			}
			released.Store(true)
		})
		if gen != uint64(i) {
			t.Fatalf("Swap returned gen %d, want %d", gen, i)
		}
		if got := tbl.Generation(); got != uint64(i) {
			t.Fatalf("Generation() = %d, want %d", got, i)
		}
	}
	close(stop)
	wg.Wait()

	if n := torn.Load(); n != 0 {
		t.Fatalf("%d lookups ran against a reclaimed generation", n)
	}
	// The final generation is live, so exactly swaps-1 were reclaimed.
	if got := releasedUpTo.Load(); got != swaps-1 {
		t.Fatalf("released up to gen %d, want %d", got, swaps-1)
	}
}

// TestRuntimeRebuildStaticMapServes drives the full production shape on
// one Runtime: rebuild jobs (ordinary pool jobs) run concurrently with
// continuous lookups, each swap retiring the previous map. Values
// encode their build generation, so any torn read would surface as an
// inconsistent batch.
func TestRuntimeRebuildStaticMapServes(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 2, MaxJobs: 4})
	defer rt.Shutdown(context.Background())
	ctx := context.Background()

	const nkeys = 5000
	keys := make([]uint64, nkeys)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	valuesFor := func(gen uint64) []uint64 {
		vals := make([]uint64, nkeys)
		for i, k := range keys {
			vals[i] = k ^ gen
		}
		return vals
	}

	tbl := NewStaticTable()
	gen, err := rt.RebuildStaticMap(ctx, tbl, keys, valuesFor(1), 7)
	if err != nil {
		t.Fatalf("RebuildStaticMap: %v", err)
	}
	if gen != 1 {
		t.Fatalf("first rebuild installed gen %d", gen)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]uint64, 8)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				probe := keys[i%nkeys]
				if v, ok := rt.Lookup(tbl, probe); !ok || v != probe^1 && v != probe^2 && v != probe^3 {
					t.Errorf("Lookup(%#x) = %#x, not a generation value", probe, v)
					return
				}
				batch := keys[i%(nkeys-8) : i%(nkeys-8)+8]
				if _, ok := tbl.LookupBatch(batch, out); ok {
					want := out[0] ^ batch[0] // this batch's generation salt
					for j, v := range out {
						if v != batch[j]^want {
							t.Errorf("batch mixed generations at %d", j)
							return
						}
					}
				}
			}
		}()
	}

	for g := uint64(2); g <= 3; g++ {
		gen, err := rt.RebuildStaticMap(ctx, tbl, keys, valuesFor(g), 7)
		if err != nil {
			t.Fatalf("rebuild gen %d: %v", g, err)
		}
		if gen != g {
			t.Fatalf("rebuild installed gen %d, want %d", gen, g)
		}
	}
	close(stop)
	wg.Wait()

	// The final generation serves exactly valuesFor(3).
	for _, k := range keys[:100] {
		if v, ok := tbl.Lookup(k); !ok || v != k^3 {
			t.Fatalf("after rebuilds: Lookup(%#x) = %#x, want %#x", k, v, k^3)
		}
	}
}

// TestRuntimeRebuildMPHFSwap covers the MPHF flavor: the table serves
// assigned indices, and a swap from an image-opened function behaves
// identically to the freshly built one.
func TestRuntimeRebuildMPHFSwap(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 2})
	defer rt.Shutdown(context.Background())
	ctx := context.Background()

	keys := make([]uint64, 3000)
	for i := range keys {
		keys[i] = uint64(i)*0x517cc1b727220a95 + 3
	}
	tbl := NewStaticTable()
	if _, err := rt.RebuildMPHF(ctx, tbl, keys, 11); err != nil {
		t.Fatalf("RebuildMPHF: %v", err)
	}
	seen := make([]bool, len(keys))
	for _, k := range keys {
		v, ok := tbl.Lookup(k)
		if !ok || v >= uint64(len(keys)) || seen[v] {
			t.Fatalf("table lookup not a bijection at key %#x (v=%d)", k, v)
		}
		seen[v] = true
	}

	// Swap in the same function reloaded from its marshaled image: the
	// serve path is identical (one code path for built and loaded).
	f, err := rt.BuildMPHF(ctx, keys, 11)
	if err != nil {
		t.Fatal(err)
	}
	re, err := OpenMPHF(AlignImage(bytes.Clone(f.Bytes())))
	if err != nil {
		t.Fatalf("OpenMPHF: %v", err)
	}
	released := &atomic.Bool{}
	if _, err := rt.Swap(ctx, tbl, re, func() { released.Store(true) }); err != nil {
		t.Fatal(err)
	}
	// Retire the image-backed generation too, proving its release hook runs.
	if _, err := rt.Swap(ctx, tbl, f, nil); err != nil {
		t.Fatal(err)
	}
	if !released.Load() {
		t.Fatal("release hook of retired image-backed generation did not run")
	}
	for _, k := range keys[:200] {
		v, _ := tbl.Lookup(k)
		if v != uint64(f.Lookup(k)) {
			t.Fatalf("post-swap lookup diverges on %#x", k)
		}
	}
}

// TestSwapAfterShutdown pins admission: Runtime.Swap is a job, so a
// shut-down Runtime rejects it while the table keeps serving its last
// generation.
func TestSwapAfterShutdown(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{})
	ctx := context.Background()
	tbl := NewStaticTable()
	tbl.Swap(fakeFn{gen: 1, released: &atomic.Bool{}, torn: &atomic.Int64{}}, nil)
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Swap(ctx, tbl, fakeFn{gen: 2, released: &atomic.Bool{}, torn: &atomic.Int64{}}, nil); !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("Swap after Shutdown: %v, want ErrRuntimeClosed", err)
	}
	if v, ok := tbl.Lookup(9); !ok || v != 1 {
		t.Fatal("table stopped serving after Runtime shutdown")
	}
}
