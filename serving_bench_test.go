// Serving-path benchmarks: lookup QPS through the three serve shapes —
// the freshly built structure, a zero-copy view opened from its flat
// image (the disk/mmap path), and a StaticTable (epoch-pinned, swap-safe).
//
// Run:  go test -bench 'Serve' -benchmem
package repro

import (
	"bytes"
	"fmt"
	"testing"
)

func servingFixtures(b *testing.B, n int) (keys []uint64, sm *StaticMap, smImg *StaticMap, f *MPHF, fImg *MPHF) {
	b.Helper()
	keys = make([]uint64, n)
	values := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
		values[i] = keys[i] ^ 0xabcd
	}
	var err error
	sm, err = BuildStaticMap(keys, values, 7)
	if err != nil {
		b.Fatal(err)
	}
	smImg, err = OpenStaticMap(AlignImage(bytes.Clone(sm.Bytes())))
	if err != nil {
		b.Fatal(err)
	}
	f, err = BuildMPHF(keys, 7)
	if err != nil {
		b.Fatal(err)
	}
	fImg, err = OpenMPHF(AlignImage(bytes.Clone(f.Bytes())))
	if err != nil {
		b.Fatal(err)
	}
	return keys, sm, smImg, f, fImg
}

// BenchmarkServeLookup measures the hot single-key path. InMemory and
// Layout hit the structure directly (they share one code path over the
// flat image, so any gap is memory locality, not code); Table adds the
// StaticTable pin/unpin pair — the price of swap-safety per lookup.
func BenchmarkServeLookup(b *testing.B) {
	const n = 1 << 20
	keys, sm, smImg, f, fImg := servingFixtures(b, n)

	tbl := NewStaticTable()
	tbl.Swap(smImg, nil)

	run := func(name string, fn StaticFunc) {
		b.Run(name, func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += fn.LookupValue(keys[i&(n-1)])
			}
			_ = sink
		})
	}
	run("StaticMap/InMemory", sm)
	run("StaticMap/Layout", smImg)
	run("MPHF/InMemory", f)
	run("MPHF/Layout", fImg)
	b.Run("StaticMap/Table", func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			v, _ := tbl.Lookup(keys[i&(n-1)])
			sink += v
		}
		_ = sink
	})
}

// BenchmarkServeLookupBatch measures the batched path: one epoch
// pin/unpin amortized over the whole batch, reported as ns/key.
func BenchmarkServeLookupBatch(b *testing.B) {
	const n = 1 << 20
	keys, _, smImg, _, _ := servingFixtures(b, n)
	tbl := NewStaticTable()
	tbl.Swap(smImg, nil)

	for _, batch := range []int{16, 256} {
		out := make([]uint64, batch)
		b.Run(fmt.Sprintf("Table/batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lo := (i * batch) & (n - 1 - batch)
				if _, ok := tbl.LookupBatch(keys[lo:lo+batch], out); !ok {
					b.Fatal("empty table")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/key")
		})
		b.Run(fmt.Sprintf("Direct/batch=%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lo := (i * batch) & (n - 1 - batch)
				for j, k := range keys[lo : lo+batch] {
					out[j] = smImg.LookupValue(k)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/key")
		})
	}
}

// BenchmarkServeLookupParallel drives the StaticTable from all
// GOMAXPROCS goroutines — the sharded pin counters are what keep this
// from collapsing onto one contended cache line.
func BenchmarkServeLookupParallel(b *testing.B) {
	const n = 1 << 20
	keys, _, smImg, _, _ := servingFixtures(b, n)
	tbl := NewStaticTable()
	tbl.Swap(smImg, nil)

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var sink uint64
		i := 0
		for pb.Next() {
			v, _ := tbl.Lookup(keys[i&(n-1)])
			sink += v
			i++
		}
		_ = sink
	})
}
