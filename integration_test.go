package repro

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/branching"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fountain"
	"repro/internal/hypergraph"
	"repro/internal/recurrence"
	"repro/internal/rng"
	"repro/internal/threshold"
)

// Integration tests: cross-module flows a downstream user would compose,
// each checking an invariant that spans at least two packages.

// The modeling chain of the paper: branching tree == recurrence == graph
// simulation, at several rounds.
func TestIntegrationModelChain(t *testing.T) {
	k, r, c := 2, 4, 0.7
	n := 1 << 18
	g := NewUniformHypergraph(n, int(c*float64(n)), r, 77)
	sim, err := DefaultRuntime().Peel(context.Background(), g, k, PeelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := recurrence.Params{K: k, R: r, C: c}.Trace(sim.Rounds)
	if err != nil {
		t.Fatal(err)
	}
	tree := branching.Params{K: k, R: r, C: c}

	for _, round := range []int{1, 3, 5} {
		lamRec := rec[round-1].Lambda
		lamSim := float64(sim.SurvivorHistory[round-1]) / float64(n)
		lamTree := tree.SurvivalProbability(round, 20000, 123)
		if math.Abs(lamRec-lamSim) > 0.01 {
			t.Errorf("round %d: recurrence %.4f vs graph %.4f", round, lamRec, lamSim)
		}
		if math.Abs(lamRec-lamTree) > 0.02 {
			t.Errorf("round %d: recurrence %.4f vs tree MC %.4f", round, lamRec, lamTree)
		}
	}
}

// Serialize a graph, reload it, and verify every peeler agrees with the
// original on rounds and core — the peeltool round trip.
func TestIntegrationSerializePeel(t *testing.T) {
	g := NewPartitionedHypergraph(40000, 28000, 4, 88)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := hypergraph.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := PeelSubtables(g, 2)
	b := PeelSubtables(loaded, 2)
	if a.Subrounds != b.Subrounds || a.CoreVertices != b.CoreVertices {
		t.Error("reloaded graph peels differently")
	}
}

// Depth, coreness, and the three peelers must tell one consistent story
// on one shared instance.
func TestIntegrationStructuralViews(t *testing.T) {
	g := NewUniformHypergraph(30000, 36000, 3, 99) // c = 1.2: layered cores
	coreness := CorenessAll(g)
	for _, k := range []int{2, 3, 4} {
		depth := PeelDepths(g, k)
		par, err := DefaultRuntime().Peel(context.Background(), g, k, PeelOptions{Scan: FullScan})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N; v++ {
			inCore := par.VertexAlive[v] != 0
			if inCore != (depth[v] == core.InCore) {
				t.Fatalf("k=%d vertex %d: depth/parallel disagree", k, v)
			}
			if inCore != (coreness[v] >= int32(k)) {
				t.Fatalf("k=%d vertex %d: coreness/parallel disagree", k, v)
			}
		}
	}
}

// The IBLT's hypergraph is the partitioned model, so its recovery rounds
// should track the subtable peeler's rounds on a matched instance.
func TestIntegrationIBLTMatchesSubtablePeeling(t *testing.T) {
	cells := 60000
	load := 0.70
	nKeys := int(load * float64(cells))

	tbl := NewIBLT(cells, 4, 555)
	gen := rng.New(556)
	keys := make([]uint64, nKeys)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = gen.Uint64()
		}
	}
	tbl.InsertAll(keys)
	res := tbl.DecodeParallel()
	if !res.Complete {
		t.Fatal("IBLT decode failed below threshold")
	}

	g := NewPartitionedHypergraph(cells, nKeys, 4, 557)
	peel := PeelSubtables(g, 2)
	if !peel.Empty() {
		t.Fatal("matched hypergraph did not peel")
	}
	// Same process, independent randomness: round counts agree within a
	// couple of rounds (both concentrate per Appendix B).
	if d := res.Rounds - peel.Rounds; d < -2 || d > 2 {
		t.Errorf("IBLT rounds %d vs subtable peel rounds %d", res.Rounds, peel.Rounds)
	}
}

// Thresholds drive every application: pushing each structure just past
// its design threshold must flip it from reliable to failing.
func TestIntegrationThresholdGovernsApplications(t *testing.T) {
	cstar, _ := threshold.Threshold(2, 3)

	// Erasure code at 95% of threshold loss: recovers. At 115%: fails.
	code := NewErasureCode(2000, 3, 666)
	data := make([]uint64, 20000)
	gen := rng.New(667)
	for i := range data {
		data[i] = gen.Uint64()
	}
	checks := code.Encode(data)
	run := func(losses int) error {
		d := append([]uint64(nil), data...)
		present := make([]bool, len(d))
		for i := range present {
			present[i] = true
		}
		for _, i := range gen.Perm(len(d))[:losses] {
			present[i] = false
			d[i] = 0
		}
		return code.Decode(d, present, checks)
	}
	if err := run(int(0.95 * cstar * 2000)); err != nil {
		t.Errorf("erasure decode failed below threshold: %v", err)
	}
	if err := run(int(1.15 * cstar * 2000)); err == nil {
		t.Error("erasure decode succeeded well above threshold")
	}

	// XORSAT peel-only solvability flips at the same constant.
	below := NewRandomXORSAT(20000, int(0.95*cstar*20000), 3, 668)
	if !below.PeelOnlySolvable() {
		t.Error("XORSAT not peel-only solvable below threshold")
	}
	above := NewRandomXORSAT(20000, int(1.1*cstar*20000), 3, 669)
	if above.PeelOnlySolvable() {
		t.Error("XORSAT peel-only solvable above threshold")
	}
}

// Fountain decoding is peeling on a variable-arity graph; its overhead
// at moderate k lands in the classic LT range (tens of percent, not 2x).
func TestIntegrationFountainOverhead(t *testing.T) {
	const k = 5000
	msg := make([]uint64, k)
	gen := rng.New(777)
	for i := range msg {
		msg[i] = gen.Uint64()
	}
	enc, err := fountain.NewEncoder(msg, fountain.DefaultParams(), 778)
	if err != nil {
		t.Fatal(err)
	}
	symbols := enc.Emit(k)
	for extra := 0; ; extra++ {
		if _, _, err := fountain.Decode(k, symbols, fountain.DefaultParams()); err == nil {
			overhead := float64(len(symbols))/k - 1
			if overhead > 0.5 {
				t.Errorf("LT overhead %.2f, want well under 0.5", overhead)
			}
			return
		}
		if extra > 20 {
			t.Fatal("fountain decode never succeeded")
		}
		symbols = append(symbols, enc.Emit(k/20)...)
	}
}

// The experiments harness agrees with direct recurrence evaluation — a
// guard against config plumbing bugs in the table runners.
func TestIntegrationHarnessConsistency(t *testing.T) {
	cfg := experiments.Table2Config{
		K: 2, R: 4, N: 1 << 16, Cs: []float64{0.7}, Rounds: 5, Trials: 2, Seed: 888,
	}
	res := experiments.RunTable2(cfg)
	direct, err := recurrence.Params{K: 2, R: 4, C: 0.7}.Trace(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		want := direct[i].Lambda * float64(cfg.N)
		if math.Abs(res.Series[0].Prediction[i]-want) > 1e-6 {
			t.Errorf("round %d: harness prediction %.3f vs direct %.3f",
				i+1, res.Series[0].Prediction[i], want)
		}
	}
}
