package repro_test

import (
	"fmt"

	"repro"
)

// Peeling a below-threshold hypergraph empties the 2-core in
// O(log log n) rounds (Theorem 1 of the paper).
func ExamplePeelParallel() {
	g := repro.NewUniformHypergraph(100000, 70000, 4, 42) // c = 0.7 < 0.772
	res := repro.PeelParallel(g, 2)
	fmt.Println("empty core:", res.Empty())
	fmt.Println("rounds in [11, 14]:", res.Rounds >= 11 && res.Rounds <= 14)
	// Output:
	// empty core: true
	// rounds in [11, 14]: true
}

// The threshold formula (Equation 2.1) gives the exact density where the
// k-core appears.
func ExampleThreshold() {
	cstar, _ := repro.Threshold(2, 4)
	fmt.Printf("c*(2,4) = %.5f\n", cstar)
	// Output:
	// c*(2,4) = 0.77228
}

// The idealized recurrence predicts the number of peeling rounds for a
// given instance size (Table 1 of the paper converges to 13 at c = 0.7).
func ExamplePredictRounds() {
	rounds, ok, _ := repro.PredictRounds(repro.RecurrenceParams{K: 2, R: 4, C: 0.7}, 1e6, 100)
	fmt.Println(rounds, ok)
	// Output:
	// 13 true
}

// An IBLT stores a set in O(set) cells and gives it back by peeling.
func ExampleIBLT() {
	t := repro.NewIBLT(64, 3, 7)
	t.Insert(100)
	t.Insert(200)
	t.Insert(300)
	added, _, ok := t.Decode()
	fmt.Println(ok, len(added))
	// Output:
	// true 3
}

// Subtracting two IBLTs and decoding yields the symmetric difference —
// set reconciliation in O(difference) space.
func ExampleIBLT_Subtract() {
	a := repro.NewIBLT(64, 3, 7)
	b := repro.NewIBLT(64, 3, 7)
	for _, k := range []uint64{1, 2, 3, 4} {
		a.Insert(k)
	}
	for _, k := range []uint64{3, 4, 5} {
		b.Insert(k)
	}
	a.Subtract(b)
	onlyA, onlyB, ok := a.Decode()
	fmt.Println(ok, len(onlyA), len(onlyB))
	// Output:
	// true 2 1
}

// A minimal perfect hash maps n keys bijectively onto [0, n).
func ExampleBuildMPHF() {
	keys := []uint64{11, 22, 33, 44, 55}
	f, err := repro.BuildMPHF(keys, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	seen := make([]bool, len(keys))
	for _, k := range keys {
		seen[f.Lookup(k)] = true
	}
	fmt.Println(seen)
	// Output:
	// [true true true true true]
}

// A static map stores key → value pairs in ~1.23 slots per key with no
// key storage.
func ExampleBuildStaticMap() {
	keys := []uint64{10, 20, 30}
	values := []uint64{111, 222, 333}
	m, err := repro.BuildStaticMap(keys, values, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(m.Lookup(10), m.Lookup(20), m.Lookup(30))
	// Output:
	// 111 222 333
}
