package repro

import (
	"context"
	"math"
	"testing"
)

// These tests exercise the public facade end to end, mirroring what the
// examples do.

func TestFacadePeelBelowThreshold(t *testing.T) {
	g := NewUniformHypergraph(100000, 70000, 4, 1)
	res, err := DefaultRuntime().Peel(context.Background(), g, 2, PeelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty() {
		t.Fatal("facade parallel peel failed below threshold")
	}
	seq := Peel(g, 2)
	if !seq.Empty() || seq.CoreVertices != res.CoreVertices {
		t.Fatal("facade sequential peel disagrees")
	}
}

func TestFacadeThreshold(t *testing.T) {
	cstar, xstar := Threshold(2, 4)
	if math.Abs(cstar-0.77228) > 1e-3 || xstar <= 0 {
		t.Errorf("Threshold(2,4) = (%v, %v)", cstar, xstar)
	}
	if f := CoreFraction(2, 4, 0.85); math.Abs(f-0.775) > 0.001 {
		t.Errorf("CoreFraction(2,4,0.85) = %v", f)
	}
}

func TestFacadePredictRounds(t *testing.T) {
	rounds, ok, err := PredictRounds(RecurrenceParams{K: 2, R: 4, C: 0.7}, 1e6, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || rounds != 13 {
		t.Errorf("PredictRounds = (%d, %v), want (13, true)", rounds, ok)
	}
	// Out-of-scope parameters are an error, not a panic (this is the
	// library path the robustness pass hardened).
	if _, _, err := PredictRounds(RecurrenceParams{K: 1, R: 4, C: 0.7}, 1e6, 50); err == nil {
		t.Error("PredictRounds(k=1) returned nil error, want validation error")
	}
}

func TestFacadeSubtables(t *testing.T) {
	g := NewPartitionedHypergraph(80000, 56000, 4, 2)
	res := PeelSubtables(g, 2)
	if !res.Empty() {
		t.Fatal("facade subtable peel failed")
	}
	if res.Subrounds < res.Rounds {
		t.Errorf("subrounds %d < rounds %d", res.Subrounds, res.Rounds)
	}
}

func TestFacadeIBLT(t *testing.T) {
	tbl := NewIBLT(4096, 3, 3)
	keys := []uint64{10, 20, 30, 40, 50}
	tbl.InsertAll(keys)
	added, removed, ok := tbl.Decode()
	if !ok || len(added) != len(keys) || len(removed) != 0 {
		t.Fatalf("facade IBLT decode: ok=%v added=%d removed=%d", ok, len(added), len(removed))
	}
}

func TestFacadeMPHF(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	f, err := BuildMPHF(keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(keys))
	for _, k := range keys {
		v := f.Lookup(k)
		if v < 0 || v >= len(keys) || seen[v] {
			t.Fatal("facade MPHF not bijective")
		}
		seen[v] = true
	}
}

func TestFacadeXORSAT(t *testing.T) {
	in := NewRandomXORSAT(5000, 3500, 3, 5) // c = 0.7
	assign, err := SolveXORSAT(in)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Check(assign) {
		t.Fatal("facade XORSAT solution invalid")
	}
}

func TestFacadeErasure(t *testing.T) {
	code := NewErasureCode(512, 3, 6)
	data := make([]uint64, 5000)
	for i := range data {
		data[i] = uint64(i) + 1
	}
	checks := code.Encode(data)
	present := make([]bool, len(data))
	for i := range present {
		present[i] = true
	}
	// Erase 200 symbols (load 0.39).
	orig := make([]uint64, 200)
	for i := 0; i < 200; i++ {
		orig[i] = data[i*7]
		data[i*7] = 0
		present[i*7] = false
	}
	if err := code.Decode(data, present, checks); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if data[i*7] != orig[i] {
			t.Fatal("facade erasure decode corrupted a symbol")
		}
	}
}
