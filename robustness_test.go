package repro

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/parallel"
)

// The headline acceptance scenario: a job that panics mid-peel returns
// ErrJobPanicked with the panicking frame in its captured stack, the
// Runtime's pool stays healthy, and the same Runtime then completes a
// full BuildMPHF. Run with -race.
func TestRuntimePanickedJobIsIsolated(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 4})
	defer rt.Shutdown(context.Background())
	ctx := context.Background()

	wait, err := rt.Go(ctx, func(ctx context.Context, pool *WorkerPool) error {
		return pool.ForCtx(ctx, 10000, 64, func(_, lo, hi int) {
			if lo <= 5000 && 5000 < hi {
				panic("mid-peel corruption")
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	jerr := wait()
	if !errors.Is(jerr, ErrJobPanicked) {
		t.Fatalf("job error = %v, want ErrJobPanicked", jerr)
	}
	var pe *PanicError
	if !errors.As(jerr, &pe) {
		t.Fatalf("job error %T does not unwrap to *PanicError", jerr)
	}
	if pe.Value() != "mid-peel corruption" {
		t.Errorf("panic value = %v", pe.Value())
	}
	if !strings.Contains(string(pe.Stack()), "robustness_test.go") {
		t.Errorf("stack does not contain the panicking frame:\n%s", pe.Stack())
	}
	if got := rt.Stats().JobsPanicked; got != 1 {
		t.Errorf("JobsPanicked = %d, want 1", got)
	}

	// Same Runtime, same pool: a full build must succeed.
	keys := testRuntimeKeys(20000, 7)
	f, err := rt.BuildMPHF(ctx, keys, 42)
	if err != nil {
		t.Fatalf("BuildMPHF after panicked job: %v", err)
	}
	seen := make([]bool, len(keys))
	for _, k := range keys {
		i := f.Lookup(k)
		if i < 0 || i >= len(keys) || seen[i] {
			t.Fatal("MPHF built after panic is not perfect")
		}
		seen[i] = true
	}
}

// A panic thrown directly by the job function (not inside a barrier) is
// recovered at the job boundary.
func TestRuntimeJobBoundaryPanicRecovered(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 2})
	defer rt.Shutdown(context.Background())

	wait, err := rt.Go(context.Background(), func(ctx context.Context, pool *WorkerPool) error {
		panic(errors.New("job-level failure"))
	})
	if err != nil {
		t.Fatal(err)
	}
	jerr := wait()
	if !errors.Is(jerr, ErrJobPanicked) {
		t.Fatalf("job error = %v, want ErrJobPanicked", jerr)
	}
	// panic(err) unwraps to the original error.
	if jerr.Error() != "parallel: job panicked: job-level failure" {
		t.Errorf("error text = %q", jerr.Error())
	}
}

// Concurrent poisoned and healthy jobs on one Runtime: the healthy ones
// finish, the poisoned ones report, and the Runtime serves 100
// subsequent jobs. Run with -race.
func TestRuntimeConcurrentPanicsDoNotWedge(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 4, MaxJobs: 8})
	defer rt.Shutdown(context.Background())
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make([]error, 10)
	for j := 0; j < 10; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			wait, err := rt.Go(ctx, func(ctx context.Context, pool *WorkerPool) error {
				return pool.ForCtx(ctx, 5000, 64, func(_, lo, hi int) {
					if j%2 == 0 && lo == 0 {
						panic("even jobs are poisoned")
					}
				})
			})
			if err != nil {
				errs[j] = err
				return
			}
			errs[j] = wait()
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if j%2 == 0 && !errors.Is(err, ErrJobPanicked) {
			t.Errorf("poisoned job %d error = %v", j, err)
		}
		if j%2 == 1 && err != nil {
			t.Errorf("healthy job %d error = %v", j, err)
		}
	}
	if got := rt.Stats().JobsPanicked; got != 5 {
		t.Errorf("JobsPanicked = %d, want 5", got)
	}
	for i := 0; i < 100; i++ {
		wait, err := rt.Go(ctx, func(ctx context.Context, pool *WorkerPool) error {
			return pool.ForCtx(ctx, 100, 10, func(_, lo, hi int) {})
		})
		if err != nil {
			t.Fatalf("job %d after panics rejected: %v", i, err)
		}
		if err := wait(); err != nil {
			t.Fatalf("job %d after panics failed: %v", i, err)
		}
	}
}

func TestPolicyJobTimeout(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 2, Policy: Policy{JobTimeout: 20 * time.Millisecond}})
	defer rt.Shutdown(context.Background())

	wait, err := rt.Go(context.Background(), func(ctx context.Context, pool *WorkerPool) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if jerr := wait(); !errors.Is(jerr, context.DeadlineExceeded) {
		t.Fatalf("job error = %v, want DeadlineExceeded from the policy timeout", jerr)
	}
	if got := rt.Stats().JobsCanceled; got != 1 {
		t.Errorf("JobsCanceled = %d, want 1", got)
	}
}

func TestPolicyCallerDeadlineWins(t *testing.T) {
	// An explicit caller deadline is respected even when later than the
	// policy default would have fired... and an earlier one fires first.
	rt := NewRuntime(RuntimeOptions{Workers: 2, Policy: Policy{JobTimeout: time.Hour}})
	defer rt.Shutdown(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	wait, err := rt.Go(ctx, func(ctx context.Context, pool *WorkerPool) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if jerr := wait(); !errors.Is(jerr, context.DeadlineExceeded) {
		t.Fatalf("job error = %v, want the caller's earlier deadline", jerr)
	}
}

func TestWithPolicySharesCore(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 2})
	derived := rt.WithPolicy(Policy{BuildRetries: 2})
	if derived.Policy().BuildRetries != 2 || rt.Policy().BuildRetries != 0 {
		t.Fatal("WithPolicy did not override / leaked the override")
	}
	// Jobs through either handle hit the same pool and counters.
	wait, err := derived.Go(context.Background(), func(ctx context.Context, pool *WorkerPool) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().JobsAdmitted == 0 {
		t.Error("job through derived handle not visible in base handle stats")
	}
	// Shutdown through the base closes the derived view too.
	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := derived.Go(context.Background(), func(ctx context.Context, pool *WorkerPool) error { return nil }); !errors.Is(err, ErrRuntimeClosed) {
		t.Errorf("derived handle after shutdown = %v, want ErrRuntimeClosed", err)
	}
}

// Shutdown with an expired context hands the drain to a janitor; once
// the last job finishes, the pool must actually be released and any
// error from that background release counted, not dropped.
func TestShutdownExpiredContextReleasesWorkers(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 4})
	release := make(chan struct{})
	started := make(chan struct{})
	wait, err := rt.Go(context.Background(), func(ctx context.Context, pool *WorkerPool) error {
		close(started)
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired
	if err := rt.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown(expired) = %v, want context.Canceled", err)
	}
	close(release)
	if err := wait(); err != nil {
		t.Fatal(err)
	}

	// The janitor releases the pool; once it has, new For calls run
	// serially (pool terminated) and the helper goroutines are gone.
	// Poll the observable effect: a pool job submitted through a fresh
	// Enter is rejected.
	deadline := time.Now().Add(2 * time.Second)
	for {
		exit, perr := rt.Pool().Enter()
		if errors.Is(perr, parallel.ErrClosed) {
			break
		}
		if perr == nil {
			exit()
		}
		if time.Now().After(deadline) {
			t.Fatal("pool still accepting jobs after background drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := rt.Stats().ShutdownErrors; got != 0 {
		t.Errorf("ShutdownErrors = %d, want 0 for a clean background release", got)
	}
}

// If the pool was shut down underneath the Runtime, the background
// release fails and the failure must be counted in ShutdownErrors.
func TestShutdownBackgroundErrorCounted(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 2})
	release := make(chan struct{})
	started := make(chan struct{})
	wait, err := rt.Go(context.Background(), func(ctx context.Context, pool *WorkerPool) error {
		close(started)
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown(expired) = %v", err)
	}
	// Sabotage: shut the pool down directly so the janitor's own
	// Shutdown returns ErrClosed.
	go rt.Pool().Shutdown(context.Background())
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := wait(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for rt.Stats().ShutdownErrors == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := rt.Stats().ShutdownErrors; got != 1 {
		t.Errorf("ShutdownErrors = %d, want 1 after sabotaged background release", got)
	}
}

// Corrupt-image quarantine, production build: a bad image never swaps
// in, the rejection is counted, and the previous generation serves on.
func TestSwapImageQuarantinesCorruptImage(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 2})
	defer rt.Shutdown(context.Background())
	ctx := context.Background()
	tbl := NewStaticTable()

	keys := testRuntimeKeys(5000, 3)
	values := make([]uint64, len(keys))
	for i, k := range keys {
		values[i] = k * 3
	}
	sm, err := rt.BuildStaticMap(ctx, keys, values, 9)
	if err != nil {
		t.Fatal(err)
	}
	img := append([]byte(nil), sm.Bytes()...)
	gen, err := rt.SwapImage(ctx, tbl, img, nil)
	if err != nil || gen != 1 {
		t.Fatalf("SwapImage(good) = gen %d, %v", gen, err)
	}

	// Corrupt a payload byte: the checksum must catch it.
	bad := append([]byte(nil), img...)
	bad[len(bad)/2] ^= 0x40
	if _, err := rt.SwapImage(ctx, tbl, bad, nil); !errors.Is(err, layout.ErrBadImage) {
		t.Fatalf("SwapImage(corrupt) = %v, want ErrBadImage", err)
	}
	// Truncated image.
	if _, err := tbl.SwapImage(img[:len(img)-8], nil); !errors.Is(err, layout.ErrBadImage) {
		t.Fatalf("SwapImage(truncated) = %v, want ErrBadImage", err)
	}

	count, last := tbl.SwapRejections()
	if count != 2 || last == nil {
		t.Errorf("SwapRejections = (%d, %v), want (2, non-nil)", count, last)
	}
	if tbl.Generation() != 1 {
		t.Errorf("generation after rejections = %d, want 1", tbl.Generation())
	}
	for _, k := range keys[:100] {
		if v, ok := tbl.Lookup(k); !ok || v != k*3 {
			t.Fatal("previous generation corrupted by a rejected swap")
		}
	}
}

// WriteFile output round-trips through SwapImage — the build-to-serve
// persistence path.
func TestWriteFileToSwapImage(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 2})
	defer rt.Shutdown(context.Background())
	ctx := context.Background()

	keys := testRuntimeKeys(2000, 11)
	f, err := rt.BuildMPHF(ctx, keys, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/mphf.sfn"
	if err := layout.WriteFile(path, f.Bytes()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data := layout.Aligned(raw)
	tbl := NewStaticTable()
	if _, err := tbl.SwapImage(data, nil); err != nil {
		t.Fatal(err)
	}
	if v, ok := tbl.Lookup(keys[0]); !ok || v != uint64(f.Lookup(keys[0])) {
		t.Error("served lookup disagrees with the built function")
	}
	if !bytes.Equal(data, f.Bytes()) {
		t.Error("persisted image differs from built image")
	}
}
