// Package repro is a production-quality Go reproduction of
//
//	Jiang, Mitzenmacher, Thaler — "Parallel Peeling Algorithms" (SPAA 2014)
//
// It provides random r-uniform hypergraph generation, sequential and
// round-synchronous parallel peeling to the k-core (plus the Appendix B
// subtable variant), the idealized recurrences and threshold formulas the
// paper analyzes, and the peeling-based data structures the paper
// motivates: Invertible Bloom Lookup Tables (with serial and parallel
// recovery), Biff-style erasure codes, BDZ minimal perfect hashing,
// XORSAT solving, and cuckoo placement.
//
// # Quick start
//
//	g := repro.NewUniformHypergraph(1_000_000, 700_000, 4, 42) // c = 0.7
//	res := repro.PeelParallel(g, 2)
//	fmt.Println(res.Rounds, res.Empty()) // ≈13 rounds, empty 2-core
//
// The headline results:
//
//   - Below the threshold density c*(k,r), parallel peeling empties the
//     k-core in (1/log((k−1)(r−1)))·log log n + O(1) rounds (Theorems 1-2).
//   - Above it, reaching the (non-empty) k-core takes Ω(log n) rounds
//     (Theorem 3).
//   - Peeling r subtables in serial subrounds — the trick that stops a
//     parallel implementation from peeling an item twice — costs only a
//     log(r−1)/log φ_{r−1} factor in subrounds, not a factor of r
//     (Theorems 4/7).
//
// # Runtime
//
// The serving surface is the context-first Runtime: NewRuntime starts a
// persistent worker pool with optional admission control (MaxJobs), and
// every workload is a method on it — Peel, PeelSubtables, Decode,
// BuildMPHF, BuildStaticMap, Reconcile, EncodeErasure, DecodeErasure,
// plus Go for custom jobs. Each method admits the request as a job,
// pins all of its parallelism to the shared pool, and honors context
// cancellation at the round/subround barriers of the underlying peeling
// process — the paper's O(log log n) round structure means a job crosses
// a barrier many times, so one check per barrier aborts a canceled job
// within a single round of extra work. Shutdown stops admission, drains
// in-flight jobs (bounded by the caller's ctx), and releases the
// workers; Stats exposes queue depth, helper occupancy, and
// admitted/rejected/canceled job counters for backpressure decisions.
//
//	rt := repro.NewRuntime(repro.RuntimeOptions{MaxJobs: 32})
//	defer rt.Shutdown(context.Background())
//	res, err := rt.Decode(ctx, table)
//
// Under the hood the parallel peelers execute on the Runtime's pool
// (internal/parallel.Pool): workers stay alive across rounds, each
// round's two phases are dispatched as chunked parallel-for batches, and
// per-worker frontier shards — indexed by the pool's worker IDs — replace
// locked appends, so the small-frontier tail rounds that dominate the
// O(log log n) bound pay neither goroutine spawns nor mutex traffic.
//
// The runtime is multi-tenant: the pool is shared by any number of
// concurrent jobs. Batch dispatch rotates across helper channels so
// concurrent small batches — tail rounds of simultaneous decodes —
// spread over distinct helpers; all decode and build paths keep working
// state per call, so a server runs many requests on one pool with no
// per-request pools, goroutine spawns, or locks in the round loops; and
// the claim-based barrier makes nested parallel-for submission from
// inside a pool batch deadlock-free, so jobs may compose builders and
// peelers freely. The pre-Runtime entry points (PeelParallel, the ...WithPool
// variants, WorkerPool/JobGroup) remain as deprecated wrappers over the
// package-default Runtime (DefaultRuntime) and an explicit pool.
//
// The data-structure builders consume a peel order and an edge → vertex
// orientation, produced by the ordered parallel peel (PeelOrdered /
// Runtime.PeelOrdered): the round-synchronous process with a
// minimum-endpoint claim rule, whose round-major PeelOrder/FreeVertex
// output is bit-identical at every worker count. Reverse round-major
// order is a valid elimination order for k = 2 — within a round every
// peeled edge has a distinct free vertex and non-free endpoints
// finalize strictly later — so the MPHF g-value assignment and the
// Bloomier back-substitution run round-parallel too: no serial phase
// remains in BuildMPHF/BuildStaticMap, and a canceled build stops at
// the next round barrier rather than the next phase. Failed builds
// report the last attempt's 2-core survivor count through
// ErrMPHFBuildFailed / ErrStaticMapBuildFailed.
//
// # Failure policy and fault tolerance
//
// A panic inside any job — a worker claiming chunks mid-peel, a Group
// job, a Runtime job — is recovered at the chunk and job boundaries and
// reported as an error matching ErrJobPanicked; the *PanicError carries
// the panic value and captured stack, the barrier still completes, and
// the pool stays healthy for concurrent and subsequent jobs. Panics are
// counted in Stats().JobsPanicked.
//
// RuntimeOptions.Policy configures what the Runtime does about
// failures, and WithPolicy derives a handle with a different policy over
// the same pool and counters (zero Policy = no timeout, no retries):
//
//	rt := repro.NewRuntime(repro.RuntimeOptions{
//	    Workers: 8,
//	    Policy:  repro.Policy{JobTimeout: time.Second, BuildRetries: 2},
//	})
//	f, err := rt.BuildMPHF(ctx, keys, seed)            // retried on ErrBuildFailed
//	_, _, _, err = rt.WithPolicy(repro.Policy{ReconcileRetries: 3}).
//	    Reconcile(ctx, local, remote, seed, 1.5)       // headroom escalates per retry
//
// JobTimeout applies a default deadline to jobs whose caller context has
// none (an explicit caller deadline always wins). BuildRetries re-runs a
// whole failed BuildMPHF/BuildStaticMap with a deterministically
// escalated seed — only on the probabilistic ErrMPHFBuildFailed /
// ErrStaticMapBuildFailed, never on cancellation or panics.
// ReconcileRetries re-runs an undecodable reconciliation with the
// difference-table headroom raised by HeadroomStep per attempt (capped
// at MaxHeadroom), accumulating wire cost across attempts.
//
// The failure paths themselves are tested by fault injection: named
// failpoints (internal/faultinject) compiled to no-ops by default and
// armed under -tags=faultinject let the chaos suite panic a worker
// mid-peel under a serving load, tear an image mid-swap, and force
// build and decode failures; see the Robustness section of README.md.
//
// # Offline build, online serve
//
// The built static functions separate build time from serve time. Every
// MPHF and StaticMap is backed by a single versioned flat image
// (internal/layout): a 64-byte checksummed header (magic, kind, seed,
// hash seeds, geometry) followed by the 8-aligned little-endian value
// arrays. Bytes returns the image; OpenMPHF/OpenStaticMap validate one
// strictly — magic, version, kind, geometry bounded against the payload
// before any size arithmetic, exact length, alignment, checksum — and
// return a zero-copy view whose lookup arrays alias the input bytes, so
// an os.ReadFile'd or mmap'd image serves lookups with no decode step
// and no allocation beyond the handle. Built and loaded functions run
// the same lookup code over the same layout, so a loaded image answers
// byte-for-byte like the build that produced it; builds are
// byte-identical at every worker count, so images are reproducible
// artifacts. Hostile images are rejected with an error, never a panic
// (FuzzLayoutOpen). cmd/peeltool build/dump/query is the command-line
// face of this path.
//
// Serving under rebuild is handled by StaticTable: a handle holding the
// current generation of a static function, swapped atomically by Swap
// (or Runtime.RebuildStaticMap / Runtime.RebuildMPHF, which run the
// rebuild as an ordinary pool job concurrent with serving). Lookup and
// LookupBatch are lock-free — an atomic generation resolve plus a
// pin/unpin on sharded padded counters — and swaps reclaim a retired
// generation (running its release hook, e.g. munmap) only after every
// in-flight lookup pinning it has drained, so readers never observe a
// torn or unmapped image and never block: epoch-based reclamation with
// a generation counter, exactly the offline-build/fleet-serve pattern.
// SwapImage installs a raw image only after validating it — a corrupt
// or truncated candidate is quarantined (counted by SwapRejections)
// while the previous generation keeps serving — and layout.WriteFile
// persists images crash-safely (temp file, fsync, rename, directory
// fsync), so the file at the target path is always a complete image.
//
// The whole serving surface is also reachable over TCP: internal/server
// (deployed as cmd/peelserved) fronts a Runtime with a length-prefixed
// wire protocol — per-request deadlines that become handler contexts,
// load shedding through Runtime.TryGo with typed OVERLOADED replies and
// retry-after hints, per-connection and per-request panic isolation,
// frame bounds validated before allocation, and SIGTERM-triggered
// graceful drain (GOAWAY, in-flight requests finish, every accepted
// request gets exactly one reply). internal/server/client is the
// matching client: one multiplexed connection, deadline propagation,
// and backoff retries only where safe (shed requests always, ambiguous
// connection loss only for idempotent ops). See the "Serving over the
// network" section of README.md for the protocol and failure table.
//
// Instance construction is parallel too, and deterministically so: edge
// sampling draws each fixed-size chunk of edges from its own RNG stream
// keyed by chunk index, and the CSR incidence index is built with a
// stable parallel counting sort — a given seed yields a bit-identical
// graph at every worker count. (Adopting chunk-keyed sampling changed
// which graph a seed denotes relative to earlier revisions, a one-time
// mapping change; all statistical results are unaffected.)
//
// The concurrency and safety disciplines above are not conventions but
// machine-checked invariants: cmd/peelvet (internal/analysis) runs five
// custom analyzers — nospawn (no raw go statements outside
// internal/parallel), ctxbarrier (round loops over pool barriers consult
// their ctx; non-Ctx wrappers delegate instead of duplicating loops),
// nounsafe (unsafe confined to internal/layout), nopanic (library code
// returns wrapped sentinel errors unless a panic guard is documented),
// and atomicshard (no mixed atomic/plain access to a scalar). CI runs
// peelvet over the default and faultinject builds, and contributions are
// expected to keep it clean: a deliberate exception needs an inline
// "//peelvet:allow <analyzer> -- <reason>" suppression, whose reason
// clause is mandatory. See the "Static analysis" section of README.md.
//
// The cmd/ binaries regenerate every table and figure in the paper's
// evaluation; see DESIGN.md for the experiment index and EXPERIMENTS.md
// for measured-vs-paper results.
package repro
