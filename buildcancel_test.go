package repro

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// buildBarrierCtx counts Err() calls and cancels after the nth — the
// internal/core/cancel_test.go pattern lifted to the facade. The build
// path checks ctx exactly once per barrier it crosses (job admission,
// each retry attempt, the ordered peel's entry and every round
// barrier), so the call count measures structurally how far a canceled
// build ran: cancellation at call n must return without a single
// further check, i.e. within one peel round of extra work.
type buildBarrierCtx struct {
	calls       atomic.Int64
	cancelAfter int64
}

func (c *buildBarrierCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *buildBarrierCtx) Done() <-chan struct{}       { return nil }
func (c *buildBarrierCtx) Value(any) any               { return nil }
func (c *buildBarrierCtx) Err() error {
	if c.calls.Add(1) > c.cancelAfter {
		return context.Canceled
	}
	return nil
}

// TestRuntimeBuildMPHFAbortsWithinOneRound asserts the ordered-peel
// build path gives Runtime.BuildMPHF per-round cancellation: a context
// canceled mid-peel stops the build at the very next round barrier —
// zero further Err() calls — where the old serial-peel path could only
// stop at a phase boundary (after finishing the whole peel).
func TestRuntimeBuildMPHFAbortsWithinOneRound(t *testing.T) {
	keys := testRuntimeKeys(200000, 9)
	rt := NewRuntime(RuntimeOptions{Workers: 2})
	defer rt.Shutdown(context.Background())

	// Reference run: count the barriers of an uncanceled build.
	full := &buildBarrierCtx{cancelAfter: 1 << 30}
	f, err := rt.BuildMPHF(full, keys, 42)
	if err != nil {
		t.Fatalf("reference build: %v", err)
	}
	if f.Keys() != len(keys) {
		t.Fatalf("reference build wrong size: %d", f.Keys())
	}
	total := full.calls.Load()
	if total < 8 {
		t.Fatalf("reference build crossed only %d barriers; too few peel rounds for the test", total)
	}

	// Cancel mid-peel: allow the admission check, the attempt check, the
	// peel entry check, and two round barriers; the build must return at
	// the next barrier without crossing another.
	const allow = 5
	cc := &buildBarrierCtx{cancelAfter: allow}
	if _, err := rt.BuildMPHF(cc, keys, 42); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled build: err = %v, want Canceled", err)
	}
	if got := cc.calls.Load(); got != allow+1 {
		t.Fatalf("build crossed %d barriers after cancellation (total Err() calls %d, want %d): more than one round of extra work",
			got-(allow+1), got, allow+1)
	}
	if s := rt.Stats(); s.JobsCanceled != 1 {
		t.Fatalf("JobsCanceled = %d, want 1", s.JobsCanceled)
	}
}
