package repro

import (
	"context"
	"errors"

	"repro/internal/bloomier"
	"repro/internal/core"
	"repro/internal/erasure"
	"repro/internal/hypergraph"
	"repro/internal/iblt"
	"repro/internal/mphf"
	"repro/internal/parallel"
	"repro/internal/recurrence"
	"repro/internal/rng"
	"repro/internal/threshold"
	"repro/internal/xorsat"
)

// Hypergraph is an immutable r-uniform hypergraph with CSR incidence; see
// the generator functions below.
type Hypergraph = hypergraph.Hypergraph

// PeelResult reports rounds, per-round survivor counts, and the residual
// k-core of a peeling run.
type PeelResult = core.Result

// SeqPeelResult additionally carries the peel order and the edge → vertex
// orientation produced by sequential peeling.
type SeqPeelResult = core.SeqResult

// OrderedPeelResult carries the round-major peel order and the
// minimum-endpoint edge orientation produced by the ordered parallel
// peel — the parallel replacement for SeqPeelResult's artifacts,
// bit-identical at every worker count. Reverse round-major order is a
// valid elimination order for k = 2 with full parallelism inside a
// round; see core.OrderedResult.
type OrderedPeelResult = core.OrderedResult

// PeelOptions configures the parallel peelers (scan policy, round cap).
type PeelOptions = core.Options

// Scan policies for PeelParallelOpts: FrontierScan tracks only vertices
// whose degree changed (work-efficient); FullScan re-examines every
// vertex each round (the GPU strategy).
const (
	FrontierScan = core.Frontier
	FullScan     = core.FullScan
)

// IBLT is an Invertible Bloom Lookup Table with r subtables; see NewIBLT.
type IBLT = iblt.Table

// IBLTParallelResult reports a parallel IBLT recovery.
type IBLTParallelResult = iblt.ParallelResult

// ErasureCode is a Biff-style peeling erasure code; see NewErasureCode.
type ErasureCode = erasure.Code

// ErasureCell is one check symbol of an ErasureCode block.
type ErasureCell = erasure.Cell

// MPHF is a minimal perfect hash function built by peeling; see BuildMPHF.
type MPHF = mphf.MPHF

// XORSATInstance is a system of XOR equations; see NewXORSATInstance.
type XORSATInstance = xorsat.Instance

// RecurrenceParams evaluates the paper's idealized recurrences (survivor
// fractions λ_t, densities β_t, subtable variants) for a (k, r, c)
// ensemble.
type RecurrenceParams = recurrence.Params

// NewUniformHypergraph returns the paper's G^r_{n,m} model: m edges, each
// a uniform r-subset of [0, n), generated deterministically from seed.
func NewUniformHypergraph(n, m, r int, seed uint64) *Hypergraph {
	return hypergraph.Uniform(n, m, r, rng.New(seed))
}

// NewBinomialHypergraph returns the paper's G^r_c model on n vertices
// with edge density c (edge count Poisson(cn)).
func NewBinomialHypergraph(n int, c float64, r int, seed uint64) *Hypergraph {
	return hypergraph.Binomial(n, c, r, rng.New(seed))
}

// NewPartitionedHypergraph returns the Appendix B model: n vertices (n
// divisible by r) split into r subtables, each edge containing one
// uniform vertex per subtable.
func NewPartitionedHypergraph(n, m, r int, seed uint64) *Hypergraph {
	return hypergraph.Partitioned(n, m, r, rng.New(seed))
}

// Peel runs the classic sequential greedy peel to the k-core, returning
// the peel order and edge orientation along with the core.
func Peel(g *Hypergraph, k int) *SeqPeelResult { return core.Sequential(g, k) }

// PeelParallel runs the round-synchronous parallel peeling process the
// paper analyzes: every round removes all vertices of degree < k at once,
// across all CPU cores.
//
// Deprecated: use Runtime.Peel, which adds context cancellation and
// admission control. PeelParallel runs on the package-default Runtime.
func PeelParallel(g *Hypergraph, k int) *PeelResult {
	res, err := DefaultRuntime().Peel(context.Background(), g, k, PeelOptions{})
	if err != nil {
		// Only reachable if the default Runtime was shut down; keep the
		// historical cannot-fail contract (degraded to inline serial).
		return core.Parallel(g, k, core.Options{})
	}
	return res
}

// PeelParallelOpts is PeelParallel with explicit options (including an
// explicit Options.Pool or Options.Workers, which are honored here).
//
// Deprecated: use Runtime.Peel, which adds context cancellation and
// admission control.
func PeelParallelOpts(g *Hypergraph, k int, opts PeelOptions) *PeelResult {
	return core.Parallel(g, k, opts)
}

// PeelOrdered runs the ordered round-synchronous parallel peel: the
// same rounds and k-core as PeelParallel, plus the peel order and edge
// orientation that Peel (sequential) produces — but computed in
// parallel, deterministically at every worker count. It runs on the
// package-default Runtime; servers should use Runtime.PeelOrdered for
// cancellation and admission control.
func PeelOrdered(g *Hypergraph, k int) *OrderedPeelResult {
	res, err := DefaultRuntime().PeelOrdered(context.Background(), g, k, PeelOptions{})
	if err != nil {
		// Only reachable if the default Runtime was shut down; keep the
		// cannot-fail contract (degraded to inline serial), consistent
		// with PeelParallel's fallback.
		return core.ParallelOrder(g, k, core.Options{})
	}
	return res
}

// PeelSubtables runs the Appendix B subround process on a partitioned
// hypergraph: each round peels the r subtables one after another, each in
// parallel internally.
//
// Deprecated: use Runtime.PeelSubtables, which adds context cancellation
// and admission control. PeelSubtables runs on the package-default
// Runtime.
func PeelSubtables(g *Hypergraph, k int) *PeelResult {
	res, err := DefaultRuntime().PeelSubtables(context.Background(), g, k, PeelOptions{})
	if err != nil {
		// See PeelParallel: preserve the cannot-fail contract.
		return core.Subtables(g, k, core.Options{})
	}
	return res
}

// Threshold returns the k-core emptiness threshold c*(k,r) of Equation
// (2.1) and its argmin x*. Below c*(k,r) peeling empties the core w.h.p.
func Threshold(k, r int) (cstar, xstar float64) { return threshold.Threshold(k, r) }

// CoreFraction returns the limiting fraction of vertices in the k-core at
// density c (zero below the threshold).
func CoreFraction(k, r int, c float64) float64 { return threshold.CoreFraction(k, r, c) }

// PredictRounds returns the idealized number of parallel peeling rounds
// for an n-vertex instance at parameters p, and whether the recurrence
// terminates within maxRounds (it does not above the threshold).
// Parameters outside the paper's scope (k or r < 2, negative density)
// are reported as an error, never a panic.
func PredictRounds(p RecurrenceParams, n float64, maxRounds int) (rounds int, ok bool, err error) {
	return p.PredictRounds(n, maxRounds)
}

// NewIBLT returns an empty Invertible Bloom Lookup Table with at least
// cells cells split into r subtables.
func NewIBLT(cells, r int, seed uint64) *IBLT { return iblt.New(cells, r, seed) }

// NewErasureCode returns a Biff-style erasure code with the given number
// of check cells and r hash positions per symbol (r in [3, 8]).
func NewErasureCode(checkCells, r int, seed uint64) *ErasureCode {
	return erasure.NewCode(checkCells, r, seed)
}

// BuildMPHF builds a minimal perfect hash function over distinct keys
// using γ = 1.23 table overhead (edge density just below c*(2,3)). It
// runs on the package-default Runtime; servers should use
// Runtime.BuildMPHF for cancellation and admission control.
func BuildMPHF(keys []uint64, seed uint64) (*MPHF, error) {
	f, err := DefaultRuntime().BuildMPHF(context.Background(), keys, seed)
	if errors.Is(err, ErrRuntimeClosed) {
		// Only reachable if the default Runtime was shut down; keep the
		// historical behavior (degraded to inline serial), consistent
		// with PeelParallel's fallback.
		return mphf.Build(keys, mphf.DefaultGamma, seed, 10)
	}
	return f, err
}

// ErrMPHFBuildFailed is the sentinel wrapped by MPHF build errors when
// every seed attempt left a non-empty 2-core; the error message carries
// the last attempt's survivor count ("N edges left in 2-core after
// attempt T") for maxTries/γ tuning. Match with errors.Is.
var ErrMPHFBuildFailed = mphf.ErrBuildFailed

// ErrStaticMapBuildFailed is the corresponding sentinel for static-map
// (Bloomier) builds.
var ErrStaticMapBuildFailed = bloomier.ErrBuildFailed

// StaticMap is a Bloomier-style static key → value map built by peeling;
// see BuildStaticMap.
type StaticMap = bloomier.Filter

// BuildStaticMap builds an immutable map from distinct keys to values in
// ~1.23 slots per key, with three-hash XOR lookups (Bloomier filter /
// static function retrieval — reference [4] of the paper). The build is
// byte-identical at every worker count; serialize it with
// (*StaticMap).Bytes and reload it zero-copy with OpenStaticMap.
func BuildStaticMap(keys, values []uint64, seed uint64) (*StaticMap, error) {
	return bloomier.Build(keys, values, bloomier.DefaultGamma, seed, 10)
}

// BuildStaticMapParallel builds the same map as BuildStaticMap.
//
// Deprecated: the subround construction pipeline has been folded into
// the single ordered-path implementation (fully parallel and bit-stable
// at every worker count), so this is now an alias of BuildStaticMap.
func BuildStaticMapParallel(keys, values []uint64, seed uint64) (*StaticMap, error) {
	return BuildStaticMap(keys, values, seed)
}

// PeelDepths returns, per vertex, the parallel round in which it would be
// peeled (core.InCore = -1 for k-core members) — the structural "peeling
// wave" the branching-process analysis models.
func PeelDepths(g *Hypergraph, k int) []int32 { return core.Depths(g, k) }

// CorenessAll returns each vertex's coreness: the largest k for which the
// vertex survives in the k-core.
func CorenessAll(g *Hypergraph) []int32 { return core.Coreness(g) }

// NewRandomXORSAT returns a random r-XORSAT instance with m equations
// over n variables.
func NewRandomXORSAT(n, m, r int, seed uint64) *XORSATInstance {
	return xorsat.Random(n, m, r, rng.New(seed))
}

// ReconcileSets runs the full two-message IBLT set-reconciliation
// protocol (strata-estimator sizing + subtracted-table decode) between
// two key sets, returning each side's private keys and the total bytes a
// networked deployment would transfer. headroom >= 1.25 oversizes the
// difference table for safety. It runs on the package-default Runtime;
// servers should use Runtime.Reconcile for cancellation and admission
// control.
func ReconcileSets(local, remote []uint64, seed uint64, headroom float64) (onlyLocal, onlyRemote []uint64, wireBytes int, err error) {
	onlyLocal, onlyRemote, wireBytes, err = DefaultRuntime().Reconcile(context.Background(), local, remote, seed, headroom)
	if errors.Is(err, ErrRuntimeClosed) {
		// See BuildMPHF: preserve pre-Runtime behavior after a default-
		// Runtime shutdown.
		return iblt.Reconcile(local, remote, seed, headroom)
	}
	return onlyLocal, onlyRemote, wireBytes, err
}

// SolveXORSAT solves an instance by peeling plus Gaussian elimination on
// the 2-core; it returns xorsat.ErrUnsatisfiable for inconsistent
// systems.
func SolveXORSAT(in *XORSATInstance) ([]uint8, error) {
	assign, _, err := in.Solve()
	return assign, err
}

// WorkerPool is a persistent set of worker goroutines shared by peeling
// jobs. A Runtime owns one (Runtime.Pool exposes it); the deprecated
// ...WithPool / Options.Pool entry points accept one directly.
type WorkerPool = parallel.Pool

// NewWorkerPool starts a pool of the given size (workers <= 0 selects
// GOMAXPROCS). Close it when done.
//
// Deprecated: use NewRuntime, which owns a pool, adds admission control,
// cancellation, graceful Shutdown, and Stats. NewWorkerPool remains for
// callers of the deprecated ...WithPool entry points.
func NewWorkerPool(workers int) *WorkerPool { return parallel.NewPool(workers) }

// JobGroup runs independent peeling jobs concurrently on one shared
// WorkerPool; see NewJobGroup.
//
// Deprecated: use Runtime.Go, which adds context-aware admission and
// cancellation and is drained by Runtime.Shutdown.
type JobGroup = parallel.Group

// NewJobGroup returns a JobGroup whose jobs execute on pool. maxJobs > 0
// bounds how many jobs run simultaneously (admission control for
// servers); <= 0 means unbounded. Each job receives the shared pool and
// should call the ...WithPool variants so all its parallelism stays on
// it.
//
// Deprecated: use Runtime.Go with NewRuntime — the same admission
// bound (RuntimeOptions.MaxJobs) plus context cancellation:
//
//	rt := repro.NewRuntime(repro.RuntimeOptions{MaxJobs: 8})
//	defer rt.Shutdown(context.Background())
//	for _, req := range requests {
//	    wait, _ := rt.Go(ctx, func(ctx context.Context, p *repro.WorkerPool) error {
//	        res, err := req.table.DecodeParallelFrontierCtx(ctx, p)
//	        ...
//	    })
//	}
func NewJobGroup(pool *WorkerPool, maxJobs int) *JobGroup { return pool.NewGroup(maxJobs) }

// BuildMPHFWithPool is BuildMPHF on an explicit shared pool.
//
// Deprecated: use Runtime.BuildMPHF.
func BuildMPHFWithPool(keys []uint64, seed uint64, pool *WorkerPool) (*MPHF, error) {
	return mphf.BuildWithPool(keys, mphf.DefaultGamma, seed, 10, pool)
}

// BuildStaticMapWithPool is BuildStaticMap on an explicit shared pool.
//
// Deprecated: use Runtime.BuildStaticMap.
func BuildStaticMapWithPool(keys, values []uint64, seed uint64, pool *WorkerPool) (*StaticMap, error) {
	return bloomier.BuildWithPool(keys, values, bloomier.DefaultGamma, seed, 10, pool)
}

// ReconcileSetsWithPool is ReconcileSets on an explicit shared pool.
//
// Deprecated: use Runtime.Reconcile.
func ReconcileSetsWithPool(local, remote []uint64, seed uint64, headroom float64, pool *WorkerPool) (onlyLocal, onlyRemote []uint64, wireBytes int, err error) {
	return iblt.ReconcileWithPool(local, remote, seed, headroom, pool)
}
