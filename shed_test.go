package repro

import (
	"context"
	"errors"
	"testing"
)

// TestTryGoShedsWhenSaturated: with MaxJobs saturated, TryGo must fail
// fast with ErrOverloaded — never block, never run the job — and the
// shed must be observable in Stats().JobsShed.
func TestTryGoShedsWhenSaturated(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 2, MaxJobs: 1})
	defer rt.Shutdown(context.Background())

	block := make(chan struct{})
	started := make(chan struct{})
	wait, err := rt.Go(context.Background(), func(ctx context.Context, _ *WorkerPool) error {
		close(started)
		<-block
		return nil
	})
	if err != nil {
		t.Fatalf("Go: %v", err)
	}
	<-started

	ran := false
	if _, err := rt.TryGo(context.Background(), func(context.Context, *WorkerPool) error {
		ran = true
		return nil
	}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("TryGo under saturation: err = %v, want ErrOverloaded", err)
	}
	if ran {
		t.Fatal("shed job ran")
	}
	if got := rt.Stats().JobsShed; got != 1 {
		t.Fatalf("JobsShed = %d, want 1", got)
	}

	close(block)
	if err := wait(); err != nil {
		t.Fatalf("blocking job: %v", err)
	}
	// Slot free again: TryGo admits and runs.
	wait2, err := rt.TryGo(context.Background(), func(context.Context, *WorkerPool) error { return nil })
	if err != nil {
		t.Fatalf("TryGo after release: %v", err)
	}
	if err := wait2(); err != nil {
		t.Fatalf("admitted TryGo job: %v", err)
	}
	if got := rt.Stats().JobsShed; got != 1 {
		t.Fatalf("JobsShed = %d after successful admit, want still 1", got)
	}
}

// TestTryGoShedAfterShutdown: a closed Runtime reports ErrRuntimeClosed
// (a terminal "go away"), not ErrOverloaded (a retryable "later") — the
// two must never be conflated, because clients retry one and not the
// other.
func TestTryGoShedAfterShutdown(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 1, MaxJobs: 4})
	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := rt.TryGo(context.Background(), func(context.Context, *WorkerPool) error { return nil }); !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("TryGo after shutdown: err = %v, want ErrRuntimeClosed", err)
	}
	if got := rt.Stats().JobsShed; got != 0 {
		t.Fatalf("JobsShed = %d after shutdown rejection, want 0", got)
	}
}

// TestDefaultRuntimeRecoversAfterShutdown is the supervised-default
// contract at the Runtime level (ROADMAP item 5 remainder): after the
// shared default Runtime is shut down, the next DefaultRuntime call
// must return a fresh, working Runtime instead of a permanently closed
// one that degrades every facade helper to its serial fallback.
func TestDefaultRuntimeRecoversAfterShutdown(t *testing.T) {
	old := DefaultRuntime()
	if err := old.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The old handle stays closed.
	if _, err := old.Peel(context.Background(), NewUniformHypergraph(64, 32, 3, 7), 2, PeelOptions{}); !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("old handle after shutdown: err = %v, want ErrRuntimeClosed", err)
	}

	fresh := DefaultRuntime()
	if fresh == old {
		t.Fatal("DefaultRuntime returned the closed Runtime")
	}
	res, err := fresh.Peel(context.Background(), NewUniformHypergraph(64, 32, 3, 7), 2, PeelOptions{})
	if err != nil {
		t.Fatalf("Peel on recreated default Runtime: %v", err)
	}
	if res == nil {
		t.Fatal("nil result from recreated default Runtime")
	}
	// And the facade helpers are back on a live runtime, with
	// parallelism, rather than the degraded serial fallback.
	if got := DefaultRuntime().Workers(); got < 1 {
		t.Fatalf("recreated default Runtime Workers() = %d", got)
	}
	if DefaultRuntime() != fresh {
		t.Fatal("DefaultRuntime not stable while open")
	}
}

// TestReconcileMetaSingleAttempt: a reconciliation that completes on the
// first try reports Attempts = 1 and the wire cost of exactly one
// estimator + one table exchange.
func TestReconcileMetaSingleAttempt(t *testing.T) {
	rt := NewRuntime(RuntimeOptions{Workers: 2})
	defer rt.Shutdown(context.Background())

	common := testRuntimeKeys(3000, 11)
	local := append(append([]uint64(nil), common...), testRuntimeKeys(40, 12)...)
	remote := append(append([]uint64(nil), common...), testRuntimeKeys(40, 13)...)

	onlyL, onlyR, meta, err := rt.ReconcileMeta(context.Background(), local, remote, 99, 1.5)
	if err != nil {
		t.Fatalf("ReconcileMeta: %v", err)
	}
	if len(onlyL) != 40 || len(onlyR) != 40 {
		t.Fatalf("difference sizes %d/%d, want 40/40", len(onlyL), len(onlyR))
	}
	if meta.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1", meta.Attempts)
	}
	if meta.WireBytes <= 0 {
		t.Fatalf("WireBytes = %d, want > 0", meta.WireBytes)
	}
	if meta.FinalHeadroom != 1.5 {
		t.Fatalf("FinalHeadroom = %v, want 1.5", meta.FinalHeadroom)
	}
	// Wire accounting agrees with the plain Reconcile spelling.
	_, _, wb, err := rt.Reconcile(context.Background(), local, remote, 99, 1.5)
	if err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	if wb != meta.WireBytes {
		t.Fatalf("Reconcile wireBytes %d != ReconcileMeta.WireBytes %d", wb, meta.WireBytes)
	}
}
