package fib

import (
	"math"
	"testing"
)

func TestSequenceOrder2(t *testing.T) {
	got := Sequence(2, 10)
	want := []float64{1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("F_2(%d) = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSequenceOrder3(t *testing.T) {
	got := Sequence(3, 9)
	want := []float64{1, 1, 1, 3, 5, 9, 17, 31, 57}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("F_3(%d) = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSequenceEdges(t *testing.T) {
	if got := Sequence(5, 0); len(got) != 0 {
		t.Errorf("empty sequence has length %d", len(got))
	}
	if got := Sequence(4, 2); got[0] != 1 || got[1] != 1 {
		t.Errorf("short sequence = %v", got)
	}
}

func TestGrowthRatePaperValues(t *testing.T) {
	// Appendix B: φ_2 is the golden ratio; φ_3 ~ 1.83(9), φ_4 ~ 1.92(8).
	if got := GrowthRate(2); math.Abs(got-(1+math.Sqrt(5))/2) > 1e-10 {
		t.Errorf("φ_2 = %.10f, want golden ratio", got)
	}
	if got := GrowthRate(3); math.Abs(got-1.8393) > 1e-3 {
		t.Errorf("φ_3 = %.4f, want ~1.8393", got)
	}
	if got := GrowthRate(4); math.Abs(got-1.9276) > 1e-3 {
		t.Errorf("φ_4 = %.4f, want ~1.9276", got)
	}
	if got := GrowthRate(1); got != 1 {
		t.Errorf("φ_1 = %v, want 1", got)
	}
}

func TestGrowthRateMatchesSequenceRatio(t *testing.T) {
	for d := 2; d <= 6; d++ {
		seq := Sequence(d, 60)
		ratio := seq[59] / seq[58]
		if math.Abs(ratio-GrowthRate(d)) > 1e-6 {
			t.Errorf("order %d: empirical ratio %.8f vs root %.8f", d, ratio, GrowthRate(d))
		}
	}
}

func TestGrowthRateApproachesTwo(t *testing.T) {
	prev := 0.0
	for d := 2; d <= 12; d++ {
		phi := GrowthRate(d)
		if phi <= prev || phi >= 2 {
			t.Errorf("φ_%d = %v not in (φ_%d, 2)", d, phi, d-1)
		}
		prev = phi
	}
}

func TestSubroundOverheadFactor(t *testing.T) {
	// Appendix B discussion: for r=3, k=2 the overhead is well below 1.5
	// (the paper quotes ~1.456 using φ ≈ 1.61; with the exact golden ratio
	// it is log 2 / log φ_2 ≈ 1.4404) — versus the naive factor r = 3.
	got := SubroundOverheadFactor(3)
	want := math.Log(2) / math.Log((1+math.Sqrt(5))/2)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("overhead(3) = %v, want %v", got, want)
	}
	if got >= 1.5 || got <= 1.4 {
		t.Errorf("overhead(3) = %v, want in (1.4, 1.5)", got)
	}
	// Large r: approaches log2(r-1).
	for _, r := range []int{8, 16, 32} {
		f := SubroundOverheadFactor(r)
		l2 := math.Log2(float64(r - 1))
		if math.Abs(f-l2)/l2 > 0.12 {
			t.Errorf("overhead(%d) = %v, want near log2(r-1) = %v", r, f, l2)
		}
		if f >= float64(r) {
			t.Errorf("overhead(%d) = %v, must beat naive factor r", r, f)
		}
	}
}

func TestLeadConstants(t *testing.T) {
	// k=2: subround lead constant reduces to 1/log φ_{r-1}.
	for _, r := range []int{3, 4, 5} {
		got := SubroundLeadConstant(2, r)
		want := 1 / math.Log(GrowthRate(r-1))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("SubroundLeadConstant(2,%d) = %v, want %v", r, got, want)
		}
		if rl := RoundLeadConstant(2, r); math.Abs(rl*float64(r)-got) > 1e-9 {
			t.Errorf("round/subround constants inconsistent for r=%d", r)
		}
	}
	// k=3, r=4 sanity: strictly smaller than the k=2 constant (more
	// aggressive decay with higher k).
	if SubroundLeadConstant(3, 4) >= SubroundLeadConstant(2, 4) {
		t.Error("lead constant should decrease with k")
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Sequence order 0":   func() { Sequence(0, 5) },
		"Sequence negative":  func() { Sequence(2, -1) },
		"GrowthRate order 0": func() { GrowthRate(0) },
		"Overhead r=2":       func() { SubroundOverheadFactor(2) },
		"RoundLead r=2":      func() { RoundLeadConstant(2, 2) },
		"RoundLead k=1":      func() { RoundLeadConstant(1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
