// Package fib provides generalized (order-d) Fibonacci sequences and their
// asymptotic growth rates φ_d, the constants that govern the subtable
// peeling bound of Theorems 4 and 7 in Jiang, Mitzenmacher, and Thaler
// (SPAA 2014). There, peeling with r subtables converges with the exponent
// falling along an order-(r−1) Fibonacci sequence, so the process needs
// only r/(r·log φ_{r−1} + log(k−1)) · log log n + O(1) subrounds — a factor
// ≈ log₂(r−1) more subrounds than plain peeling needs rounds, not the naive
// factor of r.
package fib

import (
	"fmt"
	"math"
)

// Sequence returns the first n elements of the order-d Fibonacci sequence
// used in Appendix B of the paper: the first d elements are 1, and each
// subsequent element is the sum of the preceding d elements. Values are
// float64 because only growth rates matter downstream; they stay exact up
// to 2^53. It panics if d < 1 or n < 0.
func Sequence(d, n int) []float64 {
	if d < 1 {
		panic(fmt.Sprintf("fib: order %d < 1", d))
	}
	if n < 0 {
		panic("fib: negative length")
	}
	seq := make([]float64, n)
	for i := 0; i < n && i < d; i++ {
		seq[i] = 1
	}
	for i := d; i < n; i++ {
		s := 0.0
		for j := i - d; j < i; j++ {
			s += seq[j]
		}
		seq[i] = s
	}
	return seq
}

// GrowthRate returns φ_d = lim F_d(i+1)/F_d(i), the unique root in (1, 2)
// of x^d = x^{d-1} + x^{d-2} + ... + 1 for d >= 2. For d = 1 the sequence
// is constant and the rate is 1. φ_2 is the golden ratio ≈ 1.618; φ_d
// approaches 2 from below as d grows (φ_3 ≈ 1.839, φ_4 ≈ 1.928).
// Panics if d < 1.
func GrowthRate(d int) float64 {
	if d < 1 {
		panic(fmt.Sprintf("fib: order %d < 1", d))
	}
	if d == 1 {
		return 1
	}
	// Root of p(x) = x^d - (x^{d-1} + ... + 1) on (1, 2): p(1) = 1-d < 0
	// and p(2) = 1 > 0, so bisection converges to the dominant root.
	p := func(x float64) float64 {
		v := math.Pow(x, float64(d))
		s := 0.0
		for j := 0; j < d; j++ {
			s += math.Pow(x, float64(j))
		}
		return v - s
	}
	lo, hi := 1.0, 2.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if p(mid) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// validateSubtable panics if (k, r) is outside the regime the subtable
// bounds are stated for (k >= 2, r >= 3).
func validateSubtable(k, r int) {
	if r < 3 {
		panic("fib: subtable bounds require r >= 3")
	}
	if k < 2 {
		panic("fib: subtable bounds require k >= 2")
	}
}

// RoundLeadConstant returns the Theorem 7 constant multiplying log log n
// when the subtable process is measured in full rounds (each consisting of
// r subrounds): 1 / (r·log φ_{r−1} + log(k−1)).
func RoundLeadConstant(k, r int) float64 {
	validateSubtable(k, r)
	return 1 / (float64(r)*math.Log(GrowthRate(r-1)) + math.Log(float64(k-1)))
}

// SubroundLeadConstant returns the Theorem 4 constant multiplying
// log log n when the subtable process is measured in subrounds:
// r / (r·log φ_{r−1} + log(k−1)). For k = 2 this reduces to 1/log φ_{r−1},
// the form the paper compares against 1/log(r−1) for plain peeling.
func SubroundLeadConstant(k, r int) float64 {
	return float64(r) * RoundLeadConstant(k, r)
}

// SubroundOverheadFactor returns log(r−1)/log(φ_{r−1}), the paper's
// headline comparison for k = 2: peeling with subtables costs this factor
// more subrounds than plain peeling costs rounds (≈ 1.456 for r = 3, and
// approaching log₂(r−1) as r grows) — far below the naive factor of r.
// Panics if r < 3.
func SubroundOverheadFactor(r int) float64 {
	if r < 3 {
		panic("fib: subtable bounds require r >= 3")
	}
	return math.Log(float64(r-1)) / math.Log(GrowthRate(r-1))
}
