// Package erasure implements a Biff-style (Bloom-filter) erasure code
// (Mitzenmacher & Varghese), one of the peeling applications motivating
// Jiang, Mitzenmacher, and Thaler (SPAA 2014): each data symbol is XORed
// into r hashed check cells, so the erased symbols form the edges of a
// random r-uniform hypergraph over the check cells, and decoding is
// exactly peeling to the 2-core.
//
// Decoding succeeds with high probability as long as
//
//	(#erased symbols) < c*(2,r) × (#check cells),
//
// e.g. r = 3 tolerates losses up to ~0.818 × cells — the paper's
// below-threshold regime, where the parallel decoder also finishes in
// O(log log n) rounds.
package erasure

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// Cell is one check symbol: the XOR of the values of the data symbols
// hashed to it, a XOR of their (index+1) tags, a count, and a checksum
// that guards pure-cell detection after subtraction. Layout matters for
// applyAtomic's 64-bit atomics on 32-bit platforms: the uint64 fields
// lead and the explicit tail padding keeps the struct size a multiple
// of 8, so every element of a []Cell (whose backing array the allocator
// 8-aligns) has 8-aligned uint64 fields.
type Cell struct {
	IdxSum   uint64 // XOR of (index+1); +1 keeps index 0 representable
	ValueSum uint64 // XOR of symbol values
	CheckSum uint64 // XOR of per-symbol checksums
	Count    int32
	_        [4]byte
}

// Code is a (cells, r, seed) configuration. Encoding and decoding must
// use identical configurations.
type Code struct {
	cells int
	r     int
	hseed []uint64
	cseed uint64
}

// NewCode returns a code with the given number of check cells and r hash
// positions per data symbol (r in [3, 8]; r = 2's threshold c*(2,2) is
// degenerate and excluded, as in the paper). Panics if r is outside
// [3, 8] or cells is non-positive — both are static configuration bugs,
// not runtime conditions.
func NewCode(cells, r int, seed uint64) *Code {
	if r < 3 || r > 8 {
		panic(fmt.Sprintf("erasure: r = %d outside [3, 8]", r))
	}
	if cells <= 0 {
		panic("erasure: non-positive cell count")
	}
	c := &Code{
		cells: cells,
		r:     r,
		hseed: make([]uint64, r),
		cseed: rng.Mix64(seed ^ 0x5851f42d4c957f2d),
	}
	for j := 0; j < r; j++ {
		c.hseed[j] = rng.Mix64(seed + uint64(j)*0xbf58476d1ce4e5b9)
	}
	return c
}

// Cells returns the number of check cells.
func (c *Code) Cells() int { return c.cells }

// positions fills pos with the r distinct cells of symbol index i,
// resolving hash collisions by linear re-hashing (so the hypergraph is
// r-uniform with distinct vertices, matching the analysis).
func (c *Code) positions(i int, pos []int) {
	for j := 0; j < c.r; j++ {
		h := rng.Mix64(uint64(i+1) ^ c.hseed[j])
	retry:
		p := int((h >> 32) * uint64(c.cells) >> 32)
		for jj := 0; jj < j; jj++ {
			if pos[jj] == p {
				h = rng.Mix64(h)
				goto retry
			}
		}
		pos[j] = p
	}
}

func (c *Code) checksum(i int) uint64 { return rng.Mix64(uint64(i+1) ^ c.cseed) }

// Encode returns the check cells for the data block. The check overhead
// is Cells()/len(data); tolerable loss is ~c*(2,r)·Cells() symbols.
func (c *Code) Encode(data []uint64) []Cell {
	checks := make([]Cell, c.cells)
	pos := make([]int, c.r)
	for i, v := range data {
		cs := c.checksum(i)
		c.positions(i, pos)
		for _, p := range pos {
			checks[p].Count++
			checks[p].IdxSum ^= uint64(i + 1)
			checks[p].ValueSum ^= v
			checks[p].CheckSum ^= cs
		}
	}
	return checks
}

// EncodeWithPool is Encode with the per-symbol cell updates fanned out
// over an explicit worker pool using atomic XOR/add — the erasure analog
// of the IBLT's parallel insertion phase. The resulting check block is
// cell-for-cell identical to Encode's (XOR updates commute). All
// per-call state is owned by the call, so concurrent encodes may share
// one pool.
func (c *Code) EncodeWithPool(data []uint64, pool *parallel.Pool) []Cell {
	checks, _ := c.EncodeCtx(context.Background(), data, pool)
	return checks
}

// EncodeCtx is EncodeWithPool with cooperative cancellation (checked
// between batch chunks). On a non-nil return the check block is
// partially encoded and must be discarded.
func (c *Code) EncodeCtx(ctx context.Context, data []uint64, pool *parallel.Pool) ([]Cell, error) {
	checks := make([]Cell, c.cells)
	// Per-worker position buffers: chunks with the same worker ID never
	// run concurrently within this call, and the buffers are call-local,
	// so concurrent jobs sharing the pool cannot collide.
	posBufs := make([][]int, pool.Workers())
	for w := range posBufs {
		posBufs[w] = make([]int, c.r)
	}
	if err := pool.ForCtx(ctx, len(data), 2048, func(w, lo, hi int) {
		pos := posBufs[w]
		for i := lo; i < hi; i++ {
			c.applyAtomic(checks, i, data[i], pos, 1)
		}
	}); err != nil {
		return nil, err
	}
	return checks, nil
}

// applyAtomic adds (delta = +1) or subtracts (delta = -1) symbol i with
// value v into cells using atomic updates — the concurrent analog of
// subtract, shared by EncodeWithPool and DecodeWithPool. pos is the
// caller's scratch buffer (one per worker; same-ID chunks never run
// concurrently within a For call).
func (c *Code) applyAtomic(cells []Cell, i int, v uint64, pos []int, delta int32) {
	cs := c.checksum(i)
	c.positions(i, pos)
	for _, p := range pos {
		atomic.AddInt32(&cells[p].Count, delta)
		parallel.XorUint64(&cells[p].IdxSum, uint64(i+1))
		parallel.XorUint64(&cells[p].ValueSum, v)
		parallel.XorUint64(&cells[p].CheckSum, cs)
	}
}

// ErrDecodeFailed reports that peeling stalled — the erased symbols'
// hypergraph had a non-empty 2-core (loss rate above the threshold).
var ErrDecodeFailed = errors.New("erasure: peeling stalled; too many erasures")

// ErrShapeMismatch reports that a decode call's slices do not match the
// code's configuration: data and present differ in length, or the check
// block is not Cells() long.
var ErrShapeMismatch = errors.New("erasure: decode input shape mismatch")

// checkShape validates the decode inputs shared by Decode and DecodeCtx.
func (c *Code) checkShape(data []uint64, present []bool, checks []Cell) error {
	if len(data) != len(present) {
		return fmt.Errorf("%w: data/present length %d != %d", ErrShapeMismatch, len(data), len(present))
	}
	if len(checks) != c.cells {
		return fmt.Errorf("%w: check block length %d != %d cells", ErrShapeMismatch, len(checks), c.cells)
	}
	return nil
}

// Decode reconstructs the missing entries of data in place. present[i]
// reports whether data[i] survived the channel; checks is the full check
// block (assumed intact, as in the Biff code model). On success every
// entry of data is restored and present is all true. On failure
// ErrDecodeFailed is returned and any symbols recovered before the stall
// are filled in (present marks them). Mis-shaped inputs (data/present
// length mismatch, or a check block that is not Cells() long) return an
// error wrapping ErrShapeMismatch.
func (c *Code) Decode(data []uint64, present []bool, checks []Cell) error {
	if err := c.checkShape(data, present, checks); err != nil {
		return err
	}
	// Subtract every received symbol; what remains is an IBLT of the
	// missing ones.
	work := make([]Cell, c.cells)
	copy(work, checks)
	pos := make([]int, c.r)
	missing := 0
	for i, v := range data {
		if !present[i] {
			missing++
			continue
		}
		c.subtract(work, i, v, pos)
	}
	if missing == 0 {
		return nil
	}
	return c.peel(work, data, present, missing)
}

// DecodeWithPool is Decode with both phases on an explicit worker pool:
// the received-symbol subtraction pass (the O(data) part that dominates
// when few symbols are missing) fans out with atomic cell updates, and
// recovery runs the round-synchronous parallel peel decodeRounds — the
// erasure analog of the IBLT's subround decoder — instead of the serial
// queue peel. Results are identical to Decode (peeling is confluent; the
// recovered set and values do not depend on scheduling). All per-call
// state is owned by the call, so concurrent decodes may share one pool
// (the multi-tenant serving pattern; see parallel.Group).
func (c *Code) DecodeWithPool(data []uint64, present []bool, checks []Cell, pool *parallel.Pool) error {
	return c.DecodeCtx(context.Background(), data, present, checks, pool)
}

// DecodeCtx is DecodeWithPool with cooperative cancellation, checked
// inside the subtraction pass and at every peeling round barrier. On
// cancellation it returns ctx.Err(); data and present are then partially
// updated and must be treated as abandoned. Mis-shaped inputs return an
// error wrapping ErrShapeMismatch, as in Decode.
func (c *Code) DecodeCtx(ctx context.Context, data []uint64, present []bool, checks []Cell, pool *parallel.Pool) error {
	if err := c.checkShape(data, present, checks); err != nil {
		return err
	}
	work := make([]Cell, c.cells)
	copy(work, checks)
	posBufs := make([][]int, pool.Workers())
	for w := range posBufs {
		posBufs[w] = make([]int, c.r)
	}
	missingCount := pool.NewCounter()
	if err := pool.ForCtx(ctx, len(data), 2048, func(w, lo, hi int) {
		pos := posBufs[w]
		for i := lo; i < hi; i++ {
			if !present[i] {
				missingCount.Add(w, 1)
				continue
			}
			c.applyAtomic(work, i, data[i], pos, -1)
		}
	}); err != nil {
		return err
	}
	missing := int(missingCount.Sum())
	if missing == 0 {
		return nil
	}
	return c.decodeRounds(ctx, work, data, present, missing, pool)
}

// decodeRounds recovers the missing symbols with a round-synchronous
// parallel peel on the pool — the recovery-phase analog of the IBLT's
// frontier subround decoder. Every cell is a candidate once; each round
// examines the candidate set in parallel, recovers the pure cells'
// symbols, subtracts them atomically, and re-enlists the touched cells
// for the next round. Work is proportional to cells + peeling work, like
// the serial peel, and the round structure matches the paper's analysis
// (O(log log n) rounds below threshold).
//
// Two disciplines make the concurrency safe:
//
//   - An atomic claim bitset over symbol indices guarantees each symbol
//     is recovered and subtracted exactly once, even when several of its
//     cells are pure in the same round (the erasure hypergraph has no
//     subtable structure, so — unlike the IBLT subround decoder — two
//     workers can see the same symbol pure simultaneously).
//   - pureAtomic reads the checksum before the value while applyAtomic
//     writes the checksum last, so a checksum match proves the value read
//     includes every concurrent subtraction that could have produced the
//     matching idx/checksum pair; torn reads fail the checksum and the
//     touched cell is simply re-examined next round (the toucher
//     re-enlisted it).
func (c *Code) decodeRounds(ctx context.Context, work []Cell, data []uint64, present []bool, missing int, pool *parallel.Pool) error {
	workers := pool.Workers()
	// pending[p] != 0 while cell p sits in a candidate list; the CAS
	// guard gives each cell at most one pending entry.
	pending := make([]uint32, c.cells)
	cands := make([]int, c.cells)
	for p := range cands {
		cands[p] = p
		pending[p] = 1
	}
	claimed := parallel.NewBitset(len(data))
	recovered := pool.NewCounter()
	posBufs := make([][]int, workers)
	relist := make([][]int, workers)
	for w := range posBufs {
		posBufs[w] = make([]int, c.r)
	}

	var peel []int
	for len(cands) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Phase A (single-threaded): snapshot and clear pending flags so
		// subtractions during Phase B can re-enlist cells.
		peel, cands = cands, peel[:0]
		for _, p := range peel {
			atomic.StoreUint32(&pending[p], 0)
		}
		pool.For(len(peel), 512, func(w, lo, hi int) {
			pos := posBufs[w]
			local := relist[w]
			for idx := lo; idx < hi; idx++ {
				p := peel[idx]
				i, v, ok := c.pureAtomic(&work[p])
				if !ok {
					continue
				}
				// Claim symbol i: exactly one worker subtracts it even if
				// several of its cells are pure this round.
				if !claimed.AtomicSet(i) {
					continue
				}
				// Distinct claimed indices → distinct data/present slots;
				// no two workers write the same element.
				data[i] = v
				present[i] = true
				recovered.Add(w, 1)
				cs := c.checksum(i)
				c.positions(i, pos)
				for _, q := range pos {
					atomic.AddInt32(&work[q].Count, -1)
					parallel.XorUint64(&work[q].IdxSum, uint64(i+1))
					parallel.XorUint64(&work[q].ValueSum, v)
					parallel.XorUint64(&work[q].CheckSum, cs)
					if atomic.CompareAndSwapUint32(&pending[q], 0, 1) {
						local = append(local, q)
					}
				}
			}
			relist[w] = local
		})
		for w := range relist {
			cands = append(cands, relist[w]...)
			relist[w] = relist[w][:0]
		}
	}
	if got := int(recovered.Sum()); got != missing {
		return fmt.Errorf("%w (recovered %d of %d)", ErrDecodeFailed, got, missing)
	}
	return nil
}

// pureAtomic is the atomic-read variant of pure used by decodeRounds: it
// reports whether the cell holds exactly one missing symbol, returning
// its index and value. Reads are ordered Count, IdxSum, CheckSum, then
// ValueSum; applyAtomic and the decode subtractions write CheckSum last,
// so a checksum that validates IdxSum proves the concurrent subtraction
// (if any) had already finished updating ValueSum when we read it. Any
// other torn combination fails the 64-bit checksum w.h.p. and the cell
// is retried on its next enlistment.
func (c *Code) pureAtomic(cell *Cell) (idx int, val uint64, ok bool) {
	if atomic.LoadInt32(&cell.Count) != 1 {
		return 0, 0, false
	}
	is := atomic.LoadUint64(&cell.IdxSum)
	if is == 0 {
		return 0, 0, false
	}
	idx = int(is - 1)
	if c.checksum(idx) != atomic.LoadUint64(&cell.CheckSum) {
		return 0, 0, false
	}
	return idx, atomic.LoadUint64(&cell.ValueSum), true
}

// peel runs the queue-driven serial peel of pure cells shared by Decode
// and DecodeWithPool, filling recovered symbols into data/present.
func (c *Code) peel(work []Cell, data []uint64, present []bool, missing int) error {
	pos := make([]int, c.r)
	queue := make([]int, 0, 256)
	for p := range work {
		if c.pure(&work[p]) {
			queue = append(queue, p)
		}
	}
	recovered := 0
	for head := 0; head < len(queue); head++ {
		p := queue[head]
		if !c.pure(&work[p]) {
			continue
		}
		idx := int(work[p].IdxSum - 1)
		val := work[p].ValueSum
		data[idx] = val
		present[idx] = true
		recovered++
		c.subtract(work, idx, val, pos)
		for _, q := range pos {
			if c.pure(&work[q]) {
				queue = append(queue, q)
			}
		}
	}
	if recovered != missing {
		return fmt.Errorf("%w (recovered %d of %d)", ErrDecodeFailed, recovered, missing)
	}
	return nil
}

// pure reports whether cell holds exactly one missing symbol with a
// consistent checksum and a valid index tag.
func (c *Code) pure(cell *Cell) bool {
	if cell.Count != 1 || cell.IdxSum == 0 {
		return false
	}
	return c.checksum(int(cell.IdxSum-1)) == cell.CheckSum
}

func (c *Code) subtract(work []Cell, i int, v uint64, pos []int) {
	cs := c.checksum(i)
	c.positions(i, pos)
	for _, p := range pos {
		work[p].Count--
		work[p].IdxSum ^= uint64(i + 1)
		work[p].ValueSum ^= v
		work[p].CheckSum ^= cs
	}
}

// MaxTolerableLoss returns the approximate number of erasures the code
// survives w.h.p.: c*(2,r) × cells, with cstar supplied by the caller
// (see internal/threshold) to keep this package dependency-light.
func (c *Code) MaxTolerableLoss(cstar float64) int {
	return int(cstar * float64(c.cells))
}
