// Package erasure implements a Biff-style (Bloom-filter) erasure code
// (Mitzenmacher & Varghese), one of the peeling applications motivating
// Jiang, Mitzenmacher, and Thaler (SPAA 2014): each data symbol is XORed
// into r hashed check cells, so the erased symbols form the edges of a
// random r-uniform hypergraph over the check cells, and decoding is
// exactly peeling to the 2-core.
//
// Decoding succeeds with high probability as long as
//
//	(#erased symbols) < c*(2,r) × (#check cells),
//
// e.g. r = 3 tolerates losses up to ~0.818 × cells — the paper's
// below-threshold regime, where the parallel decoder also finishes in
// O(log log n) rounds.
package erasure

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// Cell is one check symbol: the XOR of the values of the data symbols
// hashed to it, a XOR of their (index+1) tags, a count, and a checksum
// that guards pure-cell detection after subtraction. Layout matters for
// applyAtomic's 64-bit atomics on 32-bit platforms: the uint64 fields
// lead and the explicit tail padding keeps the struct size a multiple
// of 8, so every element of a []Cell (whose backing array the allocator
// 8-aligns) has 8-aligned uint64 fields.
type Cell struct {
	IdxSum   uint64 // XOR of (index+1); +1 keeps index 0 representable
	ValueSum uint64 // XOR of symbol values
	CheckSum uint64 // XOR of per-symbol checksums
	Count    int32
	_        [4]byte
}

// Code is a (cells, r, seed) configuration. Encoding and decoding must
// use identical configurations.
type Code struct {
	cells int
	r     int
	hseed []uint64
	cseed uint64
}

// NewCode returns a code with the given number of check cells and r hash
// positions per data symbol (r in [3, 8]; r = 2's threshold c*(2,2) is
// degenerate and excluded, as in the paper).
func NewCode(cells, r int, seed uint64) *Code {
	if r < 3 || r > 8 {
		panic(fmt.Sprintf("erasure: r = %d outside [3, 8]", r))
	}
	if cells <= 0 {
		panic("erasure: non-positive cell count")
	}
	c := &Code{
		cells: cells,
		r:     r,
		hseed: make([]uint64, r),
		cseed: rng.Mix64(seed ^ 0x5851f42d4c957f2d),
	}
	for j := 0; j < r; j++ {
		c.hseed[j] = rng.Mix64(seed + uint64(j)*0xbf58476d1ce4e5b9)
	}
	return c
}

// Cells returns the number of check cells.
func (c *Code) Cells() int { return c.cells }

// positions fills pos with the r distinct cells of symbol index i,
// resolving hash collisions by linear re-hashing (so the hypergraph is
// r-uniform with distinct vertices, matching the analysis).
func (c *Code) positions(i int, pos []int) {
	for j := 0; j < c.r; j++ {
		h := rng.Mix64(uint64(i+1) ^ c.hseed[j])
	retry:
		p := int((h >> 32) * uint64(c.cells) >> 32)
		for jj := 0; jj < j; jj++ {
			if pos[jj] == p {
				h = rng.Mix64(h)
				goto retry
			}
		}
		pos[j] = p
	}
}

func (c *Code) checksum(i int) uint64 { return rng.Mix64(uint64(i+1) ^ c.cseed) }

// Encode returns the check cells for the data block. The check overhead
// is Cells()/len(data); tolerable loss is ~c*(2,r)·Cells() symbols.
func (c *Code) Encode(data []uint64) []Cell {
	checks := make([]Cell, c.cells)
	pos := make([]int, c.r)
	for i, v := range data {
		cs := c.checksum(i)
		c.positions(i, pos)
		for _, p := range pos {
			checks[p].Count++
			checks[p].IdxSum ^= uint64(i + 1)
			checks[p].ValueSum ^= v
			checks[p].CheckSum ^= cs
		}
	}
	return checks
}

// EncodeWithPool is Encode with the per-symbol cell updates fanned out
// over an explicit worker pool using atomic XOR/add — the erasure analog
// of the IBLT's parallel insertion phase. The resulting check block is
// cell-for-cell identical to Encode's (XOR updates commute). All
// per-call state is owned by the call, so concurrent encodes may share
// one pool.
func (c *Code) EncodeWithPool(data []uint64, pool *parallel.Pool) []Cell {
	checks := make([]Cell, c.cells)
	// Per-worker position buffers: chunks with the same worker ID never
	// run concurrently within this call, and the buffers are call-local,
	// so concurrent jobs sharing the pool cannot collide.
	posBufs := make([][]int, pool.Workers())
	for w := range posBufs {
		posBufs[w] = make([]int, c.r)
	}
	pool.For(len(data), 2048, func(w, lo, hi int) {
		pos := posBufs[w]
		for i := lo; i < hi; i++ {
			c.applyAtomic(checks, i, data[i], pos, 1)
		}
	})
	return checks
}

// applyAtomic adds (delta = +1) or subtracts (delta = -1) symbol i with
// value v into cells using atomic updates — the concurrent analog of
// subtract, shared by EncodeWithPool and DecodeWithPool. pos is the
// caller's scratch buffer (one per worker; same-ID chunks never run
// concurrently within a For call).
func (c *Code) applyAtomic(cells []Cell, i int, v uint64, pos []int, delta int32) {
	cs := c.checksum(i)
	c.positions(i, pos)
	for _, p := range pos {
		atomic.AddInt32(&cells[p].Count, delta)
		parallel.XorUint64(&cells[p].IdxSum, uint64(i+1))
		parallel.XorUint64(&cells[p].ValueSum, v)
		parallel.XorUint64(&cells[p].CheckSum, cs)
	}
}

// ErrDecodeFailed reports that peeling stalled — the erased symbols'
// hypergraph had a non-empty 2-core (loss rate above the threshold).
var ErrDecodeFailed = errors.New("erasure: peeling stalled; too many erasures")

// Decode reconstructs the missing entries of data in place. present[i]
// reports whether data[i] survived the channel; checks is the full check
// block (assumed intact, as in the Biff code model). On success every
// entry of data is restored and present is all true. On failure
// ErrDecodeFailed is returned and any symbols recovered before the stall
// are filled in (present marks them).
func (c *Code) Decode(data []uint64, present []bool, checks []Cell) error {
	if len(data) != len(present) {
		panic("erasure: data/present length mismatch")
	}
	if len(checks) != c.cells {
		panic("erasure: wrong check block size")
	}
	// Subtract every received symbol; what remains is an IBLT of the
	// missing ones.
	work := make([]Cell, c.cells)
	copy(work, checks)
	pos := make([]int, c.r)
	missing := 0
	for i, v := range data {
		if !present[i] {
			missing++
			continue
		}
		c.subtract(work, i, v, pos)
	}
	if missing == 0 {
		return nil
	}
	return c.peel(work, data, present, missing)
}

// DecodeWithPool is Decode with the received-symbol subtraction pass —
// the O(data) part that dominates when few symbols are missing — fanned
// out over an explicit worker pool with atomic cell updates. The peel of
// the (small) missing set stays serial. Results are identical to Decode.
// All per-call state is owned by the call, so concurrent decodes may
// share one pool (the multi-tenant serving pattern; see parallel.Group).
func (c *Code) DecodeWithPool(data []uint64, present []bool, checks []Cell, pool *parallel.Pool) error {
	if len(data) != len(present) {
		panic("erasure: data/present length mismatch")
	}
	if len(checks) != c.cells {
		panic("erasure: wrong check block size")
	}
	work := make([]Cell, c.cells)
	copy(work, checks)
	posBufs := make([][]int, pool.Workers())
	for w := range posBufs {
		posBufs[w] = make([]int, c.r)
	}
	missingCount := pool.NewCounter()
	pool.For(len(data), 2048, func(w, lo, hi int) {
		pos := posBufs[w]
		for i := lo; i < hi; i++ {
			if !present[i] {
				missingCount.Add(w, 1)
				continue
			}
			c.applyAtomic(work, i, data[i], pos, -1)
		}
	})
	missing := int(missingCount.Sum())
	if missing == 0 {
		return nil
	}
	return c.peel(work, data, present, missing)
}

// peel runs the queue-driven serial peel of pure cells shared by Decode
// and DecodeWithPool, filling recovered symbols into data/present.
func (c *Code) peel(work []Cell, data []uint64, present []bool, missing int) error {
	pos := make([]int, c.r)
	queue := make([]int, 0, 256)
	for p := range work {
		if c.pure(&work[p]) {
			queue = append(queue, p)
		}
	}
	recovered := 0
	for head := 0; head < len(queue); head++ {
		p := queue[head]
		if !c.pure(&work[p]) {
			continue
		}
		idx := int(work[p].IdxSum - 1)
		val := work[p].ValueSum
		data[idx] = val
		present[idx] = true
		recovered++
		c.subtract(work, idx, val, pos)
		for _, q := range pos {
			if c.pure(&work[q]) {
				queue = append(queue, q)
			}
		}
	}
	if recovered != missing {
		return fmt.Errorf("%w (recovered %d of %d)", ErrDecodeFailed, recovered, missing)
	}
	return nil
}

// pure reports whether cell holds exactly one missing symbol with a
// consistent checksum and a valid index tag.
func (c *Code) pure(cell *Cell) bool {
	if cell.Count != 1 || cell.IdxSum == 0 {
		return false
	}
	return c.checksum(int(cell.IdxSum-1)) == cell.CheckSum
}

func (c *Code) subtract(work []Cell, i int, v uint64, pos []int) {
	cs := c.checksum(i)
	c.positions(i, pos)
	for _, p := range pos {
		work[p].Count--
		work[p].IdxSum ^= uint64(i + 1)
		work[p].ValueSum ^= v
		work[p].CheckSum ^= cs
	}
}

// MaxTolerableLoss returns the approximate number of erasures the code
// survives w.h.p.: c*(2,r) × cells, with cstar supplied by the caller
// (see internal/threshold) to keep this package dependency-light.
func (c *Code) MaxTolerableLoss(cstar float64) int {
	return int(cstar * float64(c.cells))
}
