package erasure

import (
	"context"
	"errors"
	"testing"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// TestDecodeRoundsMatchesSerial drives the round-synchronous parallel
// recovery peel against the serial queue peel across loss rates,
// including a heavy loss just below threshold where recovery (not
// subtraction) dominates, and an above-threshold failure where both must
// report the same recovered count.
func TestDecodeRoundsMatchesSerial(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	const cells = 6000
	code := NewCode(cells, 3, 77)
	gen := rng.New(123)
	data := make([]uint64, 20000)
	for i := range data {
		data[i] = gen.Uint64()
	}
	checks := code.Encode(data)

	for _, losses := range []int{1, cells / 10, cells / 2, int(0.8 * cells)} {
		gotP := append([]uint64(nil), data...)
		gotS := append([]uint64(nil), data...)
		presentP := make([]bool, len(data))
		presentS := make([]bool, len(data))
		for i := range presentP {
			presentP[i], presentS[i] = true, true
		}
		perm := rng.New(uint64(losses)).Perm(len(data))[:losses]
		for _, i := range perm {
			gotP[i], presentP[i] = 0, false
			gotS[i], presentS[i] = 0, false
		}
		errP := code.DecodeWithPool(gotP, presentP, checks, pool)
		errS := code.Decode(gotS, presentS, checks)
		if (errP == nil) != (errS == nil) {
			t.Fatalf("losses=%d: parallel err=%v, serial err=%v", losses, errP, errS)
		}
		if errP != nil {
			continue
		}
		for i := range data {
			if gotP[i] != data[i] {
				t.Fatalf("losses=%d: parallel decode restored symbol %d wrong", losses, i)
			}
		}
	}

	// Above threshold: both decoders stall; same sentinel error.
	tooMany := int(0.95 * cells)
	got := append([]uint64(nil), data...)
	present := make([]bool, len(data))
	for i := range present {
		present[i] = true
	}
	for _, i := range rng.New(9).Perm(len(data))[:tooMany] {
		got[i], present[i] = 0, false
	}
	if err := code.DecodeWithPool(got, present, checks, pool); !errors.Is(err, ErrDecodeFailed) {
		t.Fatalf("above-threshold parallel decode: err = %v, want ErrDecodeFailed", err)
	}
}

// TestDecodeCtxCancel checks cooperative cancellation of both erasure
// phases.
func TestDecodeCtxCancel(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	code := NewCode(2000, 3, 5)
	gen := rng.New(42)
	data := make([]uint64, 8000)
	for i := range data {
		data[i] = gen.Uint64()
	}
	checks := code.Encode(data)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := code.EncodeCtx(ctx, data, pool); !errors.Is(err, context.Canceled) {
		t.Fatalf("EncodeCtx(canceled): %v", err)
	}
	present := make([]bool, len(data))
	if err := code.DecodeCtx(ctx, data, present, checks, pool); !errors.Is(err, context.Canceled) {
		t.Fatalf("DecodeCtx(canceled): %v", err)
	}
}

// TestConcurrentDecodeRounds runs several parallel decodes of one code
// on a shared pool — the per-job state contract, meaningful under -race.
func TestConcurrentDecodeRounds(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	code := NewCode(3000, 3, 13)
	gen := rng.New(7)
	data := make([]uint64, 9000)
	for i := range data {
		data[i] = gen.Uint64()
	}
	checks := code.Encode(data)
	g := pool.NewGroup(0)
	for j := 0; j < 6; j++ {
		jobGen := rng.New(uint64(1000 + j))
		g.Go(func(p *parallel.Pool) error {
			got := append([]uint64(nil), data...)
			present := make([]bool, len(data))
			for i := range present {
				present[i] = true
			}
			for _, i := range jobGen.Perm(len(data))[:1200] {
				got[i], present[i] = 0, false
			}
			if err := code.DecodeWithPool(got, present, checks, p); err != nil {
				return err
			}
			for i := range data {
				if got[i] != data[i] {
					return errors.New("concurrent decode corrupted a symbol")
				}
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}
