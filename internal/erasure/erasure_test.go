package erasure

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/threshold"
)

func randomData(n int, seed uint64) []uint64 {
	gen := rng.New(seed)
	data := make([]uint64, n)
	for i := range data {
		data[i] = gen.Uint64()
	}
	return data
}

// erase knocks out `losses` random distinct symbols and returns the
// corrupted copy plus the presence mask.
func erase(data []uint64, losses int, seed uint64) ([]uint64, []bool) {
	gen := rng.New(seed)
	corrupted := append([]uint64(nil), data...)
	present := make([]bool, len(data))
	for i := range present {
		present[i] = true
	}
	perm := gen.Perm(len(data))
	for _, i := range perm[:losses] {
		corrupted[i] = 0
		present[i] = false
	}
	return corrupted, present
}

func TestRoundTripNoLoss(t *testing.T) {
	data := randomData(10000, 1)
	code := NewCode(1500, 3, 7)
	checks := code.Encode(data)
	got := append([]uint64(nil), data...)
	present := make([]bool, len(data))
	for i := range present {
		present[i] = true
	}
	if err := code.Decode(got, present, checks); err != nil {
		t.Fatalf("no-loss decode: %v", err)
	}
}

func TestRecoversBelowThreshold(t *testing.T) {
	// 1000 losses against 1500 check cells: load 0.67 < 0.818.
	data := randomData(20000, 2)
	code := NewCode(1500, 3, 7)
	checks := code.Encode(data)
	corrupted, present := erase(data, 1000, 3)
	if err := code.Decode(corrupted, present, checks); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range data {
		if corrupted[i] != data[i] {
			t.Fatalf("symbol %d wrong after decode", i)
		}
		if !present[i] {
			t.Fatalf("symbol %d not marked recovered", i)
		}
	}
}

func TestFailsAboveThreshold(t *testing.T) {
	// 1400 losses against 1500 cells: load 0.93 > 0.818 — must stall.
	data := randomData(20000, 4)
	code := NewCode(1500, 3, 9)
	checks := code.Encode(data)
	corrupted, present := erase(data, 1400, 5)
	err := code.Decode(corrupted, present, checks)
	if !errors.Is(err, ErrDecodeFailed) {
		t.Fatalf("expected ErrDecodeFailed, got %v", err)
	}
	// Partially recovered symbols must still be correct.
	for i := range data {
		if present[i] && corrupted[i] != data[i] {
			t.Fatalf("symbol %d wrong despite being marked recovered", i)
		}
	}
}

func TestThresholdSharpness(t *testing.T) {
	// Success probability should flip between loads 0.7 and 0.95 around
	// c*(2,3) ~ 0.818.
	cstar, _ := threshold.Threshold(2, 3)
	data := randomData(30000, 6)
	code := NewCode(2000, 3, 11)
	checks := code.Encode(data)

	lowLoss := int(0.85 * cstar * 2000) // ~0.70 load
	corrupted, present := erase(data, lowLoss, 7)
	if err := code.Decode(corrupted, present, checks); err != nil {
		t.Errorf("decode failed at load %.2f below threshold: %v",
			float64(lowLoss)/2000, err)
	}

	highLoss := int(1.15 * cstar * 2000) // ~0.94 load
	corrupted, present = erase(data, highLoss, 8)
	if err := code.Decode(corrupted, present, checks); err == nil {
		t.Errorf("decode succeeded at load %.2f above threshold", float64(highLoss)/2000)
	}
}

func TestMaxTolerableLoss(t *testing.T) {
	cstar, _ := threshold.Threshold(2, 3)
	code := NewCode(2000, 3, 1)
	want := int(cstar * 2000)
	if got := code.MaxTolerableLoss(cstar); got != want {
		t.Errorf("MaxTolerableLoss = %d, want %d", got, want)
	}
}

func TestR4Code(t *testing.T) {
	data := randomData(15000, 9)
	code := NewCode(1024, 4, 13)
	checks := code.Encode(data)
	corrupted, present := erase(data, 700, 10) // load 0.68 < 0.772
	if err := code.Decode(corrupted, present, checks); err != nil {
		t.Fatalf("r=4 decode: %v", err)
	}
	for i := range data {
		if corrupted[i] != data[i] {
			t.Fatalf("symbol %d wrong", i)
		}
	}
}

func TestPositionsDistinct(t *testing.T) {
	code := NewCode(64, 4, 3)
	pos := make([]int, 4)
	for i := 0; i < 5000; i++ {
		code.positions(i, pos)
		for a := 0; a < 4; a++ {
			if pos[a] < 0 || pos[a] >= 64 {
				t.Fatalf("index %d position out of range: %d", i, pos[a])
			}
			for b := a + 1; b < 4; b++ {
				if pos[a] == pos[b] {
					t.Fatalf("index %d has duplicate positions", i)
				}
			}
		}
	}
}

func TestValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"r too small": func() { NewCode(100, 2, 0) },
		"r too big":   func() { NewCode(100, 9, 0) },
		"no cells":    func() { NewCode(0, 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDecodeShapeMismatch(t *testing.T) {
	c := NewCode(16, 3, 0)
	for name, err := range map[string]error{
		"mask mismatch": c.Decode(make([]uint64, 4), make([]bool, 5), make([]Cell, 16)),
		"check size":    c.Decode(make([]uint64, 4), make([]bool, 4), make([]Cell, 15)),
	} {
		if !errors.Is(err, ErrShapeMismatch) {
			t.Errorf("%s: got %v, want ErrShapeMismatch", name, err)
		}
	}
	pool := parallel.NewPool(2)
	defer pool.Close()
	err := c.DecodeCtx(context.Background(), make([]uint64, 4), make([]bool, 5), make([]Cell, 16), pool)
	if !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("DecodeCtx: got %v, want ErrShapeMismatch", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	// Property: any data block with losses below half the cells (load
	// 0.5, well under threshold) decodes exactly.
	f := func(seed uint64, nRaw, lossRaw uint16) bool {
		n := int(nRaw%2000) + 10
		cells := 256
		losses := int(lossRaw) % (cells / 2)
		if losses > n {
			losses = n
		}
		data := randomData(n, seed)
		code := NewCode(cells, 3, seed^0x1234)
		checks := code.Encode(data)
		corrupted, present := erase(data, losses, seed^0x5678)
		if err := code.Decode(corrupted, present, checks); err != nil {
			return false
		}
		for i := range data {
			if corrupted[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	data := randomData(1<<16, 1)
	code := NewCode(1<<13, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code.Encode(data)
	}
}

func BenchmarkDecode(b *testing.B) {
	data := randomData(1<<16, 1)
	code := NewCode(1<<13, 3, 1)
	checks := code.Encode(data)
	corrupted, present := erase(data, 1<<12, 2) // load 0.5
	scratchD := make([]uint64, len(data))
	scratchP := make([]bool, len(present))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratchD, corrupted)
		copy(scratchP, present)
		if err := code.Decode(scratchD, scratchP, checks); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEncodeWithPoolMatchesSerial checks the pool-threaded encoder is
// cell-for-cell identical to the serial one (XOR/add updates commute).
func TestEncodeWithPoolMatchesSerial(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	data := randomData(20000, 21)
	code := NewCode(1500, 3, 7)
	serial := code.Encode(data)
	pooled := code.EncodeWithPool(data, pool)
	for i := range serial {
		if serial[i] != pooled[i] {
			t.Fatalf("cell %d differs: serial %+v pooled %+v", i, serial[i], pooled[i])
		}
	}
}

// TestDecodeWithPoolMatchesSerial checks the pool-threaded decoder
// recovers exactly what the serial one does, on both succeeding and
// stalling loss rates.
func TestDecodeWithPoolMatchesSerial(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	data := randomData(20000, 22)
	code := NewCode(1500, 3, 7)
	checks := code.EncodeWithPool(data, pool)
	for _, losses := range []int{0, 1000, 1400} {
		gotS, presentS := erase(data, losses, 23)
		gotP, presentP := erase(data, losses, 23)
		errS := code.Decode(gotS, presentS, checks)
		errP := code.DecodeWithPool(gotP, presentP, checks, pool)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("losses %d: serial err=%v pooled err=%v", losses, errS, errP)
		}
		for i := range data {
			if gotS[i] != gotP[i] || presentS[i] != presentP[i] {
				t.Fatalf("losses %d: symbol %d diverges between serial and pooled decode", losses, i)
			}
		}
	}
}

// TestConcurrentErasureJobsSharedPool runs several encode+decode jobs
// concurrently on one shared pool (the multi-tenant serving pattern).
func TestConcurrentErasureJobsSharedPool(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	group := pool.NewGroup(0)
	for j := 0; j < 6; j++ {
		group.Go(func(p *parallel.Pool) error {
			data := randomData(8000+500*j, uint64(30+j))
			code := NewCode(1200, 3, uint64(7+j))
			checks := code.EncodeWithPool(data, p)
			corrupted, present := erase(data, 700, uint64(90+j))
			if err := code.DecodeWithPool(corrupted, present, checks, p); err != nil {
				return err
			}
			for i := range data {
				if corrupted[i] != data[i] {
					return errors.New("recovered symbol mismatch")
				}
			}
			return nil
		})
	}
	if err := group.Wait(); err != nil {
		t.Fatal(err)
	}
}
