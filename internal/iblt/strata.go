package iblt

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"slices"

	"repro/internal/faultinject"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// ErrDecodeIncomplete is the sentinel matched (errors.Is) by Reconcile
// errors whose difference table failed to decode completely — the
// protocol's probabilistic failure mode, hit when the strata estimate
// undersized the table for the true difference. It is retryable:
// rebuild with more headroom (the repro Runtime's Policy does this
// automatically).
var ErrDecodeIncomplete = errors.New("iblt: reconciliation table decode incomplete")

// StrataEstimator estimates the size of the symmetric difference between
// two key sets without knowing it in advance — the component that makes
// IBLT set reconciliation a complete protocol (Eppstein, Goodrich,
// Uyeda, Varghese, SIGCOMM 2011). Stratum i holds an IBLT of the keys
// whose hash has exactly i leading zero bits, i.e. a 2^{-(i+1)} sample;
// decoding the subtracted strata from the deepest up and scaling by the
// sampling rate estimates |A △ B|, which then sizes the real
// reconciliation IBLT.
type StrataEstimator struct {
	strata []*Table
	seed   uint64
}

// strataDepth covers differences up to ~2^32 keys; each stratum is small
// (fixed 80 cells), so a full estimator costs ~60 KiB on the wire.
const (
	strataDepth     = 32
	strataCells     = 80
	strataTableR    = 3
	strataScaleSeed = 0x9ddfea08eb382d69
)

// NewStrataEstimator returns an empty estimator. Two estimators must
// share (seed) to be comparable.
func NewStrataEstimator(seed uint64) *StrataEstimator {
	e := &StrataEstimator{strata: make([]*Table, strataDepth), seed: seed}
	for i := range e.strata {
		e.strata[i] = New(strataCells, strataTableR, rng.Mix64(seed+uint64(i)*0x9e3779b97f4a7c15))
	}
	return e
}

// stratumOf assigns a key to the stratum equal to the number of leading
// zeros of an independent hash (capped at the deepest stratum).
func (e *StrataEstimator) stratumOf(x uint64) int {
	h := rng.Mix64(x ^ e.seed ^ strataScaleSeed)
	s := 0
	for s < strataDepth-1 && h&(1<<63) == 0 {
		s++
		h <<= 1
	}
	return s
}

// Insert adds a key to its stratum.
func (e *StrataEstimator) Insert(x uint64) {
	e.strata[e.stratumOf(x)].Insert(x)
}

// InsertAll adds keys (sequentially; estimators are tiny).
func (e *StrataEstimator) InsertAll(keys []uint64) {
	for _, k := range keys {
		e.Insert(k)
	}
}

// InsertAllWithPool adds keys in parallel on an explicit worker pool:
// each worker hashes its chunk's keys to their strata and applies them
// with atomic cell updates, so the stratified insert pass — the serial
// prefix of every reconciliation request — scales with the bulk-insert
// paths instead of serializing in front of them. The tables are tiny
// (concurrent updates contend on few cells), but the per-key hashing,
// which dominates, fans out fully. The resulting estimator is
// cell-for-cell identical to a serial InsertAll (XOR updates commute).
func (e *StrataEstimator) InsertAllWithPool(keys []uint64, pool *parallel.Pool) {
	_ = e.insertAllCtx(context.Background(), keys, pool)
}

// insertAllCtx is InsertAllWithPool with cooperative cancellation; on a
// non-nil return the estimator is partially filled and must be
// discarded.
func (e *StrataEstimator) insertAllCtx(ctx context.Context, keys []uint64, pool *parallel.Pool) error {
	return pool.ForCtx(ctx, len(keys), 2048, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			x := keys[i]
			t := e.strata[e.stratumOf(x)]
			t.checkKey(x)
			t.applyAtomic(x, 1)
		}
	})
}

// Subtract replaces e with the stratum-wise difference e − other. Panics
// if the estimators were built with different seeds.
func (e *StrataEstimator) Subtract(other *StrataEstimator) {
	if e.seed != other.seed {
		panic("iblt: subtracting incompatible strata estimators")
	}
	for i := range e.strata {
		e.strata[i].Subtract(other.strata[i])
	}
}

// Estimate returns an estimate of the symmetric difference size encoded
// in a subtracted estimator. It decodes strata from the deepest
// (sparsest) upward, summing decoded difference keys until a stratum
// fails to decode, then scales by the sampling rate of the last decoded
// stratum — the standard strata-estimator rule.
func (e *StrataEstimator) Estimate() int {
	count := 0
	for i := strataDepth - 1; i >= 0; i-- {
		added, removed, ok := e.strata[i].Clone().Decode()
		if !ok {
			// Everything below stratum i was counted; scale for the
			// un-decodable strata: strata 0..i hold fraction 1 - 2^{-(i+1)}
			// ... the conventional estimator simply scales the running
			// count by 2^{i+1}.
			return count << uint(i+1)
		}
		count += len(added) + len(removed)
	}
	return count
}

// WireSize returns the serialized size of the estimator in bytes.
func (e *StrataEstimator) WireSize() int {
	total := 8 // seed header
	for _, s := range e.strata {
		total += s.WireSize()
	}
	return total
}

// MarshalBinary implements encoding.BinaryMarshaler: an 8-byte seed
// followed by the strata tables in order, each in the Table wire format.
func (e *StrataEstimator) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8, e.WireSize())
	binary.LittleEndian.PutUint64(out, e.seed)
	for _, s := range e.strata {
		b, err := s.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Estimators now
// arrive off the wire (the reconciliation server's Estimate op), so the
// parser is strict about more than framing: every stratum must carry the
// canonical geometry (strataCells cells, r = strataTableR) and the seed
// derived from the estimator seed — a stratum whose header re-declares a
// different shape would otherwise parse cleanly here and then panic
// inside Subtract, a remotely triggerable crash.
func (e *StrataEstimator) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("%w: short strata header", ErrBadWireFormat)
	}
	seed := binary.LittleEndian.Uint64(data)
	fresh := NewStrataEstimator(seed)
	off := 8
	for i := range fresh.strata {
		want := fresh.strata[i]
		size := want.WireSize()
		if off+size > len(data) {
			return fmt.Errorf("%w: truncated stratum %d", ErrBadWireFormat, i)
		}
		var st Table
		if err := st.UnmarshalBinary(data[off : off+size]); err != nil {
			return err
		}
		if st.r != want.r || st.subSize != want.subSize || st.seed != want.seed {
			return fmt.Errorf("%w: stratum %d geometry (r=%d subSize=%d seed=%#x), want canonical (r=%d subSize=%d seed=%#x)",
				ErrBadWireFormat, i, st.r, st.subSize, st.seed, want.r, want.subSize, want.seed)
		}
		fresh.strata[i] = &st
		off += size
	}
	if off != len(data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadWireFormat, len(data)-off)
	}
	*e = *fresh
	return nil
}

// Seed returns the estimator's base seed; two estimators must share it
// to be comparable (Subtract / Estimate).
func (e *StrataEstimator) Seed() uint64 { return e.seed }

// Reconcile runs the full two-message protocol between local and remote
// key sets represented by their estimators and source sets: it estimates
// the difference |A △ B| from the subtracted estimators, sizes a
// reconciliation IBLT with the given safety headroom (cells ≈
// headroom × estimate, headroom ≥ 1.25 recommended to stay below
// c*(2,r)), and decodes. Returns the two difference sides.
//
// This is a protocol harness for tests and examples — real deployments
// would ship the estimator and table over a network; the data flow and
// byte counts are identical. It runs on the process-wide default pool;
// servers reconciling many pairs concurrently should use
// ReconcileWithPool so every request shares one pool.
func Reconcile(localKeys, remoteKeys []uint64, seed uint64, headroom float64) (onlyLocal, onlyRemote []uint64, wireBytes int, err error) {
	return ReconcileWithPool(localKeys, remoteKeys, seed, headroom, parallel.Default())
}

// ReconcileWithPool is Reconcile with every phase pinned to an explicit
// worker pool: the strata-estimator inserts (InsertAllWithPool — so no
// serial prefix remains in a reconciliation request), the bulk table
// inserts, and the difference-table frontier decode. All per-request
// state is owned by the call, making it safe to run many
// reconciliations concurrently on one shared pool (e.g. as
// parallel.Group jobs). The returned difference sides are sorted, so the
// output is identical at every pool size (the parallel decoder's
// recovery order is scheduling-dependent; the recovered *set* is not, by
// peeling confluence).
func ReconcileWithPool(localKeys, remoteKeys []uint64, seed uint64, headroom float64, pool *parallel.Pool) (onlyLocal, onlyRemote []uint64, wireBytes int, err error) {
	return ReconcileCtx(context.Background(), localKeys, remoteKeys, seed, headroom, pool)
}

// MaxHeadroom caps the safety headroom ReconcileCtx honors. headroom
// multiplies the difference-table allocation, so an unbounded value —
// e.g. lifted straight off a wire request — would turn a small request
// into an arbitrarily large server-side allocation. 16 is far above any
// useful oversizing (the decode threshold needs ~1.22; Policy
// escalation caps at 4 by default); larger values clamp here and are
// rejected outright by the wire server's request parser.
const MaxHeadroom = 16.0

// ReconcileCtx is ReconcileWithPool with cooperative cancellation,
// checked between protocol phases, inside the bulk insert passes, and at
// the decode's subround barriers. On cancellation it returns ctx.Err()
// and all partial protocol state is abandoned. headroom is clamped into
// [1.25, MaxHeadroom], and the difference table is never sized beyond
// what the two input sets themselves justify, so untrusted parameters
// cannot drive an allocation disproportionate to the keys provided.
func ReconcileCtx(ctx context.Context, localKeys, remoteKeys []uint64, seed uint64, headroom float64, pool *parallel.Pool) (onlyLocal, onlyRemote []uint64, wireBytes int, err error) {
	// !(>= 1.25) rather than < 1.25 so NaN (every comparison false)
	// lands on the floor instead of slipping through.
	if !(headroom >= 1.25) {
		headroom = 1.25
	}
	if headroom > MaxHeadroom {
		headroom = MaxHeadroom
	}
	// Round 1: exchange strata estimators.
	le := NewStrataEstimator(seed)
	if err := le.insertAllCtx(ctx, localKeys, pool); err != nil {
		return nil, nil, 0, err
	}
	re := NewStrataEstimator(seed)
	if err := re.insertAllCtx(ctx, remoteKeys, pool); err != nil {
		return nil, nil, 0, err
	}
	wireBytes = re.WireSize()
	le.Subtract(re)
	est := le.Estimate()
	if est == 0 {
		est = 1
	}
	// The symmetric difference cannot exceed the two sets combined, so an
	// estimate extrapolated past that bound (a deep stratum scaled by
	// 2^i — count<<32 can even wrap negative) never justifies a larger
	// table: the cap keeps the allocation proportional to the keys the
	// caller actually supplied.
	if ub := len(localKeys) + len(remoteKeys); est < 0 || est > ub {
		est = ub
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, wireBytes, err
	}

	// Round 2: exchange an IBLT sized for the estimated difference.
	cells := int(headroom * float64(est) * 1.3) // /c*(2,3)≈0.818 ⇒ ×1.22, plus margin
	if cells < 48 {
		cells = 48
	}
	lt := New(cells, 3, rng.Mix64(seed^0x2545f4914f6cdd1d))
	if err := lt.InsertAllCtx(ctx, localKeys, pool); err != nil {
		return nil, nil, wireBytes, err
	}
	rt := New(cells, 3, rng.Mix64(seed^0x2545f4914f6cdd1d))
	if err := rt.InsertAllCtx(ctx, remoteKeys, pool); err != nil {
		return nil, nil, wireBytes, err
	}
	wireBytes += rt.WireSize()
	lt.Subtract(rt)
	res, err := lt.DecodeParallelFrontierCtx(ctx, pool)
	if err != nil {
		return nil, nil, wireBytes, err
	}
	forceFail := false
	if faultinject.Enabled {
		// Failpoint: setting the *bool forces this reconciliation round
		// to report an incomplete decode.
		faultinject.Fire(faultinject.ReconcileDecode, &forceFail)
	}
	if !res.Complete || forceFail {
		return nil, nil, wireBytes, fmt.Errorf("%w (estimate %d, cells %d)", ErrDecodeIncomplete, est, cells)
	}
	slices.Sort(res.Added)
	slices.Sort(res.Removed)
	return res.Added, res.Removed, wireBytes, nil
}
