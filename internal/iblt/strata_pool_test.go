package iblt

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// TestStrataInsertAllWithPool checks the parallel stratified insert is
// cell-for-cell identical to the serial one (XOR commutes) at every
// worker count.
func TestStrataInsertAllWithPool(t *testing.T) {
	gen := rng.New(5)
	keys := make([]uint64, 50000)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = gen.Uint64()
		}
	}
	want := NewStrataEstimator(42)
	want.InsertAll(keys)
	wb, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		pool := parallel.NewPool(workers)
		got := NewStrataEstimator(42)
		got.InsertAllWithPool(keys, pool)
		pool.Close()
		gb, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !equalBytes(wb, gb) {
			t.Fatalf("workers=%d: parallel strata insert diverges from serial", workers)
		}
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReconcileHeadroomClamped: an absurd headroom — e.g. lifted off a
// hostile wire request — must not scale the difference table with it.
// The clamp to MaxHeadroom plus the union-size cap on the estimate keep
// the allocation proportional to the keys supplied; without them this
// call would attempt a ~1e18-cell table (or wrap the float-to-int
// conversion and panic New). The reconciliation still succeeds.
func TestReconcileHeadroomClamped(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	gen := rng.New(11)
	keys := make([]uint64, 1000)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = gen.Uint64()
		}
	}
	for _, h := range []float64{1e18, math.Inf(1), math.NaN()} {
		onlyL, onlyR, _, err := ReconcileCtx(context.Background(), keys, keys[:900], 3, h, pool)
		if err != nil {
			t.Fatalf("headroom %v: %v", h, err)
		}
		if len(onlyL) != 100 || len(onlyR) != 0 {
			t.Fatalf("headroom %v: difference %d/%d, want 100/0", h, len(onlyL), len(onlyR))
		}
	}
}

// TestReconcileCtxCancel checks a reconciliation request is abandoned on
// a canceled context, and that DecodeParallelCtx/FrontierCtx surface the
// cancellation too.
func TestReconcileCtxCancel(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	gen := rng.New(8)
	keys := make([]uint64, 10000)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = gen.Uint64()
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := ReconcileCtx(ctx, keys, keys[:9000], 3, 1.5, pool); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReconcileCtx(canceled): %v", err)
	}
	tb := New(15000, 3, 9)
	tb.InsertAll(keys)
	if _, err := tb.Clone().DecodeParallelCtx(ctx, pool); !errors.Is(err, context.Canceled) {
		t.Fatalf("DecodeParallelCtx(canceled): %v", err)
	}
	if _, err := tb.Clone().DecodeParallelFrontierCtx(ctx, pool); !errors.Is(err, context.Canceled) {
		t.Fatalf("DecodeParallelFrontierCtx(canceled): %v", err)
	}
	if err := tb.Clone().InsertAllCtx(ctx, keys, pool); !errors.Is(err, context.Canceled) {
		t.Fatalf("InsertAllCtx(canceled): %v", err)
	}
}
