package iblt

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/rng"
)

func randomKeys(n int, seed uint64) []uint64 {
	gen := rng.New(seed)
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := gen.Uint64()
		if k != 0 && !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func sortedCopy(xs []uint64) []uint64 {
	out := append([]uint64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSets(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := sortedCopy(a), sortedCopy(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestInsertDecodeRoundTrip(t *testing.T) {
	keys := randomKeys(5000, 1)
	table := New(10000, 3, 7) // load 0.5, far below c*(2,3) ~ 0.818
	for _, k := range keys {
		table.Insert(k)
	}
	added, removed, ok := table.Decode()
	if !ok {
		t.Fatal("decode failed at load 0.5")
	}
	if len(removed) != 0 {
		t.Fatalf("unexpected removed keys: %d", len(removed))
	}
	if !equalSets(added, keys) {
		t.Fatal("decoded set differs from inserted set")
	}
}

func TestDecodeParallelRoundTrip(t *testing.T) {
	keys := randomKeys(5000, 2)
	table := New(10000, 3, 7)
	table.InsertAll(keys)
	res := table.DecodeParallel()
	if !res.Complete {
		t.Fatal("parallel decode failed at load 0.5")
	}
	if !equalSets(res.Added, keys) {
		t.Fatal("parallel decoded set differs from inserted set")
	}
	if res.Rounds < 1 || res.Subrounds < res.Rounds {
		t.Errorf("rounds %d subrounds %d inconsistent", res.Rounds, res.Subrounds)
	}
}

func TestSerialAndParallelInsertEquivalent(t *testing.T) {
	keys := randomKeys(3000, 3)
	a := New(8000, 4, 9)
	b := New(8000, 4, 9)
	for _, k := range keys {
		a.Insert(k)
	}
	b.InsertAll(keys)
	for i := range a.count {
		if a.count[i] != b.count[i] || a.keySum[i] != b.keySum[i] || a.checkSum[i] != b.checkSum[i] {
			t.Fatalf("cell %d differs between serial and parallel insert", i)
		}
	}
}

func TestInsertDeleteCancels(t *testing.T) {
	keys := randomKeys(1000, 4)
	table := New(4000, 3, 11)
	for _, k := range keys {
		table.Insert(k)
	}
	for _, k := range keys {
		table.Delete(k)
	}
	if !table.empty() {
		t.Fatal("insert+delete did not cancel to the empty table")
	}
}

func TestSparseRecovery(t *testing.T) {
	// The Section 6 motivating workload: N items inserted, all but n
	// deleted; the survivors are recovered from O(n)-size state.
	const total, surviving = 50000, 2000
	keys := randomKeys(total, 5)
	table := New(4096, 4, 13) // load of survivors = 0.49
	table.InsertAll(keys)
	table.DeleteAll(keys[surviving:])
	added, removed, ok := table.Decode()
	if !ok {
		t.Fatal("sparse recovery failed")
	}
	if len(removed) != 0 {
		t.Fatalf("spurious removed keys: %d", len(removed))
	}
	if !equalSets(added, keys[:surviving]) {
		t.Fatal("recovered set differs from surviving set")
	}
}

func TestSetReconciliation(t *testing.T) {
	// Hosts A and B share a large common set; each has a few private
	// keys. Subtract + decode returns exactly the symmetric difference
	// with the correct sidedness.
	common := randomKeys(20000, 6)
	onlyA := randomKeys(300, 7)
	onlyB := randomKeys(310, 8)
	ta := New(2048, 3, 99)
	tb := New(2048, 3, 99)
	ta.InsertAll(common)
	ta.InsertAll(onlyA)
	tb.InsertAll(common)
	tb.InsertAll(onlyB)
	ta.Subtract(tb)
	added, removed, ok := ta.Decode()
	if !ok {
		t.Fatal("reconciliation decode failed")
	}
	if !equalSets(added, onlyA) {
		t.Errorf("A-side keys wrong: got %d, want %d", len(added), len(onlyA))
	}
	if !equalSets(removed, onlyB) {
		t.Errorf("B-side keys wrong: got %d, want %d", len(removed), len(onlyB))
	}
}

func TestSetReconciliationParallel(t *testing.T) {
	common := randomKeys(10000, 16)
	onlyA := randomKeys(200, 17)
	onlyB := randomKeys(190, 18)
	ta := New(1536, 3, 100)
	tb := New(1536, 3, 100)
	ta.InsertAll(common)
	ta.InsertAll(onlyA)
	tb.InsertAll(common)
	tb.InsertAll(onlyB)
	ta.Subtract(tb)
	res := ta.DecodeParallel()
	if !res.Complete {
		t.Fatal("parallel reconciliation decode failed")
	}
	if !equalSets(res.Added, onlyA) || !equalSets(res.Removed, onlyB) {
		t.Error("parallel reconciliation recovered wrong sets")
	}
}

func TestDecodeFailsAboveThreshold(t *testing.T) {
	// Load 0.9 > c*(2,3): the 2-core is non-empty w.h.p., so decoding
	// must stall with partial recovery (Tables 3-4's failing rows).
	keys := randomKeys(9000, 9)
	table := New(10000, 3, 15)
	table.InsertAll(keys)
	added, _, ok := table.Decode()
	if ok {
		t.Fatal("decode succeeded at load 0.9 (should be above threshold)")
	}
	frac := float64(len(added)) / float64(len(keys))
	if frac > 0.9 {
		t.Errorf("recovered fraction %.3f suspiciously high above threshold", frac)
	}
	// Every recovered key must genuinely be an inserted key.
	inserted := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		inserted[k] = true
	}
	for _, k := range added {
		if !inserted[k] {
			t.Fatalf("decoded bogus key %#x", k)
		}
	}
}

func TestSerialParallelSameRecoverySet(t *testing.T) {
	// Peeling is confluent, so serial and parallel recovery must return
	// the same key set even when both fail partway.
	for _, load := range []float64{0.5, 0.75, 0.83, 0.9} {
		cells := 9000
		keys := randomKeys(int(load*float64(cells)), uint64(10+int(load*100)))
		a := New(cells, 3, 21)
		a.InsertAll(keys)
		b := a.Clone()
		addedS, _, okS := a.Decode()
		res := b.DecodeParallel()
		if okS != res.Complete {
			t.Errorf("load %v: serial ok=%v parallel ok=%v", load, okS, res.Complete)
		}
		if !equalSets(addedS, res.Added) {
			t.Errorf("load %v: serial recovered %d keys, parallel %d, sets differ",
				load, len(addedS), len(res.Added))
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	table := New(1000, 3, 5)
	table.Insert(42)
	clone := table.Clone()
	clone.Insert(43)
	added, _, ok := table.Decode()
	if !ok || len(added) != 1 || added[0] != 42 {
		t.Error("clone mutation leaked into original")
	}
}

func TestZeroKeyPanics(t *testing.T) {
	table := New(100, 3, 1)
	defer func() {
		if recover() == nil {
			t.Error("Insert(0) did not panic")
		}
	}()
	table.Insert(0)
}

func TestIncompatibleSubtractPanics(t *testing.T) {
	a := New(1000, 3, 1)
	b := New(1000, 3, 2) // different seed
	defer func() {
		if recover() == nil {
			t.Error("incompatible Subtract did not panic")
		}
	}()
	a.Subtract(b)
}

func TestNewValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"r too small": func() { New(100, 1, 0) },
		"r too big":   func() { New(100, 9, 0) },
		"no cells":    func() { New(0, 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCellsRoundedToSubtables(t *testing.T) {
	table := New(1000, 3, 1)
	if table.Cells()%3 != 0 || table.Cells() < 1000 {
		t.Errorf("Cells() = %d, want multiple of 3 >= 1000", table.Cells())
	}
	if table.R() != 3 {
		t.Errorf("R() = %d", table.R())
	}
	if l := table.Load(501); l <= 0.4 || l >= 0.6 {
		t.Errorf("Load(501) = %v", l)
	}
}

func TestDecodeQuickRoundTrip(t *testing.T) {
	// Property: any set of distinct nonzero keys at low load round-trips,
	// serially and in parallel.
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%200) + 1
		keys := randomKeys(n, seed)
		table := New(n*4+16, 3, seed^0xabc)
		table.InsertAll(keys)
		clone := table.Clone()
		added, removed, ok := table.Decode()
		if !ok || len(removed) != 0 || !equalSets(added, keys) {
			return false
		}
		res := clone.DecodeParallel()
		return res.Complete && equalSets(res.Added, keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func TestParallelRoundsReasonable(t *testing.T) {
	// The number of full rounds needed by parallel recovery should be in
	// the O(log log n) ballpark at moderate load — single digits for 1e4
	// keys — not O(n).
	keys := randomKeys(10000, 11)
	table := New(16384, 4, 31) // load ~0.61 < 0.772
	table.InsertAll(keys)
	res := table.DecodeParallel()
	if !res.Complete {
		t.Fatal("decode failed")
	}
	if res.Rounds > 20 {
		t.Errorf("parallel decode took %d rounds, want O(log log n) ~ single digits", res.Rounds)
	}
}

func BenchmarkInsertSerial(b *testing.B) {
	keys := randomKeys(1<<14, 1)
	table := New(1<<16, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			table.Insert(k)
		}
		for _, k := range keys {
			table.Delete(k)
		}
	}
}

func BenchmarkInsertParallel(b *testing.B) {
	keys := randomKeys(1<<14, 1)
	table := New(1<<16, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.InsertAll(keys)
		table.DeleteAll(keys)
	}
}

func BenchmarkDecodeSerial(b *testing.B) {
	keys := randomKeys(3<<12, 1)
	master := New(1<<14, 3, 1)
	master.InsertAll(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		table := master.Clone()
		b.StartTimer()
		table.Decode()
	}
}

func BenchmarkDecodeParallel(b *testing.B) {
	keys := randomKeys(3<<12, 1)
	master := New(1<<14, 3, 1)
	master.InsertAll(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		table := master.Clone()
		b.StartTimer()
		table.DecodeParallel()
	}
}

// TestInsertAllWithPoolDecodes checks the pool-threaded bulk insert
// produces a decodable table holding exactly the inserted keys.
func TestInsertAllWithPoolDecodes(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	tb := New(8192, 3, 11)
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	tb.InsertAllWithPool(keys, pool)
	added, removed, ok := tb.Decode()
	if !ok || len(added) != len(keys) || len(removed) != 0 {
		t.Fatalf("decode after InsertAllWithPool: ok=%v added=%d removed=%d", ok, len(added), len(removed))
	}
	tb2 := New(8192, 3, 11)
	tb2.InsertAllWithPool(keys, pool)
	tb2.DeleteAllWithPool(keys, pool)
	if _, _, ok := tb2.Decode(); !ok {
		t.Fatal("insert+delete with pool should leave an empty table")
	}
}
