package iblt

import (
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// DecodeParallelFrontier is a work-efficient variant of DecodeParallel:
// instead of rescanning every cell in every subround (the paper's GPU
// strategy, whose above-threshold cost the paper itself points out), it
// scans the table once and then tracks only *candidate* cells — cells
// touched by a deletion since they were last examined. Total work becomes
// proportional to table size plus peeling work, like the serial decoder,
// while the subround structure (and its exactly-once guarantee) is
// unchanged.
//
// This is an engineering extension beyond the paper: it is to
// DecodeParallel what the core package's Frontier scan policy is to its
// FullScan policy. Results (recovered set, completeness) are identical;
// only the work profile differs. Subround/round counts can differ from
// DecodeParallel because a candidate examined mid-round reflects
// deletions from the current subround rather than only earlier rounds —
// peeling confluence makes that harmless.
func (t *Table) DecodeParallelFrontier() *ParallelResult {
	res := &ParallelResult{}

	// pending[c] != 0 while cell c sits in a candidate list; the CAS
	// guard guarantees each cell has at most one pending entry, which is
	// what makes double recovery impossible.
	pending := make([]uint32, t.subSize*t.r)
	cands := make([][]int, t.r)

	// Initial pass: every cell is a candidate once.
	for j := 0; j < t.r; j++ {
		base := j * t.subSize
		cands[j] = make([]int, t.subSize)
		for ci := range cands[j] {
			cands[j][ci] = base + ci
			pending[base+ci] = 1
		}
	}

	var mu sync.Mutex
	var peel []int
	subround := 0
	for round := 1; ; round++ {
		recoveredThisRound := 0
		anyCandidates := false
		for j := 0; j < t.r; j++ {
			subround++
			if len(cands[j]) == 0 {
				continue
			}
			anyCandidates = true
			// Phase A (single-threaded): snapshot and clear pending flags
			// so deletions during Phase B can re-enlist cells.
			peel = peel[:0]
			peel = append(peel, cands[j]...)
			cands[j] = cands[j][:0]
			for _, c := range peel {
				atomic.StoreUint32(&pending[c], 0)
			}

			got := 0
			parallel.For(len(peel), 512, func(lo, hi int) {
				var added, removed []uint64
				local := make([][]int, t.r)
				for idx := lo; idx < hi; idx++ {
					i := peel[idx]
					x, sign, isPure := t.pureAtomic(i)
					if !isPure {
						continue
					}
					cs := t.checksum(x)
					for jj := 0; jj < t.r; jj++ {
						c := t.cellIndex(x, jj)
						atomic.AddInt64(&t.count[c], -sign)
						atomicXor(&t.keySum[c], x)
						atomicXor(&t.checkSum[c], cs)
						// Re-enlist the touched cell (once) so it is
						// re-examined in its subtable's next subround.
						if c != i && atomic.CompareAndSwapUint32(&pending[c], 0, 1) {
							local[jj] = append(local[jj], c)
						}
					}
					if sign > 0 {
						added = append(added, x)
					} else {
						removed = append(removed, x)
					}
				}
				if len(added)+len(removed) > 0 || anyNonEmpty(local) {
					mu.Lock()
					res.Added = append(res.Added, added...)
					res.Removed = append(res.Removed, removed...)
					got += len(added) + len(removed)
					for jj := 0; jj < t.r; jj++ {
						cands[jj] = append(cands[jj], local[jj]...)
					}
					mu.Unlock()
				}
			})
			if got > 0 {
				res.Subrounds = subround
				recoveredThisRound += got
			}
		}
		if recoveredThisRound > 0 {
			res.Rounds = round
		}
		if !anyCandidates {
			break
		}
	}
	res.Complete = t.empty()
	return res
}

func anyNonEmpty(lists [][]int) bool {
	for _, l := range lists {
		if len(l) > 0 {
			return true
		}
	}
	return false
}
