package iblt

import (
	"context"
	"sync/atomic"

	"repro/internal/parallel"
)

// DecodeParallelFrontier is DecodeParallelFrontierWithPool on the
// process-wide default pool.
func (t *Table) DecodeParallelFrontier() *ParallelResult {
	return t.DecodeParallelFrontierWithPool(parallel.Default())
}

// DecodeParallelFrontierWithPool is a work-efficient variant of
// DecodeParallelWithPool: instead of rescanning every cell in every
// subround (the paper's GPU strategy, whose above-threshold cost the
// paper itself points out), it scans the table once and then tracks only
// *candidate* cells — cells touched by a deletion since they were last
// examined. Total work becomes proportional to table size plus peeling
// work, like the serial decoder, while the subround structure (and its
// exactly-once guarantee) is unchanged.
//
// This is an engineering extension beyond the paper: it is to
// DecodeParallel what the core package's Frontier scan policy is to its
// FullScan policy. Results (recovered set, completeness) are identical;
// only the work profile differs. Subround/round counts can differ from
// DecodeParallel because a candidate examined mid-round reflects
// deletions from the current subround rather than only earlier rounds —
// peeling confluence makes that harmless.
//
// All working state — candidate lists, pending flags, and the per-worker
// shards below — is owned by this call, so concurrent decodes on one
// shared pool are safe (the multi-tenant serving pattern; see
// parallel.Group).
func (t *Table) DecodeParallelFrontierWithPool(pool *parallel.Pool) *ParallelResult {
	res, _ := t.DecodeParallelFrontierCtx(context.Background(), pool)
	return res
}

// DecodeParallelFrontierCtx is DecodeParallelFrontierWithPool with
// cooperative cancellation, checked at every subround barrier. On
// cancellation it returns (nil, ctx.Err()); the partially decoded table
// must be discarded.
func (t *Table) DecodeParallelFrontierCtx(ctx context.Context, pool *parallel.Pool) (*ParallelResult, error) {
	res := &ParallelResult{}
	workers := pool.Workers()

	// pending[c] != 0 while cell c sits in a candidate list; the CAS
	// guard guarantees each cell has at most one pending entry, which is
	// what makes double recovery impossible.
	pending := make([]uint32, t.subSize*t.r)
	cands := make([][]int, t.r)

	// Initial pass: every cell is a candidate once.
	for j := 0; j < t.r; j++ {
		base := j * t.subSize
		cands[j] = make([]int, t.subSize)
		for ci := range cands[j] {
			cands[j][ci] = base + ci
			pending[base+ci] = 1
		}
	}

	// Per-worker shards, reused across subrounds: worker w's recovered
	// keys land in shards, and relist[w][jj] collects the cells worker w
	// re-enlisted for subtable jj. Merged at the subround barrier — no
	// mutex, no per-chunk allocation.
	shards := newRecoveryShards(workers)
	relist := make([][][]int, workers)
	for w := range relist {
		relist[w] = make([][]int, t.r)
	}

	var peel []int
	subround := 0
	for round := 1; ; round++ {
		recoveredThisRound := 0
		anyCandidates := false
		for j := 0; j < t.r; j++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			subround++
			if len(cands[j]) == 0 {
				continue
			}
			anyCandidates = true
			// Phase A (single-threaded): snapshot and clear pending flags
			// so deletions during Phase B can re-enlist cells.
			peel = peel[:0]
			peel = append(peel, cands[j]...)
			cands[j] = cands[j][:0]
			for _, c := range peel {
				atomic.StoreUint32(&pending[c], 0)
			}

			pool.For(len(peel), 512, func(w, lo, hi int) {
				added, removed := shards.added[w], shards.removed[w]
				local := relist[w]
				for idx := lo; idx < hi; idx++ {
					i := peel[idx]
					x, sign, isPure := t.pureAtomic(i)
					if !isPure {
						continue
					}
					cs := t.checksum(x)
					for jj := 0; jj < t.r; jj++ {
						c := t.cellIndex(x, jj)
						atomic.AddInt64(&t.count[c], -sign)
						parallel.XorUint64(&t.keySum[c], x)
						parallel.XorUint64(&t.checkSum[c], cs)
						// Re-enlist the touched cell (once) so it is
						// re-examined in its subtable's next subround.
						if c != i && atomic.CompareAndSwapUint32(&pending[c], 0, 1) {
							local[jj] = append(local[jj], c)
						}
					}
					if sign > 0 {
						added = append(added, x)
					} else {
						removed = append(removed, x)
					}
				}
				shards.added[w], shards.removed[w] = added, removed
			})
			for w := range relist {
				for jj := 0; jj < t.r; jj++ {
					cands[jj] = append(cands[jj], relist[w][jj]...)
					relist[w][jj] = relist[w][jj][:0]
				}
			}
			if got := shards.drainInto(res); got > 0 {
				res.Subrounds = subround
				recoveredThisRound += got
			}
		}
		if recoveredThisRound > 0 {
			res.Rounds = round
		}
		if !anyCandidates {
			break
		}
	}
	res.Complete = t.empty()
	return res, nil
}
