package iblt

import (
	"fmt"
	"testing"

	"repro/internal/parallel"
)

// TestDecodeWithPoolMatchesSerial checks both pool-threaded decoders
// against the serial decoder on shared and failing loads: same recovered
// set (peeling is confluent), same completeness.
func TestDecodeWithPoolMatchesSerial(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	for _, load := range []float64{0.5, 0.75, 0.9} {
		cells := 6000
		keys := randomKeys(int(load*float64(cells)), uint64(100+int(load*100)))
		master := New(cells, 3, 77)
		master.InsertAllWithPool(keys, pool)

		addedS, _, okS := master.Clone().Decode()
		full := master.Clone().DecodeParallelWithPool(pool)
		frontier := master.Clone().DecodeParallelFrontierWithPool(pool)

		if full.Complete != okS || frontier.Complete != okS {
			t.Errorf("load %v: complete serial=%v full=%v frontier=%v",
				load, okS, full.Complete, frontier.Complete)
		}
		if !equalSets(full.Added, addedS) {
			t.Errorf("load %v: DecodeParallelWithPool recovered %d keys, serial %d",
				load, len(full.Added), len(addedS))
		}
		if !equalSets(frontier.Added, addedS) {
			t.Errorf("load %v: DecodeParallelFrontierWithPool recovered %d keys, serial %d",
				load, len(frontier.Added), len(addedS))
		}
	}
}

// TestConcurrentDecodesSharedPool is the multi-tenant contract test: J
// concurrent decode jobs on ONE shared pool, each with its own table,
// must all recover their exact key sets. Run under -race this validates
// that the per-job recovery shards (indexed by pool worker IDs) never
// leak between jobs even though every job sees the full worker-ID range.
func TestConcurrentDecodesSharedPool(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	group := pool.NewGroup(0)
	const jobs = 8
	for j := 0; j < jobs; j++ {
		group.Go(func(p *parallel.Pool) error {
			keys := randomKeys(2000+100*j, uint64(1000+j))
			table := New(2*len(keys)+len(keys)/2, 3, uint64(50+j))
			table.InsertAllWithPool(keys, p)
			var res *ParallelResult
			if j%2 == 0 {
				res = table.DecodeParallelWithPool(p)
			} else {
				res = table.DecodeParallelFrontierWithPool(p)
			}
			if !res.Complete {
				return fmt.Errorf("job %d: decode incomplete", j)
			}
			if !equalSets(res.Added, keys) {
				return fmt.Errorf("job %d: recovered %d keys, want %d", j, len(res.Added), len(keys))
			}
			return nil
		})
	}
	if err := group.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestReconcileWithPool runs the full protocol on an explicit pool and
// checks it returns the same difference sets as the default-pool path.
func TestReconcileWithPool(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	common := randomKeys(5000, 60)
	onlyA := randomKeys(120, 61)
	onlyB := randomKeys(110, 62)
	a := append(append([]uint64(nil), common...), onlyA...)
	b := append(append([]uint64(nil), common...), onlyB...)
	gotA, gotB, wire, err := ReconcileWithPool(a, b, 7, 1.5, pool)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(gotA, onlyA) || !equalSets(gotB, onlyB) {
		t.Errorf("reconciliation wrong: %d/%d local, %d/%d remote",
			len(gotA), len(onlyA), len(gotB), len(onlyB))
	}
	if wire <= 0 {
		t.Errorf("wire bytes %d", wire)
	}
}

// BenchmarkConcurrentDecode measures aggregate decode throughput of J
// concurrent tail-heavy jobs (small tables at load 0.75, where the
// O(log log n) subround tail is dispatch-dominated) under the two
// serving topologies the multi-tenant acceptance criterion compares:
// one shared pool of W workers vs J isolated pools of max(1, W/J)
// workers each (fixed total cores).
func BenchmarkConcurrentDecode(b *testing.B) {
	workers := parallel.Workers()
	if workers < 4 {
		workers = 4
	}
	const cells = 4096
	keys := randomKeys(int(0.75*float64(cells)), 9)
	master := New(cells, 3, 13)
	master.InsertAll(keys)
	keysPerOp := float64(len(keys))

	decodeJob := func(p *parallel.Pool, reps int) error {
		for i := 0; i < reps; i++ {
			if res := master.Clone().DecodeParallelFrontierWithPool(p); !res.Complete {
				return fmt.Errorf("decode failed")
			}
		}
		return nil
	}

	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("SharedPool/jobs=%d", jobs), func(b *testing.B) {
			pool := parallel.NewPool(workers)
			defer pool.Close()
			b.ResetTimer()
			group := pool.NewGroup(0)
			for j := 0; j < jobs; j++ {
				group.Go(func(p *parallel.Pool) error { return decodeJob(p, b.N/jobs+1) })
			}
			if err := group.Wait(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(keysPerOp, "keys/op")
		})
		b.Run(fmt.Sprintf("IsolatedPools/jobs=%d", jobs), func(b *testing.B) {
			per := workers / jobs
			if per < 1 {
				per = 1
			}
			pools := make([]*parallel.Pool, jobs)
			for j := range pools {
				pools[j] = parallel.NewPool(per)
				defer pools[j].Close()
			}
			b.ResetTimer()
			done := make(chan error, jobs)
			for j := 0; j < jobs; j++ {
				go func() { done <- decodeJob(pools[j], b.N/jobs+1) }()
			}
			for j := 0; j < jobs; j++ {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(keysPerOp, "keys/op")
		})
	}
}
