package iblt

// GetResult is the outcome of a point lookup. IBLTs are probabilistic:
// a lookup either resolves definitively from one of the key's cells or
// remains Unknown (the "listing-only" regime).
type GetResult int

const (
	// Unknown: every cell of the key was shared with other keys, so the
	// lookup could not be resolved without decoding.
	Unknown GetResult = iota
	// Present: some cell pins the key as stored (positive side).
	Present
	// Absent: some cell proves the key is not stored.
	Absent
	// Deleted: some cell pins the key on the negative side (deleted more
	// often than inserted, or on the remote side of a Subtract).
	Deleted
)

// String implements fmt.Stringer.
func (g GetResult) String() string {
	switch g {
	case Present:
		return "present"
	case Absent:
		return "absent"
	case Deleted:
		return "deleted"
	default:
		return "unknown"
	}
}

// Get looks up key x without modifying the table, following the
// Goodrich-Mitzenmacher Get semantics: an empty cell among x's r cells
// proves absence; a pure cell resolves to Present/Deleted if it holds x
// and Absent if it holds some other key; otherwise the result is Unknown.
func (t *Table) Get(x uint64) GetResult {
	t.checkKey(x)
	for j := 0; j < t.r; j++ {
		i := t.cellIndex(x, j)
		if t.count[i] == 0 && t.keySum[i] == 0 && t.checkSum[i] == 0 {
			return Absent
		}
		if key, sign, ok := t.pure(i); ok {
			switch {
			case key != x:
				return Absent // x would have to share this pure cell
			case sign > 0:
				return Present
			default:
				return Deleted
			}
		}
	}
	return Unknown
}

// ListEntries returns the decodable contents without destroying the
// table (it decodes a clone). ok reports whether the listing is complete.
func (t *Table) ListEntries() (added, removed []uint64, ok bool) {
	return t.Clone().Decode()
}

// NetCount returns the net number of keys in the table: insertions minus
// deletions. It is exact (each key contributes r to the total cell
// count) and O(cells).
func (t *Table) NetCount() int64 {
	var total int64
	for _, c := range t.count {
		total += c
	}
	return total / int64(t.r)
}

// Empty reports whether the table holds nothing (all cells zero).
func (t *Table) Empty() bool { return t.empty() }
