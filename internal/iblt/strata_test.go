package iblt

import (
	"math"
	"testing"
)

func TestStrataEstimateAccuracy(t *testing.T) {
	// Estimates should land within a factor ~2 of the truth across three
	// orders of magnitude of difference size.
	for _, diff := range []int{8, 100, 1000, 10000} {
		common := randomKeys(20000, uint64(50+diff))
		onlyA := randomKeys(diff/2, uint64(51+diff))
		onlyB := randomKeys(diff-diff/2, uint64(52+diff))

		ea := NewStrataEstimator(7)
		ea.InsertAll(common)
		ea.InsertAll(onlyA)
		eb := NewStrataEstimator(7)
		eb.InsertAll(common)
		eb.InsertAll(onlyB)
		ea.Subtract(eb)
		est := ea.Estimate()
		if est < diff/3 || est > diff*3 {
			t.Errorf("true difference %d estimated as %d", diff, est)
		}
	}
}

func TestStrataZeroDifference(t *testing.T) {
	keys := randomKeys(5000, 60)
	ea := NewStrataEstimator(9)
	ea.InsertAll(keys)
	eb := NewStrataEstimator(9)
	eb.InsertAll(keys)
	ea.Subtract(eb)
	if est := ea.Estimate(); est != 0 {
		t.Errorf("identical sets estimated difference %d", est)
	}
}

func TestStrataIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("incompatible strata subtract did not panic")
		}
	}()
	NewStrataEstimator(1).Subtract(NewStrataEstimator(2))
}

func TestStrataSamplingBalance(t *testing.T) {
	// Stratum i should receive ~2^{-(i+1)} of the keys.
	e := NewStrataEstimator(3)
	const n = 1 << 16
	counts := make([]int, strataDepth)
	for _, k := range randomKeys(n, 61) {
		counts[e.stratumOf(k)]++
	}
	for i := 0; i < 6; i++ {
		want := float64(n) / math.Pow(2, float64(i+1))
		got := float64(counts[i])
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Errorf("stratum %d: %v keys, want ~%.0f", i, got, want)
		}
	}
}

func TestReconcileEndToEnd(t *testing.T) {
	for _, diff := range []int{10, 300, 3000} {
		common := randomKeys(30000, uint64(70+diff))
		onlyA := randomKeys(diff/2, uint64(71+diff))
		onlyB := randomKeys(diff-diff/2, uint64(72+diff))
		a := append(append([]uint64(nil), common...), onlyA...)
		b := append(append([]uint64(nil), common...), onlyB...)

		gotA, gotB, wire, err := Reconcile(a, b, 99, 1.5)
		if err != nil {
			t.Fatalf("diff %d: %v", diff, err)
		}
		if !equalSets(gotA, onlyA) || !equalSets(gotB, onlyB) {
			t.Fatalf("diff %d: wrong difference sets (%d/%d vs %d/%d)",
				diff, len(gotA), len(gotB), len(onlyA), len(onlyB))
		}
		if wire <= 0 {
			t.Errorf("diff %d: non-positive wire bytes", diff)
		}
		// The protocol's selling point: bandwidth scales with the
		// difference, not the sets. For diff=300 on 30k-key sets the
		// whole exchange must be far below shipping either set (240 KB).
		if diff == 300 && wire > 150_000 {
			t.Errorf("diff 300: wire %d bytes, want far below set transfer", wire)
		}
	}
}

func TestReconcileIdenticalSets(t *testing.T) {
	keys := randomKeys(10000, 80)
	a, b, _, err := Reconcile(keys, keys, 5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 0 || len(b) != 0 {
		t.Errorf("identical sets reconciled to %d/%d differences", len(a), len(b))
	}
}

func TestStrataWireRoundTrip(t *testing.T) {
	e := NewStrataEstimator(41)
	e.InsertAll(randomKeys(3000, 90))
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != e.WireSize() {
		t.Errorf("wire size %d != %d", len(data), e.WireSize())
	}
	var back StrataEstimator
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// The reconstructed estimator must behave identically: subtracting
	// the original from it estimates zero difference.
	back.Subtract(e)
	if est := back.Estimate(); est != 0 {
		t.Errorf("round-tripped estimator differs from original: estimate %d", est)
	}
}

func TestStrataWireRejectsCorruption(t *testing.T) {
	e := NewStrataEstimator(42)
	e.Insert(5)
	data, _ := e.MarshalBinary()
	var back StrataEstimator
	if err := back.UnmarshalBinary(data[:5]); err == nil {
		t.Error("short strata payload accepted")
	}
	if err := back.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Error("truncated strata payload accepted")
	}
	if err := back.UnmarshalBinary(append(data, 1, 2, 3)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func BenchmarkStrataInsert(b *testing.B) {
	e := NewStrataEstimator(1)
	keys := randomKeys(1<<12, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Insert(keys[i&(1<<12-1)])
	}
}

func BenchmarkReconcile1000(b *testing.B) {
	common := randomKeys(20000, 1)
	onlyA := randomKeys(500, 2)
	onlyB := randomKeys(500, 3)
	a := append(append([]uint64(nil), common...), onlyA...)
	bb := append(append([]uint64(nil), common...), onlyB...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Reconcile(a, bb, uint64(i), 1.5); err != nil {
			b.Fatal(err)
		}
	}
}
