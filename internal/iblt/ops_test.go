package iblt

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecodeParallelFrontierRoundTrip(t *testing.T) {
	keys := randomKeys(5000, 30)
	table := New(10000, 3, 7)
	table.InsertAll(keys)
	res := table.DecodeParallelFrontier()
	if !res.Complete {
		t.Fatal("frontier decode failed at load 0.5")
	}
	if !equalSets(res.Added, keys) {
		t.Fatal("frontier decoded set differs from inserted set")
	}
}

func TestFrontierMatchesFullScanDecode(t *testing.T) {
	for _, load := range []float64{0.4, 0.75, 0.83, 0.9} {
		cells := 9000
		keys := randomKeys(int(load*float64(cells)), uint64(31+int(100*load)))
		a := New(cells, 3, 77)
		a.InsertAll(keys)
		b := a.Clone()
		fullScan := a.DecodeParallel()
		frontier := b.DecodeParallelFrontier()
		if fullScan.Complete != frontier.Complete {
			t.Errorf("load %v: complete %v vs %v", load, fullScan.Complete, frontier.Complete)
		}
		if !equalSets(fullScan.Added, frontier.Added) {
			t.Errorf("load %v: recovery sets differ (%d vs %d keys)",
				load, len(fullScan.Added), len(frontier.Added))
		}
	}
}

func TestFrontierReconciliation(t *testing.T) {
	common := randomKeys(5000, 32)
	onlyA := randomKeys(120, 33)
	onlyB := randomKeys(130, 34)
	ta := New(1024, 4, 5)
	tb := New(1024, 4, 5)
	ta.InsertAll(common)
	ta.InsertAll(onlyA)
	tb.InsertAll(common)
	tb.InsertAll(onlyB)
	ta.Subtract(tb)
	res := ta.DecodeParallelFrontier()
	if !res.Complete || !equalSets(res.Added, onlyA) || !equalSets(res.Removed, onlyB) {
		t.Fatal("frontier reconciliation failed")
	}
}

func TestFrontierQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		keys := randomKeys(n, seed)
		table := New(n*3+32, 4, seed^0x77)
		table.InsertAll(keys)
		res := table.DecodeParallelFrontier()
		return res.Complete && equalSets(res.Added, keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

func TestGetSemantics(t *testing.T) {
	table := New(3000, 3, 9)
	keys := randomKeys(100, 40) // sparse: most cells pure or empty
	table.InsertAll(keys)

	present, unknown := 0, 0
	for _, k := range keys {
		switch table.Get(k) {
		case Present:
			present++
		case Unknown:
			unknown++
		case Absent, Deleted:
			t.Fatalf("stored key %#x reported absent/deleted", k)
		}
	}
	if present == 0 {
		t.Error("no stored key resolved as Present at load 0.03")
	}

	foreign := randomKeys(200, 41)
	for _, k := range foreign {
		switch table.Get(k) {
		case Present, Deleted:
			t.Fatalf("foreign key %#x reported present", k)
		}
	}

	// Deleted side: delete an absent key.
	table.Delete(foreign[0])
	if got := table.Get(foreign[0]); got != Deleted {
		t.Errorf("deleted-key Get = %v, want deleted", got)
	}
}

func TestGetResultString(t *testing.T) {
	for g, want := range map[GetResult]string{
		Present: "present", Absent: "absent", Deleted: "deleted", Unknown: "unknown",
	} {
		if g.String() != want {
			t.Errorf("String(%d) = %q", g, g.String())
		}
	}
}

func TestListEntriesNonDestructive(t *testing.T) {
	keys := randomKeys(500, 42)
	table := New(2000, 3, 11)
	table.InsertAll(keys)
	added, removed, ok := table.ListEntries()
	if !ok || len(removed) != 0 || !equalSets(added, keys) {
		t.Fatal("ListEntries wrong")
	}
	// Table must be untouched: list again.
	added2, _, ok2 := table.ListEntries()
	if !ok2 || !equalSets(added2, keys) {
		t.Fatal("ListEntries destroyed the table")
	}
}

func TestNetCount(t *testing.T) {
	table := New(1000, 3, 13)
	if table.NetCount() != 0 || !table.Empty() {
		t.Fatal("fresh table not empty")
	}
	keys := randomKeys(77, 43)
	table.InsertAll(keys)
	if got := table.NetCount(); got != 77 {
		t.Errorf("NetCount = %d, want 77", got)
	}
	table.DeleteAll(keys[:30])
	if got := table.NetCount(); got != 47 {
		t.Errorf("NetCount after deletes = %d, want 47", got)
	}
	if table.Empty() {
		t.Error("non-empty table reported Empty")
	}
}

func TestWireRoundTrip(t *testing.T) {
	keys := randomKeys(800, 44)
	table := New(2048, 4, 99)
	table.InsertAll(keys)
	data, err := table.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != table.WireSize() {
		t.Errorf("wire size %d != %d", len(data), table.WireSize())
	}
	var back Table
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	added, removed, ok := back.Decode()
	if !ok || len(removed) != 0 || !equalSets(added, keys) {
		t.Fatal("unmarshaled table decodes wrong")
	}
}

func TestWireReconciliationAcrossTheWire(t *testing.T) {
	// The real protocol: A serializes, B deserializes and subtracts its
	// own table, decodes the difference.
	common := randomKeys(8000, 45)
	onlyA := randomKeys(90, 46)
	onlyB := randomKeys(80, 47)
	ta := New(1024, 3, 1234)
	ta.InsertAll(common)
	ta.InsertAll(onlyA)

	wire, err := ta.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	tb := New(1024, 3, 1234)
	tb.InsertAll(common)
	tb.InsertAll(onlyB)

	var fromA Table
	if err := fromA.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}
	fromA.Subtract(tb)
	added, removed, ok := fromA.Decode()
	if !ok || !equalSets(added, onlyA) || !equalSets(removed, onlyB) {
		t.Fatal("wire reconciliation failed")
	}
}

func TestWireRejectsCorruption(t *testing.T) {
	table := New(256, 3, 1)
	table.Insert(42)
	data, _ := table.MarshalBinary()

	cases := map[string][]byte{
		"short":     data[:10],
		"bad magic": append([]byte("XBLT"), data[4:]...),
		"bad ver":   append(append([]byte{}, data[:4]...), append([]byte{9, 9}, data[6:]...)...),
		"truncated": data[:len(data)-8],
	}
	for name, payload := range cases {
		var tbl Table
		if err := tbl.UnmarshalBinary(payload); !errors.Is(err, ErrBadWireFormat) {
			t.Errorf("%s: err = %v, want ErrBadWireFormat", name, err)
		}
	}
}

func TestWireDeterministic(t *testing.T) {
	a := New(512, 3, 7)
	b := New(512, 3, 7)
	for _, k := range randomKeys(100, 48) {
		a.Insert(k)
		b.Insert(k)
	}
	da, _ := a.MarshalBinary()
	db, _ := b.MarshalBinary()
	if !bytes.Equal(da, db) {
		t.Error("identical tables serialize differently")
	}
}

func BenchmarkDecodeParallelFrontier(b *testing.B) {
	keys := randomKeys(3<<12, 1)
	master := New(1<<14, 3, 1)
	master.InsertAll(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		table := master.Clone()
		b.StartTimer()
		if res := table.DecodeParallelFrontier(); !res.Complete {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkMarshalBinary(b *testing.B) {
	table := New(1<<14, 3, 1)
	table.InsertAll(randomKeys(1<<12, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := table.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}
