package iblt

import (
	"encoding/binary"
	"errors"
	"testing"
)

// TestWireRejectsAdversarialGeometry covers the header-validation order
// bug: subSize is attacker-controlled and was multiplied into a length
// check before being bounded by the payload, so a huge value could
// overflow the arithmetic or drive a giant allocation in New. Every
// hostile header must come back as ErrBadWireFormat without allocating
// table-sized memory.
func TestWireRejectsAdversarialGeometry(t *testing.T) {
	valid := func() []byte {
		table := New(96, 3, 5)
		table.Insert(7)
		data, err := table.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	cases := map[string]func([]byte) []byte{
		"subSize 2^62 (overflows n*cellSize)": func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[8:], 1<<62)
			return d
		},
		"subSize 2^63 (negative as int)": func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[8:], 1<<63)
			return d
		},
		"subSize max uint64": func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[8:], ^uint64(0))
			return d
		},
		// headerSize+n*cellSize wraps around int64 to a small positive
		// value: subSize chosen so subSize*r*cellSize ≈ 2^64 + small.
		"subSize tuned to wrap length check": func(d []byte) []byte {
			r := uint64(binary.LittleEndian.Uint16(d[6:]))
			binary.LittleEndian.PutUint64(d[8:], (1<<64-1)/(r*cellSize)+1)
			return d
		},
		"subSize one cell too many": func(d []byte) []byte {
			cur := binary.LittleEndian.Uint64(d[8:])
			binary.LittleEndian.PutUint64(d[8:], cur+1)
			return d
		},
		"subSize zero": func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[8:], 0)
			return d
		},
		"r zero": func(d []byte) []byte {
			binary.LittleEndian.PutUint16(d[6:], 0)
			return d
		},
		"r nine": func(d []byte) []byte {
			binary.LittleEndian.PutUint16(d[6:], 9)
			return d
		},
	}
	for name, corrupt := range cases {
		var tbl Table
		if err := tbl.UnmarshalBinary(corrupt(valid())); !errors.Is(err, ErrBadWireFormat) {
			t.Errorf("%s: err = %v, want ErrBadWireFormat", name, err)
		}
	}
}

// FuzzUnmarshalBinary throws arbitrary payloads at the parser: it must
// either reject with an error or produce a table whose geometry matches
// the payload it was parsed from — never panic, never allocate beyond
// the payload's implied size.
func FuzzUnmarshalBinary(f *testing.F) {
	table := New(96, 3, 5)
	table.Insert(42)
	table.Insert(99)
	seedData, _ := table.MarshalBinary()
	f.Add(seedData)
	f.Add([]byte{})
	f.Add([]byte("IBLT"))
	short := append([]byte(nil), seedData[:headerSize]...)
	f.Add(short)
	huge := append([]byte(nil), seedData...)
	binary.LittleEndian.PutUint64(huge[8:], 1<<62)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var tbl Table
		if err := tbl.UnmarshalBinary(data); err != nil {
			if !errors.Is(err, ErrBadWireFormat) {
				t.Fatalf("non-wire error: %v", err)
			}
			return
		}
		// Accepted: the geometry must be exactly what the payload holds.
		if got, want := tbl.WireSize(), len(data); got != want {
			t.Fatalf("accepted payload of %d bytes but WireSize() = %d", want, got)
		}
		if tbl.R() < 2 || tbl.R() > 8 {
			t.Fatalf("accepted r = %d outside [2, 8]", tbl.R())
		}
		// A valid table must round-trip.
		back, err := tbl.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(data) {
			t.Fatalf("round-trip size %d != %d", len(back), len(data))
		}
	})
}
