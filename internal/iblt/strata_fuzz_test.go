package iblt

import (
	"encoding/binary"
	"errors"
	"testing"
)

// TestStrataWireRejectsNonCanonicalStrata covers the Subtract-panic
// hardening: a stratum whose header re-declares a different geometry or
// seed (same wire size, so the framing checks pass) must be rejected at
// parse time — accepted, it would panic inside Subtract against any
// honest estimator, a crash an attacker could trigger with one datagram.
func TestStrataWireRejectsNonCanonicalStrata(t *testing.T) {
	e := NewStrataEstimator(7)
	e.InsertAll([]uint64{1, 2, 3, 4, 5})
	valid, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	stratumSize := e.strata[0].WireSize()

	cases := map[string]func([]byte) []byte{
		// First stratum's table header starts at offset 8. Its layout:
		// magic(4) version(2) r(2) subSize(8) seed(8).
		"stratum seed flipped": func(d []byte) []byte {
			d[8+16] ^= 0xff
			return d
		},
		"stratum geometry reshaped same wire size": func(d []byte) []byte {
			// The canonical stratum has r=3; re-declare r' = 1 with
			// subSize' = 3*subSize: same cell count, same wire size,
			// different shape. (r=1 is also outside [2,8], so the table
			// parser itself rejects it — use r'=2 only if divisible.)
			r := int(binary.LittleEndian.Uint16(d[8+6:]))
			sub := int(binary.LittleEndian.Uint64(d[8+8:]))
			n := r * sub
			if n%2 != 0 {
				t.Skip("canonical cell count not divisible by 2")
			}
			binary.LittleEndian.PutUint16(d[8+6:], 2)
			binary.LittleEndian.PutUint64(d[8+8:], uint64(n/2))
			return d
		},
		"second stratum seed flipped": func(d []byte) []byte {
			d[8+stratumSize+16] ^= 0xff
			return d
		},
		"trailing byte": func(d []byte) []byte {
			return append(d, 0)
		},
		"truncated last stratum": func(d []byte) []byte {
			return d[:len(d)-1]
		},
	}
	for name, corrupt := range cases {
		var got StrataEstimator
		data := corrupt(append([]byte(nil), valid...))
		if err := got.UnmarshalBinary(data); !errors.Is(err, ErrBadWireFormat) {
			t.Errorf("%s: err = %v, want ErrBadWireFormat", name, err)
		}
	}
}

// FuzzStrataUnmarshal mirrors FuzzUnmarshalBinary for the strata wire
// format, which now arrives off the network: arbitrary payloads must be
// rejected with ErrBadWireFormat or produce a canonical estimator that
// round-trips byte-identically and is safe to Subtract against an
// honest estimator of the same seed — never a panic, never an
// estimator that detonates later.
func FuzzStrataUnmarshal(f *testing.F) {
	e := NewStrataEstimator(42)
	e.InsertAll([]uint64{10, 20, 30})
	seedData, _ := e.MarshalBinary()
	f.Add(seedData)
	f.Add([]byte{})
	f.Add(seedData[:8])
	f.Add(seedData[:len(seedData)-3])
	flipped := append([]byte(nil), seedData...)
	flipped[8+16] ^= 0xff // first stratum's seed
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		var got StrataEstimator
		if err := got.UnmarshalBinary(data); err != nil {
			if !errors.Is(err, ErrBadWireFormat) {
				t.Fatalf("non-wire error: %v", err)
			}
			return
		}
		// Accepted: the payload must be exactly one canonical estimator.
		if got.WireSize() != len(data) {
			t.Fatalf("accepted %d bytes but WireSize() = %d", len(data), got.WireSize())
		}
		back, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(back) != string(data) {
			t.Fatal("accepted payload does not round-trip byte-identically")
		}
		// Canonical geometry means Subtract against an honest estimator
		// of the same seed must not panic.
		got.Subtract(NewStrataEstimator(got.Seed()))
		_ = got.Estimate()
	})
}
