// Package iblt implements Invertible Bloom Lookup Tables (Goodrich &
// Mitzenmacher), the data structure whose recovery procedure motivates the
// parallel peeling analysis of Jiang, Mitzenmacher, and Thaler (SPAA 2014,
// Section 6).
//
// A table consists of r equal subtables; inserting a key XORs it (and a
// checksum) into one hashed cell per subtable and increments the cell
// counts. The table thereby defines a random r-uniform partitioned
// hypergraph: cells are vertices, keys are edges, and recovery — repeatedly
// extracting "pure" cells that hold exactly one key — is precisely peeling
// to the 2-core. Recovery succeeds in full iff the 2-core is empty, which
// holds w.h.p. while load = keys/cells stays below c*(2,r) (≈ 0.818 for
// r = 3, ≈ 0.772 for r = 4).
//
// Two recovery procedures are provided, mirroring the paper's serial CPU
// and parallel GPU implementations:
//
//   - Decode: queue-driven serial peeling, O(cells + keys·r).
//   - DecodeParallel: round-based peeling that iterates the r subtables
//     serially within a round and scans each subtable's cells in parallel,
//     deleting recovered keys from the other subtables with atomic
//     XOR/add updates. Because a key occupies exactly one cell per
//     subtable, no key can be recovered twice in one subround — the
//     paper's reason for the subtable layout (Appendix B analyzes this
//     variant's subround complexity).
//
// Subtract turns two tables into a difference table whose decode returns
// the symmetric difference of the encoded sets (set reconciliation,
// Eppstein et al.): keys only in this table come back with count +1, keys
// only in the other with count −1.
package iblt

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// cell fields are kept in separate arrays (structure-of-arrays) so the
// parallel scan streams each field and atomic updates touch independent
// cache words.
type Table struct {
	r       int
	subSize int
	seed    uint64
	hseed   []uint64 // one hash seed per subtable
	cseed   uint64   // checksum seed

	count    []int64
	keySum   []uint64
	checkSum []uint64
}

// New returns an empty table with r subtables and at least cells cells in
// total (rounded up to a multiple of r). r must be in [2, 8] and cells
// positive; New panics otherwise. Two tables built with the same
// (cells, r, seed) are compatible for Subtract.
func New(cells, r int, seed uint64) *Table {
	if r < 2 || r > 8 {
		panic(fmt.Sprintf("iblt: r = %d outside [2, 8]", r))
	}
	if cells <= 0 {
		panic("iblt: non-positive cell count")
	}
	subSize := (cells + r - 1) / r
	t := &Table{
		r:        r,
		subSize:  subSize,
		seed:     seed,
		hseed:    make([]uint64, r),
		cseed:    rng.Mix64(seed ^ 0xc3a5c85c97cb3127),
		count:    make([]int64, subSize*r),
		keySum:   make([]uint64, subSize*r),
		checkSum: make([]uint64, subSize*r),
	}
	for j := 0; j < r; j++ {
		t.hseed[j] = rng.Mix64(seed + uint64(j)*0x9e3779b97f4a7c15)
	}
	return t
}

// Cells returns the total number of cells (r × subtable size).
func (t *Table) Cells() int { return t.subSize * t.r }

// R returns the number of subtables (hash functions).
func (t *Table) R() int { return t.r }

// Load returns the hypergraph edge density corresponding to holding keys
// keys: keys / Cells().
func (t *Table) Load(keys int) float64 { return float64(keys) / float64(t.Cells()) }

// cellIndex returns the cell of key x in subtable j, using multiply-shift
// range reduction of the top hash bits (no modulo bias for subtable sizes
// far below 2^32, which covers the paper's 2^24-cell tables).
func (t *Table) cellIndex(x uint64, j int) int {
	h := rng.Mix64(x ^ t.hseed[j])
	return j*t.subSize + int((h>>32)*uint64(t.subSize)>>32)
}

// checksum returns the per-key checksum mixed with an independent seed.
func (t *Table) checksum(x uint64) uint64 { return rng.Mix64(x ^ t.cseed) }

// checkKey panics if x is the zero key, which XOR accounting cannot
// represent.
func (t *Table) checkKey(x uint64) {
	if x == 0 {
		panic("iblt: zero key is not representable (XOR identity)")
	}
}

// Insert adds key x to the table. Keys must be nonzero and distinct; a key
// inserted twice is unrecoverable (its cells never become pure), exactly
// like a duplicated hyperedge in the peeling analysis.
func (t *Table) Insert(x uint64) { t.checkKey(x); t.apply(x, 1) }

// Delete removes key x (inserting and deleting are symmetric XOR
// operations, so deleting an absent key records a negative-count entry,
// which Subtract/set-reconciliation decoding relies on).
func (t *Table) Delete(x uint64) { t.checkKey(x); t.apply(x, -1) }

func (t *Table) apply(x uint64, delta int64) {
	cs := t.checksum(x)
	for j := 0; j < t.r; j++ {
		i := t.cellIndex(x, j)
		t.count[i] += delta
		t.keySum[i] ^= x
		t.checkSum[i] ^= cs
	}
}

// InsertAll inserts keys in parallel on the process-wide default pool,
// using atomic cell updates (the goroutine analog of the paper's
// one-CUDA-thread-per-item insertion phase with atomic XOR).
func (t *Table) InsertAll(keys []uint64) { t.applyAll(keys, 1, parallel.Default()) }

// InsertAllWithPool is InsertAll on an explicit worker pool.
func (t *Table) InsertAllWithPool(keys []uint64, pool *parallel.Pool) {
	t.applyAll(keys, 1, pool)
}

// DeleteAll deletes keys in parallel on the process-wide default pool.
func (t *Table) DeleteAll(keys []uint64) { t.applyAll(keys, -1, parallel.Default()) }

// DeleteAllWithPool is DeleteAll on an explicit worker pool.
func (t *Table) DeleteAllWithPool(keys []uint64, pool *parallel.Pool) {
	t.applyAll(keys, -1, pool)
}

func (t *Table) applyAll(keys []uint64, delta int64, pool *parallel.Pool) {
	pool.For(len(keys), 1024, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			t.checkKey(keys[i])
			t.applyAtomic(keys[i], delta)
		}
	})
}

// applyAtomic adds (delta = +1) or removes (delta = -1) key x using
// atomic cell updates — the single-key concurrent insert primitive
// shared by the bulk ...All paths and the strata estimator's parallel
// inserts. Safe to call concurrently for any mix of keys and tables.
func (t *Table) applyAtomic(x uint64, delta int64) {
	cs := t.checksum(x)
	for j := 0; j < t.r; j++ {
		c := t.cellIndex(x, j)
		atomic.AddInt64(&t.count[c], delta)
		parallel.XorUint64(&t.keySum[c], x)
		parallel.XorUint64(&t.checkSum[c], cs)
	}
}

// InsertAllCtx is InsertAllWithPool with cooperative cancellation
// (checked between batch chunks). On a non-nil return the table holds an
// unspecified subset of keys and must be discarded — cancellation
// abandons the request, not just the insert pass.
func (t *Table) InsertAllCtx(ctx context.Context, keys []uint64, pool *parallel.Pool) error {
	return pool.ForCtx(ctx, len(keys), 1024, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			t.checkKey(keys[i])
			t.applyAtomic(keys[i], 1)
		}
	})
}

// Clone returns a deep copy (decoding is destructive; clone first to keep
// the original).
func (t *Table) Clone() *Table {
	c := &Table{
		r: t.r, subSize: t.subSize, seed: t.seed, cseed: t.cseed,
		hseed:    append([]uint64(nil), t.hseed...),
		count:    append([]int64(nil), t.count...),
		keySum:   append([]uint64(nil), t.keySum...),
		checkSum: append([]uint64(nil), t.checkSum...),
	}
	return c
}

// Subtract replaces t with the cell-wise difference t − other. The two
// tables must share geometry and seed; Subtract panics if they do not.
// After subtraction, decoding yields the symmetric difference of the two
// encoded sets.
func (t *Table) Subtract(other *Table) {
	if t.r != other.r || t.subSize != other.subSize || t.seed != other.seed {
		panic("iblt: subtracting incompatible tables")
	}
	for i := range t.count {
		t.count[i] -= other.count[i]
		t.keySum[i] ^= other.keySum[i]
		t.checkSum[i] ^= other.checkSum[i]
	}
}

// pure reports whether cell i holds exactly one key, and returns that key
// and its sign (+1: surplus/inserted side, −1: deficit/deleted side).
func (t *Table) pure(i int) (x uint64, sign int64, ok bool) {
	c := t.count[i]
	if c != 1 && c != -1 {
		return 0, 0, false
	}
	x = t.keySum[i]
	if x == 0 || t.checksum(x) != t.checkSum[i] {
		return 0, 0, false
	}
	return x, c, true
}

// Decode peels the table serially. It returns the keys recovered with
// positive sign (added) and negative sign (removed), and ok = true iff
// the table decoded completely (all cells empty afterwards). Decoding is
// destructive; Clone first if the table is still needed. Partial results
// are returned even when ok = false — the recovered-percentage column of
// the paper's Tables 3-4 is len(added)/keys on failing loads.
func (t *Table) Decode() (added, removed []uint64, ok bool) {
	queue := make([]int, 0, 256)
	for i := range t.count {
		if _, _, isPure := t.pure(i); isPure {
			queue = append(queue, i)
		}
	}
	for head := 0; head < len(queue); head++ {
		i := queue[head]
		x, sign, isPure := t.pure(i)
		if !isPure {
			continue // became impure since enqueued (already drained)
		}
		if sign > 0 {
			added = append(added, x)
		} else {
			removed = append(removed, x)
		}
		cs := t.checksum(x)
		for j := 0; j < t.r; j++ {
			c := t.cellIndex(x, j)
			t.count[c] -= sign
			t.keySum[c] ^= x
			t.checkSum[c] ^= cs
			if _, _, p := t.pure(c); p {
				queue = append(queue, c)
			}
		}
	}
	return added, removed, t.empty()
}

// empty reports whether every cell is zeroed.
func (t *Table) empty() bool {
	for i := range t.count {
		if t.count[i] != 0 || t.keySum[i] != 0 || t.checkSum[i] != 0 {
			return false
		}
	}
	return true
}

// ParallelResult reports a DecodeParallel run.
type ParallelResult struct {
	Added     []uint64
	Removed   []uint64
	Rounds    int  // full rounds executed that recovered at least one key
	Subrounds int  // productive subrounds (last subround that recovered a key)
	Complete  bool // table fully decoded
}

// DecodeParallel peels the table with the paper's GPU recovery algorithm
// on the process-wide default pool; see DecodeParallelWithPool.
func (t *Table) DecodeParallel() *ParallelResult {
	return t.DecodeParallelWithPool(parallel.Default())
}

// recoveryShards holds the per-worker result buffers one decode job owns
// and reuses across subrounds: worker w appends recovered keys only to
// index w (the pool serializes same-ID chunks within a call), and the
// subround barrier drains every shard — no mutex in the scan, and no
// allocation after the first subround. The buffers belong to the decode
// call, so concurrent decode jobs sharing one pool never collide.
type recoveryShards struct {
	added   [][]uint64
	removed [][]uint64
}

func newRecoveryShards(workers int) *recoveryShards {
	return &recoveryShards{
		added:   make([][]uint64, workers),
		removed: make([][]uint64, workers),
	}
}

// drainInto appends every shard to the result, returning the number of
// keys recovered since the last drain, and resets the shards (keeping
// capacity).
func (s *recoveryShards) drainInto(res *ParallelResult) int {
	got := 0
	for w := range s.added {
		got += len(s.added[w]) + len(s.removed[w])
		res.Added = append(res.Added, s.added[w]...)
		res.Removed = append(res.Removed, s.removed[w]...)
		s.added[w] = s.added[w][:0]
		s.removed[w] = s.removed[w][:0]
	}
	return got
}

// DecodeParallelWithPool peels the table with the paper's GPU recovery
// algorithm on an explicit worker pool: rounds of r serial subrounds,
// each subround scanning one subtable's cells in parallel and deleting
// recovered keys from all subtables with atomic updates. Within a
// subround each key occupies exactly one cell of the scanned subtable,
// so it can be recovered at most once; concurrent deletions into the
// same cell are serialized by the atomics, and a cell whose fields are
// read while racing a deletion fails its checksum and is simply retried
// in the next round (the per-round progress guarantee makes that retry
// sound: a raced deletion implies the round recovered something, so
// another round follows).
//
// All working state is owned by this call, so many decodes may run
// concurrently on one shared pool (e.g. as parallel.Group jobs).
func (t *Table) DecodeParallelWithPool(pool *parallel.Pool) *ParallelResult {
	res, _ := t.DecodeParallelCtx(context.Background(), pool)
	return res
}

// DecodeParallelCtx is DecodeParallelWithPool with cooperative
// cancellation, checked at every subround barrier (the same barrier the
// paper's round analysis counts, so a canceled decode does less than one
// subround of extra work). On cancellation it returns (nil, ctx.Err());
// the partially decoded table must be discarded.
func (t *Table) DecodeParallelCtx(ctx context.Context, pool *parallel.Pool) (*ParallelResult, error) {
	res := &ParallelResult{}
	shards := newRecoveryShards(pool.Workers())
	subround := 0
	for round := 1; ; round++ {
		recoveredThisRound := 0
		for j := 0; j < t.r; j++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			subround++
			base := j * t.subSize
			pool.For(t.subSize, 1024, func(w, lo, hi int) {
				added, removed := shards.added[w], shards.removed[w]
				for ci := lo; ci < hi; ci++ {
					i := base + ci
					x, sign, isPure := t.pureAtomic(i)
					if !isPure {
						continue
					}
					// Delete x from every subtable (including this cell).
					cs := t.checksum(x)
					for jj := 0; jj < t.r; jj++ {
						c := t.cellIndex(x, jj)
						atomic.AddInt64(&t.count[c], -sign)
						parallel.XorUint64(&t.keySum[c], x)
						parallel.XorUint64(&t.checkSum[c], cs)
					}
					if sign > 0 {
						added = append(added, x)
					} else {
						removed = append(removed, x)
					}
				}
				shards.added[w], shards.removed[w] = added, removed
			})
			if got := shards.drainInto(res); got > 0 {
				res.Subrounds = subround
				recoveredThisRound += got
			}
		}
		if recoveredThisRound == 0 {
			break
		}
		res.Rounds = round
	}
	res.Complete = t.empty()
	return res, nil
}

// pureAtomic is the atomic-read variant of pure used by DecodeParallel.
// A torn read across the three fields can only produce a checksum
// mismatch (the checksum is an independent 64-bit hash), never a bogus
// recovery.
func (t *Table) pureAtomic(i int) (x uint64, sign int64, ok bool) {
	c := atomic.LoadInt64(&t.count[i])
	if c != 1 && c != -1 {
		return 0, 0, false
	}
	x = atomic.LoadUint64(&t.keySum[i])
	if x == 0 || t.checksum(x) != atomic.LoadUint64(&t.checkSum[i]) {
		return 0, 0, false
	}
	return x, c, true
}
