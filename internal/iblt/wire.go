package iblt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format: the whole point of IBLT-based set reconciliation is that a
// table crosses the network, so tables serialize to a compact
// little-endian layout:
//
//	magic "IBLT"  (4 bytes)
//	version       (uint16)
//	r             (uint16)
//	subSize       (uint64)
//	seed          (uint64)
//	cells         (r·subSize × 24 bytes: count int64, keySum, checkSum)
//
// The seed travels with the table so the receiver can verify
// compatibility before Subtract.

const (
	wireMagic   = "IBLT"
	wireVersion = 1
	headerSize  = 4 + 2 + 2 + 8 + 8
	cellSize    = 24
)

// ErrBadWireFormat is returned by UnmarshalBinary for corrupt or
// incompatible payloads.
var ErrBadWireFormat = errors.New("iblt: bad wire format")

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Table) MarshalBinary() ([]byte, error) {
	n := t.subSize * t.r
	buf := make([]byte, headerSize+n*cellSize)
	copy(buf, wireMagic)
	binary.LittleEndian.PutUint16(buf[4:], wireVersion)
	binary.LittleEndian.PutUint16(buf[6:], uint16(t.r))
	binary.LittleEndian.PutUint64(buf[8:], uint64(t.subSize))
	binary.LittleEndian.PutUint64(buf[16:], t.seed)
	off := headerSize
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[off:], uint64(t.count[i]))
		binary.LittleEndian.PutUint64(buf[off+8:], t.keySum[i])
		binary.LittleEndian.PutUint64(buf[off+16:], t.checkSum[i])
		off += cellSize
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, reconstructing
// the table (including its hash seeds) from MarshalBinary output.
func (t *Table) UnmarshalBinary(data []byte) error {
	if len(data) < headerSize || string(data[:4]) != wireMagic {
		return fmt.Errorf("%w: missing header", ErrBadWireFormat)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != wireVersion {
		return fmt.Errorf("%w: version %d", ErrBadWireFormat, v)
	}
	r := int(binary.LittleEndian.Uint16(data[6:]))
	subSize := int(binary.LittleEndian.Uint64(data[8:]))
	seed := binary.LittleEndian.Uint64(data[16:])
	if r < 2 || r > 8 || subSize <= 0 {
		return fmt.Errorf("%w: geometry r=%d subSize=%d", ErrBadWireFormat, r, subSize)
	}
	// subSize is attacker-controlled: bound it by what the payload can
	// actually hold BEFORE any size arithmetic, so headerSize+n*cellSize
	// can neither overflow int nor drive a huge allocation in New.
	if maxSub := (len(data) - headerSize) / (cellSize * r); subSize > maxSub {
		return fmt.Errorf("%w: subSize %d exceeds %d-byte payload", ErrBadWireFormat, subSize, len(data))
	}
	n := subSize * r
	if len(data) != headerSize+n*cellSize {
		return fmt.Errorf("%w: length %d, want %d", ErrBadWireFormat, len(data), headerSize+n*cellSize)
	}
	fresh := New(n, r, seed)
	off := headerSize
	for i := 0; i < n; i++ {
		fresh.count[i] = int64(binary.LittleEndian.Uint64(data[off:]))
		fresh.keySum[i] = binary.LittleEndian.Uint64(data[off+8:])
		fresh.checkSum[i] = binary.LittleEndian.Uint64(data[off+16:])
		off += cellSize
	}
	*t = *fresh
	return nil
}

// WireSize returns the serialized size in bytes — the reconciliation
// bandwidth cost (O(difference), independent of set sizes).
func (t *Table) WireSize() int {
	return headerSize + t.subSize*t.r*cellSize
}
