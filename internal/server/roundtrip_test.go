package server_test

// Black-box round trips: every op driven end-to-end through the
// companion client package against a live server, plus the shedding and
// retry behavior the client is built around.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro"
	"repro/internal/iblt"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/server/client"
)

func startServer(t *testing.T, opts server.Options) (*server.Server, string) {
	t.Helper()
	srv := server.New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		st := srv.Stats()
		if st.RequestsAccepted != st.RepliesSent {
			t.Errorf("reply invariant: accepted %d != replies %d", st.RequestsAccepted, st.RepliesSent)
		}
	})
	return srv, ln.Addr().String()
}

func keysOf(n int, seed uint64) []uint64 {
	gen := rng.New(seed)
	keys := make([]uint64, n)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = gen.Uint64()
		}
	}
	return keys
}

func TestClientRoundTrips(t *testing.T) {
	srv, addr := startServer(t, server.Options{Workers: 2, MaxJobs: 4})
	cl := client.Dial(addr, client.Options{})
	defer cl.Close()
	ctx := context.Background()

	t.Run("reconcile", func(t *testing.T) {
		common := keysOf(4000, 1)
		local := append(append([]uint64(nil), common...), keysOf(35, 2)...)
		remote := append(append([]uint64(nil), common...), keysOf(35, 3)...)
		res, err := cl.Reconcile(ctx, local, remote, 7, 1.5)
		if err != nil {
			t.Fatalf("Reconcile: %v", err)
		}
		if len(res.OnlyLocal) != 35 || len(res.OnlyRemote) != 35 {
			t.Fatalf("difference sides %d/%d, want 35/35", len(res.OnlyLocal), len(res.OnlyRemote))
		}
		if res.Attempts != 1 || res.WireBytes <= 0 || res.Headroom != 1.5 {
			t.Fatalf("meta = %+v, want attempts 1, positive wire bytes, headroom 1.5", res)
		}
	})

	t.Run("decode", func(t *testing.T) {
		keys := keysOf(3000, 4)
		tbl := iblt.New(5000, 3, 99)
		tbl.InsertAll(keys)
		wire, err := tbl.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Decode(ctx, wire)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !res.Complete || len(res.Added) != len(keys) || len(res.Removed) != 0 {
			t.Fatalf("decode complete=%v added=%d removed=%d, want complete with %d added",
				res.Complete, len(res.Added), len(res.Removed), len(keys))
		}
	})

	t.Run("corrupt sketch is a typed reply", func(t *testing.T) {
		if _, err := cl.Decode(ctx, []byte("definitely not an iblt")); !errors.Is(err, server.ErrBadRequest) {
			t.Fatalf("Decode(garbage): %v, want ErrBadRequest", err)
		}
	})

	t.Run("lookup before any generation", func(t *testing.T) {
		_, err := cl.Lookup(ctx, []uint64{1, 2, 3})
		var se *server.Error
		if !errors.As(err, &se) || se.Code != server.CodeUnavailable {
			t.Fatalf("Lookup on empty table: %v, want UNAVAILABLE", err)
		}
	})

	var image []byte
	t.Run("build mphf", func(t *testing.T) {
		keys := keysOf(2000, 5)
		img, err := cl.BuildMPHF(ctx, keys, 11)
		if err != nil {
			t.Fatalf("BuildMPHF: %v", err)
		}
		f, err := repro.OpenMPHF(img)
		if err != nil {
			t.Fatalf("returned image does not open: %v", err)
		}
		seen := make(map[uint64]bool, len(keys))
		for _, k := range keys {
			idx := f.LookupValue(k)
			if idx >= uint64(len(keys)) || seen[idx] {
				t.Fatalf("image is not a minimal perfect hash: key %#x -> %d", k, idx)
			}
			seen[idx] = true
		}
		image = img
	})

	t.Run("swap image rejects corruption", func(t *testing.T) {
		bad := append([]byte(nil), image...)
		bad[len(bad)/2] ^= 0xff
		if _, err := cl.SwapImage(ctx, bad); !errors.Is(err, server.ErrBadRequest) {
			t.Fatalf("SwapImage(corrupt): %v, want ErrBadRequest", err)
		}
		if n, last := srv.Table().SwapRejections(); n != 1 || last == nil {
			t.Fatalf("SwapRejections = %d/%v, want 1 with an error", n, last)
		}
		if gen := srv.Table().Generation(); gen != 0 {
			t.Fatalf("generation %d after rejected swap, want 0", gen)
		}
	})

	t.Run("swap and lookup", func(t *testing.T) {
		gen, err := cl.SwapImage(ctx, image)
		if err != nil {
			t.Fatalf("SwapImage: %v", err)
		}
		if gen != 1 {
			t.Fatalf("generation = %d, want 1", gen)
		}
		keys := keysOf(2000, 5)
		res, err := cl.Lookup(ctx, keys[:16])
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		if res.Generation != 1 || len(res.Values) != 16 {
			t.Fatalf("lookup gen=%d values=%d, want gen 1 with 16 values", res.Generation, len(res.Values))
		}
		f, _ := repro.OpenMPHF(image)
		for i, k := range keys[:16] {
			if res.Values[i] != f.LookupValue(k) {
				t.Fatalf("value[%d] = %d, local image says %d", i, res.Values[i], f.LookupValue(k))
			}
		}
	})

	t.Run("estimate", func(t *testing.T) {
		le := iblt.NewStrataEstimator(77)
		le.InsertAll(keysOf(5000, 8))
		re := iblt.NewStrataEstimator(77)
		re.InsertAll(keysOf(5000, 8)[:4800]) // 200 missing
		lw, _ := le.MarshalBinary()
		rw, _ := re.MarshalBinary()
		est, err := cl.Estimate(ctx, lw, rw)
		if err != nil {
			t.Fatalf("Estimate: %v", err)
		}
		if est < 50 || est > 800 {
			t.Fatalf("estimate %d wildly off for a 200-key difference", est)
		}
		// Mismatched seeds must be a typed reply, not a handler panic.
		other := iblt.NewStrataEstimator(78)
		ow, _ := other.MarshalBinary()
		if _, err := cl.Estimate(ctx, lw, ow); !errors.Is(err, server.ErrBadRequest) {
			t.Fatalf("Estimate(mismatched seeds): %v, want ErrBadRequest", err)
		}
	})
}

// TestShedAndClientBackoff: with the single job slot held, a
// no-retries client sees the typed OVERLOADED reply (with the server's
// retry-after hint), while a retrying client waits out the backoff and
// succeeds once the slot frees — the full shed-and-recover loop.
func TestShedAndClientBackoff(t *testing.T) {
	srv, addr := startServer(t, server.Options{Workers: 2, MaxJobs: 1, RetryAfter: 5 * time.Millisecond})
	ctx := context.Background()

	release := make(chan struct{})
	started := make(chan struct{})
	wait, err := srv.Runtime().Go(ctx, func(ctx context.Context, _ *repro.WorkerPool) error {
		close(started)
		<-release
		return nil
	})
	if err != nil {
		t.Fatalf("occupy: %v", err)
	}
	<-started

	local, remote := keysOf(500, 1), keysOf(500, 2)

	noRetry := client.Dial(addr, client.Options{MaxRetries: -1})
	defer noRetry.Close()
	_, rerr := noRetry.Reconcile(ctx, local, remote, 3, 1.5)
	var se *server.Error
	if !errors.As(rerr, &se) || se.Code != server.CodeOverloaded {
		t.Fatalf("saturated call: %v, want OVERLOADED", rerr)
	}
	if !errors.Is(rerr, server.ErrOverloaded) {
		t.Fatal("typed reply does not match ErrOverloaded sentinel")
	}
	if se.RetryAfter != 5*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want the server's 5ms hint", se.RetryAfter)
	}
	if st := srv.Stats(); st.RequestsShed < 1 || st.Runtime.JobsShed < 1 {
		t.Fatalf("shed not counted: RequestsShed=%d JobsShed=%d", st.RequestsShed, st.Runtime.JobsShed)
	}

	// A retrying client outlives the saturation window.
	retrying := client.Dial(addr, client.Options{MaxRetries: 8, BaseBackoff: 5 * time.Millisecond})
	defer retrying.Close()
	freed := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
		close(freed)
	}()
	res, err := retrying.Reconcile(ctx, local, remote, 3, 1.5)
	if err != nil {
		t.Fatalf("retrying client: %v", err)
	}
	if len(res.OnlyLocal) != 500 || len(res.OnlyRemote) != 500 {
		t.Fatalf("difference sides %d/%d, want 500/500", len(res.OnlyLocal), len(res.OnlyRemote))
	}
	<-freed
	if err := wait(); err != nil {
		t.Fatalf("held job: %v", err)
	}
}

// TestDeadlinePropagation: the client's context deadline rides the wire
// and bounds the server-side work; a request that cannot finish in time
// fails with a deadline error on whichever side notices first.
func TestDeadlinePropagation(t *testing.T) {
	_, addr := startServer(t, server.Options{Workers: 2})
	cl := client.Dial(addr, client.Options{MaxRetries: -1})
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := cl.Reconcile(ctx, keysOf(200_000, 1), keysOf(200_000, 2), 9, 1.5)
	var se *server.Error
	switch {
	case errors.Is(err, context.DeadlineExceeded): // client noticed first
	case errors.As(err, &se) && se.Code == server.CodeDeadlineExceeded: // server replied first
	default:
		t.Fatalf("heavy call under 30ms deadline: %v, want a deadline failure", err)
	}
}
