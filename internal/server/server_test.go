package server

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"testing"
	"time"

	"repro"
	"repro/internal/iblt"
	"repro/internal/rng"
)

// startServer runs a Server on an ephemeral port; the cleanup drains it
// and asserts Serve exited clean and the one-reply-per-request
// invariant held.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	srv := New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, ErrServerClosed) {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		st := srv.Stats()
		if st.RequestsAccepted != st.RepliesSent {
			t.Errorf("reply invariant: accepted %d != replies %d", st.RequestsAccepted, st.RepliesSent)
		}
	})
	return srv, ln.Addr().String()
}

// dialRaw opens a raw protocol connection (preface already sent).
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := nc.Write([]byte(Preface)); err != nil {
		t.Fatalf("preface: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

func testKeys(n int, seed uint64) []uint64 {
	gen := rng.New(seed)
	keys := make([]uint64, n)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = gen.Uint64()
		}
	}
	return keys
}

// expectClosed asserts the server hangs up (EOF / reset) without
// sending anything further.
func expectClosed(t *testing.T, nc net.Conn) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var b [1]byte
	if _, err := nc.Read(b[:]); err == nil {
		t.Fatalf("server kept talking (got byte %#x), want connection close", b[0])
	} else if errors.Is(err, io.EOF) {
		return
	}
	// A reset is also a close; a timeout is a failure.
	if ne, ok := nc.(*net.TCPConn); ok {
		_ = ne
	}
}

// TestMalformedFramesRejectedBeforeWork drives every frame-level
// protocol violation and asserts each kills its connection and is
// counted — and that the oversized length is refused from the 4-byte
// prefix, before the server would allocate the claimed payload.
func TestMalformedFramesRejectedBeforeWork(t *testing.T) {
	srv, addr := startServer(t, Options{Workers: 2, MaxFrame: 1 << 16})

	cases := map[string]func(t *testing.T){
		"bad preface": func(t *testing.T) {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer nc.Close()
			nc.Write([]byte("NOTPEELS"))
			expectClosed(t, nc)
		},
		"length below header": func(t *testing.T) {
			nc := dialRaw(t, addr)
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], 4)
			nc.Write(hdr[:])
			expectClosed(t, nc)
		},
		"oversized length": func(t *testing.T) {
			nc := dialRaw(t, addr)
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], 1<<20) // above MaxFrame: refused unread
			nc.Write(hdr[:])
			expectClosed(t, nc)
		},
		"unknown op": func(t *testing.T) {
			nc := dialRaw(t, addr)
			nc.Write(appendFrame(nil, 0x7f, 1, []byte{0, 0, 0, 0}))
			expectClosed(t, nc)
		},
		"zero request id": func(t *testing.T) {
			nc := dialRaw(t, addr)
			nc.Write(appendFrame(nil, OpLookup, 0, []byte{0, 0, 0, 0}))
			expectClosed(t, nc)
		},
	}
	n := int64(0)
	for name, run := range cases {
		t.Run(name, run)
		n++
		if got := srv.Stats().FramesRejected; got != n {
			t.Fatalf("after %q: FramesRejected = %d, want %d", name, got, n)
		}
	}
	if got := srv.Stats().RequestsAccepted; got != 0 {
		t.Fatalf("RequestsAccepted = %d for pure protocol garbage, want 0", got)
	}
}

// readReply reads frames until a non-GOAWAY one arrives.
func readReply(t *testing.T, nc net.Conn) (byte, uint64, []byte) {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(20 * time.Second))
	for {
		typ, id, payload, err := readFrame(nc, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("read reply: %v", err)
		}
		if typ != TypeGoAway {
			return typ, id, payload
		}
	}
}

// TestRequestDeadlineEnforced: a heavy reconcile under a 1ms wire
// deadline must come back DEADLINE_EXCEEDED — the deadline field became
// the handler's context and the peel aborted at a barrier.
func TestRequestDeadlineEnforced(t *testing.T) {
	_, addr := startServer(t, Options{Workers: 2})
	nc := dialRaw(t, addr)

	local := testKeys(150_000, 1)
	remote := testKeys(150_000, 2)
	req := EncodeReconcileReq(1 /* ms */, 7, 1.5, local, remote)
	if _, err := nc.Write(appendFrame(nil, OpReconcile, 42, req)); err != nil {
		t.Fatalf("write: %v", err)
	}
	typ, id, payload := readReply(t, nc)
	if typ != TypeError || id != 42 {
		t.Fatalf("reply typ=%#x id=%d, want ERROR id=42", typ, id)
	}
	e, err := ParseError(payload)
	if err != nil {
		t.Fatalf("parse error payload: %v", err)
	}
	if e.Code != CodeDeadlineExceeded {
		t.Fatalf("code = %v, want DEADLINE_EXCEEDED", e.Code)
	}
}

// TestShortPayloadGetsTypedReply: a well-framed request whose payload
// cannot even hold the deadline field is an accepted request — it gets
// its one BAD_REQUEST reply, not a dropped connection.
func TestShortPayloadGetsTypedReply(t *testing.T) {
	_, addr := startServer(t, Options{Workers: 1})
	nc := dialRaw(t, addr)
	nc.Write(appendFrame(nil, OpLookup, 9, []byte{1, 2}))
	typ, id, payload := readReply(t, nc)
	if typ != TypeError || id != 9 {
		t.Fatalf("reply typ=%#x id=%d, want ERROR id=9", typ, id)
	}
	e, err := ParseError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeBadRequest {
		t.Fatalf("code = %v, want BAD_REQUEST", e.Code)
	}
}

// TestHostileHeadroomRejected: the reconcile headroom multiplies a
// server-side allocation (the difference table), so values beyond
// iblt.MaxHeadroom must be refused as BAD_REQUEST at parse time — a
// tiny frame asking for headroom 1e9 would otherwise drive a multi-GB
// allocation before any work was admitted.
func TestHostileHeadroomRejected(t *testing.T) {
	_, addr := startServer(t, Options{Workers: 1})
	nc := dialRaw(t, addr)

	for i, h := range []float64{1e9, math.Inf(1), math.Inf(-1), math.NaN(), -1, iblt.MaxHeadroom + 0.5} {
		id := uint64(i + 1)
		req := EncodeReconcileReq(0, 7, h, []uint64{1, 2}, []uint64{2, 3})
		if _, err := nc.Write(appendFrame(nil, OpReconcile, id, req)); err != nil {
			t.Fatalf("write headroom %v: %v", h, err)
		}
		typ, gotID, payload := readReply(t, nc)
		if typ != TypeError || gotID != id {
			t.Fatalf("headroom %v: reply typ=%#x id=%d, want ERROR id=%d", h, typ, gotID, id)
		}
		if e, err := ParseError(payload); err != nil || e.Code != CodeBadRequest {
			t.Fatalf("headroom %v: %v (parse err %v), want BAD_REQUEST", h, e, err)
		}
	}

	// The ceiling itself is a valid request.
	req := EncodeReconcileReq(0, 7, iblt.MaxHeadroom, []uint64{1, 2}, []uint64{2, 3})
	if _, err := nc.Write(appendFrame(nil, OpReconcile, 99, req)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if typ, id, _ := readReply(t, nc); typ != TypeResult || id != 99 {
		t.Fatalf("headroom at the cap: typ=%#x id=%d, want RESULT id=99", typ, id)
	}
}

// TestConnDeathCancelsHandlers: a handler admitted for a connection
// that has since died must be reclaimed — request contexts derive from
// the connection's context, which run cancels on exit — instead of a
// no-deadline job for a vanished client running to completion while
// holding a MaxJobs slot.
func TestConnDeathCancelsHandlers(t *testing.T) {
	srv, addr := startServer(t, Options{Workers: 2, MaxJobs: 1})
	nc := dialRaw(t, addr)

	// Heavy and deadline-free: nothing but cancellation bounds it.
	req := EncodeReconcileReq(0, 7, 1.5, testKeys(400_000, 1), testKeys(400_000, 2))
	if _, err := nc.Write(appendFrame(nil, OpReconcile, 3, req)); err != nil {
		t.Fatalf("write: %v", err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for srv.Stats().RequestsAccepted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never accepted")
		}
		time.Sleep(time.Millisecond)
	}
	var c *conn
	srv.mu.Lock()
	for cc := range srv.conns {
		c = cc
	}
	srv.mu.Unlock()
	if c == nil {
		t.Fatal("no registered conn")
	}

	nc.Close()
	select {
	case <-c.ctx.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("connection context not canceled after the socket died")
	}
	// The abandoned job notices at its next barrier and frees the slot.
	for srv.Runtime().Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("InFlight = %d long after conn death, want 0", srv.Runtime().Stats().InFlight)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrainSendsGoAwayAndAnswersShuttingDown covers the drain contract
// on the wire: an idle connection receives GOAWAY, a request racing the
// drain receives a SHUTTING_DOWN reply (never silence), and Serve
// returns nil.
func TestDrainSendsGoAwayAndAnswersShuttingDown(t *testing.T) {
	srv, addr := startServer(t, Options{Workers: 2, MaxJobs: 2})
	nc := dialRaw(t, addr)

	// Hold the runtime open so Shutdown must actually drain.
	release := make(chan struct{})
	started := make(chan struct{})
	wait, err := srv.Runtime().Go(context.Background(), func(ctx context.Context, _ *repro.WorkerPool) error {
		close(started)
		<-release
		return nil
	})
	if err != nil {
		t.Fatalf("occupy: %v", err)
	}
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// The idle conn gets its GOAWAY while the drain waits on the job.
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, id, _, ferr := readFrame(nc, DefaultMaxFrame)
	if ferr != nil {
		t.Fatalf("reading GOAWAY: %v", ferr)
	}
	if typ != TypeGoAway || id != 0 {
		t.Fatalf("got typ=%#x id=%d, want GOAWAY id=0", typ, id)
	}

	// A request arriving mid-drain is refused with a typed reply.
	nc.Write(appendFrame(nil, OpLookup, 5, EncodeLookupReq(0, []uint64{1})))
	typ, id, payload := readReply(t, nc)
	if typ != TypeError || id != 5 {
		t.Fatalf("mid-drain reply typ=%#x id=%d, want ERROR id=5", typ, id)
	}
	if e, err := ParseError(payload); err != nil || e.Code != CodeShuttingDown {
		t.Fatalf("mid-drain code = %v (parse err %v), want SHUTTING_DOWN", e, err)
	}

	close(release)
	if err := wait(); err != nil {
		t.Fatalf("held job: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := srv.Stats().GoAwaysSent; got < 1 {
		t.Fatalf("GoAwaysSent = %d, want >= 1", got)
	}
	if err := srv.Shutdown(context.Background()); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("second Shutdown: %v, want ErrServerClosed", err)
	}
}
