package server

// Exported request encoders and reply parsers — the surface the
// companion client package (and any other in-tree caller speaking the
// protocol) builds on. They are thin names over the package's internal
// codec, so the client and server can never drift apart on the wire
// format: both sides compile against the same byte layouts.

import (
	"time"

	"repro"
)

// DeadlineMs converts a remaining-time duration into the wire's uint32
// relative-deadline field: milliseconds rounded up, clamped to at least
// 1 for already-expired deadlines (fail fast, not unbounded).
func DeadlineMs(remaining time.Duration) uint32 { return deadlineMs(remaining, true) }

// EncodeReconcileReq builds an OpReconcile request payload.
func EncodeReconcileReq(deadline uint32, seed uint64, headroom float64, local, remote []uint64) []byte {
	return (&reconcileReq{deadline: deadline, seed: seed, headroom: headroom, local: local, remote: remote}).encode()
}

// EncodeDecodeReq builds an OpDecode request payload; sketch is the
// hardened iblt wire format.
func EncodeDecodeReq(deadline uint32, sketch []byte) []byte {
	return (&decodeReq{deadline: deadline, sketch: sketch}).encode()
}

// EncodeBuildReq builds an OpBuildMPHF request payload.
func EncodeBuildReq(deadline uint32, seed uint64, keys []uint64) []byte {
	return (&buildReq{deadline: deadline, seed: seed, keys: keys}).encode()
}

// EncodeLookupReq builds an OpLookup request payload.
func EncodeLookupReq(deadline uint32, keys []uint64) []byte {
	return (&lookupReq{deadline: deadline, keys: keys}).encode()
}

// EncodeSwapReq builds an OpSwapImage request payload; image is a flat
// layout image.
func EncodeSwapReq(deadline uint32, image []byte) []byte {
	return (&swapReq{deadline: deadline, image: image}).encode()
}

// EncodeEstimateReq builds an OpEstimate request payload from two
// marshaled strata estimators.
func EncodeEstimateReq(deadline uint32, localEstimator, remoteEstimator []byte) []byte {
	return (&estimateReq{deadline: deadline, local: localEstimator, remote: remoteEstimator}).encode()
}

// ParseReconcileResult parses an OpReconcile RESULT payload.
func ParseReconcileResult(p []byte) (*ReconcileResult, error) { return parseReconcileResult(p) }

// ParseDecodeResult parses an OpDecode RESULT payload.
func ParseDecodeResult(p []byte) (*DecodeResult, error) { return parseDecodeResult(p) }

// ParseLookupResult parses an OpLookup RESULT payload.
func ParseLookupResult(p []byte) (*LookupResult, error) { return parseLookupResult(p) }

// ParseImagePayload parses a RESULT payload holding one length-prefixed
// byte blob (the OpBuildMPHF reply: a flat MPHF image). The image is
// re-based to 8-byte alignment when the frame left it misaligned, so
// the zero-copy loaders accept it directly.
func ParseImagePayload(p []byte) ([]byte, error) {
	r := &wireReader{b: p}
	img := r.bytesv("image")
	if err := r.done(); err != nil {
		return nil, err
	}
	return repro.AlignImage(img), nil
}

// ParseUint64Payload parses a RESULT payload holding a single uint64
// (the OpSwapImage generation and OpEstimate estimate replies).
func ParseUint64Payload(p []byte) (uint64, error) {
	r := &wireReader{b: p}
	v := r.uint64v("value")
	if err := r.done(); err != nil {
		return 0, err
	}
	return v, nil
}

// ParseError parses an ERROR reply payload into its typed *Error.
func ParseError(p []byte) (*Error, error) { return parseErrorPayload(p) }
