package server

import (
	"errors"
	"testing"
)

// FuzzRequestParsers throws arbitrary bytes at every request and reply
// payload parser. The parsers run on attacker-controlled input before
// any handler, so the contract is absolute: parse or reject with
// ErrProtocol — never panic, never allocate beyond the payload the
// sender paid for (the wireReader bounds every count by the remaining
// bytes).
func FuzzRequestParsers(f *testing.F) {
	f.Add((&reconcileReq{deadline: 5, seed: 9, headroom: 1.5, local: []uint64{1, 2}, remote: []uint64{3}}).encode())
	f.Add((&decodeReq{deadline: 0, sketch: []byte{1, 2, 3}}).encode())
	f.Add((&buildReq{deadline: 1, seed: 4, keys: []uint64{5, 6, 7}}).encode())
	f.Add((&lookupReq{deadline: 0, keys: []uint64{8}}).encode())
	f.Add((&swapReq{deadline: 2, image: []byte{9}}).encode())
	f.Add((&estimateReq{deadline: 3, local: []byte{1}, remote: []byte{2}}).encode())
	f.Add((&ReconcileResult{OnlyLocal: []uint64{1}, OnlyRemote: []uint64{2}, Attempts: 2, WireBytes: 100, Headroom: 1.75}).encode())
	f.Add((&DecodeResult{Added: []uint64{1}, Removed: []uint64{2}, Complete: true}).encode())
	f.Add((&LookupResult{Generation: 3, Values: []uint64{4, 5}}).encode())
	f.Add(encodeErrorPayload(CodeOverloaded, 25_000_000, "overloaded"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // huge count, no data behind it

	check := func(t *testing.T, what string, err error) {
		if err != nil && !errors.Is(err, ErrProtocol) {
			t.Fatalf("%s: non-protocol error: %v", what, err)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := parseReconcileReq(data)
		check(t, "reconcileReq", err)
		_, err = parseDecodeReq(data)
		check(t, "decodeReq", err)
		_, err = parseBuildReq(data)
		check(t, "buildReq", err)
		_, err = parseLookupReq(data)
		check(t, "lookupReq", err)
		_, err = parseSwapReq(data)
		check(t, "swapReq", err)
		_, err = parseEstimateReq(data)
		check(t, "estimateReq", err)
		_, err = parseReconcileResult(data)
		check(t, "reconcileResult", err)
		_, err = parseDecodeResult(data)
		check(t, "decodeResult", err)
		_, err = parseLookupResult(data)
		check(t, "lookupResult", err)
		_, err = parseErrorPayload(data)
		check(t, "errorPayload", err)
	})
}

// TestRequestRoundTrips pins the codec: encode → parse must be
// lossless for every request shape, so client and server can never
// disagree on a field offset.
func TestRequestRoundTrips(t *testing.T) {
	rq := &reconcileReq{deadline: 7, seed: 11, headroom: 2.25, local: []uint64{1, 2, 3}, remote: []uint64{4}}
	got, err := parseReconcileReq(rq.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.deadline != rq.deadline || got.seed != rq.seed || got.headroom != rq.headroom ||
		len(got.local) != 3 || len(got.remote) != 1 || got.local[2] != 3 || got.remote[0] != 4 {
		t.Fatalf("reconcile round trip: %+v", got)
	}

	res := &ReconcileResult{OnlyLocal: []uint64{9}, OnlyRemote: []uint64{8, 7}, Attempts: 3, WireBytes: 12345, Headroom: 1.75}
	rback, err := parseReconcileResult(res.encode())
	if err != nil {
		t.Fatal(err)
	}
	if rback.Attempts != 3 || rback.WireBytes != 12345 || rback.Headroom != 1.75 ||
		len(rback.OnlyLocal) != 1 || len(rback.OnlyRemote) != 2 {
		t.Fatalf("reconcile result round trip: %+v", rback)
	}

	e, err := parseErrorPayload(encodeErrorPayload(CodeOverloaded, 25_000_000, "busy"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeOverloaded || e.Msg != "busy" || e.RetryAfter <= 0 {
		t.Fatalf("error round trip: %+v", e)
	}
	if !errors.Is(e, ErrOverloaded) {
		t.Fatal("parsed error does not match its sentinel")
	}
}
