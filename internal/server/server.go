package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/bloomier"
	"repro/internal/faultinject"
	"repro/internal/iblt"
	"repro/internal/mphf"
	"repro/internal/parallel"
)

// ErrServerClosed is returned by Serve and Shutdown once a Shutdown has
// begun.
var ErrServerClosed = errors.New("server: closed")

// Options configure New. The zero value is serviceable: GOMAXPROCS
// workers, MaxJobs = 2×workers, the zero Policy, DefaultMaxFrame, and a
// 25ms retry-after hint.
type Options struct {
	// Workers sizes the server's worker pool; <= 0 selects GOMAXPROCS.
	Workers int

	// MaxJobs bounds concurrently running requests. The server never
	// queues past it: request N+1 is shed with an OVERLOADED reply.
	// <= 0 selects 2× the worker count.
	MaxJobs int

	// Policy is the failure policy every request runs under — the
	// server's Runtime policy (build and reconcile retries, default
	// job timeout).
	Policy repro.Policy

	// MaxFrame caps the frame size the server will read or build;
	// <= 0 selects DefaultMaxFrame. Oversized frames are rejected from
	// the 4-byte length prefix, before any payload allocation.
	MaxFrame int

	// RetryAfter is the hint carried in OVERLOADED replies; <= 0
	// selects 25ms.
	RetryAfter time.Duration
}

// Stats is a snapshot of the server's wire-level counters plus the
// underlying Runtime's. The steady-state invariant is
// RequestsAccepted == RepliesSent once the server quiesces: every
// accepted request — including shed and shutdown-rejected ones — gets
// exactly one reply.
type Stats struct {
	// ConnsAccepted counts connections the accept loop admitted.
	ConnsAccepted int64
	// ConnPanics counts connections killed by a panic on their read
	// goroutine. The server survives each one.
	ConnPanics int64
	// RequestsAccepted counts fully read, well-framed request frames.
	RequestsAccepted int64
	// RequestsShed counts requests turned away at admission with an
	// OVERLOADED reply (also counted in RepliesSent).
	RequestsShed int64
	// RepliesSent counts reply frames the server committed to writing
	// (a torn or failed write still counts — the reply was produced).
	RepliesSent int64
	// FramesRejected counts protocol violations: bad preface, bad
	// length, unknown frame type, zero request ID. Each one kills its
	// connection.
	FramesRejected int64
	// GoAwaysSent counts GOAWAY frames written during drain.
	GoAwaysSent int64

	// Runtime is the owned Runtime's snapshot; Runtime.JobsShed equals
	// RequestsShed minus sheds answered before admission was attempted.
	Runtime repro.RuntimeStats
}

// Server is the wire front-end: it owns a Runtime (workers, admission,
// policy) and a StaticTable, and serves the protocol documented in this
// package's comment. Create with New, start with Serve, stop with
// Shutdown.
type Server struct {
	opts  Options
	rt    *repro.Runtime
	table *repro.StaticTable

	mu    sync.Mutex
	ln    net.Listener
	conns map[*conn]struct{}

	draining atomic.Bool
	connWG   sync.WaitGroup

	connsAccepted    atomic.Int64
	connPanics       atomic.Int64
	requestsAccepted atomic.Int64
	requestsShed     atomic.Int64
	repliesSent      atomic.Int64
	framesRejected   atomic.Int64
	goAwaysSent      atomic.Int64
}

// New builds a Server with its own Runtime and an empty StaticTable.
// Nothing listens until Serve.
func New(opts Options) *Server {
	if opts.MaxJobs <= 0 {
		w := opts.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		opts.MaxJobs = 2 * w
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = DefaultMaxFrame
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = 25 * time.Millisecond
	}
	return &Server{
		opts:  opts,
		rt:    repro.NewRuntime(repro.RuntimeOptions{Workers: opts.Workers, MaxJobs: opts.MaxJobs, Policy: opts.Policy}),
		table: repro.NewStaticTable(),
		conns: make(map[*conn]struct{}),
	}
}

// Runtime returns the server's owned Runtime (for stats and tests).
func (s *Server) Runtime() *repro.Runtime { return s.rt }

// Table returns the server's StaticTable — the state behind the Lookup
// and SwapImage ops. Embedders may pre-install a generation before
// Serve.
func (s *Server) Table() *repro.StaticTable { return s.table }

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		ConnsAccepted:    s.connsAccepted.Load(),
		ConnPanics:       s.connPanics.Load(),
		RequestsAccepted: s.requestsAccepted.Load(),
		RequestsShed:     s.requestsShed.Load(),
		RepliesSent:      s.repliesSent.Load(),
		FramesRejected:   s.framesRejected.Load(),
		GoAwaysSent:      s.goAwaysSent.Load(),
		Runtime:          s.rt.Stats(),
	}
}

// Serve accepts connections on ln until Shutdown closes it (then
// returns nil) or Accept fails (then returns the error). The accept
// loop never blocks on request admission — shedding happens per
// request, after the frame is read, on the connection's goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		nc, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.draining.Load() {
				return nil
			}
			return err
		}
		s.connsAccepted.Add(1)
		if faultinject.Enabled {
			// Failpoint: an error drops the connection at the door; a
			// stalling callback delays the accept loop itself.
			if ferr := faultinject.FireErr(faultinject.ServerAccept, nc.RemoteAddr().String()); ferr != nil {
				nc.Close()
				continue
			}
		}
		c := &conn{s: s, nc: nc}
		s.mu.Lock()
		if s.draining.Load() {
			// Raced with Shutdown: refuse politely instead of serving on
			// a connection drain will never see. goAway (not a bare
			// writeFrame) so the refusal carries the same write deadline
			// — a stuck peer cannot stall the accept loop's final
			// iterations — and counts in GoAwaysSent like every other
			// drain notice.
			s.mu.Unlock()
			c.goAway()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		//peelvet:allow nospawn -- connection goroutine: panic-isolated by conn.run's recover (ConnPanics), registered in s.conns, and joined by Shutdown via connWG
		go c.run()
	}
}

// Shutdown drains the server: the listener closes (Serve returns nil),
// every open connection gets a GOAWAY frame, in-flight requests finish
// through the Runtime's drain — their replies flush before the
// connections close, because replies are written inside the jobs — and
// new requests arriving meanwhile are answered SHUTTING_DOWN. If ctx
// expires first, Shutdown force-closes the connections and returns
// ctx.Err(); the Runtime keeps draining in the background. A second
// Shutdown returns ErrServerClosed.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return ErrServerClosed
	}
	s.mu.Lock()
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// goAway waits for the connection's write mutex (an in-flight reply
	// finishes flushing first), so each notice goes out on its own
	// goroutine: one connection mid-write to a slow client must not
	// delay the others' notices or the Runtime drain below. The
	// goroutines are joined before Shutdown returns; a stuck one is
	// unstuck by the force-close below at the latest.
	var goAways sync.WaitGroup
	for _, c := range conns {
		goAways.Add(1)
		//peelvet:allow nospawn -- drain notifier: joined by goAways.Wait below, bounded by goAway's own write deadline plus the force-close of its connection
		go func() {
			defer goAways.Done()
			c.goAway()
		}()
	}

	err := s.rt.Shutdown(ctx) // nil on clean drain, ctx.Err() on expiry
	if errors.Is(err, repro.ErrRuntimeClosed) {
		err = nil // someone shut the runtime down for us; the drain is done
	}
	s.mu.Lock()
	conns = conns[:0]
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.nc.Close()
	}
	goAways.Wait()
	s.connWG.Wait()
	return err
}

// conn is one accepted connection: a read loop on its own goroutine and
// a mutex-serialized frame writer shared by every in-flight handler.
type conn struct {
	s  *Server
	nc net.Conn

	// ctx is the connection's lifetime context: every handler context
	// derives from it, and run cancels it on exit, so work admitted for
	// a connection that has since died is reclaimed (CodeCanceled)
	// instead of running to completion holding a MaxJobs slot. Set
	// before run's read loop starts; nil only on the accept-race
	// refusal path, which never serves a request.
	ctx    context.Context
	cancel context.CancelFunc

	writeMu sync.Mutex
	wbuf    []byte
	dead    bool // a torn write poisoned the stream; no further writes
}

// run is the connection's read loop. A panic here kills only this
// connection: the recover below counts it and closes the socket, and
// every other connection — and the server — keeps going.
func (c *conn) run() {
	c.ctx, c.cancel = context.WithCancel(context.Background())
	defer c.s.connWG.Done()
	defer func() {
		if v := recover(); v != nil {
			c.s.connPanics.Add(1)
		}
		c.cancel() // reclaim handlers still running for this dead conn
		c.nc.Close()
		c.s.mu.Lock()
		delete(c.s.conns, c)
		c.s.mu.Unlock()
	}()

	var preface [len(Preface)]byte
	if _, err := io.ReadFull(c.nc, preface[:]); err != nil || string(preface[:]) != Preface {
		if err == nil {
			c.s.framesRejected.Add(1)
		}
		return
	}

	for {
		typ, id, payload, err := readFrame(c.nc, c.s.opts.MaxFrame)
		if err != nil {
			if errors.Is(err, ErrProtocol) {
				c.s.framesRejected.Add(1)
			}
			return
		}
		if !opValid(typ) || id == 0 {
			c.s.framesRejected.Add(1)
			return
		}
		if faultinject.Enabled {
			// Failpoint: a stalling callback holds the read loop here —
			// a stuck client from the server's point of view.
			faultinject.Fire(faultinject.ServerConnStall, len(payload))
		}
		c.s.requestsAccepted.Add(1)
		c.serveRequest(typ, id, payload)
	}
}

// serveRequest admits one request and arranges its single reply. It
// runs on the read goroutine and never blocks on admission: saturation
// sheds, shutdown refuses, both with an inline typed reply.
func (c *conn) serveRequest(typ byte, id uint64, payload []byte) {
	if len(payload) < 4 {
		c.reply(id, TypeError, encodeErrorPayload(CodeBadRequest, 0, "payload shorter than deadline field"))
		return
	}
	dl := time.Duration(uint32(payload[0])|uint32(payload[1])<<8|uint32(payload[2])<<16|uint32(payload[3])<<24) * time.Millisecond

	// Derive from the connection's context, not Background: when the
	// connection dies (or Shutdown force-closes it), run's cancel
	// propagates here and in-flight work for the vanished client is
	// abandoned at the next barrier instead of holding a MaxJobs slot.
	ctx := c.ctx
	cancel := context.CancelFunc(func() {})
	if dl > 0 {
		ctx, cancel = context.WithTimeout(ctx, dl)
	}

	_, err := c.s.rt.TryGo(ctx, func(ctx context.Context, pool *repro.WorkerPool) error {
		defer cancel()
		rtyp, rpayload, herr := c.s.dispatch(ctx, pool, typ, payload)
		if werr := c.reply(id, rtyp, rpayload); werr != nil && herr == nil {
			herr = werr
		}
		return herr // a *PanicError here makes execute count JobsPanicked
	})
	if err == nil {
		return
	}
	cancel()
	switch {
	case errors.Is(err, repro.ErrOverloaded):
		c.s.requestsShed.Add(1)
		c.reply(id, TypeError, encodeErrorPayload(CodeOverloaded, c.s.opts.RetryAfter, "runtime saturated, request shed"))
	case errors.Is(err, repro.ErrRuntimeClosed):
		c.reply(id, TypeError, encodeErrorPayload(CodeShuttingDown, 0, "server draining"))
	case errors.Is(err, context.DeadlineExceeded):
		c.reply(id, TypeError, encodeErrorPayload(CodeDeadlineExceeded, 0, "deadline expired before admission"))
	default:
		c.reply(id, TypeError, encodeErrorPayload(CodeCanceled, 0, err.Error()))
	}
}

// dispatch parses and executes one request on the calling (job)
// goroutine. A panicking handler is recovered here so the client still
// gets a reply — a typed INTERNAL error — while the panic is re-reported
// upward as a *parallel.PanicError for the Runtime's JobsPanicked
// accounting. The connection survives.
func (s *Server) dispatch(ctx context.Context, pool *repro.WorkerPool, typ byte, payload []byte) (rtyp byte, rpayload []byte, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = parallel.NewPanicError(v)
			rtyp, rpayload = TypeError, encodeErrorPayload(CodeInternal, 0, fmt.Sprintf("handler panic: %v", v))
		}
	}()
	if faultinject.Enabled {
		// Failpoint: a panicking callback exercises the recover above.
		faultinject.Fire(faultinject.ServerHandlerPanic, typ)
	}

	switch typ {
	case OpReconcile:
		q, perr := parseReconcileReq(payload)
		if perr != nil {
			return TypeError, encodeErrorPayload(CodeBadRequest, 0, perr.Error()), nil
		}
		onlyL, onlyR, meta, rerr := s.rt.Policy().Reconcile(ctx, q.local, q.remote, q.seed, q.headroom, pool)
		if rerr != nil {
			code, msg := classify(rerr)
			return TypeError, encodeErrorPayload(code, 0, msg), nil
		}
		res := &ReconcileResult{OnlyLocal: onlyL, OnlyRemote: onlyR, Attempts: meta.Attempts, WireBytes: meta.WireBytes, Headroom: meta.FinalHeadroom}
		return TypeResult, res.encode(), nil

	case OpDecode:
		q, perr := parseDecodeReq(payload)
		if perr != nil {
			return TypeError, encodeErrorPayload(CodeBadRequest, 0, perr.Error()), nil
		}
		var t iblt.Table
		if uerr := t.UnmarshalBinary(q.sketch); uerr != nil {
			return TypeError, encodeErrorPayload(CodeBadRequest, 0, uerr.Error()), nil
		}
		res, derr := t.DecodeParallelFrontierCtx(ctx, pool)
		if derr != nil {
			code, msg := classify(derr)
			return TypeError, encodeErrorPayload(code, 0, msg), nil
		}
		out := &DecodeResult{Added: res.Added, Removed: res.Removed, Complete: res.Complete}
		return TypeResult, out.encode(), nil

	case OpBuildMPHF:
		q, perr := parseBuildReq(payload)
		if perr != nil {
			return TypeError, encodeErrorPayload(CodeBadRequest, 0, perr.Error()), nil
		}
		f, berr := s.rt.Policy().BuildMPHF(ctx, q.keys, q.seed, pool)
		if berr != nil {
			code, msg := classify(berr)
			return TypeError, encodeErrorPayload(code, 0, msg), nil
		}
		return TypeResult, appendBytes(nil, f.Bytes()), nil

	case OpLookup:
		q, perr := parseLookupReq(payload)
		if perr != nil {
			return TypeError, encodeErrorPayload(CodeBadRequest, 0, perr.Error()), nil
		}
		out := make([]uint64, len(q.keys))
		gen, ok := s.table.LookupBatch(q.keys, out)
		if !ok {
			return TypeError, encodeErrorPayload(CodeUnavailable, 0, "no generation installed"), nil
		}
		res := &LookupResult{Generation: gen, Values: out}
		return TypeResult, res.encode(), nil

	case OpSwapImage:
		q, perr := parseSwapReq(payload)
		if perr != nil {
			return TypeError, encodeErrorPayload(CodeBadRequest, 0, perr.Error()), nil
		}
		// The image lands at an arbitrary offset inside the frame, but
		// the zero-copy loader requires an 8-byte-aligned base;
		// AlignImage copies only when needed. The (possibly copied)
		// buffer is private to this frame, so the table owns it for the
		// generation's lifetime.
		gen, serr := s.table.SwapImage(repro.AlignImage(q.image), nil)
		if serr != nil {
			return TypeError, encodeErrorPayload(CodeBadRequest, 0, serr.Error()), nil
		}
		out := make([]byte, 0, 8)
		return TypeResult, appendUint64(out, gen), nil

	case OpEstimate:
		q, perr := parseEstimateReq(payload)
		if perr != nil {
			return TypeError, encodeErrorPayload(CodeBadRequest, 0, perr.Error()), nil
		}
		var le, re iblt.StrataEstimator
		if uerr := le.UnmarshalBinary(q.local); uerr != nil {
			return TypeError, encodeErrorPayload(CodeBadRequest, 0, uerr.Error()), nil
		}
		if uerr := re.UnmarshalBinary(q.remote); uerr != nil {
			return TypeError, encodeErrorPayload(CodeBadRequest, 0, uerr.Error()), nil
		}
		if le.Seed() != re.Seed() {
			// Checked before Subtract, which panics on mismatched seeds —
			// a hostile pair must be a typed reply, not a handler panic.
			return TypeError, encodeErrorPayload(CodeBadRequest, 0, "estimator seeds differ"), nil
		}
		le.Subtract(&re)
		out := make([]byte, 0, 8)
		return TypeResult, appendUint64(out, uint64(le.Estimate())), nil
	}
	// Unreachable: run() validated the op before dispatch.
	return TypeError, encodeErrorPayload(CodeBadRequest, 0, "unknown op"), nil
}

// classify maps a handler error to its wire code.
func classify(err error) (Code, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadlineExceeded, err.Error()
	case parallel.IsCancellation(err):
		return CodeCanceled, err.Error()
	case errors.Is(err, iblt.ErrDecodeIncomplete),
		errors.Is(err, mphf.ErrBuildFailed),
		errors.Is(err, bloomier.ErrBuildFailed):
		return CodeFailed, err.Error()
	case errors.Is(err, mphf.ErrDuplicateKeys):
		return CodeBadRequest, err.Error()
	default:
		return CodeInternal, err.Error()
	}
}

// reply writes one reply frame, counting it as sent before the write is
// attempted: RepliesSent counts replies the server produced, whether or
// not the network cooperated.
func (c *conn) reply(id uint64, typ byte, payload []byte) error {
	c.s.repliesSent.Add(1)
	return c.writeFrame(typ, id, payload)
}

// goAway sends the drain notice. The write mutex is acquired before the
// deadline is set: SetWriteDeadline applies to writes already in flight,
// so setting it first could tear a reply mid-flush to a slow client —
// violating the drain guarantee. Once the stream is ours, a short
// deadline bounds the GOAWAY write itself (a stuck peer cannot hold it),
// and it is cleared again before the mutex is released. Callers that
// must not block behind an in-flight reply run goAway on its own
// goroutine (Shutdown does).
func (c *conn) goAway() {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.nc.SetWriteDeadline(time.Now().Add(time.Second))
	if c.writeFrameLocked(TypeGoAway, 0, nil) == nil {
		c.s.goAwaysSent.Add(1)
	}
	c.nc.SetWriteDeadline(time.Time{})
}

// writeFrame builds the frame contiguously and hands the kernel a
// single Write, under the connection's write mutex — concurrent
// handlers never interleave frame bytes.
func (c *conn) writeFrame(typ byte, id uint64, payload []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.writeFrameLocked(typ, id, payload)
}

// writeFrameLocked is writeFrame with c.writeMu already held.
func (c *conn) writeFrameLocked(typ byte, id uint64, payload []byte) error {
	if c.dead {
		return net.ErrClosed
	}
	c.wbuf = appendFrame(c.wbuf[:0], typ, id, payload)
	if faultinject.Enabled {
		// Failpoint: an error tears the frame — only a prefix reaches
		// the wire, then the connection dies, exactly like a crash
		// mid-send. The stream is poisoned; no further writes.
		if ferr := faultinject.FireErr(faultinject.ServerFrameTorn, c.wbuf); ferr != nil {
			c.dead = true
			if len(c.wbuf) > 1 {
				c.nc.Write(c.wbuf[:len(c.wbuf)/2])
			}
			c.nc.Close()
			return ferr
		}
	}
	if _, err := c.nc.Write(c.wbuf); err != nil {
		c.dead = true
		return err
	}
	return nil
}

func appendUint64(buf []byte, v uint64) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
