// Package server is the wire front-end of the peeling runtime: a
// length-prefixed binary protocol over TCP exposing the Runtime's
// reconciliation, decode, build, and static-table serving paths,
// engineered for failure first. Every request carries a deadline that
// becomes the handler's context; admission rides the Runtime's MaxJobs
// bound but never blocks the accept loop — over-budget requests are
// shed with a typed OVERLOADED reply carrying a retry-after hint;
// per-connection panics kill only their connection; handler panics are
// answered with a typed INTERNAL reply; oversized or malformed frames
// are rejected before allocation. Shutdown drains gracefully: the
// listener closes, every connection receives a GOAWAY frame, in-flight
// requests finish through Runtime.Shutdown, and only then do the
// connections close.
//
// # Wire format
//
// A connection opens with an 8-byte preface "PEELSRV1". Every
// subsequent message, both directions, is one frame:
//
//	length  uint32  // of the remainder: 1 + 8 + len(payload)
//	type    uint8   // request op or response type
//	reqID   uint64  // nonzero, chosen by the client; echoed in replies
//	payload []byte
//
// length is bounded by the receiver's MaxFrame before any payload
// allocation, mirroring iblt.UnmarshalBinary's adversarial-geometry
// bounds. Request payloads begin with a uint32 relative deadline in
// milliseconds (0 = none); sketch payloads reuse the hardened iblt wire
// format verbatim. All integers are little-endian.
//
// Every accepted request — one whose frame was fully read with a known
// op type — receives exactly one reply: a RESULT frame or a typed ERROR
// frame. Shed and shutdown rejections are replies too, never silent
// drops.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/iblt"
)

// Preface is the 8-byte connection preface a client sends before its
// first frame; the server rejects connections that open with anything
// else before reading any frame.
const Preface = "PEELSRV1"

// Frame types. Requests are 0x01..0x7f, responses have the top bit set.
const (
	OpReconcile byte = 0x01 // two key sets -> difference sides + retry metadata
	OpDecode    byte = 0x02 // iblt wire sketch -> recovered difference
	OpBuildMPHF byte = 0x03 // key set -> flat MPHF image
	OpLookup    byte = 0x04 // keys -> values from the server's StaticTable
	OpSwapImage byte = 0x05 // flat image -> installed generation (not idempotent)
	OpEstimate  byte = 0x06 // two strata estimators -> difference estimate

	TypeResult byte = 0x80 // success reply; payload is op-specific
	TypeError  byte = 0x81 // typed failure reply
	TypeGoAway byte = 0x82 // server is draining; reqID 0, no payload
)

// opValid reports whether t is a known request op.
func opValid(t byte) bool { return t >= OpReconcile && t <= OpEstimate }

// opIdempotent reports whether retrying op after an ambiguous failure
// (connection loss mid-call) is safe. Everything except SwapImage is a
// pure function of its request; SwapImage advances the table generation,
// so a client must not blindly re-send it when it cannot know whether
// the first send was applied. (Retry after a shed OVERLOADED reply is
// always safe, for every op: a shed request never started.)
func opIdempotent(t byte) bool { return t != OpSwapImage }

// frameOverhead is the fixed cost of a frame beyond its payload: the
// type byte and the request ID (the uint32 length prefix is not counted
// by the length field itself).
const frameOverhead = 1 + 8

// DefaultMaxFrame bounds how large a frame either side will read or
// build: 64 MiB covers multi-million-key reconciliations and MPHF
// images while keeping a hostile length prefix from driving a huge
// allocation.
const DefaultMaxFrame = 64 << 20

// Code classifies a typed error reply.
type Code uint8

const (
	// CodeBadRequest: the request was malformed (unparseable payload,
	// corrupt sketch or image, incompatible estimator seeds). Not
	// retryable — the same bytes will fail the same way.
	CodeBadRequest Code = 1
	// CodeOverloaded: the request was shed at admission — it never ran,
	// so retrying after the carried retry-after hint is always safe.
	CodeOverloaded Code = 2
	// CodeDeadlineExceeded: the request's deadline expired before the
	// handler finished; the work was abandoned at a round barrier.
	CodeDeadlineExceeded Code = 3
	// CodeCanceled: the handler's context was canceled for a reason
	// other than its deadline (e.g. the connection's context died).
	CodeCanceled Code = 4
	// CodeShuttingDown: the server is draining; this connection has or
	// will receive GOAWAY. Dial elsewhere.
	CodeShuttingDown Code = 5
	// CodeInternal: the handler panicked (or hit an unclassified
	// internal failure). The panic was isolated — the server, the
	// connection, and every other request survive.
	CodeInternal Code = 6
	// CodeUnavailable: the request needs state the server does not have
	// (e.g. a Lookup before any generation was installed).
	CodeUnavailable Code = 7
	// CodeFailed: the operation ran and failed on its own terms — a
	// build whose every attempt left a non-empty 2-core, a
	// reconciliation still incomplete at the policy's headroom ceiling.
	CodeFailed Code = 8
)

func (c Code) String() string {
	switch c {
	case CodeBadRequest:
		return "BAD_REQUEST"
	case CodeOverloaded:
		return "OVERLOADED"
	case CodeDeadlineExceeded:
		return "DEADLINE_EXCEEDED"
	case CodeCanceled:
		return "CANCELED"
	case CodeShuttingDown:
		return "SHUTTING_DOWN"
	case CodeInternal:
		return "INTERNAL"
	case CodeUnavailable:
		return "UNAVAILABLE"
	case CodeFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("CODE(%d)", uint8(c))
	}
}

// Error is a typed error reply as seen by the client: the code, the
// server's message, and — for CodeOverloaded — the server's retry-after
// hint. It implements errors.Is against the exported sentinels, so
// `errors.Is(err, server.ErrOverloaded)` works across the wire.
type Error struct {
	Code       Code
	Msg        string
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("server: %s", e.Code)
	}
	return fmt.Sprintf("server: %s: %s", e.Code, e.Msg)
}

// Is matches the sentinel for e's code, so wrapped typed replies
// cooperate with errors.Is.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrOverloaded:
		return e.Code == CodeOverloaded
	case ErrShuttingDown:
		return e.Code == CodeShuttingDown
	case ErrBadRequest:
		return e.Code == CodeBadRequest
	}
	return false
}

// Sentinels for the retry-relevant codes; match with errors.Is.
var (
	// ErrOverloaded: the server shed the request; retry after the hint.
	ErrOverloaded = errors.New("server: overloaded")
	// ErrShuttingDown: the server is draining; dial another instance.
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrBadRequest: the request was malformed; do not retry.
	ErrBadRequest = errors.New("server: bad request")
	// ErrProtocol is returned for frames that violate the wire protocol
	// (bad preface, oversized or short frames, unknown types); the
	// connection is closed after it.
	ErrProtocol = errors.New("server: protocol error")
)

// readFrame reads one frame from r, bounding the length prefix by
// maxFrame before allocating the payload. Protocol violations are
// reported as ErrProtocol wrappers; io errors pass through.
func readFrame(r io.Reader, maxFrame int) (typ byte, id uint64, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	length := int(binary.LittleEndian.Uint32(hdr[:]))
	if length < frameOverhead {
		return 0, 0, nil, fmt.Errorf("%w: frame length %d below header size", ErrProtocol, length)
	}
	if length > maxFrame {
		return 0, 0, nil, fmt.Errorf("%w: frame length %d exceeds cap %d", ErrProtocol, length, maxFrame)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, 0, nil, err
	}
	return body[0], binary.LittleEndian.Uint64(body[1:9]), body[9:], nil
}

// appendFrame appends one encoded frame to buf and returns it — the
// frame is built contiguously so the writer can hand the kernel a
// single Write (no torn frame on a clean path).
func appendFrame(buf []byte, typ byte, id uint64, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(frameOverhead+len(payload)))
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	return append(buf, payload...)
}

// wireReader is an error-sticky bounds-checked cursor over a payload:
// every read validates remaining length first, so hostile payloads can
// neither panic the parser nor drive allocations beyond the (already
// frame-capped) payload they paid for.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrProtocol, what, r.off)
	}
}

func (r *wireReader) uint8v(what string) uint8 {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *wireReader) uint32v(what string) uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *wireReader) uint64v(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// keys reads a uint32-counted array of uint64 keys. The count is
// bounded by the remaining payload before the slice is allocated.
func (r *wireReader) keys(what string) []uint64 {
	n := int(r.uint32v(what))
	if r.err != nil {
		return nil
	}
	if n < 0 || n > (len(r.b)-r.off)/8 {
		r.fail(what)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(r.b[r.off:])
		r.off += 8
	}
	return out
}

// bytesv reads a uint32-length-prefixed byte blob, aliasing the payload
// (no copy; the payload buffer belongs to the frame).
func (r *wireReader) bytesv(what string) []byte {
	n := int(r.uint32v(what))
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail(what)
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

// str reads a uint16-length-prefixed string.
func (r *wireReader) str(what string) string {
	if r.err != nil {
		return ""
	}
	if r.off+2 > len(r.b) {
		r.fail(what)
		return ""
	}
	n := int(binary.LittleEndian.Uint16(r.b[r.off:]))
	r.off += 2
	if n > len(r.b)-r.off {
		r.fail(what)
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

// done checks that the payload was consumed exactly; trailing bytes are
// a protocol violation (they would otherwise smuggle unvalidated data).
func (r *wireReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrProtocol, len(r.b)-r.off)
	}
	return nil
}

func appendKeys(buf []byte, keys []uint64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.LittleEndian.AppendUint64(buf, k)
	}
	return buf
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func appendString(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// deadlineMs converts a context deadline distance to the wire's uint32
// millisecond form: 0 means "no deadline", expired deadlines clamp to 1
// (the receiver should fail fast, not treat it as unbounded).
func deadlineMs(d time.Duration, hasDeadline bool) uint32 {
	if !hasDeadline {
		return 0
	}
	ms := (d + time.Millisecond - 1) / time.Millisecond
	if ms < 1 {
		return 1
	}
	if ms > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(ms)
}

// --- request payloads ---

type reconcileReq struct {
	deadline uint32
	seed     uint64
	headroom float64
	local    []uint64
	remote   []uint64
}

func (q *reconcileReq) encode() []byte {
	buf := make([]byte, 0, 4+8+8+4+8*len(q.local)+4+8*len(q.remote))
	buf = binary.LittleEndian.AppendUint32(buf, q.deadline)
	buf = binary.LittleEndian.AppendUint64(buf, q.seed)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(q.headroom))
	buf = appendKeys(buf, q.local)
	return appendKeys(buf, q.remote)
}

func parseReconcileReq(p []byte) (*reconcileReq, error) {
	r := &wireReader{b: p}
	q := &reconcileReq{
		deadline: r.uint32v("deadline"),
		seed:     r.uint64v("seed"),
		headroom: math.Float64frombits(r.uint64v("headroom")),
		local:    r.keys("local keys"),
		remote:   r.keys("remote keys"),
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	// The upper bound matters as much as the lower: headroom multiplies
	// the server-side difference-table allocation, so an uncapped value
	// in a tiny frame would be a remotely triggered OOM. ReconcileCtx
	// clamps again as defense in depth; the wire rejects outright.
	if math.IsNaN(q.headroom) || q.headroom < 0 || q.headroom > iblt.MaxHeadroom {
		return nil, fmt.Errorf("%w: headroom %v outside [0, %v]", ErrProtocol, q.headroom, float64(iblt.MaxHeadroom))
	}
	return q, nil
}

type decodeReq struct {
	deadline uint32
	sketch   []byte // iblt wire format, validated by the hardened parser
}

func (q *decodeReq) encode() []byte {
	buf := make([]byte, 0, 4+4+len(q.sketch))
	buf = binary.LittleEndian.AppendUint32(buf, q.deadline)
	return appendBytes(buf, q.sketch)
}

func parseDecodeReq(p []byte) (*decodeReq, error) {
	r := &wireReader{b: p}
	q := &decodeReq{deadline: r.uint32v("deadline"), sketch: r.bytesv("sketch")}
	if err := r.done(); err != nil {
		return nil, err
	}
	return q, nil
}

type buildReq struct {
	deadline uint32
	seed     uint64
	keys     []uint64
}

func (q *buildReq) encode() []byte {
	buf := make([]byte, 0, 4+8+4+8*len(q.keys))
	buf = binary.LittleEndian.AppendUint32(buf, q.deadline)
	buf = binary.LittleEndian.AppendUint64(buf, q.seed)
	return appendKeys(buf, q.keys)
}

func parseBuildReq(p []byte) (*buildReq, error) {
	r := &wireReader{b: p}
	q := &buildReq{deadline: r.uint32v("deadline"), seed: r.uint64v("seed"), keys: r.keys("keys")}
	if err := r.done(); err != nil {
		return nil, err
	}
	return q, nil
}

type lookupReq struct {
	deadline uint32
	keys     []uint64
}

func (q *lookupReq) encode() []byte {
	buf := make([]byte, 0, 4+4+8*len(q.keys))
	buf = binary.LittleEndian.AppendUint32(buf, q.deadline)
	return appendKeys(buf, q.keys)
}

func parseLookupReq(p []byte) (*lookupReq, error) {
	r := &wireReader{b: p}
	q := &lookupReq{deadline: r.uint32v("deadline"), keys: r.keys("keys")}
	if err := r.done(); err != nil {
		return nil, err
	}
	return q, nil
}

type swapReq struct {
	deadline uint32
	image    []byte // flat layout image, validated before install
}

func (q *swapReq) encode() []byte {
	buf := make([]byte, 0, 4+4+len(q.image))
	buf = binary.LittleEndian.AppendUint32(buf, q.deadline)
	return appendBytes(buf, q.image)
}

func parseSwapReq(p []byte) (*swapReq, error) {
	r := &wireReader{b: p}
	q := &swapReq{deadline: r.uint32v("deadline"), image: r.bytesv("image")}
	if err := r.done(); err != nil {
		return nil, err
	}
	return q, nil
}

type estimateReq struct {
	deadline uint32
	local    []byte // marshaled StrataEstimator
	remote   []byte
}

func (q *estimateReq) encode() []byte {
	buf := make([]byte, 0, 4+4+len(q.local)+4+len(q.remote))
	buf = binary.LittleEndian.AppendUint32(buf, q.deadline)
	buf = appendBytes(buf, q.local)
	return appendBytes(buf, q.remote)
}

func parseEstimateReq(p []byte) (*estimateReq, error) {
	r := &wireReader{b: p}
	q := &estimateReq{
		deadline: r.uint32v("deadline"),
		local:    r.bytesv("local estimator"),
		remote:   r.bytesv("remote estimator"),
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return q, nil
}

// --- reply payloads ---

// ReconcileResult is the Reconcile reply: the two difference sides plus
// the retry metadata — attempts and accumulated wire bytes mirror the
// server's ReconcileMeta, so headroom escalation is visible to clients.
type ReconcileResult struct {
	OnlyLocal  []uint64
	OnlyRemote []uint64
	Attempts   int
	WireBytes  int
	Headroom   float64 // headroom of the final (successful) attempt
}

func (res *ReconcileResult) encode() []byte {
	buf := make([]byte, 0, 4+8+8+4+8*len(res.OnlyLocal)+4+8*len(res.OnlyRemote))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(res.Attempts))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(res.WireBytes))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(res.Headroom))
	buf = appendKeys(buf, res.OnlyLocal)
	return appendKeys(buf, res.OnlyRemote)
}

func parseReconcileResult(p []byte) (*ReconcileResult, error) {
	r := &wireReader{b: p}
	res := &ReconcileResult{
		Attempts:   int(r.uint32v("attempts")),
		WireBytes:  int(r.uint64v("wire bytes")),
		Headroom:   math.Float64frombits(r.uint64v("headroom")),
		OnlyLocal:  r.keys("only-local"),
		OnlyRemote: r.keys("only-remote"),
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return res, nil
}

// DecodeResult is the Decode reply: the recovered difference and
// whether the peel completed (an incomplete decode still returns the
// partial recovery — the client decides whether partial is useful).
type DecodeResult struct {
	Added    []uint64
	Removed  []uint64
	Complete bool
}

func (res *DecodeResult) encode() []byte {
	buf := make([]byte, 0, 1+4+8*len(res.Added)+4+8*len(res.Removed))
	if res.Complete {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendKeys(buf, res.Added)
	return appendKeys(buf, res.Removed)
}

func parseDecodeResult(p []byte) (*DecodeResult, error) {
	r := &wireReader{b: p}
	res := &DecodeResult{
		Complete: r.uint8v("complete") != 0,
		Added:    r.keys("added"),
		Removed:  r.keys("removed"),
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return res, nil
}

// LookupResult is the Lookup reply: values[i] answers keys[i], all
// drawn from one consistent generation of the server's static table.
type LookupResult struct {
	Generation uint64
	Values     []uint64
}

func (res *LookupResult) encode() []byte {
	buf := make([]byte, 0, 8+4+8*len(res.Values))
	buf = binary.LittleEndian.AppendUint64(buf, res.Generation)
	return appendKeys(buf, res.Values)
}

func parseLookupResult(p []byte) (*LookupResult, error) {
	r := &wireReader{b: p}
	res := &LookupResult{Generation: r.uint64v("generation"), Values: r.keys("values")}
	if err := r.done(); err != nil {
		return nil, err
	}
	return res, nil
}

func encodeErrorPayload(code Code, retryAfter time.Duration, msg string) []byte {
	buf := make([]byte, 0, 1+4+2+len(msg))
	buf = append(buf, byte(code))
	buf = binary.LittleEndian.AppendUint32(buf, deadlineMs(retryAfter, retryAfter > 0))
	return appendString(buf, msg)
}

func parseErrorPayload(p []byte) (*Error, error) {
	r := &wireReader{b: p}
	e := &Error{Code: Code(r.uint8v("code"))}
	e.RetryAfter = time.Duration(r.uint32v("retry-after")) * time.Millisecond
	e.Msg = r.str("message")
	if err := r.done(); err != nil {
		return nil, err
	}
	return e, nil
}
