//go:build faultinject

package server_test

// Chaos suite for the wire front-end (build with -tags=faultinject,
// run with -race): concurrent clients hammer a small server while the
// failpoints inject dropped connections, handler panics, and torn reply
// frames, and the server is drained mid-load. The assertions are the
// protocol's failure contract: every request reaches a terminal outcome
// at the client, every accepted request got exactly one reply, sheds
// are counted on both sides of the admission boundary, and the server
// process survives it all.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/server/client"
)

func TestServerChaos(t *testing.T) {
	srv, addr := startServer(t, server.Options{
		Workers:    2,
		MaxJobs:    2,
		RetryAfter: 2 * time.Millisecond,
	})

	// Drop every 9th connection at the door.
	faultinject.Arm(faultinject.ServerAccept, func(hit int64, _ any) error {
		if hit%9 == 0 {
			return errors.New("chaos: connection dropped at accept")
		}
		return nil
	})
	defer faultinject.Disarm(faultinject.ServerAccept)
	// Poison every 7th request handler.
	faultinject.Arm(faultinject.ServerHandlerPanic, func(hit int64, _ any) error {
		if hit%7 == 0 {
			panic("chaos: handler poisoned")
		}
		return nil
	})
	defer faultinject.Disarm(faultinject.ServerHandlerPanic)
	// Tear every 13th reply frame mid-write.
	faultinject.Arm(faultinject.ServerFrameTorn, func(hit int64, _ any) error {
		if hit%13 == 0 {
			return errors.New("chaos: frame torn")
		}
		return nil
	})
	defer faultinject.Disarm(faultinject.ServerFrameTorn)
	// Stall every 11th request read briefly — a slow client under drain.
	faultinject.Arm(faultinject.ServerConnStall, func(hit int64, _ any) error {
		if hit%11 == 0 {
			time.Sleep(10 * time.Millisecond)
		}
		return nil
	})
	defer faultinject.Disarm(faultinject.ServerConnStall)

	const clients = 6
	const perClient = 15

	common := keysOf(1500, 100)
	var (
		mu        sync.Mutex
		succeeded int
		typedErrs int
		connErrs  int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.Dial(addr, client.Options{MaxRetries: 6, BaseBackoff: 2 * time.Millisecond})
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				seed := uint64(c*perClient + i + 1)
				local := append(append([]uint64(nil), common...), keysOf(20, seed^0xaaaa)...)
				remote := append(append([]uint64(nil), common...), keysOf(20, seed^0x5555)...)
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				res, err := cl.Reconcile(ctx, local, remote, seed, 1.5)
				cancel()
				mu.Lock()
				switch {
				case err == nil:
					if len(res.OnlyLocal) != 20 || len(res.OnlyRemote) != 20 {
						t.Errorf("client %d req %d: wrong difference %d/%d", c, i, len(res.OnlyLocal), len(res.OnlyRemote))
					}
					succeeded++
				case func() bool { var se *server.Error; return errors.As(err, &se) }():
					typedErrs++ // INTERNAL from an injected panic, SHUTTING_DOWN from the drain, ...
				default:
					connErrs++ // torn frame, dropped conn, dial after drain
				}
				mu.Unlock()
			}
		}(c)
	}

	// Drain the server while the load is still running: a graceful
	// SIGTERM mid-flight. In-flight requests finish, the rest get typed
	// refusals or connection errors — never hangs.
	drainErr := make(chan error, 1)
	go func() {
		time.Sleep(400 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainErr <- srv.Shutdown(ctx)
	}()

	wg.Wait()
	if err := <-drainErr; err != nil {
		t.Fatalf("mid-load Shutdown: %v", err)
	}

	total := succeeded + typedErrs + connErrs
	if total != clients*perClient {
		t.Fatalf("outcomes %d (ok=%d typed=%d conn=%d), want %d — some request had no terminal outcome",
			total, succeeded, typedErrs, connErrs, clients*perClient)
	}
	if succeeded == 0 {
		t.Fatal("no request succeeded under chaos")
	}

	st := srv.Stats()
	t.Logf("outcomes: ok=%d typed=%d conn=%d; stats: %+v", succeeded, typedErrs, connErrs, st)
	if st.RequestsAccepted != st.RepliesSent {
		t.Fatalf("reply invariant violated under chaos: accepted %d != replies %d", st.RequestsAccepted, st.RepliesSent)
	}
	if st.RequestsShed == 0 {
		t.Fatal("MaxJobs=2 with 6 concurrent clients shed nothing — admission is queueing, not shedding")
	}
	if st.RequestsShed != st.Runtime.JobsShed {
		t.Fatalf("shed accounting split: server %d, runtime %d", st.RequestsShed, st.Runtime.JobsShed)
	}
	if st.Runtime.JobsPanicked == 0 {
		t.Fatal("injected handler panics were not counted — isolation path untested")
	}
	if st.ConnPanics != 0 {
		t.Fatalf("ConnPanics = %d: a handler panic escaped to the read loop", st.ConnPanics)
	}
}

// TestReconcileRetryMetadataOverWire: with the first decode forced
// incomplete, the policy's headroom escalation runs server-side and the
// reply metadata shows it — two attempts, escalated headroom, and wire
// bytes accumulated across BOTH attempts (each retry re-ships an
// estimator and a bigger table, exactly as a real deployment would pay).
func TestReconcileRetryMetadataOverWire(t *testing.T) {
	_, addr := startServer(t, server.Options{
		Workers: 2,
		Policy:  repro.Policy{ReconcileRetries: 2},
	})
	faultinject.Arm(faultinject.ReconcileDecode, faultinject.FailFirst(1, nil))
	defer faultinject.Disarm(faultinject.ReconcileDecode)

	cl := client.Dial(addr, client.Options{})
	defer cl.Close()
	ctx := context.Background()

	common := keysOf(3000, 7)
	local := append(append([]uint64(nil), common...), keysOf(30, 8)...)
	remote := append(append([]uint64(nil), common...), keysOf(30, 9)...)

	escalated, err := cl.Reconcile(ctx, local, remote, 5, 1.5)
	if err != nil {
		t.Fatalf("Reconcile with forced first-attempt failure: %v", err)
	}
	if escalated.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", escalated.Attempts)
	}
	if escalated.Headroom != 1.75 {
		t.Fatalf("final headroom = %v, want 1.5 + one 0.25 step", escalated.Headroom)
	}
	if len(escalated.OnlyLocal) != 30 || len(escalated.OnlyRemote) != 30 {
		t.Fatalf("difference sides %d/%d, want 30/30", len(escalated.OnlyLocal), len(escalated.OnlyRemote))
	}

	// The failpoint only fails hit 1, so this run converges first try —
	// its wire bill is the single-attempt baseline the escalated run
	// must exceed (it paid for two estimator+table exchanges).
	single, err := cl.Reconcile(ctx, local, remote, 5, 1.5)
	if err != nil {
		t.Fatalf("baseline Reconcile: %v", err)
	}
	if single.Attempts != 1 {
		t.Fatalf("baseline Attempts = %d, want 1", single.Attempts)
	}
	if escalated.WireBytes <= single.WireBytes {
		t.Fatalf("escalated WireBytes %d not above single-attempt %d — retries are not accumulating wire cost",
			escalated.WireBytes, single.WireBytes)
	}
}
