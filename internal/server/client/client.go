// Package client is the companion client for the peeling wire server
// (repro/internal/server): one connection multiplexing concurrent
// requests by ID, with deadline propagation and disciplined retries.
//
// Retry classification is the point of the package:
//
//   - OVERLOADED replies are always retryable, for every op — a shed
//     request never started. The backoff honors the server's
//     retry-after hint, floored by capped exponential backoff with
//     jitter.
//   - Connection loss after a request was sent is ambiguous — the
//     server may or may not have executed it — so it is retried only
//     for idempotent ops. SwapImage is not idempotent (it advances the
//     table generation) and is never retried past that point.
//   - Dial failures and GOAWAY-before-send are retryable for any op:
//     the request provably never reached a handler.
//   - Every other typed reply (BAD_REQUEST, FAILED, INTERNAL,
//     DEADLINE_EXCEEDED, ...) is terminal: the server answered; asking
//     again with the same bytes buys nothing.
//
// Deadlines propagate: the remaining time on the caller's context rides
// in every request frame and becomes the handler's deadline on the
// server, so a client-side timeout bounds server-side work instead of
// abandoning it.
package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"repro/internal/server"
)

// Options configure Dial. The zero value retries up to 4 times with
// 10ms..1s exponential backoff and reads frames up to
// server.DefaultMaxFrame.
type Options struct {
	// MaxRetries bounds retry attempts after the first try; < 0
	// disables retries, 0 selects 4.
	MaxRetries int
	// BaseBackoff is the first retry's backoff; <= 0 selects 10ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff; <= 0 selects 1s.
	MaxBackoff time.Duration
	// MaxFrame caps reply frames; <= 0 selects server.DefaultMaxFrame.
	MaxFrame int
	// DialTimeout bounds each (re)dial; <= 0 selects 5s.
	DialTimeout time.Duration
}

func (o Options) maxRetries() int {
	if o.MaxRetries < 0 {
		return 0
	}
	if o.MaxRetries == 0 {
		return 4
	}
	return o.MaxRetries
}

func (o Options) baseBackoff() time.Duration {
	if o.BaseBackoff <= 0 {
		return 10 * time.Millisecond
	}
	return o.BaseBackoff
}

func (o Options) maxBackoff() time.Duration {
	if o.MaxBackoff <= 0 {
		return time.Second
	}
	return o.MaxBackoff
}

func (o Options) maxFrame() int {
	if o.MaxFrame <= 0 {
		return server.DefaultMaxFrame
	}
	return o.MaxFrame
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

// ErrClosed is returned by calls on a closed Client.
var ErrClosed = errors.New("client: closed")

// errConnLost marks replies abandoned because the transport died with
// the request possibly in flight — the ambiguous failure retried only
// for idempotent ops.
var errConnLost = errors.New("client: connection lost")

// errGoAway marks a send refused because the connection is draining;
// the request never reached a handler, so any op may retry on a fresh
// connection.
var errGoAway = errors.New("client: connection draining (GOAWAY)")

// Client is a connection to one peeling server, safe for concurrent
// use: requests multiplex over a single conn by request ID, and a
// dead or draining conn is redialed lazily on the next send.
type Client struct {
	addr string
	opts Options

	mu         sync.Mutex
	cc         *clientConn // current transport, nil until first send
	nextID     uint64
	closed     bool
	dialing    chan struct{}      // non-nil while a dial is in flight; closed when it settles
	dialCancel context.CancelFunc // interrupts the in-flight dial (Close)
}

// clientConn is one transport generation: a socket, its reader
// goroutine, and the reply channels of the requests in flight on it.
type clientConn struct {
	nc      net.Conn
	writeMu sync.Mutex
	wbuf    []byte

	mu       sync.Mutex
	pending  map[uint64]chan reply
	draining bool  // GOAWAY received: no new sends, pending replies still flow
	dead     error // non-nil once the reader exited; pending were flushed
}

type reply struct {
	typ     byte
	payload []byte
}

// Dial connects to a server. The connection is established lazily on
// the first call, so Dial itself cannot fail; per-call errors report
// unreachable servers.
func Dial(addr string, opts Options) *Client {
	return &Client{addr: addr, opts: opts}
}

// Close tears down the transport; in-flight calls fail with connection
// loss, and an in-progress redial is canceled rather than waited out.
// Safe to call twice.
func (c *Client) Close() error {
	c.mu.Lock()
	cc := c.cc
	c.cc = nil
	c.closed = true
	if c.dialCancel != nil {
		c.dialCancel()
	}
	c.mu.Unlock()
	if cc != nil {
		cc.nc.Close()
	}
	return nil
}

// conn returns the live transport, dialing a fresh one if the current
// generation is nil, dead, or draining. The dial itself runs with c.mu
// released — a slow or failing redial (up to DialTimeout) must not
// block every concurrent call, nor Close. Concurrent callers wait on
// the dialing channel instead of stacking duplicate dials, and closed/
// cc are re-checked once the dial settles.
func (c *Client) conn(ctx context.Context) (*clientConn, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		if cc := c.cc; cc != nil {
			cc.mu.Lock()
			usable := cc.dead == nil && !cc.draining
			cc.mu.Unlock()
			if usable {
				c.mu.Unlock()
				return cc, nil
			}
		}
		if ch := c.dialing; ch != nil {
			// Another call owns the dial; wait for it to settle, then
			// re-check from the top (it may have failed).
			c.mu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		dctx, dcancel := context.WithCancel(ctx)
		ch := make(chan struct{})
		c.dialing, c.dialCancel = ch, dcancel
		c.mu.Unlock()

		cc, err := dialConn(dctx, c.addr, c.opts)
		dcancel()

		c.mu.Lock()
		c.dialing, c.dialCancel = nil, nil
		closed := c.closed
		if err == nil && !closed {
			c.cc = cc
		}
		c.mu.Unlock()
		close(ch)
		if err != nil {
			return nil, err
		}
		if closed {
			// Close raced the dial; honor it rather than resurrecting a
			// transport the caller already tore down.
			cc.nc.Close()
			return nil, ErrClosed
		}
		return cc, nil
	}
}

// dialConn establishes one transport generation: socket, preface,
// reader goroutine. It holds no Client locks.
func dialConn(ctx context.Context, addr string, opts Options) (*clientConn, error) {
	d := net.Dialer{Timeout: opts.dialTimeout()}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	if _, err := nc.Write([]byte(server.Preface)); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: preface: %w", err)
	}
	cc := &clientConn{nc: nc, pending: make(map[uint64]chan reply)}
	//peelvet:allow nospawn -- per-connection reply demultiplexer: it owns the read side of the socket, terminates when the conn dies, and flushes every pending waiter on exit (no request waits forever)
	go cc.readLoop(opts.maxFrame())
	return cc, nil
}

// readLoop delivers reply frames to their waiting requests until the
// conn dies, then flushes every pending waiter with connection loss.
func (cc *clientConn) readLoop(maxFrame int) {
	var exitErr error
	for {
		typ, id, payload, err := readFrame(cc.nc, maxFrame)
		if err != nil {
			exitErr = err
			break
		}
		if typ == server.TypeGoAway {
			cc.mu.Lock()
			cc.draining = true
			cc.mu.Unlock()
			continue
		}
		cc.mu.Lock()
		ch := cc.pending[id]
		delete(cc.pending, id)
		cc.mu.Unlock()
		if ch != nil {
			ch <- reply{typ: typ, payload: payload}
		}
	}
	cc.nc.Close()
	cc.mu.Lock()
	cc.dead = exitErr
	for id, ch := range cc.pending {
		delete(cc.pending, id)
		close(ch) // closed channel = conn lost before a reply arrived
	}
	cc.mu.Unlock()
}

// readFrame mirrors the server's bounded frame reader.
func readFrame(r io.Reader, maxFrame int) (typ byte, id uint64, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	length := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	if length < 9 || length > maxFrame {
		return 0, 0, nil, fmt.Errorf("client: bad frame length %d", length)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, 0, nil, err
	}
	id = uint64(body[1]) | uint64(body[2])<<8 | uint64(body[3])<<16 | uint64(body[4])<<24 |
		uint64(body[5])<<32 | uint64(body[6])<<40 | uint64(body[7])<<48 | uint64(body[8])<<56
	return body[0], id, body[9:], nil
}

// roundTrip sends one request on the current transport and waits for
// its reply. errConnLost / errGoAway classify transport failures for
// the retry loop above.
func (c *Client) roundTrip(ctx context.Context, op byte, payload []byte) (reply, error) {
	cc, err := c.conn(ctx)
	if err != nil {
		return reply{}, err
	}

	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()

	ch := make(chan reply, 1)
	cc.mu.Lock()
	if cc.dead != nil || cc.draining {
		// Either way the request never launched: retryable for any op.
		cc.mu.Unlock()
		return reply{}, errGoAway
	}
	cc.pending[id] = ch
	cc.mu.Unlock()

	cc.writeMu.Lock()
	cc.wbuf = appendFrame(cc.wbuf[:0], op, id, payload)
	_, werr := cc.nc.Write(cc.wbuf)
	cc.writeMu.Unlock()
	if werr != nil {
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		// The write failed part-way into the kernel at worst; the server
		// may still have the full frame. Ambiguous: conn-lost semantics.
		return reply{}, errConnLost
	}

	select {
	case rep, ok := <-ch:
		if !ok {
			return reply{}, errConnLost
		}
		return rep, nil
	case <-ctx.Done():
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		return reply{}, ctx.Err()
	}
}

// appendFrame mirrors the server's frame builder.
func appendFrame(buf []byte, typ byte, id uint64, payload []byte) []byte {
	n := uint32(1 + 8 + len(payload))
	buf = append(buf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24), typ)
	buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24), byte(id>>32), byte(id>>40), byte(id>>48), byte(id>>56))
	return append(buf, payload...)
}

// call runs the retry loop around roundTrip: OVERLOADED and
// never-launched failures retry with backoff for every op; ambiguous
// connection loss retries only if idempotent is true; typed replies
// other than OVERLOADED are terminal.
func (c *Client) call(ctx context.Context, op byte, payload []byte, idempotent bool) ([]byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		rep, err := c.roundTrip(ctx, op, payload)
		retryable := false
		var wait time.Duration
		switch {
		case err == nil && rep.typ == server.TypeResult:
			return rep.payload, nil
		case err == nil && rep.typ == server.TypeError:
			serr, perr := server.ParseError(rep.payload)
			if perr != nil {
				return nil, perr
			}
			lastErr = serr
			if serr.Code == server.CodeOverloaded {
				retryable = true // shed before execution: safe for every op
				wait = serr.RetryAfter
			}
		case err == nil:
			return nil, fmt.Errorf("client: unexpected reply type %#x", rep.typ)
		case errors.Is(err, errGoAway):
			lastErr, retryable = server.ErrShuttingDown, true // never launched
		case errors.Is(err, errConnLost):
			lastErr, retryable = err, idempotent // ambiguous: maybe executed
		case errors.Is(err, ErrClosed), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return nil, err
		default:
			lastErr, retryable = err, true // dial failure: never launched
		}
		if !retryable || attempt >= c.opts.maxRetries() {
			return nil, lastErr
		}
		if err := sleepBackoff(ctx, c.opts, attempt, wait); err != nil {
			return nil, err
		}
	}
}

// sleepBackoff waits for max(server hint, capped exponential backoff)
// with ±50% jitter, respecting ctx.
func sleepBackoff(ctx context.Context, opts Options, attempt int, hint time.Duration) error {
	d := opts.baseBackoff() << uint(attempt)
	if max := opts.maxBackoff(); d > max || d <= 0 {
		d = max
	}
	if hint > d {
		d = hint
	}
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1)) // [d/2, d]
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// deadlineField computes the request's relative-deadline field from
// ctx — the wire carries remaining milliseconds, so the server's
// handler inherits the caller's deadline.
func deadlineField(ctx context.Context) uint32 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	return server.DeadlineMs(time.Until(dl))
}

// Reconcile runs the two-set reconciliation on the server and returns
// the difference sides plus the server's retry metadata (attempts and
// wire bytes across headroom escalation).
func (c *Client) Reconcile(ctx context.Context, local, remote []uint64, seed uint64, headroom float64) (*server.ReconcileResult, error) {
	p, err := c.call(ctx, server.OpReconcile, server.EncodeReconcileReq(deadlineField(ctx), seed, headroom, local, remote), true)
	if err != nil {
		return nil, err
	}
	return server.ParseReconcileResult(p)
}

// Decode ships an IBLT sketch (iblt wire format) and returns the
// recovered difference.
func (c *Client) Decode(ctx context.Context, sketch []byte) (*server.DecodeResult, error) {
	p, err := c.call(ctx, server.OpDecode, server.EncodeDecodeReq(deadlineField(ctx), sketch), true)
	if err != nil {
		return nil, err
	}
	return server.ParseDecodeResult(p)
}

// BuildMPHF builds a minimal perfect hash function over keys on the
// server and returns its flat image bytes.
func (c *Client) BuildMPHF(ctx context.Context, keys []uint64, seed uint64) ([]byte, error) {
	p, err := c.call(ctx, server.OpBuildMPHF, server.EncodeBuildReq(deadlineField(ctx), seed, keys), true)
	if err != nil {
		return nil, err
	}
	return server.ParseImagePayload(p)
}

// Lookup serves keys against the server's static table; values[i]
// answers keys[i], all from the returned generation.
func (c *Client) Lookup(ctx context.Context, keys []uint64) (*server.LookupResult, error) {
	p, err := c.call(ctx, server.OpLookup, server.EncodeLookupReq(deadlineField(ctx), keys), true)
	if err != nil {
		return nil, err
	}
	return server.ParseLookupResult(p)
}

// SwapImage installs a flat image as the server table's next
// generation. NOT idempotent: connection loss after the send is
// reported as-is, never silently retried — the caller must check the
// table generation before resending.
func (c *Client) SwapImage(ctx context.Context, image []byte) (generation uint64, err error) {
	p, err := c.call(ctx, server.OpSwapImage, server.EncodeSwapReq(deadlineField(ctx), image), false)
	if err != nil {
		return 0, err
	}
	return server.ParseUint64Payload(p)
}

// Estimate ships two marshaled strata estimators and returns the
// server's difference-size estimate.
func (c *Client) Estimate(ctx context.Context, localEstimator, remoteEstimator []byte) (uint64, error) {
	p, err := c.call(ctx, server.OpEstimate, server.EncodeEstimateReq(deadlineField(ctx), localEstimator, remoteEstimator), true)
	if err != nil {
		return 0, err
	}
	return server.ParseUint64Payload(p)
}
