package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"repro/internal/branching"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/recurrence"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/threshold"
)

// EmpiricalNuConfig parameterizes the *measured* Theorem 5 check: average
// parallel-peeling rounds on real G^r_{n,cn} instances as the density
// approaches the threshold from below, complementing the idealized
// recurrence sweep (RunNuSweep).
type EmpiricalNuConfig struct {
	K, R   int
	N      int
	Nus    []float64
	Trials int
	Seed   uint64
}

// DefaultEmpiricalNu returns a sweep over one decade of gaps. The floor
// on ν keeps finite-size effects (ν ≪ n^{-1/2} washes out the plateau)
// from dominating at the default n.
func DefaultEmpiricalNu() EmpiricalNuConfig {
	return EmpiricalNuConfig{
		K: 2, R: 4, N: 1 << 20,
		Nus:    []float64{0.04, 0.02, 0.01, 0.005},
		Trials: 5,
		Seed:   2014,
	}
}

// EmpiricalNuRow is one gap sample.
type EmpiricalNuRow struct {
	Nu         float64
	C          float64
	MeanRounds float64
	Failed     int
	Predicted  int // idealized recurrence rounds at the same n
}

// EmpiricalNuResult carries the sweep.
type EmpiricalNuResult struct {
	Config EmpiricalNuConfig
	CStar  float64
	Rows   []EmpiricalNuRow
}

// RunEmpiricalNu executes the measured sweep.
func RunEmpiricalNu(cfg EmpiricalNuConfig) *EmpiricalNuResult {
	cstar, _ := threshold.Threshold(cfg.K, cfg.R)
	res := &EmpiricalNuResult{Config: cfg, CStar: cstar}
	for ni, nu := range cfg.Nus {
		c := cstar - nu
		m := int(c * float64(cfg.N))
		failed := 0
		rounds := stats.Trials(cfg.Trials, cfg.Seed^uint64(ni*7919), func(trial int, gen *rng.RNG) float64 {
			g := hypergraph.Uniform(cfg.N, m, cfg.R, gen)
			r := core.Parallel(g, cfg.K, core.Options{})
			if !r.Empty() {
				failed++
			}
			return float64(r.Rounds)
		})
		pred, _ := must2(recurrence.Params{K: cfg.K, R: cfg.R, C: c}.PredictRounds(float64(cfg.N), 1<<20))
		res.Rows = append(res.Rows, EmpiricalNuRow{
			Nu: nu, C: c,
			MeanRounds: stats.Summarize(rounds).Mean,
			Failed:     failed,
			Predicted:  pred,
		})
	}
	return res
}

// Render writes the measured sweep.
func (r *EmpiricalNuResult) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# c* = %.5f, n = %d\n", r.CStar, r.Config.N)
	fmt.Fprintf(tw, "nu\tc\tmeasured rounds\trecurrence rounds\tfailed\n")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%.4g\t%.6f\t%.2f\t%d\t%d\n",
			row.Nu, row.C, row.MeanRounds, row.Predicted, row.Failed)
	}
	tw.Flush()
}

// ModelValidationConfig parameterizes the three-way consistency check
// between (a) the Monte Carlo branching-tree model of Section 3.1,
// (b) the closed-form recurrence, and (c) hypergraph simulation — the
// full modeling chain the paper's proofs formalize.
type ModelValidationConfig struct {
	K, R       int
	C          float64
	Rounds     int
	TreeTrials int
	N          int // hypergraph size
	Seed       uint64
}

// DefaultModelValidation returns a below-threshold configuration.
func DefaultModelValidation() ModelValidationConfig {
	return ModelValidationConfig{K: 2, R: 4, C: 0.7, Rounds: 6, TreeTrials: 30000, N: 1 << 20, Seed: 2014}
}

// ModelValidationRow is one round's three estimates of λ_t.
type ModelValidationRow struct {
	Round      int
	Tree       float64 // Monte Carlo branching process
	Recurrence float64 // closed form
	Graph      float64 // survivor fraction on a G^r_{n,cn} instance
}

// RunModelValidation computes the comparison.
func RunModelValidation(cfg ModelValidationConfig) []ModelValidationRow {
	p := branching.Params{K: cfg.K, R: cfg.R, C: cfg.C}
	rec := recurrence.Params{K: cfg.K, R: cfg.R, C: cfg.C}
	trace := must(rec.Trace(cfg.Rounds))
	g := hypergraph.Uniform(cfg.N, int(cfg.C*float64(cfg.N)), cfg.R, rng.New(cfg.Seed))
	sim := core.Parallel(g, cfg.K, core.Options{MaxRounds: cfg.Rounds})

	rows := make([]ModelValidationRow, cfg.Rounds)
	for t := 1; t <= cfg.Rounds; t++ {
		graph := float64(sim.CoreVertices)
		if t-1 < len(sim.SurvivorHistory) {
			graph = float64(sim.SurvivorHistory[t-1])
		}
		rows[t-1] = ModelValidationRow{
			Round:      t,
			Tree:       p.SurvivalProbability(t, cfg.TreeTrials, cfg.Seed^uint64(t)),
			Recurrence: trace[t-1].Lambda,
			Graph:      graph / float64(cfg.N),
		}
	}
	return rows
}

// MaxPairwiseGap returns the largest |a − b| across the three estimates
// over all rounds — the headline validation number.
func MaxPairwiseGap(rows []ModelValidationRow) float64 {
	worst := 0.0
	for _, r := range rows {
		for _, d := range []float64{
			math.Abs(r.Tree - r.Recurrence),
			math.Abs(r.Tree - r.Graph),
			math.Abs(r.Recurrence - r.Graph),
		} {
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// RenderModelValidation writes the three-way table.
func RenderModelValidation(w io.Writer, rows []ModelValidationRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "t\ttree MC\trecurrence\tgraph sim\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\n", r.Round, r.Tree, r.Recurrence, r.Graph)
	}
	fmt.Fprintf(tw, "# max pairwise gap: %.4f\n", MaxPairwiseGap(rows))
	tw.Flush()
}
