package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/iblt"
	"repro/internal/rng"
)

// IBLTConfig parameterizes the Tables 3-4 reproduction: serial vs
// parallel IBLT insert and recovery times at loads straddling the
// recovery threshold. The paper uses 2^24 cells on a Tesla C2070; the
// default here is 2^21 (the paper notes shapes are stable beyond ~2^19),
// scalable via the Cells field.
type IBLTConfig struct {
	R      int       // hash functions / subtables (paper: 3 and 4)
	Cells  int       // total cells (paper: 16.8M = 2^24)
	Loads  []float64 // keys = load × cells (paper: 0.75 and 0.83)
	Trials int       // timing repetitions (paper: 10)
	Seed   uint64
}

// DefaultIBLT returns a laptop-scaled Tables 3-4 configuration for the
// given arity.
func DefaultIBLT(r int) IBLTConfig {
	return IBLTConfig{R: r, Cells: 1 << 21, Loads: []float64{0.75, 0.83}, Trials: 10, Seed: 2014}
}

// IBLTRow is one load row of Table 3/4.
type IBLTRow struct {
	Load             float64
	Cells            int
	Keys             int
	PctRecovered     float64       // fraction of keys recovered (parallel)
	ParRecoveryTime  time.Duration // mean
	SerRecoveryTime  time.Duration
	ParInsertTime    time.Duration
	SerInsertTime    time.Duration
	RecoveryRounds   int // rounds used by the final parallel recovery
	RecoverySpeedup  float64
	InsertionSpeedup float64
}

// IBLTResult carries the timing table.
type IBLTResult struct {
	Config IBLTConfig
	Rows   []IBLTRow
}

// RunIBLT executes the benchmark. Serial timings use Insert/Decode;
// parallel timings use InsertAll/DecodeParallel. All timings are means
// over cfg.Trials runs on fresh tables with identical key sets.
func RunIBLT(cfg IBLTConfig) *IBLTResult {
	res := &IBLTResult{Config: cfg}
	gen := rng.New(cfg.Seed)
	for _, load := range cfg.Loads {
		nKeys := int(load * float64(cfg.Cells))
		keys := make([]uint64, nKeys)
		for i := range keys {
			for keys[i] == 0 {
				keys[i] = gen.Uint64()
			}
		}
		row := IBLTRow{Load: load, Cells: cfg.Cells, Keys: nKeys}
		var parIns, serIns, parRec, serRec time.Duration
		var recovered int
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := cfg.Seed + uint64(trial)

			tbl := iblt.New(cfg.Cells, cfg.R, seed)
			start := time.Now()
			tbl.InsertAll(keys)
			parIns += time.Since(start)
			start = time.Now()
			pres := tbl.DecodeParallel()
			parRec += time.Since(start)
			recovered = len(pres.Added)
			row.RecoveryRounds = pres.Rounds

			tbl = iblt.New(cfg.Cells, cfg.R, seed)
			start = time.Now()
			for _, k := range keys {
				tbl.Insert(k)
			}
			serIns += time.Since(start)
			start = time.Now()
			tbl.Decode()
			serRec += time.Since(start)
		}
		n := time.Duration(cfg.Trials)
		row.ParInsertTime = parIns / n
		row.SerInsertTime = serIns / n
		row.ParRecoveryTime = parRec / n
		row.SerRecoveryTime = serRec / n
		row.PctRecovered = float64(recovered) / float64(nKeys)
		if row.ParRecoveryTime > 0 {
			row.RecoverySpeedup = float64(row.SerRecoveryTime) / float64(row.ParRecoveryTime)
		}
		if row.ParInsertTime > 0 {
			row.InsertionSpeedup = float64(row.SerInsertTime) / float64(row.ParInsertTime)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render writes the result in the paper's Table 3/4 layout (with speedup
// columns replacing the absolute-hardware comparison).
func (t *IBLTResult) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Load\tCells\t%%Recovered\tPar Recovery\tSer Recovery\tPar Insert\tSer Insert\tRec Speedup\tIns Speedup\n")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%.2f\t%d\t%.1f%%\t%v\t%v\t%v\t%v\t%.1fx\t%.1fx\n",
			r.Load, r.Cells, 100*r.PctRecovered,
			r.ParRecoveryTime.Round(time.Microsecond), r.SerRecoveryTime.Round(time.Microsecond),
			r.ParInsertTime.Round(time.Microsecond), r.SerInsertTime.Round(time.Microsecond),
			r.RecoverySpeedup, r.InsertionSpeedup)
	}
	tw.Flush()
}
