package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunScanAblation(t *testing.T) {
	cfg := ScanAblationConfig{K: 2, R: 4, C: 0.7, Ns: []int{1 << 14, 1 << 15}, Trials: 2, Seed: 3}
	rows := RunScanAblation(cfg)
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Frontier <= 0 || r.FullScan <= 0 {
			t.Errorf("non-positive timing: %+v", r)
		}
		if r.Rounds < 8 || r.Rounds > 16 {
			t.Errorf("implausible rounds %d", r.Rounds)
		}
	}
	var buf bytes.Buffer
	RenderScanAblation(&buf, rows)
	if !strings.Contains(buf.String(), "full/frontier") {
		t.Error("render missing header")
	}
}

func TestRunCuckooSweep(t *testing.T) {
	cfg := CuckooSweepConfig{
		R: 3, N: 15000,
		Loads:    []float64{0.75, 0.87, 0.95},
		Trials:   4,
		MaxKicks: 1500,
		Seed:     5,
	}
	rows := RunCuckooSweep(cfg)
	// Load 0.75: both succeed. 0.87: walk succeeds, peel fails.
	// 0.95: both fail.
	if rows[0].PeelSuccess != 1 || rows[0].WalkSuccess != 1 {
		t.Errorf("load 0.75: %+v", rows[0])
	}
	if rows[1].PeelSuccess != 0 || rows[1].WalkSuccess != 1 {
		t.Errorf("load 0.87: %+v", rows[1])
	}
	if rows[2].WalkSuccess != 0 {
		t.Errorf("load 0.95: %+v", rows[2])
	}
	var buf bytes.Buffer
	RenderCuckooSweep(&buf, rows)
	if !strings.Contains(buf.String(), "random-walk") {
		t.Error("render missing header")
	}
}

func TestRunXORSATSweep(t *testing.T) {
	cfg := XORSATSweepConfig{
		R: 3, N: 8000,
		Cs:     []float64{0.70, 0.87, 1.00},
		Trials: 3,
		Seed:   7,
	}
	rows := RunXORSATSweep(cfg)
	// c=0.70: peel-only and SAT. c=0.87: SAT via Gauss, no peel-only.
	// c=1.00: UNSAT.
	if rows[0].PeelOnlyRate != 1 || rows[0].SatRate != 1 {
		t.Errorf("c=0.70: %+v", rows[0])
	}
	if rows[1].PeelOnlyRate != 0 || rows[1].SatRate != 1 || rows[1].MeanCoreEqs == 0 {
		t.Errorf("c=0.87: %+v", rows[1])
	}
	if rows[2].SatRate != 0 {
		t.Errorf("c=1.00: %+v", rows[2])
	}
	var buf bytes.Buffer
	RenderXORSATSweep(&buf, rows)
	if !strings.Contains(buf.String(), "peel-only") {
		t.Error("render missing header")
	}
}

func TestRunEnsembleComparison(t *testing.T) {
	rows := RunEnsembleComparison(30000, 11)
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	byName := map[string]EnsembleRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Density 1.0 everywhere (within matching remainder).
	for _, r := range rows {
		if r.Density < 0.97 || r.Density > 1.03 {
			t.Errorf("%s: density %.3f, want ~1.0", r.Name, r.Density)
		}
	}
	// Regular: its own core. Poisson at density 1.0 > 0.818: partial
	// core. Bimodal: also a core, but never larger than regular's.
	if byName["3-regular"].CoreFraction < 0.99 {
		t.Errorf("regular core fraction %.3f, want ~1", byName["3-regular"].CoreFraction)
	}
	if f := byName["poisson(3)"].CoreFraction; f < 0.2 || f > 0.95 {
		t.Errorf("poisson core fraction %.3f, want partial", f)
	}
	if byName["bimodal 1/5"].CoreFraction >= byName["3-regular"].CoreFraction {
		t.Error("bimodal core should be below regular's")
	}
	var buf bytes.Buffer
	RenderEnsembleComparison(&buf, rows)
	if !strings.Contains(buf.String(), "3-regular") {
		t.Error("render missing rows")
	}
}

func TestRunDecoderAblation(t *testing.T) {
	cfg := DecoderAblationConfig{R: 3, Cells: 1 << 14, Load: 0.6, Trials: 2, Seed: 9}
	res := RunDecoderAblation(cfg)
	if res.Serial <= 0 || res.FullScan <= 0 || res.Frontier <= 0 {
		t.Errorf("non-positive timing: %+v", res)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "frontier") {
		t.Error("render missing rows")
	}
}
