package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"repro/internal/recurrence"
	"repro/internal/stats"
	"repro/internal/threshold"
)

// Figure1Config parameterizes the Figure 1 reproduction: the idealized
// β_i trajectory (Equation (C.1)) at densities just below the threshold,
// showing the Θ(√(1/ν)) plateau near x*.
type Figure1Config struct {
	K, R      int
	Cs        []float64 // paper: 0.77 and 0.772 (c*_{2,4} ≈ 0.77228)
	MaxRounds int
	StopBelow float64 // trace cut-off once β falls below this (0 = run full MaxRounds)
}

// DefaultFigure1 returns the paper's configuration.
func DefaultFigure1() Figure1Config {
	return Figure1Config{K: 2, R: 4, Cs: []float64{0.77, 0.772}, MaxRounds: 400, StopBelow: 1e-6}
}

// Figure1Series is one density's β trace.
type Figure1Series struct {
	C     float64
	Betas []float64
}

// Figure1Result carries the traces plus the threshold for reference.
type Figure1Result struct {
	Config Figure1Config
	CStar  float64
	XStar  float64
	Series []Figure1Series
}

// RunFigure1 computes the traces.
func RunFigure1(cfg Figure1Config) *Figure1Result {
	cstar, xstar := threshold.Threshold(cfg.K, cfg.R)
	res := &Figure1Result{Config: cfg, CStar: cstar, XStar: xstar}
	for _, c := range cfg.Cs {
		p := recurrence.Params{K: cfg.K, R: cfg.R, C: c}
		full := must(p.BetaTrace(cfg.MaxRounds))
		if cfg.StopBelow > 0 {
			for i, b := range full {
				if b < cfg.StopBelow {
					full = full[:i+1]
					break
				}
			}
		}
		res.Series = append(res.Series, Figure1Series{C: c, Betas: full})
	}
	return res
}

// PlateauLength returns the number of rounds series si spends with β
// within delta of x*, the visual plateau in Figure 1.
func (f *Figure1Result) PlateauLength(si int, delta float64) int {
	count := 0
	for _, b := range f.Series[si].Betas {
		if math.Abs(b-f.XStar) < delta {
			count++
		}
	}
	return count
}

// Render writes the traces as aligned columns (round, one β column per
// density), ready for plotting.
func (f *Figure1Result) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# c* = %.5f, x* = %.5f\n", f.CStar, f.XStar)
	fmt.Fprintf(tw, "round")
	for _, s := range f.Series {
		fmt.Fprintf(tw, "\tbeta(c=%.4g)", s.C)
	}
	fmt.Fprintln(tw)
	maxLen := 0
	for _, s := range f.Series {
		if len(s.Betas) > maxLen {
			maxLen = len(s.Betas)
		}
	}
	for i := 0; i < maxLen; i++ {
		fmt.Fprintf(tw, "%d", i+1)
		for _, s := range f.Series {
			if i < len(s.Betas) {
				fmt.Fprintf(tw, "\t%.6g", s.Betas[i])
			} else {
				fmt.Fprintf(tw, "\t")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// NuSweepConfig parameterizes the Theorem 5 check: rounds to collapse as
// a function of the gap ν = c* − c, which should scale as Θ(√(1/ν)) plus
// the log log n term.
type NuSweepConfig struct {
	K, R      int
	Nus       []float64
	N         float64 // instance size for the PredictRounds term
	MaxRounds int
}

// DefaultNuSweep returns a geometric ν sweep spanning two decades.
func DefaultNuSweep() NuSweepConfig {
	return NuSweepConfig{
		K: 2, R: 4,
		Nus:       []float64{0.04, 0.02, 0.01, 0.005, 0.0025, 0.00125, 0.000625},
		N:         1e6,
		MaxRounds: 1 << 20,
	}
}

// NuSweepRow is one gap sample.
type NuSweepRow struct {
	Nu     float64
	C      float64
	Rounds int // idealized rounds until expected survivors < 1/2 at size N
}

// NuSweepResult carries the sweep and its power-law fit.
type NuSweepResult struct {
	Config NuSweepConfig
	CStar  float64
	Rows   []NuSweepRow
	// FitSlope is the slope of log(rounds) vs log(1/ν); Theorem 5
	// predicts it approaches 1/2 as ν -> 0.
	FitSlope float64
}

// RunNuSweep computes the idealized round counts across the gap sweep.
func RunNuSweep(cfg NuSweepConfig) *NuSweepResult {
	cstar, _ := threshold.Threshold(cfg.K, cfg.R)
	res := &NuSweepResult{Config: cfg, CStar: cstar}
	var lx, ly []float64
	for _, nu := range cfg.Nus {
		c := cstar - nu
		p := recurrence.Params{K: cfg.K, R: cfg.R, C: c}
		rounds, ok := must2(p.PredictRounds(cfg.N, cfg.MaxRounds))
		if !ok {
			rounds = cfg.MaxRounds
		}
		res.Rows = append(res.Rows, NuSweepRow{Nu: nu, C: c, Rounds: rounds})
		lx = append(lx, math.Log(1/nu))
		ly = append(ly, math.Log(float64(rounds)))
	}
	res.FitSlope, _ = stats.LinearFit(lx, ly)
	return res
}

// Render writes the ν sweep.
func (r *NuSweepResult) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# c* = %.5f; log-log fit slope = %.3f (Theorem 5 predicts -> 0.5)\n", r.CStar, r.FitSlope)
	fmt.Fprintf(tw, "nu\tc\trounds\tsqrt(1/nu)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%.6g\t%.6f\t%d\t%.1f\n", row.Nu, row.C, row.Rounds, math.Sqrt(1/row.Nu))
	}
	tw.Flush()
}

// ThresholdTableRow is one (k, r) threshold entry.
type ThresholdTableRow struct {
	K, R  int
	CStar float64
	XStar float64
}

// ThresholdTable computes c*(k,r) over a (k, r) grid (the Section 2
// reference values).
func ThresholdTable(ks, rs []int) []ThresholdTableRow {
	var rows []ThresholdTableRow
	for _, k := range ks {
		for _, r := range rs {
			if k == 2 && r == 2 {
				continue // excluded case
			}
			cs, xs := threshold.Threshold(k, r)
			rows = append(rows, ThresholdTableRow{K: k, R: r, CStar: cs, XStar: xs})
		}
	}
	return rows
}

// RenderThresholdTable writes the grid.
func RenderThresholdTable(w io.Writer, rows []ThresholdTableRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "k\tr\tc*(k,r)\tx*\n")
	for _, row := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.6f\t%.6f\n", row.K, row.R, row.CStar, row.XStar)
	}
	tw.Flush()
}
