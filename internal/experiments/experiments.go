// Package experiments contains one runner per table and figure in the
// evaluation of Jiang, Mitzenmacher, and Thaler, "Parallel Peeling
// Algorithms" (SPAA 2014), plus the Theorem 5 gap-dependence sweep and
// the round-growth fits that check Theorems 1 and 3. Each runner takes an
// explicit config (so tests run scaled-down versions and the cmd/
// binaries run the paper's full sizes), returns typed rows, and renders a
// table matching the paper's layout.
package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/recurrence"
	"repro/internal/rng"
	"repro/internal/stats"
)

// must unwraps a (value, error) pair from the recurrence package. The
// experiment runners are application code driven by hardcoded parameter
// tables, where an invalid Params is a programming error in the config,
// not an input to degrade on — so the error surfaces as a panic here, at
// the application layer, keeping the recurrence library itself
// panic-free.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// must2 is must for three-value returns like PredictRounds: it panics on
// a non-nil error and passes the first two results through.
func must2[A, B any](a A, b B, err error) (A, B) {
	if err != nil {
		panic(err)
	}
	return a, b
}

// Table1Config parameterizes the Table 1 sweep: average parallel peeling
// rounds and failure counts as n grows, for several edge densities.
type Table1Config struct {
	K, R   int
	Cs     []float64 // edge densities (paper: 0.70, 0.75, 0.80, 0.85)
	Ns     []int     // vertex counts (paper: 10000 ... 2560000, doubling)
	Trials int       // trials per (c, n) pair (paper: 1000)
	Seed   uint64
}

// DefaultTable1 returns the paper's configuration scaled by size (1 = the
// full Table 1; smaller sizes shrink Ns and Trials proportionally so the
// sweep stays laptop-friendly).
func DefaultTable1() Table1Config {
	return Table1Config{
		K: 2, R: 4,
		Cs:     []float64{0.70, 0.75, 0.80, 0.85},
		Ns:     []int{10000, 20000, 40000, 80000, 160000, 320000, 640000, 1280000, 2560000},
		Trials: 1000,
		Seed:   2014,
	}
}

// Table1Cell is one (n, c) aggregate.
type Table1Cell struct {
	C          float64
	Failed     int     // trials ending with a non-empty k-core
	MeanRounds float64 // mean productive rounds
}

// Table1Row is one n row across all densities.
type Table1Row struct {
	N     int
	Cells []Table1Cell
}

// Table1Result carries the rows plus growth-law fits (Theorems 1 and 3):
// below-threshold columns are fit against log log n, above-threshold
// columns against log n.
type Table1Result struct {
	Config Table1Config
	Rows   []Table1Row
}

// RunTable1 executes the sweep. Each (c, n, trial) triple gets its own
// deterministic RNG stream, so results are reproducible bit-for-bit.
func RunTable1(cfg Table1Config) *Table1Result {
	res := &Table1Result{Config: cfg}
	for _, n := range cfg.Ns {
		row := Table1Row{N: n}
		for ci, c := range cfg.Cs {
			m := int(c * float64(n))
			failed := 0
			rounds := stats.Trials(cfg.Trials, cfg.Seed^uint64(ci*1000003+n), func(trial int, gen *rng.RNG) float64 {
				g := hypergraph.Uniform(n, m, cfg.R, gen)
				r := core.Parallel(g, cfg.K, core.Options{})
				if !r.Empty() {
					failed++
				}
				return float64(r.Rounds)
			})
			row.Cells = append(row.Cells, Table1Cell{
				C:          c,
				Failed:     failed,
				MeanRounds: stats.Summarize(rounds).Mean,
			})
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// GrowthFit returns the least-squares slope of mean rounds against
// f(n) for column ci, where f is log log n below the threshold and log n
// above (pass the appropriate flag). It quantifies the Theorem 1 vs
// Theorem 3 growth-law split.
func (t *Table1Result) GrowthFit(ci int, aboveThreshold bool) (slope float64) {
	var xs, ys []float64
	for _, row := range t.Rows {
		x := math.Log(math.Log(float64(row.N)))
		if aboveThreshold {
			x = math.Log(float64(row.N))
		}
		xs = append(xs, x)
		ys = append(ys, row.Cells[ci].MeanRounds)
	}
	slope, _ = stats.LinearFit(xs, ys)
	return slope
}

// Render writes the result in the paper's Table 1 layout.
func (t *Table1Result) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "n")
	for _, c := range t.Config.Cs {
		fmt.Fprintf(tw, "\tc=%.2f Failed\tRounds", c)
	}
	fmt.Fprintln(tw)
	for _, row := range t.Rows {
		fmt.Fprintf(tw, "%d", row.N)
		for _, cell := range row.Cells {
			fmt.Fprintf(tw, "\t%d\t%.3f", cell.Failed, cell.MeanRounds)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Table2Config parameterizes the recurrence-vs-simulation comparison:
// survivors after each round, predicted by Equation (3.1) and measured.
type Table2Config struct {
	K, R   int
	N      int
	Cs     []float64 // paper: 0.70 and 0.85
	Rounds int       // rows per density (paper: 20)
	Trials int       // paper: 1000
	Seed   uint64
}

// DefaultTable2 returns the paper's configuration (n = 1e6, 1000 trials).
func DefaultTable2() Table2Config {
	return Table2Config{K: 2, R: 4, N: 1000000, Cs: []float64{0.70, 0.85}, Rounds: 20, Trials: 1000, Seed: 2014}
}

// Table2Series is the per-density comparison.
type Table2Series struct {
	C          float64
	Prediction []float64 // λ_t · n
	Experiment []float64 // mean survivors after round t
}

// Table2Result carries one series per density.
type Table2Result struct {
	Config Table2Config
	Series []Table2Series
}

// RunTable2 executes the comparison.
func RunTable2(cfg Table2Config) *Table2Result {
	res := &Table2Result{Config: cfg}
	for ci, c := range cfg.Cs {
		p := recurrence.Params{K: cfg.K, R: cfg.R, C: c}
		trace := must(p.Trace(cfg.Rounds))
		series := Table2Series{C: c}
		for _, s := range trace {
			series.Prediction = append(series.Prediction, s.Lambda*float64(cfg.N))
		}
		sums := make([]float64, cfg.Rounds)
		m := int(c * float64(cfg.N))
		for trial := 0; trial < cfg.Trials; trial++ {
			gen := rng.NewStream(cfg.Seed^uint64(1000+ci), uint64(trial))
			g := hypergraph.Uniform(cfg.N, m, cfg.R, gen)
			r := core.Parallel(g, cfg.K, core.Options{MaxRounds: cfg.Rounds})
			for t := 0; t < cfg.Rounds; t++ {
				if t < len(r.SurvivorHistory) {
					sums[t] += float64(r.SurvivorHistory[t])
				} else {
					sums[t] += float64(r.CoreVertices)
				}
			}
		}
		for t := 0; t < cfg.Rounds; t++ {
			series.Experiment = append(series.Experiment, sums[t]/float64(cfg.Trials))
		}
		res.Series = append(res.Series, series)
	}
	return res
}

// MaxRelativeError returns the largest |prediction − experiment| /
// max(experiment, floor) across rounds of series si, the figure of merit
// for "the recurrence describes the process remarkably well".
func (t *Table2Result) MaxRelativeError(si int, floor float64) float64 {
	s := t.Series[si]
	worst := 0.0
	for i := range s.Prediction {
		den := math.Max(s.Experiment[i], floor)
		if den <= 0 {
			continue
		}
		if rel := math.Abs(s.Prediction[i]-s.Experiment[i]) / den; rel > worst {
			worst = rel
		}
	}
	return worst
}

// Render writes the result in the paper's Table 2 layout.
func (t *Table2Result) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, s := range t.Series {
		fmt.Fprintf(tw, "c = %.2f\t\t\n", s.C)
		fmt.Fprintf(tw, "t\tPrediction\tExperiment\n")
		for i := range s.Prediction {
			fmt.Fprintf(tw, "%d\t%.5g\t%.5g\n", i+1, s.Prediction[i], s.Experiment[i])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
