package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/mphf"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// BuildPathConfig parameterizes the build-path ablation surfaced by
// cmd/ablations -build: on the MPHF-shaped instance (3-partite, density
// 1/γ just below c*(2,3)) it times the two sources of an ordered peel —
// the sequential queue peel vs the ordered round-synchronous peel
// (core.ParallelOrder) at 1 worker and at the configured pool size —
// and the end-to-end mphf build that consumes it.
type BuildPathConfig struct {
	Ns      []int // key counts
	Gamma   float64
	Seed    uint64
	Reps    int // timing repetitions; the best rep is reported
	Workers int // parallel pool size; 0 = the default pool's size
}

// DefaultBuildPath returns a sweep over serving-sized key sets at the
// standard γ = 1.23.
func DefaultBuildPath() BuildPathConfig {
	return BuildPathConfig{
		Ns:    []int{1 << 16, 1 << 18, 1 << 20},
		Gamma: mphf.DefaultGamma,
		Seed:  2014,
		Reps:  3,
	}
}

// BuildPathRow is one key-count's timings.
type BuildPathRow struct {
	Keys     int
	SeqPeel  time.Duration // core.Sequential on the key hypergraph
	OrdPeel1 time.Duration // core.ParallelOrder, 1-worker pool
	OrdPeelW time.Duration // core.ParallelOrder, W-worker pool
	BuildW   time.Duration // mphf.BuildWithPool end-to-end, W workers
}

// RunBuildPath runs the sweep. The peels run on the identical graph
// (the ordered peel is deterministic at every worker count), so the
// rows isolate the peel-algorithm change from the graph.
func RunBuildPath(cfg BuildPathConfig) []BuildPathRow {
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	onePool := parallel.NewPool(1)
	defer onePool.Close()
	wPool := parallel.NewPool(cfg.Workers)
	defer wPool.Close()

	best := func(run func()) time.Duration {
		b := time.Duration(1<<63 - 1)
		for rep := 0; rep < cfg.Reps; rep++ {
			start := time.Now()
			run()
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}

	var rows []BuildPathRow
	for _, m := range cfg.Ns {
		subSize := int(cfg.Gamma*float64(m))/3 + 1
		g := hypergraph.Partitioned(3*subSize, m, 3, rng.New(cfg.Seed))
		keys := make([]uint64, m)
		gen := rng.New(cfg.Seed + 1)
		for i := range keys {
			keys[i] = gen.Uint64()
		}
		rows = append(rows, BuildPathRow{
			Keys:    m,
			SeqPeel: best(func() { core.Sequential(g, 2) }),
			OrdPeel1: best(func() {
				core.ParallelOrder(g, 2, core.Options{Pool: onePool})
			}),
			OrdPeelW: best(func() {
				core.ParallelOrder(g, 2, core.Options{Pool: wPool})
			}),
			BuildW: best(func() {
				must(mphf.BuildWithPool(keys, cfg.Gamma, cfg.Seed, 10, wPool))
			}),
		})
	}
	return rows
}

// RenderBuildPath writes the sweep as a table.
func RenderBuildPath(w io.Writer, workers int, rows []BuildPathRow) {
	if workers <= 0 {
		workers = parallel.Workers()
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "keys\tseq peel\tord peel(1w)\tord peel(%dw)\tbuild(%dw)\tpeel speedup\n", workers, workers)
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\t%v\t%.2fx\n",
			r.Keys,
			r.SeqPeel.Round(time.Microsecond), r.OrdPeel1.Round(time.Microsecond),
			r.OrdPeelW.Round(time.Microsecond), r.BuildW.Round(time.Microsecond),
			r.SeqPeel.Seconds()/r.OrdPeelW.Seconds())
	}
	tw.Flush()
}
