package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/recurrence"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Table5Config parameterizes the subtable-peeling subround sweep
// (Appendix B simulations).
type Table5Config struct {
	K, R   int
	Cs     []float64 // paper: 0.70 and 0.75
	Ns     []int     // paper: 10000 ... 2560000
	Trials int       // paper: 1000
	Seed   uint64
}

// DefaultTable5 returns the paper's configuration.
func DefaultTable5() Table5Config {
	return Table5Config{
		K: 2, R: 4,
		Cs:     []float64{0.70, 0.75},
		Ns:     []int{10000, 20000, 40000, 80000, 160000, 320000, 640000, 1280000, 2560000},
		Trials: 1000,
		Seed:   2014,
	}
}

// Table5Cell is one (n, c) aggregate.
type Table5Cell struct {
	C             float64
	Failed        int
	MeanSubrounds float64
}

// Table5Row is one n row.
type Table5Row struct {
	N     int
	Cells []Table5Cell
}

// Table5Result carries the subround sweep.
type Table5Result struct {
	Config Table5Config
	Rows   []Table5Row
}

// RunTable5 executes the sweep on partitioned hypergraphs with the
// subtable peeler.
func RunTable5(cfg Table5Config) *Table5Result {
	res := &Table5Result{Config: cfg}
	for _, n := range cfg.Ns {
		// Partitioned graphs need r | n.
		np := n - n%cfg.R
		row := Table5Row{N: n}
		for ci, c := range cfg.Cs {
			m := int(c * float64(np))
			failed := 0
			subrounds := stats.Trials(cfg.Trials, cfg.Seed^uint64(ci*2000003+n), func(trial int, gen *rng.RNG) float64 {
				g := hypergraph.Partitioned(np, m, cfg.R, gen)
				r := core.Subtables(g, cfg.K, core.Options{})
				if !r.Empty() {
					failed++
				}
				return float64(r.Subrounds)
			})
			row.Cells = append(row.Cells, Table5Cell{
				C:             c,
				Failed:        failed,
				MeanSubrounds: stats.Summarize(subrounds).Mean,
			})
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render writes the result in the paper's Table 5 layout.
func (t *Table5Result) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "n")
	for _, c := range t.Config.Cs {
		fmt.Fprintf(tw, "\tc=%.2f Failed\tSubrounds", c)
	}
	fmt.Fprintln(tw)
	for _, row := range t.Rows {
		fmt.Fprintf(tw, "%d", row.N)
		for _, cell := range row.Cells {
			fmt.Fprintf(tw, "\t%d\t%.3f", cell.Failed, cell.MeanSubrounds)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Table6Config parameterizes the subtable recurrence-vs-simulation
// comparison (λ′_{i,j} of Equation (B.1) vs measured survivors).
type Table6Config struct {
	K, R   int
	N      int
	C      float64
	Rounds int // full rounds (r subrounds each); paper shows 7
	Trials int
	Seed   uint64
}

// DefaultTable6 returns the paper's configuration (n = 1e6, c = 0.7).
func DefaultTable6() Table6Config {
	return Table6Config{K: 2, R: 4, N: 1000000, C: 0.70, Rounds: 7, Trials: 1000, Seed: 2014}
}

// Table6Row is one (i, j) subround comparison.
type Table6Row struct {
	Round      int
	Subtable   int
	Prediction float64 // λ′_{i,j} · n
	Experiment float64 // mean survivors after subround (i, j)
}

// Table6Result carries the per-subround comparison.
type Table6Result struct {
	Config Table6Config
	Rows   []Table6Row
}

// RunTable6 executes the comparison.
func RunTable6(cfg Table6Config) *Table6Result {
	res := &Table6Result{Config: cfg}
	np := cfg.N - cfg.N%cfg.R
	p := recurrence.Params{K: cfg.K, R: cfg.R, C: cfg.C}
	trace := must(p.SubtableTrace(cfg.Rounds))
	total := cfg.Rounds * cfg.R
	sums := make([]float64, total)
	m := int(cfg.C * float64(np))
	for trial := 0; trial < cfg.Trials; trial++ {
		gen := rng.NewStream(cfg.Seed^3000, uint64(trial))
		g := hypergraph.Partitioned(np, m, cfg.R, gen)
		r := core.Subtables(g, cfg.K, core.Options{MaxRounds: cfg.Rounds})
		for t := 0; t < total; t++ {
			if t < len(r.SurvivorHistory) {
				sums[t] += float64(r.SurvivorHistory[t])
			} else {
				sums[t] += float64(r.CoreVertices)
			}
		}
	}
	for t := 0; t < total; t++ {
		res.Rows = append(res.Rows, Table6Row{
			Round:      trace[t].Round,
			Subtable:   trace[t].Subtable,
			Prediction: trace[t].MixedFra * float64(np),
			Experiment: sums[t] / float64(cfg.Trials),
		})
	}
	return res
}

// Render writes the result in the paper's Table 6 layout.
func (t *Table6Result) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "i\tj\tPrediction\tExperiment\n")
	for _, row := range t.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%.5g\t%.5g\n", row.Round, row.Subtable, row.Prediction, row.Experiment)
	}
	tw.Flush()
}
