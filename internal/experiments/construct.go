package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/hypergraph"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// ConstructBenchConfig parameterizes the instance-construction timing
// sweep surfaced by cmd/peelsim and cmd/ablations: sequential
// (1-worker) vs pooled generation + CSR build, reported as edges/sec.
type ConstructBenchConfig struct {
	Ns      []int
	C       float64
	R       int
	Seed    uint64
	Reps    int // timing repetitions; the best rep is reported
	Workers int // parallel pool size; 0 = the default pool's size
}

// DefaultConstructBench returns a sweep over the sizes the paper's
// large experiments use, at density just below c*(2,4).
func DefaultConstructBench() ConstructBenchConfig {
	return ConstructBenchConfig{
		Ns:   []int{1 << 16, 1 << 20, 1 << 22},
		C:    0.75,
		R:    4,
		Seed: 2014,
		Reps: 3,
	}
}

// ConstructBenchRow is one instance size's sequential-vs-parallel
// construction timing.
type ConstructBenchRow struct {
	N, M     int
	Seq, Par time.Duration
}

// SeqRate returns sequential construction throughput in edges/sec.
func (r ConstructBenchRow) SeqRate() float64 { return float64(r.M) / r.Seq.Seconds() }

// ParRate returns pooled construction throughput in edges/sec.
func (r ConstructBenchRow) ParRate() float64 { return float64(r.M) / r.Par.Seconds() }

// RunConstructBench times Uniform construction end-to-end (chunk-keyed
// edge sampling + CSR incidence build) on a 1-worker pool and on the
// configured parallel pool. Both runs build the identical graph — the
// determinism contract of the pooled generators.
func RunConstructBench(cfg ConstructBenchConfig) []ConstructBenchRow {
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	seqPool := parallel.NewPool(1)
	defer seqPool.Close()
	parPool := parallel.NewPool(cfg.Workers)
	defer parPool.Close()

	best := func(pool *parallel.Pool, n, m int) time.Duration {
		b := time.Duration(1<<63 - 1)
		for rep := 0; rep < cfg.Reps; rep++ {
			gen := rng.NewStream(cfg.Seed, uint64(n))
			start := time.Now()
			hypergraph.UniformWithPool(n, m, cfg.R, gen, pool)
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}

	var rows []ConstructBenchRow
	for _, n := range cfg.Ns {
		m := int(cfg.C * float64(n))
		rows = append(rows, ConstructBenchRow{
			N: n, M: m,
			Seq: best(seqPool, n, m),
			Par: best(parPool, n, m),
		})
	}
	return rows
}

// RenderConstructBench writes the sweep as a table.
func RenderConstructBench(w io.Writer, workers int, rows []ConstructBenchRow) {
	if workers <= 0 {
		workers = parallel.Workers()
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "n\tm\tseq\tpar(%dw)\tseq edges/s\tpar edges/s\tspeedup\n", workers)
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%v\t%v\t%.3g\t%.3g\t%.2fx\n",
			r.N, r.M,
			r.Seq.Round(time.Microsecond), r.Par.Round(time.Microsecond),
			r.SeqRate(), r.ParRate(),
			r.Seq.Seconds()/r.Par.Seconds())
	}
	tw.Flush()
}
