package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/cuckoo"
	"repro/internal/hypergraph"
	"repro/internal/iblt"
	"repro/internal/rng"
	"repro/internal/xorsat"
)

// ScanAblationConfig parameterizes the frontier-vs-full-scan ablation:
// the same parallel peeling process implemented with work-efficient
// frontier tracking versus the GPU's rescan-everything strategy.
type ScanAblationConfig struct {
	K, R   int
	C      float64
	Ns     []int
	Trials int
	Seed   uint64
}

// DefaultScanAblation returns a below-threshold timing sweep.
func DefaultScanAblation() ScanAblationConfig {
	return ScanAblationConfig{K: 2, R: 4, C: 0.7, Ns: []int{1 << 17, 1 << 19, 1 << 21}, Trials: 3, Seed: 2014}
}

// ScanAblationRow is one instance size's timing pair.
type ScanAblationRow struct {
	N        int
	Frontier time.Duration
	FullScan time.Duration
	Rounds   int
}

// RunScanAblation executes the sweep; both policies peel identical graphs.
func RunScanAblation(cfg ScanAblationConfig) []ScanAblationRow {
	var rows []ScanAblationRow
	for _, n := range cfg.Ns {
		g := hypergraph.Uniform(n, int(cfg.C*float64(n)), cfg.R, rng.New(cfg.Seed^uint64(n)))
		row := ScanAblationRow{N: n}
		for trial := 0; trial < cfg.Trials; trial++ {
			start := time.Now()
			res := core.Parallel(g, cfg.K, core.Options{Scan: core.Frontier})
			row.Frontier += time.Since(start)
			row.Rounds = res.Rounds
			start = time.Now()
			core.Parallel(g, cfg.K, core.Options{Scan: core.FullScan})
			row.FullScan += time.Since(start)
		}
		row.Frontier /= time.Duration(cfg.Trials)
		row.FullScan /= time.Duration(cfg.Trials)
		rows = append(rows, row)
	}
	return rows
}

// RenderScanAblation writes the timing table.
func RenderScanAblation(w io.Writer, rows []ScanAblationRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "n\trounds\tfrontier\tfull-scan\tfull/frontier\n")
	for _, r := range rows {
		ratio := float64(r.FullScan) / float64(r.Frontier)
		fmt.Fprintf(tw, "%d\t%d\t%v\t%v\t%.2fx\n",
			r.N, r.Rounds, r.Frontier.Round(time.Microsecond), r.FullScan.Round(time.Microsecond), ratio)
	}
	tw.Flush()
}

// CuckooSweepConfig parameterizes the placement-threshold ablation:
// peeling-based placement works below c*(2,r) ≈ 0.818 (r = 3) while
// random-walk insertion pushes to the orientability threshold ≈ 0.917 —
// the price of peeling's speed and parallelism.
type CuckooSweepConfig struct {
	R        int
	N        int
	Loads    []float64
	Trials   int
	MaxKicks int
	Seed     uint64
}

// DefaultCuckooSweep returns loads straddling both thresholds for r = 3.
func DefaultCuckooSweep() CuckooSweepConfig {
	return CuckooSweepConfig{
		R: 3, N: 30000,
		Loads:    []float64{0.75, 0.80, 0.84, 0.88, 0.91, 0.94},
		Trials:   10,
		MaxKicks: 2000,
		Seed:     2014,
	}
}

// CuckooSweepRow is one load's success rates.
type CuckooSweepRow struct {
	Load        float64
	PeelOK      int // trials where peeling placed everything
	RandomOK    int // trials where random walk placed everything
	Trials      int
	PeelSuccess float64
	WalkSuccess float64
}

// RunCuckooSweep executes the sweep.
func RunCuckooSweep(cfg CuckooSweepConfig) []CuckooSweepRow {
	n := cfg.N - cfg.N%cfg.R
	var rows []CuckooSweepRow
	for li, load := range cfg.Loads {
		row := CuckooSweepRow{Load: load, Trials: cfg.Trials}
		m := int(load * float64(n))
		for trial := 0; trial < cfg.Trials; trial++ {
			gen := rng.NewStream(cfg.Seed^uint64(li*101), uint64(trial))
			g := hypergraph.Partitioned(n, m, cfg.R, gen)
			if _, ok := cuckoo.PlaceByPeeling(g); ok {
				row.PeelOK++
			}
			if _, ok := cuckoo.PlaceByRandomWalk(g, cfg.MaxKicks, gen); ok {
				row.RandomOK++
			}
		}
		row.PeelSuccess = float64(row.PeelOK) / float64(cfg.Trials)
		row.WalkSuccess = float64(row.RandomOK) / float64(cfg.Trials)
		rows = append(rows, row)
	}
	return rows
}

// RenderCuckooSweep writes the success-rate table.
func RenderCuckooSweep(w io.Writer, rows []CuckooSweepRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "load\tpeel success\trandom-walk success\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.2f\t%.2f\n", r.Load, r.PeelSuccess, r.WalkSuccess)
	}
	tw.Flush()
}

// XORSATSweepConfig parameterizes the solver-regime ablation around the
// two thresholds of random 3-XORSAT: peel-only solvability ends at
// c*(2,3) ≈ 0.818 while satisfiability extends to ≈ 0.917.
type XORSATSweepConfig struct {
	R      int
	N      int
	Cs     []float64
	Trials int
	Seed   uint64
}

// DefaultXORSATSweep returns densities straddling both thresholds.
func DefaultXORSATSweep() XORSATSweepConfig {
	return XORSATSweepConfig{
		R: 3, N: 20000,
		Cs:     []float64{0.70, 0.78, 0.82, 0.86, 0.90, 0.94, 1.00},
		Trials: 5,
		Seed:   2014,
	}
}

// XORSATSweepRow is one density's aggregate.
type XORSATSweepRow struct {
	C            float64
	PeelOnlyRate float64 // fraction of trials with empty 2-core
	SatRate      float64 // fraction solvable (peel + Gauss)
	MeanCoreEqs  float64 // mean 2-core size (equations)
}

// RunXORSATSweep executes the sweep on random-RHS instances.
func RunXORSATSweep(cfg XORSATSweepConfig) []XORSATSweepRow {
	var rows []XORSATSweepRow
	for ci, c := range cfg.Cs {
		row := XORSATSweepRow{C: c}
		m := int(c * float64(cfg.N))
		for trial := 0; trial < cfg.Trials; trial++ {
			gen := rng.NewStream(cfg.Seed^uint64(ci*307), uint64(trial))
			in := xorsat.Random(cfg.N, m, cfg.R, gen)
			_, stats, err := in.Solve()
			if stats.CoreEquations == 0 {
				row.PeelOnlyRate++
			}
			if err == nil {
				row.SatRate++
			}
			row.MeanCoreEqs += float64(stats.CoreEquations)
		}
		row.PeelOnlyRate /= float64(cfg.Trials)
		row.SatRate /= float64(cfg.Trials)
		row.MeanCoreEqs /= float64(cfg.Trials)
		rows = append(rows, row)
	}
	return rows
}

// RenderXORSATSweep writes the regime table.
func RenderXORSATSweep(w io.Writer, rows []XORSATSweepRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "c\tpeel-only rate\tSAT rate\tmean core eqs\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.2f\t%.2f\t%.0f\n", r.C, r.PeelOnlyRate, r.SatRate, r.MeanCoreEqs)
	}
	tw.Flush()
}

// EnsembleRow compares peeling outcomes across degree ensembles at equal
// edge density — the irregular-degree contrast from the LDPC literature:
// Poisson tails seed the peeling avalanche, regular ensembles with
// degree >= k never peel, and bimodal designs concentrate the core on
// heavy vertices.
type EnsembleRow struct {
	Name         string
	Density      float64
	Rounds       int
	CoreFraction float64
}

// RunEnsembleComparison peels three r=3 ensembles of equal mean degree 3
// (density 1.0): Poisson, 3-regular, and a 1/5 bimodal mix.
func RunEnsembleComparison(n int, seed uint64) []EnsembleRow {
	gen := rng.New(seed)
	rows := make([]EnsembleRow, 0, 3)

	run := func(name string, g *hypergraph.Hypergraph) {
		res := core.Parallel(g, 2, core.Options{})
		rows = append(rows, EnsembleRow{
			Name:         name,
			Density:      g.EdgeDensity(),
			Rounds:       res.Rounds,
			CoreFraction: float64(res.CoreVertices) / float64(g.N),
		})
	}
	run("poisson(3)", hypergraph.ConfigurationModel(hypergraph.PoissonDegrees(n, 3, gen), 3, gen))
	run("3-regular", hypergraph.ConfigurationModel(hypergraph.RegularDegrees(n, 3), 3, gen))
	bimodal := make([]int32, n)
	for i := range bimodal {
		if i%2 == 0 {
			bimodal[i] = 1
		} else {
			bimodal[i] = 5
		}
	}
	run("bimodal 1/5", hypergraph.ConfigurationModel(bimodal, 3, gen))
	return rows
}

// RenderEnsembleComparison writes the ensemble table.
func RenderEnsembleComparison(w io.Writer, rows []EnsembleRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "ensemble\tdensity\trounds\tcore fraction\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%d\t%.3f\n", r.Name, r.Density, r.Rounds, r.CoreFraction)
	}
	tw.Flush()
}

// DecoderAblationConfig parameterizes the three-way IBLT decode timing:
// serial queue, full-scan parallel (the paper's GPU algorithm), and
// frontier parallel (this repo's work-efficient extension).
type DecoderAblationConfig struct {
	R      int
	Cells  int
	Load   float64
	Trials int
	Seed   uint64
}

// DefaultDecoderAblation returns a below-threshold configuration.
func DefaultDecoderAblation() DecoderAblationConfig {
	return DecoderAblationConfig{R: 3, Cells: 1 << 19, Load: 0.75, Trials: 3, Seed: 2014}
}

// DecoderAblationResult carries the three mean decode times.
type DecoderAblationResult struct {
	Config   DecoderAblationConfig
	Serial   time.Duration
	FullScan time.Duration
	Frontier time.Duration
}

// RunDecoderAblation executes the timing comparison on identical tables.
func RunDecoderAblation(cfg DecoderAblationConfig) *DecoderAblationResult {
	gen := rng.New(cfg.Seed)
	keys := make([]uint64, int(cfg.Load*float64(cfg.Cells)))
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = gen.Uint64()
		}
	}
	master := iblt.New(cfg.Cells, cfg.R, cfg.Seed)
	master.InsertAll(keys)
	res := &DecoderAblationResult{Config: cfg}
	for trial := 0; trial < cfg.Trials; trial++ {
		t := master.Clone()
		start := time.Now()
		t.Decode()
		res.Serial += time.Since(start)

		t = master.Clone()
		start = time.Now()
		t.DecodeParallel()
		res.FullScan += time.Since(start)

		t = master.Clone()
		start = time.Now()
		t.DecodeParallelFrontier()
		res.Frontier += time.Since(start)
	}
	n := time.Duration(cfg.Trials)
	res.Serial /= n
	res.FullScan /= n
	res.Frontier /= n
	return res
}

// Render writes the decode timing comparison.
func (r *DecoderAblationResult) Render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "decoder\tmean time\tvs serial\n")
	base := float64(r.Serial)
	fmt.Fprintf(tw, "serial queue\t%v\t1.00x\n", r.Serial.Round(time.Microsecond))
	fmt.Fprintf(tw, "parallel full-scan (paper GPU)\t%v\t%.2fx\n",
		r.FullScan.Round(time.Microsecond), base/float64(r.FullScan))
	fmt.Fprintf(tw, "parallel frontier (extension)\t%v\t%.2fx\n",
		r.Frontier.Round(time.Microsecond), base/float64(r.Frontier))
	tw.Flush()
}
