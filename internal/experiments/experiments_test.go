package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRunTable1Small(t *testing.T) {
	cfg := Table1Config{
		K: 2, R: 4,
		Cs:     []float64{0.70, 0.85},
		Ns:     []int{8000, 64000},
		Trials: 10,
		Seed:   7,
	}
	res := RunTable1(cfg)
	if len(res.Rows) != 2 || len(res.Rows[0].Cells) != 2 {
		t.Fatalf("unexpected shape: %+v", res)
	}
	for _, row := range res.Rows {
		// Below threshold: all trials succeed. Above: all fail.
		if f := row.Cells[0].Failed; f != 0 {
			t.Errorf("n=%d c=0.70: %d failures, want 0", row.N, f)
		}
		if f := row.Cells[1].Failed; f != cfg.Trials {
			t.Errorf("n=%d c=0.85: %d failures, want %d", row.N, f, cfg.Trials)
		}
		if row.Cells[0].MeanRounds < 8 || row.Cells[0].MeanRounds > 16 {
			t.Errorf("n=%d c=0.70: mean rounds %.2f implausible", row.N, row.Cells[0].MeanRounds)
		}
	}
	// Above-threshold rounds grow with n (Table 1 shows ~+3.3 over 8x n
	// in this range); below-threshold they stay essentially flat.
	growthAbove := res.Rows[1].Cells[1].MeanRounds - res.Rows[0].Cells[1].MeanRounds
	if growthAbove < 1 {
		t.Errorf("above-threshold growth %.2f rounds over 8x n, want >= 1", growthAbove)
	}
	growthBelow := math.Abs(res.Rows[1].Cells[0].MeanRounds - res.Rows[0].Cells[0].MeanRounds)
	if growthBelow > 1.5 {
		t.Errorf("below-threshold growth %.2f rounds over 8x n, want ~0", growthBelow)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "c=0.70") || !strings.Contains(buf.String(), "4000") {
		t.Error("render missing expected content")
	}
}

func TestTable1GrowthFit(t *testing.T) {
	cfg := Table1Config{
		K: 2, R: 4,
		Cs:     []float64{0.85},
		Ns:     []int{4000, 8000, 16000, 32000},
		Trials: 8,
		Seed:   11,
	}
	res := RunTable1(cfg)
	// Above threshold the log n slope is positive and meaningful.
	slope := res.GrowthFit(0, true)
	if slope <= 0.3 {
		t.Errorf("above-threshold log n slope = %.3f, want clearly positive", slope)
	}
}

func TestRunTable2Small(t *testing.T) {
	cfg := Table2Config{K: 2, R: 4, N: 100000, Cs: []float64{0.70, 0.85}, Rounds: 14, Trials: 3, Seed: 13}
	res := RunTable2(cfg)
	if len(res.Series) != 2 {
		t.Fatalf("series count %d", len(res.Series))
	}
	for si, s := range res.Series {
		// Prediction and experiment agree within sampling noise: the
		// fluctuation scale is O(sqrt(n)·polylog) (martingale bound), so
		// allow 1% relative plus a 10·sqrt(n) absolute floor. (The paper's
		// n = 1e6 runs agree to ~1e-4 relatively; this scaled-down n has
		// proportionally larger tails.)
		for i := range s.Prediction {
			tol := 0.01*s.Prediction[i] + 10*math.Sqrt(float64(cfg.N))
			if math.Abs(s.Prediction[i]-s.Experiment[i]) > tol {
				t.Errorf("series %d round %d: prediction %.0f vs experiment %.0f (tol %.0f)",
					si, i+1, s.Prediction[i], s.Experiment[i], tol)
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Prediction") {
		t.Error("render missing header")
	}
}

func TestRunTable5Small(t *testing.T) {
	cfg := Table5Config{
		K: 2, R: 4,
		Cs:     []float64{0.70},
		Ns:     []int{8000, 32000},
		Trials: 8,
		Seed:   17,
	}
	res := RunTable5(cfg)
	for _, row := range res.Rows {
		if row.Cells[0].Failed != 0 {
			t.Errorf("n=%d: %d failures below threshold", row.N, row.Cells[0].Failed)
		}
		// Table 5 band: ~26-27 subrounds at c = 0.7 for moderate n.
		if row.Cells[0].MeanSubrounds < 20 || row.Cells[0].MeanSubrounds > 32 {
			t.Errorf("n=%d: mean subrounds %.2f implausible", row.N, row.Cells[0].MeanSubrounds)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Subrounds") {
		t.Error("render missing header")
	}
}

func TestRunTable6Small(t *testing.T) {
	cfg := Table6Config{K: 2, R: 4, N: 100000, C: 0.70, Rounds: 7, Trials: 3, Seed: 19}
	res := RunTable6(cfg)
	if len(res.Rows) != 28 {
		t.Fatalf("rows %d, want 28", len(res.Rows))
	}
	for _, row := range res.Rows {
		tol := 0.01*row.Prediction + 10*math.Sqrt(float64(cfg.N))
		if math.Abs(row.Prediction-row.Experiment) > tol {
			t.Errorf("(%d,%d): prediction %.0f vs experiment %.0f (tol %.0f)",
				row.Round, row.Subtable, row.Prediction, row.Experiment, tol)
		}
	}
}

func TestRunIBLTSmall(t *testing.T) {
	cfg := IBLTConfig{R: 3, Cells: 1 << 14, Loads: []float64{0.75, 0.83}, Trials: 2, Seed: 23}
	res := RunIBLT(cfg)
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Load 0.75 < 0.818: full recovery. Load 0.83 > 0.818: partial, and
	// the paper's Table 3 reports ~50% for r=3.
	if res.Rows[0].PctRecovered < 0.999 {
		t.Errorf("load 0.75: recovered %.3f, want 1.0", res.Rows[0].PctRecovered)
	}
	if res.Rows[1].PctRecovered > 0.95 || res.Rows[1].PctRecovered < 0.05 {
		t.Errorf("load 0.83: recovered %.3f, want partial", res.Rows[1].PctRecovered)
	}
	for _, row := range res.Rows {
		if row.ParInsertTime <= 0 || row.SerInsertTime <= 0 ||
			row.ParRecoveryTime <= 0 || row.SerRecoveryTime <= 0 {
			t.Errorf("non-positive timing in row %+v", row)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Recovered") {
		t.Error("render missing header")
	}
}

func TestRunFigure1(t *testing.T) {
	res := RunFigure1(DefaultFigure1())
	if len(res.Series) != 2 {
		t.Fatalf("series %d", len(res.Series))
	}
	// The closer density has the longer plateau near x*.
	p0 := res.PlateauLength(0, 0.1)
	p1 := res.PlateauLength(1, 0.1)
	if p1 <= p0 {
		t.Errorf("plateau(0.772)=%d should exceed plateau(0.77)=%d", p1, p0)
	}
	// Both traces must eventually collapse below the cut-off.
	for _, s := range res.Series {
		last := s.Betas[len(s.Betas)-1]
		if last > 1e-6 {
			t.Errorf("c=%v: trace did not collapse (last β = %g)", s.C, last)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "beta(c=0.772)") {
		t.Error("render missing series header")
	}
}

func TestRunNuSweep(t *testing.T) {
	res := RunNuSweep(DefaultNuSweep())
	// Rounds increase as ν shrinks.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Rounds <= res.Rows[i-1].Rounds {
			t.Errorf("rounds not increasing: %+v -> %+v", res.Rows[i-1], res.Rows[i])
		}
	}
	// Theorem 5: slope of log rounds vs log(1/ν) approaches 1/2. With the
	// additive log log n term the finite-ν fit lands a bit below.
	if res.FitSlope < 0.3 || res.FitSlope > 0.6 {
		t.Errorf("fit slope %.3f, want in [0.3, 0.6] (→0.5 as ν→0)", res.FitSlope)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "sqrt(1/nu)") {
		t.Error("render missing header")
	}
}

func TestThresholdTable(t *testing.T) {
	rows := ThresholdTable([]int{2, 3}, []int{2, 3, 4})
	// k=2,r=2 excluded -> 5 rows.
	if len(rows) != 5 {
		t.Fatalf("rows %d, want 5", len(rows))
	}
	for _, row := range rows {
		if row.CStar <= 0 || row.XStar <= 0 {
			t.Errorf("non-positive threshold row %+v", row)
		}
	}
	var buf bytes.Buffer
	RenderThresholdTable(&buf, rows)
	if !strings.Contains(buf.String(), "c*(k,r)") {
		t.Error("render missing header")
	}
}
