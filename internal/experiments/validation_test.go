package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunEmpiricalNu(t *testing.T) {
	cfg := EmpiricalNuConfig{
		K: 2, R: 4, N: 1 << 17,
		Nus:    []float64{0.05, 0.02},
		Trials: 3,
		Seed:   31,
	}
	res := RunEmpiricalNu(cfg)
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Rounds increase as the gap shrinks, and the measured mean should be
	// near the idealized prediction (within a few rounds).
	if res.Rows[1].MeanRounds <= res.Rows[0].MeanRounds {
		t.Errorf("rounds did not increase as nu shrank: %+v", res.Rows)
	}
	for _, row := range res.Rows {
		if row.Failed != 0 {
			t.Errorf("nu=%v: %d failures below threshold", row.Nu, row.Failed)
		}
		diff := row.MeanRounds - float64(row.Predicted)
		if diff < -3 || diff > 3 {
			t.Errorf("nu=%v: measured %.2f vs predicted %d", row.Nu, row.MeanRounds, row.Predicted)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "measured rounds") {
		t.Error("render missing header")
	}
}

func TestRunModelValidation(t *testing.T) {
	cfg := ModelValidationConfig{
		K: 2, R: 4, C: 0.7, Rounds: 5, TreeTrials: 15000, N: 1 << 17, Seed: 33,
	}
	rows := RunModelValidation(cfg)
	if len(rows) != 5 {
		t.Fatalf("rows %d", len(rows))
	}
	// All three estimates of λ_t agree within Monte Carlo noise
	// (tree MC standard error ~ 1/sqrt(trials) ≈ 0.008).
	if gap := MaxPairwiseGap(rows); gap > 0.02 {
		t.Errorf("max pairwise model gap %.4f, want <= 0.02", gap)
	}
	var buf bytes.Buffer
	RenderModelValidation(&buf, rows)
	if !strings.Contains(buf.String(), "tree MC") {
		t.Error("render missing header")
	}
}
