// Package bloomier implements a Bloomier-filter-style static function
// (Chazelle, Kilian, Rubinfeld, Tal — reference [4] of the paper): an
// immutable map from a fixed key set to values, stored in ~1.23 slots per
// key with O(1) lookups and no explicit key storage.
//
// Construction is pure peeling: keys are edges of a random 3-partite
// hypergraph over the slot array, and if the 2-core is empty the linear
// system "XOR of a key's 3 slots = value" is triangular in reverse peel
// order, so it is solved by back-substitution without Gaussian
// elimination. This is exactly the regime the paper analyzes — density
// 1/1.23 ≈ 0.813 < c*(2,3) ≈ 0.818 — and the same construction
// underlies Biff codes and XOR-based retrieval structures.
//
// Build-time and serve-time are split by the versioned flat layout
// (internal/layout): the builder back-substitutes straight into a
// contiguous sealed image, and Filter is a thin read-only view over
// such an image — the same lookup code path whether the image came from
// a fresh build, Open of marshaled bytes, or an mmap'd file.
//
// Lookups on keys outside the build set return arbitrary values (add a
// fingerprint to detect them if needed).
package bloomier

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hypergraph"
	"repro/internal/layout"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// DefaultGamma is the slots-per-key overhead, chosen just below the
// peeling threshold like the MPHF construction.
const DefaultGamma = 1.23

const arity = layout.Arity

// Filter is an immutable key → uint64 map built by Build: a read-only
// view over a flat layout image. Bytes serializes it with zero copies,
// and Open / FromImage reconstruct an identical filter from those
// bytes.
type Filter struct {
	im *layout.Image
}

// ErrBuildFailed is returned when peeling leaves a non-empty 2-core on
// every attempted seed (with distinct keys this is astronomically rare
// at γ = 1.23; the usual cause is duplicate keys). The returned error
// wraps it together with the final attempt's survivor count ("N edges
// left in 2-core after attempt T"), so errors.Is(err, ErrBuildFailed)
// works and the message says how close the last attempt came — the
// number to look at when tuning gamma or maxTries.
var ErrBuildFailed = errors.New("bloomier: construction failed on all attempts")

// Build constructs a filter mapping keys[i] → values[i]. Keys must be
// distinct. gamma is the slot/key ratio (use DefaultGamma); maxTries
// bounds seed retries. The whole build path — hashing, index build, the
// ordered parallel peel, and round-parallel back-substitution — runs on
// the process-wide default pool; use BuildWithPool to pin it to an
// explicit one. The resulting filter is identical either way and at
// every pool size.
//
//peelvet:deterministic
func Build(keys, values []uint64, gamma float64, seed uint64, maxTries int) (*Filter, error) {
	return BuildWithPool(keys, values, gamma, seed, maxTries, parallel.Default())
}

// BuildWorkers is Build on a private pool of the given size (workers
// <= 0 selects the default size), created once for ALL retry attempts
// and closed before returning — a 10-retry build pays worker startup
// once, not per attempt. Callers building many filters should share one
// pool across builds via BuildWithPool instead.
//
//peelvet:deterministic
func BuildWorkers(keys, values []uint64, gamma float64, seed uint64, maxTries, workers int) (*Filter, error) {
	pool := parallel.NewPool(workers)
	defer pool.Close()
	return BuildWithPool(keys, values, gamma, seed, maxTries, pool)
}

// BuildWithPool is Build with every construction phase — per-key edge
// hashing on each retry attempt, the CSR incidence build, the peel, and
// the back-substitution — run on an explicit worker pool. The peel is
// the ordered round-synchronous process (core.ParallelOrder), whose
// round-major order and minimum-endpoint orientation are bit-stable, so
// the resulting filter is byte-identical at every pool size. All
// per-build state is owned by the call, so many builds may run
// concurrently on one shared pool.
//
//peelvet:deterministic
func BuildWithPool(keys, values []uint64, gamma float64, seed uint64, maxTries int, pool *parallel.Pool) (*Filter, error) {
	return BuildCtx(context.Background(), keys, values, gamma, seed, maxTries, pool)
}

// BuildCtx is BuildWithPool with cooperative cancellation, checked at
// every round barrier of every attempt's peel and back-substitution
// sweep — a canceled build stops within one round of extra work. On
// cancellation it returns (nil, ctx.Err()).
//
//peelvet:deterministic
func BuildCtx(ctx context.Context, keys, values []uint64, gamma float64, seed uint64, maxTries int, pool *parallel.Pool) (*Filter, error) {
	if len(keys) != len(values) {
		return nil, fmt.Errorf("bloomier: %d keys but %d values", len(keys), len(values))
	}
	if gamma < 1.1 {
		return nil, fmt.Errorf("bloomier: gamma %.3f too small (< 1.1 cannot peel)", gamma)
	}
	if maxTries <= 0 {
		maxTries = 10
	}
	m := len(keys)
	subSize := int(gamma*float64(m))/arity + 1
	if subSize < 2 {
		subSize = 2
	}
	survivors := 0
	for try := 0; try < maxTries; try++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		attemptSeed, hseed := attemptSeeds(seed, try)
		im, left, err := buildAttempt(ctx, keys, values, attemptSeed, hseed, m, subSize, pool)
		if err != nil {
			return nil, err
		}
		if faultinject.Enabled {
			// Failpoint: setting the *bool forces this attempt to report
			// a non-empty 2-core, as an unlucky seed would.
			forceFail := false
			faultinject.Fire(faultinject.BloomierAttempt, &forceFail)
			if forceFail {
				im, left = nil, len(keys)
			}
		}
		if im != nil {
			return &Filter{im: im}, nil
		}
		survivors = left
	}
	return nil, fmt.Errorf("%w: %d edges left in 2-core after attempt %d", ErrBuildFailed, survivors, maxTries)
}

// attemptSeeds derives attempt try's seed and the three vertex-hash
// seeds stored in the image header.
func attemptSeeds(seed uint64, try int) (attemptSeed uint64, hseed [arity]uint64) {
	attemptSeed = rng.Mix64(seed + uint64(try)*0x9e3779b97f4a7c15)
	for j := 0; j < arity; j++ {
		hseed[j] = rng.Mix64(attemptSeed ^ uint64(j+1)*0x94d049bb133111eb)
	}
	return
}

// hashEdges maps every key to its three slots in parallel (each key's
// vertices depend only on the key and the attempt seeds, so the result
// is independent of the pool size).
func hashEdges(keys []uint64, hseed [arity]uint64, subSize int, pool *parallel.Pool) []uint32 {
	edges := make([]uint32, len(keys)*arity)
	pool.For(len(keys), 2048, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			vs := layout.VertexTriple(hseed, subSize, keys[i])
			copy(edges[i*arity:], vs[:])
		}
	})
	return edges
}

// buildAttempt peels the key hypergraph for one seed attempt and, on an
// empty 2-core, back-substitutes the slot values straight into a
// freshly allocated flat image — slots[v0] ^ slots[v1] ^ slots[v2] =
// value for every key — and seals it; a non-empty 2-core returns (nil,
// survivors, nil) so the retry loop can surface the count through
// ErrBuildFailed. The peel is the ordered round-synchronous process and
// back-substitution walks its rounds in reverse, the edges of one round
// in parallel — sound for k = 2: within a round every peeled edge has a
// distinct free vertex and non-free endpoints finalize strictly later
// (see core.OrderedResult). ctx is checked at every round barrier.
func buildAttempt(ctx context.Context, keys, values []uint64, attemptSeed uint64, hseed [arity]uint64, m, subSize int, pool *parallel.Pool) (*layout.Image, int, error) {
	n := subSize * arity
	edges := hashEdges(keys, hseed, subSize, pool)
	g := hypergraph.FromEdgesWithPool(n, arity, edges, subSize, pool)
	ord, err := core.ParallelOrderCtx(ctx, g, 2, core.Options{Pool: pool})
	if err != nil {
		return nil, 0, err
	}
	if !ord.Empty() {
		return nil, ord.CoreEdges, nil
	}
	im := layout.NewBloomier(attemptSeed, hseed, m, subSize)
	slots := im.Slots
	// Reverse round-major order: the free vertex's slot is still
	// untouched when its edge is processed, and the other two slots are
	// final.
	for t := ord.Rounds; t >= 1; t-- {
		seg := ord.RoundSegment(t)
		if err := pool.ForCtx(ctx, len(seg), 1024, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := int(seg[i])
				free := ord.FreeVertex[e]
				acc := values[e]
				for _, u := range g.EdgeVertices(int(e)) {
					if u != free {
						acc ^= slots[u]
					}
				}
				slots[free] = acc
			}
		}); err != nil {
			return nil, 0, err
		}
	}
	im.Marshal() // seal: checksum now covers the final slot array
	return im, 0, nil
}

// FromImage wraps an already-open flat image as a Filter view. The
// image must have been produced by this package's builder (or validated
// by layout.Open); its bytes must stay immutable for the life of the
// filter.
func FromImage(im *layout.Image) (*Filter, error) {
	if im == nil || im.Kind != layout.KindBloomier {
		return nil, fmt.Errorf("bloomier: image kind is not %v", layout.KindBloomier)
	}
	return &Filter{im: im}, nil
}

// Open validates data as a flat Bloomier image and returns a zero-copy
// read-only view over it: no array is decoded or copied, so data must
// stay immutable (and mapped) for the life of the filter. Corrupt or
// hostile images return layout.ErrBadImage; unaligned slices return
// layout.ErrUnaligned (repair with layout.Aligned).
func Open(data []byte) (*Filter, error) {
	im, err := layout.Open(data)
	if err != nil {
		return nil, err
	}
	return FromImage(im)
}

// Image returns the filter's flat image.
func (f *Filter) Image() *layout.Image { return f.im }

// Bytes returns the filter's sealed flat image without copying — the
// exact bytes Open accepts. The slice aliases the filter's slot array;
// treat it as read-only.
func (f *Filter) Bytes() []byte { return f.im.Bytes() }

// Seed returns the successful build attempt's seed.
func (f *Filter) Seed() uint64 { return f.im.Seed }

// Keys returns the number of keys the filter was built over.
func (f *Filter) Keys() int { return f.im.Keys }

// Lookup returns the value stored for key x (arbitrary for foreign keys).
func (f *Filter) Lookup(x uint64) uint64 {
	im := f.im
	vs := layout.VertexTriple(im.HSeed, im.SubSize, x)
	return im.Slots[vs[0]] ^ im.Slots[vs[1]] ^ im.Slots[vs[2]]
}

// LookupValue adapts Lookup to the static-function serving contract
// (repro.StaticFunc); it is identical to Lookup.
func (f *Filter) LookupValue(x uint64) uint64 { return f.Lookup(x) }

// Slots returns the size of the slot array (≈ γ × keys); total storage is
// 8·Slots() bytes.
func (f *Filter) Slots() int { return len(f.im.Slots) }

// BuildParallel builds the same filter as Build.
//
// Deprecated: the two construction pipelines — Build's ordered-round
// peel and BuildParallel's subround (Appendix B) peel — have been
// folded into the single ordered-path implementation: it is fully
// parallel, bit-stable at every worker count, and produces one
// canonical image per (keys, values, seed). BuildParallel is now an
// alias of Build kept for source compatibility. (Historically the two
// paths could return different foreign-key garbage; now every build of
// the same inputs is byte-identical.)
func BuildParallel(keys, values []uint64, gamma float64, seed uint64, maxTries int) (*Filter, error) {
	return Build(keys, values, gamma, seed, maxTries)
}

// BuildParallelWorkers is BuildParallel on a private pool of the given
// size, created once for all retry attempts and closed before
// returning.
//
// Deprecated: alias of BuildWorkers; see BuildParallel.
func BuildParallelWorkers(keys, values []uint64, gamma float64, seed uint64, maxTries, workers int) (*Filter, error) {
	return BuildWorkers(keys, values, gamma, seed, maxTries, workers)
}

// BuildParallelWithPool is BuildParallel on an explicit worker pool.
//
// Deprecated: alias of BuildWithPool; see BuildParallel.
func BuildParallelWithPool(keys, values []uint64, gamma float64, seed uint64, maxTries int, pool *parallel.Pool) (*Filter, error) {
	return BuildWithPool(keys, values, gamma, seed, maxTries, pool)
}

// BuildParallelCtx is BuildParallel with cooperative cancellation.
//
// Deprecated: alias of BuildCtx; see BuildParallel.
func BuildParallelCtx(ctx context.Context, keys, values []uint64, gamma float64, seed uint64, maxTries int, pool *parallel.Pool) (*Filter, error) {
	return BuildCtx(ctx, keys, values, gamma, seed, maxTries, pool)
}
