// Package bloomier implements a Bloomier-filter-style static function
// (Chazelle, Kilian, Rubinfeld, Tal — reference [4] of the paper): an
// immutable map from a fixed key set to values, stored in ~1.23 slots per
// key with O(1) lookups and no explicit key storage.
//
// Construction is pure peeling: keys are edges of a random 3-partite
// hypergraph over the slot array, and if the 2-core is empty the linear
// system "XOR of a key's 3 slots = value" is triangular in reverse peel
// order, so it is solved by back-substitution without Gaussian
// elimination. This is exactly the regime the paper analyzes — density
// 1/1.23 ≈ 0.813 < c*(2,3) ≈ 0.818 — and the same construction
// underlies Biff codes and XOR-based retrieval structures.
//
// Lookups on keys outside the build set return arbitrary values (add a
// fingerprint to detect them if needed).
package bloomier

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// DefaultGamma is the slots-per-key overhead, chosen just below the
// peeling threshold like the MPHF construction.
const DefaultGamma = 1.23

const arity = 3

// Filter is an immutable key → uint64 map built by Build.
type Filter struct {
	seed    uint64
	hseed   [arity]uint64
	subSize int
	slots   []uint64
}

// ErrBuildFailed is returned when peeling leaves a non-empty 2-core on
// every attempted seed (with distinct keys this is astronomically rare
// at γ = 1.23; the usual cause is duplicate keys). The returned error
// wraps it together with the final attempt's survivor count ("N edges
// left in 2-core after attempt T"), so errors.Is(err, ErrBuildFailed)
// works and the message says how close the last attempt came — the
// number to look at when tuning gamma or maxTries.
var ErrBuildFailed = errors.New("bloomier: construction failed on all attempts")

// Build constructs a filter mapping keys[i] → values[i]. Keys must be
// distinct. gamma is the slot/key ratio (use DefaultGamma); maxTries
// bounds seed retries. The whole build path — hashing, index build, the
// ordered parallel peel, and round-parallel back-substitution — runs on
// the process-wide default pool; use BuildWithPool to pin it to an
// explicit one. The resulting filter is identical either way and at
// every pool size.
func Build(keys, values []uint64, gamma float64, seed uint64, maxTries int) (*Filter, error) {
	return BuildWithPool(keys, values, gamma, seed, maxTries, parallel.Default())
}

// BuildWorkers is Build on a private pool of the given size (workers
// <= 0 selects the default size), created once for ALL retry attempts
// and closed before returning — a 10-retry build pays worker startup
// once, not per attempt. Callers building many filters should share one
// pool across builds via BuildWithPool instead.
func BuildWorkers(keys, values []uint64, gamma float64, seed uint64, maxTries, workers int) (*Filter, error) {
	pool := parallel.NewPool(workers)
	defer pool.Close()
	return BuildWithPool(keys, values, gamma, seed, maxTries, pool)
}

// BuildWithPool is Build with every construction phase — per-key edge
// hashing on each retry attempt, the CSR incidence build, the peel, and
// the back-substitution — run on an explicit worker pool. The peel is
// the ordered round-synchronous process (core.ParallelOrder), whose
// round-major order and minimum-endpoint orientation are bit-stable, so
// the resulting filter is identical at every pool size; back-
// substitution processes the peel rounds in reverse with full
// parallelism inside each round. See BuildParallel for the subround
// (Appendix B) pipeline, which differs only in the peel process it
// uses. All per-build state is owned by the call, so many builds may
// run concurrently on one shared pool.
func BuildWithPool(keys, values []uint64, gamma float64, seed uint64, maxTries int, pool *parallel.Pool) (*Filter, error) {
	return BuildCtx(context.Background(), keys, values, gamma, seed, maxTries, pool)
}

// BuildCtx is BuildWithPool with cooperative cancellation, checked at
// every round barrier of every attempt's peel and back-substitution
// sweep — a canceled build stops within one round of extra work. On
// cancellation it returns (nil, ctx.Err()).
func BuildCtx(ctx context.Context, keys, values []uint64, gamma float64, seed uint64, maxTries int, pool *parallel.Pool) (*Filter, error) {
	if len(keys) != len(values) {
		return nil, fmt.Errorf("bloomier: %d keys but %d values", len(keys), len(values))
	}
	if gamma < 1.1 {
		return nil, fmt.Errorf("bloomier: gamma %.3f too small (< 1.1 cannot peel)", gamma)
	}
	if maxTries <= 0 {
		maxTries = 10
	}
	m := len(keys)
	subSize := int(gamma*float64(m))/arity + 1
	if subSize < 2 {
		subSize = 2
	}
	survivors := 0
	for try := 0; try < maxTries; try++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f := &Filter{seed: rng.Mix64(seed + uint64(try)*0x9e3779b97f4a7c15), subSize: subSize}
		for j := 0; j < arity; j++ {
			f.hseed[j] = rng.Mix64(f.seed ^ uint64(j+1)*0x94d049bb133111eb)
		}
		ok, left, err := f.assign(ctx, keys, values, pool)
		if err != nil {
			return nil, err
		}
		if ok {
			return f, nil
		}
		survivors = left
	}
	return nil, fmt.Errorf("%w: %d edges left in 2-core after attempt %d", ErrBuildFailed, survivors, maxTries)
}

func (f *Filter) vertices(x uint64) [arity]uint32 {
	var vs [arity]uint32
	for j := 0; j < arity; j++ {
		h := rng.Mix64(x ^ f.hseed[j])
		vs[j] = uint32(j*f.subSize) + uint32((h>>32)*uint64(f.subSize)>>32)
	}
	return vs
}

// hashEdges maps every key to its three slots in parallel (each key's
// vertices depend only on the key and the attempt seeds, so the result
// is independent of the pool size).
func (f *Filter) hashEdges(keys []uint64, pool *parallel.Pool) []uint32 {
	edges := make([]uint32, len(keys)*arity)
	pool.For(len(keys), 2048, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			vs := f.vertices(keys[i])
			copy(edges[i*arity:], vs[:])
		}
	})
	return edges
}

// assign peels the key hypergraph and back-substitutes slot values so
// that slots[v0] ^ slots[v1] ^ slots[v2] = value for every key; it
// reports whether peeling reached the empty 2-core and, when it did
// not, how many edges survived (surfaced through ErrBuildFailed). The
// peel is the ordered round-synchronous process and back-substitution
// walks its rounds in reverse, the edges of one round in parallel —
// sound for k = 2: within a round every peeled edge has a distinct free
// vertex and non-free endpoints finalize strictly later (see
// core.OrderedResult). ctx is checked at every round barrier.
func (f *Filter) assign(ctx context.Context, keys, values []uint64, pool *parallel.Pool) (ok bool, survivors int, err error) {
	n := f.subSize * arity
	edges := f.hashEdges(keys, pool)
	g := hypergraph.FromEdgesWithPool(n, arity, edges, f.subSize, pool)
	ord, err := core.ParallelOrderCtx(ctx, g, 2, core.Options{Pool: pool})
	if err != nil {
		return false, 0, err
	}
	if !ord.Empty() {
		return false, ord.CoreEdges, nil
	}
	f.slots = make([]uint64, n)
	// Reverse round-major order: the free vertex's slot is still
	// untouched when its edge is processed, and the other two slots are
	// final.
	for t := ord.Rounds; t >= 1; t-- {
		seg := ord.RoundSegment(t)
		if err := pool.ForCtx(ctx, len(seg), 1024, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := int(seg[i])
				free := ord.FreeVertex[e]
				acc := values[e]
				for _, u := range g.EdgeVertices(int(e)) {
					if u != free {
						acc ^= f.slots[u]
					}
				}
				f.slots[free] = acc
			}
		}); err != nil {
			return false, 0, err
		}
	}
	return true, 0, nil
}

// Lookup returns the value stored for key x (arbitrary for foreign keys).
func (f *Filter) Lookup(x uint64) uint64 {
	vs := f.vertices(x)
	return f.slots[vs[0]] ^ f.slots[vs[1]] ^ f.slots[vs[2]]
}

// BuildParallel is Build with both phases parallelized: the hypergraph
// is peeled with the subround process (core.SubtablesOriented), and slot
// assignment walks the released layers in reverse with full parallelism
// inside each layer — sound because a layer-L edge's non-free endpoints
// are only ever freed in strictly later layers (see core.Orientation).
//
// Build keys look up identical values to a serial Build with the same
// seed (both solve the same constraint system exactly). Foreign keys may
// read different garbage: the system is underdetermined and the two
// peel orders choose different free-variable completions.
func BuildParallel(keys, values []uint64, gamma float64, seed uint64, maxTries int) (*Filter, error) {
	return BuildParallelWithPool(keys, values, gamma, seed, maxTries, parallel.Default())
}

// BuildParallelWorkers is BuildParallel on a private pool of the given
// size, created once for all retry attempts (hoisted out of the retry
// loop) and closed before returning.
func BuildParallelWorkers(keys, values []uint64, gamma float64, seed uint64, maxTries, workers int) (*Filter, error) {
	pool := parallel.NewPool(workers)
	defer pool.Close()
	return BuildParallelWithPool(keys, values, gamma, seed, maxTries, pool)
}

// BuildParallelWithPool is BuildParallel with every phase — hashing, CSR
// build, subround peeling, and layered back-substitution — on an
// explicit worker pool (each retry passes the same pool to the subround
// peeler via core.Options.Pool, so no per-attempt pool is ever spun up).
func BuildParallelWithPool(keys, values []uint64, gamma float64, seed uint64, maxTries int, pool *parallel.Pool) (*Filter, error) {
	return BuildParallelCtx(context.Background(), keys, values, gamma, seed, maxTries, pool)
}

// BuildParallelCtx is BuildParallelWithPool with cooperative
// cancellation: the subround peel checks ctx at its subround barriers
// (core.SubtablesOrientedCtx) and back-substitution checks it at every
// layer barrier, so even a single huge build attempt is abandoned
// promptly. On cancellation it returns (nil, ctx.Err()).
func BuildParallelCtx(ctx context.Context, keys, values []uint64, gamma float64, seed uint64, maxTries int, pool *parallel.Pool) (*Filter, error) {
	if len(keys) != len(values) {
		return nil, fmt.Errorf("bloomier: %d keys but %d values", len(keys), len(values))
	}
	if gamma < 1.1 {
		return nil, fmt.Errorf("bloomier: gamma %.3f too small (< 1.1 cannot peel)", gamma)
	}
	if maxTries <= 0 {
		maxTries = 10
	}
	m := len(keys)
	subSize := int(gamma*float64(m))/arity + 1
	if subSize < 2 {
		subSize = 2
	}
	survivors := 0
	for try := 0; try < maxTries; try++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f := &Filter{seed: rng.Mix64(seed + uint64(try)*0x9e3779b97f4a7c15), subSize: subSize}
		for j := 0; j < arity; j++ {
			f.hseed[j] = rng.Mix64(f.seed ^ uint64(j+1)*0x94d049bb133111eb)
		}
		n := f.subSize * arity
		edges := f.hashEdges(keys, pool)
		g := hypergraph.FromEdgesWithPool(n, arity, edges, f.subSize, pool)
		res, orient, err := core.SubtablesOrientedCtx(ctx, g, 2, core.Options{Pool: pool})
		if err != nil {
			return nil, err
		}
		if !res.Empty() {
			survivors = res.CoreEdges
			continue
		}
		f.slots = make([]uint64, n)
		for li := len(orient.Layers) - 1; li >= 0; li-- {
			layer := orient.Layers[li]
			if err := pool.ForCtx(ctx, len(layer), 1024, func(_, lo, hi int) {
				for idx := lo; idx < hi; idx++ {
					e := layer[idx]
					free := orient.FreeVertex[e]
					acc := values[e]
					for _, u := range g.EdgeVertices(int(e)) {
						if u != free {
							acc ^= f.slots[u]
						}
					}
					f.slots[free] = acc
				}
			}); err != nil {
				return nil, err
			}
		}
		return f, nil
	}
	return nil, fmt.Errorf("%w: %d edges left in 2-core after attempt %d", ErrBuildFailed, survivors, maxTries)
}

// Slots returns the size of the slot array (≈ γ × keys); total storage is
// 8·Slots() bytes.
func (f *Filter) Slots() int { return len(f.slots) }
