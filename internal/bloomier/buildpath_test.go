package bloomier

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/layout"
	"repro/internal/parallel"
)

// buildSerialPeel is the pre-ordered-peel construction — sequential
// queue peel plus serial reverse-order back-substitution — kept in the
// tests as the baseline BenchmarkBuildStaticMap measures against and as
// an equality oracle (build keys look up identical values regardless of
// the peel order: every construction solves the same constraint system
// exactly).
func buildSerialPeel(keys, values []uint64, gamma float64, seed uint64, maxTries int) (*Filter, error) {
	m := len(keys)
	subSize := int(gamma*float64(m))/arity + 1
	if subSize < 2 {
		subSize = 2
	}
	for try := 0; try < maxTries; try++ {
		attemptSeed, hseed := attemptSeeds(seed, try)
		n := subSize * arity
		edges := make([]uint32, len(keys)*arity)
		for i, k := range keys {
			vs := layout.VertexTriple(hseed, subSize, k)
			copy(edges[i*arity:], vs[:])
		}
		g := hypergraph.FromEdges(n, arity, edges, subSize)
		peel := core.Sequential(g, 2)
		if !peel.Empty() {
			continue
		}
		im := layout.NewBloomier(attemptSeed, hseed, m, subSize)
		for i := len(peel.PeelOrder) - 1; i >= 0; i-- {
			e := int(peel.PeelOrder[i])
			free := peel.FreeVertex[e]
			acc := values[e]
			for _, u := range g.EdgeVertices(e) {
				if u != free {
					acc ^= im.Slots[u]
				}
			}
			im.Slots[free] = acc
		}
		im.Marshal()
		return &Filter{im: im}, nil
	}
	return nil, ErrBuildFailed
}

// TestBuildBitIdenticalAcrossWorkerCounts is the serial-equivalence
// contract of the ordered-peel build: the same seed produces the same
// slot array — byte for byte — on pools of 1, 3, and 8 workers, and
// build keys look up exactly the values of the old serial-peel
// construction (both solve the same triangular system).
func TestBuildBitIdenticalAcrossWorkerCounts(t *testing.T) {
	keys, values := buildInputs(25000, 13)
	oracle, err := buildSerialPeel(keys, values, DefaultGamma, 7, 10)
	if err != nil {
		t.Fatalf("serial oracle: %v", err)
	}
	var ref *Filter
	for _, workers := range []int{1, 3, 8} {
		pool := parallel.NewPool(workers)
		f, err := BuildWithPool(keys, values, DefaultGamma, 7, 10, pool)
		pool.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = f
		} else if !bytes.Equal(f.Bytes(), ref.Bytes()) {
			t.Fatalf("workers=%d: image not byte-identical to the 1-worker build", workers)
		}
		for i, k := range keys {
			if f.Lookup(k) != values[i] || f.Lookup(k) != oracle.Lookup(k) {
				t.Fatalf("workers=%d: lookup diverges from serial construction on key %#x", workers, k)
			}
		}
	}
}

// TestBuildFailedReportsSurvivors pins the diagnosable failure error on
// both pipelines: above the threshold every attempt leaves a 2-core and
// the error wraps ErrBuildFailed with the last attempt's survivor count.
func TestBuildFailedReportsSurvivors(t *testing.T) {
	// γ = 1.12 → density 0.893 > c*(2,3) ≈ 0.818: peeling fails w.h.p.
	keys, values := buildInputs(20000, 19)
	for name, build := range map[string]func() error{
		"Build": func() error {
			_, err := Build(keys, values, 1.12, 3, 2)
			return err
		},
		"BuildParallel": func() error {
			_, err := BuildParallel(keys, values, 1.12, 3, 2)
			return err
		},
	} {
		err := build()
		if !errors.Is(err, ErrBuildFailed) {
			t.Fatalf("%s: err = %v, want ErrBuildFailed", name, err)
		}
		if !strings.Contains(err.Error(), "edges left in 2-core after attempt 2") {
			t.Fatalf("%s: error does not surface the survivor count: %v", name, err)
		}
	}
}

// BenchmarkBuildStaticMap is the build-path benchmark: the old
// serial-peel construction against the ordered-peel build at several
// pool sizes (pools hoisted out of the timed loop).
func BenchmarkBuildStaticMap(b *testing.B) {
	keys, values := buildInputs(1<<17, 1)
	b.Run("SerialPeel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := buildSerialPeel(keys, values, DefaultGamma, 42, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		pool := parallel.NewPool(workers)
		b.Run(fmt.Sprintf("Ordered/W=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildWithPool(keys, values, DefaultGamma, 42, 10, pool); err != nil {
					b.Fatal(err)
				}
			}
		})
		pool.Close()
	}
}
