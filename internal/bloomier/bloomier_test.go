package bloomier

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/rng"
)

func buildInputs(n int, seed uint64) (keys, values []uint64) {
	gen := rng.New(seed)
	seen := make(map[uint64]bool, n)
	for len(keys) < n {
		k := gen.Uint64()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
			values = append(values, gen.Uint64())
		}
	}
	return keys, values
}

func TestBuildAndLookup(t *testing.T) {
	keys, values := buildInputs(50000, 1)
	f, err := Build(keys, values, DefaultGamma, 42, 10)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i, k := range keys {
		if got := f.Lookup(k); got != values[i] {
			t.Fatalf("Lookup(%#x) = %#x, want %#x", k, got, values[i])
		}
	}
	// Space: ~γ slots per key.
	if s := f.Slots(); s > int(1.5*float64(len(keys))) {
		t.Errorf("Slots() = %d, too large for %d keys", s, len(keys))
	}
}

func TestSmallMaps(t *testing.T) {
	for _, n := range []int{1, 2, 7, 33} {
		keys, values := buildInputs(n, uint64(100+n))
		f, err := Build(keys, values, DefaultGamma, 7, 20)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, k := range keys {
			if f.Lookup(k) != values[i] {
				t.Fatalf("n=%d: wrong value", n)
			}
		}
	}
}

func TestLengthMismatch(t *testing.T) {
	if _, err := Build([]uint64{1, 2}, []uint64{1}, DefaultGamma, 1, 5); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestGammaTooSmall(t *testing.T) {
	keys, values := buildInputs(10, 3)
	if _, err := Build(keys, values, 1.0, 1, 3); err == nil {
		t.Fatal("gamma 1.0 accepted")
	}
}

func TestZeroValuesFine(t *testing.T) {
	// Unlike the IBLT (where 0 keys break XOR accounting), zero *values*
	// are perfectly representable here.
	keys, _ := buildInputs(100, 4)
	values := make([]uint64, len(keys))
	f, err := Build(keys, values, DefaultGamma, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if f.Lookup(k) != 0 {
			t.Fatal("zero value corrupted")
		}
	}
}

func TestDeterministic(t *testing.T) {
	keys, values := buildInputs(1000, 5)
	a, err := Build(keys, values, DefaultGamma, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(keys, values, DefaultGamma, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatal("same-seed builds disagree")
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%400) + 1
		keys, values := buildInputs(n, seed)
		flt, err := Build(keys, values, DefaultGamma, seed^0xf00, 20)
		if err != nil {
			return false
		}
		for i, k := range keys {
			if flt.Lookup(k) != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Error(err)
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	keys, values := buildInputs(30000, 7)
	serial, err := Build(keys, values, DefaultGamma, 55, 10)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildParallel(keys, values, DefaultGamma, 55, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same constraint system: build-key lookups must agree
	// exactly. (Foreign probes may differ — the system is
	// underdetermined and the two peel orders complete it differently.)
	for i, k := range keys {
		if par.Lookup(k) != values[i] {
			t.Fatalf("parallel build wrong value for key %d", i)
		}
		if par.Lookup(k) != serial.Lookup(k) {
			t.Fatalf("parallel and serial builds disagree on key %d", i)
		}
	}
}

func TestBuildParallelSmall(t *testing.T) {
	for _, n := range []int{1, 3, 10, 100} {
		keys, values := buildInputs(n, uint64(200+n))
		f, err := BuildParallel(keys, values, DefaultGamma, 9, 20)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, k := range keys {
			if f.Lookup(k) != values[i] {
				t.Fatalf("n=%d: wrong value", n)
			}
		}
	}
}

func TestBuildParallelValidation(t *testing.T) {
	if _, err := BuildParallel([]uint64{1}, []uint64{1, 2}, DefaultGamma, 1, 5); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := BuildParallel([]uint64{1, 2}, []uint64{3, 4}, 1.0, 1, 5); err == nil {
		t.Error("tiny gamma accepted")
	}
}

func BenchmarkBuild(b *testing.B) {
	keys, values := buildInputs(1<<16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(keys, values, DefaultGamma, uint64(i), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildParallel(b *testing.B) {
	keys, values := buildInputs(1<<16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildParallel(keys, values, DefaultGamma, uint64(i), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	keys, values := buildInputs(1<<16, 1)
	f, err := Build(keys, values, DefaultGamma, 1, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= f.Lookup(keys[i&(1<<16-1)])
	}
	_ = sink
}

// TestBuildWithPoolMatchesDefault proves the pooled construction path
// solves the same constraint system: build keys look up identical
// values at any pool size (serial and parallel pipelines both).
func TestBuildWithPoolMatchesDefault(t *testing.T) {
	keys, values := buildInputs(20000, 9)
	for _, workers := range []int{1, 3} {
		pool := parallel.NewPool(workers)
		f, err := BuildWithPool(keys, values, DefaultGamma, 7, 10, pool)
		if err != nil {
			t.Fatalf("BuildWithPool(workers=%d): %v", workers, err)
		}
		fp, err := BuildParallelWithPool(keys, values, DefaultGamma, 7, 10, pool)
		if err != nil {
			t.Fatalf("BuildParallelWithPool(workers=%d): %v", workers, err)
		}
		for i, k := range keys {
			if got := f.Lookup(k); got != values[i] {
				t.Fatalf("workers=%d: Lookup(%#x) = %#x, want %#x", workers, k, got, values[i])
			}
			if got := fp.Lookup(k); got != values[i] {
				t.Fatalf("workers=%d parallel: Lookup(%#x) = %#x, want %#x", workers, k, got, values[i])
			}
		}
		pool.Close()
	}
}

// TestBuildWorkersMatchesBuild checks both hoisted private-pool entry
// points produce functions identical to their default-pool forms.
func TestBuildWorkersMatchesBuild(t *testing.T) {
	keys, values := buildInputs(2500, 81)
	base, err := Build(keys, values, DefaultGamma, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	f, err := BuildWorkers(keys, values, DefaultGamma, 7, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := BuildParallelWorkers(keys, values, DefaultGamma, 7, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if f.Lookup(k) != values[i] || fp.Lookup(k) != values[i] || base.Lookup(k) != values[i] {
			t.Fatalf("lookup mismatch on key %#x", k)
		}
	}
}

// TestConcurrentStaticMapBuildsSharedPool runs serial-peel and
// subround-peel builds concurrently on one shared pool.
func TestConcurrentStaticMapBuildsSharedPool(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	group := pool.NewGroup(4)
	for j := 0; j < 6; j++ {
		group.Go(func(p *parallel.Pool) error {
			keys, values := buildInputs(1500+100*j, uint64(90+j))
			var f *Filter
			var err error
			if j%2 == 0 {
				f, err = BuildWithPool(keys, values, DefaultGamma, uint64(7+j), 10, p)
			} else {
				f, err = BuildParallelWithPool(keys, values, DefaultGamma, uint64(7+j), 10, p)
			}
			if err != nil {
				return err
			}
			for i, k := range keys {
				if f.Lookup(k) != values[i] {
					return fmt.Errorf("job %d: wrong value for key %#x", j, k)
				}
			}
			return nil
		})
	}
	if err := group.Wait(); err != nil {
		t.Fatal(err)
	}
}
