package bloomier

import (
	"bytes"
	"testing"

	"repro/internal/layout"
	"repro/internal/parallel"
)

// TestLayoutRoundTripDeterministic is the offline-build/online-serve
// contract end to end: builds at workers 1, 3, and 8 seal byte-identical
// images, and a filter re-opened from those bytes (the disk/mmap path)
// answers every build-key lookup exactly like the fresh build.
func TestLayoutRoundTripDeterministic(t *testing.T) {
	keys, values := buildInputs(20000, 37)
	var refImage []byte
	for _, workers := range []int{1, 3, 8} {
		pool := parallel.NewPool(workers)
		f, err := BuildWithPool(keys, values, DefaultGamma, 7, 10, pool)
		pool.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		img := f.Bytes()
		if refImage == nil {
			refImage = img
		} else if !bytes.Equal(img, refImage) {
			t.Fatalf("workers=%d: marshaled image differs from the 1-worker image", workers)
		}
		// Round-trip through a fresh buffer, as a loader would.
		re, err := Open(layout.Aligned(bytes.Clone(img)))
		if err != nil {
			t.Fatalf("workers=%d: Open: %v", workers, err)
		}
		if re.Keys() != f.Keys() || re.Slots() != f.Slots() || re.Seed() != f.Seed() {
			t.Fatalf("workers=%d: reopened geometry differs", workers)
		}
		for i, k := range keys {
			if got := re.Lookup(k); got != values[i] {
				t.Fatalf("workers=%d: reopened Lookup(%#x) = %#x, want %#x", workers, k, got, values[i])
			}
		}
	}
}

// TestOpenRejectsWrongKind pins the kind check of the typed loader.
func TestOpenRejectsWrongKind(t *testing.T) {
	im := layout.NewMPHF(1, [layout.Arity]uint64{1, 2, 3}, 4, 4)
	if _, err := Open(im.Marshal()); err == nil {
		t.Fatal("bloomier Open accepted an MPHF image")
	}
	if _, err := FromImage(im); err == nil {
		t.Fatal("FromImage accepted an MPHF image")
	}
}
