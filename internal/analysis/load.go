package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// TypeErrors holds any type-checking problems. Analysis still runs
	// on a partially checked package, mirroring go vet, but drivers
	// surface these so a broken tree is never silently "clean".
	TypeErrors []error
}

// LoadConfig parameterizes Load.
type LoadConfig struct {
	// Dir is the working directory for the go tool; "" means the
	// process's.
	Dir string

	// BuildFlags are extra arguments for "go list", e.g.
	// "-tags=faultinject".
	BuildFlags []string

	// Tests includes each package's _test.go files (the in-package
	// test variant) in the returned syntax.
	Tests bool
}

// listPackage is the subset of "go list -json" output the loader needs.
type listPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	Export       string
	DepOnly      bool
	Standard     bool
	Incomplete   bool
	Error        *struct{ Err string }
	DepsErrors   []*struct{ Err string }
	Module       *struct{ Path string }
	ImportedBy   []string `json:"-"`
	XTestGoFiles []string
}

// Load runs "go list -export -deps" over patterns and returns the
// type-checked packages the patterns matched (dependencies are consumed
// as export data, not returned). It is the analysis equivalent of
// golang.org/x/tools/go/packages.Load in LoadAllSyntax mode for the
// target packages, built only on the standard library.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, cfg.BuildFlags...)
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range targets {
		if lp.Error != nil && len(lp.GoFiles) == 0 {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typeCheck(fset, imp, lp, cfg.Tests)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheck parses and checks one listed package against export data.
func typeCheck(fset *token.FileSet, imp types.Importer, lp *listPackage, tests bool) (*Package, error) {
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("%s: cgo packages are not supported by the peelvet loader", lp.ImportPath)
	}
	names := append([]string{}, lp.GoFiles...)
	if tests {
		names = append(names, lp.TestGoFiles...)
	}
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var terrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: terrs,
	}, nil
}

// newExportImporter returns a types.Importer that resolves import paths
// through the compiler export data files "go list -export" reported.
// Paths outside that set — test-only dependencies like testing/quick,
// which "-deps" over non-test files never lists — are resolved lazily
// with one extra "go list -export" call each.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	//peelvet:allow nodeprecated -- the deprecation covers only nil lookup; this lookup is non-nil
	base := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			out, err := exec.Command("go", "list", "-e", "-export", "-f", "{{.Export}}", "--", path).Output()
			if file = strings.TrimSpace(string(out)); err != nil || file == "" {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			exports[path] = file
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return base.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// PathHasSuffix reports whether the import path ends with the given
// slash-separated suffix on element boundaries: "internal/layout"
// matches "repro/internal/layout" but not "repro/tinternal/layout".
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
