package analysis

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzAllowDirective hammers the //peelvet:allow parser with arbitrary
// comment text. The parser sits on untrusted input (every comment in
// every analyzed file flows through it), so beyond not panicking it
// must hold the invariants the suppression machinery relies on:
//
//   - prose is never mistaken for a directive — ok implies the text
//     starts with the marker on a token boundary;
//   - a well-formed result always carries at least one valid analyzer
//     name, no duplicates, and a nonempty reason;
//   - a directive that starts with the marker is never silently
//     dropped: it parses as well-formed or as Malformed (which drivers
//     report), never as not-a-directive.
func FuzzAllowDirective(f *testing.F) {
	f.Add("//peelvet:allow nospawn -- lifecycle plumbing")
	f.Add("//peelvet:allow nospawn,ctxbarrier -- two at once")
	f.Add("//peelvet:allow nospawn nospawn -- duplicated name")
	f.Add("//peelvet:allow nospawn")
	f.Add("//peelvet:allow -- reason but no analyzers")
	f.Add("//peelvet:allow , -- empty names")
	f.Add("//peelvet:allowance is prose")
	f.Add("//peelvet:allow")
	f.Add("//peelvet:allow\tnospawn\t--\ttabs everywhere")
	f.Add("// a normal comment")
	f.Add("//peelvet:allow näme -- non-ascii name")
	f.Add("//peelvet:allow a -- " + strings.Repeat("x", 1000))
	f.Add("//peelvet:allow a,b,c,a,b -- dedup across tokens")
	f.Add("//peelvet:allow a -- -- double separator")

	f.Fuzz(func(t *testing.T, text string) {
		d, ok := ParseAllowDirective(text)

		if !ok {
			if d.Malformed || len(d.Analyzers) != 0 || d.Reason != "" {
				t.Fatalf("not-a-directive must be zero valued, got %+v", d)
			}
			// A comment that begins with the marker followed by a space or
			// tab IS a directive and must not fall through to prose.
			if rest, found := strings.CutPrefix(text, allowMarker); found {
				if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
					t.Fatalf("%q starts a directive but parsed as prose", text)
				}
			}
			return
		}

		if !strings.HasPrefix(text, allowMarker) {
			t.Fatalf("%q parsed as a directive without the marker prefix", text)
		}
		if d.Malformed {
			if len(d.Analyzers) != 0 {
				t.Fatalf("malformed directive carries analyzers: %+v", d)
			}
			return
		}
		if len(d.Analyzers) == 0 {
			t.Fatalf("well-formed directive with no analyzers: %q", text)
		}
		if d.Reason == "" {
			t.Fatalf("well-formed directive with empty reason: %q", text)
		}
		seen := map[string]bool{}
		for _, name := range d.Analyzers {
			if !validAnalyzerName(name) {
				t.Fatalf("invalid analyzer name %q accepted from %q", name, text)
			}
			if !utf8.ValidString(name) {
				t.Fatalf("non-UTF-8 analyzer name from %q", text)
			}
			if seen[name] {
				t.Fatalf("duplicate analyzer %q survived dedup in %q", name, text)
			}
			seen[name] = true
		}
	})
}
