package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetFlow enforces the repository's central reproducibility invariant —
// peel orders, MPHF/Bloomier images, and generated instances are
// bit-identical at every worker count — by machine-checking the code
// that produces them for sources of value nondeterminism.
//
// A function annotated with the doc-comment directive
//
//	//peelvet:deterministic
//
// is a determinism root: it, and every function transitively reachable
// from it through static calls, must not
//
//   - range over a map (or use maps.Keys/Values/All — iteration order
//     is randomized),
//   - read the wall or monotonic clock (time.Now/Since/Until/After/...),
//   - draw from the unseeded global math/rand or math/rand/v2 source,
//     crypto/rand, or maphash.MakeSeed (explicitly seeded generators —
//     rand.New(...), the repo's internal/rng — are fine),
//   - iterate a sync.Map (visit order is racy), or
//   - select across channels (a multi-clause or defaulted select picks
//     a winner by scheduling).
//
// The verdict propagates across package boundaries as a Deterministic
// fact: when internal/core is analyzed, every function gets a fact
// recording whether it is free of these operations, and when
// internal/mphf is analyzed later (packages are analyzed in dependency
// order; under go vet the facts travel through .vetx files), a root
// calling into core consults the fact instead of re-reading core's
// source. A call into a package that was never analyzed (the standard
// library) is trusted; a call into an analyzed package is only trusted
// if the fact says so.
//
// internal/parallel is exempt and its functions are axiomatically
// deterministic: it implements the round barriers, its internals select
// on done channels by design, and the value-determinism of everything
// built on it is exactly what the workers-1/3/8 byte-identical build
// tests establish.
//
// Dynamic calls (function values, interface methods) are trusted; the
// hot paths this protects are direct calls. A reviewed exception is
// suppressed with //peelvet:allow detflow -- <why the nondeterminism
// cannot reach the output bits>.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc: "functions reachable from //peelvet:deterministic roots must be value-deterministic\n\n" +
		"No map ranges, wall-clock reads, unseeded math/rand, sync.Map " +
		"iteration, or multi-way selects anywhere in the static call " +
		"graph below an annotated determinism root. Verdicts cross " +
		"package boundaries as Deterministic facts.",
	FactTypes: []Fact{new(Deterministic)},
	Run:       runDetFlow,
}

// DeterministicDirective is the doc-comment annotation marking a
// determinism root.
const DeterministicDirective = "//peelvet:deterministic"

// Deterministic is detflow's fact about one function: whether its
// static call graph is free of value-nondeterministic operations, and
// if not, why (anchored at the defining package's source).
type Deterministic struct {
	Ok     bool
	Reason string `json:",omitempty"`
}

// AFact marks Deterministic as a fact type.
func (*Deterministic) AFact() {}

func init() { RegisterFact(new(Deterministic)) }

// A nondetOp is one directly nondeterministic operation in a function
// body.
type nondetOp struct {
	pos  token.Pos
	desc string
}

// detFuncInfo is the per-function summary detflow computes before
// propagation.
type detFuncInfo struct {
	decl  *ast.FuncDecl
	root  bool
	ops   []nondetOp
	calls []callSite
}

func runDetFlow(pass *Pass) error {
	if PathHasSuffix(pass.Path(), "internal/parallel") {
		// Axiomatically deterministic; export affirmative facts so
		// importers' roots trust its barriers.
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && !pass.InTestFile(fd.Pos()) {
					if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
						pass.ExportObjectFact(fn, &Deterministic{Ok: true})
					}
				}
			}
		}
		return nil
	}

	infos := map[*types.Func]*detFuncInfo{}
	for fn, fd := range declaredFuncObjects(pass) {
		infos[fn] = &detFuncInfo{
			decl:  fd,
			root:  docHasDirective(fd.Doc, DeterministicDirective),
			ops:   directNondetOps(pass, fd.Body),
			calls: staticCalls(pass, fd.Body),
		}
	}

	// Resolve each function's verdict bottom-up over the intra-package
	// call graph, consulting facts at package boundaries. Cycles are
	// resolved optimistically: a back edge contributes nothing, so a
	// recursion knot is nondeterministic iff some member has a direct op
	// or an external nondeterministic callee — which that member's own
	// resolution reports.
	type state int
	const (
		unresolved state = iota
		resolving
		resolved
	)
	states := map[*types.Func]state{}
	verdicts := map[*types.Func]*Deterministic{}

	var resolve func(fn *types.Func) *Deterministic
	resolve = func(fn *types.Func) *Deterministic {
		if v, ok := verdicts[fn]; ok && states[fn] == resolved {
			return v
		}
		if states[fn] == resolving {
			return &Deterministic{Ok: true} // optimistic back edge
		}
		info := infos[fn]
		if info == nil {
			return externalVerdict(pass, fn)
		}
		states[fn] = resolving
		v := &Deterministic{Ok: true}
		if len(info.ops) > 0 {
			op := info.ops[0]
			v = &Deterministic{Reason: op.desc + " at " + shortPos(pass.Fset, op.pos)}
		} else {
			for _, call := range info.calls {
				cv := resolve(call.callee)
				if !cv.Ok {
					v = &Deterministic{Reason: "calls " + funcDisplayName(call.callee) + " (" + cv.Reason + ")"}
					break
				}
			}
		}
		states[fn] = resolved
		verdicts[fn] = v
		return v
	}

	// Export facts for every declared function, so importers can trust
	// (or distrust) any of them.
	for fn := range infos {
		pass.ExportObjectFact(fn, resolve(fn))
	}

	// Reachability from this package's roots attributes diagnostics: a
	// direct op in any reachable intra-package function is reported at
	// the op; a call from a reachable function into a nondeterministic
	// external function is reported at the call site.
	rootOf := map[*types.Func]*types.Func{}
	var mark func(fn, root *types.Func)
	mark = func(fn, root *types.Func) {
		if _, seen := rootOf[fn]; seen {
			return
		}
		info := infos[fn]
		if info == nil {
			return
		}
		rootOf[fn] = root
		for _, call := range info.calls {
			mark(call.callee, root)
		}
	}
	for fn, info := range infos {
		if info.root {
			mark(fn, fn)
		}
	}

	for fn, root := range rootOf {
		info := infos[fn]
		for _, op := range info.ops {
			pass.Reportf(op.pos, "%s in %s, which must be deterministic (reachable from %s root %s): peel orders and images must be bit-identical at every worker count",
				op.desc, fn.Name(), DeterministicDirective, root.Name())
		}
		for _, call := range info.calls {
			if infos[call.callee] != nil {
				continue // intra-package: its own ops are reported above
			}
			if cv := externalVerdict(pass, call.callee); !cv.Ok {
				pass.Reportf(call.pos, "call to %s in %s, which must be deterministic (reachable from %s root %s): %s",
					funcDisplayName(call.callee), fn.Name(), DeterministicDirective, root.Name(), cv.Reason)
			}
		}
	}
	return nil
}

// externalVerdict judges a callee defined outside the package under
// analysis: exempt and unanalyzed packages are trusted; analyzed
// packages answer through their exported Deterministic facts.
func externalVerdict(pass *Pass, fn *types.Func) *Deterministic {
	pkg := fn.Pkg()
	if pkg == nil {
		return &Deterministic{Ok: true} // builtin (error.Error, etc.)
	}
	if PathHasSuffix(pkg.Path(), "internal/parallel") {
		return &Deterministic{Ok: true}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, ifc := types.Unalias(sig.Recv().Type()).Underlying().(*types.Interface); ifc {
			return &Deterministic{Ok: true} // dynamic dispatch: trusted
		}
	}
	if !pass.PackageAnalyzed(pkg.Path()) {
		return &Deterministic{Ok: true}
	}
	var fact Deterministic
	if !pass.ImportObjectFact(fn, &fact) {
		return &Deterministic{Ok: true} // analyzed but unkeyable: trusted
	}
	return &fact
}

// directNondetOps scans one function body for directly
// value-nondeterministic operations.
func directNondetOps(pass *Pass, body *ast.BlockStmt) []nondetOp {
	var ops []nondetOp
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					ops = append(ops, nondetOp{n.Pos(), "ranges over a map"})
				}
			}
		case *ast.SelectStmt:
			if clauses := len(n.Body.List); clauses > 1 || selectHasDefault(n) {
				ops = append(ops, nondetOp{n.Pos(), "selects across channels"})
			}
		case *ast.CallExpr:
			fn := staticCallee(pass, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if desc := nondetCallDesc(fn); desc != "" {
				ops = append(ops, nondetOp{n.Pos(), desc})
			}
		}
		return true
	})
	return ops
}

// selectHasDefault reports whether a select statement has a default
// clause (a nonblocking poll — the winner depends on scheduling).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// nondetCallDesc classifies a call to a known value-nondeterministic
// function; "" means the callee is not on the denylist.
func nondetCallDesc(fn *types.Func) string {
	path, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	method := sig != nil && sig.Recv() != nil
	switch path {
	case "time":
		switch name {
		case "Now", "Since", "Until", "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
			return "reads the wall/monotonic clock (time." + name + ")"
		}
	case "math/rand", "math/rand/v2":
		// Package-level draws use the globally seeded source; explicit
		// constructors (New, NewSource, NewPCG, ...) and methods on the
		// values they return are caller-seeded and deterministic.
		if !method && !strings.HasPrefix(name, "New") {
			return "draws from the unseeded global " + path + " source (rand." + name + ")"
		}
	case "crypto/rand":
		return "draws cryptographic randomness (crypto/rand." + name + ")"
	case "hash/maphash":
		if name == "MakeSeed" {
			return "draws a process-random maphash seed (maphash.MakeSeed)"
		}
	case "sync":
		if method && name == "Range" && recvNamed(sig) == "Map" {
			return "iterates a sync.Map (visit order is racy)"
		}
	case "maps":
		switch name {
		case "Keys", "Values", "All":
			return "iterates a map via maps." + name + " (order is randomized)"
		}
	}
	return ""
}

// recvNamed returns the name of a method's receiver base type, or "".
func recvNamed(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
