package analysis

import (
	"go/ast"
	"go/token"
)

// This file is a lightweight intra-procedural control-flow graph over
// go/ast, sized for the framework's needs: flow-sensitive reasoning
// about one loop iteration (ctxbarrier) without importing the
// golang.org/x/tools/go/cfg machinery the build environment cannot
// fetch. Blocks hold the ast nodes evaluated in them; edges follow the
// usual statement semantics for if/for/range/switch/select and the
// break/continue/goto/fallthrough branches.
//
// The graph is built for the body of one specific loop ("the region"):
// entry is the start of an iteration, exit is the point where control
// transfers back to the loop head (normal fall-through, continue, or —
// for a three-clause for — through the post statement and condition,
// which therefore execute once per iteration and belong to the region).
// Paths that leave the loop entirely (return, break out of the region,
// goto) end in a dead end rather than exit: an iteration that
// terminates the loop needs no per-round guard.

// A cfgBlock is one basic block: the nodes evaluated in it, in order,
// and its successor edges.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// A cfg is the control-flow graph of one loop iteration.
type cfg struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// blockOf returns the block whose nodes contain pos, or nil. Node
// containment is by source interval, so positions inside nested
// expressions (a call argument, a closure body) resolve to the block
// evaluating the enclosing statement.
func (g *cfg) blockOf(pos token.Pos) *cfgBlock {
	for _, b := range g.blocks {
		for _, n := range b.nodes {
			if n.Pos() <= pos && pos < n.End() {
				return b
			}
		}
	}
	return nil
}

// reaches reports whether a path from from to to exists that never
// passes through a block where avoid is true. from itself must satisfy
// !avoid; to is always accepted as an endpoint.
func (g *cfg) reaches(from, to *cfgBlock, avoid func(*cfgBlock) bool) bool {
	if avoid(from) {
		return false
	}
	if from == to {
		return true
	}
	seen := map[*cfgBlock]bool{from: true}
	work := []*cfgBlock{from}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.succs {
			if s == to {
				return true
			}
			if !seen[s] && !avoid(s) {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return false
}

// cfgBuilder accumulates blocks while walking a statement region.
type cfgBuilder struct {
	g *cfg

	// branch targets for the enclosing breakable/continuable constructs
	// inside the region, innermost last. A nil block means "leaves the
	// region" (dead end).
	targets []branchTarget
}

type branchTarget struct {
	label     string // "" entries never match labeled branches
	brk, cont *cfgBlock
	isLoop    bool // continue only binds to loops
}

// newLoopCFG builds the iteration graph for loop (a ForStmt or
// RangeStmt); label is the loop's own label, or "". Any other statement
// yields nil.
func newLoopCFG(loop ast.Stmt, label string) *cfg {
	b := &cfgBuilder{g: &cfg{}}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()

	switch loop := loop.(type) {
	case *ast.ForStmt:
		// One iteration: body, then post and cond on the way back to the
		// head — so a cancellation check in the condition guards every
		// round. Init runs once and is outside the region.
		tail := b.newBlock()
		if loop.Post != nil {
			tail.nodes = append(tail.nodes, loop.Post)
		}
		if loop.Cond != nil {
			tail.nodes = append(tail.nodes, loop.Cond)
		}
		b.link(tail, b.g.exit)
		// Unlabeled break/continue at the region's top level bind to this
		// loop itself: continue still reaches the head through tail,
		// break leaves the rounds (dead end).
		b.targets = append(b.targets, branchTarget{label: label, brk: nil, cont: tail, isLoop: true})
		end := b.stmt(loop.Body, b.g.entry)
		b.link(end, tail)
	case *ast.RangeStmt:
		// The range expression is evaluated once, before the first
		// iteration; the region is the body alone.
		b.targets = append(b.targets, branchTarget{label: label, brk: nil, cont: b.g.exit, isLoop: true})
		end := b.stmt(loop.Body, b.g.entry)
		b.link(end, b.g.exit)
	default:
		return nil
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// link adds an edge from from to to; a nil from (dead-ended path) is a
// no-op.
func (b *cfgBuilder) link(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// stmt extends the graph with s starting at cur and returns the block
// where control continues afterward — nil when every path through s
// leaves the region.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock) *cfgBlock {
	if cur == nil {
		// Unreachable code after a terminating statement: build it into a
		// detached block, never linked from the reachable graph.
		cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			cur = b.stmt(inner, cur)
		}
		return cur

	case *ast.LabeledStmt:
		return b.labeledStmt(s.Label.Name, s.Stmt, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		after := b.newBlock()
		thenB := b.newBlock()
		b.link(cur, thenB)
		b.link(b.stmt(s.Body, thenB), after)
		if s.Else != nil {
			elseB := b.newBlock()
			b.link(cur, elseB)
			b.link(b.stmt(s.Else, elseB), after)
		} else {
			b.link(cur, after)
		}
		return after

	case *ast.ForStmt:
		return b.forStmt("", s, cur)

	case *ast.RangeStmt:
		return b.rangeStmt("", s, cur)

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, s.Tag)
		}
		return b.caseBodies("", s.Body, cur, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Assign)
		return b.caseBodies("", s.Body, cur, true)

	case *ast.SelectStmt:
		return b.caseBodies("", s.Body, cur, false)

	case *ast.BranchStmt:
		return b.branchStmt(s, cur)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		return nil

	default:
		// Straight-line statement (assignment, expression, declaration,
		// defer, go, send, inc/dec, empty): evaluated wholly in cur.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// labeledStmt handles "label: stmt", making the label resolvable by
// break/continue inside stmt.
func (b *cfgBuilder) labeledStmt(label string, s ast.Stmt, cur *cfgBlock) *cfgBlock {
	switch s := s.(type) {
	case *ast.ForStmt:
		return b.forStmt(label, s, cur)
	case *ast.RangeStmt:
		return b.rangeStmt(label, s, cur)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// A labeled switch/select: break <label> exits it. Push a target
		// frame around the construct.
		after := b.newBlock()
		b.targets = append(b.targets, branchTarget{label: label, brk: after})
		end := b.stmt(s, cur)
		b.targets = b.targets[:len(b.targets)-1]
		b.link(end, after)
		return after
	default:
		// A plain labeled statement — the label is a goto target, which
		// the builder treats as leaving the region; build the statement
		// normally.
		return b.stmt(s, cur)
	}
}

// forStmt builds a nested (inner) for loop as a sub-graph: one entry
// from cur, iterate through cond/body/post, leave to after. The
// zero-iteration path (cond false immediately) exists whenever there is
// a condition.
func (b *cfgBuilder) forStmt(label string, s *ast.ForStmt, cur *cfgBlock) *cfgBlock {
	if s.Init != nil {
		cur.nodes = append(cur.nodes, s.Init)
	}
	head := b.newBlock()
	after := b.newBlock()
	if s.Cond != nil {
		head.nodes = append(head.nodes, s.Cond)
		b.link(head, after)
	}
	b.link(cur, head)
	post := b.newBlock()
	if s.Post != nil {
		post.nodes = append(post.nodes, s.Post)
	}
	b.link(post, head)
	bodyB := b.newBlock()
	b.link(head, bodyB)
	b.targets = append(b.targets, branchTarget{label: label, brk: after, cont: post, isLoop: true})
	end := b.stmt(s.Body, bodyB)
	b.targets = b.targets[:len(b.targets)-1]
	b.link(end, post)
	return after
}

// rangeStmt builds a nested range loop; the head evaluates the range
// expression and has both a body edge and a zero-iteration edge out.
func (b *cfgBuilder) rangeStmt(label string, s *ast.RangeStmt, cur *cfgBlock) *cfgBlock {
	head := b.newBlock()
	head.nodes = append(head.nodes, s.X)
	after := b.newBlock()
	b.link(cur, head)
	b.link(head, after)
	bodyB := b.newBlock()
	b.link(head, bodyB)
	b.targets = append(b.targets, branchTarget{label: label, brk: after, cont: head, isLoop: true})
	end := b.stmt(s.Body, bodyB)
	b.targets = b.targets[:len(b.targets)-1]
	b.link(end, head)
	return after
}

// caseBodies builds the clause bodies of a switch, type switch
// (exhaustive=true: without a default clause, control can skip every
// case), or select (exhaustive=false only in the sense that a select
// always executes some clause — one without a default blocks until a
// comm is ready).
func (b *cfgBuilder) caseBodies(label string, body *ast.BlockStmt, cur *cfgBlock, canSkip bool) *cfgBlock {
	after := b.newBlock()
	b.targets = append(b.targets, branchTarget{label: label, brk: after})
	hasDefault := false
	var caseBlocks []*cfgBlock
	var caseEnds []*cfgBlock
	var fallsThrough []bool
	for _, clause := range body.List {
		caseB := b.newBlock()
		b.link(cur, caseB)
		var stmts []ast.Stmt
		switch clause := clause.(type) {
		case *ast.CaseClause:
			for _, e := range clause.List {
				caseB.nodes = append(caseB.nodes, e)
			}
			hasDefault = hasDefault || clause.List == nil
			stmts = clause.Body
		case *ast.CommClause:
			if clause.Comm != nil {
				caseB.nodes = append(caseB.nodes, clause.Comm)
			} else {
				hasDefault = true
			}
			stmts = clause.Body
		}
		end := caseB
		ft := false
		for i, inner := range stmts {
			if br, ok := inner.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i == len(stmts)-1 {
				ft = true
				break
			}
			end = b.stmt(inner, end)
		}
		caseBlocks = append(caseBlocks, caseB)
		caseEnds = append(caseEnds, end)
		fallsThrough = append(fallsThrough, ft)
	}
	b.targets = b.targets[:len(b.targets)-1]
	for i, end := range caseEnds {
		if fallsThrough[i] && i+1 < len(caseBlocks) {
			b.link(end, caseBlocks[i+1])
		} else {
			b.link(end, after)
		}
	}
	if canSkip && !hasDefault {
		b.link(cur, after)
	}
	if len(body.List) == 0 {
		b.link(cur, after)
	}
	return after
}

// branchStmt resolves break/continue against the enclosing targets;
// goto and a stray fallthrough dead-end the path (leaving the region is
// the conservative reading for the analyses built on this graph).
func (b *cfgBuilder) branchStmt(s *ast.BranchStmt, cur *cfgBlock) *cfgBlock {
	cur.nodes = append(cur.nodes, s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if label == "" || t.label == label {
				b.link(cur, t.brk) // nil brk = leaves the region
				return nil
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.isLoop && (label == "" || t.label == label) {
				b.link(cur, t.cont)
				return nil
			}
		}
	}
	return nil
}
