package analysis_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis"
)

// repoRoot locates the module root from this test file's position.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller information")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestPeelvetRepoClean runs the whole suite over the repository at head
// — the same check CI's peelvet step performs — under both the default
// and the faultinject build, test files included. A finding here means
// an invariant regressed (or a new, deliberate exception is missing its
// //peelvet:allow reason).
func TestPeelvetRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	for _, tc := range []struct {
		name string
		tags []string
	}{
		{name: "default"},
		{name: "faultinject", tags: []string{"-tags=faultinject"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pkgs, err := analysis.Load(analysis.LoadConfig{
				Dir:        repoRoot(t),
				BuildFlags: tc.tags,
				Tests:      true,
			}, "./...")
			if err != nil {
				t.Fatalf("loading repository: %v", err)
			}
			if len(pkgs) == 0 {
				t.Fatal("loaded zero packages")
			}
			// One fact store for the whole run: Load returns "go list
			// -deps" order, dependencies first, so cross-package facts
			// (detflow, hotalloc, nodeprecated) flow exactly as they do
			// under cmd/peelvet and go vet.
			store := analysis.NewFactStore()
			for _, pkg := range pkgs {
				for _, terr := range pkg.TypeErrors {
					t.Errorf("%s: type error: %v", pkg.ImportPath, terr)
				}
				diags, err := analysis.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, analysis.Analyzers(), store)
				if err != nil {
					t.Fatalf("%s: %v", pkg.ImportPath, err)
				}
				for _, d := range diags {
					if d.Suppressed {
						continue
					}
					pos := pkg.Fset.Position(d.Pos)
					t.Errorf("%s:%d:%d: %s (%s)", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
				}
			}
		})
	}
}
