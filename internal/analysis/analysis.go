// Package analysis is a self-contained static-analysis framework plus
// the peelvet analyzers that enforce this repository's concurrency and
// safety invariants at compile time:
//
//   - nospawn: no raw go statements outside internal/parallel — all
//     concurrency flows through parallel.Pool / parallel.Group /
//     Runtime.Go so panic isolation and admission accounting are never
//     bypassed.
//   - ctxbarrier: a *Ctx function whose round loop crosses pool
//     barriers must consult its ctx inside the loop, and a non-Ctx
//     exported variant must delegate to the Ctx form instead of
//     duplicating the loop.
//   - nounsafe: unsafe and reflect.{Slice,String}Header are confined to
//     internal/layout, whose Open is the single validated entry point
//     for zero-copy aliasing.
//   - nopanic: library code returns wrapped sentinel errors; a panic is
//     legal only in internal/parallel's panic plumbing, in
//     internal/faultinject (whose job is injecting them), or as a
//     documented programmer-error guard ("Panics if ..." in the doc
//     comment of the enclosing function).
//   - atomicshard: a scalar variable or field accessed through
//     sync/atomic anywhere in a package must not also be accessed
//     plainly — the class of race the pool's poison pointer and the
//     serving generation counter are one typo away from.
//   - detflow: functions reachable from a //peelvet:deterministic root
//     (the build entry points whose outputs must be byte-identical at
//     every worker count) must not range over maps, read clocks, draw
//     unseeded randomness, iterate sync.Maps, or select across
//     channels; verdicts cross package boundaries as Deterministic
//     facts.
//   - hotalloc: closures handed to the pool's chunked barriers
//     (For/ForCtx/RunRanges/RunRangesCtx) must not allocate inside
//     their per-element loops — per-worker and per-build allocation
//     only; the Allocates fact sees through calls into other packages.
//   - nodeprecated: non-test code must not call "Deprecated:" facades;
//     the denylist is derived from doc comments and travels as a
//     Deprecated fact, so a root-package facade is flagged in cmd/ and
//     examples/ without hand-kept lists.
//
// A ninth always-on check, reported under the pseudo-analyzer name
// "peelvet", enforces suppression hygiene: every //peelvet:allow
// directive must name its analyzers and carry a " -- reason" clause.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, object facts, an analysistest
// equivalent, and the "go vet -vettool" unit-checker protocol in
// cmd/peelvet) but is built only on the standard library: the toolchain
// in this repository's build environment has no module proxy access, so
// the framework loads packages with "go list -export" and type-checks
// against the compiler's export data via go/importer. Migrating an
// analyzer to the upstream framework is a mechanical import swap.
//
// Inter-procedural analyzers build on two layers in this package: a
// facts system (facts.go) that serializes per-object conclusions across
// package — and, under go vet, process — boundaries, and a lightweight
// intra-loop control-flow graph (cfg.go) that makes ctxbarrier
// path-sensitive. Analyzers declare the fact types they exchange in
// Analyzer.FactTypes; drivers thread one FactStore through packages in
// dependency order.
//
// A finding that is a reviewed, deliberate exception is suppressed in
// place with a trailing comment naming the analyzer and the reason:
//
//	go func() { ... }() //peelvet:allow nospawn -- lifecycle plumbing
//
// The comment may also stand alone on the line directly above the
// finding. Suppressions without a reason are themselves diagnostics.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check: a name for diagnostics and
// suppressions, a doc string, and a Run function applied once per
// package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, in -vet flag
	// selection, and in //peelvet:allow suppressions. It must be a
	// valid identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then details.
	Doc string

	// FactTypes lists prototypes of the fact types the analyzer exports
	// or imports (see facts.go). A fact-using analyzer still runs when a
	// package is analyzed for facts only (the unitchecker's VetxOnly
	// mode), with diagnostics discarded.
	FactTypes []Fact

	// Run applies the analyzer to one package, reporting findings via
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass is one (analyzer, package) unit of work: the syntax and type
// information for a single package, and the Report sink for findings.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps positions of Files.
	Fset *token.FileSet

	// Files is the package's parsed syntax, comments included.
	// Test files (*_test.go) are present when the loader was asked
	// for them; analyzers that exempt tests must check positions via
	// InTestFile.
	Files []*ast.File

	// Pkg and TypesInfo carry the package's type information. Uses,
	// Defs, Selections, and Types are always populated.
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The checker wires it; analyzer
	// code usually calls Reportf.
	Report func(Diagnostic)

	// facts is the run-wide store backing ExportObjectFact and
	// ImportObjectFact; nil when the driver runs fact-free.
	facts *FactStore
}

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.Path() }

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a *_test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Diagnostic is one finding: a position and a message. The checker
// stamps the Analyzer field; Suppressed marks findings a //peelvet:allow
// directive covered — dropped from text output and exit status, but
// surfaced by -json so CI can audit live exceptions.
type Diagnostic struct {
	Pos        token.Pos
	Message    string
	Analyzer   string
	Suppressed bool
}

// An AllowDirective is one parsed //peelvet:allow comment:
//
//	//peelvet:allow analyzer1,analyzer2 -- why this exception is safe
//
// Analyzer names may be comma- or space-separated; the " -- reason"
// clause is mandatory (enforcing it keeps every exception reviewable).
// A marker whose names or reason are missing or malformed parses with
// Malformed set, which drivers report as a finding of the pseudo-
// analyzer "peelvet".
type AllowDirective struct {
	Analyzers []string // deduplicated, declaration order
	Reason    string
	Malformed bool
}

// allowMarker introduces a suppression directive. Prose that merely
// mentions it mid-comment never suppresses: the marker must start the
// comment text.
const allowMarker = "//peelvet:allow"

// ParseAllowDirective parses one comment's text. ok reports whether the
// comment is a directive at all (begins with the marker on a token
// boundary); d.Malformed reports whether a directive is unusable.
// Exported for the fuzz harness; drivers go through collectSuppressions.
func ParseAllowDirective(text string) (d AllowDirective, ok bool) {
	rest, found := strings.CutPrefix(text, allowMarker)
	if !found || (rest != "" && !strings.ContainsAny(rest[:1], " \t")) {
		// "//peelvet:allowance" is prose, not a directive.
		return AllowDirective{}, false
	}
	tokens := strings.Fields(rest)
	sep := -1
	for i, tok := range tokens {
		if tok == "--" {
			sep = i
			break
		}
	}
	if sep < 0 {
		return AllowDirective{Malformed: true}, true
	}
	d.Reason = strings.Join(tokens[sep+1:], " ")
	seen := map[string]bool{}
	for _, tok := range tokens[:sep] {
		for _, name := range strings.Split(tok, ",") {
			if name == "" {
				continue
			}
			if !validAnalyzerName(name) {
				return AllowDirective{Malformed: true}, true
			}
			if !seen[name] {
				seen[name] = true
				d.Analyzers = append(d.Analyzers, name)
			}
		}
	}
	if len(d.Analyzers) == 0 || d.Reason == "" {
		return AllowDirective{Malformed: true}, true
	}
	return d, true
}

// validAnalyzerName reports whether name could be an analyzer name:
// ASCII letters, digits, and underscores only.
func validAnalyzerName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '_':
		default:
			return false
		}
	}
	return name != ""
}

// suppressions records, per file line, which analyzers are allowed
// there, plus the lines holding malformed (unusable) directives.
type suppressions struct {
	allowed   map[int]map[string]bool // line -> analyzer names
	malformed map[int]token.Pos       // line -> comment position
}

// collectSuppressions scans a file's comments for //peelvet:allow
// markers. A marker suppresses findings on its own line and, when it is
// the whole comment group (a standalone comment), on the following line.
func collectSuppressions(fset *token.FileSet, f *ast.File) suppressions {
	s := suppressions{allowed: map[int]map[string]bool{}, malformed: map[int]token.Pos{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := ParseAllowDirective(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			if d.Malformed {
				s.malformed[pos.Line] = c.Pos()
				continue
			}
			lines := []int{pos.Line}
			if pos.Column <= 1 || standaloneComment(fset, f, c) {
				lines = append(lines, pos.Line+1)
			}
			for _, line := range lines {
				set := s.allowed[line]
				if set == nil {
					set = map[string]bool{}
					s.allowed[line] = set
				}
				for _, name := range d.Analyzers {
					set[name] = true
				}
			}
		}
	}
	return s
}

// standaloneComment reports whether c begins its line (no code before
// it), in which case the suppression also covers the next line.
func standaloneComment(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	var onLine bool
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || onLine {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		if fset.Position(n.Pos()).Line == cpos.Line && n.Pos() < c.Pos() {
			if _, isFile := n.(*ast.File); !isFile {
				onLine = true
			}
			return false
		}
		return true
	})
	return !onLine
}

// RunAnalyzers applies analyzers to one loaded package and returns its
// diagnostics sorted by position. Findings a //peelvet:allow directive
// covers come back with Suppressed set (callers deciding exit status
// must skip them); malformed directives (missing the " -- reason"
// clause) are reported as findings of the pseudo-analyzer "peelvet".
//
// store carries analyzer facts across packages; pass the same store for
// every package of a run, in dependency order ("go list -deps" order),
// so facts exported by a dependency are visible to its importers. A nil
// store runs the analyzers fact-blind.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	supp := map[string]suppressions{} // filename -> suppressions
	var diags []Diagnostic
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		s := collectSuppressions(fset, f)
		supp[name] = s
		for _, pos := range s.malformed {
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Analyzer: "peelvet",
				Message:  "peelvet:allow needs a reason: write //peelvet:allow <analyzer> -- <why this exception is safe>",
			})
		}
	}
	for _, a := range analyzers {
		var reported []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d Diagnostic) { reported = append(reported, d) },
			facts:     store,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
		for _, d := range reported {
			d.Analyzer = a.Name
			p := fset.Position(d.Pos)
			if s, ok := supp[p.Filename]; ok && s.allowed[p.Line][a.Name] {
				d.Suppressed = true
			}
			diags = append(diags, d)
		}
	}
	if store != nil {
		store.MarkAnalyzed(pkg.Path())
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
