// Package analysis is a self-contained static-analysis framework plus
// the peelvet analyzers that enforce this repository's concurrency and
// safety invariants at compile time:
//
//   - nospawn: no raw go statements outside internal/parallel — all
//     concurrency flows through parallel.Pool / parallel.Group /
//     Runtime.Go so panic isolation and admission accounting are never
//     bypassed.
//   - ctxbarrier: a *Ctx function whose round loop crosses pool
//     barriers must consult its ctx inside the loop, and a non-Ctx
//     exported variant must delegate to the Ctx form instead of
//     duplicating the loop.
//   - nounsafe: unsafe and reflect.{Slice,String}Header are confined to
//     internal/layout, whose Open is the single validated entry point
//     for zero-copy aliasing.
//   - nopanic: library code returns wrapped sentinel errors; a panic is
//     legal only in internal/parallel's panic plumbing, in
//     internal/faultinject (whose job is injecting them), or as a
//     documented programmer-error guard ("Panics if ..." in the doc
//     comment of the enclosing function).
//   - atomicshard: a scalar variable or field accessed through
//     sync/atomic anywhere in a package must not also be accessed
//     plainly — the class of race the pool's poison pointer and the
//     serving generation counter are one typo away from.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, an analysistest equivalent, and the
// "go vet -vettool" unit-checker protocol in cmd/peelvet) but is built
// only on the standard library: the toolchain in this repository's
// build environment has no module proxy access, so the framework loads
// packages with "go list -export" and type-checks against the compiler's
// export data via go/importer. Migrating an analyzer to the upstream
// framework is a mechanical import swap.
//
// A finding that is a reviewed, deliberate exception is suppressed in
// place with a trailing comment naming the analyzer and the reason:
//
//	go func() { ... }() //peelvet:allow nospawn -- lifecycle plumbing
//
// The comment may also stand alone on the line directly above the
// finding. Suppressions without a reason are themselves diagnostics.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one static check: a name for diagnostics and
// suppressions, a doc string, and a Run function applied once per
// package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, in -vet flag
	// selection, and in //peelvet:allow suppressions. It must be a
	// valid identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then details.
	Doc string

	// Run applies the analyzer to one package, reporting findings via
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass is one (analyzer, package) unit of work: the syntax and type
// information for a single package, and the Report sink for findings.
type Pass struct {
	Analyzer *Analyzer

	// Fset maps positions of Files.
	Fset *token.FileSet

	// Files is the package's parsed syntax, comments included.
	// Test files (*_test.go) are present when the loader was asked
	// for them; analyzers that exempt tests must check positions via
	// InTestFile.
	Files []*ast.File

	// Pkg and TypesInfo carry the package's type information. Uses,
	// Defs, Selections, and Types are always populated.
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The checker wires it; analyzer
	// code usually calls Reportf.
	Report func(Diagnostic)
}

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.Path() }

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a *_test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Diagnostic is one finding: a position and a message. The checker
// stamps the Analyzer field.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// allowRe matches a suppression comment — anchored to the comment
// start, so prose that merely mentions the marker never suppresses.
// The reason clause after " -- " is mandatory; enforcing it keeps every
// exception reviewable.
var allowRe = regexp.MustCompile(`^//peelvet:allow\s+([A-Za-z0-9_,]+)(\s+--\s+\S.*)?`)

// suppressions records, per file line, which analyzers are allowed
// there, plus the lines holding malformed (reason-less) comments.
type suppressions struct {
	allowed   map[int]map[string]bool // line -> analyzer names
	malformed map[int]token.Pos       // line -> comment position
}

// collectSuppressions scans a file's comments for //peelvet:allow
// markers. A marker suppresses findings on its own line and, when it is
// the whole comment group (a standalone comment), on the following line.
func collectSuppressions(fset *token.FileSet, f *ast.File) suppressions {
	s := suppressions{allowed: map[int]map[string]bool{}, malformed: map[int]token.Pos{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			if m[2] == "" {
				s.malformed[pos.Line] = c.Pos()
				continue
			}
			lines := []int{pos.Line}
			if pos.Column <= 1 || standaloneComment(fset, f, c) {
				lines = append(lines, pos.Line+1)
			}
			for _, line := range lines {
				set := s.allowed[line]
				if set == nil {
					set = map[string]bool{}
					s.allowed[line] = set
				}
				for _, name := range strings.Split(m[1], ",") {
					set[name] = true
				}
			}
		}
	}
	return s
}

// standaloneComment reports whether c begins its line (no code before
// it), in which case the suppression also covers the next line.
func standaloneComment(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	var onLine bool
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || onLine {
			return false
		}
		if _, isComment := n.(*ast.Comment); isComment {
			return false
		}
		if _, isGroup := n.(*ast.CommentGroup); isGroup {
			return false
		}
		if fset.Position(n.Pos()).Line == cpos.Line && n.Pos() < c.Pos() {
			if _, isFile := n.(*ast.File); !isFile {
				onLine = true
			}
			return false
		}
		return true
	})
	return !onLine
}

// RunAnalyzers applies analyzers to one loaded package and returns the
// surviving diagnostics: suppressed findings are dropped, and malformed
// suppression comments (missing the " -- reason" clause) are reported
// as findings of the pseudo-analyzer "peelvet". Diagnostics come back
// sorted by position.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	supp := map[string]suppressions{} // filename -> suppressions
	var diags []Diagnostic
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		s := collectSuppressions(fset, f)
		supp[name] = s
		for _, pos := range s.malformed {
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Analyzer: "peelvet",
				Message:  "peelvet:allow needs a reason: write //peelvet:allow <analyzer> -- <why this exception is safe>",
			})
		}
	}
	for _, a := range analyzers {
		var reported []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d Diagnostic) { reported = append(reported, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
		for _, d := range reported {
			d.Analyzer = a.Name
			p := fset.Position(d.Pos)
			if s, ok := supp[p.Filename]; ok && s.allowed[p.Line][a.Name] {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
