package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc keeps the per-element loops inside pool closures
// allocation-free.
//
// The paper's peeling process is O(n) total work spread over
// O(log log n) rounds; the constant factor lives in the per-element
// loops of the closures handed to Pool.For / ForCtx / RunRanges /
// RunRangesCtx. An allocation there happens millions of times per
// build and turns a memory-bound scan into a GC benchmark. The
// runtime's discipline — established by the PR 3 pooled-buffer work —
// is: allocate per worker (in the closure's top level, once per chunk)
// or per build (hoisted outside the pool call), never per element.
//
// Inside a loop within such a closure, hotalloc flags
//
//   - make, new, and slice/map composite literals (including
//     &T{...}),
//   - append to a slice declared inside the loop (appending to an
//     outer per-worker buffer is the sanctioned pattern and is
//     allowed),
//   - implicit interface boxing: passing a concrete value to an
//     interface parameter (including ...any variadics) heap-allocates
//     the box,
//   - constructing hash or RNG state (hash/*.New*, maphash seeds,
//     rand.New*) — these are per-build state, seeded once,
//   - calls to functions known to allocate, through the Allocates
//     fact, so a helper that hides a make in another package is still
//     caught at the hot call site.
//
// The closure's top level is per-chunk territory and is not checked.
// A reviewed exception (a cold error path, a once-per-build slow
// path) is suppressed with //peelvet:allow hotalloc -- <reason>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "per-element loops in pool closures must not allocate\n\n" +
		"Closures passed to Pool.For/ForCtx/RunRanges/RunRangesCtx may " +
		"allocate per chunk (top level) but not per element (inside " +
		"loops): no make/new/composite literals, no append to " +
		"loop-local slices, no interface boxing, no hash/RNG " +
		"construction, no calls into known allocators (Allocates fact).",
	FactTypes: []Fact{new(Allocates)},
	Run:       runHotAlloc,
}

// Allocates is hotalloc's fact about one function: whether calling it
// may heap-allocate, and why.
type Allocates struct {
	Yes    bool
	Reason string `json:",omitempty"`
}

// AFact marks Allocates as a fact type.
func (*Allocates) AFact() {}

func init() { RegisterFact(new(Allocates)) }

// hotBarrierMethods are the pool methods whose closure argument runs
// once per chunk with a per-element loop inside — the hot path
// hotalloc polices. (Plain Run schedules whole tasks, not element
// ranges, so its closures are not element loops.)
var hotBarrierMethods = map[string]bool{
	"For":          true,
	"ForCtx":       true,
	"RunRanges":    true,
	"RunRangesCtx": true,
}

func runHotAlloc(pass *Pass) error {
	if PathHasSuffix(pass.Path(), "internal/parallel") {
		return nil
	}

	// Summarize every declared function and export Allocates facts so
	// importers can police calls into this package from their own hot
	// loops.
	infos := declaredFuncObjects(pass)
	verdicts := map[*types.Func]*Allocates{}
	var resolve func(fn *types.Func) *Allocates
	resolve = func(fn *types.Func) *Allocates {
		if v, ok := verdicts[fn]; ok {
			return v
		}
		fd, local := infos[fn]
		if !local {
			return allocCalleeVerdict(pass, fn)
		}
		// Optimistic placeholder breaks recursion cycles: a knot
		// allocates iff some member directly allocates, which that
		// member's own summary records.
		verdicts[fn] = &Allocates{}
		v := &Allocates{}
		if op := firstAllocOp(pass, fd.Body, nil); op != nil {
			v = &Allocates{Yes: true, Reason: op.desc + " at " + shortPos(pass.Fset, op.pos)}
		} else {
			for _, call := range staticCalls(pass, fd.Body) {
				if cv := resolve(call.callee); cv.Yes {
					v = &Allocates{Yes: true, Reason: "calls " + funcDisplayName(call.callee) + " (" + cv.Reason + ")"}
					break
				}
			}
		}
		verdicts[fn] = v
		return v
	}
	for fn := range infos {
		pass.ExportObjectFact(fn, resolve(fn))
	}

	// Police the hot closures: for each closure literal passed directly
	// to a hot barrier method, flag allocation ops inside its loops.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isHotBarrierCall(pass, call) || pass.InTestFile(call.Pos()) {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				checkHotClosure(pass, lit)
			}
			return true
		})
	}
	return nil
}

// isHotBarrierCall reports whether call is a chunked-iteration barrier
// method on a Pool/Group receiver.
func isHotBarrierCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !hotBarrierMethods[sel.Sel.Name] {
		return false
	}
	return isBarrierCall(pass, call)
}

// checkHotClosure flags per-element allocations: allocation ops inside
// any loop within the closure body. The closure's own top level runs
// once per chunk and is exempt.
func checkHotClosure(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		loopVars := objectsDeclaredIn(pass, n)
		reportAllocOps(pass, body, loopVars)
		return false // reportAllocOps covers nested loops
	})
}

// reportAllocOps reports every allocation op under n (the body of a
// per-element loop). loopVars holds the objects declared inside the
// loop, so appends that grow loop-local slices are distinguished from
// appends into outer per-worker buffers.
func reportAllocOps(pass *Pass, n ast.Node, loopVars map[types.Object]bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if op := classifyAllocOp(pass, n, loopVars, true); op != nil {
			pass.Reportf(op.pos, "%s in a per-element loop of a pool closure: allocate per worker (closure top level) or per build, not per element", op.desc)
		}
		return true
	})
}

// An allocOp is one allocation site.
type allocOp struct {
	pos  token.Pos
	desc string
}

// firstAllocOp returns the first direct allocation op under n, for the
// Allocates fact summary; loop-local append and boxing heuristics are
// skipped (hot=false) because the summary describes the callee's own
// unconditional allocations, not loop context.
func firstAllocOp(pass *Pass, n ast.Node, loopVars map[types.Object]bool) (found *allocOp) {
	ast.Inspect(n, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		found = classifyAllocOp(pass, n, loopVars, false)
		return found == nil
	})
	return found
}

// classifyAllocOp decides whether one node is an allocation op. hot
// selects the loop-context checks (loop-local append, interface
// boxing, Allocates-fact callees) that only make sense at a hot call
// site.
func classifyAllocOp(pass *Pass, n ast.Node, loopVars map[types.Object]bool, hot bool) *allocOp {
	switch n := n.(type) {
	case *ast.CompositeLit:
		tv, ok := pass.TypesInfo.Types[n]
		if !ok {
			return nil
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			return &allocOp{n.Pos(), "slice literal"}
		case *types.Map:
			return &allocOp{n.Pos(), "map literal"}
		}
		return nil
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				return &allocOp{n.Pos(), "heap-escaping &composite literal"}
			}
		}
		return nil
	case *ast.CallExpr:
		return classifyAllocCall(pass, n, loopVars, hot)
	}
	return nil
}

// classifyAllocCall decides whether one call allocates: builtins
// (make, new, growing append), hash/RNG constructors, boxing at the
// call boundary, and (in hot context) callees carrying an Allocates
// fact.
func classifyAllocCall(pass *Pass, call *ast.CallExpr, loopVars map[types.Object]bool, hot bool) *allocOp {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				return &allocOp{call.Pos(), "make"}
			case "new":
				return &allocOp{call.Pos(), "new"}
			case "append":
				if hot && appendsToLoopLocal(pass, call, loopVars) {
					return &allocOp{call.Pos(), "append to a slice declared inside the loop"}
				}
			}
			return nil
		}
	}
	fn := staticCallee(pass, call)
	if fn != nil && fn.Pkg() != nil {
		if desc := statefulConstructorDesc(fn); desc != "" {
			return &allocOp{call.Pos(), desc}
		}
		if hot {
			if v := allocCalleeVerdict(pass, fn); v.Yes {
				return &allocOp{call.Pos(), "call to " + funcDisplayName(fn) + ", which allocates (" + v.Reason + ")"}
			}
		}
	}
	if hot {
		if box := boxedArg(pass, call); box != nil {
			return box
		}
	}
	return nil
}

// appendsToLoopLocal reports whether an append call's destination slice
// is an object declared inside the current loop. Appending to an outer
// per-worker buffer amortizes its growth across the whole chunk and is
// the sanctioned pattern; a loop-local append re-grows from nil every
// element.
func appendsToLoopLocal(pass *Pass, call *ast.CallExpr, loopVars map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	base := ast.Unparen(call.Args[0])
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	return obj != nil && loopVars[obj]
}

// boxedArg reports the first argument implicitly boxed into an
// interface: a concrete (non-interface, non-nil) value passed where the
// signature takes an interface, including ...any variadics. The box is
// a heap allocation per call.
func boxedArg(pass *Pass, call *ast.CallExpr) *allocOp {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through ...: no box
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIfc := pt.Underlying().(*types.Interface); !isIfc {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.IsNil() {
			continue
		}
		if _, argIfc := at.Type.Underlying().(*types.Interface); argIfc {
			continue // interface-to-interface: no new box
		}
		if basic, ok := at.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsUntyped != 0 && at.Value != nil {
			continue // constants box to preallocated or static values
		}
		return &allocOp{arg.Pos(), "interface boxing (concrete value passed to interface parameter)"}
	}
	return nil
}

// statefulConstructorDesc classifies calls that build per-build state —
// hash or RNG — which belongs outside the element loop; "" otherwise.
func statefulConstructorDesc(fn *types.Func) string {
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case strings.HasPrefix(path, "hash/") && strings.HasPrefix(name, "New"):
		return "hash-state construction (" + path + "." + name + ")"
	case path == "hash/maphash" && name == "MakeSeed":
		return "maphash seed construction"
	case (path == "math/rand" || path == "math/rand/v2") && strings.HasPrefix(name, "New"):
		return "RNG construction (" + path + "." + name + ")"
	}
	return ""
}

// allocCalleeVerdict resolves whether a call's static callee allocates:
// intra-package answers come from this run's summaries (the caller
// resolves them before use), cross-package answers from Allocates
// facts; unanalyzed packages are trusted.
func allocCalleeVerdict(pass *Pass, fn *types.Func) *Allocates {
	pkg := fn.Pkg()
	if pkg == nil || PathHasSuffix(pkg.Path(), "internal/parallel") {
		return &Allocates{}
	}
	var fact Allocates
	if pass.ImportObjectFact(fn, &fact) {
		return &fact
	}
	return &Allocates{}
}

// objectsDeclaredIn collects every object whose declaration lies inside
// n (a loop statement): loop variables, := bindings, var decls.
func objectsDeclaredIn(pass *Pass, n ast.Node) map[types.Object]bool {
	objs := map[types.Object]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := pass.TypesInfo.Defs[id]; ok && obj != nil {
				objs[obj] = true
			}
		}
		return true
	})
	return objs
}
