package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// panicAllowed lists the import-path suffixes where panic is legal
// without further justification: internal/parallel's plumbing
// re-panics recovered *PanicError values across barrier boundaries,
// and internal/faultinject exists to inject panics.
var panicAllowed = []string{"internal/parallel", "internal/faultinject"}

// NoPanic reports panic calls in non-test library code. PR 7 set the
// direction: the library returns wrapped sentinel errors, so a served
// request can never kill the process. A panic survives review only as
//
//   - panic plumbing in internal/parallel (re-panicking a recovered
//     *PanicError is how a worker's panic crosses the barrier), or
//   - an injected fault in internal/faultinject, or
//   - a documented programmer-error guard: the enclosing function's doc
//     comment must say so ("Panics if ..."), making the contract part
//     of the API the way math/rand.Intn's is.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc: "flag panic calls in non-test library code\n\n" +
		"Return wrapped sentinel errors instead. A panic is allowed only " +
		"in internal/parallel's panic plumbing, in internal/faultinject, " +
		"or when the enclosing function's doc comment documents it " +
		"(\"Panics if ...\").",
	Run: runNoPanic,
}

func runNoPanic(pass *Pass) error {
	for _, suffix := range panicAllowed {
		if PathHasSuffix(pass.Path(), suffix) {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			if fd := enclosingFuncDecl(f, call.Pos()); fd != nil && docMentionsPanic(fd.Doc) {
				return true
			}
			pass.Reportf(call.Pos(), "panic in library code: return a wrapped sentinel error, or document the guard (\"Panics if ...\") in the enclosing function's doc comment")
			return true
		})
	}
	return nil
}

// enclosingFuncDecl returns the innermost top-level function or method
// declaration containing pos (closures inherit their declaration's doc
// contract), or nil at file scope.
func enclosingFuncDecl(f *ast.File, p token.Pos) *ast.FuncDecl {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= p && p < fd.End() {
			return fd
		}
	}
	return nil
}

// docMentionsPanic reports whether a doc comment declares a panic
// contract.
func docMentionsPanic(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	return strings.Contains(strings.ToLower(doc.Text()), "panic")
}
