package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// This file is the reaching-calls layer shared by the inter-procedural
// analyzers (detflow, hotalloc, nodeprecated): resolving the static
// callee of a call expression, enumerating a package's function
// declarations, and reading peelvet directives out of doc comments.
// Dynamic calls — through function values, interface methods — resolve
// to nil or to the interface method object and are treated
// optimistically by the analyzers; the runtime's hot paths are direct
// calls, which is what makes the cheap static approximation useful.

// staticCallee returns the *types.Func a call statically invokes — a
// package function, a qualified pkg.Func, or a concrete method — or nil
// for builtins, conversions, and calls through function values.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// A callSite is one static call: where, and to what.
type callSite struct {
	pos    token.Pos
	callee *types.Func
}

// staticCalls returns every statically resolvable call under n, in
// source order.
func staticCalls(pass *Pass, n ast.Node) []callSite {
	var calls []callSite
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := staticCallee(pass, call); fn != nil {
				calls = append(calls, callSite{pos: call.Pos(), callee: fn})
			}
		}
		return true
	})
	return calls
}

// declaredFuncObjects maps each package-level function declaration in
// non-test files to its object. Test files are excluded: the
// inter-procedural analyzers reason about library code only.
func declaredFuncObjects(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// docHasDirective reports whether one of doc's comment lines is exactly
// the given //-directive (trailing whitespace ignored), e.g.
// "//peelvet:deterministic". Directives follow the Go convention of
// machine-readable //tool:directive comments with no space after "//".
func docHasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimRight(c.Text, " \t") == directive {
			return true
		}
	}
	return false
}

// deprecationMessage returns a doc comment's "Deprecated:" paragraph —
// from the marker to the next blank line, wrapped lines joined — or ""
// when the doc declares no deprecation. This is the standard Go
// convention the PR 4/PR 6 facades follow.
func deprecationMessage(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	lines := strings.Split(doc.Text(), "\n")
	for i, line := range lines {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), "Deprecated:")
		if !ok {
			continue
		}
		parts := []string{strings.TrimSpace(rest)}
		for _, next := range lines[i+1:] {
			next = strings.TrimSpace(next)
			if next == "" {
				break
			}
			parts = append(parts, next)
		}
		return strings.TrimSpace(strings.Join(parts, " "))
	}
	return ""
}

// shortPos renders pos as "file.go:123" for embedding in fact reasons —
// base name only, so vetx content is independent of checkout location.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(p.Line)
}

// funcDisplayName renders fn for diagnostics: "pkg.Name" or
// "pkg.(Recv).Name" using the package's base name.
func funcDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return pkg + "(" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkg + fn.Name()
}
