package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestNoSpawn(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoSpawn, "nospawn")
}

func TestCtxBarrier(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.CtxBarrier, "ctxbarrier")
}

func TestNoUnsafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoUnsafe, "nounsafe")
}

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoPanic, "nopanic")
}

func TestAtomicShard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.AtomicShard, "atomicshard")
}

// TestSuppression exercises the //peelvet:allow machinery: in-place and
// next-line suppression, the mandatory reason clause, and analyzer-name
// matching.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoSpawn, "suppress")
}

// TestAnalyzersFire asserts each analyzer demonstrably produces at
// least one finding on its testdata package — the acceptance criterion
// that none of the five has silently rotted into a no-op.
func TestAnalyzersFire(t *testing.T) {
	for _, a := range analysis.Analyzers() {
		diags := analysistest.Run(t, analysistest.TestData(), a, a.Name)
		fired := false
		for _, d := range diags {
			if d.Analyzer == a.Name {
				fired = true
			}
		}
		if !fired {
			t.Errorf("%s: no findings on testdata/src/%s — the analyzer no longer fires", a.Name, a.Name)
		}
	}
}
