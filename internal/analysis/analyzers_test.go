package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestNoSpawn(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoSpawn, "nospawn")
}

func TestCtxBarrier(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.CtxBarrier, "ctxbarrier")
}

func TestNoUnsafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoUnsafe, "nounsafe")
}

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoPanic, "nopanic")
}

func TestAtomicShard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.AtomicShard, "atomicshard")
}

// TestDetFlow covers the determinism-root propagation, including the
// cross-package finding: sub.ShuffledKeys's map range is exported as a
// Deterministic fact by the sub package's analysis and reported at the
// call site in the importing root.
func TestDetFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.DetFlow, "detflow")
}

// TestHotAlloc covers per-element allocation discipline in pool
// closures, including the fact-driven finding against sub.MakeBuf.
func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.HotAlloc, "hotalloc")
}

// TestNoDeprecated covers facade detection from doc comments, the
// same-file and deprecated-caller exemptions, and the cross-package
// Deprecated fact.
func TestNoDeprecated(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoDeprecated, "nodeprecated")
}

// TestSuppression exercises the //peelvet:allow machinery: in-place and
// next-line suppression, the mandatory reason clause, and analyzer-name
// matching.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoSpawn, "suppress")
}

// TestAnalyzersFire asserts each analyzer demonstrably produces at
// least one finding on its testdata package — the acceptance criterion
// that none of the suite has silently rotted into a no-op. For the
// fact-driven analyzers (detflow, hotalloc, nodeprecated) the testdata
// package imports a testdata subpackage, so a passing run also proves
// facts flow across the package boundary.
func TestAnalyzersFire(t *testing.T) {
	for _, a := range analysis.Analyzers() {
		diags := analysistest.Run(t, analysistest.TestData(), a, a.Name)
		fired := false
		for _, d := range diags {
			if d.Analyzer == a.Name {
				fired = true
			}
		}
		if !fired {
			t.Errorf("%s: no findings on testdata/src/%s — the analyzer no longer fires", a.Name, a.Name)
		}
	}
}
