package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// markVetxOnly rewrites a writeUnit config with VetxOnly set, the form
// cmd/go uses for pure dependencies.
func markVetxOnly(t *testing.T, cfgPath string) {
	t.Helper()
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		t.Fatal(err)
	}
	cfg.VetxOnly = true
	data, err = json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
}

// TestFactStoreRoundTrip proves the .vetx serialization is lossless and
// deterministic: what one process's EncodePackage writes, another
// process's DecodePackage reconstructs bit-for-bit.
func TestFactStoreRoundTrip(t *testing.T) {
	s := NewFactStore()
	s.put("repro/internal/core", "ParallelOrderCtx", &Deterministic{Ok: true})
	s.put("repro/internal/core", "shuffle", &Deterministic{Reason: "ranges over a map at x.go:3"})
	s.put("repro/internal/core", "shuffle", &Allocates{Yes: true, Reason: "make at x.go:4"})
	s.put("repro/internal/core", "Old", &Deprecated{Msg: "use New"})

	data, err := s.EncodePackage("repro/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	data2, err := s.EncodePackage("repro/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("EncodePackage is not deterministic")
	}

	s2 := NewFactStore()
	if err := s2.DecodePackage("repro/internal/core", data); err != nil {
		t.Fatal(err)
	}
	if !s2.Analyzed("repro/internal/core") {
		t.Error("DecodePackage did not mark the package analyzed")
	}
	var det Deterministic
	if !s2.get("repro/internal/core", "ParallelOrderCtx", &det) || !det.Ok {
		t.Errorf("ParallelOrderCtx fact = %+v, want Ok", det)
	}
	if !s2.get("repro/internal/core", "shuffle", &det) || det.Ok || det.Reason != "ranges over a map at x.go:3" {
		t.Errorf("shuffle Deterministic fact = %+v", det)
	}
	var alloc Allocates
	if !s2.get("repro/internal/core", "shuffle", &alloc) || !alloc.Yes {
		t.Errorf("shuffle Allocates fact = %+v", alloc)
	}
	var dep Deprecated
	if !s2.get("repro/internal/core", "Old", &dep) || dep.Msg != "use New" {
		t.Errorf("Old Deprecated fact = %+v", dep)
	}
	if s2.get("repro/internal/core", "Missing", &det) {
		t.Error("got a fact for an object that has none")
	}
	if s2.get("repro/internal/other", "Old", &dep) {
		t.Error("got a fact from the wrong package")
	}
}

// TestFactStoreSkipsUnknownTypes: a vetx written by a newer tool with a
// fact type this binary does not register must not fail decoding — the
// known facts still load.
func TestFactStoreSkipsUnknownTypes(t *testing.T) {
	blob := `{"object":"F","type":"*analysis.FutureFact","data":{"X":1}}
{"object":"F","type":"*analysis.Deprecated","data":{"Msg":"use G"}}
`
	s := NewFactStore()
	if err := s.DecodePackage("p", []byte(blob)); err != nil {
		t.Fatal(err)
	}
	var dep Deprecated
	if !s.get("p", "F", &dep) || dep.Msg != "use G" {
		t.Errorf("Deprecated fact = %+v, want Msg=\"use G\"", dep)
	}
}

// TestUnitcheckerWritesFacts: a unit whose source declares a deprecated
// function and a nondeterministic root helper must serialize those
// verdicts into VetxOutput — the file cmd/go hands to every importer's
// unit.
func TestUnitcheckerWritesFacts(t *testing.T) {
	src := `package tmpvet

// Old is gone.
//
// Deprecated: use New.
func Old() {}

// New replaces Old.
func New() {}

// Shuffled is value-nondeterministic.
func Shuffled(m map[int]int) int {
	for k := range m {
		return k
	}
	return 0
}
`
	cfgPath, vetx := writeUnit(t, src, false)
	var stderr bytes.Buffer
	if code := RunUnitchecker(cfgPath, Analyzers(), &stderr); code != ExitClean {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, ExitClean, stderr.String())
	}
	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatal(err)
	}
	s := NewFactStore()
	if err := s.DecodePackage("tmpvet", data); err != nil {
		t.Fatal(err)
	}
	var dep Deprecated
	if !s.get("tmpvet", "Old", &dep) || !strings.Contains(dep.Msg, "use New") {
		t.Errorf("Old Deprecated fact = %+v, want Msg mentioning New", dep)
	}
	var det Deterministic
	if !s.get("tmpvet", "Shuffled", &det) || det.Ok || !strings.Contains(det.Reason, "ranges over a map") {
		t.Errorf("Shuffled Deterministic fact = %+v, want a map-range reason", det)
	}
	if !s.get("tmpvet", "New", &det) || !det.Ok {
		t.Errorf("New Deterministic fact = %+v, want Ok", det)
	}
}

// TestUnitcheckerVetxOnlyProducesFacts: a VetxOnly unit (analyzed only
// as a dependency) must still run the fact-producing analyzers — an
// empty facts file here would silently disable every cross-package
// finding in importers.
func TestUnitcheckerVetxOnlyProducesFacts(t *testing.T) {
	src := `package tmpvet

// Deprecated: use nothing.
func Old() {}
`
	cfgPath, vetx := writeUnit(t, src, false)
	markVetxOnly(t, cfgPath)
	var stderr bytes.Buffer
	if code := RunUnitchecker(cfgPath, Analyzers(), &stderr); code != ExitClean {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, ExitClean, stderr.String())
	}
	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatal(err)
	}
	s := NewFactStore()
	if err := s.DecodePackage("tmpvet", data); err != nil {
		t.Fatal(err)
	}
	var dep Deprecated
	if !s.get("tmpvet", "Old", &dep) {
		t.Error("VetxOnly run exported no Deprecated fact for Old")
	}
}
