package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// This file implements the cmd/go vet-tool protocol, the peelvet
// equivalent of golang.org/x/tools/go/analysis/unitchecker: when cmd/go
// runs `go vet -vettool=peelvet ./...` it invokes the tool once per
// package with a single @file argument naming a JSON "vet config" that
// carries the file list and the export-data locations of every
// dependency (cmd/go has already built them). The tool type-checks the
// unit from that config, runs the analyzers, prints diagnostics to
// stderr, and must write the VetxOutput facts file (empty here — the
// peelvet analyzers are package-local and exchange no facts).

// vetConfig mirrors the JSON schema cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Unitchecker exit codes, matching x/tools unitchecker: cmd/go treats
// any nonzero exit as "vet failed" and relays stderr.
const (
	ExitClean    = 0
	ExitError    = 1
	ExitFindings = 2
)

// RunUnitchecker executes one vet unit described by the config file at
// cfgPath, running analyzers over it and printing diagnostics to stderr.
// It returns the process exit code.
func RunUnitchecker(cfgPath string, analyzers []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "peelvet: reading vet config: %v\n", err)
		return ExitError
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "peelvet: parsing vet config %s: %v\n", cfgPath, err)
		return ExitError
	}

	// The facts file must exist even for fact-free tools — cmd/go caches
	// it and refuses to proceed without it.
	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "peelvet: writing %s: %v\n", cfg.VetxOutput, err)
			return false
		}
		return true
	}
	if cfg.VetxOnly {
		if !writeVetx() {
			return ExitError
		}
		return ExitClean
	}

	fset, diags, typeErrs, err := checkUnit(&cfg, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "peelvet: %s: %v\n", cfg.ImportPath, err)
		return ExitError
	}
	if len(typeErrs) > 0 && cfg.SucceedOnTypecheckFailure {
		// cmd/go sets this when the package is known not to compile; the
		// real build error is reported elsewhere.
		writeVetx()
		return ExitClean
	}
	if !writeVetx() {
		return ExitError
	}
	for _, err := range typeErrs {
		fmt.Fprintf(stderr, "peelvet: %s: %v\n", cfg.ImportPath, err)
	}
	if len(typeErrs) > 0 {
		return ExitError
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// checkUnit parses and type-checks the unit and runs the analyzers.
func checkUnit(cfg *vetConfig, analyzers []*Analyzer) (*token.FileSet, []Diagnostic, []error, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}

	imp := newUnitImporter(fset, cfg)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	if conf.Sizes == nil {
		conf.Sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	tpkg, _ := conf.Check(cfg.ImportPath, fset, files, info)

	diags, err := RunAnalyzers(fset, files, tpkg, info, analyzers)
	if err != nil {
		return nil, nil, nil, err
	}
	return fset, diags, typeErrs, nil
}

// newUnitImporter resolves imports through the export-data files cmd/go
// listed in the vet config. ImportMap translates source-level import
// paths (possibly vendored) to canonical package paths; PackageFile maps
// canonical paths to export data.
func newUnitImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return base.Import(path)
	})
}

// PrintVersion implements the -V=full handshake cmd/go uses to build the
// vet cache key. The output format ("name version ...") is prescribed;
// the version token folds in the analyzer names so adding an analyzer
// invalidates cached vet results.
func PrintVersion(w io.Writer, name string, analyzers []*Analyzer) {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	fmt.Fprintf(w, "%s version devel-%s buildID=none\n", name, strings.Join(names, "+"))
}

// PrintFlags implements the -flags handshake: cmd/go asks the tool which
// flags it supports before forwarding any. Peelvet takes none, so the
// answer is an empty JSON array.
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}
