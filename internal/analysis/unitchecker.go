package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// This file implements the cmd/go vet-tool protocol, the peelvet
// equivalent of golang.org/x/tools/go/analysis/unitchecker: when cmd/go
// runs `go vet -vettool=peelvet ./...` it invokes the tool once per
// package with a single @file argument naming a JSON "vet config" that
// carries the file list and the export-data locations of every
// dependency (cmd/go has already built them). The tool type-checks the
// unit from that config, runs the analyzers, prints diagnostics to
// stderr, and writes the unit's analyzer facts to the VetxOutput file.
//
// Facts make the protocol's PackageVetx/VetxOutput/VetxOnly fields
// load-bearing: cmd/go hands each unit the serialized facts of its
// already-analyzed dependencies (cached like any build artifact) and
// caches what the unit writes in turn, so inter-procedural analyzers
// (detflow, hotalloc, nodeprecated) stay exactly as incremental and
// cache-correct as compilation. A VetxOnly unit — a dependency being
// analyzed only so its importers can see its facts — runs just the
// fact-producing analyzers and reports nothing.

// vetConfig mirrors the JSON schema cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Unitchecker exit codes, matching x/tools unitchecker: cmd/go treats
// any nonzero exit as "vet failed" and relays stderr.
const (
	ExitClean    = 0
	ExitError    = 1
	ExitFindings = 2
)

// RunUnitchecker executes one vet unit described by the config file at
// cfgPath, running analyzers over it and printing diagnostics to stderr.
// It returns the process exit code.
func RunUnitchecker(cfgPath string, analyzers []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "peelvet: reading vet config: %v\n", err)
		return ExitError
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "peelvet: parsing vet config %s: %v\n", cfgPath, err)
		return ExitError
	}

	// Import the facts of every already-analyzed dependency. A vetx file
	// cmd/go names but cannot be read is an error: silently dropping it
	// would turn real cross-package findings into false negatives.
	store := NewFactStore()
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(stderr, "peelvet: reading facts for %s: %v\n", path, err)
			return ExitError
		}
		if err := store.DecodePackage(path, data); err != nil {
			fmt.Fprintf(stderr, "peelvet: %v\n", err)
			return ExitError
		}
	}

	// A VetxOnly unit exists solely to produce facts for importers: run
	// only the fact-producing analyzers and report nothing. The vetx file
	// must be written even when no analyzer produces facts — cmd/go
	// caches it and refuses to proceed without it.
	if cfg.VetxOnly {
		analyzers = factProducers(analyzers)
	}

	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		data, err := store.EncodePackage(cfg.ImportPath)
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, data, 0o666)
		}
		if err != nil {
			fmt.Fprintf(stderr, "peelvet: writing %s: %v\n", cfg.VetxOutput, err)
			return false
		}
		return true
	}

	fset, diags, typeErrs, err := checkUnit(&cfg, analyzers, store)
	if err != nil {
		fmt.Fprintf(stderr, "peelvet: %s: %v\n", cfg.ImportPath, err)
		return ExitError
	}
	if len(typeErrs) > 0 && cfg.SucceedOnTypecheckFailure {
		// cmd/go sets this when the package is known not to compile; the
		// real build error is reported elsewhere.
		writeVetx()
		return ExitClean
	}
	if !writeVetx() {
		return ExitError
	}
	if cfg.VetxOnly {
		return ExitClean
	}
	for _, err := range typeErrs {
		fmt.Fprintf(stderr, "peelvet: %s: %v\n", cfg.ImportPath, err)
	}
	if len(typeErrs) > 0 {
		return ExitError
	}
	findings := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		findings++
		fmt.Fprintf(stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if findings > 0 {
		return ExitFindings
	}
	return ExitClean
}

// factProducers filters analyzers to those that export or import facts —
// the only ones whose VetxOnly run has an observable effect.
func factProducers(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			out = append(out, a)
		}
	}
	return out
}

// checkUnit parses and type-checks the unit and runs the analyzers.
func checkUnit(cfg *vetConfig, analyzers []*Analyzer, store *FactStore) (*token.FileSet, []Diagnostic, []error, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}

	imp := newUnitImporter(fset, cfg)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	if conf.Sizes == nil {
		conf.Sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	tpkg, _ := conf.Check(cfg.ImportPath, fset, files, info)

	diags, err := RunAnalyzers(fset, files, tpkg, info, analyzers, store)
	if err != nil {
		return nil, nil, nil, err
	}
	return fset, diags, typeErrs, nil
}

// newUnitImporter resolves imports through the export-data files cmd/go
// listed in the vet config. ImportMap translates source-level import
// paths (possibly vendored) to canonical package paths; PackageFile maps
// canonical paths to export data.
func newUnitImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	//peelvet:allow nodeprecated -- the deprecation covers only nil lookup; this lookup is non-nil
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return base.Import(path)
	})
}

// PrintVersion implements the -V=full handshake cmd/go uses to build the
// vet cache key. The output format ("name version ...") is prescribed;
// the version token folds in the analyzer names so adding an analyzer
// invalidates cached vet results.
func PrintVersion(w io.Writer, name string, analyzers []*Analyzer) {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	fmt.Fprintf(w, "%s version devel-%s buildID=none\n", name, strings.Join(names, "+"))
}

// PrintFlags implements the -flags handshake: cmd/go asks the tool which
// flags it supports before forwarding any. Peelvet takes none, so the
// answer is an empty JSON array.
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}
