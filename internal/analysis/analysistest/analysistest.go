// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against // want annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the repo's
// stdlib-only framework.
//
// A test package lives under internal/analysis/testdata/src/<name> —
// inside the module (so "go list" can compile it against the real
// dependency graph) but under a testdata element (so repo-wide ./...
// patterns never match its deliberately bad code).
//
// Each line that should produce a finding carries an annotation whose
// argument is a regular expression the finding's message must match:
//
//	go func() {}() // want `raw go statement`
//
// Several annotations on one line mean several findings. A finding on
// a line without a matching annotation, or an annotation without a
// finding, fails the test.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"testing"

	"repro/internal/analysis"
)

// wantRe matches one annotation: // want `re` "re" ...
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:[`\"][^`\"]*[`\"]\\s*)+)")

var argRe = regexp.MustCompile("[`\"]([^`\"]*)[`\"]")

// TestData returns the absolute path of the testdata directory next to
// the caller's package. Panics if the runtime provides no caller
// information.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: no caller information")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// Run loads testdata/src/<pkg> for each named package — including any
// subpackages, so a test package can import a testdata dependency and
// exercise cross-package facts — applies the analyzer in dependency
// order with one shared fact store, and checks the findings against the
// // want annotations of every loaded file. Suppressed findings are
// dropped, as the text drivers drop them. It returns the surviving
// diagnostics for further assertions.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) []analysis.Diagnostic {
	t.Helper()
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		loaded, err := analysis.Load(analysis.LoadConfig{Dir: dir, Tests: true}, "./...")
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		// "go list -deps" order: dependencies precede importers, so facts
		// exported by a testdata subpackage are visible when the parent
		// package is analyzed.
		store := analysis.NewFactStore()
		for _, lp := range loaded {
			for _, terr := range lp.TypeErrors {
				t.Errorf("%s: type error: %v", pkg, terr)
			}
			diags, err := analysis.RunAnalyzers(lp.Fset, lp.Files, lp.Types, lp.Info, []*analysis.Analyzer{a}, store)
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
			}
			kept := diags[:0]
			for _, d := range diags {
				if !d.Suppressed {
					kept = append(kept, d)
				}
			}
			all = append(all, kept...)
			check(t, lp, kept)
		}
	}
	return all
}

// expectation is one want annotation.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// check compares diagnostics against annotations, both keyed by
// (file, line).
func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, am := range argRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(am[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, am[1], err)
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: am[1]})
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected finding: %s", relPos(pos), d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected finding matching %q, got none", key, w.raw)
			}
		}
	}
}

func relPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(pos.Filename), pos.Line, pos.Column)
}
