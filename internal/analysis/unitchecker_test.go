package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeUnit builds a vet-config unit around one source file and returns
// the config path and the VetxOutput path.
func writeUnit(t *testing.T, src string, succeedOnTypecheckFailure bool) (string, string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "unit.go")
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "unit.vetx")
	cfg := vetConfig{
		ID:                        "tmpvet",
		Compiler:                  "gc",
		Dir:                       dir,
		ImportPath:                "tmpvet",
		GoFiles:                   []string{goFile},
		VetxOutput:                vetx,
		SucceedOnTypecheckFailure: succeedOnTypecheckFailure,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetx
}

func TestUnitcheckerFindings(t *testing.T) {
	cfgPath, vetx := writeUnit(t, "package tmpvet\n\nfunc f() {\n\tgo func() {}()\n}\n", false)
	var stderr bytes.Buffer
	code := RunUnitchecker(cfgPath, []*Analyzer{NoSpawn}, &stderr)
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, ExitFindings, stderr.String())
	}
	if !strings.Contains(stderr.String(), "nospawn") {
		t.Errorf("stderr missing nospawn diagnostic: %s", stderr.String())
	}
	// The facts file must exist even when there are findings — cmd/go
	// caches it.
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput not written: %v", err)
	}
}

func TestUnitcheckerClean(t *testing.T) {
	cfgPath, vetx := writeUnit(t, "package tmpvet\n\nfunc f() int { return 1 }\n", false)
	var stderr bytes.Buffer
	if code := RunUnitchecker(cfgPath, Analyzers(), &stderr); code != ExitClean {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, ExitClean, stderr.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput not written: %v", err)
	}
}

func TestUnitcheckerTypecheckFailure(t *testing.T) {
	const broken = "package tmpvet\n\nfunc f() int { return undefined }\n"

	var stderr bytes.Buffer
	cfgPath, _ := writeUnit(t, broken, false)
	if code := RunUnitchecker(cfgPath, Analyzers(), &stderr); code != ExitError {
		t.Errorf("exit = %d, want %d for a broken unit", code, ExitError)
	}

	// With SucceedOnTypecheckFailure the real compile error is reported
	// by the build itself; vet must stay silent and succeed.
	stderr.Reset()
	cfgPath, vetx := writeUnit(t, broken, true)
	if code := RunUnitchecker(cfgPath, Analyzers(), &stderr); code != ExitClean {
		t.Errorf("exit = %d, want %d with SucceedOnTypecheckFailure", code, ExitClean)
	}
	if stderr.Len() != 0 {
		t.Errorf("unexpected output: %s", stderr.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput not written: %v", err)
	}
}

func TestUnitcheckerVetxOnly(t *testing.T) {
	cfgPath, vetx := writeUnit(t, "package tmpvet\n\nfunc f() {\n\tgo func() {}()\n}\n", false)
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		t.Fatal(err)
	}
	cfg.VetxOnly = true
	data, err = json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	if code := RunUnitchecker(cfgPath, Analyzers(), &stderr); code != ExitClean {
		t.Fatalf("exit = %d, want %d in VetxOnly mode\nstderr: %s", code, ExitClean, stderr.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput not written: %v", err)
	}
}
