package analysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// This file is the facts half of the framework: the mechanism by which
// an analyzer's per-function conclusions in one package become inputs
// when analyzing its importers. It mirrors the Fact machinery of
// golang.org/x/tools/go/analysis on top of the stdlib-only framework:
// an analyzer exports facts about package-level objects while analyzing
// the defining package, and imports them — across package and even
// process boundaries — while analyzing a dependent package.
//
// Facts travel two ways:
//
//   - In-process: the standalone driver (cmd/peelvet, analysistest,
//     TestPeelvetRepoClean) analyzes packages in dependency order — "go
//     list -deps" guarantees dependencies precede dependents — threading
//     one FactStore through the whole run.
//   - Across processes: under "go vet -vettool=peelvet", cmd/go runs the
//     tool once per package and hands it the serialized fact files
//     (".vetx") of already-analyzed dependencies via the vet config's
//     PackageVetx map; the tool writes its own package's facts to
//     VetxOutput, which cmd/go caches alongside build artifacts — so
//     fact flow is exactly as cache-correct as compilation itself.
//
// Because the type-checker universe differs between the run that defines
// an object (source) and the run that imports it (export data), facts
// are keyed by (package path, object key) strings rather than by
// types.Object identity; see ObjectKey.

// A Fact is a serializable datum an analyzer attaches to a package-level
// object. Concrete fact types must be pointers to JSON-marshalable
// structs and must be registered with RegisterFact before use.
type Fact interface {
	// AFact is a marker method tying the type to this interface.
	AFact()
}

// factRegistry maps a fact type's name to its concrete (pointer) type so
// serialized facts can be decoded.
var factRegistry = map[string]reflect.Type{}

// RegisterFact makes a fact type decodable; call it from an init
// function in the file declaring the type. Panics if two distinct types
// share a name (a programmer error caught at process start).
func RegisterFact(f Fact) {
	t := reflect.TypeOf(f)
	name := factTypeName(t)
	if prev, ok := factRegistry[name]; ok && prev != t {
		panic(fmt.Sprintf("analysis: fact type name %q registered twice", name))
	}
	factRegistry[name] = t
}

// factTypeName names a fact's concrete type, e.g. "*analysis.Deterministic".
func factTypeName(t reflect.Type) string { return t.String() }

// ObjectKey names a package-level object within its package: "Name" for
// functions, types, and variables, and "Recv.Name" for methods (pointer
// receivers stripped). The empty string means the object cannot carry
// facts (local variables, imported package names, struct fields).
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch obj := obj.(type) {
	case *types.Func:
		sig, ok := obj.Type().(*types.Signature)
		if !ok {
			return ""
		}
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := types.Unalias(t).(*types.Named)
			if !ok {
				return "" // method on an unnamed type (interface literal)
			}
			return named.Obj().Name() + "." + obj.Name()
		}
		return obj.Name()
	case *types.TypeName, *types.Var, *types.Const:
		if obj.Parent() != obj.Pkg().Scope() {
			return "" // not package-level
		}
		return obj.Name()
	}
	return ""
}

// A factKey locates one fact: which object, which fact type.
type factKey struct {
	object   string // ObjectKey within the package
	factType reflect.Type
}

// A FactStore holds decoded facts for every package seen in one
// analysis run, plus the set of packages actually analyzed — the
// distinction detflow and hotalloc use to separate "analyzed and proven
// clean" from "never looked at" (stdlib, out-of-run packages).
// The zero value is not usable; call NewFactStore.
type FactStore struct {
	pkgs     map[string]map[factKey]Fact
	analyzed map[string]bool
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{pkgs: map[string]map[factKey]Fact{}, analyzed: map[string]bool{}}
}

// MarkAnalyzed records that pkg's source was analyzed in this run (or a
// prior cached one), so an absent fact about its objects is a verdict,
// not ignorance.
func (s *FactStore) MarkAnalyzed(path string) { s.analyzed[path] = true }

// Analyzed reports whether pkg was analyzed; see MarkAnalyzed.
func (s *FactStore) Analyzed(path string) bool { return s.analyzed[path] }

// put stores fact for (path, object).
func (s *FactStore) put(path, object string, fact Fact) {
	m := s.pkgs[path]
	if m == nil {
		m = map[factKey]Fact{}
		s.pkgs[path] = m
	}
	m[factKey{object, reflect.TypeOf(fact)}] = fact
}

// get copies the stored fact for (path, object, type of out) into out
// and reports whether one existed.
func (s *FactStore) get(path, object string, out Fact) bool {
	fact, ok := s.pkgs[path][factKey{object, reflect.TypeOf(out)}]
	if !ok {
		return false
	}
	reflect.ValueOf(out).Elem().Set(reflect.ValueOf(fact).Elem())
	return true
}

// factEntry is the serialized form of one fact, one JSON object per
// line in a .vetx file.
type factEntry struct {
	Object string          `json:"object"`
	Type   string          `json:"type"`
	Data   json.RawMessage `json:"data"`
}

// EncodePackage serializes path's facts deterministically (sorted by
// object then type) — the format written to the unitchecker's
// VetxOutput. A package with no facts encodes to an empty slice.
func (s *FactStore) EncodePackage(path string) ([]byte, error) {
	m := s.pkgs[path]
	entries := make([]factEntry, 0, len(m))
	for k, fact := range m {
		data, err := json.Marshal(fact)
		if err != nil {
			return nil, fmt.Errorf("encoding fact %s for %s.%s: %w", k.factType, path, k.object, err)
		}
		entries = append(entries, factEntry{Object: k.object, Type: factTypeName(k.factType), Data: data})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Object != entries[j].Object {
			return entries[i].Object < entries[j].Object
		}
		return entries[i].Type < entries[j].Type
	})
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// DecodePackage loads a .vetx blob as path's facts and marks the
// package analyzed. Facts of unregistered types are skipped (an older
// tool version wrote them); malformed lines are errors.
func (s *FactStore) DecodePackage(path string, data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e factEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("decoding facts for %s: %w", path, err)
		}
		t, ok := factRegistry[e.Type]
		if !ok {
			continue
		}
		fact := reflect.New(t.Elem()).Interface().(Fact)
		if err := json.Unmarshal(e.Data, fact); err != nil {
			return fmt.Errorf("decoding %s fact for %s.%s: %w", e.Type, path, e.Object, err)
		}
		s.put(path, e.Object, fact)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("decoding facts for %s: %w", path, err)
	}
	s.MarkAnalyzed(path)
	return nil
}

// ExportObjectFact associates fact with obj, which must be a
// package-level object of the package under analysis. Facts about
// objects that cannot carry them (see ObjectKey) are silently dropped —
// analyzers need not special-case locals.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	key := ObjectKey(obj)
	if key == "" {
		return
	}
	p.facts.put(obj.Pkg().Path(), key, fact)
}

// ImportObjectFact copies into fact the fact of fact's type previously
// exported about obj — by this pass (same package) or by the analysis
// of obj's defining package — and reports whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	return p.facts.get(obj.Pkg().Path(), key, fact)
}

// PackageAnalyzed reports whether path was analyzed earlier in this run
// (or its facts were imported from a cached .vetx): the guard that keeps
// fact-driven analyzers from inventing verdicts about packages nobody
// looked at.
func (p *Pass) PackageAnalyzed(path string) bool {
	return p.facts != nil && p.facts.Analyzed(path)
}
