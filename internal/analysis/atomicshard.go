package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicShard reports plain (non-atomic) reads and writes of a scalar
// variable or struct field that is elsewhere in the package passed by
// address to a sync/atomic function. Mixing the two access modes is a
// data race the race detector only catches if a test happens to
// interleave them — exactly the bug the pool's poison pointer and the
// serving generation counter are one typo away from.
//
// Scope is deliberately the control-word class: tracked targets are
// &v (a package-level or local variable) and &recv.f (a field reached
// through the enclosing method's receiver — the shape every atomic
// control word in this codebase has). Indexed targets like
// &cells[i].Count, and fields reached through non-receiver pointers
// (helpers handed one element of a sharded array), are not tracked,
// because per-element phase separation — a parallel phase using
// atomics, then a serial phase owning the array — is this codebase's
// documented idiom (erasure cells, IBLT counts, degree arrays), and
// flagging it would drown the scalar control-word class the analyzer
// exists for. Once a field is tracked, though, every plain access to
// it is flagged no matter how it is reached.
//
// A deliberate mixed access (for example a constructor writing a field
// before the value is published) is suppressed in place:
//
//	s.gen = 0 //peelvet:allow atomicshard -- not yet published
var AtomicShard = &Analyzer{
	Name: "atomicshard",
	Doc: "flag plain access to scalars that are elsewhere accessed via sync/atomic\n\n" +
		"A variable or field passed to sync/atomic anywhere in the package " +
		"must be accessed atomically everywhere (test files included — a " +
		"racy test is still a race).",
	Run: runAtomicShard,
}

// atomicOps matches the sync/atomic function-name prefixes that take an
// address argument.
var atomicOps = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "Or", "And"}

func runAtomicShard(pass *Pass) error {
	// Pass 1: collect tracked objects — targets of &v / &recv.f
	// arguments to sync/atomic calls — and remember every node an
	// atomic call consumes (tracked shape or not) so pass 2 never
	// flags the atomic accesses themselves.
	tracked := map[types.Object]token.Pos{} // object -> first atomic access
	inAtomic := map[ast.Node]bool{}         // nodes consumed by an atomic call
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := receiverObj(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pass, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					markConsumed(un.X, inAtomic)
					obj := addressedScalar(pass, un.X, recv)
					if obj == nil {
						continue
					}
					if _, seen := tracked[obj]; !seen {
						tracked[obj] = un.Pos()
					}
				}
				return true
			})
		}
	}
	if len(tracked) == 0 {
		return nil
	}

	// Pass 2: every other load or store of a tracked object is a
	// finding.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if inAtomic[x] {
					return true
				}
				sel, ok := pass.TypesInfo.Selections[x]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				if _, yes := tracked[sel.Obj()]; yes {
					pass.Reportf(x.Pos(), "plain access to %s, which is accessed via sync/atomic elsewhere in this package: use the atomic form", fieldDesc(sel.Obj()))
				}
			case *ast.Ident:
				if inAtomic[x] {
					return true
				}
				obj := pass.TypesInfo.Uses[x]
				if obj == nil {
					return true
				}
				if _, yes := tracked[obj]; !yes {
					return true
				}
				// Field idents inside SelectorExprs resolve through
				// Selections, handled above; a bare Ident hit here is a
				// variable.
				if _, isVar := obj.(*types.Var); isVar && !isFieldObj(obj) {
					pass.Reportf(x.Pos(), "plain access to %s, which is accessed via sync/atomic elsewhere in this package: use the atomic form", obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call is sync/atomic.XxxYyy for a tracked
// operation prefix.
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, op := range atomicOps {
		if strings.HasPrefix(sel.Sel.Name, op) {
			return true
		}
	}
	return false
}

// markConsumed records the selector/identifier nodes under an atomic
// call's &argument so the plain-access pass skips them, whatever their
// shape (including &cells[i].Count, whose SelectorExpr would otherwise
// read as a plain access to a tracked field).
func markConsumed(expr ast.Expr, inAtomic map[ast.Node]bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			inAtomic[n] = true
		}
		return true
	})
}

// addressedScalar resolves &expr's target to a trackable object: a
// variable identifier, or a field selected through the enclosing
// method's receiver (recv.f). Indexed targets and fields reached
// through other pointers return nil — the sharded-array idiom is out of
// scope by design.
func addressedScalar(pass *Pass, expr ast.Expr, recv types.Object) types.Object {
	switch x := expr.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if v, ok := obj.(*types.Var); ok && !isFieldObj(v) {
			return v
		}
	case *ast.SelectorExpr:
		id, ok := x.X.(*ast.Ident)
		if !ok || recv == nil || pass.TypesInfo.Uses[id] != recv {
			return nil
		}
		sel, ok := pass.TypesInfo.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			return nil
		}
		return sel.Obj()
	}
	return nil
}

// receiverObj returns the *types.Var of fd's receiver, or nil for plain
// functions and anonymous receivers.
func receiverObj(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

func isFieldObj(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.IsField()
}

// fieldDesc names a field as "Type.field" when its owner is known.
func fieldDesc(obj types.Object) string {
	return obj.Name()
}
