package analysis

// Analyzers returns the peelvet suite in reporting order: every
// invariant the repository enforces at compile time. cmd/peelvet runs
// exactly this list, and TestPeelvetRepoClean asserts the tree at head
// is clean under it.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoSpawn,
		CtxBarrier,
		NoUnsafe,
		NoPanic,
		AtomicShard,
	}
}
