package analysis

// Analyzers returns the peelvet suite in reporting order: every
// invariant the repository enforces at compile time. cmd/peelvet runs
// exactly this list, and TestPeelvetRepoClean asserts the tree at head
// is clean under it.
//
// The suite's ninth check — suppression hygiene, reported under the
// pseudo-analyzer name "peelvet" — is always on: RunAnalyzers flags
// malformed //peelvet:allow directives no matter which analyzers run.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoSpawn,
		CtxBarrier,
		NoUnsafe,
		NoPanic,
		AtomicShard,
		DetFlow,
		HotAlloc,
		NoDeprecated,
	}
}
