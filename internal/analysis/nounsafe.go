package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// unsafeAllowed lists the import-path suffixes where package unsafe is
// legal. internal/layout is the single validated entry point for
// zero-copy aliasing: its Open checks version, bounds, alignment, and
// checksum before any unsafe.Slice call, so aliasing done anywhere else
// would bypass those checks. (The mmap shim in cmd/peeltool needs only
// syscall.Mmap, which returns a []byte without unsafe — it earns no
// exemption.)
var unsafeAllowed = []string{"internal/layout"}

// NoUnsafe reports imports of unsafe, and uses of reflect.SliceHeader /
// reflect.StringHeader, outside internal/layout. Zero-copy aliasing is
// only legal behind layout's validation; the reflect headers are the
// deprecated, garbage-collector-unsafe way to do the same thing and are
// banned everywhere.
var NoUnsafe = &Analyzer{
	Name: "nounsafe",
	Doc: "confine unsafe and reflect.{Slice,String}Header to internal/layout\n\n" +
		"Zero-copy aliasing is only legal behind layout.Open's validation " +
		"(version, bounds, alignment, checksum). reflect.SliceHeader and " +
		"reflect.StringHeader are banned everywhere.",
	Run: runNoUnsafe,
}

func runNoUnsafe(pass *Pass) error {
	allowed := false
	for _, suffix := range unsafeAllowed {
		if PathHasSuffix(pass.Path(), suffix) {
			allowed = true
		}
	}
	for _, f := range pass.Files {
		if !allowed {
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "unsafe" {
					pass.Reportf(imp.Pos(), "import of unsafe outside internal/layout: zero-copy aliasing must go through layout.Open's validation")
				}
			}
		}
		// The reflect headers are banned even inside the allowlist:
		// unsafe.Slice/unsafe.String subsume them safely.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "SliceHeader" && sel.Sel.Name != "StringHeader" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pkg.Imported().Path() != "reflect" {
				return true
			}
			pass.Reportf(sel.Pos(), "reflect.%s is banned: use unsafe.Slice/unsafe.String inside internal/layout instead", sel.Sel.Name)
			return true
		})
	}
	return nil
}
