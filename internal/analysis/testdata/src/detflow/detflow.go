// Package detflow is analysistest input: determinism roots whose call
// graphs do and do not stay value-deterministic, including a
// cross-package violation found only through the Deterministic fact
// exported by the sub dependency.
package detflow

import (
	"math/rand"
	"time"

	"repro/internal/analysis/testdata/src/detflow/sub"
)

// BuildImage is a determinism root: everything it reaches must be
// value-deterministic.
//
//peelvet:deterministic
func BuildImage(m map[int]int, xs []int) int {
	total := sub.SumSlice(xs)
	total += sub.ShuffledKeys(m)[0] // want `call to sub.ShuffledKeys in BuildImage, which must be deterministic`
	total += stamp()
	total += draw()
	return total
}

// stamp is reachable from the root: its clock read is flagged at the
// operation, attributed to the root.
func stamp() int {
	return int(time.Now().UnixNano()) // want `reads the wall/monotonic clock \(time.Now\) in stamp, which must be deterministic`
}

// draw mixes a legal seeded generator with an illegal global draw.
func draw() int {
	rng := rand.New(rand.NewSource(42)) // seeded: deterministic, no finding
	return rng.Intn(10) +
		rand.Intn(10) // want `draws from the unseeded global math/rand source \(rand.Intn\) in draw, which must be deterministic`
}

// pick is also reachable; a multi-way select resolves by scheduling.
//
//peelvet:deterministic
func pick(a, b chan int) int {
	select { // want `selects across channels in pick, which must be deterministic`
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

// Audit is NOT a root: the same operations are legal here.
func Audit(m map[int]int) int {
	total := 0
	for k := range m {
		total += k
	}
	total += int(time.Now().Unix())
	return total
}
