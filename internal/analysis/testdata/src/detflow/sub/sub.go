// Package sub is the dependency half of the detflow cross-package
// test: analyzed first (dependency order), it exports Deterministic
// facts its importer consults.
package sub

// ShuffledKeys is value-nondeterministic: map iteration order changes
// run to run. The fact detflow exports about it is what the importing
// package's root trips over.
func ShuffledKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// SumSlice is deterministic; calls to it from a root are fine.
func SumSlice(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
