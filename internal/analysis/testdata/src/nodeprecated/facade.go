// Package nodeprecated is analysistest input: Deprecated: facades and
// the uses that are (and are not) allowed to touch them. This file
// declares the facades; references within it are exempt, as the real
// facade files keep compiling without suppressions.
package nodeprecated

// LegacyPeel is the in-package facade.
//
// Deprecated: use Peel, which reports the rounds taken.
func LegacyPeel(xs []int) []int {
	out, _ := Peel(xs)
	return out
}

// LegacyPeelAll chains to another facade: deprecated code may call
// deprecated code.
//
// Deprecated: use Peel.
func LegacyPeelAll(xs []int) []int {
	return LegacyPeel(xs)
}

// Peel is the replacement.
func Peel(xs []int) ([]int, int) {
	return xs, 0
}
