package nodeprecated

import "repro/internal/analysis/testdata/src/nodeprecated/sub"

// Uses calls facades from outside their declaring file: both the
// in-package one and, through the Deprecated fact, the one in sub.
func Uses(xs []int) int {
	peeled := LegacyPeel(xs)  // want `use of deprecated nodeprecated.LegacyPeel: use Peel, which reports the rounds taken.`
	n := sub.Old(len(peeled)) // want `use of deprecated sub.Old: use New instead; Old drops the error.`
	m, _ := sub.New(n)        // replacement: fine
	out, _ := Peel(xs)        // replacement: fine
	return m + len(out)
}
