// Package sub is the dependency half of the nodeprecated
// cross-package test: its Deprecated facts, derived from doc comments,
// flag importers without either package naming the other.
package sub

// Old is the PR 4-style compatibility facade.
//
// Deprecated: use New instead; Old drops the error.
func Old(n int) int {
	v, _ := New(n)
	return v
}

// New is the replacement.
func New(n int) (int, error) {
	return n * 2, nil
}
