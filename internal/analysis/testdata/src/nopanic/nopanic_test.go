package nopanic

// Test files are exempt: a test may panic to fail fast.
func mustPositive(x int) int {
	if x < 0 {
		panic("test helper: negative")
	}
	return x
}
