// Package nopanic is analysistest input: panics in library code versus
// documented programmer-error guards.
package nopanic

import (
	"errors"
	"fmt"
)

// ErrNegative is the sentinel bad inputs should wrap instead of
// panicking.
var ErrNegative = errors.New("nopanic: negative input")

func undocumented(x int) int {
	if x < 0 {
		panic("negative") // want `panic in library code`
	}
	return x * 2
}

func converted(x int) (int, error) {
	if x < 0 {
		return 0, fmt.Errorf("doubling %d: %w", x, ErrNegative)
	}
	return x * 2, nil
}

// Guard validates a table order. Panics if x < 0 — misuse is a
// programmer error, documented as part of the contract the way
// math/rand.Intn's is.
func Guard(x int) int {
	if x < 0 {
		panic("nopanic: negative order")
	}
	return x
}

func inClosure() func() {
	return func() {
		panic("boom") // want `panic in library code`
	}
}

// Must unwraps (v, err) pairs at the application layer. Panics if err
// is non-nil; closures inside inherit the documented contract.
func Must(v int, err error) int {
	check := func() {
		if err != nil {
			panic(err)
		}
	}
	check()
	return v
}
