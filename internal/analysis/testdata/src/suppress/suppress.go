// Package suppress is analysistest input for the suppression comment
// machinery itself, exercised through the nospawn analyzer.
package suppress

func work() {}

func spawns() {
	go work() //peelvet:allow nospawn -- demonstration: trailing comment suppresses its line

	//peelvet:allow nospawn -- demonstration: standalone comment covers the next line
	go work()

	go work() //peelvet:allow nospawn // want `raw go statement` `peelvet:allow needs a reason`

	go work() //peelvet:allow nounsafe -- wrong analyzer, not suppressed // want `raw go statement`
}
