// Package atomicshard is analysistest input: scalars accessed both via
// sync/atomic and plainly, versus the sharded-array idiom that is out
// of scope.
package atomicshard

import "sync/atomic"

type table struct {
	gen  uint64
	hits int64
}

var generation uint64

func (t *table) bump() {
	atomic.AddUint64(&t.gen, 1)
	atomic.AddInt64(&t.hits, 1)
	atomic.AddUint64(&generation, 1)
}

func (t *table) read() uint64 {
	return t.gen // want `plain access to gen`
}

func (t *table) reset() {
	t.gen = 0 // want `plain access to gen`
	atomic.StoreInt64(&t.hits, 0)
}

func snapshot() uint64 {
	return generation // want `plain access to generation`
}

func loadAll(t *table) (uint64, int64, uint64) {
	return atomic.LoadUint64(&t.gen), atomic.LoadInt64(&t.hits), atomic.LoadUint64(&generation)
}

func unpublished() *table {
	t := &table{}
	t.gen = 1 //peelvet:allow atomicshard -- not yet published to another goroutine
	return t
}

type cell struct {
	count int64
}

// sharded is the repository's phase idiom: a parallel phase updates
// cells through atomics, a later serial phase owns the array. Indexed
// targets are deliberately untracked.
func sharded(cells []cell) int64 {
	for i := range cells {
		atomic.AddInt64(&cells[i].count, 1)
	}
	var sum int64
	for i := range cells {
		sum += cells[i].count
	}
	return sum
}

// peek reaches count through a parameter, not a receiver: the derived-
// pointer shape of phase-idiom helpers. The field stays untracked, so
// serial-phase owners may read it plainly.
func peek(c *cell) int64 {
	return atomic.LoadInt64(&c.count)
}

func ownSerialPhase(cells []cell) int64 {
	var sum int64
	for i := range cells {
		sum += cells[i].count
	}
	return sum + peek(&cells[0])
}

// untouched fields and variables with no atomic history never fire.
type plain struct{ n int }

func bumpPlain(p *plain) { p.n++ }
