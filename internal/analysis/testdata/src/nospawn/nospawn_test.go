package nospawn

// Test files are exempt: tests may spawn goroutines directly to stage
// concurrency scenarios.
func testHelperSpawn() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
