// Package nospawn is analysistest input: raw go statements that must
// be flagged, and the shapes that must not be.
package nospawn

func work() {}

func spawns() {
	go work() // want `raw go statement`
	ch := make(chan int)
	go func() { ch <- 1 }() // want `raw go statement`
	<-ch
}

func nested() {
	f := func() {
		go work() // want `raw go statement`
	}
	f()
}

func suppressed() {
	go work() //peelvet:allow nospawn -- testdata: demonstrates in-place suppression
}

// plain calls and deferred calls are not spawns.
func notSpawns() {
	work()
	defer work()
}
