// Package nounsafe is analysistest input: unsafe aliasing outside
// internal/layout.
package nounsafe

import (
	"reflect"
	"unsafe" // want `import of unsafe outside internal/layout`
)

func alias(b []byte) uintptr {
	return uintptr(unsafe.Pointer(&b[0]))
}

func header(s []int) int {
	h := (*reflect.SliceHeader)(unsafe.Pointer(&s)) // want `reflect.SliceHeader is banned`
	return int(h.Len)
}

func strHeader(s string) int {
	h := (*reflect.StringHeader)(unsafe.Pointer(&s)) // want `reflect.StringHeader is banned`
	return int(h.Len)
}

// reflection itself is fine; only the raw headers are banned.
func kind(v any) reflect.Kind {
	return reflect.ValueOf(v).Kind()
}
