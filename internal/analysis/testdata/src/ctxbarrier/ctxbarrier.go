// Package ctxbarrier is analysistest input: round loops over pool
// barriers with and without cancellation checks. The local Pool stands
// in for internal/parallel.Pool — the analyzer matches barrier methods
// by receiver type name.
package ctxbarrier

import "context"

type Pool struct{}

func (p *Pool) For(n, grain int, fn func(w, lo, hi int)) {}
func (p *Pool) Run(fn func(w int))                       {}
func (p *Pool) ForCtx(ctx context.Context, n, grain int, fn func(w, lo, hi int)) error {
	return ctx.Err()
}

// BadCtx crosses barriers in a loop without ever consulting ctx: after
// cancellation it still runs every remaining round.
func BadCtx(ctx context.Context, p *Pool, rounds int) {
	for i := 0; i < rounds; i++ {
		p.For(100, 10, func(w, lo, hi int) {}) // want `round loop in BadCtx crosses a pool barrier without consulting ctx on this path`
	}
}

// GoodCtx checks ctx at each round barrier.
func GoodCtx(ctx context.Context, p *Pool, rounds int) error {
	for i := 0; i < rounds; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.For(100, 10, func(w, lo, hi int) {})
	}
	return nil
}

// GoodBarrierCtx consults ctx by calling the ctx-aware barrier itself.
func GoodBarrierCtx(ctx context.Context, p *Pool, rounds int) error {
	for i := 0; i < rounds; i++ {
		if err := p.ForCtx(ctx, 100, 10, func(w, lo, hi int) {}); err != nil {
			return err
		}
	}
	return nil
}

type sweeper struct {
	pool *Pool
}

// SweepCtx is the method form of the same bug.
func (s *sweeper) SweepCtx(ctx context.Context, rounds int) {
	for i := 0; i < rounds; i++ {
		s.pool.Run(func(w int) {}) // want `round loop in SweepCtx crosses a pool barrier without consulting ctx on this path`
	}
}

// BranchGapCtx checks ctx only on the fast-path branch: the slow path
// reaches the barrier and loops back without ever consulting it. The
// flow-insensitive check (any ctx use in the loop body) missed exactly
// this shape.
func BranchGapCtx(ctx context.Context, p *Pool, rounds int, fast bool) error {
	for i := 0; i < rounds; i++ {
		if fast {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		p.Run(func(w int) {}) // want `round loop in BranchGapCtx crosses a pool barrier without consulting ctx on this path`
	}
	return nil
}

// CondGuardCtx consults ctx in the loop condition, which runs before
// every iteration: every path through the barrier is guarded.
func CondGuardCtx(ctx context.Context, p *Pool, rounds int) {
	for i := 0; i < rounds && ctx.Err() == nil; i++ {
		p.Run(func(w int) {})
	}
}

// TailGuardCtx checks ctx after the barrier instead of before: the
// check still lands on every back edge, so no round starts after
// cancellation is observed.
func TailGuardCtx(ctx context.Context, p *Pool, rounds int) error {
	for i := 0; i < rounds; i++ {
		p.Run(func(w int) {})
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// ExitPathCtx is clean: one path after the barrier leaves the loop
// entirely (needs no guard) and the continuing path checks ctx.
func ExitPathCtx(ctx context.Context, p *Pool, rounds int, done func() bool) error {
	for i := 0; i < rounds; i++ {
		p.Run(func(w int) {})
		if done() {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Dup forks the round loop instead of delegating to DupCtx: the two
// copies will drift.
func Dup(p *Pool, rounds int) {
	for i := 0; i < rounds; i++ { // want `Dup duplicates a round loop although DupCtx exists`
		p.Run(func(w int) {})
	}
}

// DupCtx is the cancellable variant Dup should delegate to.
func DupCtx(ctx context.Context, p *Pool, rounds int) error {
	for i := 0; i < rounds; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.Run(func(w int) {})
	}
	return nil
}

// Delegate is the correct non-Ctx shape: one line, no loop.
func Delegate(p *Pool, rounds int) {
	_ = DelegateCtx(context.Background(), p, rounds)
}

// DelegateCtx owns the only copy of the loop.
func DelegateCtx(ctx context.Context, p *Pool, rounds int) error {
	for i := 0; i < rounds; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.For(100, 10, func(w, lo, hi int) {})
	}
	return nil
}

// Solo has no Ctx sibling, so its loop is legal (it predates the
// context plumbing; ctxbarrier only stops new duplication).
func Solo(p *Pool, rounds int) {
	for i := 0; i < rounds; i++ {
		p.Run(func(w int) {})
	}
}

// LooplessCtx never loops; a single barrier call needs no in-loop
// check (the caller's barrier checks cover it).
func LooplessCtx(ctx context.Context, p *Pool) error {
	return p.ForCtx(ctx, 100, 10, func(w, lo, hi int) {})
}
