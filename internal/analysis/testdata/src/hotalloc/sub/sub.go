// Package sub is the dependency half of the hotalloc cross-package
// test: its Allocates facts let the importer's hot loops see through
// the call boundary.
package sub

// MakeBuf hides an allocation behind a call: hotalloc exports an
// Allocates fact so importers' hot loops are flagged for calling it.
func MakeBuf(n int) []byte {
	return make([]byte, n)
}

// Sum allocates nothing; hot loops may call it freely.
func Sum(xs []byte) int {
	total := 0
	for _, x := range xs {
		total += int(x)
	}
	return total
}
