// Package hotalloc is analysistest input: pool closures whose
// per-element loops do and do not allocate. The local Pool stands in
// for internal/parallel.Pool — the analyzer matches barrier methods by
// receiver type name.
package hotalloc

import "repro/internal/analysis/testdata/src/hotalloc/sub"

type Pool struct{}

func (p *Pool) For(n, grain int, fn func(w, lo, hi int)) {}
func (p *Pool) RunRanges(n int, fn func(w, lo, hi int))  {}
func (p *Pool) Seq(n int, fn func(w, lo, hi int))        {} // not a barrier method
type pair struct{ a, b int }

func sink(v any) {}

// Build's closure allocates per element in every way hotalloc flags.
func Build(p *Pool, data []byte, out [][]byte) {
	p.For(len(data), 64, func(w, lo, hi int) {
		chunk := make([]byte, 0, hi-lo) // closure top level: per chunk, allowed
		for i := lo; i < hi; i++ {
			buf := make([]byte, 8) // want `make in a per-element loop of a pool closure`
			var local []int
			local = append(local, i) // want `append to a slice declared inside the loop in a per-element loop`
			chunk = append(chunk, data[i])
			pp := &pair{a: i, b: i} // want `heap-escaping &composite literal in a per-element loop`
			_ = buf
			_ = local
			_ = pp
		}
		out[w] = chunk
	})
}

// BuildCalls shows the fact-driven and boxing findings: the make inside
// sub.MakeBuf is invisible syntactically but travels as an Allocates
// fact, and the concrete int handed to an any parameter boxes.
func BuildCalls(p *Pool, data []byte, sums []int) {
	p.RunRanges(len(data), func(w, lo, hi int) {
		total := 0
		for i := lo; i < hi; i++ {
			b := sub.MakeBuf(8) // want `call to sub.MakeBuf, which allocates`
			total += sub.Sum(b) + sub.Sum(data[lo:hi])
			sink(i) // want `interface boxing \(concrete value passed to interface parameter\)`
		}
		sums[w] = total
	})
}

// BuildClean is the sanctioned shape: per-chunk state at the closure
// top level, per-element work that only indexes and appends to the
// outer buffer.
func BuildClean(p *Pool, data []byte, out [][]byte) {
	p.For(len(data), 64, func(w, lo, hi int) {
		local := out[w][:0]
		for i := lo; i < hi; i++ {
			local = append(local, data[i])
		}
		out[w] = local
	})
}

// NotABarrier: closures handed to non-barrier methods are out of
// scope, however allocation-happy.
func NotABarrier(p *Pool, n int) {
	p.Seq(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			_ = make([]byte, 8)
		}
	})
}
