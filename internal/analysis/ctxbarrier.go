package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// barrierMethods are the pool entry points whose return is a round
// barrier: every worker has finished the round's chunks when the call
// returns. A loop over one of these is a round loop in the sense of the
// paper's round-synchronous peeling model.
var barrierMethods = map[string]bool{
	"For":          true,
	"ForCtx":       true,
	"Run":          true,
	"RunRanges":    true,
	"RunRangesCtx": true,
}

// barrierReceivers are the named types whose barrier-named methods
// count. Matching by type name (not import path) lets analysistest
// packages declare a local Pool.
var barrierReceivers = map[string]bool{
	"Pool":  true,
	"Group": true,
}

// CtxBarrier enforces the runtime's cancellation contract on round
// loops.
//
// Rule 1 (flow-sensitive): a function whose name ends in "Ctx" and
// takes a context.Context must consult that context on every iteration
// path that crosses a pool barrier. The paper's O(log log n) round
// structure is what makes cancellation cheap — one check per barrier —
// but only if the check covers every round: a loop that consults ctx on
// one branch while another branch reaches the barrier unchecked
// silently runs to completion after cancellation on the unchecked
// path. The check is per barrier call, on the iteration control-flow
// graph (see cfg.go): a barrier is flagged when some path reaches it
// from the loop head without passing a ctx use AND continues to the
// next iteration still without one. Paths that leave the loop (return,
// break) need no guard, and a ctx consultation in the loop condition or
// post statement counts — both run every round.
//
// Rule 2: an exported non-Ctx function with a Ctx sibling (Foo next to
// FooCtx, on the same receiver) must not contain its own barrier loop:
// it must delegate to the Ctx form. Duplicated loops are how the two
// variants drift apart.
//
// internal/parallel is exempt: it implements the barriers.
var CtxBarrier = &Analyzer{
	Name: "ctxbarrier",
	Doc: "round loops in *Ctx functions must consult ctx on every barrier path; non-Ctx variants must delegate\n\n" +
		"Each pool barrier call (For, Run, RunRanges, ...) inside a loop " +
		"in a *Ctx function must have the function's context.Context " +
		"consulted on every iteration path through it. An exported Foo " +
		"with a FooCtx sibling must not duplicate the round loop.",
	Run: runCtxBarrier,
}

func runCtxBarrier(pass *Pass) error {
	if PathHasSuffix(pass.Path(), "internal/parallel") {
		return nil
	}

	// Index function names per receiver so rule 2 can find Ctx
	// siblings: key "Recv.Name" or ".Name" for plain functions.
	declared := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				declared[funcKey(fd)] = true
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			name := fd.Name.Name
			switch {
			case strings.HasSuffix(name, "Ctx"):
				ctxObj := ctxParam(pass, fd)
				if ctxObj == nil {
					continue
				}
				checkCtxLoops(pass, fd, ctxObj)
			case fd.Name.IsExported() && declared[funcKey(fd)+"Ctx"]:
				if loop := findBarrierLoop(pass, fd.Body); loop != nil {
					pass.Reportf(loop.Pos(), "%s duplicates a round loop although %sCtx exists: delegate to the Ctx variant instead of forking the loop", name, name)
				}
			}
		}
	}
	return nil
}

// funcKey names a declaration as "Recv.Name" (methods, by receiver base
// type name) or ".Name" (functions).
func funcKey(fd *ast.FuncDecl) string {
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			recv = id.Name
		}
	}
	return recv + "." + fd.Name.Name
}

// ctxParam returns the *types.Var of fd's context.Context parameter,
// or nil.
func ctxParam(pass *Pass, fd *ast.FuncDecl) *types.Var {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if named, ok := types.Unalias(obj.Type()).(*types.Named); ok {
				if named.Obj().Name() == "Context" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context" {
					return obj
				}
			}
		}
	}
	return nil
}

// checkCtxLoops reports each barrier call in fd's loops that some
// iteration path executes without consulting ctx. Every loop containing
// barriers is analyzed on its own iteration CFG — a nested round loop
// must guard its own iterations even when the outer loop checks ctx —
// and a call flagged by several nesting levels is reported once.
func checkCtxLoops(pass *Pass, fd *ast.FuncDecl, ctxObj *types.Var) {
	labels := loopLabels(fd.Body)
	flagged := map[token.Pos]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		var body *ast.BlockStmt
		switch l := loop.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		barriers := barrierCalls(pass, body)
		if len(barriers) == 0 {
			return true
		}
		g := newLoopCFG(loop, labels[loop])
		checked := func(b *cfgBlock) bool {
			for _, node := range b.nodes {
				if usesObject(pass, node, ctxObj) {
					return true
				}
			}
			return false
		}
		for _, call := range barriers {
			if flagged[call.Pos()] {
				continue
			}
			blk := g.blockOf(call.Pos())
			if blk == nil || checked(blk) {
				continue
			}
			if g.reaches(g.entry, blk, checked) && g.reaches(blk, g.exit, checked) {
				flagged[call.Pos()] = true
				pass.Reportf(call.Pos(), "round loop in %s crosses a pool barrier without consulting ctx on this path: check ctx (or call a *Ctx barrier) on every iteration path so cancellation lands within one round", fd.Name.Name)
			}
		}
		return true
	})
}

// loopLabels maps each labeled loop statement to its label so the CFG
// builder can resolve labeled break/continue against the loop itself.
func loopLabels(n ast.Node) map[ast.Stmt]string {
	labels := map[ast.Stmt]string{}
	ast.Inspect(n, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok {
			switch ls.Stmt.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				labels[ls.Stmt] = ls.Label.Name
			}
		}
		return true
	})
	return labels
}

// barrierCalls returns every barrier-method call under n, in source
// order.
func barrierCalls(pass *Pass, n ast.Node) []*ast.CallExpr {
	var calls []*ast.CallExpr
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBarrierCall(pass, call) {
			calls = append(calls, call)
		}
		return true
	})
	return calls
}

// isBarrierCall reports whether call is a barrier method on a
// Pool/Group receiver.
func isBarrierCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !barrierMethods[sel.Sel.Name] {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := types.Unalias(tv.Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	return ok && barrierReceivers[named.Obj().Name()]
}

// findBarrierLoop returns the first loop under n containing a barrier
// call, or nil.
func findBarrierLoop(pass *Pass, n ast.Node) (found ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		if containsBarrierCall(pass, body) {
			found = n
			return false
		}
		return true
	})
	return found
}

// containsBarrierCall reports whether any call under n is a barrier
// method on a Pool/Group receiver.
func containsBarrierCall(pass *Pass, n ast.Node) bool {
	return len(barrierCalls(pass, n)) > 0
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(pass *Pass, n ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(n, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
