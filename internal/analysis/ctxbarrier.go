package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// barrierMethods are the pool entry points whose return is a round
// barrier: every worker has finished the round's chunks when the call
// returns. A loop over one of these is a round loop in the sense of the
// paper's round-synchronous peeling model.
var barrierMethods = map[string]bool{
	"For":          true,
	"ForCtx":       true,
	"Run":          true,
	"RunRanges":    true,
	"RunRangesCtx": true,
}

// barrierReceivers are the named types whose barrier-named methods
// count. Matching by type name (not import path) lets analysistest
// packages declare a local Pool.
var barrierReceivers = map[string]bool{
	"Pool":  true,
	"Group": true,
}

// CtxBarrier enforces the runtime's cancellation contract on round
// loops.
//
// Rule 1: a function whose name ends in "Ctx" and takes a
// context.Context must consult that context inside any loop that
// crosses pool barriers. The paper's O(log log n) round structure is
// what makes cancellation cheap — one check per barrier — but only if
// the check is actually inside the loop; a Ctx function with an
// unchecked round loop silently runs to completion after cancellation.
//
// Rule 2: an exported non-Ctx function with a Ctx sibling (Foo next to
// FooCtx, on the same receiver) must not contain its own barrier loop:
// it must delegate to the Ctx form. Duplicated loops are how the two
// variants drift apart.
//
// internal/parallel is exempt: it implements the barriers.
var CtxBarrier = &Analyzer{
	Name: "ctxbarrier",
	Doc: "round loops in *Ctx functions must consult ctx; non-Ctx variants must delegate\n\n" +
		"A loop calling pool barrier methods (For, Run, RunRanges, ...) " +
		"inside a *Ctx function must use its context.Context parameter " +
		"inside the loop. An exported Foo with a FooCtx sibling must not " +
		"duplicate the round loop.",
	Run: runCtxBarrier,
}

func runCtxBarrier(pass *Pass) error {
	if PathHasSuffix(pass.Path(), "internal/parallel") {
		return nil
	}

	// Index function names per receiver so rule 2 can find Ctx
	// siblings: key "Recv.Name" or ".Name" for plain functions.
	declared := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				declared[funcKey(fd)] = true
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			name := fd.Name.Name
			switch {
			case strings.HasSuffix(name, "Ctx"):
				ctxObj := ctxParam(pass, fd)
				if ctxObj == nil {
					continue
				}
				checkCtxLoops(pass, fd, ctxObj)
			case fd.Name.IsExported() && declared[funcKey(fd)+"Ctx"]:
				if loop := findBarrierLoop(pass, fd.Body); loop != nil {
					pass.Reportf(loop.Pos(), "%s duplicates a round loop although %sCtx exists: delegate to the Ctx variant instead of forking the loop", name, name)
				}
			}
		}
	}
	return nil
}

// funcKey names a declaration as "Recv.Name" (methods, by receiver base
// type name) or ".Name" (functions).
func funcKey(fd *ast.FuncDecl) string {
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			recv = id.Name
		}
	}
	return recv + "." + fd.Name.Name
}

// ctxParam returns the *types.Var of fd's context.Context parameter,
// or nil.
func ctxParam(pass *Pass, fd *ast.FuncDecl) *types.Var {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if named, ok := types.Unalias(obj.Type()).(*types.Named); ok {
				if named.Obj().Name() == "Context" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context" {
					return obj
				}
			}
		}
	}
	return nil
}

// checkCtxLoops reports each loop in fd that crosses a pool barrier
// without consulting ctx inside the loop body.
func checkCtxLoops(pass *Pass, fd *ast.FuncDecl, ctxObj *types.Var) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		if !containsBarrierCall(pass, body) {
			return true
		}
		if usesObject(pass, body, ctxObj) {
			return true
		}
		pass.Reportf(n.Pos(), "round loop in %s crosses pool barriers without consulting ctx: check ctx (or call a *Ctx barrier) inside the loop so cancellation lands within one round", fd.Name.Name)
		return true
	})
}

// findBarrierLoop returns the first loop under n containing a barrier
// call, or nil.
func findBarrierLoop(pass *Pass, n ast.Node) (found ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		if containsBarrierCall(pass, body) {
			found = n
			return false
		}
		return true
	})
	return found
}

// containsBarrierCall reports whether any call under n is a barrier
// method on a Pool/Group receiver.
func containsBarrierCall(pass *Pass, n ast.Node) bool {
	hit := false
	ast.Inspect(n, func(n ast.Node) bool {
		if hit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !barrierMethods[sel.Sel.Name] {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			return true
		}
		t := types.Unalias(tv.Type)
		if ptr, ok := t.(*types.Pointer); ok {
			t = types.Unalias(ptr.Elem())
		}
		if named, ok := t.(*types.Named); ok && barrierReceivers[named.Obj().Name()] {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(pass *Pass, n ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(n, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
