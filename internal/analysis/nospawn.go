package analysis

import (
	"go/ast"
)

// spawnAllowed lists the import-path suffixes where a raw go statement
// is legal: internal/parallel is the one place allowed to create
// goroutines, because its helpers are what give every other goroutine
// in the process panic isolation, drain accounting, and admission
// stats.
var spawnAllowed = []string{"internal/parallel"}

// NoSpawn reports raw go statements outside internal/parallel and
// outside _test.go files. Everything concurrent in the runtime must
// flow through parallel.Pool / parallel.Group / Runtime.Go so that a
// panicking task poisons a barrier instead of the process, Shutdown
// can drain it, and it is visible in Stats. A goroutine spawned with a
// bare go statement has none of those properties.
var NoSpawn = &Analyzer{
	Name: "nospawn",
	Doc: "flag raw go statements outside internal/parallel\n\n" +
		"Concurrency must flow through parallel.Pool, parallel.Group, or " +
		"Runtime.Go so panic isolation, drain accounting, and admission " +
		"stats are never bypassed. Test files are exempt.",
	Run: runNoSpawn,
}

func runNoSpawn(pass *Pass) error {
	for _, suffix := range spawnAllowed {
		if PathHasSuffix(pass.Path(), suffix) {
			return nil
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if pass.InTestFile(g.Pos()) {
				return true
			}
			pass.Reportf(g.Pos(), "raw go statement: route this through parallel.Pool/Group or Runtime.Go so panic isolation and admission stats apply")
			return true
		})
	}
	return nil
}
