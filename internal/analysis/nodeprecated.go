package analysis

import (
	"go/ast"
	"go/types"
)

// NoDeprecated keeps new code off the compatibility facades.
//
// PR 4 (the Pool/Group runtime) and PR 6 (the flat build/serve split)
// each left behind thin deprecated wrappers — PeelParallel,
// BuildStaticMapParallel, bloomier.BuildParallel, and friends — so
// external callers keep compiling. Internal code has no such excuse:
// every internal call through a facade is a missed migration that
// keeps the facade load-bearing forever.
//
// The analyzer derives its denylist from the source of truth — any
// function whose doc comment carries a standard "Deprecated:"
// paragraph — and exports it as a Deprecated fact, so a facade
// declared in the root package is flagged when called from examples/
// or cmd/ without either package naming the other in this analyzer.
//
// Exempt uses: test files (facades must stay tested until deleted),
// the file declaring the facade, and the bodies of functions that are
// themselves deprecated (facades may chain to each other).
var NoDeprecated = &Analyzer{
	Name: "nodeprecated",
	Doc: "non-test code must not call Deprecated: facades\n\n" +
		"Functions documented with a \"Deprecated:\" paragraph export a " +
		"Deprecated fact; any use from non-test code outside the " +
		"declaring file (and outside other deprecated functions) is " +
		"flagged with the facade's own migration instruction.",
	FactTypes: []Fact{new(Deprecated)},
	Run:       runNoDeprecated,
}

// Deprecated is nodeprecated's fact: the function's "Deprecated:"
// message, which by convention names the replacement.
type Deprecated struct {
	Msg string
}

// AFact marks Deprecated as a fact type.
func (*Deprecated) AFact() {}

func init() { RegisterFact(new(Deprecated)) }

func runNoDeprecated(pass *Pass) error {
	// Pass 1: find this package's deprecated functions, export facts,
	// and remember where each is declared for the same-file exemption.
	type deprInfo struct {
		msg  string
		file string
	}
	local := map[types.Object]deprInfo{}
	deprecatedFuncs := map[*ast.FuncDecl]bool{}
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			msg := deprecationMessage(fd.Doc)
			if msg == "" {
				continue
			}
			deprecatedFuncs[fd] = true
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				local[fn] = deprInfo{msg: msg, file: fname}
				if !pass.InTestFile(fd.Pos()) {
					pass.ExportObjectFact(fn, &Deprecated{Msg: msg})
				}
			}
		}
	}

	// Pass 2: flag uses.
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			msg := ""
			if info, ok := local[fn]; ok {
				if info.file == fname {
					return true // declaring file may reference its own facades
				}
				msg = info.msg
			} else if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
				var fact Deprecated
				if !pass.ImportObjectFact(fn, &fact) {
					return true
				}
				msg = fact.Msg
			} else {
				return true
			}
			if encl := enclosingFuncDecl(f, id.Pos()); encl != nil && deprecatedFuncs[encl] {
				return true // facades may chain to facades
			}
			pass.Reportf(id.Pos(), "use of deprecated %s: %s", funcDisplayName(fn), msg)
			return true
		})
	}
	return nil
}
