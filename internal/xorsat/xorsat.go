// Package xorsat solves random r-XORSAT instances (systems of XOR
// equations, each over r distinct variables) with the peeling + Gaussian
// elimination pipeline that connects the paper's k-core analysis to the
// satisfiability literature it cites (Molloy's pure literal rule;
// Dietzfelbinger et al.'s XORSAT/cuckoo thresholds).
//
// Viewing variables as vertices and equations as edges gives a random
// r-uniform hypergraph. A variable of degree < 2 lets its equation be
// satisfied by local assignment, so the "pure literal" peeling is exactly
// 2-core peeling: equations outside the 2-core are solved by
// back-substitution in reverse peel order, and only the 2-core (empty
// w.h.p. below c*(2,r), e.g. 0.818n equations for r = 3) needs dense
// GF(2) elimination. Between c*(2,r) and the XORSAT satisfiability
// threshold (~0.917n for r = 3) the core is non-empty yet almost surely
// consistent — the regime where the Gauss stage earns its keep.
package xorsat

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/rng"
)

// Instance is a system of M equations over N boolean variables: equation
// e asserts XOR of Vars[e*R .. e*R+R-1] equals RHS[e].
type Instance struct {
	N   int
	R   int
	Var []uint32 // flattened, M*R entries
	RHS []uint8  // 0/1 per equation
}

// M returns the number of equations.
func (in *Instance) M() int { return len(in.RHS) }

// Random returns an instance with m equations over n variables, each over
// r distinct uniform variables with a uniform right-hand side.
func Random(n, m, r int, gen *rng.RNG) *Instance {
	g := hypergraph.Uniform(n, m, r, gen)
	rhs := make([]uint8, m)
	for e := range rhs {
		rhs[e] = uint8(gen.Uint64() & 1)
	}
	return &Instance{N: n, R: r, Var: g.Edges, RHS: rhs}
}

// RandomSatisfiable returns an instance whose right-hand sides are
// consistent with a hidden uniform assignment, which it also returns.
// Useful for testing the solver above the satisfiability threshold.
func RandomSatisfiable(n, m, r int, gen *rng.RNG) (*Instance, []uint8) {
	g := hypergraph.Uniform(n, m, r, gen)
	planted := make([]uint8, n)
	for v := range planted {
		planted[v] = uint8(gen.Uint64() & 1)
	}
	rhs := make([]uint8, m)
	for e := 0; e < m; e++ {
		var b uint8
		for _, v := range g.EdgeVertices(e) {
			b ^= planted[v]
		}
		rhs[e] = b
	}
	return &Instance{N: n, R: r, Var: g.Edges, RHS: rhs}, planted
}

// Check reports whether assign satisfies every equation.
func (in *Instance) Check(assign []uint8) bool {
	if len(assign) != in.N {
		return false
	}
	r := in.R
	for e := 0; e < in.M(); e++ {
		var b uint8
		for _, v := range in.Var[e*r : e*r+r] {
			b ^= assign[v] & 1
		}
		if b != in.RHS[e] {
			return false
		}
	}
	return true
}

// Stats describes how a Solve run decomposed the system.
type Stats struct {
	PeeledEquations int // equations solved by back-substitution
	CoreEquations   int // equations left in the 2-core
	CoreVariables   int // variables left in the 2-core
	GaussRank       int // rank of the core system
}

// ErrUnsatisfiable is returned when Gaussian elimination finds an
// inconsistent core row (0 = 1).
var ErrUnsatisfiable = errors.New("xorsat: system is unsatisfiable")

// Solve returns a satisfying assignment, or ErrUnsatisfiable. Free
// variables (never constrained) are set to 0. The pipeline is: peel to
// the 2-core, Gauss-solve the core, then back-substitute the peeled
// equations in reverse peel order.
func (in *Instance) Solve() ([]uint8, Stats, error) {
	g := hypergraph.FromEdges(in.N, in.R, in.Var, 0)
	peel := core.Sequential(g, 2)
	stats := Stats{
		PeeledEquations: len(peel.PeelOrder),
		CoreEquations:   peel.Result.CoreEdges,
		CoreVariables:   peel.Result.CoreVertices,
	}
	assign := make([]uint8, in.N)

	if peel.Result.CoreEdges > 0 {
		rank, err := in.solveCore(peel, assign)
		stats.GaussRank = rank
		if err != nil {
			return nil, stats, err
		}
	}

	// Back-substitution: reverse peel order guarantees every other
	// variable of the equation already has its final value.
	r := in.R
	for i := len(peel.PeelOrder) - 1; i >= 0; i-- {
		e := peel.PeelOrder[i]
		free := peel.FreeVertex[e]
		var b uint8
		for _, v := range in.Var[int(e)*r : int(e)*r+r] {
			if v != free {
				b ^= assign[v]
			}
		}
		assign[free] = b ^ in.RHS[e]
	}

	if !in.Check(assign) {
		// Cannot happen if the implementation is correct; guard anyway.
		return nil, stats, fmt.Errorf("xorsat: internal error: produced assignment fails check")
	}
	return assign, stats, nil
}

// solveCore runs dense GF(2) Gaussian elimination on the 2-core equations
// and writes the core variables' values into assign. Returns the rank.
func (in *Instance) solveCore(peel *core.SeqResult, assign []uint8) (int, error) {
	// Compact core variables to columns.
	col := make([]int32, in.N)
	for i := range col {
		col[i] = -1
	}
	nCore := 0
	for v := 0; v < in.N; v++ {
		if peel.Result.VertexAlive[v] != 0 {
			col[v] = int32(nCore)
			nCore++
		}
	}
	words := (nCore + 1 + 63) / 64 // +1 for the RHS bit
	rhsBit := nCore

	rows := make([][]uint64, 0, peel.Result.CoreEdges)
	r := in.R
	for e := 0; e < in.M(); e++ {
		if peel.Result.EdgeAlive[e] == 0 {
			continue
		}
		row := make([]uint64, words)
		for _, v := range in.Var[e*r : e*r+r] {
			c := col[v]
			row[c>>6] ^= 1 << (uint(c) & 63)
		}
		if in.RHS[e] != 0 {
			row[rhsBit>>6] ^= 1 << (uint(rhsBit) & 63)
		}
		rows = append(rows, row)
	}

	// Forward elimination with column pivoting.
	pivotOfCol := make([]int, nCore)
	for i := range pivotOfCol {
		pivotOfCol[i] = -1
	}
	rank := 0
	for c := 0; c < nCore && rank < len(rows); c++ {
		w, mask := c>>6, uint64(1)<<(uint(c)&63)
		pivot := -1
		for i := rank; i < len(rows); i++ {
			if rows[i][w]&mask != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for i := 0; i < len(rows); i++ {
			if i != rank && rows[i][w]&mask != 0 {
				xorRow(rows[i], rows[rank])
			}
		}
		pivotOfCol[c] = rank
		rank++
	}

	// Inconsistency: a row with empty LHS but set RHS.
	for i := rank; i < len(rows); i++ {
		if rows[i][rhsBit>>6]&(1<<(uint(rhsBit)&63)) != 0 && rowLHSEmpty(rows[i], nCore) {
			return rank, ErrUnsatisfiable
		}
	}

	// Read the solution: pivot columns take their row's RHS bit; free
	// core columns stay 0 (already zero in assign).
	for v := 0; v < in.N; v++ {
		c := col[v]
		if c < 0 {
			continue
		}
		if p := pivotOfCol[c]; p >= 0 {
			if rows[p][rhsBit>>6]&(1<<(uint(rhsBit)&63)) != 0 {
				assign[v] = 1
			}
		}
	}
	return rank, nil
}

func xorRow(dst, src []uint64) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

func rowLHSEmpty(row []uint64, nCore int) bool {
	full := nCore >> 6
	for i := 0; i < full; i++ {
		if row[i] != 0 {
			return false
		}
	}
	if rem := uint(nCore) & 63; rem != 0 {
		if row[full]&((1<<rem)-1) != 0 {
			return false
		}
	}
	return true
}

// PeelOnlySolvable reports whether the instance can be solved by peeling
// alone (empty 2-core) — the fast path whose threshold c*(2,r) the paper
// analyzes. Used by the ablation comparing peel-only vs peel+Gauss
// success rates between c*(2,r) and the XORSAT threshold.
func (in *Instance) PeelOnlySolvable() bool {
	g := hypergraph.FromEdges(in.N, in.R, in.Var, 0)
	return core.Sequential(g, 2).Empty()
}

// DensityRegimeNote returns a human-readable description of where edge
// density c sits for arity r relative to the peeling threshold. Helper
// for the example programs' output.
func DensityRegimeNote(c, cstar float64) string {
	switch {
	case c < cstar:
		return fmt.Sprintf("below peeling threshold %.4f: peel-only suffices w.h.p.", cstar)
	default:
		return fmt.Sprintf("above peeling threshold %.4f: non-empty core expected, Gauss stage engaged", cstar)
	}
}
