package xorsat

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSolvePeelOnlyRegime(t *testing.T) {
	// c = 0.7 < c*(2,3) ~ 0.818: the whole system peels; no Gauss needed.
	gen := rng.New(1)
	in := Random(20000, 14000, 3, gen)
	assign, stats, err := in.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !in.Check(assign) {
		t.Fatal("assignment does not satisfy the system")
	}
	if stats.CoreEquations != 0 {
		t.Errorf("expected empty core below peeling threshold, got %d equations", stats.CoreEquations)
	}
	if stats.PeeledEquations != in.M() {
		t.Errorf("peeled %d of %d equations", stats.PeeledEquations, in.M())
	}
}

func TestSolveCoreRegime(t *testing.T) {
	// 0.818 < c = 0.88 < 0.917: non-empty core but satisfiable w.h.p. —
	// the regime where Gaussian elimination on the core earns its keep.
	gen := rng.New(2)
	in := Random(20000, 17600, 3, gen)
	assign, stats, err := in.Solve()
	if err != nil {
		t.Fatalf("Solve in core regime: %v", err)
	}
	if !in.Check(assign) {
		t.Fatal("assignment does not satisfy the system")
	}
	if stats.CoreEquations == 0 {
		t.Error("expected non-empty core at c=0.88")
	}
	if stats.GaussRank <= 0 || stats.GaussRank > stats.CoreEquations {
		t.Errorf("implausible Gauss rank %d for %d core equations",
			stats.GaussRank, stats.CoreEquations)
	}
}

func TestSolveUnsatisfiableRegime(t *testing.T) {
	// c = 1.1 > satisfiability threshold (~0.917 for r=3): a random RHS
	// is almost surely inconsistent.
	gen := rng.New(3)
	in := Random(5000, 5500, 3, gen)
	_, _, err := in.Solve()
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("expected ErrUnsatisfiable at c=1.1, got %v", err)
	}
}

func TestSolvePlantedAboveThreshold(t *testing.T) {
	// Planted instances are satisfiable at any density; the solver must
	// find some satisfying assignment (not necessarily the planted one).
	gen := rng.New(4)
	in, planted := RandomSatisfiable(4000, 4400, 3, gen)
	if !in.Check(planted) {
		t.Fatal("planted assignment does not satisfy its own instance")
	}
	assign, stats, err := in.Solve()
	if err != nil {
		t.Fatalf("Solve on planted instance: %v", err)
	}
	if !in.Check(assign) {
		t.Fatal("solver output fails check")
	}
	if stats.CoreEquations == 0 {
		t.Error("expected non-empty core at c=1.1")
	}
}

func TestPeelOnlySolvableThreshold(t *testing.T) {
	gen := rng.New(5)
	below := Random(30000, 21000, 3, gen) // c = 0.7
	if !below.PeelOnlySolvable() {
		t.Error("peel-only failed below the threshold")
	}
	above := Random(30000, 26400, 3, gen) // c = 0.88
	if above.PeelOnlySolvable() {
		t.Error("peel-only claimed success above the threshold")
	}
}

func TestSolveR4(t *testing.T) {
	gen := rng.New(6)
	in := Random(10000, 7000, 4, gen) // c = 0.7 < 0.772
	assign, stats, err := in.Solve()
	if err != nil || !in.Check(assign) {
		t.Fatalf("r=4 solve failed: %v", err)
	}
	if stats.CoreEquations != 0 {
		t.Errorf("r=4 c=0.7: unexpected core of %d equations", stats.CoreEquations)
	}
}

func TestCheckRejectsWrongAssignment(t *testing.T) {
	gen := rng.New(7)
	in, planted := RandomSatisfiable(100, 80, 3, gen)
	bad := append([]uint8(nil), planted...)
	// Flipping one variable that appears in some equation must break it.
	bad[in.Var[0]] ^= 1
	if in.Check(bad) {
		t.Error("Check accepted a corrupted assignment")
	}
	if in.Check(planted[:50]) {
		t.Error("Check accepted a short assignment")
	}
}

func TestTinySystems(t *testing.T) {
	// Hand-built: x0 ^ x1 ^ x2 = 1, x0 ^ x1 ^ x3 = 0.
	in := &Instance{N: 4, R: 3, Var: []uint32{0, 1, 2, 0, 1, 3}, RHS: []uint8{1, 0}}
	assign, _, err := in.Solve()
	if err != nil || !in.Check(assign) {
		t.Fatalf("tiny system: %v", err)
	}
	// Contradictory duplicate: same LHS, different RHS. Variables all have
	// degree 2, so the whole system is a 2-core and Gauss must reject it.
	in = &Instance{N: 3, R: 3, Var: []uint32{0, 1, 2, 0, 1, 2}, RHS: []uint8{1, 0}}
	if _, _, err := in.Solve(); !errors.Is(err, ErrUnsatisfiable) {
		t.Fatalf("contradiction not detected: %v", err)
	}
	// Empty system: trivially satisfiable.
	in = &Instance{N: 5, R: 3, Var: nil, RHS: nil}
	assign, _, err = in.Solve()
	if err != nil || len(assign) != 5 {
		t.Fatalf("empty system: %v", err)
	}
}

func TestSolveQuickPlanted(t *testing.T) {
	// Property: planted instances of any shape are solved, and the
	// solution verifies.
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%400) + 5
		m := int(mRaw % 500)
		in, _ := RandomSatisfiable(n, m, 3, rng.New(seed))
		assign, _, err := in.Solve()
		return err == nil && in.Check(assign)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSolveQuickRandomConsistency(t *testing.T) {
	// Property: on random instances, Solve either returns a verified
	// assignment or ErrUnsatisfiable — never a bogus success.
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%300) + 5
		m := int(mRaw % 450)
		in := Random(n, m, 3, rng.New(seed))
		assign, _, err := in.Solve()
		if err != nil {
			return errors.Is(err, ErrUnsatisfiable)
		}
		return in.Check(assign)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveBelowThreshold(b *testing.B) {
	in := Random(1<<16, 45000, 3, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := in.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveCoreRegime(b *testing.B) {
	in, _ := RandomSatisfiable(1<<14, 14500, 3, rng.New(1)) // c ~ 0.885
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := in.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
