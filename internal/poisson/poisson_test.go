package poisson

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestPMFKnownValues(t *testing.T) {
	cases := []struct {
		k    int
		mean float64
		want float64
	}{
		{0, 1, math.Exp(-1)},
		{1, 1, math.Exp(-1)},
		{2, 1, math.Exp(-1) / 2},
		{0, 2.8, math.Exp(-2.8)},
		{3, 2.8, math.Exp(-2.8) * 2.8 * 2.8 * 2.8 / 6},
		{0, 0, 1},
		{1, 0, 0},
		{-1, 1, 0},
	}
	for _, c := range cases {
		if got := PMF(c.k, c.mean); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("PMF(%d, %v) = %v, want %v", c.k, c.mean, got, c.want)
		}
	}
}

func TestPMFSumsToOne(t *testing.T) {
	for _, mean := range []float64{0.1, 1, 2.8, 10, 30} {
		sum := 0.0
		for k := 0; k < 200; k++ {
			sum += PMF(k, mean)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("PMF(., %v) sums to %v", mean, sum)
		}
	}
}

func TestCDFTailComplement(t *testing.T) {
	f := func(kRaw int, meanRaw float64) bool {
		k := kRaw % 20
		if k < 0 {
			k = -k
		}
		mean := math.Mod(math.Abs(meanRaw), 20)
		return almostEqual(CDF(k-1, mean)+Tail(k, mean), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTailMonotoneInMean(t *testing.T) {
	// Pr(Poisson(m) >= k) increases with m.
	for k := 1; k <= 5; k++ {
		prev := -1.0
		for m := 0.0; m <= 10; m += 0.25 {
			cur := Tail(k, m)
			if cur < prev-1e-12 {
				t.Errorf("Tail(%d, %v) = %v decreased from %v", k, m, cur, prev)
			}
			prev = cur
		}
	}
}

func TestTailSmallMeanAsymptotics(t *testing.T) {
	// For tiny means, Tail(k, m) ~ m^k / k!. This is the regime that drives
	// the doubly exponential decay in Section 3.1 of the paper.
	for _, m := range []float64{1e-3, 1e-5, 1e-8} {
		for k := 1; k <= 3; k++ {
			kFact := 1.0
			for j := 2; j <= k; j++ {
				kFact *= float64(j)
			}
			want := math.Pow(m, float64(k)) / kFact
			got := Tail(k, m)
			if math.Abs(got-want)/want > 1e-2 {
				t.Errorf("Tail(%d, %v) = %v, want ~%v", k, m, got, want)
			}
		}
	}
}

func TestTailEdgeCases(t *testing.T) {
	if got := Tail(0, 5); got != 1 {
		t.Errorf("Tail(0, 5) = %v, want 1", got)
	}
	if got := Tail(3, 0); got != 0 {
		t.Errorf("Tail(3, 0) = %v, want 0", got)
	}
	if got := Tail(-2, 1); got != 1 {
		t.Errorf("Tail(-2, 1) = %v, want 1", got)
	}
}

func TestTailPaperAnchor(t *testing.T) {
	// Table 2 of the paper: lambda_1 = Pr(Poisson(4*0.7) >= 2) = 0.768922...
	got := Tail(2, 4*0.7)
	if !almostEqual(got, 0.768922, 5e-7) {
		t.Errorf("Tail(2, 2.8) = %.7f, want 0.768922", got)
	}
	// And for c = 0.85: Pr(Poisson(3.4) >= 2) = 0.853158... (Table 2 right).
	got = Tail(2, 4*0.85)
	if !almostEqual(got, 0.853158, 5e-7) {
		t.Errorf("Tail(2, 3.4) = %.7f, want 0.853158", got)
	}
}

func TestTruncatedExpSum(t *testing.T) {
	if got := TruncatedExpSum(-1, 3); got != 0 {
		t.Errorf("S(-1, 3) = %v, want 0", got)
	}
	if got := TruncatedExpSum(0, 3); got != 1 {
		t.Errorf("S(0, 3) = %v, want 1", got)
	}
	if got := TruncatedExpSum(2, 2); !almostEqual(got, 1+2+2, 1e-12) {
		t.Errorf("S(2, 2) = %v, want 5", got)
	}
	// S(a, x) -> e^x as a grows.
	if got := TruncatedExpSum(60, 5); !almostEqual(got, math.Exp(5), 1e-8) {
		t.Errorf("S(60, 5) = %v, want e^5 = %v", got, math.Exp(5))
	}
}

func TestRegularizedTailIdentity(t *testing.T) {
	f := func(aRaw int, xRaw float64) bool {
		a := aRaw % 10
		if a < 0 {
			a = -a
		}
		x := math.Mod(math.Abs(xRaw), 15)
		direct := 1 - math.Exp(-x)*TruncatedExpSum(a, x)
		return almostEqual(RegularizedTail(a, x), direct, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInequality35(t *testing.T) {
	// Paper Equation (3.5): 1 - e^-x S(k-2, x) <= x^{k-1} / (k-1)! for x > 0.
	for _, k := range []int{2, 3, 4, 5} {
		kFact := 1.0
		for j := 2; j <= k-1; j++ {
			kFact *= float64(j)
		}
		for x := 0.01; x <= 5; x += 0.07 {
			lhs := RegularizedTail(k-2, x)
			rhs := math.Pow(x, float64(k-1)) / kFact
			if lhs > rhs*(1+1e-12) {
				t.Errorf("ineq (3.5) violated at k=%d x=%v: %v > %v", k, x, lhs, rhs)
			}
		}
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, c := range []struct {
		n int
		p float64
	}{{10, 0.3}, {50, 0.9}, {100, 0.01}} {
		sum := 0.0
		for k := 0; k <= c.n; k++ {
			sum += BinomialPMF(k, c.n, c.p)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("BinomialPMF(., %d, %v) sums to %v", c.n, c.p, sum)
		}
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if got := BinomialPMF(0, 10, 0); got != 1 {
		t.Errorf("Binomial(10,0) at 0 = %v", got)
	}
	if got := BinomialPMF(10, 10, 1); got != 1 {
		t.Errorf("Binomial(10,1) at 10 = %v", got)
	}
	if got := BinomialPMF(-1, 10, 0.5); got != 0 {
		t.Errorf("Binomial at -1 = %v", got)
	}
	if got := BinomialPMF(11, 10, 0.5); got != 0 {
		t.Errorf("Binomial at n+1 = %v", got)
	}
}

func TestLeCamBoundDominatesTV(t *testing.T) {
	// Theorem 6: TV(Binomial(n,p), Poisson(np)) <= 2 n p^2 (= LeCamBound/... )
	// Our LeCamBound returns 2np^2; exact TV must be below it.
	for _, c := range []struct {
		n int
		p float64
	}{{100, 0.01}, {500, 0.004}, {50, 0.1}} {
		tv := BinomialPoissonTV(c.n, c.p)
		bound := LeCamBound(c.n, c.p)
		if tv > bound {
			t.Errorf("TV %v exceeds Le Cam bound %v for n=%d p=%v", tv, bound, c.n, c.p)
		}
		if tv <= 0 {
			t.Errorf("TV = %v, want positive for n=%d p=%v", tv, c.n, c.p)
		}
	}
}

func BenchmarkTail(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Tail(2, 2.8)
	}
	_ = sink
}
