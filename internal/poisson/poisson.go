// Package poisson provides numerically careful evaluation of the Poisson
// probabilities that drive the peeling recurrences of Jiang, Mitzenmacher,
// and Thaler (SPAA 2014).
//
// The central quantities are the truncated sums S(a, x) = Σ_{j=0..a} x^j/j!
// and the tail probabilities Pr(Poisson(x) >= k) = 1 - e^{-x} S(k-1, x)
// that appear in Equations (2.1), (3.2)-(3.4), and (B.1) of the paper.
package poisson

import "math"

// PMF returns Pr(Poisson(mean) = k). It returns 0 for k < 0 and handles
// mean = 0 exactly. Computation is in log space to avoid overflow of k!.
func PMF(k int, mean float64) float64 {
	if k < 0 || mean < 0 {
		return 0
	}
	if mean == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k + 1))
	return math.Exp(float64(k)*math.Log(mean) - mean - lg)
}

// CDF returns Pr(Poisson(mean) <= k) by direct stable summation of the
// first k+1 terms. The peeling recurrences only ever need small k (k-1 or
// k-2 for the core parameter k), so direct summation is exact to ulps.
func CDF(k int, mean float64) float64 {
	if k < 0 {
		return 0
	}
	if mean <= 0 {
		return 1
	}
	return math.Exp(-mean) * TruncatedExpSum(k, mean)
}

// Tail returns Pr(Poisson(mean) >= k) = 1 - CDF(k-1, mean).
//
// For the regime used by the recurrences (small k, mean = O(rc)) the direct
// complement is accurate; for very small means it switches to summing the
// tail terms themselves so that Tail(k, mean) ~ mean^k/k! retains relative
// precision instead of cancelling to zero. That precision is what lets the
// doubly-exponential decay of Section 3.1 be observed down to 1e-300.
func Tail(k int, mean float64) float64 {
	if k <= 0 {
		return 1
	}
	if mean <= 0 {
		return 0
	}
	if mean < 0.5 {
		// Sum e^-mean * mean^j / j! for j = k, k+1, ... until negligible.
		lg, _ := math.Lgamma(float64(k + 1))
		term := math.Exp(float64(k)*math.Log(mean) - mean - lg)
		sum := 0.0
		for j := k; term > 0 && j < k+64; j++ {
			sum += term
			term *= mean / float64(j+1)
		}
		return sum
	}
	return 1 - CDF(k-1, mean)
}

// TruncatedExpSum returns S(a, x) = Σ_{j=0..a} x^j / j!, the truncated
// exponential series from the threshold formula (2.1). For a < 0 it
// returns 0 (the paper's convention S(-1, x) = 0).
func TruncatedExpSum(a int, x float64) float64 {
	if a < 0 {
		return 0
	}
	sum := 1.0
	term := 1.0
	for j := 1; j <= a; j++ {
		term *= x / float64(j)
		sum += term
	}
	return sum
}

// RegularizedTail returns 1 - e^{-x} S(a, x) = Pr(Poisson(x) >= a+1),
// the expression the recurrences exponentiate. It delegates to Tail for
// the numerically safe evaluation.
func RegularizedTail(a int, x float64) float64 {
	return Tail(a+1, x)
}

// LeCamBound returns the Le Cam total-variation bound 2 Σ p_i² = 2 n p²
// between a Binomial(n, p) and Poisson(np) distribution (Theorem 6 of the
// paper, with uniform p_i = p). The Lemma 4 coupling argument consumes it.
func LeCamBound(n int, p float64) float64 {
	return 2 * float64(n) * p * p
}

// BinomialPMF returns Pr(Binomial(n, p) = k), evaluated in log space.
func BinomialPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lgN, _ := math.Lgamma(float64(n + 1))
	lgK, _ := math.Lgamma(float64(k + 1))
	lgNK, _ := math.Lgamma(float64(n - k + 1))
	return math.Exp(lgN - lgK - lgNK + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

// BinomialPoissonTV returns the exact total-variation distance between
// Binomial(n, p) and Poisson(np), by direct summation. It is used in tests
// to verify the Le Cam bound and is O(n) — call with small n only.
func BinomialPoissonTV(n int, p float64) float64 {
	mean := float64(n) * p
	tv := 0.0
	// Beyond n the binomial mass is zero; sum the Poisson remainder too.
	for k := 0; k <= n; k++ {
		tv += math.Abs(BinomialPMF(k, n, p) - PMF(k, mean))
	}
	tv += Tail(n+1, mean)
	return tv / 2
}
