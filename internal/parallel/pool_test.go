package parallel

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 7, 100, 10000, 131071} {
			marks := make([]int32, n)
			p.For(n, 64, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&marks[i], 1)
				}
			})
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, m)
				}
			}
		}
		p.Close()
	}
}

// TestPoolForGrainAllPaths checks the grain bound on every execution
// path: the inline 1-worker path, the inline small-n path, and the
// multi-worker dispatch path. The seed's For violated this on the inline
// paths by calling fn(0, n) in one piece.
func TestPoolForGrainAllPaths(t *testing.T) {
	cases := []struct {
		workers, n, grain int
	}{
		{1, 1000, 64},  // 1-worker pool, inline
		{4, 50, 64},    // n <= grain, inline
		{4, 1000, 64},  // dispatched
		{4, 1000, 999}, // dispatched, 2 chunks
	}
	for _, tc := range cases {
		p := NewPool(tc.workers)
		var covered atomic.Int64
		p.For(tc.n, tc.grain, func(w, lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("workers=%d n=%d grain=%d: bad chunk [%d, %d)", tc.workers, tc.n, tc.grain, lo, hi)
			}
			if hi-lo > tc.grain {
				t.Errorf("workers=%d n=%d grain=%d: chunk [%d, %d) exceeds grain", tc.workers, tc.n, tc.grain, lo, hi)
			}
			covered.Add(int64(hi - lo))
		})
		if got := covered.Load(); got != int64(tc.n) {
			t.Errorf("workers=%d n=%d grain=%d: covered %d indices", tc.workers, tc.n, tc.grain, got)
		}
		p.Close()
	}
}

// TestPoolWorkerIDs checks the sharding contract: every reported ID is
// in [0, workers), and chunks with the same ID never run concurrently —
// the property that lets callers index per-worker buffers without
// atomics.
func TestPoolWorkerIDs(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	busy := make([]atomic.Bool, workers)
	seen := make([]atomic.Int64, workers)
	for trial := 0; trial < 20; trial++ {
		p.For(4096, 64, func(w, lo, hi int) {
			if w < 0 || w >= workers {
				t.Errorf("worker ID %d out of [0, %d)", w, workers)
				return
			}
			if !busy[w].CompareAndSwap(false, true) {
				t.Errorf("two chunks ran concurrently under worker ID %d", w)
			}
			for i := 0; i < 50; i++ { // widen the overlap window
				seen[w].Add(1)
			}
			busy[w].Store(false)
		})
	}
	if seen[0].Load() == 0 {
		t.Error("caller (worker 0) did no work")
	}
}

// TestPoolRun checks the submit/barrier primitive: fn runs exactly once
// per worker, with distinct IDs, and Run blocks until all are done.
func TestPoolRun(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	var calls [workers]atomic.Int64
	p.Run(func(w int) { calls[w].Add(1) })
	for w := range calls {
		if got := calls[w].Load(); got != 1 {
			t.Errorf("worker %d ran %d times, want 1", w, got)
		}
	}
}

// TestPoolRunRanges checks the static-partition contract: piece i
// always receives the i-th contiguous range, each piece runs exactly
// once, ranges tile [0, n) exactly, and empty ranges (n < pieces) are
// still invoked.
func TestPoolRunRanges(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, tc := range []struct{ n, pieces int }{
		{1, 4}, {3, 4}, {4, 4}, {1000, 4},
		{1000, 0}, // pieces <= 0 selects Workers()
		{1001, 7}, // pieces > workers: queued onto the same workers
		{1000, 1}, // single piece runs inline
		{5, 16},   // more pieces than items: empties still invoked
	} {
		pieces := tc.pieces
		if pieces <= 0 {
			pieces = p.Workers()
		}
		lows := make([]int, pieces)
		highs := make([]int, pieces)
		calls := make([]atomic.Int32, pieces)
		for i := range lows {
			lows[i], highs[i] = -1, -1
		}
		marks := make([]atomic.Int32, tc.n)
		p.RunRanges(tc.n, tc.pieces, func(i, lo, hi int) {
			calls[i].Add(1)
			lows[i], highs[i] = lo, hi
			for j := lo; j < hi; j++ {
				marks[j].Add(1)
			}
		})
		prev := 0
		for i := 0; i < pieces; i++ {
			if got := calls[i].Load(); got != 1 {
				t.Fatalf("n=%d pieces=%d: piece %d ran %d times", tc.n, tc.pieces, i, got)
			}
			if lows[i] != prev || highs[i] < lows[i] {
				t.Fatalf("n=%d pieces=%d piece %d: range [%d,%d), want start %d",
					tc.n, tc.pieces, i, lows[i], highs[i], prev)
			}
			prev = highs[i]
		}
		if prev != tc.n {
			t.Fatalf("n=%d pieces=%d: ranges end at %d", tc.n, tc.pieces, prev)
		}
		for j := range marks {
			if got := marks[j].Load(); got != 1 {
				t.Fatalf("n=%d pieces=%d: index %d visited %d times", tc.n, tc.pieces, j, got)
			}
		}
	}
}

// TestPoolConcurrentReuse hammers one pool from many goroutines; each
// caller must still see its own range covered exactly once. Run under
// -race this also proves batches from different callers don't trample
// each other's worker state.
func TestPoolConcurrentReuse(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var wg sync.WaitGroup
	for caller := 0; caller < 8; caller++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				marks := make([]int32, n)
				p.For(n, 32, func(w, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&marks[i], 1)
					}
				})
				for i, m := range marks {
					if m != 1 {
						t.Errorf("n=%d: index %d visited %d times", n, i, m)
						return
					}
				}
			}
		}(500 + 100*caller)
	}
	wg.Wait()
}

func TestDefaultPoolAndSetWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if got := Default().Workers(); got != 3 {
		t.Fatalf("Default().Workers() = %d after SetDefaultWorkers(3)", got)
	}
	var total atomic.Int64
	For(1000, 64, func(lo, hi int) { total.Add(int64(hi - lo)) })
	if got := total.Load(); got != 1000 {
		t.Errorf("package For covered %d indices on resized pool", got)
	}
	SetDefaultWorkers(0)
	if got := Default().Workers(); got != Workers() {
		t.Errorf("Default().Workers() = %d after reset, want %d", got, Workers())
	}
}

// TestPoolDispatchRotates checks the multi-tenant dispatch fix: small
// batches that wake only a few helpers must not all land on the same
// low-numbered channels. Sequential single-helper submissions rotate the
// start offset, so over workers-1 submissions more than one distinct
// helper ID must appear (before the fix every such batch woke helper 1).
func TestPoolDispatchRotates(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	seen := make(map[int]bool)
	// dispatch(1, fn) offers a batch to exactly one helper, which
	// reports its own fixed worker ID; with a rotating start offset,
	// consecutive single-helper batches land on different channels.
	// Waiting for each delivery keeps the queues empty so no offer is
	// dropped.
	for call := 0; call < 3*(workers-1); call++ {
		got := make(chan int, 1)
		p.dispatch(1, func(w int) { got <- w })
		seen[<-got] = true
	}
	if len(seen) < 2 {
		t.Errorf("single-helper batches woke only helpers %v; want rotation across channels", seen)
	}
}

// TestPoolConcurrentJobShards models the multi-tenant sharding contract:
// J concurrent jobs share one pool, each keeping its own per-worker
// buffers indexed by the worker IDs its For calls report. Within one For
// call chunks with the same ID never run concurrently, and distinct jobs
// use distinct buffers, so under -race this proves per-job worker-ID
// sharding needs no locks even with many submitters.
func TestPoolConcurrentJobShards(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Close()
	var wg sync.WaitGroup
	for job := 0; job < 8; job++ {
		wg.Add(1)
		go func(job int) {
			defer wg.Done()
			n := 400 + 50*job
			shards := make([][]int, workers) // private to this job
			for rep := 0; rep < 10; rep++ {
				for w := range shards {
					shards[w] = shards[w][:0]
				}
				p.For(n, 32, func(w, lo, hi int) {
					local := shards[w] // no atomics: per-job, per-worker
					for i := lo; i < hi; i++ {
						local = append(local, i)
					}
					shards[w] = local
				})
				total := 0
				for w := range shards {
					total += len(shards[w])
				}
				if total != n {
					t.Errorf("job %d: shards hold %d indices, want %d", job, total, n)
					return
				}
			}
		}(job)
	}
	wg.Wait()
}

// BenchmarkConcurrentFor measures aggregate throughput of J goroutines
// concurrently submitting small (tail-round-sized) For batches to one
// shared pool — the multi-tenant regime where the old dispatch piled
// every submitter onto chans[0..k].
func BenchmarkConcurrentFor(b *testing.B) {
	workers := Workers()
	if workers < 4 {
		workers = 4
	}
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			p := NewPool(workers)
			defer p.Close()
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for j := 0; j < jobs; j++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var sink atomic.Int64
					for i := 0; i < b.N/jobs+1; i++ {
						p.For(256, 64, func(w, lo, hi int) {
							var s int64
							for k := lo; k < hi; k++ {
								s += int64(k)
							}
							sink.Add(s)
						})
					}
				}()
			}
			wg.Wait()
		})
	}
}

// spawnFor is the seed's pre-pool For: a goroutine spawn plus WaitGroup
// handshake on every call. Kept here as the baseline for the pool
// benchmarks.
func spawnFor(n, grain int, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n/(workers*4) + 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	nChunks := (n + grain - 1) / grain
	if workers > nChunks {
		workers = nChunks
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(cursor.Add(int64(grain))) - grain
				if start >= n {
					return
				}
				end := start + grain
				if end > n {
					end = n
				}
				fn(start, end)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkDispatch compares per-round dispatch overhead of the
// persistent pool against per-call goroutine spawning, at the frontier
// sizes that dominate a peel: Tail models the O(log log n) small-frontier
// rounds the paper analyzes (a few hundred vertices), Mid an early round.
func BenchmarkDispatch(b *testing.B) {
	sizes := []struct {
		name     string
		n, grain int
	}{
		{"Tail256", 256, 64},
		{"Mid16k", 16 << 10, 2048},
		{"Full1M", 1 << 20, 2048},
	}
	workers := Workers()
	if workers < 2 {
		workers = 4 // exercise real dispatch even on 1-CPU machines
	}
	work := func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s
	}
	for _, sz := range sizes {
		b.Run("Pool/"+sz.name, func(b *testing.B) {
			p := NewPool(workers)
			defer p.Close()
			var sink atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.For(sz.n, sz.grain, func(w, lo, hi int) { sink.Add(work(lo, hi)) })
			}
		})
		b.Run("Spawn/"+sz.name, func(b *testing.B) {
			var sink atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spawnFor(sz.n, sz.grain, workers, func(lo, hi int) { sink.Add(work(lo, hi)) })
			}
		})
	}
}
