package parallel

import (
	"context"
	"errors"
	"sync"
)

// Group runs independent jobs concurrently on one shared Pool — the
// multi-tenant serving primitive. Each job is a function that receives
// the shared pool and runs on its own goroutine, acting as worker 0 of
// every For/Run call it makes; inner parallelism comes from the pool's
// helpers, which all jobs share. Because batch dispatch rotates across
// helpers, many small jobs (the O(log log n) tail rounds of concurrent
// peels) spread over the helper set instead of piling onto the first
// channels.
//
// Jobs are admitted to the pool via Enter, so Pool.Shutdown counts and
// drains them; a job submitted after shutdown began fails with ErrClosed
// (recorded as the Group error) without running.
//
// Jobs must keep per-worker state (round buffers, shards) private to the
// job: worker IDs are only serialized within a single For/Run call, and
// concurrent jobs each see the full ID range. The ...WithPool decode and
// build paths in internal/iblt, internal/mphf, internal/bloomier, and
// internal/erasure allocate their buffers per call, so they are safe to
// run as Group jobs as-is.
//
// A Group is not reusable after Wait, and jobs must not call Go on their
// own Group. The zero Group is not valid; use Pool.NewGroup.
//
// Group predates the repro Runtime, which packages the same admission
// and draining behind a context-first API; new code should prefer the
// Runtime.
type Group struct {
	pool *Pool
	sem  chan struct{}
	wg   sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewGroup returns a Group whose jobs execute on p. maxJobs > 0 bounds
// the number of jobs running simultaneously (Go blocks while the bound
// is reached), which caps the per-job buffer memory and goroutine count
// of a server admitting unbounded requests; maxJobs <= 0 means no bound.
func (p *Pool) NewGroup(maxJobs int) *Group {
	g := &Group{pool: p}
	if maxJobs > 0 {
		g.sem = make(chan struct{}, maxJobs)
	}
	return g
}

// Go submits a job. The job starts immediately on its own goroutine
// unless the Group's concurrency bound is reached, in which case Go
// blocks until a running job finishes. The first non-nil error across
// jobs is retained for Wait; later jobs still run (peeling jobs are
// independent — one failed decode must not cancel the rest).
func (g *Group) Go(job func(pool *Pool) error) {
	if g.sem != nil {
		g.sem <- struct{}{}
	}
	g.spawn(func() error { return job(g.pool) })
}

// GoCtx submits a job that receives ctx and should abandon work promptly
// once it is done (the ctx-threaded decode/build paths and Pool.ForCtx
// do this at their round and batch barriers). Admission — waiting for a
// slot under the Group's concurrency bound — also respects ctx: if ctx
// is done first, the job never starts and GoCtx returns ctx.Err().
// GoCtx returns nil once the job has been handed to its goroutine; the
// job's own error is reported through Wait. A job whose error is the
// context's is additionally counted in the pool's JobsCanceled stat.
func (g *Group) GoCtx(ctx context.Context, job func(ctx context.Context, pool *Pool) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if g.sem != nil {
		select {
		case g.sem <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	g.spawn(func() error {
		err := job(ctx, g.pool)
		if IsCancellation(err) {
			g.pool.NoteCanceled()
		}
		return err
	})
	return nil
}

// spawn runs fn as an admitted pool job on a fresh goroutine, releasing
// the Group's semaphore slot and recording the first error. A panic in
// the job is recovered at this boundary and recorded as ErrJobPanicked
// (and counted in the pool's JobsPanicked), so one poisoned job cannot
// kill the process or wedge the Group's Wait; sibling jobs run on.
func (g *Group) spawn(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if g.sem != nil {
			defer func() { <-g.sem }()
		}
		exit, err := g.pool.Enter()
		if err == nil {
			defer exit()
			err = recoverJob(fn)
			if errors.Is(err, ErrJobPanicked) {
				g.pool.NotePanicked()
			}
		}
		if err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every submitted job has finished and returns the
// first error any job reported (nil if all succeeded).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Pool returns the shared pool jobs run on.
func (g *Group) Pool() *Pool { return g.pool }
