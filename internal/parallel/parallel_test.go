package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 10000, 131071} {
		marks := make([]int32, n)
		For(n, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		for i, m := range marks {
			if m != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, m)
			}
		}
	}
}

func TestForDefaultGrain(t *testing.T) {
	var total atomic.Int64
	For(100000, 0, func(lo, hi int) {
		total.Add(int64(hi - lo))
	})
	if got := total.Load(); got != 100000 {
		t.Errorf("covered %d indices, want 100000", got)
	}
}

func TestForNegativeAndZero(t *testing.T) {
	called := false
	For(0, 10, func(lo, hi int) { called = true })
	For(-5, 10, func(lo, hi int) { called = true })
	if called {
		t.Error("For called fn for empty range")
	}
}

func TestForChunkBounds(t *testing.T) {
	For(1000, 64, func(lo, hi int) {
		if lo < 0 || hi > 1000 || lo >= hi {
			t.Errorf("bad chunk [%d, %d)", lo, hi)
		}
		if hi-lo > 64 {
			t.Errorf("chunk [%d, %d) exceeds grain", lo, hi)
		}
	})
}

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(200)
	if b.Len() != 200 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(199)
	for _, i := range []int{0, 63, 64, 199} {
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(100) {
		t.Error("unexpected bit set")
	}
	if got := b.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	b.Reset()
	if got := b.Count(); got != 0 {
		t.Errorf("Count after Reset = %d", got)
	}
}

func TestBitsetAtomicSetClaimsOnce(t *testing.T) {
	const n = 1 << 14
	b := NewBitset(n)
	var claims atomic.Int64
	// Every index is attempted by multiple chunks; AtomicSet must grant
	// exactly one claim per index.
	const attempts = 4
	done := make(chan struct{}, attempts)
	for a := 0; a < attempts; a++ {
		go func() {
			for i := 0; i < n; i++ {
				if b.AtomicSet(i) {
					claims.Add(1)
				}
			}
			done <- struct{}{}
		}()
	}
	for a := 0; a < attempts; a++ {
		<-done
	}
	if got := claims.Load(); got != n {
		t.Errorf("claims = %d, want %d", got, n)
	}
	if got := b.Count(); got != n {
		t.Errorf("Count = %d, want %d", got, n)
	}
}

func TestBitsetAtomicGet(t *testing.T) {
	b := NewBitset(128)
	if b.AtomicGet(77) {
		t.Error("fresh bit set")
	}
	b.AtomicSet(77)
	if !b.AtomicGet(77) {
		t.Error("bit lost")
	}
}

func TestBitsetCountMatchesSets(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitset(1 << 16)
		distinct := map[uint16]bool{}
		for _, i := range idxs {
			b.Set(int(i))
			distinct[i] = true
		}
		return b.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	c := p.NewCounter()
	p.For(10000, 16, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			c.Add(w, 1)
		}
	})
	if got := c.Sum(); got != 10000 {
		t.Errorf("Sum = %d, want 10000", got)
	}
	c.Reset()
	if got := c.Sum(); got != 0 {
		t.Errorf("Sum after Reset = %d", got)
	}
}

// TestCounterShardSpread pins the Counter.Add contract: distinct worker
// IDs in [0, shards) hit distinct shards. Chunk offsets (multiples of the
// grain) used to be passed as keys and could all alias to shard 0.
func TestCounterShardSpread(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	c := p.NewCounter()
	for w := 0; w < 4; w++ {
		c.Add(w, 1)
	}
	for i := range c.shards {
		if got := c.shards[i].v.Load(); got != 1 {
			t.Errorf("shard %d holds %d, want 1 (worker IDs must not collide)", i, got)
		}
	}
}

func BenchmarkForSum(b *testing.B) {
	data := make([]int64, 1<<20)
	for i := range data {
		data[i] = int64(i)
	}
	p := Default()
	c := p.NewCounter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		p.For(len(data), 1<<14, func(w, lo, hi int) {
			var local int64
			for j := lo; j < hi; j++ {
				local += data[j]
			}
			c.Add(w, local)
		})
		_ = c.Sum()
	}
}

func BenchmarkBitsetAtomicSet(b *testing.B) {
	bs := NewBitset(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.AtomicSet(i & (1<<20 - 1))
	}
}
