package parallel

import (
	"context"
	"errors"
	"runtime"
)

// ErrClosed is returned for jobs submitted to a pool (or a runtime built
// on one) that has begun shutting down, and by the second and later
// calls to Shutdown.
var ErrClosed = errors.New("parallel: pool is shut down")

// Enter admits the calling goroutine as a job on the pool: until the
// returned exit func runs, the pool counts the job as in-flight work and
// Shutdown waits for it. Serving layers wrap each request in Enter/exit;
// Group and the repro Runtime do this for their jobs. exit must be
// called exactly once, after the job's last For/Run.
//
// If the pool is already draining or terminated, Enter rejects the job
// with ErrClosed (counted in Stats as a rejection) and the returned exit
// is a no-op.
func (p *Pool) Enter() (exit func(), err error) {
	// Increment before loading state (both seq-cst): if Shutdown's load
	// of jobs sees zero, any later Enter observes at least stateDraining
	// here and backs out, so the drain can never miss a job.
	p.jobs.Add(1)
	if p.state.Load() != stateOpen {
		p.exitJob()
		p.jobsRejected.Add(1)
		return func() {}, ErrClosed
	}
	p.jobsAdmitted.Add(1)
	return p.exitJob, nil
}

// exitJob retires one admitted job and completes a pending drain when
// the last one leaves.
func (p *Pool) exitJob() {
	if p.jobs.Add(-1) == 0 && p.state.Load() >= stateDraining {
		p.drainedOnce.Do(func() { close(p.drained) })
	}
}

// NoteCanceled records that an admitted job was abandoned because its
// context was canceled; surfaced in Stats as JobsCanceled. The serving
// layer calls it when a job returns a context error (IsCancellation).
func (p *Pool) NoteCanceled() { p.jobsCanceled.Add(1) }

// IsCancellation reports whether err is (or wraps) a context
// cancellation or deadline error — the shared predicate deciding what
// counts toward the JobsCanceled stat across every submission path.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// NoteRejected records a job turned away before reaching Enter — e.g.
// by a runtime that has begun its own shutdown; surfaced in Stats as
// JobsRejected alongside the pool's own Enter rejections.
func (p *Pool) NoteRejected() { p.jobsRejected.Add(1) }

// NotePanicked records a job that died to a recovered panic (the
// serving layer calls it when a job's error matches ErrJobPanicked);
// surfaced in Stats as JobsPanicked. Group jobs are counted
// automatically.
func (p *Pool) NotePanicked() { p.jobsPanicked.Add(1) }

// NoteShed records a job turned away by load shedding — admission was
// rejected because the serving layer's concurrency bound was saturated,
// not because the pool is closing; surfaced in Stats as JobsShed. A
// server that sheds instead of queueing calls this so an operator can
// tell overload (retry later) apart from shutdown (go away).
func (p *Pool) NoteShed() { p.jobsShed.Add(1) }

// Shutdown gracefully drains the pool: it atomically stops admission
// (subsequent Enter calls return ErrClosed), waits for every admitted
// job to finish — jobs keep their full parallelism while draining — and
// then stops the helper goroutines. It returns nil once the pool is
// fully drained and terminated. For/Run themselves remain safe forever:
// after termination they run entirely on the calling goroutine.
//
// If ctx expires first, Shutdown returns ctx.Err() immediately; the
// pool remains in the draining state and a background janitor stops the
// helpers as soon as the remaining jobs complete, so helpers are never
// leaked and jobs are never interrupted mid-batch (Go cannot force-kill
// goroutines; cancellation of the jobs themselves is the caller's lever
// — see ForCtx and the ctx-threaded decode/build paths).
//
// A second Shutdown (or a Shutdown racing another) returns ErrClosed.
func (p *Pool) Shutdown(ctx context.Context) error {
	if !p.state.CompareAndSwap(stateOpen, stateDraining) {
		return ErrClosed
	}
	if p.jobs.Load() == 0 {
		p.drainedOnce.Do(func() { close(p.drained) })
	}
	// Prefer a completed drain over an expired ctx: with both ready the
	// two-way select below would pick at random, reporting a spurious
	// failure for a shutdown that in fact finished cleanly.
	select {
	case <-p.drained:
		p.terminate()
		return nil
	default:
	}
	select {
	case <-p.drained:
		p.terminate()
		return nil
	case <-ctx.Done():
		go func() {
			<-p.drained
			p.terminate()
		}()
		return ctx.Err()
	}
}

// terminate closes the helper channels after a completed drain. Only
// reached once (drained closes once and both Shutdown paths are
// mutually exclusive via the state CAS). The senders spin pairs with
// dispatch: once senders reads zero after the terminated store, every
// future dispatch observes the terminated state before touching a
// channel, so the closes below cannot race a send. The window is the
// few instructions of dispatch's send loop, so the spin is momentary.
func (p *Pool) terminate() {
	p.state.Store(stateTerminated)
	for p.senders.Load() != 0 {
		runtime.Gosched()
	}
	for _, ch := range p.chans {
		close(ch)
	}
}

// Close shuts down the pool, waiting indefinitely for in-flight jobs:
// it is Shutdown with a background context, kept for callers that own
// their pool and know it is idle (the historical contract). Close after
// Shutdown is a no-op.
func (p *Pool) Close() { _ = p.Shutdown(context.Background()) }

// Stats is a snapshot of a pool's backpressure and serving counters.
type Stats struct {
	// Workers is the pool size (fixed at creation).
	Workers int
	// QueueDepth is the number of dispatched batches sitting in helper
	// channels that no helper has started yet — sustained nonzero depth
	// means submissions outpace the helpers.
	QueueDepth int
	// BusyHelpers is the number of helper goroutines currently executing
	// a batch (0 ≤ BusyHelpers ≤ Workers-1); the submitting goroutines'
	// own shares are not counted.
	BusyHelpers int
	// InFlight is the number of admitted jobs currently running.
	InFlight int
	// JobsAdmitted / JobsRejected / JobsCanceled count jobs over the
	// pool's lifetime: admitted via Enter, rejected by shutdown, and
	// reported canceled via NoteCanceled. Serving layers use
	// JobsAdmitted − JobsRejected trends and QueueDepth to size
	// admission bounds.
	JobsAdmitted int64
	JobsRejected int64
	JobsCanceled int64
	// JobsPanicked counts jobs that died to a panic recovered at a
	// chunk or job boundary (ErrJobPanicked). The pool itself survives
	// a panicked job; a nonzero rate here is an application bug to
	// chase with the stack carried by the PanicError.
	JobsPanicked int64
	// JobsShed counts jobs rejected by load shedding (NoteShed): the
	// serving layer's admission bound was full, so the job was turned
	// away with a retry hint instead of queueing unboundedly. Distinct
	// from JobsRejected, which counts shutdown-time rejections.
	JobsShed int64
}

// Stats returns a point-in-time snapshot of the pool's counters. The
// fields are sampled independently (each is itself atomic), so a
// snapshot taken under load is approximate — fine for sizing and
// monitoring, not a consistency point.
func (p *Pool) Stats() Stats {
	s := Stats{
		Workers:      p.workers,
		BusyHelpers:  int(p.busyHelpers.Load()),
		InFlight:     int(p.jobs.Load()),
		JobsAdmitted: p.jobsAdmitted.Load(),
		JobsRejected: p.jobsRejected.Load(),
		JobsCanceled: p.jobsCanceled.Load(),
		JobsPanicked: p.jobsPanicked.Load(),
		JobsShed:     p.jobsShed.Load(),
	}
	for _, ch := range p.chans {
		s.QueueDepth += len(ch)
	}
	return s
}

// ForCtx is For with cooperative cancellation: workers stop executing
// chunks as soon as ctx is done, and ForCtx returns ctx.Err(). Chunks
// already started always run to completion (a barrier is never
// abandoned mid-chunk, so no per-worker state is left mid-update); the
// cancellation granularity is therefore one grain per worker. A nil
// return means every chunk ran. A non-nil return means the range was
// (possibly) only partially processed — callers treat their output as
// abandoned. Contexts that can never be canceled take a fast path
// identical to For.
// A panic inside fn is recovered at the chunk boundary and returned as
// a *PanicError (matching ErrJobPanicked) instead of being re-raised —
// the error-first spelling of For's panic isolation; it takes
// precedence over a concurrent cancellation.
func (p *Pool) ForCtx(ctx context.Context, n, grain int, fn func(w, lo, hi int)) error {
	done := ctx.Done()
	if done == nil {
		if pe := p.forOn(nil, n, grain, fn); pe != nil {
			return pe
		}
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if pe := p.forOn(done, n, grain, fn); pe != nil {
		return pe
	}
	return ctx.Err()
}

// RunRangesCtx is RunRanges with cooperative cancellation, with the same
// contract as ForCtx: on a non-nil return some pieces may not have run.
func (p *Pool) RunRangesCtx(ctx context.Context, n, pieces int, fn func(i, lo, hi int)) error {
	done := ctx.Done()
	if done == nil {
		if pe := p.runRangesOn(nil, n, pieces, fn); pe != nil {
			return pe
		}
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if pe := p.runRangesOn(done, n, pieces, fn); pe != nil {
		return pe
	}
	return ctx.Err()
}
