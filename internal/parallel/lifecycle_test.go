package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolNestedForInline is the regression test for the nested-
// submission deadlock: a For issued from inside a batch function of the
// same pool must complete even though the helpers are busy with the
// outer call — the claim-based barrier lets the nested submitter finish
// the range itself and never wait on a helper that hasn't started.
func TestPoolNestedForInline(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()

	const outer, inner = 64, 1000
	var total atomic.Int64
	donech := make(chan struct{})
	go func() {
		defer close(donech)
		// grain 1 forces every outer index onto the parallel path, so
		// helpers (not just worker 0) hit the nested call.
		pool.For(outer, 1, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				// The nested call's chunks may be shared with helpers, so
				// the tally must be synchronized like any per-call state.
				var sum atomic.Int64
				pool.For(inner, 0, func(_, ilo, ihi int) {
					sum.Add(int64(ihi - ilo))
				})
				if sum.Load() != inner {
					t.Errorf("nested For covered %d of %d indices", sum.Load(), inner)
				}
				total.Add(1)
			}
		})
	}()
	select {
	case <-donech:
	case <-time.After(30 * time.Second):
		t.Fatal("nested For deadlocked")
	}
	if got := total.Load(); got != outer {
		t.Fatalf("outer loop ran %d of %d iterations", got, outer)
	}
}

// TestPoolNestedRunInline checks the Run primitive under nesting:
// every worker ID of the nested call is still visited exactly once.
func TestPoolNestedRunInline(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	pool.Run(func(outer int) {
		seen := make([]bool, pool.Workers())
		pool.Run(func(w int) { seen[w] = true })
		for w, ok := range seen {
			if !ok {
				t.Errorf("outer worker %d: nested Run skipped worker %d", outer, w)
			}
		}
	})
}

func TestForCtxCancel(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()

	// Pre-canceled context: no chunk runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int64{}
	if err := pool.ForCtx(ctx, 1000, 10, func(_, lo, hi int) { ran.Add(1) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx on canceled ctx: err = %v, want Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("ForCtx ran %d chunks on a pre-canceled ctx", ran.Load())
	}

	// Cancel mid-flight: workers stop claiming; at most one extra chunk
	// per worker runs after the cancel lands.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var after atomic.Int64
	var canceled atomic.Bool
	err := pool.ForCtx(ctx2, 1<<20, 64, func(_, lo, hi int) {
		if lo == 0 {
			cancel2()
			canceled.Store(true)
		} else if canceled.Load() {
			after.Add(1)
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx after mid-flight cancel: err = %v, want Canceled", err)
	}
	// Each of the 4 workers may have been mid-chunk when cancel hit and
	// each claims at most one more before observing done.
	if a := after.Load(); a > int64(2*pool.Workers()) {
		t.Fatalf("ForCtx ran %d chunks after cancel (want ≤ %d)", a, 2*pool.Workers())
	}

	// Background context: identical to For.
	count := pool.NewCounter()
	if err := pool.ForCtx(context.Background(), 1000, 10, func(w, lo, hi int) {
		count.Add(w, int64(hi-lo))
	}); err != nil {
		t.Fatalf("ForCtx(Background): %v", err)
	}
	if count.Sum() != 1000 {
		t.Fatalf("ForCtx(Background) covered %d of 1000", count.Sum())
	}
}

func TestRunRangesCtxCancel(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int64{}
	if err := pool.RunRangesCtx(ctx, 100, 8, func(i, lo, hi int) { ran.Add(1) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunRangesCtx on canceled ctx: err = %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("RunRangesCtx ran %d pieces on a pre-canceled ctx", ran.Load())
	}
	var pieces atomic.Int64
	if err := pool.RunRangesCtx(context.Background(), 100, 8, func(i, lo, hi int) {
		pieces.Add(1)
	}); err != nil || pieces.Load() != 8 {
		t.Fatalf("RunRangesCtx(Background): err=%v pieces=%d", err, pieces.Load())
	}
}

// TestShutdownDrains submits jobs, shuts down concurrently, and checks
// that shutdown waits for all in-flight jobs and that post-shutdown
// submissions are rejected.
func TestShutdownDrains(t *testing.T) {
	pool := NewPool(4)
	const jobs = 8
	var finished atomic.Int64
	release := make(chan struct{})
	started := sync.WaitGroup{}
	done := sync.WaitGroup{}
	for j := 0; j < jobs; j++ {
		started.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			exit, err := pool.Enter()
			started.Done()
			if err != nil {
				t.Errorf("Enter before shutdown: %v", err)
				return
			}
			defer exit()
			<-release
			// Still allowed to dispatch parallel batches while draining.
			var sum atomic.Int64
			pool.For(10000, 100, func(_, lo, hi int) { sum.Add(int64(hi - lo)) })
			if sum.Load() != 10000 {
				t.Errorf("draining-phase For covered %d of 10000", sum.Load())
			}
			finished.Add(1)
		}()
	}
	started.Wait()

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- pool.Shutdown(context.Background()) }()

	// Shutdown must not complete while jobs are in flight.
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v with %d jobs still running", err, jobs)
	case <-time.After(50 * time.Millisecond):
	}
	// New jobs are rejected while draining.
	if _, err := pool.Enter(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Enter during drain: err = %v, want ErrClosed", err)
	}
	close(release)
	done.Wait()
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown after drain: %v", err)
	}
	if finished.Load() != jobs {
		t.Fatalf("only %d of %d jobs finished before shutdown returned", finished.Load(), jobs)
	}

	// Double shutdown errors; post-shutdown For degrades to inline.
	if err := pool.Shutdown(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Shutdown: err = %v, want ErrClosed", err)
	}
	sum := 0
	pool.For(1000, 10, func(w, lo, hi int) {
		if w != 0 {
			t.Errorf("post-shutdown For used worker %d", w)
		}
		sum += hi - lo
	})
	if sum != 1000 {
		t.Fatalf("post-shutdown inline For covered %d of 1000", sum)
	}
	st := pool.Stats()
	if st.JobsAdmitted != jobs || st.JobsRejected == 0 {
		t.Fatalf("stats after shutdown: %+v", st)
	}
}

// TestShutdownExpires checks the force-stop path: an expired ctx makes
// Shutdown return immediately with the ctx error while a janitor
// finishes the drain in the background.
func TestShutdownExpires(t *testing.T) {
	pool := NewPool(2)
	exit, err := pool.Enter()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := pool.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with held job: err = %v, want DeadlineExceeded", err)
	}
	exit() // release the job; the janitor terminates the pool
	deadline := time.Now().Add(5 * time.Second)
	for pool.state.Load() != stateTerminated {
		if time.Now().After(deadline) {
			t.Fatal("janitor never terminated the pool")
		}
		time.Sleep(time.Millisecond)
	}
	// Post-termination submission still works (inline).
	sum := 0
	pool.For(100, 10, func(_, lo, hi int) { sum += hi - lo })
	if sum != 100 {
		t.Fatalf("post-termination For covered %d of 100", sum)
	}
}

// TestGroupGoCtx checks ctx-aware admission and the canceled-jobs stat.
func TestGroupGoCtx(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	g := pool.NewGroup(1)

	// A canceled ctx is refused at admission.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.GoCtx(ctx, func(context.Context, *Pool) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("GoCtx on canceled ctx: err = %v", err)
	}

	// A job that honors cancellation reports the ctx error via Wait and
	// bumps the canceled counter.
	ctx2, cancel2 := context.WithCancel(context.Background())
	if err := g.GoCtx(ctx2, func(ctx context.Context, p *Pool) error {
		cancel2()
		<-ctx.Done()
		return ctx.Err()
	}); err != nil {
		t.Fatalf("GoCtx: %v", err)
	}
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait: err = %v, want Canceled", err)
	}
	if c := pool.Stats().JobsCanceled; c != 1 {
		t.Fatalf("JobsCanceled = %d, want 1", c)
	}
}

// TestGroupRejectedAfterShutdown checks that Group jobs submitted after
// pool shutdown fail with ErrClosed instead of running.
func TestGroupRejectedAfterShutdown(t *testing.T) {
	pool := NewPool(2)
	g := pool.NewGroup(0)
	if err := pool.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ran := false
	g.Go(func(*Pool) error { ran = true; return nil })
	if err := g.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Wait after post-shutdown Go: err = %v, want ErrClosed", err)
	}
	if ran {
		t.Fatal("post-shutdown job ran")
	}
}

// TestStatsUnderLoad drives concurrent jobs and checks the counters
// move: admissions equal submissions, and helpers were observed busy or
// batches queued at least once during the run.
func TestStatsUnderLoad(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	g := pool.NewGroup(0)
	const jobs = 6
	for j := 0; j < jobs; j++ {
		g.Go(func(p *Pool) error {
			for rep := 0; rep < 50; rep++ {
				p.For(1<<14, 256, func(_, lo, hi int) {
					s := 0
					for i := lo; i < hi; i++ {
						s += i
					}
					_ = s
				})
			}
			return nil
		})
	}
	sawActivity := false
	for i := 0; i < 1000 && !sawActivity; i++ {
		st := pool.Stats()
		if st.BusyHelpers > 0 || st.QueueDepth > 0 {
			sawActivity = true
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.JobsAdmitted != jobs {
		t.Fatalf("JobsAdmitted = %d, want %d", st.JobsAdmitted, jobs)
	}
	if !sawActivity {
		t.Error("never observed busy helpers or queued batches under load")
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after Wait, want 0", st.InFlight)
	}
}
