package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestGroupRunsAllJobs(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	g := p.NewGroup(0)
	var ran atomic.Int64
	for i := 0; i < 20; i++ {
		g.Go(func(pool *Pool) error {
			ran.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait() = %v", err)
	}
	if got := ran.Load(); got != 20 {
		t.Errorf("ran %d jobs, want 20", got)
	}
}

// TestGroupJobsUsePool checks the core multi-tenant pattern: every job
// issues For calls on the shared pool with its own per-worker shards,
// and each job's result is exact. Under -race this exercises the
// concurrent-submitter path end to end.
func TestGroupJobsUsePool(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	g := p.NewGroup(4)
	sums := make([]int64, 16)
	for j := range sums {
		g.Go(func(pool *Pool) error {
			n := 1000 + j
			shards := make([]int64, pool.Workers())
			for rep := 0; rep < 5; rep++ {
				for w := range shards {
					shards[w] = 0
				}
				pool.For(n, 64, func(w, lo, hi int) {
					for i := lo; i < hi; i++ {
						shards[w] += int64(i)
					}
				})
				var total int64
				for _, s := range shards {
					total += s
				}
				sums[j] = total
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	for j, got := range sums {
		n := int64(1000 + j)
		if want := n * (n - 1) / 2; got != want {
			t.Errorf("job %d: sum %d, want %d", j, got, want)
		}
	}
}

func TestGroupFirstErrorWins(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	g := p.NewGroup(1) // serialize so "first" is deterministic
	errBoom := errors.New("boom")
	var after atomic.Bool
	g.Go(func(pool *Pool) error { return errBoom })
	g.Go(func(pool *Pool) error { after.Store(true); return errors.New("later") })
	if err := g.Wait(); !errors.Is(err, errBoom) {
		t.Errorf("Wait() = %v, want %v", err, errBoom)
	}
	if !after.Load() {
		t.Error("a failing job cancelled later jobs; they must still run")
	}
}

func TestGroupBoundsConcurrency(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	const limit = 3
	g := p.NewGroup(limit)
	var running, peak atomic.Int64
	for i := 0; i < 24; i++ {
		g.Go(func(pool *Pool) error {
			r := running.Add(1)
			for {
				old := peak.Load()
				if r <= old || peak.CompareAndSwap(old, r) {
					break
				}
			}
			pool.For(500, 64, func(w, lo, hi int) {})
			running.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > limit {
		t.Errorf("peak concurrent jobs %d exceeds limit %d", got, limit)
	}
}
