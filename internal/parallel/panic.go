package parallel

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrJobPanicked is the sentinel matched (with errors.Is) by every
// panic a pool barrier or job boundary converted into an error. The
// concrete error is always a *PanicError carrying the recovered value
// and the panicking goroutine's stack.
var ErrJobPanicked = errors.New("parallel: job panicked")

// PanicError is a panic recovered at a chunk or job boundary: the pool
// completes the barrier (sibling workers and waiters never hang, the
// helpers stay healthy for subsequent jobs) and delivers the panic to
// the submitting side as this error. errors.Is(err, ErrJobPanicked)
// matches it; if the panic value was itself an error, Unwrap exposes it
// too.
type PanicError struct {
	value any
	stack []byte
}

// NewPanicError wraps a value recovered from a panic, capturing the
// current stack. Call it inside the deferred recover so the captured
// stack still contains the panicking frames. A value that already is a
// *PanicError (a panic re-raised across a nested barrier) is returned
// unchanged, keeping the original stack.
func NewPanicError(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{value: v, stack: debug.Stack()}
}

// Error includes the panic value; the full stack is available from
// Stack for logs and crash reports.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: job panicked: %v", e.value)
}

// Value returns the recovered panic value.
func (e *PanicError) Value() any { return e.value }

// Stack returns the stack captured at the recovery point, which
// includes the panicking frames.
func (e *PanicError) Stack() []byte { return e.stack }

// Is matches ErrJobPanicked.
func (e *PanicError) Is(target error) bool { return target == ErrJobPanicked }

// Unwrap exposes the panic value when it was an error (e.g. a
// panic(err) deep in caller code), so errors.Is/As keep working
// through the panic boundary. Non-error panic values unwrap to nil.
func (e *PanicError) Unwrap() error {
	if err, ok := e.value.(error); ok {
		return err
	}
	return nil
}

// recoverJob converts a panicking fn into a *PanicError — the shared
// job-boundary recovery used by Group and the repro Runtime. The
// returned error is nil when fn returns normally.
func recoverJob(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = NewPanicError(v)
		}
	}()
	return fn()
}
