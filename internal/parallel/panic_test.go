package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recoverPanicError runs fn and returns the *PanicError it re-panics
// with (nil if fn returned normally).
func recoverPanicError(fn func()) (pe *PanicError) {
	defer func() {
		if v := recover(); v != nil {
			var ok bool
			if pe, ok = v.(*PanicError); !ok {
				panic(v)
			}
		}
	}()
	fn()
	return nil
}

func TestForPanicIsRecoveredAndReRaised(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	pe := recoverPanicError(func() {
		p.For(10000, 64, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if i == 7777 {
					panic("boom at 7777")
				}
			}
		})
	})
	if pe == nil {
		t.Fatal("panicking For returned normally")
	}
	if !errors.Is(pe, ErrJobPanicked) {
		t.Errorf("errors.Is(pe, ErrJobPanicked) = false")
	}
	if pe.Value() != "boom at 7777" {
		t.Errorf("panic value = %v, want boom at 7777", pe.Value())
	}
	if !strings.Contains(string(pe.Stack()), "panic_test.go") {
		t.Errorf("captured stack does not contain the panicking frame:\n%s", pe.Stack())
	}

	// The barrier completed and the pool is healthy: a subsequent For
	// must run every chunk.
	var ran atomic.Int64
	p.For(1000, 16, func(_, lo, hi int) { ran.Add(int64(hi - lo)) })
	if ran.Load() != 1000 {
		t.Errorf("pool after panic ran %d of 1000 iterations", ran.Load())
	}
}

func TestForCtxPanicReturnsError(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	sentinel := errors.New("inner failure")
	err := p.ForCtx(context.Background(), 1000, 32, func(_, lo, hi int) {
		if lo == 0 {
			panic(sentinel)
		}
	})
	if !errors.Is(err, ErrJobPanicked) {
		t.Fatalf("ForCtx error = %v, want ErrJobPanicked", err)
	}
	// A panic(err) unwraps to the original error through the boundary.
	if !errors.Is(err, sentinel) {
		t.Errorf("ForCtx error does not unwrap to the panic value error")
	}
}

func TestForCtxPanicBeatsCancellation(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	err := p.ForCtx(ctx, 1000, 32, func(_, lo, hi int) {
		cancel()
		panic("panic after cancel")
	})
	if !errors.Is(err, ErrJobPanicked) {
		t.Errorf("ForCtx = %v, want the panic error to take precedence over ctx.Err()", err)
	}
}

func TestRunRangesPanicIsRecovered(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	pe := recoverPanicError(func() {
		p.RunRanges(100, 8, func(i, lo, hi int) {
			if i == 3 {
				panic(fmt.Sprintf("piece %d", i))
			}
		})
	})
	if pe == nil || pe.Value() != "piece 3" {
		t.Fatalf("RunRanges panic = %v, want piece 3", pe)
	}
}

func TestSerialPoolPanicIsRecovered(t *testing.T) {
	// Workers == 1 takes the serial path; the contract must match.
	p := NewPool(1)
	defer p.Close()
	pe := recoverPanicError(func() {
		p.For(100, 10, func(_, lo, hi int) { panic("serial boom") })
	})
	if pe == nil || pe.Value() != "serial boom" {
		t.Fatalf("serial For panic = %v, want serial boom", pe)
	}
}

func TestNestedForPanicKeepsOriginalStack(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	pe := recoverPanicError(func() {
		p.For(4, 1, func(_, lo, hi int) {
			p.For(4, 1, func(_, lo2, hi2 int) {
				if lo2 == 0 {
					panic("deep boom")
				}
			})
		})
	})
	if pe == nil {
		t.Fatal("nested panic not propagated")
	}
	// The inner *PanicError must cross the outer barrier unchanged, not
	// be double-wrapped.
	if pe.Value() != "deep boom" {
		t.Errorf("nested panic value = %v (double-wrapped?)", pe.Value())
	}
}

func TestGroupJobPanicIsIsolated(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	g := p.NewGroup(0)

	var completed atomic.Int64
	g.Go(func(pool *Pool) error {
		panic("job boom")
	})
	for i := 0; i < 8; i++ {
		g.Go(func(pool *Pool) error {
			var n atomic.Int64
			pool.For(1000, 32, func(_, lo, hi int) { n.Add(int64(hi - lo)) })
			if n.Load() != 1000 {
				return fmt.Errorf("sibling ran %d of 1000", n.Load())
			}
			completed.Add(1)
			return nil
		})
	}
	err := g.Wait()
	if !errors.Is(err, ErrJobPanicked) {
		t.Fatalf("Group error = %v, want ErrJobPanicked", err)
	}
	if completed.Load() != 8 {
		t.Errorf("only %d of 8 sibling jobs completed", completed.Load())
	}
	if got := p.Stats().JobsPanicked; got != 1 {
		t.Errorf("JobsPanicked = %d, want 1", got)
	}
}

// The acceptance scenario: a poisoned job returns ErrJobPanicked while
// concurrent jobs on the same pool complete correctly, no goroutine is
// leaked, and the pool then serves 100 subsequent jobs. Run with -race.
func TestPanickedJobDoesNotPoisonConcurrentJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(8)

	var wg sync.WaitGroup
	errs := make([]error, 6)
	for j := 0; j < 6; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			errs[j] = p.ForCtx(context.Background(), 20000, 64, func(_, lo, hi int) {
				if j == 0 && lo <= 10000 && 10000 < hi {
					panic("poisoned job")
				}
				for i := lo; i < hi; i++ {
					_ = i * i
				}
			})
		}(j)
	}
	wg.Wait()

	if !errors.Is(errs[0], ErrJobPanicked) {
		t.Fatalf("poisoned job error = %v, want ErrJobPanicked", errs[0])
	}
	for j := 1; j < 6; j++ {
		if errs[j] != nil {
			t.Errorf("concurrent job %d failed: %v", j, errs[j])
		}
	}

	// 100 subsequent jobs all run to completion.
	for i := 0; i < 100; i++ {
		var n atomic.Int64
		p.For(500, 16, func(_, lo, hi int) { n.Add(int64(hi - lo)) })
		if n.Load() != 500 {
			t.Fatalf("job %d after panic ran %d of 500", i, n.Load())
		}
	}

	p.Close()
	// The pool's helpers must be gone: no goroutine leak from the
	// panicked barrier. Allow scheduler noise.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines: %d before, %d after shutdown (leak?)", before, g)
	}
}

func TestNewPanicErrorPassthrough(t *testing.T) {
	orig := NewPanicError("x")
	if again := NewPanicError(orig); again != orig {
		t.Error("NewPanicError re-wrapped an existing *PanicError")
	}
}
