package parallel

import (
	"context"
	"testing"
)

// TestDefaultPoolRecreatedAfterShutdown is the supervised-default
// contract: shutting down the shared default pool must not degrade
// every later caller to inline serial execution — the next Default()
// hands out a fresh open pool of the same size.
func TestDefaultPoolRecreatedAfterShutdown(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)

	old := Default()
	if !old.Open() {
		t.Fatal("fresh default pool not open")
	}
	if err := old.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if old.Open() {
		t.Fatal("pool still open after Shutdown")
	}

	fresh := Default()
	if fresh == old {
		t.Fatal("Default() returned the terminated pool after Shutdown")
	}
	if !fresh.Open() {
		t.Fatal("recreated default pool not open")
	}
	if got := fresh.Workers(); got != 3 {
		t.Fatalf("recreated pool Workers() = %d, want the previous size 3", got)
	}
	// The recreated pool must actually admit and run jobs.
	exit, err := fresh.Enter()
	if err != nil {
		t.Fatalf("Enter on recreated pool: %v", err)
	}
	total := 0
	fresh.For(100, 10, func(_, lo, hi int) { _ = lo })
	fresh.RunRanges(100, 4, func(_, lo, hi int) { total += hi - lo })
	if total != 100 {
		t.Fatalf("RunRanges covered %d of 100 indices on recreated pool", total)
	}
	exit()
}

// TestJobsShedCounter: NoteShed feeds the JobsShed stat and stays
// distinct from the shutdown-rejection counter.
func TestJobsShedCounter(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.NoteShed()
	p.NoteShed()
	p.NoteRejected()
	st := p.Stats()
	if st.JobsShed != 2 {
		t.Fatalf("JobsShed = %d, want 2", st.JobsShed)
	}
	if st.JobsRejected != 1 {
		t.Fatalf("JobsRejected = %d, want 1", st.JobsRejected)
	}
}
