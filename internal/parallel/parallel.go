// Package parallel provides the small set of shared-memory parallelism
// primitives the peeling implementations need: a blocking parallel-for
// with grain control, an atomic bitset for claim/mark operations, and a
// sharded counter that avoids cache-line contention when many goroutines
// tally removals.
//
// The design mirrors what the paper's GPU implementation gets from CUDA:
// a flat iteration space chopped across hardware threads, atomic
// test-and-set to claim cells, and a cheap parallel reduction to decide
// whether a round made progress.
package parallel

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the degree of parallelism used by For: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// For executes fn over the index range [0, n) in parallel, handing each
// worker contiguous chunks of at least grain indices. fn must be safe to
// call concurrently on disjoint ranges. For blocks until all chunks are
// done. A grain <= 0 selects a default that gives each worker a few
// chunks for load balancing. If the range is small or only one worker is
// available, fn runs inline on the caller's goroutine.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := Workers()
	if grain <= 0 {
		grain = n/(workers*4) + 1
	}
	if workers == 1 || n <= grain {
		fn(0, n)
		return
	}
	// Chunks are claimed dynamically via an atomic cursor, which balances
	// load when per-index work varies (e.g. peeling frontiers).
	var cursor atomic.Int64
	var wg sync.WaitGroup
	nChunks := (n + grain - 1) / grain
	if workers > nChunks {
		workers = nChunks
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(cursor.Add(int64(grain))) - grain
				if start >= n {
					return
				}
				end := start + grain
				if end > n {
					end = n
				}
				fn(start, end)
			}
		}()
	}
	wg.Wait()
}

// Bitset is a fixed-size set of bits supporting atomic operations. It is
// used to claim edges (each edge must be peeled exactly once even when
// several endpoints peel simultaneously) and to mark removed vertices.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a bitset holding n bits, all zero.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Get reports whether bit i is set (non-atomic read; callers synchronize
// across rounds via the round barrier).
func (b *Bitset) Get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i non-atomically. Use only during single-threaded setup.
func (b *Bitset) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// AtomicGet reports whether bit i is set using an atomic load.
func (b *Bitset) AtomicGet(i int) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(1<<(uint(i)&63)) != 0
}

// AtomicSet sets bit i with a CAS loop, returning true if this call
// changed the bit from 0 to 1 (i.e. the caller "claimed" i) and false if
// it was already set. This is the exactly-once edge-removal primitive.
func (b *Bitset) AtomicSet(i int) bool {
	addr := &b.words[i>>6]
	mask := uint64(1) << (uint(i) & 63)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
	}
}

// Reset clears all bits (non-atomic; call between runs).
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits (non-atomic; call at a barrier).
func (b *Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Counter is a sharded counter: concurrent Add calls land on per-shard
// cache lines, and Sum folds them at a barrier.
type Counter struct {
	shards []paddedInt64
}

type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte // pad to a cache line to avoid false sharing
}

// NewCounter returns a counter with one shard per worker.
func NewCounter() *Counter {
	return &Counter{shards: make([]paddedInt64, Workers())}
}

// Add adds delta to the shard identified by worker w (callers pass any
// stable small integer, typically a worker index; it is reduced mod the
// shard count).
func (c *Counter) Add(w int, delta int64) {
	c.shards[w%len(c.shards)].v.Add(delta)
}

// Sum returns the total across shards.
func (c *Counter) Sum() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Reset zeroes all shards (non-atomic; call at a barrier).
func (c *Counter) Reset() {
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
}
