// Package parallel provides the shared-memory parallelism substrate the
// peeling implementations run on: a persistent worker pool (Pool) with a
// submit/barrier API and a worker-ID-carrying parallel-for, an atomic
// bitset for claim/mark operations, and a sharded counter that avoids
// cache-line contention when many workers tally removals.
//
// The round-synchronous peelers call a parallel-for twice per round, and
// below the threshold most rounds have tiny frontiers — so per-call
// goroutine spawns would dominate exactly the O(log log n) tail the
// paper analyzes. The Pool keeps its workers alive across rounds: a
// batch costs channel handoffs to already-running goroutines, the
// calling goroutine does a share of the work itself, and the worker IDs
// the pool hands out let callers keep per-worker buffers (frontier
// shards, counters) that are merged at the round barrier instead of
// guarded by a mutex. The design mirrors what the paper's GPU
// implementation gets from CUDA — a flat iteration space chopped across
// persistent hardware threads, atomic test-and-set to claim cells — and
// what CPU peeling systems (GBBS-style bucketing structures) get from
// per-worker buffers.
//
// The package-level For runs on a lazily created process-wide default
// pool (see Default and SetDefaultWorkers), so code that does not care
// about pool management still benefits from persistent workers.
package parallel

import (
	"math/bits"
	"runtime"
	"sync/atomic"
)

// Workers returns the default degree of parallelism: GOMAXPROCS. Pools
// created with NewPool(0) and the default pool use this size.
func Workers() int { return runtime.GOMAXPROCS(0) }

// For executes fn over the index range [0, n) in parallel on the shared
// default pool, handing workers contiguous chunks of at most grain
// indices. fn must be safe to call concurrently on disjoint ranges, and
// must not itself call For (or anything on the default pool): the pool's
// workers do not steal nested work, so reentrant submission can
// deadlock. For blocks until all chunks are done. A grain <= 0 selects a
// default that gives each worker a few chunks for load balancing.
// Callers that want per-worker sharding instead of atomics should use
// Pool.For, which passes the worker ID.
func For(n, grain int, fn func(lo, hi int)) {
	Default().For(n, grain, func(_, lo, hi int) { fn(lo, hi) })
}

// Bitset is a fixed-size set of bits supporting atomic operations. It is
// used to claim edges (each edge must be peeled exactly once even when
// several endpoints peel simultaneously) and to mark removed vertices.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a bitset holding n bits, all zero.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Get reports whether bit i is set (non-atomic read; callers synchronize
// across rounds via the round barrier).
func (b *Bitset) Get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i non-atomically. Use only during single-threaded setup.
func (b *Bitset) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// AtomicGet reports whether bit i is set using an atomic load.
func (b *Bitset) AtomicGet(i int) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(1<<(uint(i)&63)) != 0
}

// AtomicSet sets bit i with a CAS loop, returning true if this call
// changed the bit from 0 to 1 (i.e. the caller "claimed" i) and false if
// it was already set. This is the exactly-once edge-removal primitive.
func (b *Bitset) AtomicSet(i int) bool {
	addr := &b.words[i>>6]
	mask := uint64(1) << (uint(i) & 63)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
	}
}

// Reset clears all bits (non-atomic; call between runs).
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits (non-atomic; call at a barrier).
func (b *Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// XorUint64 XORs v into *p atomically with a CAS loop (sync/atomic has
// no XOR). It is the cell-update primitive shared by the IBLT insert and
// decode paths and the erasure encoder: XOR is commutative and
// associative, so concurrent updates to one cell serialize in any order.
func XorUint64(p *uint64, v uint64) {
	for {
		old := atomic.LoadUint64(p)
		if atomic.CompareAndSwapUint64(p, old, old^v) {
			return
		}
	}
}

// Counter is a sharded counter: concurrent Add calls land on per-shard
// cache lines, and Sum folds them at a barrier.
type Counter struct {
	shards []paddedInt64
}

type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte // pad to a cache line to avoid false sharing
}

// NewCounter returns a counter with one shard per default-pool worker.
// Pools of other sizes should use Pool.NewCounter so every worker ID
// gets its own shard.
func NewCounter() *Counter {
	return &Counter{shards: make([]paddedInt64, Workers())}
}

// Add adds delta to the shard identified by worker ID w, as reported by
// Pool.For. Worker IDs are dense in [0, workers), so distinct workers
// land on distinct shards (chunk offsets such as lo would alias: every
// multiple of the grain can collapse onto one shard). w is reduced mod
// the shard count as a safety net for mismatched pool sizes.
func (c *Counter) Add(w int, delta int64) {
	c.shards[w%len(c.shards)].v.Add(delta)
}

// Sum returns the total across shards.
func (c *Counter) Sum() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Reset zeroes all shards (non-atomic; call at a barrier).
func (c *Counter) Reset() {
	for i := range c.shards {
		c.shards[i].v.Store(0)
	}
}
