package parallel

import (
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// Pool is a fixed set of persistent worker goroutines that execute
// parallel-for batches without per-call goroutine spawns. The calling
// goroutine always participates as worker 0; a pool of W workers keeps
// W-1 helper goroutines parked on channel receives between batches, so
// dispatching a round costs at most W-1 channel sends instead of W-1
// goroutine creations plus a sync.WaitGroup handshake.
//
// Worker IDs are the pool's sharding primitive: within one For or Run
// call, chunks handed to worker w are executed by a single goroutine, so
// callers may index per-worker buffers with w and no atomics. IDs are
// always in [0, Workers()).
//
// A Pool may be shared: concurrent For/Run calls from different
// goroutines are safe, and batches that wake only a subset of the
// helpers are dispatched starting at a rotating offset, so simultaneous
// small jobs spread across distinct helpers instead of all queueing on
// the first few channels. The worker-ID contract extends to the
// concurrent case per *call*: within one For/Run, chunks with the same
// ID never run concurrently, but two concurrent calls both observe the
// full ID range (each submitter is its own worker 0), so per-worker
// state must be owned by the call (a "job"), never shared between
// concurrent calls. Group packages that pattern.
//
// The barrier is claim-based, which makes nested submission safe: a
// For/Run issued from inside a batch function dispatches normally, the
// submitting goroutine claims chunks itself, and the call returns when
// every chunk has completed — it never waits on a helper that has not
// started, so a busy (or mutually-waiting) helper set cannot deadlock a
// nested call; the submitter just does the work itself. For the same
// reason dispatch is non-blocking: a helper whose queue is full is
// skipped and its share of chunks falls to whoever is running.
//
// A pool shuts down through Shutdown (graceful drain) or Close. After
// termination every For/Run runs entirely on the calling goroutine —
// late submissions lose parallelism but never panic or deadlock.
type Pool struct {
	workers int
	// chans[i] feeds helper worker i+1; worker 0 is the submitting
	// goroutine. Capacity 1 lets a submitter hand off a batch without
	// waiting for a parked helper to wake.
	chans []chan batch
	// next is the rotating dispatch cursor: each submission claims a
	// window of helper channels starting here, so concurrent submitters
	// of partial batches (tail rounds, small jobs) fan out across the
	// helper set instead of hammering chans[0].
	next atomic.Uint32

	// state is the lifecycle: open → draining (admission closed, in-
	// flight jobs finishing) → terminated (helper channels closed).
	state atomic.Int32
	// jobs counts admitted jobs (Enter); the drained channel closes when
	// it reaches zero during draining.
	jobs        atomic.Int64
	drained     chan struct{}
	drainedOnce sync.Once
	// senders counts goroutines currently inside a channel-send window.
	// Senders increment it before loading state; terminate stores the
	// terminated state before polling it to zero — so once terminate
	// observes zero, no goroutine can reach the channels again, and
	// closing them cannot race a send.
	senders atomic.Int64

	// Backpressure / serving counters surfaced by Stats.
	busyHelpers  atomic.Int64
	jobsAdmitted atomic.Int64
	jobsRejected atomic.Int64
	jobsCanceled atomic.Int64
	jobsPanicked atomic.Int64
	jobsShed     atomic.Int64
}

type batch struct {
	fn func(w int)
}

// Lifecycle states; see Pool.state.
const (
	stateOpen int32 = iota
	stateDraining
	stateTerminated
)

// NewPool starts a pool of the given size; workers <= 0 selects
// Workers() (GOMAXPROCS). The helpers live until Shutdown/Close.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = Workers()
	}
	p := &Pool{
		workers: workers,
		chans:   make([]chan batch, workers-1),
		drained: make(chan struct{}),
	}
	for i := range p.chans {
		ch := make(chan batch, 1)
		p.chans[i] = ch
		w := i + 1
		go func() {
			for b := range ch {
				p.busyHelpers.Add(1)
				runBatch(b.fn, w)
				p.busyHelpers.Add(-1)
			}
		}()
	}
	return p
}

// runBatch executes one dispatched batch on a helper, recovering any
// panic that escapes it. Chunk panics are already recovered inside the
// claim loop (with their barrier counts honored), so a panic reaching
// here is a pool bug — but an unrecovered panic on a helper goroutine
// would kill the whole process, so the helper swallows it and survives
// for subsequent jobs. The affected barrier may then be missing
// completions; that failure stays confined to its own job.
func runBatch(fn func(w int), w int) {
	defer func() { _ = recover() }()
	fn(w)
}

// Workers returns the pool size (the number of distinct worker IDs).
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(w) exactly once for every worker ID in [0, Workers()),
// in parallel across the pool, returning when all have finished. IDs are
// claimed dynamically: the calling goroutine participates (and executes
// every ID itself if the helpers are busy — e.g. for a nested or
// post-shutdown call), so fn(w) for a given w runs on exactly one
// goroutine per call, which is the per-worker-state contract, but not
// necessarily on the same goroutine between calls.
func (p *Pool) Run(fn func(w int)) {
	if p.workers == 1 {
		fn(0)
		return
	}
	pe := p.forOn(nil, p.workers, 1, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			fn(w)
		}
	})
	if pe != nil {
		panic(pe)
	}
}

// For executes fn over [0, n) in chunks of at most grain indices, in
// parallel across the pool's workers. Chunks are claimed dynamically via
// an atomic cursor, which balances load when per-index work varies (e.g.
// peeling frontiers). fn receives the executing worker's ID alongside
// the chunk bounds; chunks with the same w never run concurrently, so fn
// may use w to index per-worker state without synchronization. A grain
// <= 0 selects a default giving each worker a few chunks. Small ranges
// (n <= grain) and 1-worker pools run inline on the caller's goroutine —
// still in chunks of at most grain — with w = 0. Nested calls (For from
// inside a batch function) and post-shutdown calls are safe: the claim
// barrier guarantees the submitter can always finish the range itself.
//
// A panic inside fn is recovered at the chunk boundary: the remaining
// chunks are skipped, the barrier completes normally (sibling workers
// and concurrent jobs are unaffected, and the pool's helpers stay
// healthy), and For re-raises the panic on the calling goroutine as a
// *PanicError carrying the original value and stack. Job boundaries
// (Group, the repro Runtime) convert that into ErrJobPanicked; use
// ForCtx to receive it as an error directly.
func (p *Pool) For(n, grain int, fn func(w, lo, hi int)) {
	if pe := p.forOn(nil, n, grain, fn); pe != nil {
		panic(pe)
	}
}

// forOn is the shared claim-based For implementation: when done is
// non-nil, workers stop executing chunks once it is closed (see ForCtx);
// remaining chunks are still claimed (cheap atomic fast-forward) so the
// completion barrier terminates. A panicking chunk is recovered and
// returned as the first *PanicError; the same fast-forward drains the
// rest of the range, so the barrier always completes.
func (p *Pool) forOn(done <-chan struct{}, n, grain int, fn func(w, lo, hi int)) *PanicError {
	if n <= 0 {
		return nil
	}
	if faultinject.Enabled {
		faultinject.Fire(faultinject.PoolBarrier, n)
	}
	if grain <= 0 {
		grain = n/(p.workers*4) + 1
	}
	if p.workers == 1 || n <= grain {
		return forSerial(done, n, grain, fn)
	}
	// Wake only as many helpers as there are chunks beyond the caller's
	// own: tail rounds with a handful of chunks shouldn't pay W sends.
	nChunks := (n + grain - 1) / grain
	helpers := p.workers - 1
	if helpers > nChunks-1 {
		helpers = nChunks - 1
	}
	// The barrier counts chunk completions, not helper handoffs: Wait
	// returns when every chunk has been claimed and finished, no matter
	// who ran it. A dispatched batch that no helper ever starts claims
	// nothing and owes nothing — which is exactly why nested submission
	// cannot deadlock: the submitter's own claim loop can always drain
	// the cursor, and it only ever waits for chunks that are actively
	// executing on some other worker.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nChunks)
	// First recovered panic of the barrier; once set, workers stop
	// executing chunks (the job is poisoned) but keep claiming them, so
	// wg still reaches zero and no waiter hangs.
	var panicked atomic.Pointer[PanicError]
	loop := func(w int) {
		canceled := false
		for {
			if done != nil && !canceled {
				select {
				case <-done:
					canceled = true
				default:
				}
			}
			start := int(cursor.Add(int64(grain))) - grain
			if start >= n {
				return
			}
			end := start + grain
			if end > n {
				end = n
			}
			if !canceled && panicked.Load() == nil {
				if pe := runChunk(w, start, end, fn); pe != nil {
					panicked.CompareAndSwap(nil, pe)
				}
			}
			wg.Done()
		}
	}
	p.dispatch(helpers, loop)
	loop(0)
	wg.Wait()
	return panicked.Load()
}

// runChunk executes one claimed chunk, converting a panic in fn into a
// *PanicError (capturing the panicking stack) instead of letting it
// unwind the worker — the chunk-boundary half of the pool's panic
// isolation. The claim loop still calls wg.Done for the chunk, so the
// barrier completes no matter which worker the panic landed on.
func runChunk(w, lo, hi int, fn func(w, lo, hi int)) (pe *PanicError) {
	defer func() {
		if v := recover(); v != nil {
			pe = NewPanicError(v)
		}
	}()
	if faultinject.Enabled {
		faultinject.Fire(faultinject.PoolChunk, lo)
	}
	fn(w, lo, hi)
	return nil
}

// dispatch offers the batch to up to `helpers` distinct helper channels,
// starting at the rotating offset. Sends are non-blocking: a helper with
// a full queue is skipped (its share of chunks falls to the claimants),
// so dispatch never stalls the submitter and never blocks inside a
// nested call. The senders counter fences the sends against Shutdown's
// channel close; after termination the batch is simply not dispatched.
func (p *Pool) dispatch(helpers int, fn func(w int)) {
	if helpers <= 0 {
		return
	}
	p.senders.Add(1)
	if p.state.Load() == stateTerminated {
		p.senders.Add(-1)
		return
	}
	b := batch{fn: fn}
	start := int((p.next.Add(uint32(helpers)) - uint32(helpers)) % uint32(len(p.chans)))
	for i := 0; i < helpers; i++ {
		select {
		case p.chans[(start+i)%len(p.chans)] <- b:
		default:
		}
	}
	p.senders.Add(-1)
}

// forSerial is the inline path: worker 0, chunks of at most grain, with
// the same chunk-boundary panic recovery as the parallel path so For
// behaves identically at every pool size.
func forSerial(done <-chan struct{}, n, grain int, fn func(w, lo, hi int)) *PanicError {
	for lo := 0; lo < n; lo += grain {
		if done != nil {
			select {
			case <-done:
				return nil
			default:
			}
		}
		hi := lo + grain
		if hi > n {
			hi = n
		}
		if pe := runChunk(0, lo, hi, fn); pe != nil {
			return pe
		}
	}
	return nil
}

// RunRanges splits [0, n) into pieces contiguous ranges of near-equal
// size and executes fn(i, lo, hi) exactly once per piece, i being the
// piece index. Pieces are claimed dynamically by the pool's workers, but
// the piece → range mapping is static — independent of scheduling — which
// is what deterministic partitioned algorithms (e.g. the stable parallel
// counting sort in internal/hypergraph) need: per-piece state keyed by i
// means "the i-th slice of the input" rather than "whatever chunks some
// worker happened to claim". pieces <= 0 selects Workers(); pieces whose
// range is empty (n < pieces) are still invoked with lo == hi. Within one
// call distinct pieces may run concurrently, so fn must only touch
// piece-local or disjoint state.
func (p *Pool) RunRanges(n, pieces int, fn func(i, lo, hi int)) {
	if pe := p.runRangesOn(nil, n, pieces, fn); pe != nil {
		panic(pe)
	}
}

// runRangesOn is the shared RunRanges implementation; done is the
// cancellation channel (see RunRangesCtx) and a panicking piece is
// recovered and returned like forOn's chunks.
func (p *Pool) runRangesOn(done <-chan struct{}, n, pieces int, fn func(i, lo, hi int)) *PanicError {
	if n <= 0 {
		return nil
	}
	if pieces <= 0 {
		pieces = p.workers
	}
	if pieces == 1 {
		return runChunk(0, 0, n, func(_, lo, hi int) { fn(0, lo, hi) })
	}
	return p.forOn(done, pieces, 1, func(_, plo, phi int) {
		for i := plo; i < phi; i++ {
			fn(i, i*n/pieces, (i+1)*n/pieces)
		}
	})
}

// NewCounter returns a sharded counter with one shard per pool worker,
// for use with the pool's worker IDs as shard keys.
func (p *Pool) NewCounter() *Counter {
	return &Counter{shards: make([]paddedInt64, p.workers)}
}

var (
	defaultPool   atomic.Pointer[Pool]
	defaultPoolMu sync.Mutex
)

// Default returns the shared process-wide pool backing the package-level
// For, creating it on first use with the default size (GOMAXPROCS).
//
// The default pool is supervised: if the current one has been shut down
// (some component called Shutdown/Close on it), Default replaces it with
// a fresh open pool of the same size on the next call, instead of
// handing out a terminated pool that degrades every caller to inline
// serial execution for the rest of the process. Callers that captured
// the old pool keep their (safe, serial) post-shutdown semantics; new
// callers get parallelism back.
func Default() *Pool {
	if p := defaultPool.Load(); p != nil && p.Open() {
		return p
	}
	defaultPoolMu.Lock()
	defer defaultPoolMu.Unlock()
	if p := defaultPool.Load(); p != nil && p.Open() {
		return p
	}
	workers := 0
	if old := defaultPool.Load(); old != nil {
		workers = old.workers // preserve a SetDefaultWorkers override
	}
	p := NewPool(workers)
	defaultPool.Store(p)
	return p
}

// Open reports whether the pool is accepting jobs — false once Shutdown
// or Close has begun. It is a point-in-time observation: a true result
// can be stale by the time the caller submits (Enter remains the
// authoritative gate).
func (p *Pool) Open() bool { return p.state.Load() == stateOpen }

// SetDefaultWorkers replaces the default pool with one of the given size
// (<= 0 restores the GOMAXPROCS default). It is a startup-time knob for
// CLIs; the previous pool is abandoned rather than closed so callers
// that already hold it keep working.
func SetDefaultWorkers(workers int) {
	defaultPoolMu.Lock()
	defer defaultPoolMu.Unlock()
	defaultPool.Store(NewPool(workers))
}
