package parallel

import (
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of persistent worker goroutines that execute
// parallel-for batches without per-call goroutine spawns. The calling
// goroutine always participates as worker 0; a pool of W workers keeps
// W-1 helper goroutines parked on channel receives between batches, so
// dispatching a round costs at most W-1 channel sends instead of W-1
// goroutine creations plus a sync.WaitGroup handshake.
//
// Worker IDs are the pool's sharding primitive: within one For or Run
// call, chunks handed to worker w are executed by a single goroutine, so
// callers may index per-worker buffers with w and no atomics. IDs are
// always in [0, Workers()).
//
// A Pool may be shared: concurrent For/Run calls from different
// goroutines are safe (batches queue per helper and run in submission
// order), and batches that wake only a subset of the helpers are
// dispatched starting at a rotating offset, so simultaneous small jobs
// spread across distinct helpers instead of all queueing on the first
// few channels. The worker-ID contract extends to the concurrent case
// per *call*: within one For/Run, chunks with the same ID never run
// concurrently, but two concurrent calls both observe the full ID range
// (each submitter is its own worker 0), so per-worker state must be
// owned by the call (a "job"), never shared between concurrent calls.
// Group packages that pattern.
//
// The batch function must not itself call For/Run on the same pool —
// workers do not steal nested work, so reentrant submission can
// deadlock. Close must not race with in-flight calls.
type Pool struct {
	workers int
	// chans[i] feeds helper worker i+1; worker 0 is the submitting
	// goroutine. Capacity 1 lets a submitter hand off every batch
	// without waiting for parked helpers to wake.
	chans []chan batch
	// next is the rotating dispatch cursor: each submission claims a
	// window of helper channels starting here, so concurrent submitters
	// of partial batches (tail rounds, small jobs) fan out across the
	// helper set instead of hammering chans[0].
	next atomic.Uint32
}

type batch struct {
	fn func(w int)
	wg *sync.WaitGroup
}

// NewPool starts a pool of the given size; workers <= 0 selects
// Workers() (GOMAXPROCS). The helpers live until Close.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = Workers()
	}
	p := &Pool{workers: workers, chans: make([]chan batch, workers-1)}
	for i := range p.chans {
		ch := make(chan batch, 1)
		p.chans[i] = ch
		w := i + 1
		go func() {
			for b := range ch {
				b.fn(w)
				b.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool size (the number of distinct worker IDs).
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(w) once per worker — the submit/barrier primitive For
// is built on. fn(0) runs on the calling goroutine; Run returns when
// every worker has finished.
func (p *Pool) Run(fn func(w int)) { p.run(p.workers-1, fn) }

// run dispatches fn to `helpers` distinct helper workers, runs fn(0)
// inline, and waits. The helper window starts at a rotating offset
// (atomically reserved per submission) so concurrent partial batches
// land on disjoint helpers when capacity allows; each helper still
// reports its own fixed worker ID.
func (p *Pool) run(helpers int, fn func(w int)) {
	if helpers <= 0 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(helpers)
	b := batch{fn: fn, wg: &wg}
	start := int((p.next.Add(uint32(helpers)) - uint32(helpers)) % uint32(len(p.chans)))
	for i := 0; i < helpers; i++ {
		p.chans[(start+i)%len(p.chans)] <- b
	}
	fn(0)
	wg.Wait()
}

// For executes fn over [0, n) in chunks of at most grain indices, in
// parallel across the pool's workers. Chunks are claimed dynamically via
// an atomic cursor, which balances load when per-index work varies (e.g.
// peeling frontiers). fn receives the executing worker's ID alongside
// the chunk bounds; chunks with the same w never run concurrently, so fn
// may use w to index per-worker state without synchronization. A grain
// <= 0 selects a default giving each worker a few chunks. Small ranges
// (n <= grain) and 1-worker pools run inline on the caller's goroutine —
// still in chunks of at most grain — with w = 0.
func (p *Pool) For(n, grain int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n/(p.workers*4) + 1
	}
	if p.workers == 1 || n <= grain {
		forSerial(n, grain, fn)
		return
	}
	// Wake only as many helpers as there are chunks beyond the caller's
	// own: tail rounds with a handful of chunks shouldn't pay W sends.
	nChunks := (n + grain - 1) / grain
	helpers := p.workers - 1
	if helpers > nChunks-1 {
		helpers = nChunks - 1
	}
	var cursor atomic.Int64
	p.run(helpers, func(w int) {
		for {
			start := int(cursor.Add(int64(grain))) - grain
			if start >= n {
				return
			}
			end := start + grain
			if end > n {
				end = n
			}
			fn(w, start, end)
		}
	})
}

// forSerial is the inline path: worker 0, chunks of at most grain.
func forSerial(n, grain int, fn func(w, lo, hi int)) {
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		fn(0, lo, hi)
	}
}

// RunRanges splits [0, n) into pieces contiguous ranges of near-equal
// size and executes fn(i, lo, hi) exactly once per piece, i being the
// piece index. Pieces are claimed dynamically by the pool's workers, but
// the piece → range mapping is static — independent of scheduling — which
// is what deterministic partitioned algorithms (e.g. the stable parallel
// counting sort in internal/hypergraph) need: per-piece state keyed by i
// means "the i-th slice of the input" rather than "whatever chunks some
// worker happened to claim". pieces <= 0 selects Workers(); pieces whose
// range is empty (n < pieces) are still invoked with lo == hi. Within one
// call distinct pieces may run concurrently, so fn must only touch
// piece-local or disjoint state.
func (p *Pool) RunRanges(n, pieces int, fn func(i, lo, hi int)) {
	if n <= 0 {
		return
	}
	if pieces <= 0 {
		pieces = p.workers
	}
	if pieces == 1 {
		fn(0, 0, n)
		return
	}
	p.For(pieces, 1, func(_, plo, phi int) {
		for i := plo; i < phi; i++ {
			fn(i, i*n/pieces, (i+1)*n/pieces)
		}
	})
}

// NewCounter returns a sharded counter with one shard per pool worker,
// for use with the pool's worker IDs as shard keys.
func (p *Pool) NewCounter() *Counter {
	return &Counter{shards: make([]paddedInt64, p.workers)}
}

// Close shuts down the helper goroutines. The pool must be idle; For and
// Run must not be called after Close.
func (p *Pool) Close() {
	for _, ch := range p.chans {
		close(ch)
	}
}

var (
	defaultPool   atomic.Pointer[Pool]
	defaultPoolMu sync.Mutex
)

// Default returns the shared process-wide pool backing the package-level
// For, creating it on first use with the default size (GOMAXPROCS).
func Default() *Pool {
	if p := defaultPool.Load(); p != nil {
		return p
	}
	defaultPoolMu.Lock()
	defer defaultPoolMu.Unlock()
	if p := defaultPool.Load(); p != nil {
		return p
	}
	p := NewPool(0)
	defaultPool.Store(p)
	return p
}

// SetDefaultWorkers replaces the default pool with one of the given size
// (<= 0 restores the GOMAXPROCS default). It is a startup-time knob for
// CLIs; the previous pool is abandoned rather than closed so callers
// that already hold it keep working.
func SetDefaultWorkers(workers int) {
	defaultPoolMu.Lock()
	defer defaultPoolMu.Unlock()
	defaultPool.Store(NewPool(workers))
}
