package branching

import (
	"math"
	"testing"

	"repro/internal/recurrence"
)

// The Monte Carlo tree simulation must agree with the closed-form
// recurrence: this closes the loop between the paper's model (this
// package), its analysis (internal/recurrence), and the hypergraph
// simulations (checked against the recurrence elsewhere).
func TestSurvivalMatchesRecurrence(t *testing.T) {
	const trials = 40000
	for _, cfg := range []struct {
		k, r   int
		c      float64
		rounds int
	}{
		{2, 4, 0.7, 1},
		{2, 4, 0.7, 3},
		{2, 4, 0.7, 6},
		{2, 4, 0.85, 4},
		{2, 3, 0.6, 5},
		{3, 3, 1.2, 4},
	} {
		p := Params{K: cfg.k, R: cfg.r, C: cfg.c}
		got := p.SurvivalProbability(cfg.rounds, trials, 99)
		want, err := recurrence.Params{K: cfg.k, R: cfg.r, C: cfg.c}.Lambda(cfg.rounds)
		if err != nil {
			t.Fatal(err)
		}
		se := math.Sqrt(want*(1-want)/trials) + 1e-9
		if math.Abs(got-want) > 6*se+0.003 {
			t.Errorf("k=%d r=%d c=%v t=%d: MC %.4f vs recurrence %.4f (se %.4f)",
				cfg.k, cfg.r, cfg.c, cfg.rounds, got, want, se)
		}
	}
}

func TestZeroRoundsAlwaysSurvives(t *testing.T) {
	p := Params{K: 2, R: 4, C: 0.7}
	if got := p.SurvivalProbability(0, 100, 1); got != 1 {
		t.Errorf("λ_0 = %v, want 1", got)
	}
}

func TestSurvivalMonotoneInRounds(t *testing.T) {
	p := Params{K: 2, R: 4, C: 0.7}
	prev := 1.0
	for rounds := 1; rounds <= 6; rounds++ {
		cur := p.SurvivalProbability(rounds, 8000, 7)
		if cur > prev+0.02 { // MC slack
			t.Errorf("survival increased with rounds: %v -> %v at t=%d", prev, cur, rounds)
		}
		prev = cur
	}
}

func TestSupercriticalStabilizes(t *testing.T) {
	// Above the threshold the survival probability converges to the core
	// fraction rather than 0.
	p := Params{K: 2, R: 4, C: 0.85}
	got := p.SurvivalProbability(8, 8000, 13)
	if got < 0.7 || got > 0.85 {
		t.Errorf("supercritical survival %.3f, want near core fraction 0.775", got)
	}
}

func TestDeterministicStreams(t *testing.T) {
	p := Params{K: 2, R: 4, C: 0.7}
	a := p.SurvivalProbability(4, 2000, 5)
	b := p.SurvivalProbability(4, 2000, 5)
	if a != b {
		t.Error("same-seed Monte Carlo runs differ")
	}
}

func BenchmarkSurvival6Rounds(b *testing.B) {
	p := Params{K: 2, R: 4, C: 0.7}
	for i := 0; i < b.N; i++ {
		p.SurvivalProbability(6, 100, uint64(i))
	}
}
