// Package branching simulates the idealized Poisson branching process of
// Section 3.1 of the paper directly — the tree model whose survival
// probabilities ρ_i and λ_i the recurrences compute in closed form.
//
// Simulating the tree independently of any hypergraph validates the
// paper's modeling step itself: the recurrence (checked against this
// simulator) and the hypergraph experiments (checked against the
// recurrence in Tables 2 and 6) together close the loop
//
//	tree model  ==  recurrence  ==  G^r_{n,cn} simulation.
//
// The simulator evaluates survival lazily: whether the root survives t
// rounds depends on child subtrees surviving t−1 rounds, so the tree is
// expanded only as deep as needed, and the expected work per trial is the
// paper's expected neighborhood size.
package branching

import (
	"repro/internal/rng"
)

// Params mirror the recurrence parameters: peel threshold K, edge arity
// R, density C (mean offspring edges per vertex is R·C).
type Params struct {
	K int
	R int
	C float64
}

// maxNodes bounds the per-trial tree expansion; trials exceeding it are
// counted as survivors (supercritical trees above the threshold would
// otherwise expand forever).
const maxNodes = 1 << 22

// survives reports whether a non-root vertex survives `rounds` rounds of
// peeling in the idealized tree: it needs at least K−1 surviving child
// edges, where a child edge survives iff all its R−1 child vertices
// survive rounds−1 rounds. budget caps total node expansions.
func (p Params) survives(rounds int, gen *rng.RNG, budget *int) bool {
	if rounds <= 0 {
		return true // ρ_0 = 1: everything survives zero rounds
	}
	*budget--
	if *budget <= 0 {
		return true // pessimistic: treat out-of-budget trees as survivors
	}
	need := p.K - 1
	edges := gen.Poisson(float64(p.R) * p.C)
	surviving := 0
	for e := 0; e < edges; e++ {
		// Early exit: can the remaining edges still reach `need`?
		if surviving+edges-e < need {
			return false
		}
		alive := true
		for v := 0; v < p.R-1; v++ {
			if !p.survives(rounds-1, gen, budget) {
				alive = false
				break
			}
		}
		if alive {
			surviving++
			if surviving >= need {
				return true
			}
		}
	}
	return surviving >= need
}

// RootSurvives reports whether the root vertex survives `rounds` rounds:
// the root needs K surviving child edges (λ rather than ρ). λ_0 = 1 by
// the paper's convention: nothing is peeled before round 1.
func (p Params) RootSurvives(rounds int, gen *rng.RNG) bool {
	if rounds <= 0 {
		return true
	}
	budget := maxNodes
	need := p.K
	edges := gen.Poisson(float64(p.R) * p.C)
	surviving := 0
	for e := 0; e < edges; e++ {
		if surviving+edges-e < need {
			return false
		}
		alive := true
		for v := 0; v < p.R-1; v++ {
			if !p.survives(rounds-1, gen, &budget) {
				alive = false
				break
			}
		}
		if alive {
			surviving++
			if surviving >= need {
				return true
			}
		}
	}
	return surviving >= need
}

// SurvivalProbability estimates λ_rounds by Monte Carlo over `trials`
// independent trees, using per-trial RNG streams derived from seed.
func (p Params) SurvivalProbability(rounds, trials int, seed uint64) float64 {
	alive := 0
	for i := 0; i < trials; i++ {
		if p.RootSurvives(rounds, rng.NewStream(seed, uint64(i))) {
			alive++
		}
	}
	return float64(alive) / float64(trials)
}
