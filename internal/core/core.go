// Package core implements the peeling processes analyzed in Jiang,
// Mitzenmacher, and Thaler, "Parallel Peeling Algorithms" (SPAA 2014):
//
//   - Sequential: the classic queue-driven greedy peel (linear time),
//     which also produces the peel order and edge orientation that the
//     downstream applications (IBLT, MPHF, XORSAT, cuckoo) consume.
//   - Parallel: the round-synchronous process of Sections 3-4 — every
//     round removes *all* vertices of degree < k simultaneously — run
//     across goroutines with atomic edge claiming.
//   - Subtables: the Appendix B variant used by the paper's GPU IBLT
//     implementation — each round consists of r subrounds, subround j
//     peeling only subtable j, which guarantees no item is peeled twice.
//
// All three leave exactly the same k-core (peeling is confluent); the
// tests verify this, and the parallel variants additionally report the
// per-round survivor counts that Tables 1, 2, 5, and 6 of the paper are
// built from.
package core

import (
	"fmt"

	"repro/internal/hypergraph"
)

// Deadline caps the number of rounds any peeler will run, as a guard
// against a malformed graph; the theory needs only O(log n) rounds even
// above the threshold, so the cap is never reached in practice.
const Deadline = 1 << 20

// NoVertex marks an edge that was never peeled (it sits in the k-core) in
// orientation arrays.
const NoVertex = ^uint32(0)

// Result describes the outcome of a peeling run.
type Result struct {
	// Rounds is the number of peeling rounds executed that removed at
	// least one vertex. For the subtable peeler this counts full rounds
	// (of r subrounds each); see Subrounds.
	Rounds int

	// Subrounds counts productive subrounds for the subtable peeler: the
	// index of the last subround that removed a vertex, counted across
	// rounds (r subrounds per round). Zero for the other peelers.
	Subrounds int

	// SurvivorHistory[t-1] is the number of alive vertices after round t,
	// for t = 1..Rounds. For the subtable peeler the history is per
	// subround instead (length Subrounds, padded to full rounds).
	SurvivorHistory []int

	// CoreVertices and CoreEdges are the size of the remaining k-core.
	CoreVertices int
	CoreEdges    int

	// VertexAlive[v] != 0 iff vertex v survived (is in the k-core).
	VertexAlive []uint8

	// EdgeAlive[e] != 0 iff edge e survived (is in the k-core).
	EdgeAlive []uint8
}

// Empty reports whether peeling reached the empty k-core — the success
// condition for all the data-structure applications.
func (r *Result) Empty() bool { return r.CoreVertices == 0 && r.CoreEdges == 0 }

// validateK panics if k is not a valid core order (k >= 1).
func validateK(k int) {
	if k < 1 {
		panic(fmt.Sprintf("core: k = %d must be >= 1", k))
	}
}

// coreState is the shared mutable state of a peeling run.
type coreState struct {
	g     *hypergraph.Hypergraph
	k     int32
	deg   []int32
	vdead []uint8
	edead []uint8
}

func newCoreState(g *hypergraph.Hypergraph, k int) *coreState {
	validateK(k)
	return &coreState{
		g:     g,
		k:     int32(k),
		deg:   g.Degrees(),
		vdead: make([]uint8, g.N),
		edead: make([]uint8, g.M),
	}
}

// finish counts the residual core and packages a Result.
func (s *coreState) finish(res *Result) *Result {
	coreV, coreE := 0, 0
	alive := make([]uint8, s.g.N)
	ealive := make([]uint8, s.g.M)
	for v := range s.vdead {
		if s.vdead[v] == 0 {
			alive[v] = 1
			coreV++
		}
	}
	for e := range s.edead {
		if s.edead[e] == 0 {
			ealive[e] = 1
			coreE++
		}
	}
	res.CoreVertices = coreV
	res.CoreEdges = coreE
	res.VertexAlive = alive
	res.EdgeAlive = ealive
	return res
}

// SeqResult extends Result with the artifacts only sequential peeling can
// produce cheaply: the order vertices were peeled and, for each peeled
// edge, the vertex whose low degree released it. The applications use the
// orientation: for k = 2 every vertex releases at most one edge, so the
// orientation is an injective edge -> vertex assignment (the basis of the
// MPHF construction and peeling-based cuckoo placement).
type SeqResult struct {
	Result

	// PeelOrder lists peeled edges in removal order.
	PeelOrder []uint32

	// FreeVertex[e] is the vertex that released edge e (NoVertex if e is
	// in the core). Each vertex appears at most k-1 times.
	FreeVertex []uint32
}

// Sequential peels g to its k-core with the classic queue algorithm and
// returns the core together with the peel order and orientation. Runtime
// is O(n + m·r).
func Sequential(g *hypergraph.Hypergraph, k int) *SeqResult {
	s := newCoreState(g, k)
	res := &SeqResult{
		PeelOrder:  make([]uint32, 0, g.M),
		FreeVertex: make([]uint32, g.M),
	}
	for e := range res.FreeVertex {
		res.FreeVertex[e] = NoVertex
	}

	queue := make([]uint32, 0, g.N)
	for v := 0; v < g.N; v++ {
		if s.deg[v] < s.k {
			queue = append(queue, uint32(v))
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if s.vdead[v] != 0 {
			continue
		}
		s.vdead[v] = 1
		for _, e := range g.VertexEdges(int(v)) {
			if s.edead[e] != 0 {
				continue
			}
			s.edead[e] = 1
			res.FreeVertex[e] = v
			res.PeelOrder = append(res.PeelOrder, e)
			for _, u := range g.EdgeVertices(int(e)) {
				if u == v || s.vdead[u] != 0 {
					continue
				}
				s.deg[u]--
				if s.deg[u] < s.k {
					queue = append(queue, u)
				}
			}
		}
	}
	// Sequential peeling has no round structure; round counts come from
	// the Parallel and Subtables peelers. Rounds stays 0 here.
	s.finish(&res.Result)
	return res
}

// CoreDegreesValid checks the defining property of the k-core on a
// result: every surviving vertex has at least k surviving incident edges,
// and every surviving edge has only surviving endpoints. Used by tests
// and available for callers that want a postcondition check.
func CoreDegreesValid(g *hypergraph.Hypergraph, res *Result, k int) error {
	for v := 0; v < g.N; v++ {
		if res.VertexAlive[v] == 0 {
			continue
		}
		d := 0
		for _, e := range g.VertexEdges(v) {
			if res.EdgeAlive[e] != 0 {
				d++
			}
		}
		if d < k {
			return fmt.Errorf("core: surviving vertex %d has degree %d < k=%d", v, d, k)
		}
	}
	for e := 0; e < g.M; e++ {
		if res.EdgeAlive[e] == 0 {
			continue
		}
		for _, u := range g.EdgeVertices(e) {
			if res.VertexAlive[u] == 0 {
				return fmt.Errorf("core: surviving edge %d has dead endpoint %d", e, u)
			}
		}
	}
	return nil
}
