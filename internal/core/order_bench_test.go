package core

import (
	"fmt"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// BenchmarkOrderedPeel compares the three sources of a peel on the same
// below-threshold instance: the sequential queue peel (the only source
// of PeelOrder/FreeVertex before the ordered peel existed), the plain
// round-synchronous Parallel peel (no ordering artifacts), and
// ParallelOrder at several pool sizes — the number the builders' retry
// loops now pay per attempt.
func BenchmarkOrderedPeel(b *testing.B) {
	g := hypergraph.Uniform(1<<19, 390000, 3, rng.New(1)) // c ≈ 0.74 < c*(2,3)
	b.Run("Sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := Sequential(g, 2); !res.Empty() {
				b.Fatal("peel failed")
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		pool := parallel.NewPool(workers)
		opts := Options{Pool: pool}
		b.Run(fmt.Sprintf("Parallel/W=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := Parallel(g, 2, opts); !res.Empty() {
					b.Fatal("peel failed")
				}
			}
		})
		b.Run(fmt.Sprintf("Ordered/W=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := ParallelOrder(g, 2, opts); !res.Empty() {
					b.Fatal("peel failed")
				}
			}
		})
		pool.Close()
	}
}

// BenchmarkPhaseAFilter isolates the round-loop's Phase A — filtering
// the frontier into the peel set — in its serial pre-refactor form
// against the sharded parallel form roundLoop.collect now uses. The
// small size models the O(log log n) tail rounds: at n ≤ grain the
// pooled filter runs inline on the submitter, so the tail pays no
// dispatch and must show no regression.
func BenchmarkPhaseAFilter(b *testing.B) {
	workers := parallel.Workers()
	if workers < 2 {
		workers = 4
	}
	p := parallel.NewPool(workers)
	defer p.Close()
	const grain = 2048
	for _, n := range []int{256, 1 << 16} {
		frontier := make([]uint32, n)
		deg := make([]int32, n)
		for i := range frontier {
			frontier[i] = uint32(i)
			deg[i] = int32(i % 3) // ~1/3 below k, like a peel round
		}
		b.Run(fmt.Sprintf("Serial/n=%d", n), func(b *testing.B) {
			vdead := make([]uint8, n)
			peelSet := make([]uint32, 0, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clear(vdead)
				peelSet = peelSet[:0]
				for _, v := range frontier {
					if vdead[v] == 0 && deg[v] < 1 {
						vdead[v] = 1
						peelSet = append(peelSet, v)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("Sharded/n=%d", n), func(b *testing.B) {
			vdead := make([]uint8, n)
			shards := make([][]uint32, p.Workers())
			peelSet := make([]uint32, 0, n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clear(vdead)
				peelSet = peelSet[:0]
				p.For(len(frontier), grain, func(w, lo, hi int) {
					local := shards[w]
					for j := lo; j < hi; j++ {
						v := frontier[j]
						if vdead[v] == 0 && deg[v] < 1 {
							vdead[v] = 1
							local = append(local, v)
						}
					}
					shards[w] = local
				})
				peelSet = drain(peelSet, shards)
			}
		})
	}
}
