package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hypergraph"
	"repro/internal/rng"
)

// barrierCtx is a context.Context that reports cancellation starting at
// its nth Err() call. The peelers check ctx exactly once per round (or
// subround) barrier, so the call count is a deterministic, scheduling-
// independent measure of how many barriers a peel crossed — which lets
// the tests assert "a canceled peel does less than one round of extra
// work" structurally instead of by timing.
type barrierCtx struct {
	calls       atomic.Int64
	cancelAfter int64
}

func (c *barrierCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *barrierCtx) Done() <-chan struct{}       { return nil }
func (c *barrierCtx) Value(any) any               { return nil }
func (c *barrierCtx) Err() error {
	if c.calls.Add(1) > c.cancelAfter {
		return context.Canceled
	}
	return nil
}

// TestPeelAbortsWithinOneRound is the acceptance test for prompt
// cancellation: on a 2^22-vertex instance, a context that cancels after
// a few rounds stops the peel at the very next barrier — zero further
// Err() calls, hence zero further rounds of work.
func TestPeelAbortsWithinOneRound(t *testing.T) {
	if testing.Short() {
		t.Skip("2^22-vertex instance; skipped in -short")
	}
	if raceEnabled {
		t.Skip("2^22-vertex instance too slow under the race detector; cancellation races are covered by TestSubtablesCtxCancel and the parallel-package tests")
	}
	n := 1 << 22
	m := n * 7 / 10
	g := hypergraph.Uniform(n, m, 3, rng.New(42))

	// Reference run: count the barriers of an uncanceled peel.
	full := &barrierCtx{cancelAfter: 1 << 30}
	res, err := ParallelCtx(full, g, 2, Options{})
	if err != nil || !res.Empty() {
		t.Fatalf("reference peel: err=%v empty=%v", err, err == nil && res.Empty())
	}
	totalBarriers := full.calls.Load()
	if totalBarriers < 5 {
		t.Fatalf("reference peel crossed only %d barriers; instance too easy for the test", totalBarriers)
	}

	// Canceled run: cancel after 3 barriers; the peel must return at the
	// 4th check (the first canceled one) without crossing another.
	const allow = 3
	cc := &barrierCtx{cancelAfter: allow}
	cres, err := ParallelCtx(cc, g, 2, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled peel: err = %v, want Canceled", err)
	}
	if cres != nil {
		t.Fatal("canceled peel returned a result")
	}
	if got := cc.calls.Load(); got != allow+1 {
		t.Fatalf("peel crossed %d barriers after cancellation (total Err() calls %d, want %d): more than one round of extra work",
			got-(allow+1), got, allow+1)
	}
}

// TestSubtablesCtxCancel exercises the subround-barrier checks of both
// subtable peelers.
func TestSubtablesCtxCancel(t *testing.T) {
	g := hypergraph.Partitioned(3*40000, 80000, 3, rng.New(7))
	for _, tc := range []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"Subtables", func(ctx context.Context) error {
			_, err := SubtablesCtx(ctx, g, 2, Options{})
			return err
		}},
		{"SubtablesOriented", func(ctx context.Context) error {
			_, _, err := SubtablesOrientedCtx(ctx, g, 2, Options{})
			return err
		}},
	} {
		// Uncanceled: matches the ctx-free entry point.
		if err := tc.run(context.Background()); err != nil {
			t.Fatalf("%s(Background): %v", tc.name, err)
		}
		// Canceled after 2 subround barriers: stops at the 3rd check.
		cc := &barrierCtx{cancelAfter: 2}
		if err := tc.run(cc); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s(canceled): err = %v, want Canceled", tc.name, err)
		}
		if got := cc.calls.Load(); got != 3 {
			t.Fatalf("%s: %d Err() calls after cancellation, want exactly 3", tc.name, got)
		}
	}
}

// TestParallelOrderCtxCancel exercises the round-barrier checks of the
// ordered peel: a context canceled after N barriers stops the peel at
// the very next check, with zero further rounds of work.
func TestParallelOrderCtxCancel(t *testing.T) {
	g := hypergraph.Uniform(120000, 84000, 3, rng.New(8))
	// Uncanceled: matches the ctx-free entry point and counts barriers.
	full := &barrierCtx{cancelAfter: 1 << 30}
	res, err := ParallelOrderCtx(full, g, 2, Options{})
	if err != nil || !res.Empty() {
		t.Fatalf("reference ordered peel: err=%v", err)
	}
	if full.calls.Load() < 5 {
		t.Fatalf("reference crossed only %d barriers; instance too easy", full.calls.Load())
	}
	cc := &barrierCtx{cancelAfter: 3}
	cres, err := ParallelOrderCtx(cc, g, 2, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ordered peel: err = %v, want Canceled", err)
	}
	if cres != nil {
		t.Fatal("canceled ordered peel returned a result")
	}
	if got := cc.calls.Load(); got != 4 {
		t.Fatalf("%d Err() calls after cancellation, want exactly 4", got)
	}
}

// TestParallelCtxMatchesParallel checks the ctx path is a pure wrapper:
// same rounds, history, and core as the ctx-free peeler.
func TestParallelCtxMatchesParallel(t *testing.T) {
	g := hypergraph.Uniform(60000, 42000, 3, rng.New(11))
	want := Parallel(g, 2, Options{})
	got, err := ParallelCtx(context.Background(), g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || got.CoreVertices != want.CoreVertices || got.CoreEdges != want.CoreEdges {
		t.Fatalf("ParallelCtx diverged: got rounds=%d core=(%d,%d), want rounds=%d core=(%d,%d)",
			got.Rounds, got.CoreVertices, got.CoreEdges, want.Rounds, want.CoreVertices, want.CoreEdges)
	}
}
