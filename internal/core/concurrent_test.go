package core

import (
	"fmt"
	"testing"

	"repro/internal/parallel"
)

// TestConcurrentPeelsSharedPool is the multi-tenant peeling contract: N
// concurrent jobs run full peels (Parallel on both scan policies, plus
// Subtables) on ONE shared pool, and every job must produce exactly the
// single-tenant result for its graph — same rounds, same survivor
// history, same core. Under -race this validates that the per-run round
// buffers (per-worker shards indexed by pool worker IDs) stay private to
// each run even though concurrent runs all observe the full ID range.
func TestConcurrentPeelsSharedPool(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()

	const jobs = 6
	type want struct {
		parF, parS, sub *Result
	}
	ugraphs := make([]*want, jobs)
	for j := 0; j < jobs; j++ {
		g := uniformGraph(12000+500*j, 8400+350*j, 4, uint64(40+j))
		pg := partitionedGraph(8000+400*j, 5600+280*j, 4, uint64(60+j))
		ugraphs[j] = &want{
			parF: Parallel(g, 2, Options{Scan: Frontier}),
			parS: Parallel(g, 2, Options{Scan: FullScan}),
			sub:  Subtables(pg, 2, Options{}),
		}
	}

	group := pool.NewGroup(0)
	for j := 0; j < jobs; j++ {
		group.Go(func(p *parallel.Pool) error {
			g := uniformGraph(12000+500*j, 8400+350*j, 4, uint64(40+j))
			pg := partitionedGraph(8000+400*j, 5600+280*j, 4, uint64(60+j))
			opts := Options{Pool: p}
			checks := []struct {
				name string
				got  *Result
				want *Result
			}{
				{"Parallel/Frontier", Parallel(g, 2, Options{Scan: Frontier, Pool: p}), ugraphs[j].parF},
				{"Parallel/FullScan", Parallel(g, 2, Options{Scan: FullScan, Pool: p}), ugraphs[j].parS},
				{"Subtables", Subtables(pg, 2, opts), ugraphs[j].sub},
			}
			for _, c := range checks {
				if c.got.Rounds != c.want.Rounds || c.got.Subrounds != c.want.Subrounds {
					return fmt.Errorf("job %d %s: rounds/subrounds (%d,%d) != (%d,%d)",
						j, c.name, c.got.Rounds, c.got.Subrounds, c.want.Rounds, c.want.Subrounds)
				}
				if c.got.CoreVertices != c.want.CoreVertices || c.got.CoreEdges != c.want.CoreEdges {
					return fmt.Errorf("job %d %s: core (%d,%d) != (%d,%d)",
						j, c.name, c.got.CoreVertices, c.got.CoreEdges, c.want.CoreVertices, c.want.CoreEdges)
				}
				if len(c.got.SurvivorHistory) != len(c.want.SurvivorHistory) {
					return fmt.Errorf("job %d %s: history length %d != %d",
						j, c.name, len(c.got.SurvivorHistory), len(c.want.SurvivorHistory))
				}
				for i := range c.got.SurvivorHistory {
					if c.got.SurvivorHistory[i] != c.want.SurvivorHistory[i] {
						return fmt.Errorf("job %d %s: survivors[%d] %d != %d",
							j, c.name, i, c.got.SurvivorHistory[i], c.want.SurvivorHistory[i])
					}
				}
			}
			return nil
		})
	}
	if err := group.Wait(); err != nil {
		t.Fatal(err)
	}
}
