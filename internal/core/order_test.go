package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// TestParallelOrderMatchesParallel checks the ordered peel computes the
// same peeling process as Parallel — identical rounds, survivor history,
// and k-core — and the same peeled edge set as Sequential (peeling is
// confluent), on below- and above-threshold instances.
func TestParallelOrderMatchesParallel(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *hypergraph.Hypergraph
		k    int
	}{
		{"below-threshold", hypergraph.Uniform(60000, 42000, 3, rng.New(11)), 2},
		{"above-threshold", hypergraph.Uniform(40000, 36000, 3, rng.New(12)), 2},
		{"k3", hypergraph.Uniform(30000, 36000, 4, rng.New(13)), 3},
		{"partitioned", hypergraph.Partitioned(3*20000, 44000, 3, rng.New(14)), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := Parallel(tc.g, tc.k, Options{})
			ord := ParallelOrder(tc.g, tc.k, Options{})
			if ord.Rounds != want.Rounds || ord.CoreVertices != want.CoreVertices || ord.CoreEdges != want.CoreEdges {
				t.Fatalf("ordered peel diverged: got rounds=%d core=(%d,%d), want rounds=%d core=(%d,%d)",
					ord.Rounds, ord.CoreVertices, ord.CoreEdges, want.Rounds, want.CoreVertices, want.CoreEdges)
			}
			if !reflect.DeepEqual(ord.SurvivorHistory, want.SurvivorHistory) {
				t.Fatal("survivor history diverged from Parallel")
			}
			seq := Sequential(tc.g, tc.k)
			if !reflect.DeepEqual(ord.EdgeAlive, seq.EdgeAlive) || !reflect.DeepEqual(ord.VertexAlive, seq.VertexAlive) {
				t.Fatal("ordered peel removed a different set than Sequential (confluence violated)")
			}
			if err := CoreDegreesValid(tc.g, &ord.Result, tc.k); err != nil {
				t.Fatal(err)
			}
			if len(ord.PeelOrder)+ord.CoreEdges != tc.g.M {
				t.Fatalf("PeelOrder has %d edges + %d core != m=%d", len(ord.PeelOrder), ord.CoreEdges, tc.g.M)
			}
		})
	}
}

// TestParallelOrderDeterministic is the bit-stability contract: the
// ordered peel returns identical PeelOrder, FreeVertex, RoundOf, and
// RoundStart at every worker count (1/3/8) and across repeated runs at
// the same count — scheduling and shard-drain order must not leak into
// the result.
func TestParallelOrderDeterministic(t *testing.T) {
	g := hypergraph.Uniform(80000, 60000, 3, rng.New(21))
	ref := ParallelOrder(g, 2, Options{})
	if !ref.Empty() {
		t.Fatal("instance unexpectedly above threshold")
	}
	check := func(name string, got *OrderedResult) {
		t.Helper()
		if !reflect.DeepEqual(got.PeelOrder, ref.PeelOrder) {
			t.Fatalf("%s: PeelOrder diverged", name)
		}
		if !reflect.DeepEqual(got.FreeVertex, ref.FreeVertex) {
			t.Fatalf("%s: FreeVertex diverged", name)
		}
		if !reflect.DeepEqual(got.RoundOf, ref.RoundOf) {
			t.Fatalf("%s: RoundOf diverged", name)
		}
		if !reflect.DeepEqual(got.RoundStart, ref.RoundStart) {
			t.Fatalf("%s: RoundStart diverged", name)
		}
	}
	for _, workers := range []int{1, 3, 8} {
		pool := parallel.NewPool(workers)
		check("workers=1st", ParallelOrder(g, 2, Options{Pool: pool}))
		check("workers=2nd", ParallelOrder(g, 2, Options{Pool: pool}))
		pool.Close()
	}
	// FullScan must agree with Frontier: the scan policy selects how
	// Phase A finds candidates, not what the process removes.
	check("fullscan", ParallelOrder(g, 2, Options{Scan: FullScan}))
}

// TestParallelOrderEliminationProperty is the property test: reverse
// round-major order is a valid elimination order at k = 2 — structural
// consistency plus the guarantee that a peeled edge's non-free
// endpoints finalize in strictly later rounds — across random sizes,
// densities, seeds, and both scan policies.
func TestParallelOrderEliminationProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16, fullScan bool) bool {
		n := int(nRaw%5000) + 10
		m := int(mRaw) % (n + n/2)
		g := hypergraph.Uniform(n, m, 3, rng.New(seed))
		opts := Options{}
		if fullScan {
			opts.Scan = FullScan
		}
		ord := ParallelOrder(g, 2, opts)
		if err := ValidateEliminationOrder(g, ord, 2); err != nil {
			t.Logf("n=%d m=%d seed=%d: %v", n, m, seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Error(err)
	}
}

// TestParallelOrderEdgeCases covers empty graphs, edgeless graphs, and
// fully-core graphs.
func TestParallelOrderEdgeCases(t *testing.T) {
	// No edges: the isolated vertices peel in one round (matching
	// Parallel), releasing nothing.
	g := hypergraph.FromEdges(10, 2, nil, 0)
	ord := ParallelOrder(g, 2, Options{})
	if !ord.Empty() || len(ord.PeelOrder) != 0 || ord.Rounds != 1 || len(ord.RoundStart) != 2 {
		t.Fatalf("edgeless graph: rounds=%d order=%d start=%v", ord.Rounds, len(ord.PeelOrder), ord.RoundStart)
	}
	// A 3-edge triangle-like system where every vertex has degree 2:
	// nothing peels at k=2, everything is core.
	edges := []uint32{0, 1, 1, 2, 2, 0}
	g = hypergraph.FromEdges(3, 2, edges, 0)
	ord = ParallelOrder(g, 2, Options{})
	if ord.Rounds != 0 || ord.CoreEdges != 3 || len(ord.PeelOrder) != 0 {
		t.Fatalf("full-core graph peeled: rounds=%d core=%d", ord.Rounds, ord.CoreEdges)
	}
	for e := range ord.FreeVertex {
		if ord.FreeVertex[e] != NoVertex || ord.RoundOf[e] != 0 {
			t.Fatal("core edge carries an orientation")
		}
	}
	if err := ValidateEliminationOrder(g, ord, 2); err != nil {
		t.Fatal(err)
	}
}

// TestParallelOrderMinClaim pins the deterministic tie-break: when two
// endpoints of an edge peel in the same round, the minimum vertex id
// frees the edge. A single degree-1–degree-1 edge makes both endpoints
// round-1 candidates.
func TestParallelOrderMinClaim(t *testing.T) {
	g := hypergraph.FromEdges(5, 2, []uint32{4, 2}, 0)
	ord := ParallelOrder(g, 2, Options{})
	if !ord.Empty() || len(ord.PeelOrder) != 1 {
		t.Fatalf("single edge did not peel: %+v", ord.Result)
	}
	if ord.FreeVertex[0] != 2 {
		t.Fatalf("FreeVertex = %d, want the minimum endpoint 2", ord.FreeVertex[0])
	}
	if ord.RoundOf[0] != 1 {
		t.Fatalf("RoundOf = %d, want 1", ord.RoundOf[0])
	}
}
