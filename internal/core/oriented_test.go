package core

import (
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/rng"
)

func TestSubtablesOrientedMatchesSubtables(t *testing.T) {
	g := partitionedGraph(60000, 42000, 4, 80)
	plain := Subtables(g, 2, Options{})
	res, orient := SubtablesOriented(g, 2, Options{})
	if res.Subrounds != plain.Subrounds || res.Rounds != plain.Rounds ||
		res.CoreVertices != plain.CoreVertices {
		t.Errorf("oriented run differs: subrounds %d/%d cores %d/%d",
			res.Subrounds, plain.Subrounds, res.CoreVertices, plain.CoreVertices)
	}
	for i := range plain.SurvivorHistory {
		if res.SurvivorHistory[i] != plain.SurvivorHistory[i] {
			t.Fatalf("subround %d: histories differ", i+1)
		}
	}
	if !ValidateOrientation(g, orient, 2) {
		t.Fatal("orientation invalid")
	}
	// Every peeled edge oriented; layer sizes sum to m when core empty.
	if !res.Empty() {
		t.Fatal("instance did not peel")
	}
	total := 0
	for _, layer := range orient.Layers {
		total += len(layer)
	}
	if total != g.M {
		t.Errorf("layers cover %d of %d edges", total, g.M)
	}
}

func TestSubtablesOrientedDeterministicOrientation(t *testing.T) {
	// The free-vertex map must be identical across runs (claims are
	// contention-free by construction); only intra-layer order may vary.
	g := partitionedGraph(30000, 21000, 4, 81)
	_, a := SubtablesOriented(g, 2, Options{})
	_, b := SubtablesOriented(g, 2, Options{})
	for e := 0; e < g.M; e++ {
		if a.FreeVertex[e] != b.FreeVertex[e] {
			t.Fatalf("edge %d oriented differently across runs", e)
		}
	}
	if len(a.Layers) != len(b.Layers) {
		t.Fatalf("layer counts differ: %d vs %d", len(a.Layers), len(b.Layers))
	}
	for i := range a.Layers {
		if len(a.Layers[i]) != len(b.Layers[i]) {
			t.Fatalf("layer %d sizes differ", i)
		}
	}
}

func TestSubtablesOrientedAboveThreshold(t *testing.T) {
	g := partitionedGraph(30000, 25500, 4, 82) // c = 0.85
	res, orient := SubtablesOriented(g, 2, Options{})
	if res.Empty() {
		t.Fatal("above-threshold instance peeled to empty")
	}
	if !ValidateOrientation(g, orient, 2) {
		t.Fatal("partial orientation invalid")
	}
	// Core edges stay unoriented.
	for e := 0; e < g.M; e++ {
		oriented := orient.FreeVertex[e] != NoVertex
		if oriented == (res.EdgeAlive[e] != 0) {
			t.Fatalf("edge %d: oriented=%v but alive=%v", e, oriented, res.EdgeAlive[e] != 0)
		}
	}
}

func TestSubtablesOrientedQuick(t *testing.T) {
	f := func(seed uint64, mRaw uint16, kRaw uint8) bool {
		n := 300
		m := int(mRaw % 350)
		k := int(kRaw%3) + 2
		g := hypergraph.Partitioned(n, m, 3, rng.New(seed))
		res, orient := SubtablesOriented(g, k, Options{})
		if !ValidateOrientation(g, orient, k) {
			return false
		}
		seq := Sequential(g, k)
		return res.CoreVertices == seq.CoreVertices && res.CoreEdges == seq.CoreEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSubtablesOriented(b *testing.B) {
	g := partitionedGraph(1<<18, 180000, 4, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SubtablesOriented(g, 2, Options{})
	}
}
