package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/recurrence"
	"repro/internal/rng"
)

func partitionedGraph(n, m, r int, seed uint64) *hypergraph.Hypergraph {
	return hypergraph.Partitioned(n, m, r, rng.New(seed))
}

func TestSubtablesMatchesSequentialCore(t *testing.T) {
	for _, cfg := range []struct {
		n, m, r, k int
		seed       uint64
	}{
		{20000, 14000, 4, 2, 40},
		{20000, 17000, 4, 2, 41},
		{21000, 27000, 3, 3, 42},
	} {
		g := partitionedGraph(cfg.n, cfg.m, cfg.r, cfg.seed)
		seq := Sequential(g, cfg.k)
		sub := Subtables(g, cfg.k, Options{})
		if sub.CoreVertices != seq.CoreVertices || sub.CoreEdges != seq.CoreEdges {
			t.Errorf("cfg %+v: subtable core (%d,%d) != sequential (%d,%d)",
				cfg, sub.CoreVertices, sub.CoreEdges, seq.CoreVertices, seq.CoreEdges)
		}
		for v := 0; v < g.N; v++ {
			if sub.VertexAlive[v] != seq.VertexAlive[v] {
				t.Fatalf("cfg %+v: vertex %d mismatch", cfg, v)
			}
		}
		if err := CoreDegreesValid(g, sub, cfg.k); err != nil {
			t.Errorf("cfg %+v: %v", cfg, err)
		}
	}
}

func TestSubtablesRequiresPartitioned(t *testing.T) {
	g := hypergraph.Uniform(1000, 700, 4, rng.New(43))
	defer func() {
		if recover() == nil {
			t.Error("Subtables on unpartitioned graph did not panic")
		}
	}()
	Subtables(g, 2, Options{})
}

func TestSubroundsMatchTable5(t *testing.T) {
	// Table 5: r=4, k=2, c=0.7 needs ~26.5 subrounds at n=160k (and the
	// count is well below r × the ~13 plain rounds).
	n := 160000
	g := partitionedGraph(n, int(0.7*float64(n)), 4, 44)
	res := Subtables(g, 2, Options{})
	if !res.Empty() {
		t.Fatal("subtable peeling failed below threshold")
	}
	if res.Subrounds < 24 || res.Subrounds > 29 {
		t.Errorf("subrounds = %d, want ~26-27 (Table 5)", res.Subrounds)
	}
	plain := Parallel(g, 2, Options{})
	if float64(res.Subrounds) >= 4*float64(plain.Rounds) {
		t.Errorf("subrounds %d not below r×rounds = %d", res.Subrounds, 4*plain.Rounds)
	}
}

func TestSubtableSurvivorsMatchRecurrence(t *testing.T) {
	// Table 6 reproduction at reduced n: survivors after subround (i,j)
	// track λ'_{i,j}·n.
	n := 200000
	c := 0.7
	g := partitionedGraph(n, int(c*float64(n)), 4, 45)
	res := Subtables(g, 2, Options{})
	pred, err := recurrence.Params{K: 2, R: 4, C: c}.SubtableTrace(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pred) && i < len(res.SurvivorHistory) && i < 16; i++ {
		want := pred[i].MixedFra * float64(n)
		got := float64(res.SurvivorHistory[i])
		tol := 6*math.Sqrt(float64(n)) + 0.005*want
		if math.Abs(got-want) > tol {
			t.Errorf("subround (%d,%d): survivors %v, recurrence predicts %.0f (tol %.0f)",
				pred[i].Round, pred[i].Subtable, got, want, tol)
		}
	}
}

func TestSubtablesFasterThanNaiveSerialization(t *testing.T) {
	// Appendix B's point: subrounds ≈ 2× rounds at r=4, not 4×. Check the
	// ratio lands in a sensible band on a concrete instance.
	n := 160000
	g := partitionedGraph(n, int(0.7*float64(n)), 4, 46)
	sub := Subtables(g, 2, Options{})
	plain := Parallel(g, 2, Options{})
	ratio := float64(sub.Subrounds) / float64(plain.Rounds)
	if ratio < 1.2 || ratio > 3.0 {
		t.Errorf("subround/round ratio %.2f outside plausible band (sub=%d plain=%d)",
			ratio, sub.Subrounds, plain.Rounds)
	}
}

func TestSubtableHistoryMonotone(t *testing.T) {
	g := partitionedGraph(40000, 28000, 4, 47)
	res := Subtables(g, 2, Options{})
	prev := g.N
	for i, s := range res.SurvivorHistory {
		if s > prev {
			t.Fatalf("subround %d: survivors increased %d -> %d", i+1, prev, s)
		}
		prev = s
	}
	if res.Rounds*4 < res.Subrounds {
		t.Errorf("rounds %d inconsistent with subrounds %d", res.Rounds, res.Subrounds)
	}
}

func TestSubtableDeterministic(t *testing.T) {
	g := partitionedGraph(40000, 28000, 4, 48)
	a := Subtables(g, 2, Options{})
	b := Subtables(g, 2, Options{})
	if a.Subrounds != b.Subrounds || a.CoreVertices != b.CoreVertices {
		t.Errorf("two subtable runs disagree: subrounds %d/%d", a.Subrounds, b.Subrounds)
	}
	for i := range a.SurvivorHistory {
		if a.SurvivorHistory[i] != b.SurvivorHistory[i] {
			t.Fatalf("subround %d: histories differ", i+1)
		}
	}
}

func TestSubtableAboveThreshold(t *testing.T) {
	n := 40000
	g := partitionedGraph(n, int(0.85*float64(n)), 4, 49)
	res := Subtables(g, 2, Options{})
	if res.Empty() {
		t.Fatal("above-threshold subtable peel emptied the core")
	}
	frac := float64(res.CoreVertices) / float64(n)
	if math.Abs(frac-0.775) > 0.02 {
		t.Errorf("core fraction %.4f, want ~0.775", frac)
	}
}

func TestSubtableConfluenceQuick(t *testing.T) {
	f := func(seed uint64, mRaw uint16, kRaw uint8) bool {
		n := 300 // divisible by 3
		m := int(mRaw % 400)
		k := int(kRaw%3) + 1
		g := hypergraph.Partitioned(n, m, 3, rng.New(seed))
		seq := Sequential(g, k)
		sub := Subtables(g, k, Options{})
		if seq.CoreVertices != sub.CoreVertices || seq.CoreEdges != sub.CoreEdges {
			return false
		}
		for v := 0; v < n; v++ {
			if seq.VertexAlive[v] != sub.VertexAlive[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSubtablePeel(b *testing.B) {
	g := partitionedGraph(1<<18, 180000, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Subtables(g, 2, Options{})
	}
}
