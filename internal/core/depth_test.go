package core

import (
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/rng"
)

func TestDepthsMatchParallelRounds(t *testing.T) {
	g := uniformGraph(60000, 42000, 4, 60)
	par := Parallel(g, 2, Options{})
	depth := Depths(g, 2)

	maxDepth := int32(0)
	counts := map[int32]int{}
	for v := 0; v < g.N; v++ {
		d := depth[v]
		if d == InCore {
			if par.VertexAlive[v] == 0 {
				t.Fatalf("vertex %d: depth says core, parallel says peeled", v)
			}
			continue
		}
		if par.VertexAlive[v] != 0 {
			t.Fatalf("vertex %d: depth %d but parallel says core", v, d)
		}
		counts[d]++
		if d > maxDepth {
			maxDepth = d
		}
	}
	if int(maxDepth) != par.Rounds {
		t.Errorf("max depth %d != parallel rounds %d", maxDepth, par.Rounds)
	}
	// Survivor history refinement: survivors after round t = n minus all
	// vertices of depth <= t.
	removed := 0
	for tr := 1; tr <= par.Rounds; tr++ {
		removed += counts[int32(tr)]
		if want := g.N - removed; par.SurvivorHistory[tr-1] != want {
			t.Errorf("round %d: survivors %d, depth histogram implies %d",
				tr, par.SurvivorHistory[tr-1], want)
		}
	}
}

func TestDepthsAboveThreshold(t *testing.T) {
	g := uniformGraph(40000, 34000, 4, 61)
	depth := Depths(g, 2)
	seq := Sequential(g, 2)
	for v := 0; v < g.N; v++ {
		inCore := depth[v] == InCore
		if inCore != (seq.VertexAlive[v] != 0) {
			t.Fatalf("vertex %d: depth/core disagreement", v)
		}
	}
}

func TestDepthsQuickAgainstParallel(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16, kRaw uint8) bool {
		n := int(nRaw%300) + 10
		m := int(mRaw % 400)
		k := int(kRaw%3) + 1
		g := hypergraph.Uniform(n, m, 3, rng.New(seed))
		depth := Depths(g, k)
		par := Parallel(g, k, Options{})
		maxD := 0
		for v := 0; v < n; v++ {
			if (depth[v] == InCore) != (par.VertexAlive[v] != 0) {
				return false
			}
			if int(depth[v]) > maxD {
				maxD = int(depth[v])
			}
		}
		return maxD == par.Rounds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCorenessCrossCheck(t *testing.T) {
	// Coreness[v] >= k iff v survives Peel(g, k), for every relevant k.
	g := uniformGraph(8000, 9600, 3, 62) // c = 1.2, rich core structure
	coreness := Coreness(g)
	maxC := int32(0)
	for _, c := range coreness {
		if c > maxC {
			maxC = c
		}
	}
	for k := 1; k <= int(maxC)+1; k++ {
		res := Sequential(g, k)
		for v := 0; v < g.N; v++ {
			inKCore := res.VertexAlive[v] != 0
			if inKCore != (coreness[v] >= int32(k)) {
				t.Fatalf("k=%d vertex %d: coreness %d but in-core=%v",
					k, v, coreness[v], inKCore)
			}
		}
	}
}

func TestCorenessIsolatedAndSimple(t *testing.T) {
	// Hand graph: one triangle-ish hyperedge set plus isolated vertices.
	edges := []uint32{0, 1, 2, 0, 1, 3, 0, 2, 3, 1, 2, 3} // K4 as 3-uniform
	g := hypergraph.FromEdges(6, 3, edges, 0)
	coreness := Coreness(g)
	for v := 0; v < 4; v++ {
		if coreness[v] != 3 {
			t.Errorf("vertex %d coreness %d, want 3", v, coreness[v])
		}
	}
	for v := 4; v < 6; v++ {
		if coreness[v] != 0 {
			t.Errorf("isolated vertex %d coreness %d, want 0", v, coreness[v])
		}
	}
}

func TestCorenessQuick(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%200) + 10
		m := int(mRaw % 400)
		g := hypergraph.Uniform(n, m, 3, rng.New(seed))
		coreness := Coreness(g)
		// Check against direct peeling at k = 2 and k = 3.
		for _, k := range []int{2, 3} {
			res := Sequential(g, k)
			for v := 0; v < n; v++ {
				if (res.VertexAlive[v] != 0) != (coreness[v] >= int32(k)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSubtableFullScanAgrees(t *testing.T) {
	g := partitionedGraph(60000, 42000, 4, 63)
	a := Subtables(g, 2, Options{Scan: Frontier})
	b := Subtables(g, 2, Options{Scan: FullScan})
	if a.Subrounds != b.Subrounds || a.Rounds != b.Rounds {
		t.Errorf("scan policies disagree: subrounds %d/%d rounds %d/%d",
			a.Subrounds, b.Subrounds, a.Rounds, b.Rounds)
	}
	if a.CoreVertices != b.CoreVertices {
		t.Errorf("cores differ: %d vs %d", a.CoreVertices, b.CoreVertices)
	}
	for i := range a.SurvivorHistory {
		if a.SurvivorHistory[i] != b.SurvivorHistory[i] {
			t.Fatalf("subround %d: histories differ", i+1)
		}
	}
}

func TestDuplicateEdgesHandled(t *testing.T) {
	// Two identical edges make their vertices degree-2, forming a 2-core
	// (the duplicate-edge caveat in the paper's Section 3.2.2 remark).
	edges := []uint32{0, 1, 2, 0, 1, 2, 3, 4, 5}
	g := hypergraph.FromEdges(6, 3, edges, 0)
	seq := Sequential(g, 2)
	if seq.Empty() {
		t.Fatal("duplicate edges should form a 2-core")
	}
	if seq.CoreVertices != 3 || seq.CoreEdges != 2 {
		t.Errorf("core (%d,%d), want (3,2)", seq.CoreVertices, seq.CoreEdges)
	}
	par := Parallel(g, 2, Options{})
	if par.CoreVertices != 3 || par.CoreEdges != 2 {
		t.Errorf("parallel core (%d,%d), want (3,2)", par.CoreVertices, par.CoreEdges)
	}
}

func BenchmarkDepths(b *testing.B) {
	g := uniformGraph(1<<18, 180000, 4, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Depths(g, 2)
	}
}

func BenchmarkCoreness(b *testing.B) {
	g := uniformGraph(1<<16, 80000, 3, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Coreness(g)
	}
}
