package core

import (
	"testing"

	"repro/internal/parallel"
)

// TestParallelWorkersOption checks that a private pool (Options.Workers)
// and an explicit shared pool (Options.Pool) both produce exactly the
// result of the default-pool run and the sequential peeler: same rounds,
// same survivor history, same core — on both scan policies.
func TestParallelWorkersOption(t *testing.T) {
	g := uniformGraph(30000, 21000, 4, 30)
	seq := Sequential(g, 2)
	shared := parallel.NewPool(3)
	defer shared.Close()
	for _, scan := range []ScanPolicy{Frontier, FullScan} {
		base := Parallel(g, 2, Options{Scan: scan})
		for name, opts := range map[string]Options{
			"workers": {Scan: scan, Workers: 3},
			"pool":    {Scan: scan, Pool: shared},
		} {
			got := Parallel(g, 2, opts)
			if got.Rounds != base.Rounds {
				t.Errorf("scan %v %s: rounds %d != %d", scan, name, got.Rounds, base.Rounds)
			}
			if len(got.SurvivorHistory) != len(base.SurvivorHistory) {
				t.Fatalf("scan %v %s: history length %d != %d",
					scan, name, len(got.SurvivorHistory), len(base.SurvivorHistory))
			}
			for i := range got.SurvivorHistory {
				if got.SurvivorHistory[i] != base.SurvivorHistory[i] {
					t.Errorf("scan %v %s: round %d survivors %d != %d",
						scan, name, i+1, got.SurvivorHistory[i], base.SurvivorHistory[i])
				}
			}
			if got.CoreVertices != seq.CoreVertices || got.CoreEdges != seq.CoreEdges {
				t.Errorf("scan %v %s: core (%d,%d) != sequential (%d,%d)",
					scan, name, got.CoreVertices, got.CoreEdges, seq.CoreVertices, seq.CoreEdges)
			}
			for v := 0; v < g.N; v++ {
				if got.VertexAlive[v] != seq.VertexAlive[v] {
					t.Fatalf("scan %v %s: vertex %d alive mismatch", scan, name, v)
				}
			}
		}
	}
}

// TestSubtablesWorkersOption checks the same for the subtable peelers: a
// resized pool must not change subrounds, history, or the orientation's
// validity.
func TestSubtablesWorkersOption(t *testing.T) {
	g := partitionedGraph(20000, 14000, 4, 31)
	base := Subtables(g, 2, Options{})
	got := Subtables(g, 2, Options{Workers: 3})
	if got.Subrounds != base.Subrounds || got.Rounds != base.Rounds {
		t.Errorf("subrounds/rounds (%d,%d) != (%d,%d)",
			got.Subrounds, got.Rounds, base.Subrounds, base.Rounds)
	}
	for i := range base.SurvivorHistory {
		if got.SurvivorHistory[i] != base.SurvivorHistory[i] {
			t.Errorf("subround %d: survivors %d != %d",
				i+1, got.SurvivorHistory[i], base.SurvivorHistory[i])
		}
	}

	res, orient := SubtablesOriented(g, 2, Options{Workers: 3})
	if res.Subrounds != base.Subrounds {
		t.Errorf("oriented subrounds %d != %d", res.Subrounds, base.Subrounds)
	}
	if !ValidateOrientation(g, orient, 2) {
		t.Error("orientation invalid under resized pool")
	}
}
