package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/recurrence"
	"repro/internal/rng"
)

func uniformGraph(n, m, r int, seed uint64) *hypergraph.Hypergraph {
	return hypergraph.Uniform(n, m, r, rng.New(seed))
}

func TestSequentialEmptyCoreBelowThreshold(t *testing.T) {
	// c = 0.7 < c*_{2,4} ~ 0.772: the 2-core is empty w.h.p.
	g := uniformGraph(50000, 35000, 4, 1)
	res := Sequential(g, 2)
	if !res.Empty() {
		t.Errorf("2-core not empty below threshold: %d vertices, %d edges",
			res.CoreVertices, res.CoreEdges)
	}
	if len(res.PeelOrder) != g.M {
		t.Errorf("peel order has %d edges, want %d", len(res.PeelOrder), g.M)
	}
}

func TestSequentialNonEmptyCoreAboveThreshold(t *testing.T) {
	// c = 0.85 > c*: the 2-core contains ~0.775 n vertices (Table 2 limit).
	n := 100000
	g := uniformGraph(n, 85000, 4, 2)
	res := Sequential(g, 2)
	if res.Empty() {
		t.Fatal("2-core empty above threshold")
	}
	frac := float64(res.CoreVertices) / float64(n)
	if math.Abs(frac-0.775) > 0.01 {
		t.Errorf("core fraction %.4f, want ~0.775", frac)
	}
	if err := CoreDegreesValid(g, &res.Result, 2); err != nil {
		t.Error(err)
	}
}

func TestSequentialOrientation(t *testing.T) {
	g := uniformGraph(30000, 21000, 4, 3)
	res := Sequential(g, 2)
	if !res.Empty() {
		t.Skip("unlucky instance: non-empty core")
	}
	// Every edge peeled exactly once, assigned to a vertex; for k = 2 a
	// vertex frees at most one edge (it is removed at degree <= 1).
	seenEdge := make([]bool, g.M)
	count := make(map[uint32]int)
	for _, e := range res.PeelOrder {
		if seenEdge[e] {
			t.Fatalf("edge %d peeled twice", e)
		}
		seenEdge[e] = true
		v := res.FreeVertex[e]
		if v == NoVertex {
			t.Fatalf("peeled edge %d has no free vertex", e)
		}
		count[v]++
		if count[v] > 1 {
			t.Fatalf("vertex %d freed %d edges with k=2", v, count[v])
		}
		// The free vertex must be an endpoint of the edge.
		found := false
		for _, u := range g.EdgeVertices(int(e)) {
			if u == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("free vertex %d not an endpoint of edge %d", v, e)
		}
	}
}

func TestSequentialOrientationHigherK(t *testing.T) {
	// For general k each vertex frees at most k-1 edges.
	g := uniformGraph(20000, 24000, 3, 4) // c = 1.2 < c*_{3,3} ~ 1.553
	k := 3
	res := Sequential(g, k)
	if !res.Empty() {
		t.Skip("unlucky instance: non-empty core")
	}
	count := make(map[uint32]int)
	for _, e := range res.PeelOrder {
		count[res.FreeVertex[e]]++
	}
	for v, c := range count {
		if c > k-1 {
			t.Fatalf("vertex %d freed %d edges, max k-1 = %d", v, c, k-1)
		}
	}
}

func TestParallelMatchesSequentialCore(t *testing.T) {
	for _, cfg := range []struct {
		n, m, r, k int
		seed       uint64
	}{
		{20000, 14000, 4, 2, 10}, // below threshold
		{20000, 17000, 4, 2, 11}, // above threshold
		{20000, 26000, 3, 3, 12}, // k=3 below
		{20000, 34000, 3, 3, 13}, // k=3 above
		{5000, 4000, 2, 3, 14},   // graph case r=2, k=3
	} {
		g := uniformGraph(cfg.n, cfg.m, cfg.r, cfg.seed)
		seq := Sequential(g, cfg.k)
		for _, scan := range []ScanPolicy{Frontier, FullScan} {
			par := Parallel(g, cfg.k, Options{Scan: scan})
			if par.CoreVertices != seq.CoreVertices || par.CoreEdges != seq.CoreEdges {
				t.Errorf("cfg %+v scan %v: parallel core (%d,%d) != sequential (%d,%d)",
					cfg, scan, par.CoreVertices, par.CoreEdges, seq.CoreVertices, seq.CoreEdges)
			}
			for v := 0; v < g.N; v++ {
				if par.VertexAlive[v] != seq.VertexAlive[v] {
					t.Fatalf("cfg %+v scan %v: vertex %d alive mismatch", cfg, scan, v)
				}
			}
			for e := 0; e < g.M; e++ {
				if par.EdgeAlive[e] != seq.EdgeAlive[e] {
					t.Fatalf("cfg %+v scan %v: edge %d alive mismatch", cfg, scan, e)
				}
			}
			if err := CoreDegreesValid(g, par, cfg.k); err != nil {
				t.Errorf("cfg %+v scan %v: %v", cfg, scan, err)
			}
		}
	}
}

func TestScanPoliciesAgreeOnRounds(t *testing.T) {
	g := uniformGraph(50000, 35000, 4, 20)
	a := Parallel(g, 2, Options{Scan: Frontier})
	b := Parallel(g, 2, Options{Scan: FullScan})
	if a.Rounds != b.Rounds {
		t.Errorf("frontier rounds %d != full-scan rounds %d", a.Rounds, b.Rounds)
	}
	if len(a.SurvivorHistory) != len(b.SurvivorHistory) {
		t.Fatalf("history lengths differ: %d vs %d", len(a.SurvivorHistory), len(b.SurvivorHistory))
	}
	for i := range a.SurvivorHistory {
		if a.SurvivorHistory[i] != b.SurvivorHistory[i] {
			t.Errorf("round %d: survivors %d vs %d", i+1, a.SurvivorHistory[i], b.SurvivorHistory[i])
		}
	}
}

func TestParallelDeterministic(t *testing.T) {
	g := uniformGraph(30000, 21000, 4, 21)
	a := Parallel(g, 2, Options{})
	b := Parallel(g, 2, Options{})
	if a.Rounds != b.Rounds || a.CoreVertices != b.CoreVertices {
		t.Errorf("two runs on the same graph disagree: rounds %d/%d cores %d/%d",
			a.Rounds, b.Rounds, a.CoreVertices, b.CoreVertices)
	}
	for i := range a.SurvivorHistory {
		if a.SurvivorHistory[i] != b.SurvivorHistory[i] {
			t.Fatalf("round %d: survivor history differs across runs", i+1)
		}
	}
}

func TestParallelRoundsMatchTable1(t *testing.T) {
	// Table 1: r=4, k=2, c=0.7 converges to 13 rounds (12.983 at n=160k).
	g := uniformGraph(160000, 112000, 4, 22)
	res := Parallel(g, 2, Options{})
	if !res.Empty() {
		t.Fatal("peeling failed below threshold")
	}
	if res.Rounds < 12 || res.Rounds > 14 {
		t.Errorf("rounds = %d, want ~13 (Table 1)", res.Rounds)
	}
}

func TestParallelSurvivorsMatchRecurrence(t *testing.T) {
	// Table 2 reproduction at reduced n: survivors after round t should
	// track λ_t·n within sampling noise for both regimes.
	n := 200000
	for _, c := range []float64{0.7, 0.85} {
		g := uniformGraph(n, int(c*float64(n)), 4, 23)
		res := Parallel(g, 2, Options{})
		pred, err := recurrence.Params{K: 2, R: 4, C: c}.Trace(res.Rounds)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < res.Rounds && i < 8; i++ {
			want := pred[i].Lambda * float64(n)
			got := float64(res.SurvivorHistory[i])
			// Tolerance: martingale concentration gives O(sqrt(n) polylog)
			// fluctuations; 6 sigma with sigma ~ sqrt(n) plus 0.5% slack.
			tol := 6*math.Sqrt(float64(n)) + 0.005*want
			if math.Abs(got-want) > tol {
				t.Errorf("c=%v round %d: survivors %v, recurrence predicts %.0f (tol %.0f)",
					c, i+1, got, want, tol)
			}
		}
	}
}

func TestParallelRoundGrowthRegimes(t *testing.T) {
	// The Theorem 1 vs Theorem 3 signature is in the *growth* with n:
	// below the threshold rounds are essentially flat (log log n), above
	// it they grow like log n. Table 1: from n=40000 to n=640000 the
	// c=0.85 column climbs ~13 -> ~17.3 while c=0.7 stays ~12.8 -> 13.0.
	nSmall, nLarge := 40000, 640000
	rounds := func(c float64, n int, seed uint64) int {
		res := Parallel(uniformGraph(n, int(c*float64(n)), 4, seed), 2, Options{})
		return res.Rounds
	}
	belowDelta := rounds(0.7, nLarge, 24) - rounds(0.7, nSmall, 25)
	aboveDelta := rounds(0.85, nLarge, 26) - rounds(0.85, nSmall, 27)
	if belowDelta > 1 {
		t.Errorf("below threshold: rounds grew by %d over 16x n, want <= 1", belowDelta)
	}
	if aboveDelta < 2 {
		t.Errorf("above threshold: rounds grew by %d over 16x n, want >= 2 (log n growth)", aboveDelta)
	}
}

func TestSurvivorHistoryMonotone(t *testing.T) {
	g := uniformGraph(50000, 40000, 4, 26)
	res := Parallel(g, 2, Options{})
	prev := g.N
	for i, s := range res.SurvivorHistory {
		if s > prev || s < res.CoreVertices {
			t.Fatalf("round %d: survivors %d not in [%d, %d]", i+1, s, res.CoreVertices, prev)
		}
		prev = s
	}
	if len(res.SurvivorHistory) > 0 && res.SurvivorHistory[len(res.SurvivorHistory)-1] != res.CoreVertices {
		t.Errorf("final history entry %d != core size %d",
			res.SurvivorHistory[len(res.SurvivorHistory)-1], res.CoreVertices)
	}
}

func TestEmptyGraphAndNoEdges(t *testing.T) {
	// m = 0: every vertex is isolated and is removed in round 1.
	g := hypergraph.Uniform(100, 0, 3, rng.New(27))
	res := Parallel(g, 2, Options{})
	if !res.Empty() || res.Rounds != 1 {
		t.Errorf("m=0: rounds %d, core (%d,%d); want 1 round, empty",
			res.Rounds, res.CoreVertices, res.CoreEdges)
	}
	seq := Sequential(g, 2)
	if !seq.Empty() {
		t.Error("sequential failed on edgeless graph")
	}
}

func TestKOne(t *testing.T) {
	// k = 1 removes only isolated vertices; every edge survives.
	g := uniformGraph(1000, 700, 3, 28)
	res := Parallel(g, 1, Options{})
	if res.CoreEdges != g.M {
		t.Errorf("k=1 removed %d edges", g.M-res.CoreEdges)
	}
	touched := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > 0 {
			touched++
		}
	}
	if res.CoreVertices != touched {
		t.Errorf("k=1 core vertices %d, want %d touched", res.CoreVertices, touched)
	}
}

func TestBadKPanics(t *testing.T) {
	g := uniformGraph(100, 50, 3, 29)
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	Parallel(g, 0, Options{})
}

func TestMaxRoundsCap(t *testing.T) {
	g := uniformGraph(50000, 35000, 4, 30)
	res := Parallel(g, 2, Options{MaxRounds: 3})
	if res.Rounds > 3 {
		t.Errorf("rounds %d exceeded cap 3", res.Rounds)
	}
	if res.Empty() {
		t.Error("peeling should not complete in 3 rounds at this size")
	}
}

func TestConfluenceQuick(t *testing.T) {
	// Property: on arbitrary random graphs, sequential and parallel
	// peeling (both scans) leave identical cores for every k.
	f := func(seed uint64, nRaw, mRaw uint16, kRaw uint8) bool {
		n := int(nRaw%300) + 10
		m := int(mRaw % 500)
		k := int(kRaw%4) + 1
		g := hypergraph.Uniform(n, m, 3, rng.New(seed))
		seq := Sequential(g, k)
		par := Parallel(g, k, Options{Scan: Frontier})
		full := Parallel(g, k, Options{Scan: FullScan})
		if seq.CoreVertices != par.CoreVertices || par.CoreVertices != full.CoreVertices {
			return false
		}
		for v := 0; v < n; v++ {
			if seq.VertexAlive[v] != par.VertexAlive[v] || par.VertexAlive[v] != full.VertexAlive[v] {
				return false
			}
		}
		return CoreDegreesValid(g, &seq.Result, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSequentialPeel(b *testing.B) {
	g := uniformGraph(1<<18, 180000, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sequential(g, 2)
	}
}

func BenchmarkParallelPeelFrontier(b *testing.B) {
	g := uniformGraph(1<<18, 180000, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parallel(g, 2, Options{Scan: Frontier})
	}
}

func BenchmarkParallelPeelFullScan(b *testing.B) {
	g := uniformGraph(1<<18, 180000, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parallel(g, 2, Options{Scan: FullScan})
	}
}
