package core

import (
	"context"
	"sync/atomic"

	"repro/internal/hypergraph"
	"repro/internal/parallel"
)

// Orientation is the layered edge → vertex assignment produced by
// SubtablesOriented: FreeVertex[e] is the vertex whose peeling released
// edge e, and Layers groups edge ids by the subround that released them,
// in execution order.
//
// The subtable structure makes this safe to build in parallel and safe
// to consume in parallel:
//
//   - Within a subround, only subtable-j vertices peel, and an edge has
//     exactly one subtable-j vertex — so no two vertices ever contend
//     for an edge, and the orientation is deterministic.
//   - If edge e is released in layer L, every endpoint other than its
//     free vertex is peeled in a layer strictly after L (had it been
//     peeled earlier it would have released e first). Hence processing
//     layers in reverse order, with arbitrary parallelism inside a
//     layer, respects all value dependencies — the property the
//     parallel constructions in internal/bloomier rely on.
type Orientation struct {
	FreeVertex []uint32   // NoVertex for edges left in the core
	Layers     [][]uint32 // edge ids per productive subround
}

// SubtablesOriented peels a partitioned hypergraph with the Appendix B
// subround process and additionally returns the layered orientation.
// The Result matches Subtables exactly (same rounds, subrounds, history,
// core).
func SubtablesOriented(g *hypergraph.Hypergraph, k int, opts Options) (*Result, *Orientation) {
	res, orient, _ := SubtablesOrientedCtx(context.Background(), g, k, opts)
	return res, orient
}

// SubtablesOrientedCtx is SubtablesOriented with cooperative
// cancellation, checked at every subround barrier. On cancellation it
// returns (nil, nil, ctx.Err()). Panics if g is not partitioned, as in
// SubtablesCtx.
func SubtablesOrientedCtx(ctx context.Context, g *hypergraph.Hypergraph, k int, opts Options) (*Result, *Orientation, error) {
	if g.SubtableSize == 0 {
		panic("core: SubtablesOriented requires a partitioned hypergraph")
	}
	s := newCoreState(g, k)
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = Deadline
	}
	grain := opts.Grain
	if grain <= 0 {
		grain = 2048
	}
	pool, release := opts.pool()
	defer release()
	r := g.R
	sub := g.SubtableSize

	res := &Result{}
	orient := &Orientation{FreeVertex: make([]uint32, g.M)}
	for e := range orient.FreeVertex {
		orient.FreeVertex[e] = NoVertex
	}
	alive := g.N
	eclaim := parallel.NewBitset(g.M)

	frontiers := make([][]uint32, r)
	inFrontier := make([]uint32, g.N)
	for v := 0; v < g.N; v++ {
		if s.deg[v] < s.k {
			frontiers[v/sub] = append(frontiers[v/sub], uint32(v))
		}
	}
	// Per-worker shards, reused across subrounds: nextShards[w][j] holds
	// worker w's freed candidates for subtable j, layerShards[w] the edge
	// ids worker w released this subround. Both are merged at the
	// subround barrier — no locking in the loop.
	nextShards := make([][][]uint32, pool.Workers())
	for w := range nextShards {
		nextShards[w] = make([][]uint32, r)
	}
	layerShards := make([][]uint32, pool.Workers())

	var peelSet []uint32
	subroundIdx := 0
	lastProductive := 0
	for round := 1; round <= maxRounds; round++ {
		removedThisRound := 0
		for j := 0; j < r; j++ {
			// Subround barrier cancellation check.
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			subroundIdx++
			epoch := uint32(subroundIdx)

			peelSet = peelSet[:0]
			for _, v := range frontiers[j] {
				if s.vdead[v] == 0 && s.deg[v] < s.k {
					s.vdead[v] = 1
					peelSet = append(peelSet, v)
				}
			}
			frontiers[j] = frontiers[j][:0]
			if len(peelSet) == 0 {
				res.SurvivorHistory = append(res.SurvivorHistory, alive)
				continue
			}

			pool.For(len(peelSet), grain, func(w, lo, hi int) {
				local := nextShards[w]
				localLayer := layerShards[w]
				for i := lo; i < hi; i++ {
					v := peelSet[i]
					for _, e := range g.VertexEdges(int(v)) {
						// Within this subround, v is the unique
						// subtable-j endpoint of e, so the claim never
						// contends with another peeling vertex; the
						// atomic set only filters edges already released
						// in earlier subrounds.
						if !eclaim.AtomicSet(int(e)) {
							continue
						}
						orient.FreeVertex[e] = v
						localLayer = append(localLayer, e)
						for _, u := range g.EdgeVertices(int(e)) {
							if u == v {
								continue
							}
							d := atomic.AddInt32(&s.deg[u], -1)
							if d < s.k {
								if atomic.SwapUint32(&inFrontier[u], epoch) != epoch {
									local[int(u)/sub] = append(local[int(u)/sub], u)
								}
							}
						}
					}
				}
				layerShards[w] = localLayer
			})
			for jj := 0; jj < r; jj++ {
				for w := range nextShards {
					frontiers[jj] = append(frontiers[jj], nextShards[w][jj]...)
					nextShards[w][jj] = nextShards[w][jj][:0]
				}
			}
			layer := drain(nil, layerShards)
			if len(layer) > 0 {
				orient.Layers = append(orient.Layers, layer)
			}

			alive -= len(peelSet)
			removedThisRound += len(peelSet)
			lastProductive = subroundIdx
			res.SurvivorHistory = append(res.SurvivorHistory, alive)
		}
		if removedThisRound == 0 {
			res.SurvivorHistory = res.SurvivorHistory[:len(res.SurvivorHistory)-r]
			break
		}
		res.Rounds = round
	}
	res.Subrounds = lastProductive
	syncEdgeClaims(s.edead, eclaim, pool)
	return s.finish(res), orient, nil
}

// ValidateOrientation checks the structural guarantees of an Orientation
// against its graph: every released edge's free vertex is one of its
// endpoints, no vertex frees more than k-1 edges, and every non-free
// endpoint of a layer-L edge is the free vertex only of strictly later
// layers (the reverse-processing dependency). Returns false on any
// violation. Intended for tests and debugging; O(m·r).
func ValidateOrientation(g *hypergraph.Hypergraph, o *Orientation, k int) bool {
	freed := make(map[uint32]int)
	layerOf := make([]int, g.M)
	for i := range layerOf {
		layerOf[i] = -1
	}
	for li, layer := range o.Layers {
		for _, e := range layer {
			if layerOf[e] != -1 {
				return false // edge in two layers
			}
			layerOf[e] = li
		}
	}
	vertexLayer := make(map[uint32]int)
	for li, layer := range o.Layers {
		for _, e := range layer {
			v := o.FreeVertex[e]
			if v == NoVertex {
				return false
			}
			found := false
			for _, u := range g.EdgeVertices(int(e)) {
				if u == v {
					found = true
				}
			}
			if !found {
				return false
			}
			freed[v]++
			if freed[v] > k-1 {
				return false
			}
			if prev, ok := vertexLayer[v]; ok && prev != li {
				return false // a vertex frees edges in one subround only
			}
			vertexLayer[v] = li
		}
	}
	// Dependency direction: non-free endpoints must not be free vertices
	// of the same or earlier layers.
	for li, layer := range o.Layers {
		for _, e := range layer {
			for _, u := range g.EdgeVertices(int(e)) {
				if u == o.FreeVertex[e] {
					continue
				}
				if ul, ok := vertexLayer[u]; ok && ul <= li {
					return false
				}
			}
		}
	}
	return true
}
