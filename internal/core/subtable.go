package core

import (
	"context"
	"sync/atomic"

	"repro/internal/hypergraph"
	"repro/internal/parallel"
)

// Subtables runs the Appendix B peeling variant on a partitioned
// hypergraph: each round consists of r subrounds, and subround j removes,
// in parallel, every subtable-j vertex whose degree is < k. Because each
// edge touches subtable j in exactly one vertex, no two threads in a
// subround can try to peel the same edge via the same subtable — the
// property the paper's GPU IBLT implementation relies on to avoid
// deleting an item twice.
//
// The returned Result counts productive subrounds (Result.Subrounds,
// Table 5's "Subrounds" column) and full rounds (Result.Rounds), and
// records the survivor count after every executed subround
// (Result.SurvivorHistory, Table 6's "Experiment" column).
//
// g must be partitioned (hypergraph.Partitioned); Subtables panics
// otherwise.
func Subtables(g *hypergraph.Hypergraph, k int, opts Options) *Result {
	res, _ := SubtablesCtx(context.Background(), g, k, opts)
	return res
}

// SubtablesCtx is Subtables with cooperative cancellation, checked at
// every subround barrier (a finer grain than the full-round barrier of
// ParallelCtx, matching the subround structure). On cancellation it
// returns (nil, ctx.Err()). Panics if g is not partitioned — the
// subround schedule is meaningless without subtables.
func SubtablesCtx(ctx context.Context, g *hypergraph.Hypergraph, k int, opts Options) (*Result, error) {
	if g.SubtableSize == 0 {
		panic("core: Subtables requires a partitioned hypergraph")
	}
	s := newCoreState(g, k)
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = Deadline
	}
	grain := opts.Grain
	if grain <= 0 {
		grain = 2048
	}
	pool, release := opts.pool()
	defer release()
	r := g.R
	sub := g.SubtableSize

	res := &Result{}
	alive := g.N
	eclaim := parallel.NewBitset(g.M)

	// Per-subtable frontiers with epoch dedup, mirroring the Parallel
	// peeler. frontiers[j] holds candidates from subtable j. Freed
	// candidates are collected per worker and per target subtable
	// (nextShards[w][j]) and merged into the frontiers at the subround
	// barrier; the shards are reused across subrounds.
	frontiers := make([][]uint32, r)
	inFrontier := make([]uint32, g.N)
	for v := 0; v < g.N; v++ {
		if s.deg[v] < s.k {
			j := v / sub
			frontiers[j] = append(frontiers[j], uint32(v))
		}
	}
	peelShards := make([][]uint32, pool.Workers())
	nextShards := make([][][]uint32, pool.Workers())
	for w := range nextShards {
		nextShards[w] = make([][]uint32, r)
	}

	var peelSet []uint32
	subroundIdx := 0
	lastProductive := 0
	for round := 1; round <= maxRounds; round++ {
		removedThisRound := 0
		for j := 0; j < r; j++ {
			// Subround barrier cancellation check.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			subroundIdx++
			epoch := uint32(subroundIdx)

			// Phase A: snapshot subtable j's peelable vertices. Marking
			// them dead here (single-threaded for Frontier) also
			// deduplicates: a vertex can enter the same frontier twice
			// under different epochs when its degree drops in two
			// different subrounds. FullScan re-examines subtable j's whole
			// vertex range — the GPU's one-thread-per-cell strategy.
			peelSet = peelSet[:0]
			switch opts.Scan {
			case Frontier:
				for _, v := range frontiers[j] {
					if s.vdead[v] == 0 && s.deg[v] < s.k {
						s.vdead[v] = 1
						peelSet = append(peelSet, v)
					}
				}
				frontiers[j] = frontiers[j][:0]
			case FullScan:
				base := j * sub
				pool.For(sub, grain, func(w, lo, hi int) {
					local := peelShards[w]
					for vi := lo; vi < hi; vi++ {
						v := uint32(base + vi)
						if s.vdead[v] == 0 && s.deg[v] < s.k {
							s.vdead[v] = 1
							local = append(local, v)
						}
					}
					peelShards[w] = local
				})
				peelSet = drain(peelSet, peelShards)
			}

			if len(peelSet) == 0 {
				res.SurvivorHistory = append(res.SurvivorHistory, alive)
				continue
			}

			// Phase B: peel them; freed vertices land in their own
			// subtable's next frontier (same-subtable vertices cannot be
			// freed by this subround — every edge meets subtable j once —
			// but cross-subtable ones can be peeled later this round,
			// which is why subrounds make faster progress than rounds).
			pool.For(len(peelSet), grain, func(w, lo, hi int) {
				local := nextShards[w]
				for i := lo; i < hi; i++ {
					v := peelSet[i] // already marked dead in Phase A
					for _, e := range g.VertexEdges(int(v)) {
						if !eclaim.AtomicSet(int(e)) {
							continue
						}
						for _, u := range g.EdgeVertices(int(e)) {
							if u == v {
								continue
							}
							d := atomic.AddInt32(&s.deg[u], -1)
							if opts.Scan == Frontier && d < s.k {
								if atomic.SwapUint32(&inFrontier[u], epoch) != epoch {
									uj := int(u) / sub
									local[uj] = append(local[uj], u)
								}
							}
						}
					}
				}
			})
			for jj := 0; jj < r; jj++ {
				for w := range nextShards {
					frontiers[jj] = append(frontiers[jj], nextShards[w][jj]...)
					nextShards[w][jj] = nextShards[w][jj][:0]
				}
			}

			alive -= len(peelSet)
			removedThisRound += len(peelSet)
			lastProductive = subroundIdx
			res.SurvivorHistory = append(res.SurvivorHistory, alive)
		}
		if removedThisRound == 0 {
			// A full silent round means the k-core is reached; drop its
			// r no-op subrounds from the history.
			res.SurvivorHistory = res.SurvivorHistory[:len(res.SurvivorHistory)-r]
			break
		}
		res.Rounds = round
	}
	res.Subrounds = lastProductive
	syncEdgeClaims(s.edead, eclaim, pool)
	return s.finish(res), nil
}
