package core

import (
	"context"
	"sync/atomic"

	"repro/internal/hypergraph"
	"repro/internal/parallel"
)

// ScanPolicy selects how the parallel peeler finds each round's peelable
// vertices.
type ScanPolicy int

const (
	// Frontier tracks only vertices whose degree changed, so total work is
	// proportional to the graph size rather than n × rounds. This is the
	// default and matches the work bound of the sequential algorithm.
	Frontier ScanPolicy = iota

	// FullScan re-examines every alive vertex each round — exactly the
	// "one thread per cell per round" strategy of the paper's GPU
	// implementation, where a scan is a single coalesced kernel. On CPUs
	// it wastes work once the frontier is small; the ablation benchmark
	// quantifies the difference.
	FullScan
)

// Options configure the Parallel peeler.
type Options struct {
	Scan      ScanPolicy
	MaxRounds int // 0 means Deadline
	Grain     int // parallel-for grain; 0 selects a default

	// Workers sets the size of a private worker pool for this run; 0
	// uses Pool if set and otherwise the process-wide default pool
	// (parallel.Default / parallel.SetDefaultWorkers).
	//
	// Workers > 0 spins the pool up and tears it down on EVERY peeler
	// call, so Options with Workers set must not be reused across a loop
	// (retry loops in builders, per-request serving loops) — each
	// iteration would pay worker startup again. Hoist with AcquirePool
	// and pass Options{Pool: p} instead.
	Workers int

	// Pool runs the peel on an explicit persistent pool, amortizing
	// worker startup across many runs. Ignored when Workers > 0.
	Pool *parallel.Pool
}

// AcquirePool resolves the worker pool a run with these Options would
// execute on, returning it together with a release func (a no-op unless
// the call created the pool, i.e. Workers > 0). The peelers call it once
// per run; callers that peel repeatedly — builder retry loops, servers
// peeling per request — should AcquirePool once themselves, defer
// release, and run every iteration with Options{Pool: p} so worker
// startup is paid once.
func (o Options) AcquirePool() (pool *parallel.Pool, release func()) {
	if o.Workers > 0 {
		p := parallel.NewPool(o.Workers)
		return p, p.Close
	}
	if o.Pool != nil {
		return o.Pool, func() {}
	}
	return parallel.Default(), func() {}
}

// pool is the internal alias the peelers use.
func (o Options) pool() (*parallel.Pool, func()) { return o.AcquirePool() }

// roundBuffers holds the per-worker append shards a peel reuses across
// rounds. Worker w appends only to index w (the pool guarantees chunks
// with the same worker ID never run concurrently), and the merge at the
// round barrier drains every shard — so frontier and peel-set collection
// need neither mutexes nor per-chunk allocations.
type roundBuffers struct {
	peel [][]uint32 // Phase A shards (FullScan candidate collection)
	next [][]uint32 // Phase B shards (next-frontier candidates)
}

func newRoundBuffers(workers int) *roundBuffers {
	return &roundBuffers{
		peel: make([][]uint32, workers),
		next: make([][]uint32, workers),
	}
}

// drain appends every shard of shards to dst and resets the shards,
// retaining their capacity for the next round.
func drain(dst []uint32, shards [][]uint32) []uint32 {
	for w := range shards {
		dst = append(dst, shards[w]...)
		shards[w] = shards[w][:0]
	}
	return dst
}

// roundLoop is the Phase A machinery shared by the round-synchronous
// peelers (ParallelCtx and ParallelOrderCtx): frontier seeding, the
// per-round peel-set collection, and the frontier swap at the round
// barrier. Phase B — how a round's edges are claimed and removed —
// differs per peeler and stays in each one's round loop; the Phase B
// code appends next-frontier candidates to bufs.next and tags them in
// inFrontier with the round epoch, exactly once per round.
type roundLoop struct {
	s     *coreState
	g     *hypergraph.Hypergraph
	pool  *parallel.Pool
	grain int
	scan  ScanPolicy
	bufs  *roundBuffers

	frontier   []uint32
	inFrontier []uint32 // epoch tags double as dedup marks
	peelSet    []uint32
}

// newRoundLoop allocates the shared per-run state and, for the frontier
// policy, seeds the round-1 frontier with a parallel degree scan into
// the per-worker shards (the O(n) sequential scan would otherwise be a
// serial pass before round 1). Shard drain order may shuffle the
// frontier across worker counts, but collect treats the frontier as a
// set — results are unaffected.
func newRoundLoop(s *coreState, g *hypergraph.Hypergraph, pool *parallel.Pool, grain int, scan ScanPolicy) *roundLoop {
	l := &roundLoop{
		s: s, g: g, pool: pool, grain: grain, scan: scan,
		bufs: newRoundBuffers(pool.Workers()),
	}
	if scan == Frontier {
		l.inFrontier = make([]uint32, g.N)
		pool.For(g.N, grain, func(w, lo, hi int) {
			local := l.bufs.next[w]
			for v := lo; v < hi; v++ {
				if s.deg[v] < s.k {
					local = append(local, uint32(v))
				}
			}
			l.bufs.next[w] = local
		})
		l.frontier = drain(make([]uint32, 0, g.N), l.bufs.next)
	}
	return l
}

// collect runs Phase A: it gathers this round's peel set, marking its
// vertices dead as they are collected, sharded over the pool. Each
// vertex is visited exactly once — frontier entries are distinct within
// a round (epoch-deduplicated by Phase B) and the full scan partitions
// the vertex range — so the vdead marks are disjoint byte stores, and
// the deg/vdead reads see the previous round's values across the round
// barrier. Small frontiers (≤ grain) run inline on the submitter, so
// the tail rounds pay no dispatch for the filter.
func (l *roundLoop) collect() []uint32 {
	l.peelSet = l.peelSet[:0]
	var domain []uint32 // nil means scan the full vertex range
	n := l.g.N
	if l.scan == Frontier {
		domain = l.frontier
		n = len(l.frontier)
		if n <= l.grain {
			// Tail rounds: a frontier within one grain would run inline
			// anyway; filtering it directly skips the closure and the
			// shard drain, so small rounds cost exactly what the serial
			// Phase A did.
			for _, v := range domain {
				if l.s.vdead[v] == 0 && l.s.deg[v] < l.s.k {
					l.s.vdead[v] = 1
					l.peelSet = append(l.peelSet, v)
				}
			}
			return l.peelSet
		}
	}
	l.pool.For(n, l.grain, func(w, lo, hi int) {
		local := l.bufs.peel[w]
		for i := lo; i < hi; i++ {
			v := uint32(i)
			if domain != nil {
				v = domain[i]
			}
			if l.s.vdead[v] == 0 && l.s.deg[v] < l.s.k {
				l.s.vdead[v] = 1
				local = append(local, v)
			}
		}
		l.bufs.peel[w] = local
	})
	l.peelSet = drain(l.peelSet, l.bufs.peel)
	return l.peelSet
}

// advance merges the Phase B next-frontier shards into the frontier at
// the round barrier. A no-op under FullScan.
func (l *roundLoop) advance() {
	if l.scan == Frontier {
		l.frontier = drain(l.frontier[:0], l.bufs.next)
	}
}

// Parallel runs the round-synchronous peeling process of the paper on g:
// in each round, every vertex with degree < k is removed together with
// its incident edges, all in parallel. The returned Result carries the
// per-round survivor counts (Table 2's "Experiment" column) and the
// number of productive rounds (Table 1's "Rounds" column).
//
// The implementation is a two-phase barrier algorithm. Phase A snapshots
// the set of vertices with degree < k (so this round's removals cannot
// influence this round's decisions — the exact process analyzed in
// Section 3). Phase B removes those vertices: each incident edge is
// claimed with an atomic flag so it is removed exactly once even when
// several of its endpoints peel in the same round, and the degrees of the
// other endpoints are decremented atomically.
//
// Both phases run on a persistent worker pool (see Options) and both
// are sharded over it — Phase A filters the frontier in parallel chunks
// (inline when the frontier fits one grain, so tail rounds pay no
// dispatch), and each worker accumulates candidates in its own shard,
// merged at the round barrier — there is no locking anywhere in the
// round loop, and the shards are reused across rounds, which matters in
// the small-frontier tail where a round does little work.
func Parallel(g *hypergraph.Hypergraph, k int, opts Options) *Result {
	res, _ := ParallelCtx(context.Background(), g, k, opts)
	return res
}

// ParallelCtx is Parallel with cooperative cancellation: the context is
// checked at every round barrier, so a canceled peel stops within one
// round of extra work — the O(log log n) round structure is what makes
// this cheap (a single check per barrier, no polling inside the phases).
// On cancellation it returns (nil, ctx.Err()); the partially peeled
// state is abandoned. A context that can never be canceled adds no
// per-round cost beyond a nil check.
func ParallelCtx(ctx context.Context, g *hypergraph.Hypergraph, k int, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := newCoreState(g, k)
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = Deadline
	}
	grain := opts.Grain
	if grain <= 0 {
		grain = 2048
	}
	pool, release := opts.pool()
	defer release()

	res := &Result{}
	alive := g.N

	// Edges are claimed through an atomic bitset (sync/atomic has no byte
	// CAS); the byte array in coreState is synchronized from it at the end
	// so that finish() and CoreDegreesValid see the usual representation.
	eclaim := parallel.NewBitset(g.M)

	loop := newRoundLoop(s, g, pool, grain, opts.Scan)

	for round := 1; round <= maxRounds; round++ {
		// Round barrier cancellation check: jobs abandoned mid-peel stop
		// here before starting another round of work.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Phase A: collect this round's peel set (see roundLoop.collect).
		peelSet := loop.collect()
		if len(peelSet) == 0 {
			break
		}

		// Phase B: remove the peel set. Vertices in the set are distinct,
		// so marking vdead needs no atomics (byte stores to distinct
		// addresses); edge claims and degree decrements do.
		epoch := uint32(round)
		pool.For(len(peelSet), grain, func(w, lo, hi int) {
			local := loop.bufs.next[w]
			for i := lo; i < hi; i++ {
				v := peelSet[i] // already marked dead in Phase A
				for _, e := range g.VertexEdges(int(v)) {
					if !eclaim.AtomicSet(int(e)) {
						continue
					}
					for _, u := range g.EdgeVertices(int(e)) {
						if u == v {
							continue
						}
						d := atomic.AddInt32(&s.deg[u], -1)
						// Tag u for the next frontier exactly once per
						// round. Vertices that died this round may be
						// tagged too (reading vdead here would race with
						// a concurrent peel of u); Phase A filters them.
						if opts.Scan == Frontier && d < s.k {
							if atomic.SwapUint32(&loop.inFrontier[u], epoch) != epoch {
								local = append(local, u)
							}
						}
					}
				}
			}
			loop.bufs.next[w] = local
		})

		alive -= len(peelSet)
		res.Rounds = round
		res.SurvivorHistory = append(res.SurvivorHistory, alive)
		loop.advance()
	}
	syncEdgeClaims(s.edead, eclaim, pool)
	return s.finish(res), nil
}

// syncEdgeClaims copies the atomic claim bitset into the byte-per-edge
// representation shared with the sequential peeler.
func syncEdgeClaims(edead []uint8, claims *parallel.Bitset, pool *parallel.Pool) {
	pool.For(len(edead), 1<<14, func(w, lo, hi int) {
		for e := lo; e < hi; e++ {
			if claims.Get(e) {
				edead[e] = 1
			}
		}
	})
}
