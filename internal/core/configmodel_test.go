package core

import (
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/recurrence"
	"repro/internal/rng"
)

// Degree design changes peeling behaviour — the irregular-ensemble
// contrast the LDPC literature exploits.

func TestRegularEnsembleNeverPeels(t *testing.T) {
	// All degrees exactly 3 >= k = 2: the graph is its own 2-core, so
	// parallel peeling stops after at most a round of stragglers (the
	// few vertices whose stubs were dropped by the matching remainder).
	gen := rng.New(70)
	g := hypergraph.ConfigurationModel(hypergraph.RegularDegrees(30000, 3), 3, gen)
	res := Parallel(g, 2, Options{})
	frac := float64(res.CoreVertices) / float64(g.N)
	if frac < 0.99 {
		t.Errorf("3-regular graph peeled down to %.3f of vertices; should be its own 2-core", frac)
	}
}

func TestPoissonConfigPeelsLikeUniform(t *testing.T) {
	// The Poisson-degree configuration model is the same ensemble as
	// G^r_{n,cn}: round counts and core emptiness must agree, and the
	// survivor trajectory must track the recurrence.
	n, c, r := 200000, 0.7, 4
	gen := rng.New(71)
	g := hypergraph.ConfigurationModel(hypergraph.PoissonDegrees(n, float64(r)*c, gen), r, gen)
	res := Parallel(g, 2, Options{})
	if !res.Empty() {
		t.Fatal("Poisson configuration model failed to peel below threshold")
	}
	if res.Rounds < 11 || res.Rounds > 15 {
		t.Errorf("rounds = %d, want ~13", res.Rounds)
	}
	// The realized edge density wobbles around c (Poisson degree sum);
	// compare survivors against the recurrence at the realized density.
	realized := g.EdgeDensity()
	pred, err := recurrence.Params{K: 2, R: r, C: realized}.Trace(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		want := pred[i].Lambda * float64(n)
		got := float64(res.SurvivorHistory[i])
		if got < want*0.99-1000 || got > want*1.01+1000 {
			t.Errorf("round %d: survivors %.0f vs recurrence %.0f", i+1, got, want)
		}
	}
}

func TestBimodalEnsembleCoreStructure(t *testing.T) {
	// Half the vertices at degree 1, half at degree 5 (same mean as
	// Poisson(3)): the heavy half forms a much more resilient core than
	// the Poisson ensemble at equal density would.
	n := 30000
	degs := make([]int32, n)
	for i := range degs {
		if i%2 == 0 {
			degs[i] = 1
		} else {
			degs[i] = 5
		}
	}
	gen := rng.New(72)
	g := hypergraph.ConfigurationModel(degs, 3, gen)
	res := Sequential(g, 2)
	// Edge density is (n/2·1 + n/2·5)/(3n) = 1.0 — above c*(2,3), so a
	// large core must survive, concentrated on heavy vertices.
	if res.Empty() {
		t.Fatal("bimodal ensemble at density 1.0 peeled to empty")
	}
	heavyAlive, lightAlive := 0, 0
	for v := 0; v < n; v++ {
		if res.VertexAlive[v] != 0 {
			if v%2 == 0 {
				lightAlive++
			} else {
				heavyAlive++
			}
		}
	}
	if heavyAlive <= lightAlive {
		t.Errorf("core composition: %d heavy vs %d light; heavy should dominate", heavyAlive, lightAlive)
	}
}
