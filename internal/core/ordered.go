package core

import (
	"context"
	"fmt"
	"slices"
	"sync/atomic"

	"repro/internal/hypergraph"
)

// OrderedResult extends Result with the artifacts the data-structure
// constructions consume — the peel order and the edge → vertex
// orientation — produced by the round-synchronous parallel process
// instead of the sequential queue peel.
//
// PeelOrder is round-major: round 1's edges first, then round 2's, and
// so on, with each round's segment sorted by edge id at the round
// barrier. Together with the minimum-endpoint claim rule of
// ParallelOrder this makes the whole result bit-stable: a given graph
// and k produce identical PeelOrder, FreeVertex, and RoundOf at every
// worker count and on every run.
//
// Reverse round-major order is a valid elimination order for k = 2 with
// full parallelism inside a round: a peeled vertex has at most k-1 = 1
// live edge, so a round-t edge's non-free endpoints free no edge of
// round t themselves — they are either free vertices of strictly later
// rounds or never free anything. Processing rounds in reverse with any
// (even concurrent) order inside a round therefore only reads finalized
// values, which is what the parallel assignment sweeps in internal/mphf
// and internal/bloomier rely on. For k > 2 a vertex may keep up to k-1
// live edges, within-round dependencies can occur, and only the
// round-major grouping itself is guaranteed (ValidateEliminationOrder
// checks the k = 2 property explicitly).
type OrderedResult struct {
	Result

	// PeelOrder lists peeled edges round-major, each round's segment
	// sorted ascending by edge id.
	PeelOrder []uint32

	// FreeVertex[e] is the vertex that released edge e (NoVertex if e is
	// in the core): the minimum-id endpoint of e peeled in e's round.
	// Each vertex appears at most k-1 times.
	FreeVertex []uint32

	// RoundOf[e] is the 1-based round that peeled edge e; 0 for edges
	// left in the core.
	RoundOf []int32

	// RoundStart[t] is the end offset of round t's segment in PeelOrder
	// (RoundStart[0] == 0), so round t's edges are
	// PeelOrder[RoundStart[t-1]:RoundStart[t]]. len == Rounds+1.
	RoundStart []int
}

// RoundSegment returns the edges peeled in round t (1-based), sorted by
// edge id.
func (r *OrderedResult) RoundSegment(t int) []uint32 {
	return r.PeelOrder[r.RoundStart[t-1]:r.RoundStart[t]]
}

// ParallelOrder runs the round-synchronous peeling process of Parallel
// and additionally produces the peel order and edge orientation that
// Sequential used to be the only (serial) source of — the artifacts the
// MPHF and Bloomier builders consume. See OrderedResult for the
// determinism and elimination-order contracts.
//
// Phase B runs as two sub-phases per round. First every peel-set vertex
// claims its live edges with an atomic min on the FreeVertex slot, so
// when several endpoints of an edge peel in the same round the minimum
// vertex id wins regardless of scheduling — the step that makes the
// orientation deterministic where Parallel's first-come bitset claim is
// not. Then each edge's unique winner settles it: marks it dead, tags
// its round, and decrements the other endpoints' degrees. (Rounds that
// would run inline anyway — 1-worker pools and grain-sized tail rounds —
// use a merged single pass instead; see the round loop.) PeelOrder is
// reconstructed after the last round with a counting sort over the
// round tags, which yields every segment already sorted by edge id —
// the same determinism trick as the stable parallel counting sort in
// internal/hypergraph, at O(m) instead of per-round sorting. The claim
// pass costs one more traversal of the peel set per round than
// Parallel; the Result fields (rounds, history, core) are identical to
// Parallel's.
func ParallelOrder(g *hypergraph.Hypergraph, k int, opts Options) *OrderedResult {
	res, _ := ParallelOrderCtx(context.Background(), g, k, opts)
	return res
}

// ParallelOrderCtx is ParallelOrder with cooperative cancellation,
// checked once at every round barrier like ParallelCtx: a canceled peel
// stops within one round of extra work and returns (nil, ctx.Err()),
// abandoning the partial state.
//
//peelvet:deterministic
func ParallelOrderCtx(ctx context.Context, g *hypergraph.Hypergraph, k int, opts Options) (*OrderedResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := newCoreState(g, k)
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = Deadline
	}
	grain := opts.Grain
	if grain <= 0 {
		grain = 2048
	}
	pool, release := opts.pool()
	defer release()

	res := &OrderedResult{
		FreeVertex: make([]uint32, g.M),
		RoundOf:    make([]int32, g.M),
	}
	for e := range res.FreeVertex {
		res.FreeVertex[e] = NoVertex
	}
	claim := res.FreeVertex // the claim array IS the orientation
	alive := g.N

	loop := newRoundLoop(s, g, pool, grain, opts.Scan)

	for round := 1; round <= maxRounds; round++ {
		// Round barrier cancellation check (one ctx.Err() per round).
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		peelSet := loop.collect()
		if len(peelSet) == 0 {
			break
		}
		epoch := uint32(round)
		// Phase B removes the peel set under the minimum-endpoint claim
		// rule: when several endpoints of an edge peel in the same round,
		// the smallest vertex id frees it — a scheduling-independent
		// tie-break, so the orientation is identical at every worker
		// count. Two executions implement the same rule:
		//
		//   - inline (1-worker pool, or a peel set that fits one grain —
		//     i.e. the serial build paths and the small-frontier tail
		//     rounds, where pool.For would run on the calling goroutine
		//     anyway): one merged pass over the peel set sorted
		//     ascending. First-come claiming in ascending vertex order
		//     IS the minimum rule — every peeling endpoint of an edge
		//     attempts it, and the smallest attempts first — and a
		//     single goroutine needs no atomics and no second pass.
		//
		//   - parallel: two sub-phases with a barrier between. B1 bids
		//     for every live incident edge with an atomic min; B2 lets
		//     each edge's unique winner settle it (the edead mark, round
		//     tag, and order-shard append are single-writer; only degree
		//     decrements and frontier tags stay atomic). Dead edges keep
		//     the orientation of the round that freed them — B1 skips
		//     them, and their claims can never equal a this-round vertex
		//     in B2. A vertex listed twice in one edge settles it once
		//     (the edead re-check).
		if pool.Workers() == 1 || len(peelSet) <= grain {
			slices.Sort(peelSet)
			localNext := loop.bufs.next[0]
			for _, v := range peelSet {
				for _, e := range g.VertexEdges(int(v)) {
					if s.edead[e] != 0 {
						continue
					}
					s.edead[e] = 1
					claim[e] = v
					res.RoundOf[e] = int32(round)
					for _, u := range g.EdgeVertices(int(e)) {
						if u == v {
							continue
						}
						s.deg[u]--
						if loop.scan == Frontier && s.deg[u] < s.k && loop.inFrontier[u] != epoch {
							loop.inFrontier[u] = epoch
							localNext = append(localNext, u)
						}
					}
				}
			}
			loop.bufs.next[0] = localNext
		} else {
			pool.For(len(peelSet), grain, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					v := peelSet[i]
					for _, e := range g.VertexEdges(int(v)) {
						if s.edead[e] == 0 {
							claimMin(&claim[e], v)
						}
					}
				}
			})
			pool.For(len(peelSet), grain, func(w, lo, hi int) {
				localNext := loop.bufs.next[w]
				for i := lo; i < hi; i++ {
					v := peelSet[i]
					for _, e := range g.VertexEdges(int(v)) {
						if claim[e] != v || s.edead[e] != 0 {
							continue
						}
						s.edead[e] = 1
						res.RoundOf[e] = int32(round)
						for _, u := range g.EdgeVertices(int(e)) {
							if u == v {
								continue
							}
							d := atomic.AddInt32(&s.deg[u], -1)
							if loop.scan == Frontier && d < s.k {
								if atomic.SwapUint32(&loop.inFrontier[u], epoch) != epoch {
									localNext = append(localNext, u)
								}
							}
						}
					}
				}
				loop.bufs.next[w] = localNext
			})
		}

		alive -= len(peelSet)
		res.Rounds = round
		res.SurvivorHistory = append(res.SurvivorHistory, alive)
		loop.advance()
	}

	// Reconstruct the round-major order from the round tags with a
	// counting sort over rounds: RoundStart is the prefix sum of the
	// per-round histogram, and scattering edges in ascending id order
	// leaves every round's segment already sorted — no per-round sort
	// and no order shards in the round loop, the same stable-counting-
	// sort trick as the CSR build in internal/hypergraph.
	counts := make([]int, res.Rounds+1)
	for e := 0; e < g.M; e++ {
		if t := res.RoundOf[e]; t > 0 {
			counts[t]++
		}
	}
	res.RoundStart = make([]int, res.Rounds+1)
	for t := 1; t <= res.Rounds; t++ {
		res.RoundStart[t] = res.RoundStart[t-1] + counts[t]
	}
	cursors := append([]int(nil), res.RoundStart[:res.Rounds+1]...)
	res.PeelOrder = make([]uint32, res.RoundStart[res.Rounds])
	for e := 0; e < g.M; e++ {
		if t := res.RoundOf[e]; t > 0 {
			res.PeelOrder[cursors[t-1]] = uint32(e)
			cursors[t-1]++
		}
	}
	s.finish(&res.Result)
	return res, nil
}

// claimMin lowers *addr to v if v is smaller, atomically — the
// deterministic tie-break for edges contended by several same-round
// peeling endpoints. NoVertex (max uint32) is the unclaimed value, so
// the first bid always lands.
func claimMin(addr *uint32, v uint32) {
	for {
		cur := atomic.LoadUint32(addr)
		if v >= cur {
			return
		}
		if atomic.CompareAndSwapUint32(addr, cur, v) {
			return
		}
	}
}

// ValidateEliminationOrder checks the contracts an OrderedResult must
// satisfy for the reverse round-major assignment sweeps to be sound:
//
//   - structural consistency: RoundStart brackets PeelOrder, each
//     segment is sorted by edge id, RoundOf matches the segment, every
//     peeled edge's free vertex is one of its endpoints, and no vertex
//     frees more than k-1 edges;
//   - the elimination property: every non-free endpoint of a round-t
//     edge that frees an edge at all frees it in a round strictly after
//     t (so processing rounds in reverse, with any order inside a
//     round, only reads finalized values).
//
// The elimination property is a theorem for k = 2 and checked here by
// construction for any input. Intended for tests and debugging; O(m·r).
func ValidateEliminationOrder(g *hypergraph.Hypergraph, ord *OrderedResult, k int) error {
	if len(ord.RoundStart) != ord.Rounds+1 || ord.RoundStart[0] != 0 ||
		ord.RoundStart[ord.Rounds] != len(ord.PeelOrder) {
		return fmt.Errorf("core: RoundStart %v inconsistent with %d rounds, %d peeled edges",
			ord.RoundStart, ord.Rounds, len(ord.PeelOrder))
	}
	if len(ord.PeelOrder)+ord.CoreEdges != g.M {
		return fmt.Errorf("core: %d peeled + %d core edges != m=%d", len(ord.PeelOrder), ord.CoreEdges, g.M)
	}
	freed := make([]int32, g.N)      // edges freed per vertex
	freedRound := make([]int32, g.N) // round in which the vertex freed (0: none)
	seen := make([]bool, g.M)
	for t := 1; t <= ord.Rounds; t++ {
		seg := ord.RoundSegment(t)
		for i, e := range seg {
			if i > 0 && seg[i-1] >= e {
				return fmt.Errorf("core: round %d segment not sorted at %d", t, i)
			}
			if seen[e] {
				return fmt.Errorf("core: edge %d peeled twice", e)
			}
			seen[e] = true
			if ord.RoundOf[e] != int32(t) {
				return fmt.Errorf("core: edge %d in round %d segment but RoundOf=%d", e, t, ord.RoundOf[e])
			}
			if ord.EdgeAlive[e] != 0 {
				return fmt.Errorf("core: peeled edge %d still alive", e)
			}
			v := ord.FreeVertex[e]
			if v == NoVertex {
				return fmt.Errorf("core: peeled edge %d has no free vertex", e)
			}
			endpoint := false
			for _, u := range g.EdgeVertices(int(e)) {
				if u == v {
					endpoint = true
				}
			}
			if !endpoint {
				return fmt.Errorf("core: free vertex %d not an endpoint of edge %d", v, e)
			}
			freed[v]++
			if freed[v] > int32(k-1) {
				return fmt.Errorf("core: vertex %d frees %d > k-1 edges", v, freed[v])
			}
			freedRound[v] = int32(t)
		}
	}
	for e := 0; e < g.M; e++ {
		if ord.RoundOf[e] == 0 {
			if ord.FreeVertex[e] != NoVertex {
				return fmt.Errorf("core: core edge %d has free vertex %d", e, ord.FreeVertex[e])
			}
			continue
		}
		for _, u := range g.EdgeVertices(e) {
			if u == ord.FreeVertex[e] {
				continue
			}
			if freedRound[u] != 0 && freedRound[u] <= ord.RoundOf[e] {
				return fmt.Errorf("core: edge %d (round %d) reads vertex %d finalized only in round %d",
					e, ord.RoundOf[e], u, freedRound[u])
			}
		}
	}
	return nil
}
