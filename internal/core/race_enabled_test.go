//go:build race

package core

// raceEnabled lets tests skip instances that are too large for the race
// detector's ~10× memory-access slowdown.
const raceEnabled = true
