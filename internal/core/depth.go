package core

import (
	"repro/internal/hypergraph"
)

// InCore marks, in a depth vector, a vertex that survives peeling (its
// depth is undefined; it is never removed).
const InCore = int32(-1)

// Depths returns, for every vertex, the round of the parallel peeling
// process in which it is removed (1-based), or InCore if it survives in
// the k-core. The depth vector refines Result.SurvivorHistory: the number
// of vertices with depth t equals the survivor drop at round t, and the
// maximum depth equals Result.Rounds.
//
// Depth is a structural quantity — it does not depend on how the peeling
// is executed (sequential, parallel, frontier, or full scan all induce
// the same depths), and it equals the BFS "peeling wave" distance the
// paper's branching-process analysis models. It is computed with a
// work-efficient sequential sweep, O(n + m·r).
func Depths(g *hypergraph.Hypergraph, k int) []int32 {
	validateK(k)
	deg := g.Degrees()
	depth := make([]int32, g.N)
	for v := range depth {
		depth[v] = InCore
	}
	edead := make([]uint8, g.M)

	// Round-layered BFS: current holds round t's peel set.
	current := make([]uint32, 0, g.N)
	next := make([]uint32, 0, g.N)
	k32 := int32(k)
	for v := 0; v < g.N; v++ {
		if deg[v] < k32 {
			current = append(current, uint32(v))
		}
	}
	for round := int32(1); len(current) > 0; round++ {
		// Mark the whole layer first so same-round neighbors do not
		// enqueue each other twice.
		for _, v := range current {
			depth[v] = round
		}
		next = next[:0]
		for _, v := range current {
			for _, e := range g.VertexEdges(int(v)) {
				if edead[e] != 0 {
					continue
				}
				// An edge dies in the round its first endpoint is peeled;
				// endpoints peeled in the same round also kill it (they
				// were all selected before any removal took effect).
				edead[e] = 1
				for _, u := range g.EdgeVertices(int(e)) {
					if u == v || depth[u] != InCore {
						continue
					}
					deg[u]--
					if deg[u] == k32-1 { // just crossed below k
						next = append(next, u)
					}
				}
			}
		}
		current, next = next, current
	}
	return depth
}

// Coreness returns, for every vertex, the largest k such that the vertex
// belongs to the k-core (0 for isolated vertices). It runs the classic
// bucket-queue peeling-order algorithm generalized to hypergraphs: at
// each step the minimum-degree vertex is removed and its coreness is the
// running maximum of those minimum degrees; removing a vertex removes
// its incident edges.
//
// Coreness connects the per-k views: vertex v survives Peel(g, k) iff
// Coreness(g)[v] >= k (tested as a cross-module invariant).
func Coreness(g *hypergraph.Hypergraph) []int32 {
	n := g.N
	deg := g.Degrees()
	coreness := make([]int32, n)

	// Bucket queue over degrees. maxDeg bounds bucket count.
	maxDeg := int32(0)
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]uint32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], uint32(v))
	}
	removed := make([]uint8, n)
	edead := make([]uint8, g.M)

	processed := 0
	cur := int32(0) // running max of min-degrees = current coreness level
	for d := int32(0); d <= maxDeg && processed < n; {
		if len(buckets[d]) == 0 {
			d++
			continue
		}
		v := buckets[d][len(buckets[d])-1]
		buckets[d] = buckets[d][:len(buckets[d])-1]
		if removed[v] != 0 || deg[v] != d {
			// Stale entry: the vertex moved to a lower bucket after this
			// entry was pushed (degrees only decrease), or is gone.
			continue
		}
		removed[v] = 1
		processed++
		if d > cur {
			cur = d
		}
		coreness[v] = cur
		for _, e := range g.VertexEdges(int(v)) {
			if edead[e] != 0 {
				continue
			}
			edead[e] = 1
			for _, u := range g.EdgeVertices(int(e)) {
				if u == v || removed[u] != 0 {
					continue
				}
				deg[u]--
				nd := deg[u]
				buckets[nd] = append(buckets[nd], u)
				if nd < d {
					// Removing v dropped a neighbor below the current
					// level; rewind the scan pointer.
					d = nd
				}
			}
		}
	}
	return coreness
}
