package threshold

import (
	"math"
	"testing"
)

func TestThresholdPaperValues(t *testing.T) {
	// Section 2 of the paper: c*_{2,3} ~ 0.818, c*_{2,4} ~ 0.772,
	// c*_{3,3} ~ 1.553. Section 7 refines c*_{2,4} ~ 0.77228.
	cases := []struct {
		k, r int
		want float64
		tol  float64
	}{
		{2, 3, 0.818, 0.001},
		{2, 4, 0.77228, 0.0001},
		{3, 3, 1.553, 0.001},
	}
	for _, c := range cases {
		got, _ := Threshold(c.k, c.r)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("Threshold(%d,%d) = %.5f, want %.5f +- %v", c.k, c.r, got, c.want, c.tol)
		}
	}
}

func TestThresholdKnownLiteratureValues(t *testing.T) {
	// Cross-checks against the peelability literature (these are the
	// "1/γ" constants for r-uniform peelable hypergraphs):
	// c*_{2,5} ~ 0.70178, c*_{2,6} ~ 0.63708.
	cases := []struct {
		k, r int
		want float64
	}{
		{2, 5, 0.70178},
		{2, 6, 0.63708},
	}
	for _, c := range cases {
		got, _ := Threshold(c.k, c.r)
		if math.Abs(got-c.want) > 0.001 {
			t.Errorf("Threshold(%d,%d) = %.5f, want %.5f", c.k, c.r, got, c.want)
		}
	}
}

func TestThresholdMatchesFixedPointTransition(t *testing.T) {
	// Independent oracle: c*(k,r) is where the density recursion's fixed
	// point transitions from 0 to positive. Locate that transition by
	// bisection on c and compare with the variational formula (2.1).
	for _, pr := range []struct{ k, r int }{{2, 3}, {2, 4}, {3, 3}, {3, 4}, {4, 3}} {
		lo, hi := 0.01, 5.0
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			if BetaFixedPoint(pr.k, pr.r, mid) > 1e-6 {
				hi = mid
			} else {
				lo = mid
			}
		}
		transition := (lo + hi) / 2
		cstar, _ := Threshold(pr.k, pr.r)
		if math.Abs(transition-cstar) > 5e-4 {
			t.Errorf("k=%d r=%d: fixed-point transition at %.5f, Threshold says %.5f",
				pr.k, pr.r, transition, cstar)
		}
	}
}

func TestThresholdArgminIsStationary(t *testing.T) {
	for _, c := range []struct{ k, r int }{{2, 3}, {2, 4}, {3, 3}, {3, 4}, {4, 5}} {
		cstar, xstar := Threshold(c.k, c.r)
		// The objective at points near x* must not be smaller.
		for _, dx := range []float64{-1e-3, 1e-3, -1e-2, 1e-2} {
			if f := Objective(c.k, c.r, xstar+dx); f < cstar-1e-9 {
				t.Errorf("k=%d r=%d: Objective(x*%+g) = %.9f < c* = %.9f", c.k, c.r, dx, f, cstar)
			}
		}
	}
}

func TestObjectiveBoundary(t *testing.T) {
	if f := Objective(2, 4, 0); !math.IsInf(f, 1) {
		t.Errorf("Objective at x=0 = %v, want +Inf", f)
	}
	if f := Objective(2, 4, -1); !math.IsInf(f, 1) {
		t.Errorf("Objective at x<0 = %v, want +Inf", f)
	}
}

func TestThresholdPanicsOnBadParams(t *testing.T) {
	for _, c := range []struct{ k, r int }{{1, 3}, {3, 1}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Threshold(%d,%d) did not panic", c.k, c.r)
				}
			}()
			Threshold(c.k, c.r)
		}()
	}
}

func TestGapSign(t *testing.T) {
	if g := Gap(2, 4, 0.7); g <= 0 {
		t.Errorf("Gap(2,4,0.7) = %v, want positive (below threshold)", g)
	}
	if g := Gap(2, 4, 0.85); g >= 0 {
		t.Errorf("Gap(2,4,0.85) = %v, want negative (above threshold)", g)
	}
}

func TestBetaFixedPointRegimes(t *testing.T) {
	// Below the threshold the fixed point collapses to ~0; above it is
	// strictly positive (Theorem 3 / Molloy).
	if b := BetaFixedPoint(2, 4, 0.7); b > 1e-8 {
		t.Errorf("BetaFixedPoint below threshold = %v, want ~0", b)
	}
	b := BetaFixedPoint(2, 4, 0.85)
	if b < 0.5 {
		t.Errorf("BetaFixedPoint above threshold = %v, want substantially positive", b)
	}
	// It must actually be a fixed point of the density map.
	next := 4 * 0.85 * math.Pow(1-math.Exp(-b), 3)
	if math.Abs(next-b) > 1e-9 {
		t.Errorf("fixed point violated: g(%v) = %v", b, next)
	}
}

func TestCoreFractionMatchesTable2Limit(t *testing.T) {
	// Table 2 (c = 0.85): the survivor counts converge to 775010 out of
	// 1e6, so the limiting core fraction is ~0.775010.
	got := CoreFraction(2, 4, 0.85)
	if math.Abs(got-0.775010) > 2e-5 {
		t.Errorf("CoreFraction(2,4,0.85) = %.6f, want ~0.775010", got)
	}
	if below := CoreFraction(2, 4, 0.7); below > 1e-6 {
		t.Errorf("CoreFraction below threshold = %v, want ~0", below)
	}
}

func TestFPrime0Regimes(t *testing.T) {
	// Equation (4.4): 0 < f'(0) < 1 above the threshold; f'(0) = 0 below.
	if fp := FPrime0(2, 4, 0.7); fp != 0 {
		t.Errorf("FPrime0 below threshold = %v, want 0", fp)
	}
	fp := FPrime0(2, 4, 0.85)
	if fp <= 0 || fp >= 1 {
		t.Errorf("FPrime0(2,4,0.85) = %v, want in (0,1)", fp)
	}
	// Closer to the threshold the contraction factor approaches 1
	// (this is why rounds blow up near c*).
	fpNear := FPrime0(2, 4, 0.78)
	if fpNear <= fp {
		t.Errorf("FPrime0 nearer threshold (%v) should exceed farther (%v)", fpNear, fp)
	}
}

func TestFPrime0IsDerivativeOfDensityMap(t *testing.T) {
	// Numerically differentiate g(β) = rc·Pr(Poisson(β)>=k-1)^{r-1} at β̂
	// and compare with the closed form (4.3).
	k, r, c := 2, 4, 0.85
	beta := BetaFixedPoint(k, r, c)
	g := func(b float64) float64 {
		return float64(r) * c * math.Pow(1-math.Exp(-b), float64(r-1))
	}
	h := 1e-6
	numeric := (g(beta+h) - g(beta-h)) / (2 * h)
	analytic := FPrime0(k, r, c)
	if math.Abs(numeric-analytic) > 1e-5 {
		t.Errorf("f'(0): numeric %v vs analytic %v", numeric, analytic)
	}
}

func TestRoundLeadConstant(t *testing.T) {
	// k=2, r=4: 1/log(3) ~ 0.9102.
	got := RoundLeadConstant(2, 4)
	if math.Abs(got-1/math.Log(3)) > 1e-12 {
		t.Errorf("RoundLeadConstant(2,4) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("RoundLeadConstant(2,2) did not panic")
		}
	}()
	RoundLeadConstant(2, 2)
}

func TestGaoLeadConstant(t *testing.T) {
	// The introduction's comparison with Gao's subsequent work: her
	// constant 1/log(k(r-1)/r) exceeds the paper's 1/log((k-1)(r-1))
	// (a larger constant = a weaker upper bound) for all valid (k, r)
	// except where both are undefined.
	for _, c := range []struct{ k, r int }{{2, 3}, {2, 4}, {3, 3}, {3, 4}, {4, 5}} {
		paper := RoundLeadConstant(c.k, c.r)
		gao := GaoLeadConstant(c.k, c.r)
		if gao <= paper {
			t.Errorf("k=%d r=%d: Gao constant %.4f not larger than paper's %.4f",
				c.k, c.r, gao, paper)
		}
	}
	// k=2, r=4: 1/log(2·3/4) = 1/log(1.5).
	want := 1 / math.Log(1.5)
	if got := GaoLeadConstant(2, 4); math.Abs(got-want) > 1e-12 {
		t.Errorf("GaoLeadConstant(2,4) = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("GaoLeadConstant(2,2) did not panic")
		}
	}()
	GaoLeadConstant(2, 2) // k(r-1)/r = 1: vacuous
}

func TestThresholdMonotonicity(t *testing.T) {
	// c* decreases in r for fixed k=2 (denser edges make cores easier),
	// and increases in k for fixed r (higher cores need more density).
	prev := math.Inf(1)
	for r := 3; r <= 7; r++ {
		c, _ := Threshold(2, r)
		if c >= prev {
			t.Errorf("c*(2,%d) = %v not decreasing (prev %v)", r, c, prev)
		}
		prev = c
	}
	prev = 0
	for k := 2; k <= 6; k++ {
		c, _ := Threshold(k, 3)
		if c <= prev {
			t.Errorf("c*(%d,3) = %v not increasing (prev %v)", k, c, prev)
		}
		prev = c
	}
}

func BenchmarkThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Threshold(2, 4)
	}
}
