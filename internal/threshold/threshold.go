// Package threshold computes the k-core appearance thresholds c*(k,r) for
// random r-uniform hypergraphs, following Equation (2.1) of Jiang,
// Mitzenmacher, and Thaler (SPAA 2014), which in turn is due to Molloy:
//
//	c*(k,r) = min_{x>0}  x / ( r * (1 - e^{-x} Σ_{j=0..k-2} x^j/j!)^{r-1} )
//
// Below c*(k,r) the k-core of G^r_{n,cn} is empty with high probability and
// parallel peeling finishes in O(log log n) rounds; above it the k-core is
// non-empty and peeling needs Ω(log n) rounds.
//
// The package also exposes the argmin x*, the derivative f'(0) from
// Equation (4.3) that governs the geometric convergence rate above the
// threshold, and the fixed point β̂ of the density recursion.
package threshold

import (
	"fmt"
	"math"

	"repro/internal/poisson"
)

// Objective returns the function minimized in Equation (2.1) at x:
// x / (r * Pr(Poisson(x) >= k-1)^{r-1}). It is +Inf at x <= 0.
func Objective(k, r int, x float64) float64 {
	if x <= 0 {
		return math.Inf(1)
	}
	den := poisson.RegularizedTail(k-2, x)
	if den <= 0 {
		return math.Inf(1)
	}
	return x / (float64(r) * math.Pow(den, float64(r-1)))
}

// validate panics on parameter combinations the paper excludes. The theory
// requires k, r >= 2 and k+r >= 5 (the case k = r = 2 is the classical
// 2-core of a graph and behaves differently).
func validate(k, r int) {
	if k < 2 || r < 2 {
		panic(fmt.Sprintf("threshold: need k, r >= 2, got k=%d r=%d", k, r))
	}
}

// Threshold returns c*(k,r) and the minimizing x*. It panics if k < 2 or
// r < 2. For k = r = 2 the objective's infimum is approached as x -> 0
// (the well-known c* = 1/2 for 2-cores of graphs is not produced by this
// formula); callers should treat that case separately, as the paper does.
func Threshold(k, r int) (cstar, xstar float64) {
	validate(k, r)

	// Bracket the minimum on a geometric grid, then refine with
	// golden-section search. The objective diverges at both ends
	// (like x^{2-r or 2-k} near 0 and like x/r at infinity), so a
	// three-point bracket always exists for k+r >= 5.
	const (
		gridLo  = 1e-4
		gridHi  = 1e4
		gridMul = 1.05
	)
	bestX, bestF := 0.0, math.Inf(1)
	for x := gridLo; x <= gridHi; x *= gridMul {
		if f := Objective(k, r, x); f < bestF {
			bestF, bestX = f, x
		}
	}
	lo, hi := bestX/gridMul, bestX*gridMul
	xstar = goldenSection(func(x float64) float64 { return Objective(k, r, x) }, lo, hi, 1e-13)
	return Objective(k, r, xstar), xstar
}

// goldenSection minimizes f on [lo, hi] assuming unimodality, stopping when
// the bracket is narrower than tol relative to its midpoint.
func goldenSection(f func(float64) float64, lo, hi, tol float64) float64 {
	const invPhi = 0.6180339887498949 // (sqrt(5)-1)/2
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol*(math.Abs(a)+math.Abs(b)+1e-300) {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}

// Gap returns ν = c*(k,r) − c, the distance from the threshold. Positive
// gaps mean c is below the threshold (peeling succeeds w.h.p.); Theorem 5
// shows the below-threshold round count carries an additive Θ(√(1/ν)) term.
func Gap(k, r int, c float64) float64 {
	cstar, _ := Threshold(k, r)
	return cstar - c
}

// BetaFixedPoint returns the largest fixed point β̂ of the density map
//
//	g(β) = rc * Pr(Poisson(β) >= k-1)^{r-1}
//
// (Equation (4.1)). Above the threshold β̂ > 0 and the k-core contains a
// λ̂ = Pr(Poisson(β̂) >= k) fraction of vertices; below the threshold the
// iteration collapses to 0. Iteration starts from β = rc, the round-1
// value, and is monotone decreasing, so convergence is guaranteed.
func BetaFixedPoint(k, r int, c float64) float64 {
	validate(k, r)
	rc := float64(r) * c
	beta := rc
	for i := 0; i < 100000; i++ {
		next := rc * math.Pow(poisson.RegularizedTail(k-2, beta), float64(r-1))
		if math.Abs(next-beta) < 1e-15*(1+beta) {
			return next
		}
		beta = next
	}
	return beta
}

// CoreFraction returns λ̂ = Pr(Poisson(β̂) >= k), the limiting fraction of
// vertices in the k-core (0 below the threshold, per Theorem 3 the core
// has size λ̂·n + o(n) above it).
func CoreFraction(k, r int, c float64) float64 {
	return poisson.Tail(k, BetaFixedPoint(k, r, c))
}

// FPrime0 evaluates Equation (4.3): the derivative of the one-round density
// map g(β) = rc·Pr(Poisson(β) >= k-1)^{r-1} at its fixed point β̂,
//
//	g'(β̂) = rc (r-1) (1 - e^{-β̂} S(k-2, β̂))^{r-2} · e^{-β̂} β̂^{k-2}/(k-2)!
//
// which, using the fixed-point identity rc·(...)^{r-1} = β̂, is exactly the
// paper's form (4.3). We evaluate the g' form because it stays well defined
// as β̂ -> 0 (the paper's substituted form is 0/0 there for k = 2).
//
// Above the threshold 0 < f'(0) < 1 and the per-round gap δ_i shrinks by
// exactly this factor, which is the engine of the Ω(log n) lower bound.
// Below the threshold β̂ = 0 and f'(0) = 0 — the regime change the paper
// highlights.
func FPrime0(k, r int, c float64) float64 {
	beta := BetaFixedPoint(k, r, c)
	if beta < 1e-12 {
		return 0
	}
	den := poisson.RegularizedTail(k-2, beta)
	km2Fact := 1.0
	for j := 2; j <= k-2; j++ {
		km2Fact *= float64(j)
	}
	rc := float64(r) * c
	return rc * float64(r-1) * math.Pow(den, float64(r-2)) *
		math.Exp(-beta) * math.Pow(beta, float64(k-2)) / km2Fact
}

// RoundLeadConstant returns 1/log((k-1)(r-1)), the leading constant of the
// below-threshold round bound of Theorems 1-2. It panics for k=r=2, where
// (k-1)(r-1) = 1 and the theorem does not apply.
func RoundLeadConstant(k, r int) float64 {
	validate(k, r)
	prod := float64((k - 1) * (r - 1))
	if prod <= 1 {
		panic("threshold: round constant undefined for k = r = 2")
	}
	return 1 / math.Log(prod)
}

// GaoLeadConstant returns 1/log(k(r-1)/r), the leading constant obtained
// by Gao's alternative (shorter) proof of the below-threshold upper
// bound, which the paper's introduction compares against its own sharper
// constant: RoundLeadConstant(k, r) <= GaoLeadConstant(k, r), with
// equality never attained for valid parameters. Panics when
// k(r-1)/r <= 1, where Gao's bound is vacuous.
func GaoLeadConstant(k, r int) float64 {
	validate(k, r)
	ratio := float64(k) * float64(r-1) / float64(r)
	if ratio <= 1 {
		panic("threshold: Gao constant undefined for k(r-1) <= r")
	}
	return 1 / math.Log(ratio)
}
