package cuckoo

import (
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/rng"
)

func graph(n, m, r int, seed uint64) *hypergraph.Hypergraph {
	return hypergraph.Partitioned(n, m, r, rng.New(seed))
}

func TestPeelingPlacementBelowThreshold(t *testing.T) {
	// load 0.7 < c*(2,3) ~ 0.818: peeling places everything.
	g := graph(30000, 21000, 3, 1)
	placement, ok := PlaceByPeeling(g)
	if !ok {
		t.Fatal("peeling placement failed below threshold")
	}
	if !ValidPlacement(g, placement, true) {
		t.Fatal("peeling placement invalid")
	}
}

func TestPeelingPlacementFailsAboveItsThreshold(t *testing.T) {
	// load 0.87: above c*(2,3) but below the orientability threshold
	// (~0.917) — the regime where peeling loses to random walk.
	g := graph(30000, 26100, 3, 2)
	placement, ok := PlaceByPeeling(g)
	if ok {
		t.Fatal("peeling placement claimed success at load 0.87")
	}
	// Partial placement must still be internally valid.
	if !ValidPlacement(g, placement, false) {
		t.Fatal("partial peeling placement invalid")
	}
}

func TestRandomWalkBeatsPeelingThreshold(t *testing.T) {
	// Same load 0.87 instance class: random walk succeeds w.h.p.
	g := graph(30000, 26100, 3, 3)
	placement, ok := PlaceByRandomWalk(g, 2000, rng.New(99))
	if !ok {
		t.Fatal("random walk failed at load 0.87 (below orientability threshold)")
	}
	if !ValidPlacement(g, placement, true) {
		t.Fatal("random-walk placement invalid")
	}
}

func TestRandomWalkFailsWayAboveThreshold(t *testing.T) {
	// load 0.96 > orientability threshold ~0.917: must fail.
	g := graph(10002, 9600, 3, 4)
	_, ok := PlaceByRandomWalk(g, 500, rng.New(7))
	if ok {
		t.Fatal("random walk claimed success at load 0.96")
	}
}

func TestPlacementsAgreeWhereBothSucceed(t *testing.T) {
	g := graph(12000, 8000, 4, 5)
	p1, ok1 := PlaceByPeeling(g)
	p2, ok2 := PlaceByRandomWalk(g, 1000, rng.New(8))
	if !ok1 || !ok2 {
		t.Fatal("a placement failed at low load")
	}
	if !ValidPlacement(g, p1, true) || !ValidPlacement(g, p2, true) {
		t.Fatal("invalid placement")
	}
}

func TestValidPlacementRejections(t *testing.T) {
	g := graph(30, 10, 3, 6)
	placement, ok := PlaceByPeeling(g)
	if !ok {
		t.Skip("tiny instance failed to peel")
	}
	// Wrong length.
	if ValidPlacement(g, placement[:5], true) {
		t.Error("short placement accepted")
	}
	// Cell not among candidates.
	bad := append([]uint32(nil), placement...)
	for v := uint32(0); v < uint32(g.N); v++ {
		isCandidate := false
		for _, u := range g.EdgeVertices(0) {
			if u == v {
				isCandidate = true
			}
		}
		if !isCandidate {
			bad[0] = v
			break
		}
	}
	if ValidPlacement(g, bad, true) {
		t.Error("placement with foreign cell accepted")
	}
	// Duplicate cell.
	bad = append([]uint32(nil), placement...)
	bad[1] = bad[0]
	if ValidPlacement(g, bad, true) {
		t.Error("placement with duplicated cell accepted")
	}
	// Incomplete placement rejected when complete=true.
	bad = append([]uint32(nil), placement...)
	bad[2] = NotPlaced
	if ValidPlacement(g, bad, true) {
		t.Error("incomplete placement accepted as complete")
	}
	if !ValidPlacement(g, bad, false) {
		t.Error("incomplete placement rejected as partial")
	}
}

func BenchmarkPlaceByPeeling(b *testing.B) {
	g := graph(131070, 90000, 3, 1) // n divisible by r
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlaceByPeeling(g)
	}
}

func BenchmarkPlaceByRandomWalk(b *testing.B) {
	g := graph(131070, 90000, 3, 1)
	gen := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlaceByRandomWalk(g, 1000, gen)
	}
}
