// Package cuckoo provides static r-ary cuckoo hashing placement — each
// item must occupy one of its r candidate cells, one cell per item — via
// two strategies whose contrast is one of the paper's motivating
// applications (Pagh & Rodler; Dietzfelbinger et al.):
//
//   - Peeling placement: if the item/cell hypergraph peels to an empty
//     2-core, the peel orientation (each item assigned to the vertex that
//     freed its edge) is a valid placement. Runs in linear time and
//     parallelizes with the paper's round process, but only works below
//     c*(2,r) (≈ 0.818 for r = 3).
//   - Random-walk insertion: the classic kick-out loop, which succeeds up
//     to the (higher) orientability threshold (≈ 0.917 for r = 3) but is
//     inherently sequential.
//
// The gap between the two thresholds is the price of peeling's speed; the
// ablation tests measure both sides of it.
package cuckoo

import (
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/rng"
)

// NotPlaced marks an item without a cell in a placement vector.
const NotPlaced = ^uint32(0)

// PlaceByPeeling attempts to place every edge (item) of g into one of its
// vertices (cells), at most one item per cell, by peeling to the 2-core.
// It returns the placement (item -> cell) and ok = true iff every item
// was placed (empty 2-core). On failure the partial placement covers
// exactly the peeled items.
func PlaceByPeeling(g *hypergraph.Hypergraph) (placement []uint32, ok bool) {
	res := core.Sequential(g, 2)
	return res.FreeVertex, res.Empty()
}

// PlaceByRandomWalk places items one at a time: each item picks a random
// candidate cell; if occupied, the occupant is evicted and re-placed the
// same way, up to maxKicks total evictions per insertion. Returns the
// placement and ok = false if any insertion exceeded its kick budget.
func PlaceByRandomWalk(g *hypergraph.Hypergraph, maxKicks int, gen *rng.RNG) (placement []uint32, ok bool) {
	cellItem := make([]uint32, g.N) // cell -> item, NotPlaced if empty
	for i := range cellItem {
		cellItem[i] = NotPlaced
	}
	placement = make([]uint32, g.M)
	for i := range placement {
		placement[i] = NotPlaced
	}
	ok = true
	for e := 0; e < g.M; e++ {
		item := uint32(e)
		kicks := 0
		for {
			vs := g.EdgeVertices(int(item))
			// Take a free candidate if one exists.
			placed := false
			for _, v := range vs {
				if cellItem[v] == NotPlaced {
					cellItem[v] = item
					placement[item] = v
					placed = true
					break
				}
			}
			if placed {
				break
			}
			if kicks >= maxKicks {
				ok = false
				placement[item] = NotPlaced
				break
			}
			// Evict a random candidate's occupant.
			v := vs[gen.Intn(len(vs))]
			victim := cellItem[v]
			cellItem[v] = item
			placement[item] = v
			item = victim
			placement[item] = NotPlaced
			kicks++
		}
	}
	return placement, ok
}

// ValidPlacement checks a placement vector: every placed item occupies
// one of its candidate cells and no cell holds two items. complete
// requires every item placed.
func ValidPlacement(g *hypergraph.Hypergraph, placement []uint32, complete bool) bool {
	if len(placement) != g.M {
		return false
	}
	seen := make(map[uint32]bool, g.M)
	for e := 0; e < g.M; e++ {
		cell := placement[e]
		if cell == NotPlaced {
			if complete {
				return false
			}
			continue
		}
		if seen[cell] {
			return false
		}
		seen[cell] = true
		found := false
		for _, v := range g.EdgeVertices(e) {
			if v == cell {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
