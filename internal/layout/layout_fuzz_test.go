package layout

import (
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzLayoutOpen throws arbitrary payloads at Open, mirroring
// iblt.FuzzUnmarshalBinary: the parser must either reject with
// ErrBadImage/ErrUnaligned or produce a view whose geometry matches the
// payload exactly — never panic, never allocate beyond the payload's
// implied size (the views are zero-copy, so an accepted image allocates
// only the Image struct).
func FuzzLayoutOpen(f *testing.F) {
	bl := NewBloomier(3, [Arity]uint64{4, 5, 6}, 10, 10)
	for i := range bl.Slots {
		bl.Slots[i] = uint64(i)
	}
	f.Add(append([]byte(nil), bl.Marshal()...))

	mp := NewMPHF(8, [Arity]uint64{7, 8, 9}, 12, 8)
	for i := range mp.G {
		mp.G[i] = uint8(i % 3)
	}
	f.Add(append([]byte(nil), mp.Marshal()...))

	f.Add([]byte{})
	f.Add([]byte("SFN1"))
	f.Add(append([]byte(nil), bl.Bytes()[:HeaderSize]...))

	huge := append([]byte(nil), bl.Bytes()...)
	binary.LittleEndian.PutUint64(huge[56:], 1<<62)
	f.Add(huge)

	wrongKind := append([]byte(nil), mp.Bytes()...)
	binary.LittleEndian.PutUint16(wrongKind[6:], uint16(KindBloomier))
	f.Add(wrongKind)

	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := Open(data)
		if err != nil {
			if !errors.Is(err, ErrBadImage) && !errors.Is(err, ErrUnaligned) {
				t.Fatalf("unexpected error type: %v", err)
			}
			return
		}
		// Accepted: the geometry must account for every payload byte.
		if got, want := size(im.Kind, im.SubSize), len(data); got != want {
			t.Fatalf("accepted %d-byte payload but geometry implies %d", want, got)
		}
		if im.SubSize < 2 || im.Keys < 0 || im.Keys > im.Vertices() {
			t.Fatalf("accepted out-of-contract geometry keys=%d subSize=%d", im.Keys, im.SubSize)
		}
		switch im.Kind {
		case KindMPHF:
			if len(im.G) != im.Vertices() || len(im.Used) != (im.Vertices()+63)/64 ||
				len(im.Rank) != len(im.Used)+1 || im.Slots != nil {
				t.Fatal("MPHF views inconsistent with geometry")
			}
		case KindBloomier:
			if len(im.Slots) != im.Vertices() || im.G != nil {
				t.Fatal("Bloomier views inconsistent with geometry")
			}
		default:
			t.Fatalf("accepted kind %v", im.Kind)
		}
		// A valid image must round-trip byte-identically through
		// Marshal (re-sealing unchanged bytes is the identity).
		if got := im.Marshal(); len(got) != len(data) {
			t.Fatalf("round-trip size %d != %d", len(got), len(data))
		}
		// And re-open cleanly.
		if _, err := Open(im.Bytes()); err != nil {
			t.Fatalf("re-open of accepted image failed: %v", err)
		}
	})
}
