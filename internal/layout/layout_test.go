package layout

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"unsafe"
)

// testBloomier builds a tiny sealed Bloomier image by hand.
func testBloomier(t testing.TB, subSize int) *Image {
	t.Helper()
	im := NewBloomier(7, [Arity]uint64{11, 22, 33}, subSize, subSize)
	for i := range im.Slots {
		im.Slots[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	im.Marshal()
	return im
}

// testMPHF builds a tiny sealed MPHF image by hand.
func testMPHF(t testing.TB, subSize int) *Image {
	t.Helper()
	im := NewMPHF(9, [Arity]uint64{1, 2, 3}, subSize, subSize)
	for i := range im.G {
		im.G[i] = uint8(i % 3)
	}
	for i := range im.Used {
		im.Used[i] = 0xf0f0f0f0f0f0f0f0
	}
	var r uint32
	for i := range im.Used {
		im.Rank[i] = r
		r += 32
	}
	im.Rank[len(im.Used)] = r
	im.Marshal()
	return im
}

func TestRoundTripBloomier(t *testing.T) {
	im := testBloomier(t, 100)
	got, err := Open(im.Bytes())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got.Kind != KindBloomier || got.Seed != im.Seed || got.HSeed != im.HSeed ||
		got.Keys != im.Keys || got.SubSize != im.SubSize {
		t.Fatalf("header mismatch: %+v vs %+v", got, im)
	}
	if len(got.Slots) != len(im.Slots) {
		t.Fatalf("slots len %d, want %d", len(got.Slots), len(im.Slots))
	}
	for i := range im.Slots {
		if got.Slots[i] != im.Slots[i] {
			t.Fatalf("slot %d differs", i)
		}
	}
}

func TestRoundTripMPHF(t *testing.T) {
	im := testMPHF(t, 50)
	got, err := Open(im.Bytes())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got.Kind != KindMPHF || got.Seed != im.Seed || got.HSeed != im.HSeed {
		t.Fatal("header mismatch")
	}
	if !bytes.Equal(got.G, im.G) {
		t.Fatal("g mismatch")
	}
	for i := range im.Used {
		if got.Used[i] != im.Used[i] {
			t.Fatalf("used word %d differs", i)
		}
	}
	for i := range im.Rank {
		if got.Rank[i] != im.Rank[i] {
			t.Fatalf("rank %d differs", i)
		}
	}
}

// TestOpenIsZeroCopy pins the aliasing contract: every view of an
// opened image points into the input slice — no per-array copies.
func TestOpenIsZeroCopy(t *testing.T) {
	check := func(t *testing.T, data []byte, views ...unsafe.Pointer) {
		base := uintptr(unsafe.Pointer(unsafe.SliceData(data)))
		for i, v := range views {
			p := uintptr(v)
			if p < base || p >= base+uintptr(len(data)) {
				t.Fatalf("view %d does not alias the image bytes", i)
			}
		}
	}
	t.Run("bloomier", func(t *testing.T) {
		data := testBloomier(t, 64).Bytes()
		im, err := Open(data)
		if err != nil {
			t.Fatal(err)
		}
		check(t, data, unsafe.Pointer(unsafe.SliceData(im.Slots)))
		// Aliasing is observable: mutate the bytes, the view sees it.
		binary.LittleEndian.PutUint64(data[HeaderSize:], 0xdeadbeef)
		if im.Slots[0] != 0xdeadbeef {
			t.Fatal("Slots view did not observe a byte-level write")
		}
	})
	t.Run("mphf", func(t *testing.T) {
		data := testMPHF(t, 64).Bytes()
		im, err := Open(data)
		if err != nil {
			t.Fatal(err)
		}
		check(t, data,
			unsafe.Pointer(unsafe.SliceData(im.G)),
			unsafe.Pointer(unsafe.SliceData(im.Used)),
			unsafe.Pointer(unsafe.SliceData(im.Rank)))
	})
}

// TestOpenRejectsAdversarialGeometry mirrors the iblt wire hardening:
// hostile headers must come back as ErrBadImage without huge
// allocations or panics, before any size arithmetic can overflow.
func TestOpenRejectsAdversarialGeometry(t *testing.T) {
	valid := func() []byte {
		return append([]byte(nil), testBloomier(t, 32).Bytes()...)
	}
	cases := map[string]func([]byte) []byte{
		"short":       func(d []byte) []byte { return d[:HeaderSize-1] },
		"bad magic":   func(d []byte) []byte { d[0] = 'X'; return d },
		"bad version": func(d []byte) []byte { binary.LittleEndian.PutUint16(d[4:], 99); return d },
		"bad kind":    func(d []byte) []byte { binary.LittleEndian.PutUint16(d[6:], 7); return d },
		"subSize 2^62 (overflows size)": func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[56:], 1<<62)
			return d
		},
		"subSize 2^63 (negative as int)": func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[56:], 1<<63)
			return d
		},
		"subSize max uint64": func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[56:], ^uint64(0))
			return d
		},
		"subSize tuned to wrap size check": func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[56:], (1<<64-1)/(Arity*8)+1)
			return d
		},
		"subSize one too many": func(d []byte) []byte {
			cur := binary.LittleEndian.Uint64(d[56:])
			binary.LittleEndian.PutUint64(d[56:], cur+1)
			return d
		},
		"subSize zero": func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[56:], 0)
			return d
		},
		"subSize one": func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[56:], 1)
			return d
		},
		"keys exceed vertices": func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[48:], ^uint64(0))
			return d
		},
		"truncated payload": func(d []byte) []byte { return d[:len(d)-8] },
		"extended payload":  func(d []byte) []byte { return append(d, 0) },
		"flipped slot byte (checksum)": func(d []byte) []byte {
			d[HeaderSize+3] ^= 1
			return d
		},
		"flipped seed byte (checksum)": func(d []byte) []byte {
			d[16] ^= 1
			return d
		},
	}
	for name, corrupt := range cases {
		if _, err := Open(Aligned(corrupt(valid()))); !errors.Is(err, ErrBadImage) {
			t.Errorf("%s: err = %v, want ErrBadImage", name, err)
		}
	}
}

func TestOpenRejectsUnaligned(t *testing.T) {
	data := testBloomier(t, 16).Bytes()
	buf := make([]byte, len(data)+1)
	// Force a misaligned base: whichever parity the allocation has, one
	// of the two windows is odd.
	for _, off := range []int{0, 1} {
		window := buf[off : off+len(data)]
		if uintptr(unsafe.Pointer(unsafe.SliceData(window)))&7 == 0 {
			continue
		}
		copy(window, data)
		if _, err := Open(window); !errors.Is(err, ErrUnaligned) {
			t.Fatalf("unaligned open: err = %v, want ErrUnaligned", err)
		}
		// Aligned repairs it.
		if _, err := Open(Aligned(window)); err != nil {
			t.Fatalf("Open(Aligned(...)): %v", err)
		}
	}
}

// TestMarshalReseals checks that mutating a built image and re-sealing
// produces a checksum Open accepts, while stale checksums are rejected.
func TestMarshalReseals(t *testing.T) {
	im := testBloomier(t, 8)
	im.Slots[0] = 42 // mutate after the first Marshal
	if _, err := Open(im.Bytes()); !errors.Is(err, ErrBadImage) {
		t.Fatalf("stale checksum accepted: %v", err)
	}
	if _, err := Open(im.Marshal()); err != nil {
		t.Fatalf("re-sealed image rejected: %v", err)
	}
}

func TestVertexTripleInParts(t *testing.T) {
	hseed := [Arity]uint64{3, 5, 7}
	const subSize = 1000
	for x := uint64(0); x < 5000; x++ {
		vs := VertexTriple(hseed, subSize, x)
		for j, v := range vs {
			if v < uint32(j*subSize) || v >= uint32((j+1)*subSize) {
				t.Fatalf("key %d part %d: vertex %d out of part", x, j, v)
			}
		}
	}
}
