//go:build faultinject

package layout

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// A crash injected between write and fsync/rename must never leave a
// file at the target path that Open accepts — the acceptance criterion
// for crash-safe persistence.
func TestWriteFileCrashLeavesNoTornImage(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "table.sfn")
	img := testBloomier(t, 64).Bytes()

	crash := errors.New("injected crash")
	faultinject.Arm(faultinject.LayoutWrite, faultinject.FailFirst(1, crash))

	err := WriteFile(path, img)
	if !errors.Is(err, crash) {
		t.Fatalf("WriteFile = %v, want the injected crash", err)
	}
	// The target path must not exist: the rename never happened.
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("target file exists after injected crash (stat err %v)", serr)
	}
	// The leftover temp file — what a real crash leaves — must exist
	// and must NOT be something Open would serve: the temp name never
	// matches the image path a reader opens, and even read directly it
	// is only accepted if it is a complete image (here it is, but only
	// because the injected crash hit after the full write; truncate it
	// to model a mid-write crash and verify rejection).
	ents, err2 := os.ReadDir(dir)
	if err2 != nil {
		t.Fatal(err2)
	}
	var tmp string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			tmp = filepath.Join(dir, e.Name())
		}
	}
	if tmp == "" {
		t.Fatal("no leftover temp file after injected crash")
	}
	if terr := os.Truncate(tmp, int64(len(img)/2)); terr != nil {
		t.Fatal(terr)
	}
	torn, rerr := os.ReadFile(tmp)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if _, oerr := Open(Aligned(torn)); !errors.Is(oerr, ErrBadImage) {
		t.Errorf("Open accepted a torn temp image: %v", oerr)
	}
}

// A callback that scribbles on the temp file before failing models a
// crash mid-write; the half-written bytes must be rejected by Open.
func TestWriteFileScribbledTempIsRejected(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "table.sfn")
	img := testMPHF(t, 64).Bytes()

	crash := errors.New("injected torn write")
	faultinject.Arm(faultinject.LayoutWrite, func(hit int64, arg any) error {
		f := arg.(*os.File)
		// Flip bytes in the middle of the payload, as a torn page would.
		if _, err := f.WriteAt([]byte{0xff, 0x00, 0xff, 0x00}, int64(len(img)/2)); err != nil {
			t.Fatal(err)
		}
		return crash
	})

	if err := WriteFile(path, img); !errors.Is(err, crash) {
		t.Fatalf("WriteFile = %v, want injected error", err)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatal("target file exists after injected torn write")
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(dir, e.Name()))
		if rerr != nil {
			t.Fatal(rerr)
		}
		if _, oerr := Open(Aligned(data)); oerr == nil {
			t.Error("Open accepted the scribbled temp image")
		}
	}
}

// Without an armed failpoint the tagged build behaves exactly like the
// production one.
func TestWriteFileUnarmedSucceeds(t *testing.T) {
	faultinject.Reset()
	path := filepath.Join(t.TempDir(), "ok.sfn")
	img := testBloomier(t, 32).Bytes()
	if err := WriteFile(path, img); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Aligned(data)); err != nil {
		t.Fatal(err)
	}
}
