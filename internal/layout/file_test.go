package layout

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	im := testBloomier(t, 64)
	path := filepath.Join(t.TempDir(), "table.sfn")
	if err := WriteFile(path, im.Bytes()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, im.Bytes()) {
		t.Fatal("file content differs from the written image")
	}
	if _, err := Open(Aligned(data)); err != nil {
		t.Fatalf("Open rejected a WriteFile image: %v", err)
	}
	// No temp files left behind on success.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("directory holds %d entries after WriteFile, want 1", len(ents))
	}
}

func TestWriteFileOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "table.sfn")
	old := testBloomier(t, 32).Bytes()
	if err := WriteFile(path, old); err != nil {
		t.Fatal(err)
	}
	im2 := testMPHF(t, 48)
	if err := WriteFile(path, im2.Bytes()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, im2.Bytes()) {
		t.Fatal("overwrite did not replace the file content")
	}
}

func TestWriteFileBadDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.sfn"), []byte("data"))
	if err == nil {
		t.Fatal("WriteFile into a missing directory succeeded")
	}
}
