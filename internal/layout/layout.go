// Package layout defines the versioned flat byte layout that connects
// the build-time and serve-time representations of the peeling-built
// static functions (the BDZ MPHF and the Bloomier filter): builders
// produce a contiguous, checksummed little-endian image, and lookups
// run against a strictly validated zero-copy view of the same bytes —
// whether those bytes came out of a fresh build, os.ReadFile, or an
// mmap'd read-only file.
//
// # Format (version 1)
//
// Every image starts with a fixed 64-byte header:
//
//	off  size  field
//	  0     4  magic "SFN1"
//	  4     2  version (uint16, = 1)
//	  6     2  kind (uint16: 1 = MPHF, 2 = Bloomier)
//	  8     8  checksum (uint64 over the whole image minus this field)
//	 16     8  seed (the successful build attempt's seed)
//	 24    24  hseed[0..2] (the three vertex-hash seeds)
//	 48     8  keys (number of build keys)
//	 56     8  subSize (vertices per part; 3 parts)
//
// followed by the kind's arrays, each starting at an 8-byte-aligned
// offset so the uint64/uint32 views can alias the bytes in place:
//
//	MPHF:     g[3·subSize]uint8, pad8, used[⌈n/64⌉]uint64, rank[⌈n/64⌉+1]uint32, pad8
//	Bloomier: slots[3·subSize]uint64
//
// # Zero-copy contract
//
// Open never copies an array: the G/Used/Rank/Slots views alias the
// input bytes, so a multi-gigabyte image costs no decode allocation and
// may live in a read-only mapping. The price is an alignment rule — the
// image base must be 8-byte aligned (heap allocations and mmap both
// are; Aligned repairs an unaligned slice by copying). Every geometry
// field is attacker-controlled and is bounded by the payload before any
// size arithmetic, mirroring iblt.UnmarshalBinary: a hostile header is
// rejected with ErrBadImage without large allocation or panic, and the
// checksum rejects silent corruption of the arrays.
package layout

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"

	"repro/internal/rng"
)

// Kind identifies which static structure an image holds.
type Kind uint16

const (
	// KindMPHF is a BDZ minimal perfect hash function image.
	KindMPHF Kind = 1
	// KindBloomier is a Bloomier-filter (static key → value map) image.
	KindBloomier Kind = 2
)

// String implements fmt.Stringer for diagnostics (peeltool dump).
func (k Kind) String() string {
	switch k {
	case KindMPHF:
		return "mphf"
	case KindBloomier:
		return "bloomier"
	default:
		return fmt.Sprintf("kind(%d)", uint16(k))
	}
}

const (
	magic = "SFN1"
	// Version is the current format version.
	Version = 1
	// HeaderSize is the fixed header length; all array sections follow
	// it at 8-byte-aligned offsets.
	HeaderSize = 64
	// Arity is the number of vertex hashes per key — both layouts are
	// 3-uniform (BDZ / Bloomier use three hash positions).
	Arity = 3
)

// ErrBadImage is returned by Open for corrupt, truncated, or hostile
// images (bad magic/version/kind, geometry the payload cannot hold,
// checksum mismatch).
var ErrBadImage = errors.New("layout: bad image")

// ErrUnaligned is returned by Open when the image base is not 8-byte
// aligned, which would make the zero-copy uint64/uint32 views illegal.
// Heap-allocated buffers and mmap'd files are always aligned; repair an
// unaligned slice (e.g. a subslice of a larger read) with Aligned.
var ErrUnaligned = errors.New("layout: image base not 8-byte aligned")

// Image is an open flat image: the parsed header fields plus zero-copy
// array views into the underlying bytes. The non-nil views depend on
// Kind (G/Used/Rank for MPHF, Slots for Bloomier). Images returned by
// the New constructors are writable by the builder that owns them;
// images returned by Open must be treated as read-only — they may alias
// a read-only mapping.
type Image struct {
	data []byte

	Kind    Kind
	Seed    uint64        // successful attempt seed
	HSeed   [Arity]uint64 // vertex-hash seeds
	Keys    int           // number of build keys
	SubSize int           // vertices per part (Vertices() = 3·SubSize)

	// MPHF sections.
	G    []uint8  // 2-bit g values, one per byte
	Used []uint64 // bitmap of selected vertices
	Rank []uint32 // per-word prefix popcounts over Used

	// Bloomier section.
	Slots []uint64 // XOR slot array
}

// VertexTriple is the serve-time hashing rule shared by every image
// kind: key x selects one vertex per part, part j drawn by
// multiply-shift from Mix64(x ^ hseed[j]). It is part of the format
// contract — builders and lookups must agree on it byte for byte.
func VertexTriple(hseed [Arity]uint64, subSize int, x uint64) [Arity]uint32 {
	var vs [Arity]uint32
	for j := 0; j < Arity; j++ {
		h := rng.Mix64(x ^ hseed[j])
		vs[j] = uint32(j*subSize) + uint32((h>>32)*uint64(subSize)>>32)
	}
	return vs
}

// Vertices returns the total vertex count n = 3·SubSize.
func (im *Image) Vertices() int { return im.SubSize * Arity }

// Bytes returns the image's backing bytes without copying. For a
// freshly built image call Marshal first (or instead) so the checksum
// covers the final array contents.
func (im *Image) Bytes() []byte { return im.data }

// Len returns the image size in bytes.
func (im *Image) Len() int { return len(im.data) }

// Marshal seals the image — recomputes the header checksum over the
// current array contents — and returns the backing bytes. It performs
// no copy: the returned slice is the image itself, contiguous and ready
// for os.WriteFile or a network send, and Open of those exact bytes
// reconstructs an identical view.
//
//peelvet:deterministic
func (im *Image) Marshal() []byte {
	binary.LittleEndian.PutUint64(im.data[8:], imageChecksum(im.data))
	return im.data
}

// mphfOffsets returns the section offsets of an MPHF image with the
// given subSize. Callers must have bounded subSize so that no product
// here overflows (Open checks subSize ≤ payload/Arity first).
func mphfOffsets(subSize int) (gOff, usedOff, rankOff, total, words int) {
	n := subSize * Arity
	gOff = HeaderSize
	usedOff = gOff + align8(n)
	words = (n + 63) / 64
	rankOff = usedOff + words*8
	total = rankOff + align8((words+1)*4)
	return
}

func align8(n int) int { return (n + 7) &^ 7 }

// size returns the total image size for a kind and subSize.
func size(kind Kind, subSize int) int {
	if kind == KindBloomier {
		return HeaderSize + subSize*Arity*8
	}
	_, _, _, total, _ := mphfOffsets(subSize)
	return total
}

// NewMPHF allocates a writable zeroed MPHF image with the header fields
// filled in; the builder writes G/Used/Rank in place and calls Marshal
// to seal it. subSize must be ≥ 2 and keys ≤ 3·subSize (the builders
// guarantee both).
func NewMPHF(seed uint64, hseed [Arity]uint64, keys, subSize int) *Image {
	return newImage(KindMPHF, seed, hseed, keys, subSize)
}

// NewBloomier allocates a writable zeroed Bloomier image; the builder
// writes Slots in place and calls Marshal to seal it.
func NewBloomier(seed uint64, hseed [Arity]uint64, keys, subSize int) *Image {
	return newImage(KindBloomier, seed, hseed, keys, subSize)
}

// newImage allocates the aligned backing buffer. Panics if the geometry
// is invalid — the exported builders guarantee both arguments, so a trip
// here is a bug in this package, not bad input.
func newImage(kind Kind, seed uint64, hseed [Arity]uint64, keys, subSize int) *Image {
	if subSize < 2 || keys < 0 || keys > subSize*Arity {
		panic(fmt.Sprintf("layout: invalid geometry keys=%d subSize=%d", keys, subSize))
	}
	total := size(kind, subSize)
	// Heap []byte allocations of this size are 8-aligned in practice,
	// but the zero-copy views make that a hard requirement, so
	// over-allocate and slice to a provably aligned base.
	buf := make([]byte, total+7)
	off := int(-uintptr(unsafe.Pointer(unsafe.SliceData(buf))) & 7)
	data := buf[off : off+total : off+total]

	copy(data, magic)
	binary.LittleEndian.PutUint16(data[4:], Version)
	binary.LittleEndian.PutUint16(data[6:], uint16(kind))
	binary.LittleEndian.PutUint64(data[16:], seed)
	for j, h := range hseed {
		binary.LittleEndian.PutUint64(data[24+8*j:], h)
	}
	binary.LittleEndian.PutUint64(data[48:], uint64(keys))
	binary.LittleEndian.PutUint64(data[56:], uint64(subSize))

	im := &Image{data: data, Kind: kind, Seed: seed, HSeed: hseed, Keys: keys, SubSize: subSize}
	im.view()
	return im
}

// Open validates data as a flat image and returns a zero-copy view over
// it: no array is decoded or copied, the views alias data in place, so
// data must stay immutable (and mapped) for the life of the Image.
// Validation is strict and allocation-free in the rejection paths —
// every geometry field is bounded by the payload before any size
// arithmetic, the total length must match the geometry exactly, and the
// checksum must match — so hostile images of any shape return
// ErrBadImage (or ErrUnaligned) rather than panicking or allocating.
func Open(data []byte) (*Image, error) {
	if len(data) < HeaderSize || string(data[:4]) != magic {
		return nil, fmt.Errorf("%w: missing header", ErrBadImage)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: version %d", ErrBadImage, v)
	}
	kind := Kind(binary.LittleEndian.Uint16(data[6:]))
	// subSize and keys are attacker-controlled: bound subSize by what
	// the payload can actually hold BEFORE any size arithmetic, so the
	// expected-size computation can neither overflow int nor justify a
	// huge allocation (cf. iblt.UnmarshalBinary).
	var perSub uint64 // minimum payload bytes per unit of subSize
	switch kind {
	case KindMPHF:
		perSub = Arity // the g array alone: 3 bytes
	case KindBloomier:
		perSub = Arity * 8 // the slot array: 24 bytes
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrBadImage, uint16(kind))
	}
	payload := uint64(len(data) - HeaderSize)
	sub64 := binary.LittleEndian.Uint64(data[56:])
	if sub64 < 2 || sub64 > payload/perSub {
		return nil, fmt.Errorf("%w: subSize %d exceeds %d-byte payload", ErrBadImage, sub64, len(data))
	}
	subSize := int(sub64)
	n := subSize * Arity
	keys64 := binary.LittleEndian.Uint64(data[48:])
	if keys64 > uint64(n) {
		return nil, fmt.Errorf("%w: %d keys exceed %d vertices", ErrBadImage, keys64, n)
	}
	if want := size(kind, subSize); len(data) != want {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrBadImage, len(data), want)
	}
	if uintptr(unsafe.Pointer(unsafe.SliceData(data)))&7 != 0 {
		return nil, ErrUnaligned
	}
	if got, want := imageChecksum(data), binary.LittleEndian.Uint64(data[8:]); got != want {
		return nil, fmt.Errorf("%w: checksum %#x, want %#x", ErrBadImage, got, want)
	}

	im := &Image{
		data:    data,
		Kind:    kind,
		Seed:    binary.LittleEndian.Uint64(data[16:]),
		Keys:    int(keys64),
		SubSize: subSize,
	}
	for j := range im.HSeed {
		im.HSeed[j] = binary.LittleEndian.Uint64(data[24+8*j:])
	}
	im.view()
	return im, nil
}

// view builds the kind's zero-copy array views over data. The offsets
// are 8-aligned multiples into an 8-aligned base, so the unsafe casts
// honor the alignment rules of uint64 and uint32.
func (im *Image) view() {
	d := im.data
	n := im.SubSize * Arity
	switch im.Kind {
	case KindMPHF:
		gOff, usedOff, rankOff, _, words := mphfOffsets(im.SubSize)
		im.G = d[gOff : gOff+n : gOff+n]
		im.Used = unsafe.Slice((*uint64)(unsafe.Pointer(&d[usedOff])), words)
		im.Rank = unsafe.Slice((*uint32)(unsafe.Pointer(&d[rankOff])), words+1)
	case KindBloomier:
		im.Slots = unsafe.Slice((*uint64)(unsafe.Pointer(&d[HeaderSize])), n)
	}
}

// Aligned returns data unchanged when its base is already 8-byte
// aligned, and an aligned copy otherwise — the escape hatch for byte
// slices of unknown provenance (subslices of pooled buffers, decoded
// network frames) headed for Open. os.ReadFile and mmap results are
// aligned already and pass through untouched.
func Aligned(data []byte) []byte {
	if len(data) == 0 || uintptr(unsafe.Pointer(unsafe.SliceData(data)))&7 == 0 {
		return data
	}
	buf := make([]byte, len(data)+7)
	off := int(-uintptr(unsafe.Pointer(unsafe.SliceData(buf))) & 7)
	out := buf[off : off+len(data) : off+len(data)]
	copy(out, data)
	return out
}

// imageChecksum hashes every image byte except the checksum field
// itself: the magic/version/kind word, then everything from the seed
// on. It is a Mix64 chain over 8-byte words — fast corruption
// detection, not cryptographic integrity.
func imageChecksum(data []byte) uint64 {
	h := chainsum(0x73666e315f696d67, data[:8]) // "sfn1_img"
	return chainsum(h, data[16:])
}

func chainsum(h uint64, b []byte) uint64 {
	h ^= uint64(len(b)) * 0x9e3779b97f4a7c15
	for len(b) >= 8 {
		h = rng.Mix64(h ^ binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		h = rng.Mix64(h ^ binary.LittleEndian.Uint64(tail[:]))
	}
	return h
}
