package layout

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// WriteFile persists a sealed image (or any byte blob) to path
// crash-safely: the bytes go to a temporary file in the same directory,
// the file is fsynced, atomically renamed over path, and the directory
// is fsynced so the rename itself survives a power cut. A reader
// (Open, or a peeltool query on the image file) therefore sees either
// the complete previous file or the complete new one — never a torn
// write. On any error the target file is untouched; a leftover
// .tmp-* file from an interrupted write is garbage Open would reject
// (its checksum cannot seal), safe to delete.
//
// This is the only write path the runtime uses for images
// (cmd/peeltool build, serving-layer persistence), pairing with Open's
// checksum verification: torn writes are prevented here, and any
// corruption that slips past (bit rot, truncation by other tools) is
// caught there.
func WriteFile(path string, data []byte) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("layout: create temp: %w", err)
	}
	tmp := f.Name()
	// CreateTemp's 0600 would stick after the rename; match the 0644 an
	// os.WriteFile of an image would have produced (modulo umask-free
	// chmod semantics — image files are world-readable artifacts).
	_ = f.Chmod(0o644)
	// Until the rename happens the temp file is garbage; remove it on
	// any failure (best-effort — a crash leaves it behind, which is
	// exactly the state the failpoint below simulates).
	keepTmp := false
	defer func() {
		if err != nil && !keepTmp {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return fmt.Errorf("layout: write %s: %w", tmp, err)
	}
	if faultinject.Enabled {
		// Failpoint: an error here simulates a crash after the bytes
		// reached the temp file but before fsync/rename — the window in
		// which a non-atomic writer would have torn the target. The
		// callback receives the *os.File and may truncate or scribble
		// first. The temp file is deliberately left behind, as a real
		// crash would leave it.
		if ferr := faultinject.FireErr(faultinject.LayoutWrite, f); ferr != nil {
			keepTmp = true
			f.Close()
			return fmt.Errorf("layout: write %s: %w", tmp, ferr)
		}
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("layout: fsync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("layout: close %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("layout: rename %s: %w", tmp, err)
	}
	// fsync the directory so the rename (the commit point) is durable;
	// without it a power cut can roll back to the old file — acceptable
	// — or, on some filesystems, to a zero-length new one — not.
	if d, derr := os.Open(dir); derr == nil {
		syncErr := d.Sync()
		d.Close()
		if syncErr != nil {
			return fmt.Errorf("layout: fsync dir %s: %w", dir, syncErr)
		}
	}
	return nil
}
