package hypergraph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary hypergraph format, for persisting generated instances and
// feeding external graphs to cmd/peeltool:
//
//	magic "HGR1" (4 bytes)
//	n, m, r, subtableSize (uint64 little-endian each)
//	edges (m·r × uint32 little-endian)

const wireMagic = "HGR1"

// ErrBadFormat is returned by ReadFrom for corrupt or truncated payloads.
var ErrBadFormat = errors.New("hypergraph: bad binary format")

// WriteTo serializes the hypergraph. It implements io.WriterTo.
func (g *Hypergraph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := bw.WriteString(wireMagic)
	written += int64(n)
	if err != nil {
		return written, err
	}
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(g.N))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.M))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.R))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(g.SubtableSize))
	n, err = bw.Write(hdr[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	var buf [4]byte
	for _, v := range g.Edges {
		binary.LittleEndian.PutUint32(buf[:], v)
		n, err = bw.Write(buf[:])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadFrom deserializes a hypergraph written by WriteTo and rebuilds the
// incidence index. It validates vertex ranges and the partition
// structure.
func ReadFrom(r io.Reader) (*Hypergraph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != wireMagic {
		return nil, fmt.Errorf("%w: missing magic", ErrBadFormat)
	}
	var hdr [32]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header", ErrBadFormat)
	}
	n := int(binary.LittleEndian.Uint64(hdr[0:]))
	m := int(binary.LittleEndian.Uint64(hdr[8:]))
	rr := int(binary.LittleEndian.Uint64(hdr[16:]))
	sub := int(binary.LittleEndian.Uint64(hdr[24:]))
	if rr < 2 || rr > MaxArity || n < rr || m < 0 || sub < 0 {
		return nil, fmt.Errorf("%w: header n=%d m=%d r=%d sub=%d", ErrBadFormat, n, m, rr, sub)
	}
	if sub != 0 && sub*rr != n {
		return nil, fmt.Errorf("%w: partition %d×%d != n=%d", ErrBadFormat, sub, rr, n)
	}
	edges := make([]uint32, m*rr)
	raw := make([]byte, 4*len(edges))
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, fmt.Errorf("%w: short edge data", ErrBadFormat)
	}
	for i := range edges {
		v := binary.LittleEndian.Uint32(raw[4*i:])
		if int(v) >= n {
			return nil, fmt.Errorf("%w: vertex %d out of range", ErrBadFormat, v)
		}
		edges[i] = v
	}
	if sub != 0 {
		for e := 0; e < m; e++ {
			for j := 0; j < rr; j++ {
				if int(edges[e*rr+j])/sub != j {
					return nil, fmt.Errorf("%w: edge %d violates partition", ErrBadFormat, e)
				}
			}
		}
	}
	return FromEdges(n, rr, edges, sub), nil
}
