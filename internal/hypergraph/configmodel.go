package hypergraph

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// ConfigurationModel generates an r-uniform hypergraph with a prescribed
// vertex degree sequence, by stub matching: vertex v contributes
// degrees[v] stubs, the stub multiset is shuffled, and consecutive
// groups of r stubs become edges. Stubs left over when the total is not
// divisible by r are dropped (at most r−1 of them, from random
// vertices).
//
// This is the irregular-degree substrate of the LDPC line of work the
// paper cites: the main theorems assume Poisson degrees (every edge
// picks fresh uniform vertices), and the configuration model lets the
// experiments explore how degree design shifts peeling behaviour — a
// d-regular sequence with d >= k, for instance, is its own k-core and
// never peels at all.
//
// Edges must consist of distinct vertices; groups violating this are
// repaired by swapping offending stubs with later positions. For degree
// sequences where some vertex holds more than a 1/r fraction of all
// stubs a valid matching may not exist; after maxRepair failed passes
// the function panics with a descriptive message.
//
// Stub matching is inherently sequential (each repair swap depends on
// the previous), so only the CSR incidence build parallelizes; it runs
// on the process-wide default pool here, or on an explicit pool via
// ConfigurationModelWithPool.
func ConfigurationModel(degrees []int32, r int, gen *rng.RNG) *Hypergraph {
	return ConfigurationModelWithPool(degrees, r, gen, parallel.Default())
}

// ConfigurationModelWithPool is ConfigurationModel with the CSR build on
// an explicit worker pool. It carries ConfigurationModel's panic
// contract: panics if r is outside [2, MaxArity], a degree is negative,
// or the degree sequence is too concentrated to repair into
// distinct-vertex edges.
func ConfigurationModelWithPool(degrees []int32, r int, gen *rng.RNG, pool *parallel.Pool) *Hypergraph {
	n := len(degrees)
	if r < 2 || r > MaxArity {
		panic(fmt.Sprintf("hypergraph: arity %d outside [2, %d]", r, MaxArity))
	}
	total := 0
	for v, d := range degrees {
		if d < 0 {
			panic(fmt.Sprintf("hypergraph: negative degree at vertex %d", v))
		}
		total += int(d)
	}
	stubs := make([]uint32, 0, total)
	for v, d := range degrees {
		for i := int32(0); i < d; i++ {
			stubs = append(stubs, uint32(v))
		}
	}
	gen.Shuffle32(stubs)
	m := len(stubs) / r
	stubs = stubs[:m*r]

	// Repair duplicate vertices inside an edge by swapping with a random
	// later stub. Each pass scans all edges; distinct-vertex groups are
	// left untouched, so passes converge quickly for sane sequences.
	const maxRepair = 200
	for pass := 0; ; pass++ {
		conflicts := 0
		for e := 0; e < m; e++ {
			base := e * r
			for i := 1; i < r; i++ {
				for j := 0; j < i; j++ {
					if stubs[base+i] == stubs[base+j] {
						conflicts++
						// Swap the duplicate with a uniformly random stub
						// (possibly in another edge); progress in
						// expectation because the partner edge rarely
						// contains this vertex.
						t := gen.Intn(m * r)
						stubs[base+i], stubs[t] = stubs[t], stubs[base+i]
					}
				}
			}
		}
		if conflicts == 0 {
			break
		}
		if pass >= maxRepair {
			panic(fmt.Sprintf("hypergraph: configuration model could not resolve %d duplicate-vertex conflicts (degree sequence too concentrated for r=%d)", conflicts, r))
		}
	}
	g := &Hypergraph{N: n, M: m, R: r, Edges: stubs}
	g.buildIncidence(pool)
	return g
}

// RegularDegrees returns the all-d degree sequence of length n — the
// fully regular ensemble.
func RegularDegrees(n int, d int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// PoissonDegrees returns a degree sequence sampled i.i.d. from
// Poisson(mean) — the configuration-model twin of the uniform ensemble,
// used to validate that the two models peel alike.
func PoissonDegrees(n int, mean float64, gen *rng.RNG) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(gen.Poisson(mean))
	}
	return out
}
