package hypergraph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestConfigurationModelDegreesHonored(t *testing.T) {
	gen := rng.New(1)
	degrees := PoissonDegrees(5000, 2.8, gen)
	g := ConfigurationModel(degrees, 4, gen)

	// Total stubs minus the dropped remainder must equal m*r.
	total := 0
	for _, d := range degrees {
		total += int(d)
	}
	if g.M != total/4 {
		t.Fatalf("m = %d, want %d", g.M, total/4)
	}
	// Per-vertex degree differs from the target by at most the dropped
	// remainder (< r stubs total across all vertices).
	droppedBudget := total - g.M*4
	excess := 0
	for v := 0; v < g.N; v++ {
		diff := int(degrees[v]) - g.Degree(v)
		if diff < 0 {
			t.Fatalf("vertex %d gained degree: %d > %d", v, g.Degree(v), degrees[v])
		}
		excess += diff
	}
	if excess != droppedBudget {
		t.Errorf("dropped %d stubs, budget %d", excess, droppedBudget)
	}
}

func TestConfigurationModelDistinctVertices(t *testing.T) {
	gen := rng.New(2)
	degrees := PoissonDegrees(3000, 3.0, gen)
	g := ConfigurationModel(degrees, 3, gen)
	for e := 0; e < g.M; e++ {
		vs := g.EdgeVertices(e)
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				if vs[i] == vs[j] {
					t.Fatalf("edge %d has duplicate vertex %d", e, vs[i])
				}
			}
		}
	}
}

func TestRegularGraphIsItsOwnCore(t *testing.T) {
	// Every vertex has degree exactly 3 (up to the dropped remainder), so
	// 2-core peeling removes (almost) nothing: the graph IS its 2-core.
	// This is the designed contrast with Poisson ensembles, whose
	// low-degree tail seeds the peeling avalanche.
	gen := rng.New(3)
	n := 3000
	g := ConfigurationModel(RegularDegrees(n, 3), 3, gen)
	removedBudget := 3 * 3 // dropped stubs can lower at most r-1 vertices below 3, cascades bounded small
	deg2 := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) < 2 {
			deg2++
		}
	}
	if deg2 > removedBudget {
		t.Fatalf("%d vertices below degree 2 in a 3-regular model", deg2)
	}
}

func TestPoissonConfigMatchesUniformEnsemble(t *testing.T) {
	// A configuration model with Poisson(rc) degrees is (asymptotically)
	// the same ensemble as Uniform(n, cn, r): degree histograms must
	// match within sampling error.
	n, c, r := 100000, 0.7, 4
	gen := rng.New(4)
	cfgGraph := ConfigurationModel(PoissonDegrees(n, float64(r)*c, gen), r, gen)
	uniGraph := Uniform(n, int(c*float64(n)), r, rng.New(5))
	hc := cfgGraph.DegreeHistogram(10)
	hu := uniGraph.DegreeHistogram(10)
	for d := 0; d <= 8; d++ {
		diff := math.Abs(float64(hc[d] - hu[d]))
		tol := 6*math.Sqrt(float64(hu[d]+1)) + 50
		if diff > tol {
			t.Errorf("degree %d: config %d vs uniform %d (tol %.0f)", d, hc[d], hu[d], tol)
		}
	}
}

func TestConfigurationModelValidation(t *testing.T) {
	gen := rng.New(6)
	for name, f := range map[string]func(){
		"bad arity":       func() { ConfigurationModel(RegularDegrees(10, 2), 1, gen) },
		"negative degree": func() { ConfigurationModel([]int32{2, -1, 2}, 3, gen) },
		"impossible concentration": func() {
			// One vertex holds half of all stubs: no valid 3-uniform
			// matching with distinct vertices exists.
			degs := []int32{90, 1, 1, 1, 1, 1, 1}
			ConfigurationModel(degs, 3, gen)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestConfigurationModelEmpty(t *testing.T) {
	g := ConfigurationModel(make([]int32, 100), 3, rng.New(7))
	if g.M != 0 || g.N != 100 {
		t.Errorf("empty degrees produced m=%d", g.M)
	}
}

func BenchmarkConfigurationModel(b *testing.B) {
	gen := rng.New(1)
	degrees := PoissonDegrees(1<<17, 2.8, gen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConfigurationModel(degrees, 4, rng.New(uint64(i)))
	}
}
