package hypergraph

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/rng"
)

func TestWriteReadRoundTrip(t *testing.T) {
	for _, gen := range []struct {
		name string
		g    *Hypergraph
	}{
		{"uniform", Uniform(500, 350, 4, rng.New(1))},
		{"partitioned", Partitioned(600, 400, 3, rng.New(2))},
		{"empty", Uniform(10, 0, 3, rng.New(3))},
	} {
		var buf bytes.Buffer
		if _, err := gen.g.WriteTo(&buf); err != nil {
			t.Fatalf("%s: WriteTo: %v", gen.name, err)
		}
		back, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("%s: ReadFrom: %v", gen.name, err)
		}
		if back.N != gen.g.N || back.M != gen.g.M || back.R != gen.g.R ||
			back.SubtableSize != gen.g.SubtableSize {
			t.Fatalf("%s: shape mismatch", gen.name)
		}
		for i := range gen.g.Edges {
			if back.Edges[i] != gen.g.Edges[i] {
				t.Fatalf("%s: edge data mismatch at %d", gen.name, i)
			}
		}
		// Incidence must be rebuilt correctly.
		for v := 0; v < back.N; v++ {
			if back.Degree(v) != gen.g.Degree(v) {
				t.Fatalf("%s: degree mismatch at vertex %d", gen.name, v)
			}
		}
	}
}

func TestReadFromRejectsCorruption(t *testing.T) {
	g := Uniform(100, 50, 3, rng.New(4))
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), data[4:]...),
		"short hdr":   data[:20],
		"short edges": data[:len(data)-4],
	}
	for name, payload := range cases {
		if _, err := ReadFrom(bytes.NewReader(payload)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: err = %v, want ErrBadFormat", name, err)
		}
	}

	// Out-of-range vertex id.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] = 0xff
	bad[len(bad)-2] = 0xff
	bad[len(bad)-3] = 0xff
	bad[len(bad)-4] = 0xff
	if _, err := ReadFrom(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("vertex range: err = %v, want ErrBadFormat", err)
	}
}

func TestReadFromRejectsBrokenPartition(t *testing.T) {
	g := Partitioned(300, 100, 3, rng.New(5))
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the first edge's first vertex to sit in the wrong subtable
	// (vertex 250 is in subtable 2, position 0 expects subtable 0).
	data[36] = 250
	data[37], data[38], data[39] = 0, 0, 0
	if _, err := ReadFrom(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("partition violation: err = %v, want ErrBadFormat", err)
	}
}
