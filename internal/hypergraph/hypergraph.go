// Package hypergraph provides the random r-uniform hypergraph models that
// the peeling experiments of Jiang, Mitzenmacher, and Thaler (SPAA 2014)
// run on, together with a compact CSR incidence representation that the
// peelers iterate over.
//
// Three generators are provided:
//
//   - Uniform: the paper's G^r_{n,cn} model — exactly m = cn edges, each
//     an independently chosen set of r distinct vertices.
//   - Binomial: the paper's G^r_c model — every possible edge appears
//     independently with probability q = cn/C(n,r). The edge count is then
//     Binomial(C(n,r), q), which for the sparse regime used throughout the
//     paper is within total-variation distance O((cn)²/C(n,r)) of
//     Poisson(cn); we sample the count from Poisson(cn) and then draw that
//     many independent edges, which realizes the model up to that
//     vanishing distance (Le Cam; see internal/poisson).
//   - Partitioned: the Appendix B / IBLT model — vertices split into r
//     equal subtables, each edge containing exactly one vertex per
//     subtable.
package hypergraph

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// MaxArity bounds the edge arity r. Eight covers every configuration in
// the paper (r <= 5) with headroom, and keeps scratch tuples on the stack.
const MaxArity = 8

// Hypergraph is an immutable r-uniform hypergraph with a CSR incidence
// index. Vertices are 0..N-1; edges are 0..M-1. Edge e's vertices are
// Edges[e*R : e*R+R].
type Hypergraph struct {
	N int // number of vertices
	M int // number of edges
	R int // vertices per edge (arity)

	// Edges holds the vertex ids of each edge, flattened: edge e occupies
	// Edges[e*R : (e+1)*R]. In partitioned graphs, position j of each edge
	// lies in subtable j.
	Edges []uint32

	// Offsets/Incidence form the CSR index: the edges incident to vertex v
	// are Incidence[Offsets[v]:Offsets[v+1]]. A vertex appearing twice in
	// one edge (impossible for Uniform/Partitioned, which draw distinct
	// vertices) would be listed once per appearance.
	Offsets   []uint32
	Incidence []uint32

	// SubtableSize is N/R for partitioned graphs (vertex v belongs to
	// subtable v/SubtableSize); 0 for unpartitioned graphs.
	SubtableSize int
}

// EdgeVertices returns the vertex slice of edge e (aliasing internal
// storage; callers must not modify it).
func (g *Hypergraph) EdgeVertices(e int) []uint32 {
	return g.Edges[e*g.R : e*g.R+g.R]
}

// VertexEdges returns the edge ids incident to vertex v (aliasing internal
// storage; callers must not modify it).
func (g *Hypergraph) VertexEdges(v int) []uint32 {
	return g.Incidence[g.Offsets[v]:g.Offsets[v+1]]
}

// Degree returns the degree of vertex v (with multiplicity for repeated
// incidence, which the provided generators never produce).
func (g *Hypergraph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Degrees returns a freshly allocated degree array.
func (g *Hypergraph) Degrees() []int32 {
	d := make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		d[v] = int32(g.Offsets[v+1] - g.Offsets[v])
	}
	return d
}

// Subtable returns the subtable index of vertex v for partitioned graphs.
// It panics on unpartitioned graphs.
func (g *Hypergraph) Subtable(v uint32) int {
	if g.SubtableSize == 0 {
		panic("hypergraph: Subtable on unpartitioned graph")
	}
	return int(v) / g.SubtableSize
}

// EdgeDensity returns c = M/N.
func (g *Hypergraph) EdgeDensity() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(g.M) / float64(g.N)
}

func validate(n, m, r int) {
	if r < 2 || r > MaxArity {
		panic(fmt.Sprintf("hypergraph: arity %d outside [2, %d]", r, MaxArity))
	}
	if n < r {
		panic(fmt.Sprintf("hypergraph: n=%d smaller than arity %d", n, r))
	}
	if m < 0 {
		panic("hypergraph: negative edge count")
	}
}

// Uniform generates the G^r_{n,m} model: m edges, each a uniformly chosen
// r-subset of [0, n), drawn independently (edges may repeat, matching the
// paper's hashing applications where two items can hash identically).
func Uniform(n, m, r int, gen *rng.RNG) *Hypergraph {
	validate(n, m, r)
	g := &Hypergraph{N: n, M: m, R: r, Edges: make([]uint32, m*r)}
	var tuple [MaxArity]uint32
	for e := 0; e < m; e++ {
		gen.SampleDistinct(tuple[:r], uint32(n))
		copy(g.Edges[e*r:], tuple[:r])
	}
	g.buildIncidence()
	return g
}

// Binomial generates the G^r_c model on n vertices with edge density c:
// the number of edges is Poisson(cn) (the sparse-regime limit of
// Binomial(C(n,r), cn/C(n,r))), and each edge is an independent uniform
// r-subset.
func Binomial(n int, c float64, r int, gen *rng.RNG) *Hypergraph {
	if c < 0 {
		panic("hypergraph: negative edge density")
	}
	m := gen.Poisson(c * float64(n))
	return Uniform(n, m, r, gen)
}

// Partitioned generates the Appendix B model: n vertices split into r
// subtables of n/r (n must be divisible by r), and m edges each containing
// exactly one uniform vertex from every subtable. Position j of each edge
// lies in subtable j, mirroring how an IBLT hashes an item once per
// subtable.
func Partitioned(n, m, r int, gen *rng.RNG) *Hypergraph {
	validate(n, m, r)
	if n%r != 0 {
		panic(fmt.Sprintf("hypergraph: n=%d not divisible by r=%d", n, r))
	}
	sub := n / r
	g := &Hypergraph{N: n, M: m, R: r, Edges: make([]uint32, m*r), SubtableSize: sub}
	for e := 0; e < m; e++ {
		base := e * r
		for j := 0; j < r; j++ {
			g.Edges[base+j] = uint32(j*sub) + uint32(gen.Uint64n(uint64(sub)))
		}
	}
	g.buildIncidence()
	return g
}

// FromEdges builds a hypergraph from an explicit flattened edge list
// (length m*r). The slice is retained, not copied. SubtableSize may be 0.
// It panics if the list length is not a multiple of r or any vertex id is
// out of range.
func FromEdges(n, r int, edges []uint32, subtableSize int) *Hypergraph {
	if r < 2 || r > MaxArity {
		panic(fmt.Sprintf("hypergraph: arity %d outside [2, %d]", r, MaxArity))
	}
	if len(edges)%r != 0 {
		panic("hypergraph: edge list length not a multiple of r")
	}
	for _, v := range edges {
		if int(v) >= n {
			panic(fmt.Sprintf("hypergraph: vertex %d out of range [0,%d)", v, n))
		}
	}
	g := &Hypergraph{N: n, M: len(edges) / r, R: r, Edges: edges, SubtableSize: subtableSize}
	g.buildIncidence()
	return g
}

// buildIncidence constructs the CSR index with a counting sort. Degree
// counting and scattering parallelize over edges for large graphs.
func (g *Hypergraph) buildIncidence() {
	n, m, r := g.N, g.M, g.R
	counts := make([]uint32, n+1)
	// Count degrees. For large m, count into per-worker arrays would cost
	// O(workers*n) memory; instead use atomic-free sequential counting,
	// which is memory-bound and already fast (single pass over Edges).
	for _, v := range g.Edges {
		counts[v+1]++
	}
	// Prefix sum.
	for v := 0; v < n; v++ {
		counts[v+1] += counts[v]
	}
	g.Offsets = make([]uint32, n+1)
	copy(g.Offsets, counts)
	// Scatter. cursor[v] tracks the next write slot for vertex v; the
	// sequential scatter preserves edge order within each vertex list.
	g.Incidence = make([]uint32, m*r)
	cursor := make([]uint32, n)
	copy(cursor, counts[:n])
	for e := 0; e < m; e++ {
		base := e * r
		for j := 0; j < r; j++ {
			v := g.Edges[base+j]
			g.Incidence[cursor[v]] = uint32(e)
			cursor[v]++
		}
	}
}

// DegreeHistogram returns the vertex degree distribution up to maxDeg
// (degrees beyond maxDeg are clamped into the final bucket). Used by the
// tests to compare against the Poisson(rc) branching approximation.
func (g *Hypergraph) DegreeHistogram(maxDeg int) []int {
	hist := make([]int, maxDeg+1)
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		if d > maxDeg {
			d = maxDeg
		}
		hist[d]++
	}
	return hist
}

// CountDegreesBelow returns how many vertices currently have degree < k in
// the full graph (round-1 peel candidates), computed in parallel.
func (g *Hypergraph) CountDegreesBelow(k int) int {
	pool := parallel.Default()
	counter := pool.NewCounter()
	pool.For(g.N, 4096, func(w, lo, hi int) {
		local := 0
		for v := lo; v < hi; v++ {
			if g.Degree(v) < k {
				local++
			}
		}
		counter.Add(w, int64(local))
	})
	return int(counter.Sum())
}
