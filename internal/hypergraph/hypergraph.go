// Package hypergraph provides the random r-uniform hypergraph models that
// the peeling experiments of Jiang, Mitzenmacher, and Thaler (SPAA 2014)
// run on, together with a compact CSR incidence representation that the
// peelers iterate over.
//
// Three generators are provided:
//
//   - Uniform: the paper's G^r_{n,cn} model — exactly m = cn edges, each
//     an independently chosen set of r distinct vertices.
//   - Binomial: the paper's G^r_c model — every possible edge appears
//     independently with probability q = cn/C(n,r). The edge count is then
//     Binomial(C(n,r), q), which for the sparse regime used throughout the
//     paper is within total-variation distance O((cn)²/C(n,r)) of
//     Poisson(cn); we sample the count from Poisson(cn) and then draw that
//     many independent edges, which realizes the model up to that
//     vanishing distance (Le Cam; see internal/poisson).
//   - Partitioned: the Appendix B / IBLT model — vertices split into r
//     equal subtables, each edge containing exactly one vertex per
//     subtable.
//
// Construction is parallel end-to-end — edge sampling fans chunk-keyed
// RNG streams out over a worker pool, and the CSR index is built with a
// stable parallel counting sort — yet deterministic: a given generator
// state produces the same graph for every worker count. Each generator
// has a ...WithPool variant; the plain forms run on the process-wide
// default pool.
package hypergraph

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// MaxArity bounds the edge arity r. Eight covers every configuration in
// the paper (r <= 5) with headroom, and keeps scratch tuples on the stack.
const MaxArity = 8

// Hypergraph is an immutable r-uniform hypergraph with a CSR incidence
// index. Vertices are 0..N-1; edges are 0..M-1. Edge e's vertices are
// Edges[e*R : e*R+R].
type Hypergraph struct {
	N int // number of vertices
	M int // number of edges
	R int // vertices per edge (arity)

	// Edges holds the vertex ids of each edge, flattened: edge e occupies
	// Edges[e*R : (e+1)*R]. In partitioned graphs, position j of each edge
	// lies in subtable j.
	Edges []uint32

	// Offsets/Incidence form the CSR index: the edges incident to vertex v
	// are Incidence[Offsets[v]:Offsets[v+1]]. A vertex appearing twice in
	// one edge (impossible for Uniform/Partitioned, which draw distinct
	// vertices) would be listed once per appearance.
	Offsets   []uint32
	Incidence []uint32

	// SubtableSize is N/R for partitioned graphs (vertex v belongs to
	// subtable v/SubtableSize); 0 for unpartitioned graphs.
	SubtableSize int
}

// EdgeVertices returns the vertex slice of edge e (aliasing internal
// storage; callers must not modify it).
func (g *Hypergraph) EdgeVertices(e int) []uint32 {
	return g.Edges[e*g.R : e*g.R+g.R]
}

// VertexEdges returns the edge ids incident to vertex v (aliasing internal
// storage; callers must not modify it).
func (g *Hypergraph) VertexEdges(v int) []uint32 {
	return g.Incidence[g.Offsets[v]:g.Offsets[v+1]]
}

// Degree returns the degree of vertex v (with multiplicity for repeated
// incidence, which the provided generators never produce).
func (g *Hypergraph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Degrees returns a freshly allocated degree array.
func (g *Hypergraph) Degrees() []int32 {
	d := make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		d[v] = int32(g.Offsets[v+1] - g.Offsets[v])
	}
	return d
}

// Subtable returns the subtable index of vertex v for partitioned graphs.
// It panics on unpartitioned graphs.
func (g *Hypergraph) Subtable(v uint32) int {
	if g.SubtableSize == 0 {
		panic("hypergraph: Subtable on unpartitioned graph")
	}
	return int(v) / g.SubtableSize
}

// EdgeDensity returns c = M/N.
func (g *Hypergraph) EdgeDensity() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(g.M) / float64(g.N)
}

// validate is the shared generator guard. Panics if r is outside
// [2, MaxArity], n is smaller than r, or m is negative — configuration
// bugs in the caller, not data-dependent conditions.
func validate(n, m, r int) {
	if r < 2 || r > MaxArity {
		panic(fmt.Sprintf("hypergraph: arity %d outside [2, %d]", r, MaxArity))
	}
	if n < r {
		panic(fmt.Sprintf("hypergraph: n=%d smaller than arity %d", n, r))
	}
	if m < 0 {
		panic("hypergraph: negative edge count")
	}
}

// genChunk is the number of edges drawn from one RNG stream during
// generation. Edge chunk c samples from rng.NewStream(base, c), so the
// edge array is a pure function of the derived base seed and the chunk
// size — never of the worker count or chunk scheduling. The value trades
// stream-setup cost (one xoshiro seeding per 4096 edges) against load
// balance; it is a determinism-affecting constant: changing it changes
// which graph a seed denotes.
const genChunk = 4096

// Uniform generates the G^r_{n,m} model: m edges, each a uniformly chosen
// r-subset of [0, n), drawn independently (edges may repeat, matching the
// paper's hashing applications where two items can hash identically).
// Generation and the CSR build run on the process-wide default pool; the
// result depends only on gen's state, not on the pool size.
//
//peelvet:deterministic
func Uniform(n, m, r int, gen *rng.RNG) *Hypergraph {
	return UniformWithPool(n, m, r, gen, parallel.Default())
}

// UniformWithPool is Uniform on an explicit worker pool.
//
//peelvet:deterministic
func UniformWithPool(n, m, r int, gen *rng.RNG, pool *parallel.Pool) *Hypergraph {
	validate(n, m, r)
	g := &Hypergraph{N: n, M: m, R: r, Edges: make([]uint32, m*r)}
	base := gen.DeriveSeed()
	forEdgeChunks(pool, base, m, func(cg *rng.RNG, lo, hi int) {
		var tuple [MaxArity]uint32
		for e := lo; e < hi; e++ {
			cg.SampleDistinct(tuple[:r], uint32(n))
			copy(g.Edges[e*r:], tuple[:r])
		}
	})
	g.buildIncidence(pool)
	return g
}

// Binomial generates the G^r_c model on n vertices with edge density c:
// the number of edges is Poisson(cn) (the sparse-regime limit of
// Binomial(C(n,r), cn/C(n,r))), and each edge is an independent uniform
// r-subset.
func Binomial(n int, c float64, r int, gen *rng.RNG) *Hypergraph {
	return BinomialWithPool(n, c, r, gen, parallel.Default())
}

// BinomialWithPool is Binomial on an explicit worker pool. Panics if the
// edge density c is negative.
func BinomialWithPool(n int, c float64, r int, gen *rng.RNG, pool *parallel.Pool) *Hypergraph {
	if c < 0 {
		panic("hypergraph: negative edge density")
	}
	m := gen.Poisson(c * float64(n))
	return UniformWithPool(n, m, r, gen, pool)
}

// Partitioned generates the Appendix B model: n vertices split into r
// subtables of n/r (n must be divisible by r), and m edges each containing
// exactly one uniform vertex from every subtable. Position j of each edge
// lies in subtable j, mirroring how an IBLT hashes an item once per
// subtable.
func Partitioned(n, m, r int, gen *rng.RNG) *Hypergraph {
	return PartitionedWithPool(n, m, r, gen, parallel.Default())
}

// PartitionedWithPool is Partitioned on an explicit worker pool. Panics
// if (n, m, r) is malformed (see validate) or n is not divisible by r.
func PartitionedWithPool(n, m, r int, gen *rng.RNG, pool *parallel.Pool) *Hypergraph {
	validate(n, m, r)
	if n%r != 0 {
		panic(fmt.Sprintf("hypergraph: n=%d not divisible by r=%d", n, r))
	}
	sub := n / r
	g := &Hypergraph{N: n, M: m, R: r, Edges: make([]uint32, m*r), SubtableSize: sub}
	base := gen.DeriveSeed()
	forEdgeChunks(pool, base, m, func(cg *rng.RNG, lo, hi int) {
		for e := lo; e < hi; e++ {
			for j := 0; j < r; j++ {
				g.Edges[e*r+j] = uint32(j*sub) + uint32(cg.Uint64n(uint64(sub)))
			}
		}
	})
	g.buildIncidence(pool)
	return g
}

// forEdgeChunks runs fill over [0, m) in genChunk-sized pieces, handing
// each piece a generator keyed by its chunk index. Chunks write disjoint
// edge ranges, so they fan out over the pool freely; the sampled values
// depend only on (base, chunk index), so any pool size — including the
// inline single-worker path — produces identical edges.
func forEdgeChunks(pool *parallel.Pool, base uint64, m int, fill func(cg *rng.RNG, lo, hi int)) {
	nChunks := (m + genChunk - 1) / genChunk
	pool.For(nChunks, 1, func(_, clo, chi int) {
		for c := clo; c < chi; c++ {
			lo := c * genChunk
			hi := min(lo+genChunk, m)
			fill(rng.NewStream(base, uint64(c)), lo, hi)
		}
	})
}

// FromEdges builds a hypergraph from an explicit flattened edge list
// (length m*r). The slice is retained, not copied. SubtableSize may be 0.
// It panics if the list length is not a multiple of r or any vertex id is
// out of range.
func FromEdges(n, r int, edges []uint32, subtableSize int) *Hypergraph {
	return FromEdgesWithPool(n, r, edges, subtableSize, parallel.Default())
}

// FromEdgesWithPool is FromEdges on an explicit worker pool (validation
// and the CSR build parallelize over the edge list). It carries
// FromEdges's panic contract: panics if r is out of range, the edge list
// length is not a multiple of r, or a vertex id is out of range.
func FromEdgesWithPool(n, r int, edges []uint32, subtableSize int, pool *parallel.Pool) *Hypergraph {
	if r < 2 || r > MaxArity {
		panic(fmt.Sprintf("hypergraph: arity %d outside [2, %d]", r, MaxArity))
	}
	if len(edges)%r != 0 {
		panic("hypergraph: edge list length not a multiple of r")
	}
	bad := pool.NewCounter()
	pool.For(len(edges), 1<<15, func(w, lo, hi int) {
		local := 0
		for _, v := range edges[lo:hi] {
			if int(v) >= n {
				local++
			}
		}
		bad.Add(w, int64(local))
	})
	if bad.Sum() > 0 {
		for _, v := range edges {
			if int(v) >= n {
				panic(fmt.Sprintf("hypergraph: vertex %d out of range [0,%d)", v, n))
			}
		}
	}
	g := &Hypergraph{N: n, M: len(edges) / r, R: r, Edges: edges, SubtableSize: subtableSize}
	g.buildIncidence(pool)
	return g
}

// seqBuildCutoff is the incidence size (m·r) below which buildIncidence
// uses the sequential counting sort: under ~64K entries the parallel
// version's extra passes and per-worker histograms cost more than they
// save. Both paths produce bit-identical Offsets and Incidence.
const seqBuildCutoff = 1 << 16

// buildSpan returns the number of static pieces the parallel counting
// sort partitions the edge list into — its effective parallelism. It is
// capped three ways: by the pool width (more pieces than workers just
// adds passes over the histogram), so every piece holds at least
// seqBuildCutoff incidences (tiny pieces would be all fixed cost), and
// so the O(span·n) histogram memory and prefix-sum work stay within a
// small constant of the O(m·r) useful work — which keeps sparse graphs
// (n ≫ m·r) and very wide pools from paying memory or column scans far
// exceeding the graph itself. A span of 1 selects the sequential sort.
func buildSpan(n, m, r, workers int) int {
	span := workers
	if byWork := m * r / seqBuildCutoff; span > byWork {
		span = byWork
	}
	if byMem := 4 * m * r / n; span > byMem {
		span = byMem
	}
	if span < 1 {
		span = 1
	}
	return span
}

// buildIncidence constructs the CSR index with a stable counting sort:
// within each vertex's list, edges appear in increasing edge id — the
// same order the sequential queue peeler and the wire format rely on.
//
// Large graphs use a three-pass parallel version of the classic sort
// (Shun-style, as in GBBS CSR construction): the edge list is split
// into span static pieces, each piece's degrees are counted into its
// own histogram, a prefix sum composed over (piece, vertex) turns the
// histograms into disjoint write cursors, and each piece scatters its
// own edge range. Piece p's slots for vertex v start after all slots of
// pieces p' < p, and pieces cover increasing edge ranges — so the
// scatter reproduces exactly the sequential edge order, bit for bit,
// for every worker count and span.
func (g *Hypergraph) buildIncidence(pool *parallel.Pool) {
	n, m, r := g.N, g.M, g.R
	span := buildSpan(n, m, r, pool.Workers())
	if span == 1 {
		g.buildIncidenceSeq()
		return
	}

	// Pass 1: per-piece degree histograms. hist[p*n+v] counts vertex v's
	// appearances in piece p's edge range. The O(span·n) memory is the
	// price of a lock-free stable sort; buildSpan bounds it relative to
	// the edge list itself.
	hist := make([]uint32, span*n)
	pool.RunRanges(m, span, func(p, elo, ehi int) {
		h := hist[p*n : p*n+n]
		for _, v := range g.Edges[elo*r : ehi*r] {
			h[v]++
		}
	})

	// Pass 2: composed prefix sum over (piece, vertex). Each piece of the
	// vertex range converts its histogram columns to exclusive
	// within-column prefixes and accumulates per-vertex total degrees
	// into a block-local running sum stored in Offsets.
	g.Offsets = make([]uint32, n+1)
	offs := g.Offsets
	blockSum := make([]uint32, span+1)
	pool.RunRanges(n, span, func(b, vlo, vhi int) {
		var local uint32
		for v := vlo; v < vhi; v++ {
			var col uint32
			for p := 0; p < span; p++ {
				i := p*n + v
				c := hist[i]
				hist[i] = col
				col += c
			}
			local += col
			offs[v+1] = local // inclusive degree prefix within the block
		}
		blockSum[b+1] = local
	})
	for b := 0; b < span; b++ { // tiny sequential scan over block totals
		blockSum[b+1] += blockSum[b]
	}
	// Add-back: globalize the block-local prefixes and turn histogram
	// columns into absolute cursors. cursor(p, v) = Offsets[v] + (count
	// of v in edge pieces before p). Every Offsets slot and histogram
	// column is written only by the block owning vertex v — no races.
	pool.RunRanges(n, span, func(b, vlo, vhi int) {
		excl := blockSum[b] // exclusive global degree prefix at v
		for v := vlo; v < vhi; v++ {
			incl := blockSum[b] + offs[v+1]
			for p := 0; p < span; p++ {
				hist[p*n+v] += excl
			}
			offs[v+1] = incl
			excl = incl
		}
	})

	// Pass 3: scatter. Each piece walks its own edge range in increasing
	// edge id, writing into the disjoint slots its cursors reserve.
	g.Incidence = make([]uint32, m*r)
	pool.RunRanges(m, span, func(p, elo, ehi int) {
		cur := hist[p*n : p*n+n]
		for e := elo; e < ehi; e++ {
			for j := 0; j < r; j++ {
				v := g.Edges[e*r+j]
				g.Incidence[cur[v]] = uint32(e)
				cur[v]++
			}
		}
	})
}

// buildIncidenceSeq is the sequential counting sort, used for small
// graphs and single-worker pools.
func (g *Hypergraph) buildIncidenceSeq() {
	n, m, r := g.N, g.M, g.R
	counts := make([]uint32, n+1)
	for _, v := range g.Edges {
		counts[v+1]++
	}
	for v := 0; v < n; v++ {
		counts[v+1] += counts[v]
	}
	g.Offsets = make([]uint32, n+1)
	copy(g.Offsets, counts)
	// Scatter. cursor[v] tracks the next write slot for vertex v; the
	// sequential scatter preserves edge order within each vertex list.
	g.Incidence = make([]uint32, m*r)
	cursor := make([]uint32, n)
	copy(cursor, counts[:n])
	for e := 0; e < m; e++ {
		base := e * r
		for j := 0; j < r; j++ {
			v := g.Edges[base+j]
			g.Incidence[cursor[v]] = uint32(e)
			cursor[v]++
		}
	}
}

// DegreeHistogram returns the vertex degree distribution up to maxDeg
// (degrees beyond maxDeg are clamped into the final bucket). Used by the
// tests to compare against the Poisson(rc) branching approximation.
func (g *Hypergraph) DegreeHistogram(maxDeg int) []int {
	hist := make([]int, maxDeg+1)
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		if d > maxDeg {
			d = maxDeg
		}
		hist[d]++
	}
	return hist
}

// CountDegreesBelow returns how many vertices currently have degree < k in
// the full graph (round-1 peel candidates), computed in parallel on the
// process-wide default pool. Callers that configured an explicit pool
// (core.Options.Workers/Pool) should use CountDegreesBelowWithPool so the
// scan does not escape to the default pool.
func (g *Hypergraph) CountDegreesBelow(k int) int {
	return g.CountDegreesBelowWithPool(k, parallel.Default())
}

// CountDegreesBelowWithPool is CountDegreesBelow on an explicit pool.
func (g *Hypergraph) CountDegreesBelowWithPool(k int, pool *parallel.Pool) int {
	counter := pool.NewCounter()
	pool.For(g.N, 4096, func(w, lo, hi int) {
		local := 0
		for v := lo; v < hi; v++ {
			if g.Degree(v) < k {
				local++
			}
		}
		counter.Add(w, int64(local))
	})
	return int(counter.Sum())
}
