package hypergraph

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/poisson"
	"repro/internal/rng"
)

func TestUniformShape(t *testing.T) {
	g := Uniform(1000, 700, 4, rng.New(1))
	if g.N != 1000 || g.M != 700 || g.R != 4 {
		t.Fatalf("shape N=%d M=%d R=%d", g.N, g.M, g.R)
	}
	if len(g.Edges) != 700*4 {
		t.Fatalf("edge storage %d", len(g.Edges))
	}
	if g.SubtableSize != 0 {
		t.Fatal("uniform graph should be unpartitioned")
	}
}

func TestUniformEdgesDistinctVertices(t *testing.T) {
	g := Uniform(50, 500, 3, rng.New(2))
	for e := 0; e < g.M; e++ {
		vs := g.EdgeVertices(e)
		for i := 0; i < len(vs); i++ {
			if vs[i] >= 50 {
				t.Fatalf("edge %d vertex %d out of range", e, vs[i])
			}
			for j := i + 1; j < len(vs); j++ {
				if vs[i] == vs[j] {
					t.Fatalf("edge %d has duplicate vertex %d", e, vs[i])
				}
			}
		}
	}
}

func TestIncidenceConsistency(t *testing.T) {
	g := Uniform(300, 250, 4, rng.New(3))
	// Every (edge, vertex) incidence appears in both directions.
	for e := 0; e < g.M; e++ {
		for _, v := range g.EdgeVertices(e) {
			found := false
			for _, ie := range g.VertexEdges(int(v)) {
				if int(ie) == e {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d missing from vertex %d incidence", e, v)
			}
		}
	}
	// Total incidence size is m*r and degrees sum to it.
	total := 0
	for v := 0; v < g.N; v++ {
		total += g.Degree(v)
	}
	if total != g.M*g.R {
		t.Fatalf("degree sum %d, want %d", total, g.M*g.R)
	}
}

func TestDegreesMatchOffsets(t *testing.T) {
	g := Uniform(200, 150, 3, rng.New(4))
	d := g.Degrees()
	for v := 0; v < g.N; v++ {
		if int(d[v]) != g.Degree(v) {
			t.Fatalf("vertex %d: Degrees %d vs Degree %d", v, d[v], g.Degree(v))
		}
	}
}

func TestDegreeDistributionApproxPoisson(t *testing.T) {
	// In G^r_{n,cn} vertex degrees are Binomial(m, r/n) ~ Poisson(rc).
	// Compare the empirical histogram with the Poisson(rc) pmf.
	n, c, r := 200000, 0.7, 4
	g := Uniform(n, int(c*float64(n)), r, rng.New(5))
	hist := g.DegreeHistogram(12)
	mean := float64(r) * c
	for d := 0; d <= 8; d++ {
		want := poisson.PMF(d, mean) * float64(n)
		got := float64(hist[d])
		se := math.Sqrt(want) + 1
		if math.Abs(got-want) > 6*se {
			t.Errorf("degree %d: %v vertices, Poisson predicts %.0f +- %.0f", d, got, want, 6*se)
		}
	}
}

func TestBinomialEdgeCountConcentrates(t *testing.T) {
	n, c := 100000, 0.75
	var sum float64
	const trials = 20
	for i := 0; i < trials; i++ {
		g := Binomial(n, c, 3, rng.NewStream(6, uint64(i)))
		sum += float64(g.M)
	}
	mean := sum / trials
	want := c * float64(n)
	se := math.Sqrt(want / trials)
	if math.Abs(mean-want) > 6*se {
		t.Errorf("Binomial mean edges %.0f, want %.0f +- %.0f", mean, want, 6*se)
	}
}

func TestPartitionedStructure(t *testing.T) {
	n, m, r := 1200, 800, 4
	g := Partitioned(n, m, r, rng.New(7))
	if g.SubtableSize != n/r {
		t.Fatalf("SubtableSize = %d, want %d", g.SubtableSize, n/r)
	}
	for e := 0; e < m; e++ {
		vs := g.EdgeVertices(e)
		for j, v := range vs {
			if g.Subtable(v) != j {
				t.Fatalf("edge %d position %d: vertex %d in subtable %d", e, j, v, g.Subtable(v))
			}
		}
	}
}

func TestPartitionedRequiresDivisibility(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Partitioned(1001, ...) did not panic")
		}
	}()
	Partitioned(1001, 100, 4, rng.New(8))
}

func TestSubtablePanicsOnUnpartitioned(t *testing.T) {
	g := Uniform(100, 10, 3, rng.New(9))
	defer func() {
		if recover() == nil {
			t.Error("Subtable on unpartitioned graph did not panic")
		}
	}()
	g.Subtable(0)
}

func TestFromEdges(t *testing.T) {
	edges := []uint32{0, 1, 2, 2, 3, 4, 0, 3, 4}
	g := FromEdges(5, 3, edges, 0)
	if g.M != 3 {
		t.Fatalf("M = %d", g.M)
	}
	if g.Degree(0) != 2 || g.Degree(4) != 2 || g.Degree(1) != 1 {
		t.Fatalf("degrees wrong: %v", g.Degrees())
	}
}

func TestFromEdgesValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"bad length":    func() { FromEdges(5, 3, []uint32{0, 1}, 0) },
		"out of range":  func() { FromEdges(3, 3, []uint32{0, 1, 7}, 0) },
		"bad arity":     func() { FromEdges(5, 1, []uint32{0}, 0) },
		"uniform n < r": func() { Uniform(2, 1, 3, rng.New(1)) },
		"negative m":    func() { Uniform(10, -1, 3, rng.New(1)) },
		"negative c":    func() { Binomial(10, -0.5, 3, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEdgeDensity(t *testing.T) {
	g := Uniform(1000, 700, 3, rng.New(10))
	if got := g.EdgeDensity(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("EdgeDensity = %v", got)
	}
}

func TestCountDegreesBelowMatchesSequential(t *testing.T) {
	g := Uniform(50000, 35000, 4, rng.New(11))
	for _, k := range []int{1, 2, 3, 5} {
		want := 0
		for v := 0; v < g.N; v++ {
			if g.Degree(v) < k {
				want++
			}
		}
		if got := g.CountDegreesBelow(k); got != want {
			t.Errorf("CountDegreesBelow(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Uniform(1000, 700, 4, rng.New(42))
	b := Uniform(1000, 700, 4, rng.New(42))
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same-seed graphs differ")
		}
	}
}

// equalGraphs fails the test unless a and b have identical Edges,
// Offsets, and Incidence arrays.
func equalGraphs(t *testing.T, label string, a, b *Hypergraph) {
	t.Helper()
	if a.N != b.N || a.M != b.M || a.R != b.R {
		t.Fatalf("%s: shape (%d,%d,%d) vs (%d,%d,%d)", label, a.N, a.M, a.R, b.N, b.M, b.R)
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("%s: Edges[%d] = %d vs %d", label, i, a.Edges[i], b.Edges[i])
		}
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			t.Fatalf("%s: Offsets[%d] = %d vs %d", label, i, a.Offsets[i], b.Offsets[i])
		}
	}
	for i := range a.Incidence {
		if a.Incidence[i] != b.Incidence[i] {
			t.Fatalf("%s: Incidence[%d] = %d vs %d", label, i, a.Incidence[i], b.Incidence[i])
		}
	}
}

// TestConstructionDeterministicAcrossWorkers is the contract of the
// parallel construction path: the same generator state yields
// bit-identical Edges, Offsets, and Incidence at every worker count.
// The sizes put m·r above seqBuildCutoff and m above genChunk, so the
// 3- and 8-worker pools genuinely run the parallel generation and the
// parallel counting sort while the 1-worker pool runs the sequential
// fallbacks.
func TestConstructionDeterministicAcrossWorkers(t *testing.T) {
	const n, m, r = 40000, 50000, 4
	if buildSpan(n, m, r, 8) < 2 {
		t.Fatal("test sizes too small to exercise the parallel CSR build")
	}
	type build struct {
		name string
		make func(gen *rng.RNG, pool *parallel.Pool) *Hypergraph
	}
	builds := []build{
		{"uniform", func(gen *rng.RNG, pool *parallel.Pool) *Hypergraph {
			return UniformWithPool(n, m, r, gen, pool)
		}},
		{"partitioned", func(gen *rng.RNG, pool *parallel.Pool) *Hypergraph {
			return PartitionedWithPool(n, m, r, gen, pool)
		}},
		{"binomial", func(gen *rng.RNG, pool *parallel.Pool) *Hypergraph {
			return BinomialWithPool(n, float64(m)/float64(n), r, gen, pool)
		}},
	}
	for _, bd := range builds {
		ref := bd.make(rng.New(99), parallel.NewPool(1))
		for _, workers := range []int{3, 8} {
			pool := parallel.NewPool(workers)
			got := bd.make(rng.New(99), pool)
			equalGraphs(t, fmt.Sprintf("%s workers=%d", bd.name, workers), ref, got)
			pool.Close()
		}
	}
}

// TestBuildSpanCaps pins the partition-sizing policy of the parallel
// counting sort: small graphs and sparse graphs (n ≫ m·r, where the
// O(span·n) histogram would dwarf the edge list) fall back to the
// sequential sort, every piece holds at least seqBuildCutoff
// incidences, and the histogram memory never exceeds 4× the incidence
// array no matter how wide the pool is.
func TestBuildSpanCaps(t *testing.T) {
	if s := buildSpan(1000, 100, 3, 8); s != 1 {
		t.Errorf("small graph: span %d, want 1", s)
	}
	if s := buildSpan(10_000_000, 40_000, 2, 8); s != 1 {
		t.Errorf("sparse graph: span %d, want 1 (histogram would be O(span*n))", s)
	}
	if s := buildSpan(1<<16, 1<<16, 4, 64); s != (1<<18)/seqBuildCutoff {
		t.Errorf("work cap: span %d, want %d", s, (1<<18)/seqBuildCutoff)
	}
	for _, workers := range []int{2, 8, 64, 512} {
		n, m, r := 1<<20, 3<<20, 4
		s := buildSpan(n, m, r, workers)
		if s > workers {
			t.Errorf("workers=%d: span %d exceeds pool width", workers, s)
		}
		if s*n > 4*m*r {
			t.Errorf("workers=%d: histogram %d entries exceeds 4x incidence %d", workers, s*n, 4*m*r)
		}
	}
}

// TestParallelCSRMatchesSequential checks the stable parallel counting
// sort against the sequential build on a shared explicit edge list.
func TestParallelCSRMatchesSequential(t *testing.T) {
	const n, m, r = 5000, 60000, 4
	if buildSpan(n, m, r, 8) < 3 {
		t.Fatal("test sizes too small to exercise a multi-piece CSR build")
	}
	gen := rng.New(123)
	edges := make([]uint32, m*r)
	var tuple [MaxArity]uint32
	for e := 0; e < m; e++ {
		gen.SampleDistinct(tuple[:r], uint32(n))
		copy(edges[e*r:], tuple[:r])
	}
	seq := FromEdgesWithPool(n, r, append([]uint32(nil), edges...), 0, parallel.NewPool(1))
	for _, workers := range []int{2, 5, 8} {
		pool := parallel.NewPool(workers)
		par := FromEdgesWithPool(n, r, append([]uint32(nil), edges...), 0, pool)
		equalGraphs(t, fmt.Sprintf("csr workers=%d", workers), seq, par)
		pool.Close()
	}
}

func TestCountDegreesBelowWithPool(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	g := UniformWithPool(20000, 14000, 4, rng.New(12), pool)
	for _, k := range []int{1, 2, 4} {
		want := 0
		for v := 0; v < g.N; v++ {
			if g.Degree(v) < k {
				want++
			}
		}
		if got := g.CountDegreesBelowWithPool(k, pool); got != want {
			t.Errorf("CountDegreesBelowWithPool(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestIncidencePropertyQuick(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%500) + 5
		m := int(mRaw % 400)
		g := Uniform(n, m, 3, rng.New(seed))
		// CSR round trip: degree sum equals m*r and offsets monotone.
		total := 0
		for v := 0; v < g.N; v++ {
			if g.Offsets[v] > g.Offsets[v+1] {
				return false
			}
			total += g.Degree(v)
		}
		return total == m*3 && int(g.Offsets[g.N]) == m*3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUniformGenerate(b *testing.B) {
	gen := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Uniform(1<<17, 90000, 4, gen)
	}
}

func BenchmarkPartitionedGenerate(b *testing.B) {
	gen := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Partitioned(1<<17, 90000, 4, gen)
	}
}
