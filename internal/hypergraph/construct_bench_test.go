package hypergraph

import (
	"fmt"
	"testing"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// Construction benchmarks: sequential (workers=1, which takes the
// sequential generation and CSR fallbacks) vs the pooled parallel path.
// BENCHMARKS.md records measured numbers; CI runs these with
// -benchtime 1x as a smoke test.

var constructSizes = []int{1 << 16, 1 << 20, 1 << 22}

const (
	benchR = 4
	benchC = 0.75 // just below c*(2,4): the density every workload runs near
)

// benchWorkerCounts pits the sequential path (workers=1) against 2- and
// 4-worker pools regardless of GOMAXPROCS, so the parallel machinery is
// exercised even on small CI boxes (where it shows overhead, not
// speedup — BENCHMARKS.md notes which machine produced its numbers).
func benchWorkerCounts() []int { return []int{1, 2, 4} }

// BenchmarkConstructUniform measures end-to-end Uniform construction
// (chunk-keyed edge sampling + incidence build) in edges/sec.
func BenchmarkConstructUniform(b *testing.B) {
	for _, n := range constructSizes {
		m := int(benchC * float64(n))
		for _, w := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				pool := parallel.NewPool(w)
				defer pool.Close()
				gen := rng.New(1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					UniformWithPool(n, m, benchR, gen, pool)
				}
				b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
			})
		}
	}
}

// BenchmarkConstructPartitioned measures the Appendix B generator, the
// one every IBLT experiment pays per trial.
func BenchmarkConstructPartitioned(b *testing.B) {
	for _, n := range constructSizes {
		m := int(benchC * float64(n))
		for _, w := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				pool := parallel.NewPool(w)
				defer pool.Close()
				gen := rng.New(1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					PartitionedWithPool(n, m, benchR, gen, pool)
				}
				b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
			})
		}
	}
}

// BenchmarkConstructCSR isolates the incidence build (the counting
// sort), rebuilding the CSR index over a fixed pre-sampled edge list —
// the path mphf/bloomier pay on every retry attempt.
func BenchmarkConstructCSR(b *testing.B) {
	for _, n := range constructSizes {
		m := int(benchC * float64(n))
		gen := rng.New(2)
		edges := make([]uint32, m*benchR)
		var tuple [MaxArity]uint32
		for e := 0; e < m; e++ {
			gen.SampleDistinct(tuple[:benchR], uint32(n))
			copy(edges[e*benchR:], tuple[:benchR])
		}
		for _, w := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				pool := parallel.NewPool(w)
				defer pool.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g := &Hypergraph{N: n, M: m, R: benchR, Edges: edges}
					g.buildIncidence(pool)
				}
				b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "edges/sec")
			})
		}
	}
}
