package mphf

import (
	"bytes"
	"errors"
	"fmt"
	"math/bits"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/layout"
	"repro/internal/parallel"
)

// buildSerialPeel is the pre-ordered-peel construction — sequential
// queue peel plus serial reverse-order assignment — kept in the tests
// as the baseline BenchmarkBuildMPHF measures against and as an
// independent validity oracle. It must never be used from the build
// path. Like the real builder it writes its arrays straight into a
// flat layout image.
func buildSerialPeel(keys []uint64, gamma float64, seed uint64, maxTries int) (*MPHF, error) {
	if err := checkDistinct(keys); err != nil { // Build pays this too
		return nil, err
	}
	m := len(keys)
	subSize := int(gamma*float64(m))/arity + 1
	if subSize < 2 {
		subSize = 2
	}
	for try := 0; try < maxTries; try++ {
		attemptSeed, hseed := attemptSeeds(seed, try)
		n := subSize * arity
		edges := make([]uint32, len(keys)*arity)
		for i, k := range keys {
			vs := layout.VertexTriple(hseed, subSize, k)
			copy(edges[i*arity:], vs[:])
		}
		g := hypergraph.FromEdges(n, arity, edges, subSize)
		peel := core.Sequential(g, 2)
		if !peel.Empty() {
			continue
		}
		im := layout.NewMPHF(attemptSeed, hseed, m, subSize)
		for i := len(peel.PeelOrder) - 1; i >= 0; i-- {
			e := int(peel.PeelOrder[i])
			free := peel.FreeVertex[e]
			sum := 0
			p := -1
			for pos, u := range g.EdgeVertices(e) {
				if u == free {
					p = pos
				} else {
					sum += int(im.G[u])
				}
			}
			im.G[free] = uint8(((p-sum)%arity + arity) % arity)
			im.Used[free>>6] |= 1 << (uint(free) & 63)
		}
		for i, w := range im.Used {
			im.Rank[i+1] = im.Rank[i] + uint32(bits.OnesCount64(w))
		}
		im.Marshal()
		return &MPHF{im: im}, nil
	}
	return nil, ErrBuildFailed
}

// TestBuildBitIdenticalAcrossWorkerCounts is the serial-equivalence
// contract of the ordered-peel build: the same seed produces the same
// function — byte for byte, not just lookup-equal — on pools of 1, 3,
// and 8 workers, so "the serial build" is just the 1-worker run of the
// same code. With the flat layout the comparison is literal: the
// sealed images must be equal as byte strings.
func TestBuildBitIdenticalAcrossWorkerCounts(t *testing.T) {
	keys := randomKeys(30000, 17)
	var ref *MPHF
	for _, workers := range []int{1, 3, 8} {
		pool := parallel.NewPool(workers)
		f, err := BuildWithPool(keys, DefaultGamma, 7, 10, pool)
		pool.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = f
			continue
		}
		if !bytes.Equal(f.Bytes(), ref.Bytes()) {
			t.Fatalf("workers=%d: image not byte-identical to the 1-worker build", workers)
		}
	}
}

// TestBuildAgreesWithSerialPeelOracle checks the ordered-peel build
// against the old sequential construction: both must be valid MPHFs
// over the same key set with identical table geometry. The two peel
// orders choose different (equally valid) orientations, so the
// bijections themselves may differ — validity, not equality, is the
// contract.
func TestBuildAgreesWithSerialPeelOracle(t *testing.T) {
	keys := randomKeys(20000, 23)
	oracle, err := buildSerialPeel(keys, DefaultGamma, 7, 10)
	if err != nil {
		t.Fatalf("serial oracle: %v", err)
	}
	f, err := Build(keys, DefaultGamma, 7, 10)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if f.Keys() != oracle.Keys() || f.Vertices() != oracle.Vertices() || f.Seed() != oracle.Seed() {
		t.Fatal("geometry diverged from the serial construction")
	}
	seen := make([]bool, len(keys))
	for _, k := range keys {
		v := f.Lookup(k)
		if v < 0 || v >= len(keys) || seen[v] {
			t.Fatalf("ordered-peel build not a bijection at key %#x", k)
		}
		seen[v] = true
	}
}

// TestBuildFailedReportsSurvivors pins the diagnosable failure error:
// above the peeling threshold every attempt leaves a 2-core, and the
// error must wrap ErrBuildFailed and name the last attempt's survivor
// count.
func TestBuildFailedReportsSurvivors(t *testing.T) {
	keys := randomKeys(20000, 29)
	// γ = 1.12 → density 0.893 > c*(2,3) ≈ 0.818: peeling fails w.h.p.
	_, err := Build(keys, 1.12, 3, 2)
	if !errors.Is(err, ErrBuildFailed) {
		t.Fatalf("err = %v, want ErrBuildFailed", err)
	}
	if !strings.Contains(err.Error(), "edges left in 2-core after attempt 2") {
		t.Fatalf("error does not surface the survivor count: %v", err)
	}
	var survivors int
	if _, serr := fmt.Sscanf(err.Error(), "mphf: construction failed on all attempts: %d edges", &survivors); serr != nil || survivors <= 0 {
		t.Fatalf("survivor count missing or zero in %q", err)
	}
}

// BenchmarkBuildMPHF is the build-path acceptance benchmark: the old
// serial-peel construction against the ordered-peel build at several
// pool sizes (pools hoisted out of the timed loop). The fixed seed
// peels on the first attempt in every variant, so all variants time
// exactly one hash + index + peel + assign pipeline per op.
func BenchmarkBuildMPHF(b *testing.B) {
	keys := randomKeys(1<<17, 1)
	b.Run("SerialPeel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := buildSerialPeel(keys, DefaultGamma, 42, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		pool := parallel.NewPool(workers)
		b.Run(fmt.Sprintf("Ordered/W=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildWithPool(keys, DefaultGamma, 42, 10, pool); err != nil {
					b.Fatal(err)
				}
			}
		})
		pool.Close()
	}
}
