// Package mphf builds minimal perfect hash functions with the BDZ
// construction (Botelho-Pagh-Ziviani), the classic "peeling to an empty
// 2-core" application: keys become edges of a random 3-partite 3-uniform
// hypergraph over ~1.23·m vertices, the graph is peeled (k = 2), and g
// values are assigned in reverse peel order so that every key selects a
// distinct vertex. Construction succeeds on the first try w.h.p. because
// the edge density 1/γ = 1/1.23 ≈ 0.813 sits below the paper's threshold
// c*(2,3) ≈ 0.818.
//
// Build-time and serve-time are split by the versioned flat layout
// (internal/layout): the builder writes its g values, used bitmap, and
// rank directory directly into a contiguous sealed image, and MPHF is a
// thin read-only view over such an image — the same lookup code path
// whether the image came from a fresh build, Open of marshaled bytes,
// or an mmap'd file.
package mphf

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hypergraph"
	"repro/internal/layout"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// DefaultGamma is the standard vertex/key ratio: edge density 1/1.23 is
// just below c*(2,3) ≈ 0.818, so peeling succeeds w.h.p.
const DefaultGamma = 1.23

// arity is fixed: BDZ uses 3 hashes (γ would need to exceed 1/0.772 ≈ 1.295
// table growth for r = 4 with no lookup benefit).
const arity = layout.Arity

// MPHF is an immutable minimal perfect hash function over the key set it
// was built from: Lookup maps each build key to a distinct value in
// [0, Keys()); unknown keys map to arbitrary values (add an external
// fingerprint if membership matters). It is a read-only view over a
// flat layout image — Bytes serializes it with zero copies, and Open /
// FromImage reconstruct an identical function from those bytes.
type MPHF struct {
	im *layout.Image
}

// ErrBuildFailed is returned when every seed attempt left a non-empty
// 2-core, which for distinct keys at γ ≥ 1.23 is astronomically unlikely;
// the usual cause is duplicate keys. The returned error wraps it
// together with the final attempt's survivor count ("N edges left in
// 2-core after attempt T"), so errors.Is(err, ErrBuildFailed) works and
// the message says how close the last attempt came — the number to look
// at when tuning gamma or maxTries.
var ErrBuildFailed = errors.New("mphf: construction failed on all attempts")

// ErrDuplicateKeys is returned when the key set contains duplicates.
var ErrDuplicateKeys = errors.New("mphf: duplicate keys")

// Build constructs an MPHF for the distinct keys using the given
// vertex/key ratio gamma (use DefaultGamma) and an initial seed; it
// retries with derived seeds up to maxTries times (10 is plenty).
// The whole build path — hashing, index build, the ordered parallel
// peel, and the round-parallel g-value assignment — runs on the
// process-wide default pool; use BuildWithPool to pin it to an explicit
// one. The resulting function is identical either way and at every pool
// size (the ordered peel is bit-stable across worker counts).
//
//peelvet:deterministic
func Build(keys []uint64, gamma float64, seed uint64, maxTries int) (*MPHF, error) {
	return BuildWithPool(keys, gamma, seed, maxTries, parallel.Default())
}

// BuildWorkers is Build on a private pool of the given size (workers
// <= 0 selects the default size). The pool is created once for ALL
// retry attempts and closed before returning, so a 10-retry build pays
// worker startup exactly once — the hoisted form of the per-call pool
// spin-up that core.Options{Workers: n} would cost inside a loop.
// Callers building many functions should instead share one pool across
// builds via BuildWithPool (e.g. as parallel.Group jobs).
//
//peelvet:deterministic
func BuildWorkers(keys []uint64, gamma float64, seed uint64, maxTries, workers int) (*MPHF, error) {
	pool := parallel.NewPool(workers)
	defer pool.Close()
	return BuildWithPool(keys, gamma, seed, maxTries, pool)
}

// BuildWithPool is Build with every construction phase — per-key edge
// hashing on each retry attempt, the CSR incidence build, the peel, and
// the g-value assignment — run on an explicit worker pool. The peel is
// the ordered round-synchronous process (core.ParallelOrder), whose
// round-major order and minimum-endpoint orientation are bit-stable, so
// the resulting function is identical at every pool size; the
// assignment processes the peel rounds in reverse with full parallelism
// inside each round (sound for k = 2: within a round every peeled edge
// has a distinct free vertex and non-free endpoints finalize strictly
// later). All per-build state is owned by the call, so many builds may
// run concurrently on one shared pool.
//
//peelvet:deterministic
func BuildWithPool(keys []uint64, gamma float64, seed uint64, maxTries int, pool *parallel.Pool) (*MPHF, error) {
	return BuildCtx(context.Background(), keys, gamma, seed, maxTries, pool)
}

// BuildCtx is BuildWithPool with cooperative cancellation, checked at
// every round barrier of every attempt's peel and assignment sweep (and
// at the phase barriers between hashing, CSR build, peel, and
// assignment) — a canceled build stops within one round of extra work,
// not one phase. On cancellation it returns (nil, ctx.Err()).
//
//peelvet:deterministic
func BuildCtx(ctx context.Context, keys []uint64, gamma float64, seed uint64, maxTries int, pool *parallel.Pool) (*MPHF, error) {
	if gamma < 1.1 {
		return nil, fmt.Errorf("mphf: gamma %.3f too small (< 1.1 cannot peel)", gamma)
	}
	if maxTries <= 0 {
		maxTries = 10
	}
	if err := checkDistinct(keys); err != nil {
		return nil, err
	}
	m := len(keys)
	subSize := int(gamma*float64(m))/arity + 1
	if subSize < 2 {
		subSize = 2
	}
	survivors := 0
	for try := 0; try < maxTries; try++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		attemptSeed, hseed := attemptSeeds(seed, try)
		im, left, err := buildAttempt(ctx, keys, attemptSeed, hseed, m, subSize, pool)
		if err != nil {
			return nil, err
		}
		if faultinject.Enabled {
			// Failpoint: setting the *bool forces this attempt to report
			// a non-empty 2-core, as an unlucky seed would.
			forceFail := false
			faultinject.Fire(faultinject.MPHFAttempt, &forceFail)
			if forceFail {
				im, left = nil, len(keys)
			}
		}
		if im != nil {
			return &MPHF{im: im}, nil
		}
		survivors = left
	}
	return nil, fmt.Errorf("%w: %d edges left in 2-core after attempt %d", ErrBuildFailed, survivors, maxTries)
}

// attemptSeeds derives attempt try's seed and the three vertex-hash
// seeds stored in the image header.
func attemptSeeds(seed uint64, try int) (attemptSeed uint64, hseed [arity]uint64) {
	attemptSeed = rng.Mix64(seed + uint64(try)*0x9e3779b97f4a7c15)
	for j := 0; j < arity; j++ {
		hseed[j] = rng.Mix64(attemptSeed ^ uint64(j+1)*0xbf58476d1ce4e5b9)
	}
	return
}

func checkDistinct(keys []uint64) error {
	sorted := append([]uint64(nil), keys...)
	slices.Sort(sorted) // ~4× the reflection-based sort.Slice on uint64s
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return ErrDuplicateKeys
		}
	}
	return nil
}

// buildAttempt peels the key hypergraph for one seed attempt and, on an
// empty 2-core, writes the g values, used bitmap, and rank directory
// into a freshly allocated flat image and seals it; a non-empty 2-core
// returns (nil, survivors, nil) so the retry loop can surface the count
// through ErrBuildFailed. Every phase runs on the pool: edge hashing
// and the CSR build fan out chunk-wise (each key's vertices depend only
// on the key and the attempt seeds, so parallel hashing is
// deterministic), the peel is the ordered round-synchronous process,
// and the g-value assignment walks the peel rounds in reverse with full
// parallelism inside each round. ctx is checked at every round barrier.
func buildAttempt(ctx context.Context, keys []uint64, attemptSeed uint64, hseed [arity]uint64, m, subSize int, pool *parallel.Pool) (*layout.Image, int, error) {
	n := subSize * arity
	edges := make([]uint32, len(keys)*arity)
	if err := pool.ForCtx(ctx, len(keys), 2048, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			vs := layout.VertexTriple(hseed, subSize, keys[i])
			copy(edges[i*arity:], vs[:])
		}
	}); err != nil {
		return nil, 0, err
	}
	g := hypergraph.FromEdgesWithPool(n, arity, edges, subSize, pool)
	ord, err := core.ParallelOrderCtx(ctx, g, 2, core.Options{Pool: pool})
	if err != nil {
		return nil, 0, err
	}
	if !ord.Empty() {
		return nil, ord.CoreEdges, nil
	}

	// The serve-time arrays are written straight into the flat image —
	// there is no separate in-memory representation to convert from.
	im := layout.NewMPHF(attemptSeed, hseed, m, subSize)

	// Reverse round-major order: when edge e (freed by vertex v at
	// position p) is processed, the other two endpoints' g values are
	// final — within a round every peeled edge has a distinct free
	// vertex and non-free endpoints free edges only in strictly later
	// rounds (k = 2; see core.OrderedResult) — so the edges of one round
	// are assigned concurrently: g[v] = (p − g[u1] − g[u2]) mod 3 makes
	// the lookup rule (g[v0]+g[v1]+g[v2]) mod 3 == p hold. The used
	// bitmap is the only shared word array, updated with an atomic OR.
	// Unassigned vertices keep 0.
	gv, used := im.G, im.Used
	for t := ord.Rounds; t >= 1; t-- {
		seg := ord.RoundSegment(t)
		if err := pool.ForCtx(ctx, len(seg), 1024, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := int(seg[i])
				free := ord.FreeVertex[e]
				vs := g.EdgeVertices(e)
				sum := 0
				p := -1
				for pos, u := range vs {
					if u == free {
						p = pos
					} else {
						sum += int(gv[u])
					}
				}
				gv[free] = uint8(((p-sum)%arity + arity) % arity)
				atomic.OrUint64(&used[free>>6], 1<<(uint(free)&63))
			}
		}); err != nil {
			return nil, 0, err
		}
	}

	// Rank directory: prefix popcounts per word for O(1) rank.
	rank := im.Rank
	rank[0] = 0
	for i, w := range used {
		rank[i+1] = rank[i] + uint32(bits.OnesCount64(w))
	}
	im.Marshal() // seal: checksum now covers the final arrays
	return im, 0, nil
}

// FromImage wraps an already-open flat image as an MPHF view. The image
// must have been produced by this package's builder (or validated by
// layout.Open); its bytes must stay immutable for the life of the
// function.
func FromImage(im *layout.Image) (*MPHF, error) {
	if im == nil || im.Kind != layout.KindMPHF {
		return nil, fmt.Errorf("mphf: image kind is not %v", layout.KindMPHF)
	}
	return &MPHF{im: im}, nil
}

// Open validates data as a flat MPHF image and returns a zero-copy
// read-only view over it: no array is decoded or copied, so data must
// stay immutable (and mapped) for the life of the function. Corrupt or
// hostile images return layout.ErrBadImage; unaligned slices return
// layout.ErrUnaligned (repair with layout.Aligned).
func Open(data []byte) (*MPHF, error) {
	im, err := layout.Open(data)
	if err != nil {
		return nil, err
	}
	return FromImage(im)
}

// Image returns the function's flat image.
func (f *MPHF) Image() *layout.Image { return f.im }

// Bytes returns the function's sealed flat image without copying — the
// exact bytes Open accepts. The slice aliases the function's serve
// arrays; treat it as read-only.
func (f *MPHF) Bytes() []byte { return f.im.Bytes() }

// Seed returns the successful build attempt's seed.
func (f *MPHF) Seed() uint64 { return f.im.Seed }

// Keys returns the number of keys the function was built over.
func (f *MPHF) Keys() int { return f.im.Keys }

// Vertices returns the internal table size (≈ γ·m); the bits-per-key cost
// is 2·Vertices()/Keys() plus the rank directory.
func (f *MPHF) Vertices() int { return f.im.Vertices() }

// vertices returns the three vertices of key x, one per part.
func (f *MPHF) vertices(x uint64) [arity]uint32 {
	return layout.VertexTriple(f.im.HSeed, f.im.SubSize, x)
}

// Lookup returns the index in [0, Keys()) assigned to key x. For keys not
// in the build set the result is arbitrary (but in range for any x whose
// selected vertex happens to be used; otherwise it is clamped).
func (f *MPHF) Lookup(x uint64) int {
	im := f.im
	vs := layout.VertexTriple(im.HSeed, im.SubSize, x)
	p := (int(im.G[vs[0]]) + int(im.G[vs[1]]) + int(im.G[vs[2]])) % arity
	v := vs[p]
	// rank(v): used vertices strictly before v, plus clamping for
	// foreign keys that select an unused vertex.
	word, bit := v>>6, uint(v)&63
	r := int(im.Rank[word]) + bits.OnesCount64(im.Used[word]&((1<<bit)-1))
	if r >= im.Keys {
		r = im.Keys - 1
	}
	return r
}

// LookupValue adapts Lookup to the uint64-valued static-function
// serving contract (repro.StaticFunc): the assigned index as a uint64.
func (f *MPHF) LookupValue(x uint64) uint64 { return uint64(f.Lookup(x)) }
