package mphf

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/rng"
)

func randomKeys(n int, seed uint64) []uint64 {
	gen := rng.New(seed)
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := gen.Uint64()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func TestBuildAndLookupBijective(t *testing.T) {
	keys := randomKeys(50000, 1)
	f, err := Build(keys, DefaultGamma, 42, 10)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if f.Keys() != len(keys) {
		t.Fatalf("Keys() = %d", f.Keys())
	}
	seen := make([]bool, len(keys))
	for _, k := range keys {
		v := f.Lookup(k)
		if v < 0 || v >= len(keys) {
			t.Fatalf("Lookup out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("Lookup collision at %d", v)
		}
		seen[v] = true
	}
}

func TestSmallSets(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 17} {
		keys := randomKeys(n, uint64(n))
		f, err := Build(keys, DefaultGamma, 7, 20)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		seen := make(map[int]bool)
		for _, k := range keys {
			v := f.Lookup(k)
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("n=%d: bad lookup %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestDuplicateKeysRejected(t *testing.T) {
	keys := []uint64{1, 2, 3, 2}
	if _, err := Build(keys, DefaultGamma, 1, 5); !errors.Is(err, ErrDuplicateKeys) {
		t.Fatalf("expected ErrDuplicateKeys, got %v", err)
	}
}

func TestGammaTooSmall(t *testing.T) {
	if _, err := Build(randomKeys(10, 1), 1.0, 1, 3); err == nil {
		t.Fatal("gamma 1.0 accepted")
	}
}

func TestTightGammaEventuallyBuilds(t *testing.T) {
	// γ = 1.25 keeps density 0.80 < 0.818: still succeeds, demonstrating
	// how close to the threshold the construction can run.
	keys := randomKeys(20000, 3)
	f, err := Build(keys, 1.25, 11, 20)
	if err != nil {
		t.Fatalf("Build at gamma 1.25: %v", err)
	}
	seen := make([]bool, len(keys))
	for _, k := range keys {
		v := f.Lookup(k)
		if seen[v] {
			t.Fatal("collision at tight gamma")
		}
		seen[v] = true
	}
}

func TestSpaceAccounting(t *testing.T) {
	keys := randomKeys(10000, 4)
	f, err := Build(keys, DefaultGamma, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Vertices ≈ γ·m (within the subtable rounding of 3 vertices).
	if v := f.Vertices(); v < int(DefaultGamma*10000) || v > int(DefaultGamma*10000)+3 {
		t.Errorf("Vertices() = %d, want ≈ %d", v, int(DefaultGamma*10000))
	}
}

func TestDeterministicLookups(t *testing.T) {
	keys := randomKeys(5000, 5)
	f, err := Build(keys, DefaultGamma, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(keys, DefaultGamma, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if f.Lookup(k) != g.Lookup(k) {
			t.Fatal("same-seed builds disagree")
		}
	}
}

func TestForeignKeysStayInRange(t *testing.T) {
	keys := randomKeys(1000, 6)
	f, err := Build(keys, DefaultGamma, 13, 10)
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(999)
	for i := 0; i < 10000; i++ {
		v := f.Lookup(gen.Uint64())
		if v < 0 || v >= f.Keys() {
			t.Fatalf("foreign key lookup out of range: %d", v)
		}
	}
}

func TestQuickBijectivity(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		keys := randomKeys(n, seed)
		fn, err := Build(keys, DefaultGamma, seed^0xbeef, 20)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, k := range keys {
			v := fn.Lookup(k)
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(19))}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	keys := randomKeys(1<<16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(keys, DefaultGamma, uint64(i), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	keys := randomKeys(1<<16, 1)
	f, err := Build(keys, DefaultGamma, 1, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += f.Lookup(keys[i&(1<<16-1)])
	}
	_ = sink
}

// TestBuildWithPoolMatchesDefault proves the pooled construction path is
// a pure performance change: the hash seeds, the peeled hypergraph, and
// hence every lookup are identical to Build's, at any pool size.
func TestBuildWithPoolMatchesDefault(t *testing.T) {
	keys := randomKeys(20000, 9)
	ref, err := Build(keys, DefaultGamma, 7, 10)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, workers := range []int{1, 3} {
		pool := parallel.NewPool(workers)
		f, err := BuildWithPool(keys, DefaultGamma, 7, 10, pool)
		if err != nil {
			t.Fatalf("BuildWithPool(workers=%d): %v", workers, err)
		}
		for _, k := range keys {
			if f.Lookup(k) != ref.Lookup(k) {
				t.Fatalf("workers=%d: Lookup(%#x) = %d, want %d", workers, k, f.Lookup(k), ref.Lookup(k))
			}
		}
		pool.Close()
	}
}

// TestBuildWorkersMatchesBuild checks the hoisted private-pool entry
// point produces the identical function (same seed → same attempt
// sequence → same g values).
func TestBuildWorkersMatchesBuild(t *testing.T) {
	keys := randomKeys(3000, 71)
	base, err := Build(keys, DefaultGamma, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	f, err := BuildWorkers(keys, DefaultGamma, 7, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if f.Lookup(k) != base.Lookup(k) {
			t.Fatalf("BuildWorkers lookup diverges on key %#x", k)
		}
	}
}

// TestConcurrentBuildsSharedPool runs several MPHF builds concurrently
// on one shared pool; each must be a valid MPHF over its own key set.
func TestConcurrentBuildsSharedPool(t *testing.T) {
	pool := parallel.NewPool(3)
	defer pool.Close()
	group := pool.NewGroup(0)
	for j := 0; j < 6; j++ {
		group.Go(func(p *parallel.Pool) error {
			keys := randomKeys(2000+100*j, uint64(80+j))
			f, err := BuildWithPool(keys, DefaultGamma, uint64(7+j), 10, p)
			if err != nil {
				return err
			}
			seen := make([]bool, f.Keys())
			for _, k := range keys {
				v := f.Lookup(k)
				if v < 0 || v >= f.Keys() || seen[v] {
					return fmt.Errorf("job %d: lookup not a bijection at key %#x", j, k)
				}
				seen[v] = true
			}
			return nil
		})
	}
	if err := group.Wait(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkConcurrentBuild measures aggregate MPHF build throughput of J
// concurrent jobs under the two serving topologies: one shared pool of W
// workers (parallel.Group) vs J isolated pools of max(1, W/J) workers
// (fixed total cores).
func BenchmarkConcurrentBuild(b *testing.B) {
	workers := parallel.Workers()
	if workers < 4 {
		workers = 4
	}
	keys := randomKeys(20000, 5)
	buildJob := func(p *parallel.Pool, reps, j int) error {
		for i := 0; i < reps; i++ {
			if _, err := BuildWithPool(keys, DefaultGamma, uint64(7+j), 10, p); err != nil {
				return err
			}
		}
		return nil
	}
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("SharedPool/jobs=%d", jobs), func(b *testing.B) {
			pool := parallel.NewPool(workers)
			defer pool.Close()
			b.ResetTimer()
			group := pool.NewGroup(0)
			for j := 0; j < jobs; j++ {
				group.Go(func(p *parallel.Pool) error { return buildJob(p, b.N/jobs+1, j) })
			}
			if err := group.Wait(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(keys)), "keys/op")
		})
		b.Run(fmt.Sprintf("IsolatedPools/jobs=%d", jobs), func(b *testing.B) {
			per := workers / jobs
			if per < 1 {
				per = 1
			}
			pools := make([]*parallel.Pool, jobs)
			for j := range pools {
				pools[j] = parallel.NewPool(per)
				defer pools[j].Close()
			}
			b.ResetTimer()
			done := make(chan error, jobs)
			for j := 0; j < jobs; j++ {
				go func() { done <- buildJob(pools[j], b.N/jobs+1, j) }()
			}
			for j := 0; j < jobs; j++ {
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(keys)), "keys/op")
		})
	}
}
