package recurrence

import (
	"math"
	"testing"

	"repro/internal/fib"
	"repro/internal/threshold"
)

// must unwraps a (value, error) pair for the valid hardcoded Params the
// tests use throughout; an error here is a broken test table, so it
// panics (failing the test with the validation message).
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// predict unwraps PredictRounds / RoundsUntilBetaBelow /
// PredictSubrounds results the same way.
func predict(rounds int, ok bool, err error) (int, bool) {
	if err != nil {
		panic(err)
	}
	return rounds, ok
}

// Table 2 of the paper, left column: idealized predictions λ_t·10⁶ for
// r=4, k=2, c=0.7. The t=13 entry is 0.00001 and later entries are 0.
var table2C070 = []float64{
	768922, 673647, 608076, 553064, 500466, 444828,
	380873, 302531, 204442, 93245, 14159, 74,
}

// Table 2, right column: λ_t·10⁶ for c=0.85 (above threshold).
var table2C085 = []float64{
	853158, 811184, 793026, 784269, 779841, 777550, 776350, 775719,
	775385, 775209, 775115, 775066, 775039, 775025, 775018, 775014,
	775012, 775011, 775010, 775010,
}

func TestTraceMatchesTable2Below(t *testing.T) {
	p := Params{K: 2, R: 4, C: 0.7}
	steps := must(p.Trace(20))
	for i, want := range table2C070 {
		got := steps[i].Lambda * 1e6
		// The paper prints rounded integers; allow 0.6 absolute slack
		// plus a tiny relative term for the larger entries.
		if math.Abs(got-want) > 0.6+1e-5*want {
			t.Errorf("round %d: λ·1e6 = %.3f, want %v", i+1, got, want)
		}
	}
	// Round 13 prediction is ~0.00001 (paper), and later rounds are ~0.
	if got := steps[12].Lambda * 1e6; got > 1e-3 || got <= 0 {
		t.Errorf("round 13: λ·1e6 = %g, want ~1e-5", got)
	}
	for i := 13; i < 20; i++ {
		if got := steps[i].Lambda * 1e6; got > 1e-9 {
			t.Errorf("round %d: λ·1e6 = %g, want ~0", i+1, got)
		}
	}
}

func TestTraceMatchesTable2Above(t *testing.T) {
	p := Params{K: 2, R: 4, C: 0.85}
	steps := must(p.Trace(20))
	for i, want := range table2C085 {
		got := steps[i].Lambda * 1e6
		if math.Abs(got-want) > 0.6+1e-5*want {
			t.Errorf("round %d: λ·1e6 = %.3f, want %v", i+1, got, want)
		}
	}
}

func TestLambdaMonotoneNonincreasing(t *testing.T) {
	for _, c := range []float64{0.5, 0.7, 0.77, 0.85, 1.2} {
		p := Params{K: 2, R: 4, C: c}
		steps := must(p.Trace(60))
		for i := 1; i < len(steps); i++ {
			if steps[i].Lambda > steps[i-1].Lambda+1e-12 {
				t.Errorf("c=%v: λ increased at round %d (%v -> %v)",
					c, i+1, steps[i-1].Lambda, steps[i].Lambda)
			}
			if steps[i].Beta > steps[i-1].Beta+1e-12 {
				t.Errorf("c=%v: β increased at round %d", c, i+1)
			}
		}
	}
}

func TestRegimeSplit(t *testing.T) {
	// Below threshold λ -> 0; above threshold λ -> CoreFraction > 0.
	below := Params{K: 2, R: 4, C: 0.7}
	if l := must(below.Lambda(60)); l > 1e-12 {
		t.Errorf("below threshold λ_60 = %g, want ~0", l)
	}
	above := Params{K: 2, R: 4, C: 0.85}
	l := must(above.Lambda(200))
	want := threshold.CoreFraction(2, 4, 0.85)
	if math.Abs(l-want) > 1e-6 {
		t.Errorf("above threshold λ_200 = %v, want core fraction %v", l, want)
	}
}

func TestPredictRoundsMatchesTable1(t *testing.T) {
	// Table 1: at c=0.7 the empirical round count converges to 13.000 for
	// n >= 160000, and at c=0.75 to ~23.3-23.8 for n up to 2.56M.
	p := Params{K: 2, R: 4, C: 0.7}
	for _, n := range []float64{160000, 320000, 1e6, 2.56e6} {
		rounds, ok := predict(p.PredictRounds(n, 100))
		if !ok || rounds != 13 {
			t.Errorf("PredictRounds(c=0.7, n=%g) = %d (ok=%v), want 13", n, rounds, ok)
		}
	}
	p = Params{K: 2, R: 4, C: 0.75}
	rounds, ok := predict(p.PredictRounds(1e6, 200))
	if !ok || rounds < 23 || rounds > 25 {
		t.Errorf("PredictRounds(c=0.75, n=1e6) = %d (ok=%v), want ~23-25", rounds, ok)
	}
}

func TestPredictRoundsAboveThresholdNeverFinishes(t *testing.T) {
	p := Params{K: 2, R: 4, C: 0.85}
	_, ok := predict(p.PredictRounds(1e6, 500))
	if ok {
		t.Error("PredictRounds above threshold claimed completion")
	}
}

func TestPredictRoundsGrowthIsLogLog(t *testing.T) {
	// Theorem 1: rounds grow like (1/log 3)·log log n for k=2, r=4.
	// Across n = 1e4 .. 1e12 the increase must track the theory within a
	// small additive band.
	p := Params{K: 2, R: 4, C: 0.5}
	r1, ok1 := predict(p.PredictRounds(1e4, 500))
	r2, ok2 := predict(p.PredictRounds(1e12, 500))
	if !ok1 || !ok2 {
		t.Fatal("prediction did not terminate below threshold")
	}
	wantDelta := must(p.TheoreticalRounds(1e12)) - must(p.TheoreticalRounds(1e4))
	gotDelta := float64(r2 - r1)
	if math.Abs(gotDelta-wantDelta) > 1.5 {
		t.Errorf("round growth %v vs theory %v (r1=%d r2=%d)", gotDelta, wantDelta, r1, r2)
	}
}

func TestRoundsUntilBetaBelowScalesAsSqrtInvNu(t *testing.T) {
	// Theorem 5: the number of rounds before β falls below a fixed τ < x*
	// scales as Θ(√(1/ν)). Quartering ν should roughly double the count.
	cstar, xstar := threshold.Threshold(2, 4)
	tau := xstar / 2
	counts := make([]float64, 0, 3)
	for _, nu := range []float64{0.01, 0.0025, 0.000625} {
		p := Params{K: 2, R: 4, C: cstar - nu}
		r, ok := predict(p.RoundsUntilBetaBelow(tau, 1<<20))
		if !ok {
			t.Fatalf("β never fell below τ at ν=%v", nu)
		}
		counts = append(counts, float64(r))
	}
	for i := 1; i < len(counts); i++ {
		ratio := counts[i] / counts[i-1]
		if ratio < 1.6 || ratio > 2.4 {
			t.Errorf("quartering ν multiplied rounds by %.2f, want ~2 (counts %v)", ratio, counts)
		}
	}
}

func TestBetaTracePlateau(t *testing.T) {
	// Figure 1: just below the threshold the β series has a long plateau
	// near x* before collapsing. The closer c is to c*, the longer the
	// plateau (≥ the trace for the farther density, pointwise in length).
	pFar := Params{K: 2, R: 4, C: 0.77}
	pNear := Params{K: 2, R: 4, C: 0.772}
	far, okF := predict(pFar.RoundsUntilBetaBelow(0.5, 100000))
	near, okN := predict(pNear.RoundsUntilBetaBelow(0.5, 100000))
	if !okF || !okN {
		t.Fatal("β did not collapse below threshold")
	}
	if near <= far {
		t.Errorf("plateau at c=0.772 (%d rounds) should exceed c=0.77 (%d)", near, far)
	}
	if far < 10 {
		t.Errorf("plateau at c=0.77 suspiciously short: %d rounds", far)
	}
}

// Table 6 of the paper: λ′_{i,j}·10⁶ predictions for r=4, k=2, c=0.7,
// in subround order (i=1..7, j=1..4).
var table6Predictions = []float64{
	942230, 876807, 801855, 714875,
	678767, 643070, 609686, 581912,
	554402, 527335, 500469, 472470,
	442874, 410958, 375770, 336458,
	292159, 242396, 187891, 131789,
	80372, 40582, 15481, 3649,
	348, 6, 0.003, 0,
}

func TestSubtableTraceMatchesTable6(t *testing.T) {
	p := Params{K: 2, R: 4, C: 0.7}
	steps := must(p.SubtableTrace(7))
	if len(steps) != 28 {
		t.Fatalf("trace length %d, want 28", len(steps))
	}
	for idx, want := range table6Predictions {
		got := steps[idx].MixedFra * 1e6
		tol := 0.6 + 2e-5*want
		if want < 1 { // the 0.003 and 0 entries
			tol = 0.05
		}
		if math.Abs(got-want) > tol {
			t.Errorf("subround (%d,%d): λ′·1e6 = %.3f, want %v",
				steps[idx].Round, steps[idx].Subtable, got, want)
		}
	}
}

func TestSubtableFirstSubroundMatchesPlain(t *testing.T) {
	// Subround (1,1) sees the untouched graph, so β_{1,1} = rc and
	// λ_{1,1} equals the plain recurrence's λ_1.
	p := Params{K: 2, R: 4, C: 0.7}
	sub := must(p.SubtableTrace(1))
	plain := must(p.Trace(1))
	if math.Abs(sub[0].Beta-plain[0].Beta) > 1e-12 {
		t.Errorf("β_{1,1} = %v, want %v", sub[0].Beta, plain[0].Beta)
	}
	if math.Abs(sub[0].Lambda-plain[0].Lambda) > 1e-12 {
		t.Errorf("λ_{1,1} = %v, want %v", sub[0].Lambda, plain[0].Lambda)
	}
}

func TestSubtableMixedFractionMonotone(t *testing.T) {
	p := Params{K: 2, R: 4, C: 0.7}
	steps := must(p.SubtableTrace(10))
	for i := 1; i < len(steps); i++ {
		if steps[i].MixedFra > steps[i-1].MixedFra+1e-12 {
			t.Errorf("λ′ increased at subround %d", i)
		}
	}
}

func TestPredictSubroundsVsRounds(t *testing.T) {
	// Appendix B simulations: at c=0.7, n up to 2.56M the subround count
	// is ~26-27 versus 13 plain rounds — about a factor 2, and well below
	// the naive factor r = 4.
	p := Params{K: 2, R: 4, C: 0.7}
	sub, ok := predict(p.PredictSubrounds(1e6, 60))
	if !ok {
		t.Fatal("subtable prediction did not terminate")
	}
	plain, _ := predict(p.PredictRounds(1e6, 60))
	if sub < 24 || sub > 29 {
		t.Errorf("predicted subrounds = %d, want ~26-27", sub)
	}
	ratio := float64(sub) / float64(plain)
	if ratio >= float64(p.R) {
		t.Errorf("subround/round ratio %v should be far below r = %d", ratio, p.R)
	}
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("subround/round ratio %v, want ~2", ratio)
	}
}

func TestPredictSubroundsC075(t *testing.T) {
	// Table 5: c = 0.75 needs ~47.7-48.2 subrounds at large n.
	p := Params{K: 2, R: 4, C: 0.75}
	sub, ok := predict(p.PredictSubrounds(1e6, 100))
	if !ok {
		t.Fatal("subtable prediction did not terminate")
	}
	if sub < 45 || sub > 51 {
		t.Errorf("predicted subrounds = %d, want ~48", sub)
	}
}

func TestSubtableTheoreticalSubrounds(t *testing.T) {
	p := Params{K: 2, R: 4, C: 0.7}
	phi := fib.GrowthRate(3)
	got := p.SubtableTheoreticalSubrounds(1e6, phi)
	want := fib.SubroundLeadConstant(2, 4) * math.Log(math.Log(1e6))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("theoretical subrounds %v, want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{{K: 1, R: 3, C: 0.5}, {K: 3, R: 1, C: 0.5}, {K: 2, R: 4, C: -1}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
	if err := (Params{K: 2, R: 4, C: 0.7}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestHigherKR(t *testing.T) {
	// k=3, r=3 below its threshold 1.553: recurrence must collapse.
	p := Params{K: 3, R: 3, C: 1.4}
	if l := must(p.Lambda(80)); l > 1e-9 {
		t.Errorf("k=3 r=3 c=1.4: λ_80 = %g, want ~0", l)
	}
	// And above: stuck at a positive fraction.
	p = Params{K: 3, R: 3, C: 1.65}
	if l := must(p.Lambda(300)); l < 0.1 {
		t.Errorf("k=3 r=3 c=1.65: λ_300 = %g, want bounded away from 0", l)
	}
}

func BenchmarkTrace20(b *testing.B) {
	p := Params{K: 2, R: 4, C: 0.7}
	for i := 0; i < b.N; i++ {
		p.Trace(20)
	}
}

func BenchmarkSubtableTrace7(b *testing.B) {
	p := Params{K: 2, R: 4, C: 0.7}
	for i := 0; i < b.N; i++ {
		p.SubtableTrace(7)
	}
}
