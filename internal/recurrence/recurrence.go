// Package recurrence implements the idealized branching-process recurrences
// from Jiang, Mitzenmacher, and Thaler, "Parallel Peeling Algorithms"
// (SPAA 2014). These recurrences predict, for the parallel peeling process
// on a random r-uniform hypergraph with edge density c:
//
//   - ρ_i: probability a non-root vertex survives i rounds,
//   - λ_i: probability the root vertex survives i rounds (so λ_i·n is the
//     expected number of unpeeled vertices after round i — Table 2),
//   - β_i: expected number of surviving descendant edges feeding round i.
//
// The recurrences are (Equations (3.2)-(3.4), with β_1 = rc):
//
//	ρ_i = Pr(Poisson(β_i) >= k-1),   λ_i = Pr(Poisson(β_i) >= k),
//	β_{i+1} = ρ_i^{r-1} · rc.
//
// Appendix B's variant for peeling with r subtables is also provided
// (Equation (B.1)), along with the λ′ mixing formula that predicts Table 6.
package recurrence

import (
	"fmt"
	"math"

	"repro/internal/poisson"
)

// Params identifies a peeling ensemble: k-core parameter K, edge arity R,
// and edge density C (edges = C·n).
type Params struct {
	K int     // peel vertices with degree < K; the K-core survives
	R int     // edges contain R distinct vertices
	C float64 // edge density: m = C·n edges on n vertices
}

// Validate reports an error for parameter combinations outside the paper's
// scope (k, r >= 2; the k = r = 2 case is excluded from the round theorems
// but the recurrences themselves remain well defined, so it is allowed).
func (p Params) Validate() error {
	if p.K < 2 || p.R < 2 {
		return fmt.Errorf("recurrence: need k, r >= 2, got k=%d r=%d", p.K, p.R)
	}
	if p.C < 0 {
		return fmt.Errorf("recurrence: negative edge density %v", p.C)
	}
	return nil
}

// Step holds the idealized state after one peeling round.
type Step struct {
	Round  int     // 1-based round index
	Beta   float64 // β_i: mean surviving descendant edges entering round i
	Rho    float64 // ρ_i: non-root survival probability after i rounds
	Lambda float64 // λ_i: root survival probability after i rounds
}

// NextBeta applies one step of the density map: given β_i it returns
// β_{i+1} = rc · Pr(Poisson(β_i) >= k-1)^{r-1}.
func (p Params) NextBeta(beta float64) float64 {
	rho := poisson.Tail(p.K-1, beta)
	return math.Pow(rho, float64(p.R-1)) * float64(p.R) * p.C
}

// Trace iterates the recurrence for tmax rounds and returns one Step per
// round, starting with round 1 (β_1 = rc). λ_t·n is the paper's Table 2
// "Prediction" column for the number of unpeeled vertices after t rounds.
// Parameters outside the paper's scope are reported as an error (see
// Validate), never a panic — this is a library path.
func (p Params) Trace(tmax int) ([]Step, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	steps := make([]Step, 0, tmax)
	beta := float64(p.R) * p.C
	for t := 1; t <= tmax; t++ {
		rho := poisson.Tail(p.K-1, beta)
		lambda := poisson.Tail(p.K, beta)
		steps = append(steps, Step{Round: t, Beta: beta, Rho: rho, Lambda: lambda})
		beta = math.Pow(rho, float64(p.R-1)) * float64(p.R) * p.C
	}
	return steps, nil
}

// Lambda returns λ_t for a single round t >= 1 (λ_0 = 1 for t <= 0).
func (p Params) Lambda(t int) (float64, error) {
	if t <= 0 {
		if err := p.Validate(); err != nil {
			return 0, err
		}
		return 1, nil
	}
	steps, err := p.Trace(t)
	if err != nil {
		return 0, err
	}
	return steps[len(steps)-1].Lambda, nil
}

// PredictRounds returns the idealized round count at which peeling of an
// n-vertex instance completes: the smallest t with λ_t·n < 1/2, i.e. the
// first round after which the expected survivor count drops below one
// half. maxRounds caps the search; if the recurrence stalls above the
// threshold the cap is returned along with ok = false. Parameters
// outside the paper's scope are reported as an error.
func (p Params) PredictRounds(n float64, maxRounds int) (rounds int, ok bool, err error) {
	if err := p.Validate(); err != nil {
		return 0, false, err
	}
	beta := float64(p.R) * p.C
	for t := 1; t <= maxRounds; t++ {
		lambda := poisson.Tail(p.K, beta)
		if lambda*n < 0.5 {
			return t, true, nil
		}
		beta = p.NextBeta(beta)
	}
	return maxRounds, false, nil
}

// RoundsUntilBetaBelow returns the number of rounds before β_i drops below
// tau, the quantity Lemma 6 (Theorem 5) analyzes: below the threshold this
// is Θ(√(1/ν)) for τ fixed below x*, after which β collapses doubly
// exponentially. Returns maxRounds, false if the cap is hit (e.g. above
// the threshold, where β never falls below a positive fixed point).
func (p Params) RoundsUntilBetaBelow(tau float64, maxRounds int) (rounds int, ok bool, err error) {
	if err := p.Validate(); err != nil {
		return 0, false, err
	}
	beta := float64(p.R) * p.C
	for t := 1; t <= maxRounds; t++ {
		if beta < tau {
			return t, true, nil
		}
		beta = p.NextBeta(beta)
	}
	return maxRounds, false, nil
}

// BetaTrace returns β_1..β_tmax, the series plotted in Figure 1 of the
// paper for densities just below the threshold (showing the Θ(√(1/ν))
// plateau near x*).
func (p Params) BetaTrace(tmax int) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, tmax)
	beta := float64(p.R) * p.C
	for t := 0; t < tmax; t++ {
		out[t] = beta
		beta = p.NextBeta(beta)
	}
	return out, nil
}

// TheoreticalRounds returns the Theorem 1 leading term
// (1/log((k-1)(r-1))) · log log n. The O(1) additive term is not modeled.
// The constant is undefined for k = r = 2 (the case Theorem 1 excludes),
// reported as an error.
func (p Params) TheoreticalRounds(n float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	prod := float64((p.K - 1) * (p.R - 1))
	if prod <= 1 {
		return 0, fmt.Errorf("recurrence: Theorem 1 constant undefined for k=%d r=%d", p.K, p.R)
	}
	return math.Log(math.Log(n)) / math.Log(prod), nil
}

// SubtableStep holds the idealized state after one subround (i, j) of the
// Appendix B process: in round i, subround j peels only subtable j.
type SubtableStep struct {
	Round    int     // 1-based round index i
	Subtable int     // 1-based subtable index j within the round
	Beta     float64 // β_{i,j} of Equation (B.1)
	Rho      float64 // ρ_{i,j}: survival prob. of a subtable-j vertex
	Lambda   float64 // λ_{i,j}: root analog with threshold k
	MixedFra float64 // λ′_{i,j}: overall surviving vertex fraction after (i,j)
}

// SubtableTrace iterates the Appendix B recurrence for rounds full rounds
// (r subrounds each) and returns one SubtableStep per subround in
// execution order. λ′_{i,j}·n is the paper's Table 6 "Prediction" column.
func (p Params) SubtableTrace(rounds int) ([]SubtableStep, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := p.R
	rc := float64(r) * p.C
	rhoPrev := make([]float64, r) // ρ_{i-1,h}, 1 for round 0
	lambdaPrev := make([]float64, r)
	for j := range rhoPrev {
		rhoPrev[j] = 1
		lambdaPrev[j] = 1
	}
	rhoCur := make([]float64, r)
	lambdaCur := make([]float64, r)
	steps := make([]SubtableStep, 0, rounds*r)
	for i := 1; i <= rounds; i++ {
		for j := 0; j < r; j++ {
			prod := rc
			for h := 0; h < j; h++ {
				prod *= rhoCur[h]
			}
			for h := j + 1; h < r; h++ {
				prod *= rhoPrev[h]
			}
			rhoCur[j] = poisson.Tail(p.K-1, prod)
			lambdaCur[j] = poisson.Tail(p.K, prod)
			mixed := 0.0
			for h := 0; h <= j; h++ {
				mixed += lambdaCur[h]
			}
			for h := j + 1; h < r; h++ {
				mixed += lambdaPrev[h]
			}
			mixed /= float64(r)
			steps = append(steps, SubtableStep{
				Round: i, Subtable: j + 1,
				Beta: prod, Rho: rhoCur[j], Lambda: lambdaCur[j], MixedFra: mixed,
			})
		}
		copy(rhoPrev, rhoCur)
		copy(lambdaPrev, lambdaCur)
	}
	return steps, nil
}

// PredictSubrounds returns the idealized subround count at which subtable
// peeling of an n-vertex instance completes: the smallest subround index
// (counted across rounds, r per round) after which the expected number of
// surviving vertices λ′·n drops below 1/2.
func (p Params) PredictSubrounds(n float64, maxRounds int) (subrounds int, ok bool, err error) {
	steps, err := p.SubtableTrace(maxRounds)
	if err != nil {
		return 0, false, err
	}
	for idx, s := range steps {
		if s.MixedFra*n < 0.5 {
			return idx + 1, true, nil
		}
	}
	return len(steps), false, nil
}

// SubtableTheoreticalSubrounds returns the Theorem 4 leading term
// r/(r·log φ_{r−1} + log(k−1)) · log log n, where φ_{r−1} must be supplied
// by the caller (see internal/fib.GrowthRate), keeping this package free
// of that dependency.
func (p Params) SubtableTheoreticalSubrounds(n, phi float64) float64 {
	return float64(p.R) / (float64(p.R)*math.Log(phi) + math.Log(float64(p.K-1))) * math.Log(math.Log(n))
}
