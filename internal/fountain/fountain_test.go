package fountain

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func message(k int, seed uint64) []uint64 {
	gen := rng.New(seed)
	msg := make([]uint64, k)
	for i := range msg {
		msg[i] = gen.Uint64()
	}
	return msg
}

func TestRoundTripModestOverhead(t *testing.T) {
	const k = 2000
	msg := message(k, 1)
	enc, err := NewEncoder(msg, DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	// 15% overhead decodes w.h.p. for k = 2000 with robust soliton.
	symbols := enc.Emit(int(1.15 * k))
	got, recovered, err := Decode(k, symbols, DefaultParams())
	if err != nil {
		t.Fatalf("decode failed with %d/%d recovered", recovered, k)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatalf("symbol %d wrong", i)
		}
	}
}

func TestRatelessProperty(t *testing.T) {
	// The defining fountain property: if a batch fails, extending the
	// SAME stream with more symbols eventually succeeds.
	const k = 1000
	msg := message(k, 2)
	enc, err := NewEncoder(msg, DefaultParams(), 9)
	if err != nil {
		t.Fatal(err)
	}
	symbols := enc.Emit(k) // zero overhead: likely to stall
	for attempts := 0; attempts < 10; attempts++ {
		got, _, err := Decode(k, symbols, DefaultParams())
		if err == nil {
			for i := range msg {
				if got[i] != msg[i] {
					t.Fatal("wrong symbol after extension")
				}
			}
			return
		}
		symbols = append(symbols, enc.Emit(k/20)...) // +5% and retry
	}
	t.Fatal("decoding never succeeded even at 1.5x overhead")
}

func TestDecodeFailsWithTooFewSymbols(t *testing.T) {
	const k = 1000
	msg := message(k, 3)
	enc, _ := NewEncoder(msg, DefaultParams(), 11)
	symbols := enc.Emit(k / 2) // information-theoretically impossible
	_, recovered, err := Decode(k, symbols, DefaultParams())
	if !errors.Is(err, ErrDecodeFailed) {
		t.Fatalf("err = %v, want ErrDecodeFailed", err)
	}
	if recovered >= k {
		t.Fatal("recovered everything from half the information")
	}
}

func TestSymbolLossResilience(t *testing.T) {
	// Fountain codes don't care WHICH symbols arrive. Drop a random 20%
	// of a 1.45x stream and decode from the survivors.
	const k = 1500
	msg := message(k, 4)
	enc, _ := NewEncoder(msg, DefaultParams(), 13)
	all := enc.Emit(int(1.45 * k))
	gen := rng.New(99)
	kept := make([]Symbol, 0, len(all))
	for _, s := range all {
		if gen.Float64() > 0.2 {
			kept = append(kept, s)
		}
	}
	got, recovered, err := Decode(k, kept, DefaultParams())
	if err != nil {
		t.Fatalf("decode after loss failed: %d/%d", recovered, k)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatal("wrong symbol after loss")
		}
	}
}

func TestSolitonDistributionShape(t *testing.T) {
	const k = 10000
	tab := newSolitonTable(k, DefaultParams())
	// CDF must be monotone, end at 1, and put the classic ~1/2 mass at
	// degree 2 (ideal soliton ρ(2) = 1/2, robust boost shifts it a bit).
	prev := 0.0
	for _, c := range tab.cdf {
		if c < prev-1e-12 {
			t.Fatal("CDF not monotone")
		}
		prev = c
	}
	if math.Abs(tab.cdf[k-1]-1) > 1e-12 {
		t.Fatalf("CDF ends at %v", tab.cdf[k-1])
	}
	massAt2 := tab.cdf[1] - tab.cdf[0]
	if massAt2 < 0.3 || massAt2 > 0.6 {
		t.Errorf("degree-2 mass %.3f, want near 1/2", massAt2)
	}
	// Mean degree is O(log k): for k = 10000 it sits around 8-15.
	gen := rng.New(5)
	sum := 0.0
	const draws = 20000
	for i := 0; i < draws; i++ {
		sum += float64(tab.sample(gen.Float64()))
	}
	mean := sum / draws
	if mean < 4 || mean > 25 {
		t.Errorf("mean sampled degree %.1f, want O(log k) ~ 10", mean)
	}
}

func TestNeighborsDeterministicFromSeed(t *testing.T) {
	tab := newSolitonTable(500, DefaultParams())
	a := neighborsFromSeed(12345, 500, tab, nil)
	b := neighborsFromSeed(12345, 500, tab, nil)
	if len(a) != len(b) {
		t.Fatal("nondeterministic degree")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic neighbors")
		}
	}
}

func TestEncoderRejectsShortMessage(t *testing.T) {
	if _, err := NewEncoder([]uint64{1, 2}, DefaultParams(), 1); err == nil {
		t.Fatal("short message accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, kRaw uint16) bool {
		k := int(kRaw%400) + 50
		msg := message(k, seed)
		enc, err := NewEncoder(msg, DefaultParams(), seed^0xfeed)
		if err != nil {
			return false
		}
		// Generous 1.6x overhead: failure probability is negligible, so a
		// stall would indicate a decoder bug rather than bad luck.
		got, _, err := Decode(k, enc.Emit(int(1.6*float64(k))+20), DefaultParams())
		if err != nil {
			return false
		}
		for i := range msg {
			if got[i] != msg[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	msg := message(1<<14, 1)
	enc, _ := NewEncoder(msg, DefaultParams(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.Next()
	}
}

func BenchmarkDecode(b *testing.B) {
	const k = 1 << 12
	msg := message(k, 1)
	enc, _ := NewEncoder(msg, DefaultParams(), 1)
	symbols := enc.Emit(k * 12 / 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(k, symbols, DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}
