// Package fountain implements an LT (Luby Transform) fountain code — the
// rateless member of the peeling-decoded code family the paper cites
// ([14] Luby, Mitzenmacher, Shokrollahi, Spielman; [17] Biff codes). The
// encoder emits an unbounded stream of encoded symbols, each the XOR of a
// randomly chosen set of message symbols with degree drawn from the
// robust soliton distribution; the decoder is a peeling process that
// repeatedly "releases" encoded symbols with exactly one unresolved
// neighbor.
//
// Unlike the fixed-arity hypergraphs of the main paper, LT edges have
// variable arity, so this package carries its own peeling decoder: it is
// the same release rule (degree-1 peeling) on a variable-arity bipartite
// graph, and any fixed number of message symbols is recovered from
// (1 + ε)·k encoded symbols w.h.p. for small ε.
package fountain

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Symbol is one encoded symbol: the XOR of the message symbols listed in
// Neighbors, tagged with the seed that regenerates the neighbor set (so
// real deployments would transmit only Seed and Value).
type Symbol struct {
	Seed  uint64
	Value uint64
	// neighbors are recomputed by the decoder from Seed; kept unexported
	// to keep the wire struct honest.
}

// Encoder produces encoded symbols for a fixed message.
type Encoder struct {
	message []uint64
	dist    *solitonTable
	seedGen *rng.RNG
}

// Params tune the robust soliton distribution. The defaults follow Luby:
// C ≈ 0.1, delta ≈ 0.5 work well for k in the thousands.
type Params struct {
	C     float64 // robust soliton constant (default 0.1)
	Delta float64 // decoder failure bound (default 0.5)
}

// DefaultParams returns Luby's usual constants.
func DefaultParams() Params { return Params{C: 0.1, Delta: 0.5} }

// solitonTable is a sampled-by-inversion robust soliton distribution.
type solitonTable struct {
	cdf []float64 // cdf[d-1] = Pr(degree <= d)
	k   int
}

// newSolitonTable builds the robust soliton distribution μ for k message
// symbols: the ideal soliton ρ(1) = 1/k, ρ(d) = 1/(d(d−1)), boosted by
// τ(d) = R/(d·k) for d < k/R and τ(k/R) = R·ln(R/δ)/k with
// R = C·ln(k/δ)·√k, then normalized.
func newSolitonTable(k int, p Params) *solitonTable {
	if p.C <= 0 {
		p.C = 0.1
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		p.Delta = 0.5
	}
	R := p.C * math.Log(float64(k)/p.Delta) * math.Sqrt(float64(k))
	if R < 1 {
		R = 1
	}
	spike := int(math.Ceil(float64(k) / R))
	if spike > k {
		spike = k
	}
	pmf := make([]float64, k+1) // index = degree
	pmf[1] = 1 / float64(k)
	for d := 2; d <= k; d++ {
		pmf[d] = 1 / (float64(d) * float64(d-1))
	}
	for d := 1; d < spike; d++ {
		pmf[d] += R / (float64(d) * float64(k))
	}
	if spike >= 1 && spike <= k {
		pmf[spike] += R * math.Log(R/p.Delta) / float64(k)
	}
	total := 0.0
	for d := 1; d <= k; d++ {
		total += pmf[d]
	}
	cdf := make([]float64, k)
	acc := 0.0
	for d := 1; d <= k; d++ {
		acc += pmf[d] / total
		cdf[d-1] = acc
	}
	cdf[k-1] = 1
	return &solitonTable{cdf: cdf, k: k}
}

// sample draws a degree by binary-searching the CDF.
func (s *solitonTable) sample(u float64) int {
	lo, hi := 0, len(s.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// NewEncoder returns an encoder for the message (at least 4 symbols).
func NewEncoder(message []uint64, p Params, seed uint64) (*Encoder, error) {
	if len(message) < 4 {
		return nil, fmt.Errorf("fountain: message too short (%d symbols)", len(message))
	}
	return &Encoder{
		message: message,
		dist:    newSolitonTable(len(message), p),
		seedGen: rng.New(seed),
	}, nil
}

// neighborsFromSeed regenerates a symbol's neighbor set from its seed:
// degree from the soliton table, then that many distinct message indices.
func neighborsFromSeed(symSeed uint64, k int, dist *solitonTable, buf []uint32) []uint32 {
	gen := rng.New(symSeed)
	d := dist.sample(gen.Float64())
	if d > k {
		d = k
	}
	buf = buf[:0]
	if cap(buf) < d {
		buf = make([]uint32, 0, d)
	}
	tuple := make([]uint32, d)
	gen.SampleDistinct(tuple, uint32(k))
	return append(buf, tuple...)
}

// Next emits the next encoded symbol.
func (e *Encoder) Next() Symbol {
	symSeed := e.seedGen.Uint64()
	nbrs := neighborsFromSeed(symSeed, len(e.message), e.dist, nil)
	var v uint64
	for _, i := range nbrs {
		v ^= e.message[i]
	}
	return Symbol{Seed: symSeed, Value: v}
}

// Emit returns the next n encoded symbols.
func (e *Encoder) Emit(n int) []Symbol {
	out := make([]Symbol, n)
	for i := range out {
		out[i] = e.Next()
	}
	return out
}

// ErrDecodeFailed reports that peeling stalled before recovering the full
// message: more encoded symbols are needed (the rateless remedy).
var ErrDecodeFailed = errors.New("fountain: decoding stalled; need more symbols")

// Decode recovers a k-symbol message from received encoded symbols using
// the LT peeling ("release") process: an encoded symbol with exactly one
// unresolved neighbor resolves it; resolving a message symbol XORs it
// out of every encoded symbol that references it, possibly releasing
// more. Returns the message, the number recovered (== k on success), and
// nil or ErrDecodeFailed.
func Decode(k int, symbols []Symbol, p Params) ([]uint64, int, error) {
	dist := newSolitonTable(k, p)
	message := make([]uint64, k)
	known := make([]bool, k)

	// Build the bipartite structure: per encoded symbol, residual value
	// and unresolved-neighbor count; per message symbol, the encoded
	// symbols referencing it.
	type enc struct {
		value  uint64
		degree int32
		last   uint32 // XOR-trick: XOR of unresolved neighbor indices
	}
	encs := make([]enc, len(symbols))
	incident := make([][]uint32, k)
	var buf []uint32
	for si := range symbols {
		buf = neighborsFromSeed(symbols[si].Seed, k, dist, buf)
		encs[si].value = symbols[si].Value
		encs[si].degree = int32(len(buf))
		for _, mi := range buf {
			encs[si].last ^= mi
			incident[mi] = append(incident[mi], uint32(si))
		}
	}

	// Release queue: encoded symbols of current degree 1. The XOR trick
	// (`last` holds the XOR of unresolved neighbor ids) names the single
	// unresolved neighbor without storing neighbor lists per symbol.
	queue := make([]uint32, 0, len(symbols))
	for si := range encs {
		if encs[si].degree == 1 {
			queue = append(queue, uint32(si))
		}
	}
	recovered := 0
	for head := 0; head < len(queue) && recovered < k; head++ {
		si := queue[head]
		if encs[si].degree != 1 {
			continue
		}
		mi := encs[si].last
		if known[mi] {
			continue
		}
		message[mi] = encs[si].value
		known[mi] = true
		recovered++
		for _, sj := range incident[mi] {
			encs[sj].value ^= message[mi]
			encs[sj].degree--
			encs[sj].last ^= mi
			if encs[sj].degree == 1 {
				queue = append(queue, sj)
			}
		}
	}
	if recovered < k {
		return message, recovered, ErrDecodeFailed
	}
	return message, recovered, nil
}
