//go:build faultinject

package faultinject

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestFireUnarmedIsNoop(t *testing.T) {
	Reset()
	if err := FireErr("nothing.armed", nil); err != nil {
		t.Fatalf("unarmed FireErr = %v, want nil", err)
	}
	if Hits("nothing.armed") != 0 {
		t.Error("unarmed failpoint accumulated hits")
	}
}

func TestArmFireDisarm(t *testing.T) {
	Reset()
	sentinel := errors.New("injected")
	Arm("t.point", func(hit int64, arg any) error {
		if hit <= 2 {
			return sentinel
		}
		return nil
	})
	defer Disarm("t.point")

	for i := 1; i <= 3; i++ {
		err := FireErr("t.point", nil)
		if (i <= 2) != (err != nil) {
			t.Errorf("hit %d: err = %v", i, err)
		}
	}
	if got := Hits("t.point"); got != 3 {
		t.Errorf("Hits = %d, want 3", got)
	}
	Disarm("t.point")
	if err := FireErr("t.point", nil); err != nil {
		t.Errorf("disarmed FireErr = %v, want nil", err)
	}
}

func TestArmResetsHitCount(t *testing.T) {
	Reset()
	Arm("t.reset", func(int64, any) error { return nil })
	Fire("t.reset", nil)
	Fire("t.reset", nil)
	Arm("t.reset", func(int64, any) error { return nil })
	if got := Hits("t.reset"); got != 0 {
		t.Errorf("Hits after re-arm = %d, want 0", got)
	}
}

func TestFailFirstSetsBoolArg(t *testing.T) {
	Reset()
	sentinel := errors.New("fail")
	Arm("t.ff", FailFirst(2, sentinel))
	defer Disarm("t.ff")

	for i := 1; i <= 3; i++ {
		fail := false
		err := FireErr("t.ff", &fail)
		wantFail := i <= 2
		if fail != wantFail || (err != nil) != wantFail {
			t.Errorf("hit %d: fail=%v err=%v, want fail=%v", i, fail, err, wantFail)
		}
	}
}

func TestPanicAt(t *testing.T) {
	Reset()
	Arm("t.panic", PanicAt(2, "kaboom"))
	defer Disarm("t.panic")

	Fire("t.panic", nil) // hit 1: no-op
	defer func() {
		if v := recover(); v != "kaboom" {
			t.Errorf("recovered %v, want kaboom", v)
		}
	}()
	Fire("t.panic", nil) // hit 2: panics
	t.Fatal("unreachable")
}

func TestConcurrentFiresSeeDistinctHits(t *testing.T) {
	Reset()
	seen := make(map[int64]bool)
	var seenMu sync.Mutex
	Arm("t.conc", func(hit int64, _ any) error {
		seenMu.Lock()
		seen[hit] = true
		seenMu.Unlock()
		return nil
	})
	defer Disarm("t.conc")

	var wg sync.WaitGroup
	var fired atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Fire("t.conc", nil)
				fired.Add(1)
			}
		}()
	}
	wg.Wait()
	if len(seen) != int(fired.Load()) {
		t.Errorf("%d distinct hit counts for %d fires", len(seen), fired.Load())
	}
	if Hits("t.conc") != 800 {
		t.Errorf("Hits = %d, want 800", Hits("t.conc"))
	}
}
