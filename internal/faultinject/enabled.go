//go:build faultinject

package faultinject

import "sync"

// Enabled reports whether failpoints are compiled in; true under the
// faultinject build tag.
const Enabled = true

// point is one armed failpoint: its callback and fire count. The count
// belongs to the arming (Arm resets it), so FailFirst-style callbacks
// see hits starting at 1.
type point struct {
	fn   Callback
	hits int64
}

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

// Arm installs fn as the action of the named failpoint, resetting its
// hit count. Arming replaces any previous callback.
func Arm(name string, fn Callback) {
	mu.Lock()
	points[name] = &point{fn: fn}
	mu.Unlock()
}

// Disarm removes the named failpoint's callback; subsequent fires are
// no-ops again.
func Disarm(name string) {
	mu.Lock()
	delete(points, name)
	mu.Unlock()
}

// Reset disarms every failpoint.
func Reset() {
	mu.Lock()
	points = map[string]*point{}
	mu.Unlock()
}

// Hits returns how many times the named failpoint has fired since it
// was last armed (0 if not armed).
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.hits
	}
	return 0
}

// Fire triggers the named failpoint, discarding any callback error —
// for sites whose only failure modes are panics, stalls, or argument
// mutation.
func Fire(name string, arg any) { _ = FireErr(name, arg) }

// FireErr triggers the named failpoint and returns the callback's
// error. Unarmed failpoints return nil. The callback runs outside the
// registry lock (it may panic or stall), with the hit count snapshotted
// under it, so concurrent fires each observe a distinct count.
func FireErr(name string, arg any) error {
	mu.Lock()
	p := points[name]
	var fn Callback
	var hit int64
	if p != nil {
		p.hits++
		hit = p.hits
		fn = p.fn
	}
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(hit, arg)
}
