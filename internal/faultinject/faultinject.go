// Package faultinject provides named failpoints for chaos testing the
// peeling runtime. A failpoint is a named site compiled into production
// code; by default (no build tag) every call is a no-op that the
// compiler eliminates behind the Enabled constant, so the serving and
// peeling hot paths pay nothing. Building with -tags=faultinject turns
// the sites live: a test Arms a failpoint with a callback that may
// panic (exercising the pool's panic isolation), stall (exercising
// drain and cancellation), mutate the site's argument (corrupting an
// image mid-write), or return an error (simulating a crashed write or a
// failed probabilistic build attempt).
//
// Call sites guard every Fire with the constant so the disabled build
// is branch-free:
//
//	if faultinject.Enabled {
//	    faultinject.Fire(faultinject.PoolChunk, lo)
//	}
//
// Tests arm and disarm by name:
//
//	faultinject.Arm(faultinject.PoolChunk, faultinject.PanicAt(3, "boom"))
//	defer faultinject.Disarm(faultinject.PoolChunk)
//
// Callbacks receive the 1-based hit count (how many times this
// failpoint has fired since it was armed) and the site's argument, so
// "panic at round N" or "fail the first K attempts" are one-liners; the
// PanicAt / FailFirst / StallAt helpers cover the common shapes.
package faultinject

import (
	"time"
)

// The failpoints wired through the runtime. Names are free-form strings;
// these constants are the sites that exist today.
const (
	// PoolBarrier fires once per parallel-for barrier (Pool.For / Run /
	// RunRanges dispatch), on the submitting goroutine, with the range
	// length as argument. A panicking callback panics the submitter —
	// the job-boundary recovery path.
	PoolBarrier = "pool.barrier"
	// PoolChunk fires once per claimed chunk, on the claiming worker,
	// with the chunk's low index as argument, inside the chunk-boundary
	// recovery scope: a panicking callback exercises exactly the
	// "worker panics mid-peel" failure mode.
	PoolChunk = "pool.chunk"
	// MPHFAttempt fires once per MPHF build attempt with a *bool
	// argument; setting it forces the attempt to report a non-empty
	// 2-core, driving the seed-escalation retry policy.
	MPHFAttempt = "mphf.attempt"
	// BloomierAttempt is MPHFAttempt for static-map builds.
	BloomierAttempt = "bloomier.attempt"
	// ReconcileDecode fires before the reconciliation difference-table
	// decode with a *bool argument; setting it forces a decode-
	// incomplete failure, driving the headroom-escalation retry policy.
	ReconcileDecode = "iblt.reconcile"
	// LayoutWrite fires (via FireErr) after the image bytes are written
	// to the temporary file but before fsync/rename, with the *os.File
	// as argument: a callback that truncates or scribbles on the file
	// and returns an error simulates a crash mid-write. WriteFile
	// returns the error without renaming, leaving the temp file behind
	// exactly as a crash would.
	LayoutWrite = "layout.write"
	// ServingSwap fires at the head of StaticTable.SwapImage with the
	// candidate image bytes as argument; a callback that flips a byte
	// exercises the corrupt-image quarantine path.
	ServingSwap = "serving.swap"
	// ServerAccept fires (via FireErr) once per accepted connection in
	// the wire server's accept loop, with the remote address string as
	// argument: a returned error makes the server drop the connection
	// immediately, and a stalling callback delays accept — the
	// listener-level failure modes.
	ServerAccept = "server.accept"
	// ServerFrameTorn fires (via FireErr) in the server's frame writer
	// with the encoded frame bytes as argument: a returned error makes
	// the server write only a prefix of the frame and then kill the
	// connection — exactly what a crash mid-send looks like to the
	// client, which must treat the torn frame as connection loss.
	ServerFrameTorn = "server.frame.torn"
	// ServerHandlerPanic fires at the head of every request handler with
	// the op code as argument; a panicking callback exercises the
	// request-level panic isolation: the client gets a typed INTERNAL
	// reply, the connection and server survive, JobsPanicked increments.
	ServerHandlerPanic = "server.handler.panic"
	// ServerConnStall fires once per request frame read, on the
	// connection's read goroutine, with the frame length as argument; a
	// stalling callback simulates a slow or stuck client connection for
	// drain and deadline tests.
	ServerConnStall = "server.conn.stall"
)

// Callback is the armed action of a failpoint: hit is the 1-based count
// of fires since arming, arg is the site-specific argument documented on
// each failpoint name. A callback may panic, sleep, mutate arg, or
// return an error (only FireErr sites propagate it).
type Callback func(hit int64, arg any) error

// PanicAt returns a callback that panics with value v on the n-th hit
// and does nothing on every other hit.
func PanicAt(n int64, v any) Callback {
	return func(hit int64, _ any) error {
		if hit == n {
			panic(v)
		}
		return nil
	}
}

// FailFirst returns a callback that fails the first n hits: it returns
// err and, when the argument is a *bool (the forced-failure sites),
// sets it.
func FailFirst(n int64, err error) Callback {
	return func(hit int64, arg any) error {
		if hit > n {
			return nil
		}
		if fail, ok := arg.(*bool); ok {
			*fail = true
		}
		return err
	}
}

// StallAt returns a callback that sleeps for d on the n-th hit —
// a stalled worker or a slow write, for drain and timeout tests.
func StallAt(n int64, d time.Duration) Callback {
	return func(hit int64, _ any) error {
		if hit == n {
			time.Sleep(d)
		}
		return nil
	}
}
