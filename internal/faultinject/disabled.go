//go:build !faultinject

package faultinject

// Enabled reports whether failpoints are compiled in. In the default
// build it is the constant false, so every `if faultinject.Enabled`
// guard — and the Fire call behind it — is eliminated at compile time.
const Enabled = false

// Arm is a no-op without the faultinject build tag.
func Arm(name string, fn Callback) {}

// Disarm is a no-op without the faultinject build tag.
func Disarm(name string) {}

// Reset is a no-op without the faultinject build tag.
func Reset() {}

// Hits returns 0 without the faultinject build tag.
func Hits(name string) int64 { return 0 }

// Fire is a no-op without the faultinject build tag.
func Fire(name string, arg any) {}

// FireErr returns nil without the faultinject build tag.
func FireErr(name string, arg any) error { return nil }
