package chart

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	var buf bytes.Buffer
	Render(&buf, Config{Width: 40, Height: 10, YLabel: "beta", XLabel: "round"},
		Series{Name: "c=0.77", Values: []float64{3, 2.5, 2.2, 2.0, 1.5, 0.5, 0.01}},
		Series{Name: "c=0.772", Values: []float64{3.1, 2.6, 2.3, 2.1, 2.0, 1.9, 1.8}},
	)
	out := buf.String()
	for _, want := range []string{"beta", "round", "c=0.77", "c=0.772", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Ylabel + height rows + axis + xaxis labels + 2 legend lines.
	if len(lines) != 1+10+1+1+2 {
		t.Errorf("unexpected line count %d", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	Render(&buf, Config{})
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty render should say so")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	Render(&buf, Config{Width: 20, Height: 5}, Series{Name: "flat", Values: []float64{2, 2, 2}})
	if !strings.Contains(buf.String(), "*") {
		t.Error("constant series not plotted")
	}
}

func TestRenderSinglePoint(t *testing.T) {
	var buf bytes.Buffer
	Render(&buf, Config{Width: 20, Height: 5}, Series{Name: "dot", Values: []float64{1}})
	if !strings.Contains(buf.String(), "*") {
		t.Error("single point not plotted")
	}
}

func TestMarkerPlacementMonotone(t *testing.T) {
	// A strictly decreasing series must have its first marker above its
	// last marker in the grid.
	var buf bytes.Buffer
	Render(&buf, Config{Width: 30, Height: 8},
		Series{Name: "down", Values: []float64{10, 8, 6, 4, 2, 0}})
	lines := strings.Split(buf.String(), "\n")
	firstRow, lastRow := -1, -1
	for i, line := range lines {
		if idx := strings.IndexByte(line, '*'); idx >= 0 {
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow == -1 || lastRow <= firstRow {
		t.Errorf("decreasing series rows: first %d last %d", firstRow, lastRow)
	}
}
